#!/usr/bin/env python3
"""Validate a --telemetry-out JSONL stream from a ddosrepro run.

Usage:
    check_telemetry_jsonl.py <run.jsonl> [--min-series N]

Checks, in order:
  1. every line parses as a JSON object of shape
     {"t_ms": <number>, "values": {<series>: <number>, ...}};
  2. t_ms is strictly monotonically increasing across samples;
  3. at least --min-series distinct series keys appear (default 20);
  4. required series are present: at least one stream.* gauge (queue
     depths / watermarks from the streaming pipeline), proc.vm_rss_bytes,
     and at least one progress.* source;
  5. every value is a finite number (no NaN/Inf leaked into the stream);
  6. every counter-derived `<key>.rate` series is non-negative in every
     sample — counters are monotone, so a negative windowed rate means a
     counter ran backwards (a lost shard or a torn snapshot), which the
     net.* counters would surface here first;
  7. sample-time regressions are flagged: an inter-sample gap more than
     10x the median cadence is a sampler stall (reported as a warning
     with the gap and line number; t_ms going backwards is already a
     hard failure via check 2).

Exit 0 on success with a one-line summary; exit 1 with the first
violation otherwise. Standard library only.
"""

import json
import math
import sys


def fail(msg):
    print(f"telemetry JSONL check FAILED: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    min_series = 20
    if "--min-series" in argv:
        min_series = int(argv[argv.index("--min-series") + 1])

    series = set()
    samples = 0
    prev_t = None
    gaps = []  # (gap_ms, lineno)
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                return fail(f"line {lineno}: not valid JSON ({e})")
            if not isinstance(obj, dict) or "t_ms" not in obj \
                    or "values" not in obj:
                return fail(f"line {lineno}: expected "
                            '{"t_ms":..,"values":{..}}')
            t = obj["t_ms"]
            if not isinstance(t, (int, float)) or not math.isfinite(t):
                return fail(f"line {lineno}: t_ms is not a finite number")
            if prev_t is not None and t <= prev_t:
                return fail(f"line {lineno}: t_ms {t} not strictly greater "
                            f"than previous sample's {prev_t}")
            if prev_t is not None:
                gaps.append((t - prev_t, lineno))
            prev_t = t
            values = obj["values"]
            if not isinstance(values, dict) or not values:
                return fail(f"line {lineno}: values is not a non-empty object")
            for key, v in values.items():
                if not isinstance(v, (int, float)) or not math.isfinite(v):
                    return fail(f"line {lineno}: series {key!r} has "
                                f"non-finite value {v!r}")
                if key.endswith(".rate") and v < 0:
                    return fail(f"line {lineno}: rate series {key!r} is "
                                f"negative ({v!r}); its counter ran "
                                "backwards")
                series.add(key)
            samples += 1

    if samples == 0:
        return fail("no samples in stream")
    if len(series) < min_series:
        return fail(f"only {len(series)} distinct series, expected >= "
                    f"{min_series}: {sorted(series)}")
    required_groups = {
        "stream.* queue/watermark gauge":
            [s for s in series if s.startswith("stream.")],
        "proc.vm_rss_bytes": [s for s in series if s == "proc.vm_rss_bytes"],
        "progress.* source": [s for s in series if s.startswith("progress.")],
    }
    for what, matches in required_groups.items():
        if not matches:
            return fail(f"required series missing: no {what} "
                        f"(saw {len(series)} series)")

    stalls = 0
    if len(gaps) >= 3:
        median_gap = sorted(g for g, _ in gaps)[len(gaps) // 2]
        for gap, lineno in gaps:
            if gap > 10 * median_gap:
                stalls += 1
                print(f"telemetry JSONL warning: line {lineno}: "
                      f"{gap:.1f} ms since previous sample "
                      f"(median cadence {median_gap:.1f} ms) — "
                      "sampler stall", file=sys.stderr)

    rates = [s for s in series if s.endswith(".rate")]
    print(f"telemetry JSONL check passed: {samples} samples, "
          f"{len(series)} series "
          f"({len(required_groups['progress.* source'])} progress, "
          f"{len(required_groups['stream.* queue/watermark gauge'])} stream, "
          f"{len(rates)} rate), {stalls} sampler stalls flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
