#!/usr/bin/env python3
"""Fail CI when a guarded pipeline-bench metric regresses past tolerance.

Usage:
    check_perf_regression.py <bench_perf_pipeline.json> <baseline_perf.json>

The baseline file (bench/baseline_perf.json) declares a set of guarded
higher-is-better metrics (currently the sweep-ingest throughput
``ingest_measurements_per_sec``) plus a relative tolerance. A fresh bench
run must stay within ``tolerance`` of each guarded baseline value; metrics
listed under ``informational`` are printed for the log but never fail the
job, since lower-level numbers (per-probe latency, store MB/s) are too
runner-sensitive to gate on.

``guarded_max`` entries are lower-is-better hard ceilings, checked without
tolerance: the value in the baseline file IS the limit. The streaming
pipeline's ``peak_rss_ratio`` lives here — the streaming run must peak at
no more than half the materialized run's RSS, and the measured margin
(~0.3 on the reference box) is the tolerance.

Only the standard library is used so the script runs on a bare CI image.
"""

import json
import sys


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        bench = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    results = bench.get("results", {})
    tolerance = float(baseline.get("tolerance", 0.20))
    failures = []

    for name, base in sorted(baseline.get("guarded", {}).items()):
        measured = results.get(name)
        if measured is None:
            failures.append(f"{name}: missing from bench results")
            continue
        floor = float(base) * (1.0 - tolerance)
        ratio = float(measured) / float(base)
        verdict = "OK" if float(measured) >= floor else "REGRESSED"
        print(f"{name}: measured {measured:.6g} vs baseline {base:.6g} "
              f"({ratio:.2f}x, floor {floor:.6g}) -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {measured:.6g} < floor {floor:.6g} "
                f"(baseline {base:.6g}, tolerance {tolerance:.0%})")

    for name, ceiling in sorted(baseline.get("guarded_max", {}).items()):
        measured = results.get(name)
        if measured is None:
            failures.append(f"{name}: missing from bench results")
            continue
        verdict = "OK" if float(measured) <= float(ceiling) else "EXCEEDED"
        print(f"{name}: measured {measured:.6g} vs ceiling {ceiling:.6g} "
              f"(lower is better) -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {measured:.6g} > ceiling {ceiling:.6g}")

    for name, base in sorted(baseline.get("informational", {}).items()):
        measured = results.get(name)
        shown = f"{measured:.6g}" if measured is not None else "missing"
        print(f"{name}: measured {shown} vs baseline {base:.6g} (informational)")

    if failures:
        print("\nperf regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
