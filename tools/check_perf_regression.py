#!/usr/bin/env python3
"""Fail CI when a guarded pipeline-bench metric regresses past tolerance.

Usage:
    check_perf_regression.py <bench_perf_pipeline.json> <baseline_perf.json>

The baseline file (bench/baseline_perf.json) declares a set of guarded
higher-is-better metrics (the sweep-ingest throughput
``ingest_measurements_per_sec`` and the zero-copy columnar scan
throughput ``store_read_MBps``) plus a relative tolerance. A fresh bench
run must stay within ``tolerance`` of each guarded baseline value; metrics
listed under ``informational`` are printed for the log but never fail the
job, since lower-level numbers (per-probe latency, row-load MB/s) are too
runner-sensitive to gate on.

``guarded_max`` entries are lower-is-better hard ceilings, checked without
tolerance: the value in the baseline file IS the limit. The streaming
pipeline's ``peak_rss_ratio`` lives here (streaming must peak at no more
than half the materialized run's RSS), as does ``sampler_overhead_pct``
(the telemetry sampler's sample bodies must cost < 1% of run wall clock
at the default 250 ms cadence).

``guarded_min`` entries are the dual: higher-is-better hard floors,
checked without tolerance — the baseline value IS the minimum. The serve
layer's ``serve_lookups_per_sec`` lives here (the query engine must
sustain at least 1M point lookups/sec across the drive's thread
complement — an absolute acceptance criterion, not a trajectory, hence
no tolerance band), as does ``analyze_vs_run_speedup`` (one columnar
analyze pass over a saved store must beat re-simulating the run by at
least 5x — the acceptance gate for the zero-copy mmap read path).

A guarded key that is MISSING from the candidate JSON is a hard failure,
not a silent skip: a renamed or dropped metric would otherwise disable
its own gate. On any failure the script prints a full key-by-key
comparison table (baseline keys x candidate results) to stderr so the log
shows exactly which keys exist on each side.

Only the standard library is used so the script runs on a bare CI image.
"""

import json
import sys


def comparison_table(results, baseline):
    """Every key from either side, one row each: kind, baseline, candidate."""
    kinds = {}
    for kind in ("guarded", "guarded_max", "guarded_min", "informational"):
        for name in baseline.get(kind, {}):
            kinds[name] = kind
    names = sorted(set(kinds) | set(results))
    rows = [("key", "kind", "baseline", "candidate")]
    for name in names:
        kind = kinds.get(name, "-")
        base = baseline.get(kinds[name], {}).get(name) if name in kinds else None
        measured = results.get(name)
        fmt = lambda v: f"{v:.6g}" if isinstance(v, (int, float)) else "MISSING"
        rows.append((name, kind, fmt(base), fmt(measured)))
    widths = [max(len(row[col]) for row in rows) for col in range(4)]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        bench = json.load(f)
    with open(argv[2]) as f:
        baseline = json.load(f)

    results = bench.get("results", {})
    tolerance = float(baseline.get("tolerance", 0.20))
    failures = []

    for name, base in sorted(baseline.get("guarded", {}).items()):
        measured = results.get(name)
        if measured is None:
            print(f"{name}: MISSING from candidate results "
                  f"(guarded, baseline {base:.6g}) -> FAILED")
            failures.append(
                f"{name}: guarded key missing from candidate JSON — the gate "
                f"cannot run; was the metric renamed or dropped?")
            continue
        floor = float(base) * (1.0 - tolerance)
        ratio = float(measured) / float(base)
        verdict = "OK" if float(measured) >= floor else "REGRESSED"
        print(f"{name}: measured {measured:.6g} vs baseline {base:.6g} "
              f"({ratio:.2f}x, floor {floor:.6g}) -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {measured:.6g} < floor {floor:.6g} "
                f"(baseline {base:.6g}, tolerance {tolerance:.0%})")

    for name, ceiling in sorted(baseline.get("guarded_max", {}).items()):
        measured = results.get(name)
        if measured is None:
            print(f"{name}: MISSING from candidate results "
                  f"(guarded_max, ceiling {ceiling:.6g}) -> FAILED")
            failures.append(
                f"{name}: guarded_max key missing from candidate JSON — the "
                f"gate cannot run; was the metric renamed or dropped?")
            continue
        verdict = "OK" if float(measured) <= float(ceiling) else "EXCEEDED"
        print(f"{name}: measured {measured:.6g} vs ceiling {ceiling:.6g} "
              f"(lower is better) -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {measured:.6g} > ceiling {ceiling:.6g}")

    for name, floor in sorted(baseline.get("guarded_min", {}).items()):
        measured = results.get(name)
        if measured is None:
            print(f"{name}: MISSING from candidate results "
                  f"(guarded_min, floor {floor:.6g}) -> FAILED")
            failures.append(
                f"{name}: guarded_min key missing from candidate JSON — the "
                f"gate cannot run; was the metric renamed or dropped?")
            continue
        verdict = "OK" if float(measured) >= float(floor) else "BELOW FLOOR"
        print(f"{name}: measured {measured:.6g} vs floor {floor:.6g} "
              f"(higher is better, no tolerance) -> {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {measured:.6g} < floor {floor:.6g}")

    for name, base in sorted(baseline.get("informational", {}).items()):
        measured = results.get(name)
        shown = f"{measured:.6g}" if measured is not None else "missing"
        print(f"{name}: measured {shown} vs baseline {base:.6g} (informational)")

    if failures:
        print("\nperf regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print("\nfull key-by-key comparison:", file=sys.stderr)
        print(comparison_table(results, baseline), file=sys.stderr)
        return 1
    print("\nperf regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
