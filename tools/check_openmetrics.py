#!/usr/bin/env python3
"""Validate an OpenMetrics exposition produced by --metrics-format=openmetrics.

Usage:
    check_openmetrics.py <metrics.txt>

A regex-level structural check (not a full OpenMetrics parser):
  1. every line is a comment (# TYPE / # HELP / # EOF) or a sample line
     ``name{labels} value`` with a legal metric name and a finite value;
  2. every sample's family was declared by a preceding # TYPE line;
  3. counter samples end in _total; histogram families expose _bucket
     lines with le labels plus _count and _sum;
  4. histogram _bucket sequences are cumulative (non-decreasing) and end
     with an le="+Inf" bucket, per label set — a labelled histogram
     family (e.g. one series per query type) is one independent bucket
     sequence for each distinct set of non-le labels;
  5. the last line is the mandatory ``# EOF`` terminator, exactly once.

Exit 0 with a summary line on success, 1 with the first violation.
Standard library only.
"""

import math
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
TYPE_RE = re.compile(rf"^# TYPE ({NAME}) (counter|gauge|histogram|summary|"
                     r"unknown|info|stateset|gaugehistogram)$")
HELP_RE = re.compile(rf"^# HELP ({NAME}) .*$")
LABELS = (r'\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
          r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\}')
SAMPLE_RE = re.compile(
    rf"^({NAME})({LABELS})? (-?[0-9.eE+-]+|[+-]?Inf|NaN)(?:\s[0-9.eE+-]+)?$")
BUCKET_LE_RE = re.compile(r'le="([^"]*)"')
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def fail(msg):
    print(f"OpenMetrics check FAILED: {msg}", file=sys.stderr)
    return 1


def family_of(name, kind):
    """Strip the suffix a sample name carries on top of its family name."""
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base:
                return base, suffix
    return name, ""


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        lines = f.read().splitlines()

    types = {}
    samples = 0
    eof_seen = False
    buckets = {}  # (family, non-le labels) -> [(le_string, cumulative_count)]
    for lineno, line in enumerate(lines, 1):
        if eof_seen:
            return fail(f"line {lineno}: content after # EOF terminator")
        if line == "# EOF":
            eof_seen = True
            continue
        if not line.strip():
            continue
        m = TYPE_RE.match(line)
        if m:
            family = m.group(1)
            if family in types:
                return fail(f"line {lineno}: duplicate # TYPE for {family}")
            types[family] = m.group(2)
            continue
        if HELP_RE.match(line):
            continue
        if line.startswith("#"):
            return fail(f"line {lineno}: unrecognised comment line: {line!r}")
        m = SAMPLE_RE.match(line)
        if not m:
            return fail(f"line {lineno}: not a valid sample line: {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            v = float(value)
        except ValueError:
            return fail(f"line {lineno}: unparseable value {value!r}")
        if not math.isfinite(v):
            return fail(f"line {lineno}: non-finite value {value!r}")

        # Resolve the sample back to its declared family.
        candidates = [name]
        base, suffix = family_of(name, None)
        if suffix:
            candidates.append(base)
        family = next((c for c in candidates if c in types), None)
        if family is None:
            return fail(f"line {lineno}: sample {name!r} has no preceding "
                        f"# TYPE declaration")
        kind = types[family]
        if kind == "counter" and not name.endswith("_total"):
            return fail(f"line {lineno}: counter sample {name!r} must end "
                        f"in _total")
        if kind == "histogram" and name.endswith("_bucket"):
            le = BUCKET_LE_RE.search(labels)
            if not le:
                return fail(f"line {lineno}: histogram bucket without an "
                            f"le label: {line!r}")
            rest = ",".join(f'{k}="{val}"'
                            for k, val in LABEL_PAIR_RE.findall(labels)
                            if k != "le")
            buckets.setdefault((family, rest), []).append((le.group(1), v))
        samples += 1

    if not eof_seen:
        return fail("missing # EOF terminator")
    if samples == 0:
        return fail("no sample lines")

    for (family, rest), seq in buckets.items():
        where = f"{family}{{{rest}}}" if rest else family
        counts = [c for _, c in seq]
        if counts != sorted(counts):
            return fail(f"histogram {where}: bucket counts not cumulative: "
                        f"{counts}")
        if seq[-1][0] != "+Inf":
            return fail(f"histogram {where}: bucket sequence does not end "
                        f'with le="+Inf" (ends with le="{seq[-1][0]}")')

    kinds = {}
    for k in types.values():
        kinds[k] = kinds.get(k, 0) + 1
    summary = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
    print(f"OpenMetrics check passed: {samples} samples across "
          f"{len(types)} families ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
