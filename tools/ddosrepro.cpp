// ddosrepro — command-line driver for the reproduction pipeline.
//
//   ddosrepro world    [--seed N --domains N --providers N]
//                      [--zone <tld> --out <file>] [--audit]
//   ddosrepro run      [--seed N --scale X --domains N --providers N]
//                      [--threads N] [--store <file.drs>]
//                      [--streaming] [--window-days N]
//                      [--events-csv <file>] [--feed-csv <file>]
//                      [--metrics-out <file>] [--trace-out <file>] [--progress]
//   ddosrepro generate --store <file.drs> [run flags]
//   ddosrepro generate --shard i/N --store <shard.drs> [run flags]
//   ddosrepro merge    <out.drs> <shard.drs> [shard.drs ...]
//   ddosrepro analyze  --store <file.drs> [--rejoin] [--threads N]
//   ddosrepro analyze  --events-csv <file>
//   ddosrepro serve    --store <file.drs> [--threads N] [--duration-s S]
//                      [--serve-ops N] [--dist uniform|zipfian] [--theta X]
//                      [--mix P:T:S] [--topk K] [--scan-days N]
//   ddosrepro serve    --store <file.drs> --listen host:port [--refill S]
//   ddosrepro serve    --connect host:port [--target-qps Q] [drive flags]
//   ddosrepro transip  [--scale X]
//   ddosrepro russia
//
// `run` executes the seventeen-month pipeline and prints the headline
// shapes. `generate` is `run` that persists the three pipeline datasets
// (RSDoS feed windows, sweep aggregates, joined NSSet-attack events) plus
// full provenance to a DRS dataset store; `analyze --store` reads one back
// — every block checksum-validated — and recomputes the same headline
// statistics without re-simulating (--rejoin additionally re-runs the join
// stage from the stored aggregates and asserts a bit-for-bit match).
// `analyze --events-csv` replays the lossy CSV export instead.
//
// Sharded generation: `generate --shard i/N` executes one shard of a
// deterministic N-way day partition of the same world and writes an
// independent shard store; `merge` k-way merges the N shard files into
// one store byte-identical (`cmp`) to a single-process `generate
// --store` of the same config — see scenario/plan.h and store/merge.h.
//
// --streaming switches run/generate to the bounded-memory day-epoch
// pipeline (channel-connected stages; folded state retires once the
// day-after join has consumed it) — output is bit-identical to the
// default materializing path at any --threads and --window-days, the
// latter only bounding how long retired-eligible days linger.
//
// Observability (run): --metrics-out writes a run-report JSON (config,
// stage timings, metric snapshot, headline results) — or, with
// --metrics-format=openmetrics, a Prometheus-style text exposition —
// --trace-out writes a Chrome trace_event file (open in chrome://tracing
// or Perfetto), and --progress emits a one-line heartbeat per simulated
// sweep day on stderr.
//
// `serve` loads a DRS store, builds the read-optimized serve indexes
// (fill phase), then drives the concurrent query API from --threads
// closed-loop client threads (mixed phase) and reports per-query-type
// throughput and latency quantiles plus a deterministic answer
// fingerprint (--serve-ops fixed-ops mode; re-runs must print the same
// fingerprint line for equal seed/threads). With --listen it instead puts
// the engine on the wire (net::Server, epoll event loops; --refill polls
// the store and hot-swaps a rebuilt engine); with --connect it drives a
// remote server over TCP — closed loop by default, open loop at a fixed
// schedule with --target-qps — and a remote drive with C connections
// prints the same fingerprint as a local drive with C threads over the
// same store, seed and mix.
//
// Time-resolved telemetry (run): --telemetry-out streams one JSONL sample
// of every metric/progress/process series per --telemetry-interval-ms;
// --dashboard-out renders a self-contained HTML dashboard (sparklines +
// stage timeline, no external assets); --watchdog-timeout-s N aborts with
// a full diagnostic dump if no pipeline stage makes progress for N
// seconds (0 disables).
#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "core/analysis.h"
#include "exec/pool.h"
#include "core/audit.h"
#include "core/export.h"
#include "dns/zonefile.h"
#include "net/remote.h"
#include "net/server.h"
#include "obs/export_html.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "scenario/driver.h"
#include "scenario/russia.h"
#include "scenario/transip.h"
#include "serve/driver.h"
#include "serve/query_engine.h"
#include "serve/workload.h"
#include "store/format.h"
#include "store/merge.h"
#include "util/flags.h"
#include "util/strings.h"
#include "util/table.h"

#include "cli_commands.h"

using namespace ddos;

namespace {

// Default for --window-days, overridable via DDOSREPRO_WINDOW_DAYS (the
// same convention DDOSREPRO_THREADS uses for the worker pool).
unsigned env_window_days() {
  if (const char* env = std::getenv("DDOSREPRO_WINDOW_DAYS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return 2;
}

int cmd_world(util::FlagParser& flags) {
  scenario::WorldParams params;
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  params.domain_count = static_cast<std::uint32_t>(flags.get_int("domains"));
  params.provider_count =
      static_cast<std::uint32_t>(flags.get_int("providers"));
  const auto world = scenario::build_world(params);

  std::cout << "world: " << world->registry.domain_count() << " domains, "
            << world->registry.nsset_count() << " NSSets, "
            << world->registry.nameserver_count() << " nameservers, "
            << world->providers.size() << " providers\n";
  std::cout << "largest providers:\n";
  for (int i = 0; i < 5; ++i) {
    const auto& p = world->providers[static_cast<std::size_t>(i)];
    std::cout << "  " << p.name << ": " << p.domains_hosted << " domains ("
              << scenario::to_string(p.style) << ")\n";
  }

  const std::string tld = flags.get_string("zone");
  if (!tld.empty()) {
    const std::string zone = dns::export_zone_file(world->registry, tld);
    const std::string out_path = flags.get_string("out");
    if (out_path.empty()) {
      std::cout << zone;
    } else {
      std::ofstream out(out_path);
      out << zone;
      std::cout << "wrote ." << tld << " zone ("
                << util::format_count(static_cast<double>(zone.size()))
                << "B) to " << out_path << "\n";
    }
  }

  if (flags.get_bool("audit")) {
    const core::DelegationAuditor auditor(world->registry, world->census,
                                          world->routes);
    const auto s = auditor.audit_all(100);
    util::TextTable table({"audit property", "domains", "share"});
    const auto row = [&](const char* label, std::uint64_t n) {
      table.add_row({label, util::with_commas(n),
                     util::format_fixed(100.0 * s.share(n), 2) + "%"});
    };
    row("single nameserver", s.single_ns);
    row("single /24", s.single_slash24);
    row("single ASN", s.single_asn);
    row("lame NS entry", s.with_lame_ns);
    row("open resolver as NS", s.with_open_resolver_ns);
    row("full anycast", s.full_anycast);
    std::cout << table.to_string();
  }
  return 0;
}

// Shared value printer: `run` feeds it from the row kernels, `analyze
// --store` from the columnar kernels. One formatting path is what makes
// the two outputs byte-identical whenever the values agree (CI diffs
// them).
void print_analysis_values(const core::ImpactSummary& impacts,
                           const core::FailureSummary& failures,
                           const core::CorrelationSeries& duration,
                           const std::vector<core::GroupImpact>& by_anycast) {
  util::TextTable table({"analysis", "value"});
  table.add_row({"events", util::with_commas(impacts.events)});
  table.add_row({">=10x impact share",
                 util::format_fixed(100 * impacts.impaired_share(), 2) + "%"});
  table.add_row(
      {">=100x among impaired",
       util::format_fixed(100 * impacts.severe_share_of_impaired(), 1) + "%"});
  table.add_row(
      {"events with failures",
       util::format_fixed(100 * failures.failing_event_share(), 2) + "%"});
  table.add_row(
      {"timeout share of failures",
       util::format_fixed(100 * failures.timeout_share_of_failures(), 1) +
           "%"});
  table.add_row({"Pearson(duration, impact)",
                 util::format_fixed(duration.pearson, 3)});
  std::cout << table.to_string();

  std::cout << "impact by resilience class (median/max/n):\n";
  for (const auto& g : by_anycast) {
    std::cout << "  " << g.group << ": "
              << util::format_fixed(g.median_impact, 2) << " / "
              << util::format_fixed(g.max_impact, 0) << " / " << g.events
              << "\n";
  }
}

void print_analysis(const std::vector<core::NssetAttackEvent>& events) {
  print_analysis_values(core::impact_summary(events),
                        core::failure_summary(events),
                        core::duration_impact_series(events),
                        core::impact_by_anycast(events));
}

// The one-line pipeline summary printed by both `run` and
// `analyze --store`; CI diffs everything from this line on between the
// two paths, so the text must match byte for byte.
void print_pipeline_line(std::uint64_t attacks, std::uint64_t feed_records,
                         std::uint64_t events, std::uint64_t joined,
                         std::uint64_t swept) {
  std::cout << "pipeline: " << attacks << " attacks -> " << feed_records
            << " feed records -> " << events << " events -> " << joined
            << " joined NSSet-attack events (" << util::with_commas(swept)
            << " measurements swept)\n\n";
}

void print_progress(const obs::ProgressEvent& e) {
  if (e.stage == "join") {
    std::cerr << "[progress] join: " << e.joined << " NSSet-events from "
              << e.events << " telescope events, "
              << util::with_commas(e.measurements) << " measurements\n";
    return;
  }
  std::cerr << "[progress] day " << e.day << " (" << e.days_done << "/"
            << e.days_total << "): " << util::with_commas(e.measurements)
            << " measurements, " << e.events << " events, "
            << util::format_count(e.sweep_rate_per_s) << " sweeps/s\n";
}

int cmd_run(util::FlagParser& flags) {
  scenario::LongitudinalConfig cfg = scenario::default_longitudinal_config();
  cfg.world.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.world.domain_count =
      static_cast<std::uint32_t>(flags.get_int("domains"));
  cfg.world.provider_count =
      static_cast<std::uint32_t>(flags.get_int("providers"));
  cfg.workload.scale = flags.get_double("scale");

  const unsigned threads = static_cast<unsigned>(flags.get_uint("threads"));
  exec::set_global_threads(threads);

  const std::string metrics_path = flags.get_string("metrics-out");
  const std::string metrics_format = flags.get_string("metrics-format");
  const std::string trace_path = flags.get_string("trace-out");
  const std::string telemetry_path = flags.get_string("telemetry-out");
  const std::string dashboard_path = flags.get_string("dashboard-out");
  const double watchdog_timeout_s = flags.get_double("watchdog-timeout-s");
  const bool progress = flags.get_bool("progress");

  if (metrics_format != "json" && metrics_format != "openmetrics") {
    std::cerr << "--metrics-format must be json or openmetrics, got '"
              << metrics_format << "'\n";
    return 2;
  }

  // Observability is opt-in: with none of the flags present, no observer
  // is installed and the pipeline runs uninstrumented (and bit-identically
  // to an instrumented run — telemetry never feeds back into results).
  std::optional<obs::Observer> observer;
  std::optional<obs::ScopedInstall> install;
  if (progress || !metrics_path.empty() || !trace_path.empty() ||
      !telemetry_path.empty() || !dashboard_path.empty() ||
      watchdog_timeout_s > 0.0) {
    observer.emplace();
    if (progress) observer->set_progress(print_progress);
    install.emplace(*observer);
  }

  // Background telemetry sampler: needed by --telemetry-out (JSONL stream)
  // and --dashboard-out (sparkline series).
  std::optional<obs::TelemetrySampler> sampler;
  if (!telemetry_path.empty() || !dashboard_path.empty()) {
    obs::SamplerOptions sopts;
    sopts.interval_ms = flags.get_uint("telemetry-interval-ms");
    sopts.capacity_per_series =
        static_cast<std::size_t>(flags.get_uint("telemetry-capacity"));
    sopts.jsonl_path = telemetry_path;
    sampler.emplace(*observer, sopts);
    sampler->start();
  }

  // Stall watchdog: aborts with a diagnostic dump when no registered
  // progress source advances within the timeout.
  std::optional<obs::StallWatchdog> watchdog;
  if (watchdog_timeout_s > 0.0) {
    obs::WatchdogOptions wopts;
    wopts.timeout_s = watchdog_timeout_s;
    wopts.poll_ms = std::max<std::uint64_t>(
        50, static_cast<std::uint64_t>(watchdog_timeout_s * 1000.0 / 4.0));
    wopts.crash_path = "ddosrepro_stall_report.txt";
    wopts.sampler = sampler ? &*sampler : nullptr;
    watchdog.emplace(*observer, wopts);
    watchdog->start();
  }

  const bool streaming = flags.get_bool("streaming");
  const std::string store_path = flags.get_string("store");
  scenario::LongitudinalResult r;
  try {
    if (streaming) {
      scenario::StreamingOptions opts;
      opts.window_days =
          static_cast<netsim::DayIndex>(flags.get_uint("window-days"));
      opts.threads = threads;
      // The streaming run appends the DRS store per retired epoch instead
      // of snapshotting at the end (the full store never materialises).
      opts.store_path = store_path;
      // Streaming retires feed records as they are folded; only the CSV
      // export still needs the full vector resident.
      opts.retain_feed = !flags.get_string("feed-csv").empty();
      r = scenario::run_longitudinal_streaming(cfg, opts);
    } else {
      r = scenario::run_longitudinal(cfg);
    }
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return 1;
  }
  // The run is done: the watchdog must not treat report writing as a
  // stall, and the sampler's stop() takes the final end-of-run sample.
  if (watchdog) watchdog->stop();
  if (sampler) sampler->stop();
  print_pipeline_line(r.workload.schedule.size(), r.feed_records,
                      r.events.size(), r.joined.size(), r.swept_measurements);
  print_analysis(r.joined);

  if (!store_path.empty()) {
    if (streaming) {
      std::cout << "\nwrote dataset store ("
                << util::format_count(static_cast<double>(r.store_bytes))
                << "B) to " << store_path << "\n";
    } else {
      try {
        const std::uint64_t bytes =
            scenario::save_run(store_path, cfg, threads, r);
        std::cout << "\nwrote dataset store ("
                  << util::format_count(static_cast<double>(bytes)) << "B) to "
                  << store_path << "\n";
      } catch (const store::StoreError& e) {
        std::cerr << "store error: " << e.what() << "\n";
        return 1;
      }
    }
  }

  const std::string events_path = flags.get_string("events-csv");
  if (!events_path.empty()) {
    std::ofstream out(events_path);
    core::write_events_csv(out, r.joined);
    std::cout << "\nwrote " << r.joined.size() << " events to "
              << events_path << "\n";
  }
  const std::string feed_path = flags.get_string("feed-csv");
  if (!feed_path.empty()) {
    std::ofstream out(feed_path);
    r.feed.write_csv(out);
    std::cout << "wrote " << r.feed.records().size() << " feed records to "
              << feed_path << "\n";
  }

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot write " << trace_path << "\n";
      return 1;
    }
    observer->tracer().write_chrome_json(out);
    std::cout << "wrote " << observer->tracer().event_count()
              << " trace spans to " << trace_path << "\n";
  }
  if (sampler && !telemetry_path.empty()) {
    std::cout << "wrote " << sampler->samples_taken() << " telemetry samples ("
              << sampler->series().series_count() << " series) to "
              << telemetry_path << "\n";
  }
  if (!dashboard_path.empty()) {
    obs::DashboardOptions dopts;
    dopts.title = "ddosrepro run (seed " +
                  std::to_string(flags.get_int("seed")) + ")";
    dopts.meta = {
        {"seed", std::to_string(flags.get_int("seed"))},
        {"domains", std::to_string(flags.get_int("domains"))},
        {"providers", std::to_string(flags.get_int("providers"))},
        {"scale", util::format_fixed(flags.get_double("scale"), 2)},
        {"threads", std::to_string(threads)},
        {"pipeline", streaming ? "streaming" : "materialized"},
        {"wall time",
         util::format_fixed(
             static_cast<double>(observer->tracer().now_ns()) / 1e9, 2) +
             " s"},
        {"joined events", std::to_string(r.joined.size())},
        {"swept measurements", util::with_commas(r.swept_measurements)},
    };
    if (!obs::write_dashboard_html_file(dashboard_path, *observer,
                                        sampler ? &*sampler : nullptr,
                                        dopts)) {
      std::cerr << "cannot write " << dashboard_path << "\n";
      return 1;
    }
    std::cout << "wrote run dashboard to " << dashboard_path << "\n";
  }
  if (!metrics_path.empty() && metrics_format == "openmetrics") {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    out << observer->metrics().snapshot().to_openmetrics();
    std::cout << "wrote OpenMetrics exposition to " << metrics_path << "\n";
  } else if (!metrics_path.empty()) {
    obs::RunReport report("run");
    report.add_config("seed", flags.get_int("seed"));
    report.add_config("domains", flags.get_int("domains"));
    report.add_config("providers", flags.get_int("providers"));
    report.add_config("scale", flags.get_double("scale"));
    report.add_config("threads", static_cast<std::int64_t>(threads));
    report.add_result("attacks",
                      static_cast<std::int64_t>(r.workload.schedule.size()));
    report.add_result("feed_records",
                      static_cast<std::int64_t>(r.feed_records));
    report.add_result("events", static_cast<std::int64_t>(r.events.size()));
    report.add_result("joined", static_cast<std::int64_t>(r.joined.size()));
    report.add_result("swept_measurements",
                      static_cast<std::int64_t>(r.swept_measurements));
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot write " << metrics_path << "\n";
      return 1;
    }
    report.write(out, *observer);
    std::cout << "wrote run report to " << metrics_path << "\n";
  }
  return 0;
}

// `generate --shard i/N`: execute one shard of the deterministic N-way
// day partition (scenario/plan.h) and write an independent shard store.
// Kept apart from cmd_run — the shard path is always materialized (the
// shard store layout needs the full pre-merge join vector) and prints a
// shard accounting line instead of the whole-run analyses.
int cmd_generate_shard(util::FlagParser& flags,
                       const scenario::ShardSpec& shard) {
  if (flags.get_bool("streaming")) {
    std::cerr << "--shard uses the materialized driver; drop --streaming "
                 "(the merged store is byte-identical either way)\n";
    return 2;
  }
  scenario::LongitudinalConfig cfg = scenario::default_longitudinal_config();
  cfg.world.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.world.domain_count =
      static_cast<std::uint32_t>(flags.get_int("domains"));
  cfg.world.provider_count =
      static_cast<std::uint32_t>(flags.get_int("providers"));
  cfg.workload.scale = flags.get_double("scale");

  const unsigned threads = static_cast<unsigned>(flags.get_uint("threads"));
  exec::set_global_threads(threads);

  std::optional<obs::Observer> observer;
  std::optional<obs::ScopedInstall> install;
  if (flags.get_bool("progress")) {
    observer.emplace();
    observer->set_progress(print_progress);
    install.emplace(*observer);
  }

  const std::string store_path = flags.get_string("store");
  try {
    const scenario::ShardRunResult r =
        scenario::run_shard(cfg, shard, threads, store_path);
    std::cout << "shard " << shard.index << "/" << shard.count << ": "
              << r.owned_events << "/" << r.events_total
              << " telescope events owned, " << r.joined_rows
              << " joined rows, " << util::with_commas(r.feed_rows)
              << " feed rows, " << util::with_commas(r.swept_measurements)
              << " measurements swept\n";
    std::cout << "wrote shard store ("
              << util::format_count(static_cast<double>(r.store_bytes))
              << "B) to " << store_path
              << " — combine the " << shard.count
              << " shards with 'ddosrepro merge'\n";
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_generate(util::FlagParser& flags) {
  if (flags.get_string("store").empty()) {
    std::cerr << "generate requires --store <file.drs>\n";
    return 1;
  }
  const std::string shard_spec = flags.get_string("shard");
  if (!shard_spec.empty()) {
    std::string shard_error;
    const auto shard = scenario::parse_shard(shard_spec, &shard_error);
    if (!shard) {
      std::cerr << "flag --" << shard_error << "\n";
      return 2;
    }
    return cmd_generate_shard(flags, *shard);
  }
  return cmd_run(flags);
}

int cmd_merge(util::FlagParser& flags) {
  const auto& args = flags.positional();
  if (args.size() < 3) {
    std::cerr << "merge requires an output path and at least one shard "
                 "store:\n  ddosrepro merge <out.drs> <shard.drs> "
                 "[shard.drs ...]\n";
    return 2;
  }
  const std::string& out_path = args[1];
  const std::vector<std::string> shard_paths(args.begin() + 2, args.end());
  try {
    const auto merge_start = std::chrono::steady_clock::now();
    const store::MergeStats stats = store::merge_stores(out_path, shard_paths);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    std::cout << "merged " << stats.shards << " shard stores -> " << out_path
              << " ("
              << util::format_count(static_cast<double>(stats.bytes_written))
              << "B): " << util::with_commas(stats.rows_merged)
              << " column values, " << stats.events_out << " joined events";
    if (secs > 0.0) {
      std::cout << " in " << util::format_fixed(secs, 2) << "s ("
                << util::format_count(
                       static_cast<double>(stats.bytes_written) / secs)
                << "B/s)";
    }
    std::cout << "\n";
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}

int cmd_analyze_store(util::FlagParser& flags, const std::string& path) {
  exec::set_global_threads(static_cast<unsigned>(flags.get_uint("threads")));
  // Column-native analysis: the store is mapped read-only (--no-mmap
  // falls back to the buffered reader) and every headline statistic is
  // recomputed from column spans — no row materialization. Output is
  // byte-identical to the row path (`run`); CI diffs the two.
  const bool use_mmap = !flags.get_bool("no-mmap");
  scenario::StoreAnalysis analysis;
  try {
    analysis = scenario::analyze_store(path, use_mmap);
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return 1;
  }

  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  std::cout << "store: " << path;
  if (!ec) {
    std::cout << " (" << util::format_count(static_cast<double>(bytes))
              << "B)";
  }
  std::cout << "\nprovenance: world seed " << analysis.world_seed << ", "
            << analysis.domain_count << " domains, "
            << analysis.provider_count << " providers; workload seed "
            << analysis.workload_seed << ", scale "
            << analysis.workload_scale << "; sweep/feed seeds "
            << analysis.sweep_seed << "/" << analysis.feed_seed
            << "; generated with " << analysis.threads << " threads\n";

  if (flags.get_bool("rejoin")) {
    try {
      const scenario::StoredRun run = scenario::load_run(path, use_mmap);
      const auto rejoin = scenario::rejoin_from_store(run);
      const bool match =
          scenario::rejoin_matches_store(path, use_mmap, run, rejoin);
      std::cout << "rejoin: " << rejoin.joined.size()
                << " joined events recomputed from stored aggregates — "
                << (match ? "bit-for-bit match with stored events"
                          : "MISMATCH with stored events")
                << "\n";
      if (!match) {
        std::cerr << "rejoin mismatch: store provenance does not reproduce "
                     "the generating run\n";
        return 1;
      }
    } catch (const store::StoreError& e) {
      std::cerr << "store error: " << e.what() << "\n";
      return 1;
    }
  }

  std::cout << "\n";
  print_pipeline_line(analysis.attacks, analysis.feed_records,
                      analysis.events, analysis.joined,
                      analysis.swept_measurements);
  print_analysis_values(analysis.impact, analysis.failures,
                        analysis.duration_series, analysis.by_anycast);
  return 0;
}

int cmd_analyze(util::FlagParser& flags) {
  const std::string store_path = flags.get_string("store");
  if (!store_path.empty()) return cmd_analyze_store(flags, store_path);

  const std::string path = flags.get_string("events-csv");
  if (path.empty()) {
    std::cerr << "analyze requires --store <file.drs> or --events-csv "
                 "<file>\n";
    return 1;
  }
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  core::EventsCsvReport report;
  const auto events = core::read_events_csv(in, &report);
  if (report.rows_skipped > 0) {
    std::cerr << "warning: skipped " << report.rows_skipped
              << " malformed row" << (report.rows_skipped == 1 ? "" : "s")
              << " in " << path << " (" << report.rows_read << " parsed)\n";
  }
  std::cout << "loaded " << events.size() << " events from " << path
            << "\n\n";
  print_analysis(events);
  return 0;
}

int cmd_transip(util::FlagParser& flags) {
  scenario::TransIPParams params;
  params.scale = flags.get_double("scale");
  const auto r = scenario::run_transip(params);
  std::cout << "TransIP replay at scale " << params.scale << ": "
            << util::with_commas(r.domains_hosted) << " domains\n";
  std::cout << "December: peak impact "
            << util::format_fixed(r.december_peak_impact, 1)
            << "x, residual " << util::format_fixed(r.december_residual_hours, 1)
            << "h (paper: ~10x, ~8h)\n";
  std::cout << "March: peak impact "
            << util::format_fixed(r.march_peak_impact, 1)
            << "x, peak timeout share "
            << util::format_fixed(100 * r.march_peak_timeout_share, 1)
            << "% (paper: larger, ~20%)\n";
  return 0;
}

int cmd_russia(util::FlagParser&) {
  const auto r = scenario::run_russia(scenario::RussiaParams{});
  std::cout << "mil.ru: " << r.milru.attack_windows_probed
            << " attack windows probed, "
            << util::format_fixed(100 * r.milru.unresolvable_share(), 1)
            << "% fully unresolvable; geofence "
            << r.milru.geofence_start.to_string() << " .. "
            << r.milru.geofence_end.to_string() << "\n";
  std::cout << "rzd.ru: resolution during attack "
            << util::format_fixed(100 * r.rdz.during_attack_resolution_rate, 1)
            << "%, recovery at "
            << (r.rdz.recovered() ? r.rdz.recovery_time.to_string()
                                  : "n/a")
            << " (paper: ~06:00 next day)\n";
  return 0;
}

// SIGINT/SIGTERM flag for `serve --listen`: the handler only sets this,
// the serving loop polls it.
volatile std::sig_atomic_t g_serve_stop = 0;
void on_serve_signal(int) { g_serve_stop = 1; }

/// "host:port" -> (host, port). Port must be 0..65535; 0 means ephemeral.
bool parse_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port, std::string& error) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    error = "expected host:port, got '" + spec + "'";
    return false;
  }
  host = spec.substr(0, colon);
  const std::string port_str = spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long v = std::strtoul(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || v > 65535) {
    error = "bad port '" + port_str + "' in '" + spec + "'";
    return false;
  }
  port = static_cast<std::uint16_t>(v);
  return true;
}

int cmd_serve(util::FlagParser& flags) {
  const std::string store_path = flags.get_string("store");
  const std::string listen_spec = flags.get_string("listen");
  const std::string connect_spec = flags.get_string("connect");
  const double target_qps = flags.get_double("target-qps");
  const double refill_s = flags.get_double("refill");
  if (!listen_spec.empty() && !connect_spec.empty()) {
    std::cerr << "--listen and --connect are mutually exclusive\n";
    return 2;
  }
  if (target_qps > 0.0 && connect_spec.empty()) {
    std::cerr << "--target-qps (open-loop driving) requires --connect\n";
    return 2;
  }
  if (refill_s > 0.0 && listen_spec.empty()) {
    std::cerr << "--refill requires --listen\n";
    return 2;
  }
  if (store_path.empty() && connect_spec.empty()) {
    std::cerr << "serve requires --store <file.drs> (or --connect to drive "
                 "a remote server)\n";
    return 2;
  }

  serve::DriveOptions opts;
  opts.workload.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto dist = serve::parse_distribution(flags.get_string("dist"));
  if (!dist) {
    std::cerr << "--dist must be uniform or zipfian, got '"
              << flags.get_string("dist") << "'\n";
    return 2;
  }
  opts.workload.dist = *dist;
  opts.workload.theta = flags.get_double("theta");
  std::string mix_error;
  const auto mix = serve::parse_mix(flags.get_string("mix"), &mix_error);
  if (!mix) {
    std::cerr << "flag --" << mix_error << "\n";
    return 2;
  }
  opts.workload.mix = *mix;
  opts.workload.topk_k =
      static_cast<std::uint32_t>(flags.get_uint("topk"));
  opts.workload.scan_days =
      static_cast<netsim::DayIndex>(flags.get_uint("scan-days"));
  opts.ops_per_thread = flags.get_uint("serve-ops");
  opts.duration_s = flags.get_double("duration-s");

  const unsigned threads = static_cast<unsigned>(flags.get_uint("threads"));
  if (listen_spec.empty() && connect_spec.empty()) {
    exec::set_global_threads(threads);
  }

  const std::string metrics_path = flags.get_string("metrics-out");
  const std::string metrics_format = flags.get_string("metrics-format");
  const std::string trace_path = flags.get_string("trace-out");
  const std::string telemetry_path = flags.get_string("telemetry-out");
  const std::string dashboard_path = flags.get_string("dashboard-out");
  if (metrics_format != "json" && metrics_format != "openmetrics") {
    std::cerr << "--metrics-format must be json or openmetrics, got '"
              << metrics_format << "'\n";
    return 2;
  }

  std::optional<obs::Observer> observer;
  std::optional<obs::ScopedInstall> install;
  if (!metrics_path.empty() || !trace_path.empty() ||
      !telemetry_path.empty() || !dashboard_path.empty()) {
    observer.emplace();
    install.emplace(*observer);
  }
  std::optional<obs::TelemetrySampler> sampler;
  if (!telemetry_path.empty() || !dashboard_path.empty()) {
    obs::SamplerOptions sopts;
    sopts.interval_ms = flags.get_uint("telemetry-interval-ms");
    sopts.capacity_per_series =
        static_cast<std::size_t>(flags.get_uint("telemetry-capacity"));
    sopts.jsonl_path = telemetry_path;
    sampler.emplace(*observer, sopts);
    sampler->start();
  }
  // Command-lifetime progress source: drive() registers a finer-grained
  // per-op source, but that one only exists for the drive window, which a
  // short fixed-ops run can squeeze between two sampler ticks. This one
  // spans every sample the sampler takes, including the stop() bookend.
  std::atomic<std::uint64_t> completed_ops{0};
  std::optional<obs::ScopedProgressSource> progress;
  if (observer) {
    progress.emplace(&observer->progress_sources(), "serve.completed_ops",
                     [&completed_ops] {
                       return completed_ops.load(std::memory_order_relaxed);
                     });
  }

  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Report print + observability outputs shared by the in-process and
  // remote drive paths (`source` is the store path or the server address).
  const auto drive_epilogue = [&](const serve::DriveReport& report,
                                  const std::string& source) -> int {
    util::TextTable table(
        {"query", "ops", "ops/sec", "p50 us", "p99 us", "p99.9 us"});
    for (const serve::QueryTypeReport& tr : report.by_type) {
      table.add_row({serve::to_string(tr.type), util::with_commas(tr.ops),
                     util::format_count(tr.ops_per_sec),
                     util::format_fixed(tr.p50_us, 2),
                     util::format_fixed(tr.p99_us, 2),
                     util::format_fixed(tr.p999_us, 2)});
    }
    std::cout << table.to_string();
    std::cout << "total: " << util::with_commas(report.total_ops)
              << " ops in " << util::format_fixed(report.wall_s, 2)
              << "s = " << util::format_count(report.ops_per_sec)
              << "ops/sec";
    if (report.target_qps > 0.0) {
      std::cout << " (open loop, intended "
                << util::format_count(report.target_qps)
                << "qps; latency from intended send times)";
    }
    std::cout << "\n";
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(report.fingerprint));
    std::cout << "fingerprint: " << fp << "\n";

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return 1;
      }
      observer->tracer().write_chrome_json(out);
      std::cout << "wrote " << observer->tracer().event_count()
                << " trace spans to " << trace_path << "\n";
    }
    if (sampler && !telemetry_path.empty()) {
      std::cout << "wrote " << sampler->samples_taken()
                << " telemetry samples (" << sampler->series().series_count()
                << " series) to " << telemetry_path << "\n";
    }
    if (!dashboard_path.empty()) {
      obs::DashboardOptions dopts;
      dopts.title = "ddosrepro serve (" + source + ")";
      dopts.meta = {
          {"source", source},
          {"threads", std::to_string(report.threads)},
          {"distribution", serve::to_string(opts.workload.dist)},
          {"mix", opts.workload.mix.to_string()},
          {"total ops", util::with_commas(report.total_ops)},
          {"ops/sec", util::format_count(report.ops_per_sec)},
      };
      if (!obs::write_dashboard_html_file(dashboard_path, *observer,
                                          sampler ? &*sampler : nullptr,
                                          dopts)) {
        std::cerr << "cannot write " << dashboard_path << "\n";
        return 1;
      }
      std::cout << "wrote serve dashboard to " << dashboard_path << "\n";
    }
    if (!metrics_path.empty() && metrics_format == "openmetrics") {
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return 1;
      }
      out << observer->metrics().snapshot().to_openmetrics();
      std::cout << "wrote OpenMetrics exposition to " << metrics_path
                << "\n";
    } else if (!metrics_path.empty()) {
      obs::RunReport run_report("serve");
      run_report.add_config("source", source);
      run_report.add_config("seed", flags.get_int("seed"));
      run_report.add_config("threads",
                            static_cast<std::int64_t>(report.threads));
      run_report.add_config("dist",
                            std::string(serve::to_string(opts.workload.dist)));
      run_report.add_config("theta", opts.workload.theta);
      run_report.add_config("mix", opts.workload.mix.to_string());
      if (report.target_qps > 0.0) {
        run_report.add_config("target_qps", report.target_qps);
      }
      run_report.add_result("total_ops",
                            static_cast<std::int64_t>(report.total_ops));
      run_report.add_result("ops_per_sec", report.ops_per_sec);
      run_report.add_result("fingerprint", std::string(fp));
      for (const serve::QueryTypeReport& tr : report.by_type) {
        const std::string prefix = serve::to_string(tr.type);
        run_report.add_result(prefix + "_ops",
                              static_cast<std::int64_t>(tr.ops));
        run_report.add_result(prefix + "_p50_us", tr.p50_us);
        run_report.add_result(prefix + "_p99_us", tr.p99_us);
        run_report.add_result(prefix + "_p999_us", tr.p999_us);
      }
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return 1;
      }
      run_report.write(out, *observer);
      std::cout << "wrote serve report to " << metrics_path << "\n";
    }
    return 0;
  };

  // Remote drive: the server owns the store and the engine; this side is
  // workload generation, wire round trips and the shared epilogue.
  if (!connect_spec.empty()) {
    std::string host, hp_error;
    std::uint16_t port = 0;
    if (!parse_host_port(connect_spec, host, port, hp_error)) {
      std::cerr << "flag --connect " << hp_error << "\n";
      return 2;
    }
    net::RemoteDriveOptions ropts;
    ropts.host = host;
    ropts.port = port;
    ropts.connections = threads;
    ropts.workload = opts.workload;
    ropts.ops_per_thread = opts.ops_per_thread;
    ropts.duration_s = opts.duration_s;
    ropts.target_qps = target_qps;
    std::cout << "remote: " << host << ":" << port << ", " << threads
              << " connection" << (threads == 1 ? "" : "s") << ", ";
    if (target_qps > 0.0) {
      std::cout << "open loop @ " << util::format_count(target_qps) << "qps";
    } else {
      std::cout << "closed loop";
    }
    std::cout << ", mix " << opts.workload.mix.to_string() << "\n";
    serve::DriveReport report;
    try {
      report = net::drive_remote(ropts);
    } catch (const std::exception& e) {
      std::cerr << "remote drive failed: " << e.what() << "\n";
      return 1;
    }
    completed_ops.store(report.total_ops, std::memory_order_relaxed);
    if (sampler) sampler->stop();
    return drive_epilogue(report, connect_spec);
  }

  // Listen mode: the engine lives behind the server's atomic handle so
  // --refill can swap a rebuilt one in without dropping connections.
  if (!listen_spec.empty()) {
    std::string host, hp_error;
    std::uint16_t port = 0;
    if (!parse_host_port(listen_spec, host, port, hp_error)) {
      std::cerr << "flag --listen " << hp_error << "\n";
      return 2;
    }
    std::shared_ptr<const net::EngineHandle> handle;
    const Clock::time_point load_start = Clock::now();
    try {
      handle = net::EngineHandle::load(store_path, /*epoch=*/0);
    } catch (const store::StoreError& e) {
      std::cerr << "store error: " << e.what() << "\n";
      return 1;
    }
    std::cout << "fill: " << store_path << " loaded+indexed in "
              << util::format_fixed(seconds_since(load_start), 2) << "s; "
              << util::with_commas(handle->engine().nsset_count())
              << " NSSets, "
              << util::with_commas(handle->engine().series_points())
              << " series points, "
              << util::with_commas(handle->engine().leaderboard_entries())
              << " leaderboard rows\n";
    if (handle->engine().keys().empty()) {
      std::cerr << "store has no indexable NSSets to serve\n";
      return 1;
    }
    net::ServerOptions sopts;
    sopts.host = host;
    sopts.port = port;
    sopts.threads = threads;
    net::Server server(std::move(handle), sopts);
    try {
      server.start();
    } catch (const std::exception& e) {
      std::cerr << "cannot listen on " << listen_spec << ": " << e.what()
                << "\n";
      return 1;
    }
    std::cout << "listening on " << host << ":" << server.port() << " ("
              << threads << " event loop" << (threads == 1 ? "" : "s");
    if (refill_s > 0.0) {
      std::cout << ", refill poll every " << util::format_fixed(refill_s, 1)
                << "s";
    }
    // Flushed immediately: harnesses parse the resolved port from this line.
    std::cout << ")" << std::endl;

    g_serve_stop = 0;
    std::signal(SIGINT, on_serve_signal);
    std::signal(SIGTERM, on_serve_signal);
    std::error_code ec;
    auto last_mtime = std::filesystem::last_write_time(store_path, ec);
    std::uint64_t epoch = 0;
    const auto poll_interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(refill_s > 0.0 ? refill_s : 1.0));
    Clock::time_point next_poll = Clock::now() + poll_interval;
    while (g_serve_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (refill_s <= 0.0 || Clock::now() < next_poll) continue;
      next_poll = Clock::now() + poll_interval;
      const auto mtime = std::filesystem::last_write_time(store_path, ec);
      if (ec || mtime == last_mtime) continue;
      last_mtime = mtime;
      const Clock::time_point t0 = Clock::now();
      try {
        auto fresh = net::EngineHandle::load(store_path, ++epoch);
        const std::size_t nssets = fresh->engine().nsset_count();
        server.install_engine(std::move(fresh));
        std::cout << "refill: engine epoch " << epoch << " ("
                  << util::with_commas(nssets) << " NSSets) swapped in after "
                  << util::format_fixed(seconds_since(t0), 2) << "s"
                  << std::endl;
      } catch (const std::exception& e) {
        // Keep serving the previous epoch; a half-written store must not
        // take the server down.
        std::cerr << "refill failed (serving previous epoch): " << e.what()
                  << "\n";
      }
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    server.stop();
    const net::ServerStats stats = server.stats();
    completed_ops.store(stats.requests, std::memory_order_relaxed);
    if (sampler) sampler->stop();
    std::cout << "served " << util::with_commas(stats.requests)
              << " requests over "
              << util::with_commas(stats.connections_accepted)
              << " connections (rx " << util::with_commas(stats.rx_bytes)
              << " B, tx " << util::with_commas(stats.tx_bytes) << " B), "
              << stats.malformed_frames << " malformed, "
              << stats.engine_swaps << " engine swap"
              << (stats.engine_swaps == 1 ? "" : "s") << "\n";
    if (sampler && !telemetry_path.empty()) {
      std::cout << "wrote " << sampler->samples_taken()
                << " telemetry samples (" << sampler->series().series_count()
                << " series) to " << telemetry_path << "\n";
    }
    if (!dashboard_path.empty()) {
      obs::DashboardOptions dopts;
      dopts.title = "ddosrepro serve --listen (" + store_path + ")";
      dopts.meta = {
          {"store", store_path},
          {"listen", host + ":" + std::to_string(server.port())},
          {"requests", util::with_commas(stats.requests)},
          {"connections", util::with_commas(stats.connections_accepted)},
          {"engine swaps", std::to_string(stats.engine_swaps)},
      };
      if (!obs::write_dashboard_html_file(dashboard_path, *observer,
                                          sampler ? &*sampler : nullptr,
                                          dopts)) {
        std::cerr << "cannot write " << dashboard_path << "\n";
        return 1;
      }
      std::cout << "wrote serve dashboard to " << dashboard_path << "\n";
    }
    if (!metrics_path.empty() && metrics_format == "openmetrics") {
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return 1;
      }
      out << observer->metrics().snapshot().to_openmetrics();
      std::cout << "wrote OpenMetrics exposition to " << metrics_path
                << "\n";
    } else if (!metrics_path.empty()) {
      obs::RunReport run_report("serve-listen");
      run_report.add_config("store", store_path);
      run_report.add_config("listen",
                            host + ":" + std::to_string(server.port()));
      run_report.add_config("threads", static_cast<std::int64_t>(threads));
      run_report.add_result("requests",
                            static_cast<std::int64_t>(stats.requests));
      run_report.add_result(
          "connections",
          static_cast<std::int64_t>(stats.connections_accepted));
      run_report.add_result("rx_bytes",
                            static_cast<std::int64_t>(stats.rx_bytes));
      run_report.add_result("tx_bytes",
                            static_cast<std::int64_t>(stats.tx_bytes));
      run_report.add_result(
          "engine_swaps", static_cast<std::int64_t>(stats.engine_swaps));
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return 1;
      }
      run_report.write(out, *observer);
      std::cout << "wrote serve report to " << metrics_path << "\n";
    }
    return 0;
  }

  // Fill phase: load the stored run, then build the serve indexes.
  scenario::StoredRun run;
  const Clock::time_point load_start = Clock::now();
  try {
    run = scenario::load_run(store_path);
  } catch (const store::StoreError& e) {
    std::cerr << "store error: " << e.what() << "\n";
    return 1;
  }
  const double load_s = seconds_since(load_start);
  const Clock::time_point build_start = Clock::now();
  serve::QueryEngine engine(run);
  const double build_s = seconds_since(build_start);
  std::cout << "fill: " << store_path << " loaded in "
            << util::format_fixed(load_s, 2) << "s; indexed "
            << util::with_commas(engine.nsset_count()) << " NSSets, "
            << util::with_commas(engine.series_points())
            << " series points, "
            << util::with_commas(engine.leaderboard_entries())
            << " leaderboard rows in " << util::format_fixed(build_s, 2)
            << "s\n";
  if (engine.keys().empty()) {
    std::cerr << "store has no indexable NSSets to serve\n";
    return 1;
  }

  // Mixed phase: the closed-loop drive.
  std::cout << "mixed: " << threads << " threads, "
            << serve::to_string(opts.workload.dist) << " keys";
  if (opts.workload.dist == serve::Distribution::Zipfian) {
    std::cout << " (theta " << util::format_fixed(opts.workload.theta, 2)
              << ")";
  }
  std::cout << ", mix " << opts.workload.mix.to_string() << ", ";
  if (opts.ops_per_thread > 0) {
    std::cout << util::with_commas(opts.ops_per_thread)
              << " ops/thread (fixed)\n";
  } else {
    std::cout << util::format_fixed(opts.duration_s, 1) << "s\n";
  }
  const serve::DriveReport report = serve::drive(engine, opts);
  completed_ops.store(report.total_ops, std::memory_order_relaxed);
  if (sampler) sampler->stop();
  return drive_epilogue(report, store_path);
}

// Command dispatch, index-aligned with cli::kCommands (the usage header's
// source of truth); the static_assert below keeps the two from drifting.
struct CommandHandler {
  std::string_view name;
  int (*handler)(util::FlagParser&);
};

constexpr std::array<CommandHandler, cli::kCommands.size()> kHandlers{{
    {"world", cmd_world},
    {"run", cmd_run},
    {"generate", cmd_generate},
    {"merge", cmd_merge},
    {"analyze", cmd_analyze},
    {"serve", cmd_serve},
    {"transip", cmd_transip},
    {"russia", cmd_russia},
}};

constexpr bool handlers_match_usage() {
  for (std::size_t i = 0; i < kHandlers.size(); ++i) {
    if (kHandlers[i].name != cli::kCommands[i].name) return false;
  }
  return true;
}
static_assert(handlers_match_usage(),
              "tools/cli_commands.h and the kHandlers table must list the "
              "same commands in the same order");

}  // namespace

int main(int argc, char** argv) {
  util::FlagParser flags(cli::usage_header());
  flags.add_int("seed", 42, "world/workload seed");
  flags.add_int("domains", 120000, "registered domains in the world");
  flags.add_int("providers", 1200, "hosting providers in the world");
  flags.add_double("scale", 30.0, "divide the paper's attack counts by this");
  const unsigned hw = std::thread::hardware_concurrency();
  flags.add_uint("threads", hw > 0 ? hw : 1,
                 "worker threads for the pipeline; results are identical "
                 "for any value (run/generate/analyze)",
                 1, 4096);
  flags.add_bool("streaming",
                 "run the bounded-memory day-epoch pipeline; output is "
                 "bit-identical to the default path (run/generate)");
  // Like --threads, the default honours an environment override
  // (DDOSREPRO_WINDOW_DAYS) so test harnesses can vary it without
  // rewriting command lines; 0 is rejected by the flag's range.
  flags.add_uint("window-days", env_window_days(),
                 "days of folded state the streaming store keeps beyond "
                 "the join watermark before retiring them; any value >= 1 "
                 "yields identical output (run/generate with --streaming)",
                 1, 1000000);
  flags.add_string("zone", "", "TLD to export as a parent-zone file");
  flags.add_string("out", "", "output path for --zone");
  flags.add_string("events-csv", "", "events CSV path (run: write; analyze: read)");
  flags.add_string("feed-csv", "", "RSDoS feed CSV output path (run)");
  flags.add_string("store", "",
                   "DRS dataset store path (generate/run: write; analyze: "
                   "read)");
  flags.add_string("shard", "",
                   "i/N: write only shard i of a deterministic N-way day "
                   "partition of the world to --store; merge the N shard "
                   "files with 'ddosrepro merge' for a store byte-identical "
                   "to a whole-world generate (generate)");
  flags.add_bool("rejoin",
                 "re-run the join from the stored aggregates and assert a "
                 "bit-for-bit match (analyze --store)");
  flags.add_bool("no-mmap",
                 "read the store through the buffered reader instead of "
                 "the zero-copy mmap path; output is byte-identical "
                 "(analyze --store)");
  flags.add_bool("audit", "run the structural delegation audit (world)");
  flags.add_string("metrics-out", "",
                   "run-report JSON output path: config, stage timings, "
                   "metric snapshot (run)");
  flags.add_string("trace-out", "",
                   "Chrome trace_event JSON output path (run; open in "
                   "chrome://tracing)");
  flags.add_bool("progress",
                 "print a per-sweep-day heartbeat line on stderr (run)");
  flags.add_string("metrics-format", "json",
                   "format for --metrics-out: json (run report) or "
                   "openmetrics (Prometheus text exposition) (run)");
  flags.add_string("telemetry-out", "",
                   "JSONL time-series output path: one sample of every "
                   "metric/progress/process series per interval (run)");
  flags.add_uint("telemetry-interval-ms", 250,
                 "telemetry sampling cadence in milliseconds (run with "
                 "--telemetry-out/--dashboard-out)",
                 10, 60000);
  flags.add_uint("telemetry-capacity", 4096,
                 "in-memory ring capacity per telemetry series; memory "
                 "bound is series x capacity x 16 bytes (run)",
                 2, 1 << 22);
  flags.add_string("dashboard-out", "",
                   "self-contained HTML run dashboard output path: "
                   "sparklines + stage timeline, no external assets (run)");
  flags.add_double("watchdog-timeout-s", 0.0,
                   "abort with a full diagnostic dump when no pipeline "
                   "stage makes progress for this many seconds; 0 "
                   "disables (run)",
                   0.0, 86400.0);
  flags.add_double("duration-s", 2.0,
                   "wall-clock budget of the mixed phase (serve; ignored "
                   "when --serve-ops > 0)",
                   0.0, 3600.0);
  flags.add_uint("serve-ops", 0,
                 "fixed per-thread op budget; > 0 selects the "
                 "deterministic fixed-ops mode whose fingerprint line is "
                 "reproducible for equal seed and threads (serve)",
                 0, 1ull << 40);
  flags.add_string("dist", "zipfian",
                   "key-choice distribution: uniform or zipfian (serve)");
  flags.add_double("theta", 0.99,
                   "Zipfian skew parameter (serve with --dist zipfian)",
                   0.01, 100.0);
  flags.add_string("mix", "95:4:1",
                   "relative point:topk:scan query weights (serve)");
  flags.add_uint("topk", 10, "rows per TopK query (serve)", 1, 100000);
  flags.add_uint("scan-days", 30,
                 "WindowScan width in days; windows are placed uniformly "
                 "over the indexed range (serve)",
                 1, 1000000);
  flags.add_string("listen", "",
                   "host:port to serve the query engine on over TCP; port 0 "
                   "picks an ephemeral port, printed on the 'listening on' "
                   "line; SIGINT/SIGTERM shuts down gracefully (serve)");
  flags.add_string("connect", "",
                   "drive a remote serve server at host:port instead of an "
                   "in-process engine; --threads sets the connection count "
                   "(serve)");
  flags.add_double("target-qps", 0.0,
                   "open-loop aggregate request rate across all "
                   "connections, latency measured from each op's intended "
                   "send time so server stalls cannot hide from the "
                   "percentiles; 0 = closed loop (serve --connect)",
                   0.0, 1e9);
  flags.add_double("refill", 0.0,
                   "poll the DRS store's mtime every this-many seconds and "
                   "atomically swap in a freshly built engine when it "
                   "changes; 0 disables (serve --listen)",
                   0.0, 86400.0);

  if (!flags.parse(argc - 1, argv + 1)) {
    std::cerr << flags.error() << "\n" << flags.usage();
    return 2;
  }
  if (flags.help_requested() || flags.positional().empty()) {
    std::cout << flags.usage();
    return flags.help_requested() ? 0 : 2;
  }

  const std::string& command = flags.positional().front();
  for (const CommandHandler& entry : kHandlers) {
    if (command == entry.name) return entry.handler(flags);
  }
  std::cerr << "unknown command '" << command << "'\n" << flags.usage();
  return 2;
}
