// Single source of truth for the ddosrepro command set.
//
// The usage header and the dispatch table used to be maintained by hand in
// ddosrepro.cpp and drifted (the header predated half the commands). Now
// both derive from kCommands: main() builds its FlagParser description with
// usage_header(), declares its handler table in the same order, and
// static_asserts the two line up — adding a command without its usage line
// (or vice versa) fails the build, and tests/cli_usage_test.cpp asserts the
// rendered header actually names every command.
#pragma once

#include <array>
#include <string>
#include <string_view>

namespace ddos::cli {

struct CommandInfo {
  std::string_view name;
  std::string_view summary;  // one usage-header line, no trailing period
};

inline constexpr std::array<CommandInfo, 8> kCommands{{
    {"world", "build the simulated DNS world; export zones, run the audit"},
    {"run", "execute the seventeen-month pipeline, print headline shapes"},
    {"generate",
     "run + persist the datasets to a DRS store (--store); --shard i/N "
     "writes one shard of an N-way partition"},
    {"merge",
     "k-way merge generate --shard stores into one DRS store, "
     "byte-identical to a whole-world generate"},
    {"analyze", "recompute statistics from --store or --events-csv"},
    {"serve",
     "load a DRS store, drive the query engine: in-process, over TCP "
     "(--listen), or against a remote server (--connect)"},
    {"transip", "replay the TransIP case study"},
    {"russia", "replay the mil.ru / rzd.ru case studies"},
}};

/// "world|run|generate|..." — the <...> alternation in the usage line.
inline std::string command_list() {
  std::string out;
  for (const CommandInfo& cmd : kCommands) {
    if (!out.empty()) out += '|';
    out += cmd.name;
  }
  return out;
}

/// The full FlagParser description: banner, usage line, one summary line
/// per command (no trailing newline, matching FlagParser convention).
inline std::string usage_header() {
  std::size_t width = 0;
  for (const CommandInfo& cmd : kCommands) {
    width = cmd.name.size() > width ? cmd.name.size() : width;
  }
  std::string out =
      "ddosrepro — pipeline driver for the IMC'22 DNS-DDoS reproduction\n"
      "usage: ddosrepro <" + command_list() + "> [flags]";
  for (const CommandInfo& cmd : kCommands) {
    out += "\n  ";
    out += cmd.name;
    out.append(width - cmd.name.size(), ' ');
    out += " = ";
    out += cmd.summary;
  }
  return out;
}

}  // namespace ddos::cli
