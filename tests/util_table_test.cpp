#include "util/table.h"

#include <gtest/gtest.h>

namespace ddos::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "n"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  // Header, rule, two rows.
  EXPECT_NE(s.find("name   n"), std::string::npos);
  EXPECT_NE(s.find("-----  --"), std::string::npos);
  EXPECT_NE(s.find("alpha  1"), std::string::npos);
  EXPECT_NE(s.find("b      22"), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, SeparatorRendersBlankLine) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1\n\n2"), std::string::npos);
}

TEST(AsciiBar, FractionMapping) {
  EXPECT_EQ(ascii_bar(0.0, 10), "..........");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####.....");
}

TEST(AsciiBar, ClampsOutOfRange) {
  EXPECT_EQ(ascii_bar(-1.0, 4), "....");
  EXPECT_EQ(ascii_bar(2.0, 4), "####");
}

TEST(Banner, PadsToWidth) {
  const std::string b = banner("hi", 20);
  EXPECT_EQ(b.size(), 20u);
  EXPECT_EQ(b.substr(0, 6), "== hi ");
  EXPECT_EQ(b.back(), '=');
}

TEST(Banner, LongTitleNotTruncated) {
  const std::string b = banner("a very long banner title", 10);
  EXPECT_NE(b.find("a very long banner title"), std::string::npos);
}

}  // namespace
}  // namespace ddos::util
