// The zero-copy mmap read path: Mapped and Buffered readers must be
// byte-equal on every column type, the lazy per-block CRC must fail
// loudly on FIRST TOUCH (not at open) and keep failing on every touch,
// the ColumnArena must reuse its buffers across repeat scans, and v3's
// 8-byte block alignment must hold so Fixed columns map as aligned
// spans straight over the file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/driver.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/scan.h"
#include "store/writer.h"

namespace ddos::store {
namespace {

// Per-process temp names: gtest_discover_tests runs each case as its own
// ctest entry, so concurrent ctest -j workers would otherwise race on
// one file.
std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

void corrupt_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0xFF));
}

// One store exercising every (type, encoding) pair the writer produces.
std::string write_sample_store(const char* name) {
  const std::string path = temp_path(name);
  const std::vector<std::uint64_t> sorted = {3, 7, 7, 40, 1000, 1000000};
  const std::vector<std::uint64_t> counts = {0, 1, 127, 128, 300000,
                                             1ull << 40};
  const std::vector<double> reals = {0.0, -1.5, 3.25, 1e308, -0.0, 42.0};
  const std::vector<std::uint8_t> bytes = {0, 1, 2, 0, 255, 7};
  const std::vector<std::string> names = {"transip", "", "ovh",
                                          "a much longer org name",
                                          "x",       "selfhosted"};
  Writer writer(path);
  writer.add_meta("purpose", "mmap-parity-test");
  writer.add_u64("ds", "sorted", sorted, Encoding::DeltaVarint);
  writer.add_u64("ds", "counts", counts, Encoding::Varint);
  writer.add_u64("ds", "raw", counts, Encoding::Fixed);
  writer.add_f64("ds", "reals", reals);
  writer.add_u8("ds", "bytes", bytes);
  writer.add_strings("ds", "names", names);
  EXPECT_TRUE(writer.finish());
  return path;
}

TEST(MmapReader, MappedMatchesBufferedOnEveryColumnType) {
  const std::string path = write_sample_store("mmap_parity.drs");
  const Reader mapped(path, ReadMode::Mapped);
  const Reader buffered(path, ReadMode::Buffered);
  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(buffered.mapped());

  EXPECT_EQ(mapped.read_u64("ds", "sorted"), buffered.read_u64("ds", "sorted"));
  EXPECT_EQ(mapped.read_u64("ds", "counts"), buffered.read_u64("ds", "counts"));
  EXPECT_EQ(mapped.read_u64("ds", "raw"), buffered.read_u64("ds", "raw"));
  EXPECT_EQ(mapped.read_f64("ds", "reals"), buffered.read_f64("ds", "reals"));
  EXPECT_EQ(mapped.read_u8("ds", "bytes"), buffered.read_u8("ds", "bytes"));
  EXPECT_EQ(mapped.read_strings("ds", "names"),
            buffered.read_strings("ds", "names"));
  EXPECT_EQ(mapped.meta_value("purpose"), buffered.meta_value("purpose"));

  // The scan layer agrees with the row decoders in both modes.
  ColumnArena arena_m;
  ColumnArena arena_b;
  for (const char* col : {"sorted", "counts", "raw"}) {
    const auto span_m = scan_u64(mapped, mapped.column("ds", col), arena_m);
    const auto span_b = scan_u64(buffered, buffered.column("ds", col),
                                 arena_b);
    const auto rows = mapped.read_u64("ds", col);
    ASSERT_EQ(span_m.size(), rows.size()) << col;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(span_m[i], rows[i]) << col << "[" << i << "]";
      EXPECT_EQ(span_b[i], rows[i]) << col << "[" << i << "]";
    }
  }
  const auto strings_m = scan_strings(mapped, mapped.column("ds", "names"),
                                      arena_m);
  const auto expected = mapped.read_strings("ds", "names");
  ASSERT_EQ(strings_m.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(strings_m[i], expected[i]);
  }
}

TEST(MmapReader, V3BlocksAreEightByteAlignedAndFixedSpansZeroCopy) {
  const std::string path = write_sample_store("mmap_aligned.drs");
  const Reader reader(path, ReadMode::Mapped);
  ASSERT_TRUE(reader.mapped());
  for (const auto& desc : reader.columns()) {
    EXPECT_EQ(desc.offset % 8, 0u) << desc.dataset << "." << desc.column;
  }
  // Fixed-width spans alias the mapping itself: same bytes, no arena copy.
  ColumnArena arena;
  const std::size_t slots_before = arena.slots();
  const auto reals = scan_f64(reader, reader.column("ds", "reals"), arena);
  const auto raw = scan_u64(reader, reader.column("ds", "raw"), arena);
  EXPECT_EQ(arena.slots(), slots_before);  // zero-copy: no buffer created
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(reals.data()) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(raw.data()) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<const char*>(reals.data()),
            reader.verified_payload(reader.column("ds", "reals")).data());
}

TEST(MmapReader, LazyCrcFailsOnFirstTouchNotAtOpen) {
  for (const ReadMode mode : {ReadMode::Mapped, ReadMode::Buffered}) {
    const std::string path = write_sample_store("mmap_corrupt.drs");
    // The first block's payload starts right after the 16-byte header.
    corrupt_byte(path, kHeaderSize);
    // Open parses only the footer — the bit flip goes unnoticed here.
    const Reader reader(path, mode);
    EXPECT_EQ(reader.lazy_crc_checks(), 0u);
    // Healthy columns stay readable around the corrupt one.
    EXPECT_NO_THROW(reader.read_u64("ds", "counts"));
    EXPECT_EQ(reader.lazy_crc_checks(), 1u);
    // First touch of the corrupt block throws...
    EXPECT_THROW(reader.read_u64("ds", "sorted"), StoreError);
    // ...and a failed check is never recorded as verified, so every
    // subsequent touch fails just as loudly.
    EXPECT_THROW(reader.read_u64("ds", "sorted"), StoreError);
    EXPECT_EQ(reader.lazy_crc_checks(), 1u);
    // A repeat read of a verified block does not re-hash it.
    EXPECT_NO_THROW(reader.read_u64("ds", "counts"));
    EXPECT_EQ(reader.lazy_crc_checks(), 1u);
    std::filesystem::remove(path);
  }
}

TEST(MmapReader, TruncatedFileFailsAtOpenInBothModes) {
  for (const ReadMode mode : {ReadMode::Mapped, ReadMode::Buffered}) {
    const std::string path = write_sample_store("mmap_truncated.drs");
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) - 8);
    EXPECT_THROW(Reader(path, mode), StoreError);
    std::filesystem::remove(path);
  }
}

TEST(MmapReader, ArenaReusesBuffersAcrossRepeatScans) {
  const std::string path = write_sample_store("mmap_arena.drs");
  const Reader reader(path, ReadMode::Mapped);
  ColumnArena arena;
  const std::uint64_t payload1 = scan_all(reader, arena);
  const std::size_t slots = arena.slots();
  EXPECT_GT(slots, 0u);
  const std::uint64_t payload2 = scan_all(reader, arena);
  EXPECT_EQ(payload1, payload2);
  EXPECT_EQ(arena.slots(), slots);  // repeat scans allocate no new slots
  // Lazy CRC tracking means the repeat scan re-hashed nothing.
  EXPECT_EQ(reader.lazy_crc_checks(), reader.columns().size());
}

TEST(MmapReader, UnrolledDecoderRejectsTrailingBytes) {
  const std::string path = temp_path("mmap_trailing.drs");
  std::string payload;
  put_varint(payload, 5);
  put_varint(payload, 6);
  payload.push_back('\x01');  // one varint too many for rows=2
  Writer writer(path);
  writer.add_encoded("ds", "bad", ColumnType::U64, Encoding::Varint, 2,
                     payload);
  ASSERT_TRUE(writer.finish());
  const Reader reader(path, ReadMode::Mapped);
  ColumnArena arena;
  EXPECT_THROW(scan_u64(reader, reader.column("ds", "bad"), arena),
               StoreError);
}

// End-to-end: a saved pipeline run loads identically through both
// backings, and the corrupt-block failure surfaces through load_run.
TEST(MmapReader, LoadRunIdenticalInBothModes) {
  const std::string path = temp_path("mmap_run.drs");
  const auto config = scenario::small_longitudinal_config(21);
  const auto result = scenario::run_longitudinal(config);
  scenario::save_run(path, config, 1, result);

  const scenario::StoredRun via_mmap = scenario::load_run(path, true);
  const scenario::StoredRun via_buffer = scenario::load_run(path, false);
  EXPECT_EQ(via_mmap.joined, via_buffer.joined);
  EXPECT_EQ(via_mmap.joined, result.joined);
  EXPECT_EQ(via_mmap.feed_records, via_buffer.feed_records);
  EXPECT_EQ(via_mmap.swept_measurements, via_buffer.swept_measurements);
  EXPECT_EQ(via_mmap.threads, via_buffer.threads);

  corrupt_byte(path, kHeaderSize + 3);
  EXPECT_THROW(scenario::load_run(path, true), StoreError);
  EXPECT_THROW(scenario::load_run(path, false), StoreError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ddos::store
