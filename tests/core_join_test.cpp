#include "core/join.h"

#include <gtest/gtest.h>

namespace ddos::core {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

// Controlled environment: one 2-server NSSet hosting 8 domains, plus an
// open-resolver victim and a non-DNS address. The store is populated by
// hand so the join logic is pinned down without simulation noise.
struct JoinFixture {
  dns::DnsRegistry registry;
  openintel::MeasurementStore store;
  topology::PrefixTable routes;
  topology::AsRegistry orgs;
  anycast::AnycastCensus census;

  const IPv4Addr ns1{10, 0, 0, 1};
  const IPv4Addr ns2{10, 0, 1, 1};
  const IPv4Addr resolver{8, 8, 8, 8};
  dns::NssetId nsset = 0;

  // The attack occupies windows of day 10.
  const netsim::DayIndex attack_day = 10;

  JoinFixture() {
    for (const auto& ip : {ns1, ns2}) {
      registry.add_nameserver(
          dns::Nameserver(ip, {dns::Site{"x", 50e3, 20.0, 1.0}}));
      routes.announce(netsim::Prefix(ip, 24), 64512);
    }
    registry.add_nameserver(
        dns::Nameserver(resolver, {dns::Site{"x", 5e6, 10.0, 1.0}}));
    registry.mark_open_resolver(resolver);
    orgs.add(topology::AsInfo{64512, "TestOrg", "NL"});
    for (int d = 0; d < 8; ++d) {
      registry.add_domain(
          dns::DomainName::must("d" + std::to_string(d) + ".com"), {ns1, ns2});
    }
    registry.add_domain(dns::DomainName::must("misconfig.com"), {resolver});
    nsset = registry.nsset_of_domain(0);
  }

  void add_measurement(netsim::DayIndex day, netsim::WindowIndex window_of_day,
                       dns::ResponseStatus status, double rtt,
                       IPv4Addr chosen) {
    openintel::Measurement m;
    m.time = SimTime(day * netsim::kSecondsPerDay +
                     window_of_day * netsim::kSecondsPerWindow + 10);
    m.domain = 0;
    m.nsset = nsset;
    m.status = status;
    m.rtt_ms = rtt;
    m.chosen_ns = chosen;
    store.add(m);
  }

  /// Baseline day (attack_day - 1): `n` healthy measurements at 20ms,
  /// alternating the agnostically chosen server so both are "seen".
  void add_baseline(int n = 8) {
    for (int i = 0; i < n; ++i) {
      add_measurement(attack_day - 1, i, dns::ResponseStatus::Ok, 20.0,
                      i % 2 == 0 ? ns1 : ns2);
    }
  }

  telescope::RSDoSEvent event_on(IPv4Addr victim, int first_wod = 0,
                                 int last_wod = 5) const {
    telescope::RSDoSEvent ev;
    ev.victim = victim;
    ev.start_window = attack_day * netsim::kWindowsPerDay + first_wod;
    ev.end_window = attack_day * netsim::kWindowsPerDay + last_wod;
    ev.max_ppm = 1000.0;
    ev.first_port = 53;
    return ev;
  }

  JoinPipeline pipeline(JoinParams params = {}) {
    classifier_ = std::make_unique<ResilienceClassifier>(registry, census,
                                                         routes, orgs);
    return JoinPipeline(registry, store, *classifier_, params);
  }

  std::unique_ptr<ResilienceClassifier> classifier_;
};

TEST(Join, HappyPathProducesEvent) {
  JoinFixture fx;
  fx.add_baseline();
  // During the attack: 5 measurements at 200ms (10x) + 1 timeout.
  for (int i = 0; i < 5; ++i) {
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  fx.add_measurement(fx.attack_day, 5, dns::ResponseStatus::Timeout, 0.0,
                     fx.ns1);

  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({fx.event_on(fx.ns1)});
  ASSERT_EQ(events.size(), 1u);
  const auto& ev = events[0];
  EXPECT_EQ(ev.nsset, fx.nsset);
  EXPECT_EQ(ev.domains_hosted, 8u);
  EXPECT_EQ(ev.domains_measured, 6u);
  EXPECT_DOUBLE_EQ(ev.baseline_rtt_ms, 20.0);
  EXPECT_DOUBLE_EQ(ev.peak_impact, 10.0);
  EXPECT_EQ(ev.timeouts, 1u);
  EXPECT_NEAR(ev.failure_rate, 1.0 / 6.0, 1e-12);
  EXPECT_EQ(ev.resilience.org, "TestOrg");
  EXPECT_EQ(ev.resilience.distinct_slash24, 2u);
  EXPECT_EQ(ev.resilience.distinct_asns, 1u);
  EXPECT_EQ(pipeline.stats().joined, 1u);
  EXPECT_EQ(pipeline.stats().dns_events, 1u);
}

TEST(Join, OpenResolverFiltered) {
  JoinFixture fx;
  fx.add_baseline();
  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({fx.event_on(fx.resolver)});
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(pipeline.stats().open_resolver_filtered, 1u);
}

TEST(Join, NonDnsVictimSkipped) {
  JoinFixture fx;
  fx.add_baseline();
  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({fx.event_on(IPv4Addr(99, 99, 99, 99))});
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(pipeline.stats().non_dns, 1u);
}

TEST(Join, PreviousDayJoinRequiresSeenNameserver) {
  JoinFixture fx;
  // Baseline exists but the *chosen* server was ns2, so ns1 was never
  // successfully queried on the day before.
  for (int i = 0; i < 8; ++i) {
    fx.add_measurement(fx.attack_day - 1, i, dns::ResponseStatus::Ok, 20.0,
                       fx.ns2);
  }
  for (int i = 0; i < 6; ++i) {
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  auto pipeline = fx.pipeline();
  EXPECT_TRUE(pipeline.run({fx.event_on(fx.ns1)}).empty());
  EXPECT_EQ(pipeline.stats().not_seen_day_before, 1u);
  // The same attack joined via ns2 works.
  EXPECT_EQ(pipeline.run({fx.event_on(fx.ns2)}).size(), 1u);
}

TEST(Join, MeasurementFloorFilters) {
  JoinFixture fx;
  fx.add_baseline();
  for (int i = 0; i < 4; ++i) {  // below the >=5 floor of §6.3
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  auto pipeline = fx.pipeline();
  EXPECT_TRUE(pipeline.run({fx.event_on(fx.ns1)}).empty());
  EXPECT_EQ(pipeline.stats().below_measurement_floor, 1u);

  JoinParams relaxed;
  relaxed.min_measured_domains = 4;
  auto pipeline2 = fx.pipeline(relaxed);
  EXPECT_EQ(pipeline2.run({fx.event_on(fx.ns1)}).size(), 1u);
}

TEST(Join, MissingBaselineFilters) {
  JoinFixture fx;
  // Seen the day before, but no RTT baseline (e.g. only timeouts).
  fx.add_measurement(fx.attack_day - 1, 0, dns::ResponseStatus::Ok, 20.0,
                     fx.ns1);
  // Build an event whose NSSet has measurements only during the attack...
  // Actually the baseline exists now; remove by using a different day.
  for (int i = 0; i < 6; ++i) {
    fx.add_measurement(fx.attack_day + 5, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  // Attack on day+5: no measurements on day+4 -> no baseline, event filtered,
  // but ns_seen on day+4 also fails first. Make ns seen without RTT baseline:
  // a SERVFAIL response marks the server seen but contributes an RTT, so use
  // a day with only timeout-status measurements for the baseline:
  telescope::RSDoSEvent ev = fx.event_on(fx.ns1);
  ev.start_window += 5 * netsim::kWindowsPerDay;
  ev.end_window += 5 * netsim::kWindowsPerDay;
  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({ev});
  EXPECT_TRUE(events.empty());
}

TEST(Join, MeanImpactWeightedByMeasurements) {
  JoinFixture fx;
  fx.add_baseline();
  // Window 0: two measurements at 100ms (5x). Window 1: one at 400ms (20x).
  fx.add_measurement(fx.attack_day, 0, dns::ResponseStatus::Ok, 100.0, fx.ns1);
  fx.add_measurement(fx.attack_day, 0, dns::ResponseStatus::Ok, 100.0, fx.ns1);
  fx.add_measurement(fx.attack_day, 1, dns::ResponseStatus::Ok, 400.0, fx.ns1);
  fx.add_measurement(fx.attack_day, 2, dns::ResponseStatus::Ok, 20.0, fx.ns1);
  fx.add_measurement(fx.attack_day, 3, dns::ResponseStatus::Ok, 20.0, fx.ns1);
  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({fx.event_on(fx.ns1)});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].peak_impact, 20.0);
  // Weighted mean: (5*2 + 20*1 + 1*1 + 1*1) / 5 = 6.4.
  EXPECT_NEAR(events[0].mean_impact, 6.4, 1e-9);
}

TEST(Join, CompleteFailureDetected) {
  JoinFixture fx;
  fx.add_baseline();
  for (int i = 0; i < 6; ++i) {
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Timeout, 0.0,
                       fx.ns1);
  }
  auto pipeline = fx.pipeline();
  const auto events = pipeline.run({fx.event_on(fx.ns1)});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].complete_failure());
  EXPECT_DOUBLE_EQ(events[0].failure_rate, 1.0);
  EXPECT_DOUBLE_EQ(events[0].peak_impact, 0.0);  // nothing answered
}

TEST(Join, MergeConcurrentEventsOnSameNsset) {
  JoinFixture fx;
  fx.add_baseline();
  for (int i = 0; i < 9; ++i) {
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  // Two telescope events (one per nameserver) overlapping in time.
  auto pipeline = fx.pipeline();
  const auto merged =
      pipeline.run({fx.event_on(fx.ns1, 0, 5), fx.event_on(fx.ns2, 2, 8)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].rsdos.end_window,
            fx.attack_day * netsim::kWindowsPerDay + 8);

  JoinParams no_merge;
  no_merge.merge_concurrent = false;
  auto pipeline2 = fx.pipeline(no_merge);
  EXPECT_EQ(pipeline2
                .run({fx.event_on(fx.ns1, 0, 5), fx.event_on(fx.ns2, 2, 8)})
                .size(),
            2u);
}

TEST(Join, NonOverlappingEventsNotMerged) {
  JoinFixture fx;
  fx.add_baseline();
  for (int i = 0; i < 12; ++i) {
    fx.add_measurement(fx.attack_day, i, dns::ResponseStatus::Ok, 200.0,
                       fx.ns1);
  }
  auto pipeline = fx.pipeline();
  const auto events =
      pipeline.run({fx.event_on(fx.ns1, 0, 4), fx.event_on(fx.ns1, 7, 11)});
  EXPECT_EQ(events.size(), 2u);
}

TEST(MergeConcurrent, KeepsMaxImpactAndWidestTallies) {
  NssetAttackEvent a, b;
  a.nsset = b.nsset = 3;
  a.rsdos.start_window = 0;
  a.rsdos.end_window = 10;
  a.rsdos.max_ppm = 100.0;
  a.peak_impact = 5.0;
  a.domains_measured = 20;
  a.timeouts = 2;
  b.rsdos.start_window = 5;
  b.rsdos.end_window = 20;
  b.rsdos.max_ppm = 900.0;
  b.peak_impact = 50.0;
  b.domains_measured = 10;
  b.timeouts = 9;
  const auto merged = merge_concurrent_events({a, b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].rsdos.end_window, 20);
  EXPECT_DOUBLE_EQ(merged[0].rsdos.max_ppm, 900.0);
  EXPECT_DOUBLE_EQ(merged[0].peak_impact, 50.0);
  EXPECT_EQ(merged[0].domains_measured, 20u);  // widest constituent
  EXPECT_EQ(merged[0].timeouts, 2u);           // its tallies, not a sum
}

}  // namespace
}  // namespace ddos::core
