// merge_stores contract tests: the compaction stage must be byte-exact
// when the inputs are a complete, healthy shard set — and must fail
// loudly, naming the offending shard file, on every defect (corrupt
// block, non-shard input, wrong or duplicate shard index, provenance
// mismatch). Also covers the Reader decode-error path gained for merge:
// decode failures now carry the file path and column name, so a
// multi-shard merge failure identifies the corrupt shard.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/driver.h"
#include "scenario/plan.h"
#include "store/merge.h"
#include "store/reader.h"
#include "store/writer.h"

namespace ddos::store {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

scenario::LongitudinalConfig test_config() {
  scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(21);
  cfg.world.provider_count = 80;
  cfg.world.domain_count = 4000;
  cfg.workload.scale = 200.0;
  return cfg;
}

// Write shards i=0..count-1 of `cfg` and return their paths in order.
std::vector<std::string> make_shards(const scenario::LongitudinalConfig& cfg,
                                     std::uint32_t count,
                                     const std::string& tag) {
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string path = temp_path(
        tag + "-" + std::to_string(i) + "of" + std::to_string(count) +
        ".drs");
    scenario::run_shard(cfg, scenario::ShardSpec{i, count}, 1, path);
    paths.push_back(path);
  }
  return paths;
}

// The two-shard set used by most defect tests, generated once.
const std::vector<std::string>& shards2() {
  static const std::vector<std::string> paths =
      make_shards(test_config(), 2, "m2");
  return paths;
}

void expect_merge_error(const std::vector<std::string>& paths,
                        const std::string& needle) {
  const std::string out = temp_path("merge-fail.drs");
  try {
    merge_stores(out, paths);
    FAIL() << "merge_stores did not throw (wanted '" << needle << "')";
  } catch (const StoreError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message: " << e.what();
  }
  std::filesystem::remove(out);
}

TEST(StoreMerge, MatchesSaveRunBytes) {
  const scenario::LongitudinalConfig cfg = test_config();
  const scenario::LongitudinalResult whole = scenario::run_longitudinal(cfg);
  const std::string whole_path = temp_path("merge-whole.drs");
  scenario::save_run(whole_path, cfg, 1, whole);

  const std::string merged_path = temp_path("merge-out.drs");
  const MergeStats stats = merge_stores(merged_path, shards2());
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.events_out, whole.joined.size());
  EXPECT_GT(stats.rows_merged, 0u);
  EXPECT_EQ(stats.bytes_read,
            std::filesystem::file_size(shards2()[0]) +
                std::filesystem::file_size(shards2()[1]));
  EXPECT_EQ(stats.bytes_written, std::filesystem::file_size(merged_path));
  EXPECT_EQ(read_file(merged_path), read_file(whole_path));

  // The merged store loads as a normal save_run store with the union
  // provenance and the re-counted joined totals.
  const scenario::StoredRun run = scenario::load_run(merged_path);
  EXPECT_EQ(run.joined.size(), whole.joined.size());
  EXPECT_EQ(run.feed_records, whole.feed_records);
  EXPECT_EQ(run.threads, 1u);

  std::filesystem::remove(whole_path);
  std::filesystem::remove(merged_path);
}

// A sparse workload at N=8 (scale divides the paper's attack counts, so
// a large scale means few attacks; without scripted cases only two days
// end up planned) leaves most shards owning zero events and zero planned
// days; merge must still reproduce the whole store exactly.
TEST(StoreMerge, EmptyShardsStayByteIdentical) {
  scenario::LongitudinalConfig cfg = test_config();
  cfg.workload.scale = 8000.0;
  cfg.workload.scripted_cases = false;
  const scenario::LongitudinalResult whole = scenario::run_longitudinal(cfg);
  const std::string whole_path = temp_path("merge-sparse-whole.drs");
  scenario::save_run(whole_path, cfg, 1, whole);

  std::uint64_t min_owned = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::string path =
        temp_path("merge-sparse-" + std::to_string(i) + ".drs");
    const scenario::ShardRunResult shard =
        scenario::run_shard(cfg, scenario::ShardSpec{i, 8}, 1, path);
    min_owned = std::min(min_owned, shard.owned_events);
    paths.push_back(path);
  }
  // The point of this config: at least one shard has nothing to join.
  EXPECT_EQ(min_owned, 0u);

  const std::string merged_path = temp_path("merge-sparse-out.drs");
  merge_stores(merged_path, paths);
  EXPECT_EQ(read_file(merged_path), read_file(whole_path));

  for (const std::string& path : paths) std::filesystem::remove(path);
  std::filesystem::remove(whole_path);
  std::filesystem::remove(merged_path);
}

TEST(StoreMerge, ProvenanceMismatchNamesKeyAndShard) {
  scenario::LongitudinalConfig other = test_config();
  other.world.seed += 1;
  const std::string foreign = temp_path("m2-foreign.drs");
  scenario::run_shard(other, scenario::ShardSpec{1, 2}, 1, foreign);

  expect_merge_error({shards2()[0], foreign},
                     "merge provenance mismatch on 'world.seed'");
  expect_merge_error({shards2()[0], foreign}, foreign);
  std::filesystem::remove(foreign);
}

TEST(StoreMerge, CorruptShardFailsNamingThePath) {
  const std::string corrupt = temp_path("m2-corrupt.drs");
  std::filesystem::copy_file(shards2()[1], corrupt,
                             std::filesystem::copy_options::overwrite_existing);

  // Flip a byte inside a known column payload so the damage lands in a
  // CRC-covered block, not inter-block padding or the footer.
  std::uint64_t target = 0;
  {
    const Reader reader(corrupt, ReadMode::Buffered);
    const ColumnDesc& desc = reader.column("daily", "key");
    ASSERT_GT(desc.size, 2u);
    target = desc.offset + 2;
  }
  {
    std::fstream f(corrupt,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(target));
    char byte = 0;
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(target));
    f.put(byte);
  }

  expect_merge_error({shards2()[0], corrupt}, corrupt);
  expect_merge_error({shards2()[0], corrupt}, "checksum mismatch");
  std::filesystem::remove(corrupt);
}

TEST(StoreMerge, WrongShardCountIsRejected) {
  const std::vector<std::string> three =
      make_shards(test_config(), 3, "m3");
  // Two files of a 3-way partition: each store's manifest says count 3.
  expect_merge_error({three[0], three[1]}, "shard count mismatch");
  for (const std::string& path : three) std::filesystem::remove(path);
}

TEST(StoreMerge, DuplicateShardIndexIsRejected) {
  expect_merge_error({shards2()[0], shards2()[0]},
                     "duplicate shard index 0");
}

TEST(StoreMerge, NonShardStoreIsRejected) {
  const scenario::LongitudinalConfig cfg = test_config();
  const scenario::LongitudinalResult whole = scenario::run_longitudinal(cfg);
  const std::string whole_path = temp_path("merge-notashard.drs");
  scenario::save_run(whole_path, cfg, 1, whole);
  expect_merge_error({whole_path, shards2()[1]},
                     "not a shard store (no shard.index/shard.count "
                     "manifest");
  std::filesystem::remove(whole_path);
}

TEST(StoreMerge, NoInputsIsRejected) {
  expect_merge_error({}, "at least one shard store");
}

// Satellite: Reader decode failures carry the file path and column, so a
// corrupt-but-CRC-valid block (possible only via add_encoded, whose
// caller vouches for the payload) is still attributed to its shard file.
TEST(StoreReader, DecodeErrorNamesPathAndColumn) {
  const std::string path = temp_path("decode-err.drs");
  {
    Writer writer(path);
    ASSERT_TRUE(writer.ok());
    // One truncated varint: the continuation bit promises a second byte
    // that never comes. The CRC is computed over this payload as
    // written, so checksum validation passes and only the decode fails.
    const std::string payload(1, '\x80');
    writer.add_encoded("ds", "col", ColumnType::U64, Encoding::Varint, 1,
                       payload);
    ASSERT_TRUE(writer.finish());
  }
  const Reader reader(path, ReadMode::Buffered);
  try {
    reader.read_u64("ds", "col");
    FAIL() << "decode of a truncated varint did not throw";
  } catch (const StoreError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(path), std::string::npos) << message;
    EXPECT_NE(message.find("column 'ds.col'"), std::string::npos) << message;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ddos::store
