#include "dns/cache.h"

#include <gtest/gtest.h>

namespace ddos::dns {
namespace {

using netsim::SimTime;

ResourceRecord rr(const char* owner, RRType type, std::uint32_t ttl,
                  const char* rdata) {
  return ResourceRecord{DomainName::must(owner), type, ttl, rdata};
}

TEST(Cache, MissOnEmpty) {
  Cache cache;
  EXPECT_FALSE(cache.get(DomainName::must("a.com"), RRType::A, SimTime(0)));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(Cache, PutThenHitWithinTtl) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::NS,
            {rr("a.com", RRType::NS, 300, "ns1.a.com")}, SimTime(0));
  const auto got = cache.get(DomainName::must("a.com"), RRType::NS, SimTime(299));
  ASSERT_TRUE(got);
  EXPECT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0].rdata, "ns1.a.com");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, ExpiresAtTtl) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 300, "1.2.3.4")}, SimTime(0));
  EXPECT_FALSE(cache.get(DomainName::must("a.com"), RRType::A, SimTime(300)));
  EXPECT_EQ(cache.size(), 0u);  // lazily pruned
}

TEST(Cache, MinTtlOfSetGoverns) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::NS,
            {rr("a.com", RRType::NS, 600, "ns1"), rr("a.com", RRType::NS, 60, "ns2")},
            SimTime(0));
  EXPECT_TRUE(cache.get(DomainName::must("a.com"), RRType::NS, SimTime(59)));
  EXPECT_FALSE(cache.get(DomainName::must("a.com"), RRType::NS, SimTime(60)));
}

TEST(Cache, KeyIncludesType) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 300, "1.2.3.4")}, SimTime(0));
  EXPECT_FALSE(cache.get(DomainName::must("a.com"), RRType::NS, SimTime(1)));
  EXPECT_TRUE(cache.get(DomainName::must("a.com"), RRType::A, SimTime(1)));
}

TEST(Cache, RemainingTtl) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 300, "1.2.3.4")}, SimTime(100));
  EXPECT_EQ(cache.remaining_ttl(DomainName::must("a.com"), RRType::A,
                                SimTime(150)),
            250);
  EXPECT_EQ(cache.remaining_ttl(DomainName::must("a.com"), RRType::A,
                                SimTime(500)),
            0);
  EXPECT_EQ(cache.remaining_ttl(DomainName::must("b.com"), RRType::A,
                                SimTime(0)),
            0);
}

TEST(Cache, PurgeExpired) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 100, "x")}, SimTime(0));
  cache.put(DomainName::must("b.com"), RRType::A,
            {rr("b.com", RRType::A, 500, "y")}, SimTime(0));
  EXPECT_EQ(cache.purge_expired(SimTime(200)), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.get(DomainName::must("b.com"), RRType::A, SimTime(200)));
}

TEST(Cache, CapacityEvictsEarliestExpiry) {
  Cache cache(2);
  cache.put(DomainName::must("soon.com"), RRType::A,
            {rr("soon.com", RRType::A, 10, "x")}, SimTime(0));
  cache.put(DomainName::must("later.com"), RRType::A,
            {rr("later.com", RRType::A, 1000, "y")}, SimTime(0));
  cache.put(DomainName::must("new.com"), RRType::A,
            {rr("new.com", RRType::A, 500, "z")}, SimTime(0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.get(DomainName::must("soon.com"), RRType::A, SimTime(1)));
  EXPECT_TRUE(cache.get(DomainName::must("later.com"), RRType::A, SimTime(1)));
  EXPECT_TRUE(cache.get(DomainName::must("new.com"), RRType::A, SimTime(1)));
}

TEST(Cache, OverwriteSameKeyDoesNotEvict) {
  Cache cache(1);
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 100, "x")}, SimTime(0));
  cache.put(DomainName::must("a.com"), RRType::A,
            {rr("a.com", RRType::A, 200, "y")}, SimTime(0));
  const auto got = cache.get(DomainName::must("a.com"), RRType::A, SimTime(150));
  ASSERT_TRUE(got);
  EXPECT_EQ((*got)[0].rdata, "y");
}

TEST(Cache, EmptyRecordSetExpiresImmediately) {
  Cache cache;
  cache.put(DomainName::must("a.com"), RRType::A, {}, SimTime(0));
  EXPECT_FALSE(cache.get(DomainName::must("a.com"), RRType::A, SimTime(0)));
}

TEST(Cache, CachingMasksAttackWindow) {
  // §2.2 / §6.3.1: a cached popular domain survives an attack shorter than
  // its TTL. Model: record cached at t=0 with TTL 3600; the attack lasts
  // 1800s; every lookup inside the attack is a hit (no query needed).
  Cache cache;
  cache.put(DomainName::must("popular.com"), RRType::A,
            {rr("popular.com", RRType::A, 3600, "9.9.9.9")}, SimTime(0));
  for (std::int64_t t = 60; t < 1800; t += 60) {
    EXPECT_TRUE(cache.get(DomainName::must("popular.com"), RRType::A,
                          SimTime(t)));
  }
  // A low-TTL (CDN-style) record would have needed re-resolution mid-attack.
  cache.put(DomainName::must("cdn.com"), RRType::A,
            {rr("cdn.com", RRType::A, 60, "8.8.8.8")}, SimTime(0));
  EXPECT_FALSE(cache.get(DomainName::must("cdn.com"), RRType::A, SimTime(120)));
}

}  // namespace
}  // namespace ddos::dns
