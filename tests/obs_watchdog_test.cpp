// StallWatchdog: stall detection semantics on synthetic progress sources,
// and the end-to-end case the watchdog exists for — a two-stage streaming
// pipeline whose consumer wedges, where the diagnostic must name the stuck
// stage.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "exec/channel.h"
#include "exec/stage.h"
#include "obs/obs.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"

namespace ddos::obs {
namespace {

using namespace std::chrono_literals;

TEST(Watchdog, NoStallWhileAnySourceAdvances) {
  Observer observer;
  std::atomic<std::uint64_t> moving{0};
  std::atomic<std::uint64_t> frozen{0};
  const ScopedProgressSource a(&observer.progress_sources(), "src.moving",
                               [&] { return moving.load(); });
  const ScopedProgressSource b(&observer.progress_sources(), "src.frozen",
                               [&] { return frozen.load(); });

  WatchdogOptions options;
  options.timeout_s = 0.05;
  StallWatchdog watchdog(observer, options);

  EXPECT_EQ(watchdog.check_now(), "");  // baseline observation
  // One advancing source keeps the whole pipeline "fresh": a stall means
  // NOTHING moved, not that something is slow.
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(30ms);
    moving.fetch_add(1);
    EXPECT_EQ(watchdog.check_now(), "");
  }
  EXPECT_FALSE(watchdog.fired());
}

TEST(Watchdog, CheckNowNamesMostIdleSource) {
  Observer observer;
  std::atomic<std::uint64_t> late{0};
  std::atomic<std::uint64_t> early{0};
  const ScopedProgressSource a(&observer.progress_sources(), "src.late",
                               [&] { return late.load(); });
  const ScopedProgressSource b(&observer.progress_sources(), "src.early",
                               [&] { return early.load(); });

  WatchdogOptions options;
  options.timeout_s = 0.08;
  StallWatchdog watchdog(observer, options);

  EXPECT_EQ(watchdog.check_now(), "");
  // src.late advances once more, then both freeze: src.early has been
  // idle longest and must be named the suspect.
  std::this_thread::sleep_for(50ms);
  late.fetch_add(1);
  EXPECT_EQ(watchdog.check_now(), "");

  std::string report;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (report.empty() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
    report = watchdog.check_now();
  }
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("STALL"), std::string::npos);
  EXPECT_NE(report.find("suspected stall: src.early"), std::string::npos);
  EXPECT_NE(report.find("src.late"), std::string::npos);
  // check_now diagnoses without firing the handler.
  EXPECT_FALSE(watchdog.fired());
}

TEST(Watchdog, DiagnosticReportIncludesSamplerTails) {
  Observer observer;
  SamplerOptions sampler_options;
  sampler_options.sample_process = false;
  TelemetrySampler sampler(observer, sampler_options);
  observer.pipeline.cache_hits.inc(2);
  sampler.sample_now();

  WatchdogOptions options;
  options.sampler = &sampler;
  StallWatchdog watchdog(observer, options);
  const std::string report = watchdog.diagnostic_report();
  EXPECT_EQ(report.find("STALL:"), std::string::npos);
  EXPECT_NE(report.find("metrics snapshot:"), std::string::npos);
  EXPECT_NE(report.find("telemetry tails"), std::string::npos);
  EXPECT_NE(report.find("cache.hits"), std::string::npos);
}

// The scenario the watchdog exists for: producer -> channel -> consumer,
// consumer wedges after one item. The producer fills the channel and
// blocks in push(), so every source goes idle — and the consumer, idle
// longest, is the named suspect.
TEST(Watchdog, StalledTwoStagePipelineNamesStuckStage) {
  Observer observer;
  exec::Channel<int> channel(8);
  std::mutex wedge_mu;
  std::condition_variable wedge_cv;
  bool release = false;

  exec::Stage consumer("consume", [&](exec::StageContext& ctx) {
    if (channel.pop()) ctx.tick();  // one item, then wedge
    std::unique_lock<std::mutex> lock(wedge_mu);
    wedge_cv.wait(lock, [&] { return release; });
    while (channel.pop()) ctx.tick();  // drain after release
  });
  // The producer paces itself so it is still visibly advancing while the
  // watchdog takes its first polls — it must accumulate strictly less
  // idle time than the consumer, which wedged right at the start.
  exec::Stage producer("produce", [&](exec::StageContext& ctx) {
    for (int i = 0; i < 64; ++i) {
      std::this_thread::sleep_for(5ms);
      if (!channel.push(i)) break;
      ctx.tick();
    }
    channel.close();
  });

  const ScopedProgressSource produce_source(
      &observer.progress_sources(), "stage.produce",
      [context = producer.context()] { return context->progress(); });
  const ScopedProgressSource consume_source(
      &observer.progress_sources(), "stage.consume",
      [context = consumer.context()] { return context->progress(); });
  const ScopedProgressSource channel_source(
      &observer.progress_sources(), "channel.tasks",
      [&] { return channel.progress(); },
      [&] {
        return "depth " + std::to_string(channel.depth()) + "/" +
               std::to_string(channel.capacity());
      });

  std::string captured;
  std::mutex captured_mu;
  WatchdogOptions options;
  options.timeout_s = 0.1;
  options.poll_ms = 20;
  options.on_stall = [&](const std::string& report) {
    const std::lock_guard<std::mutex> lock(captured_mu);
    captured = report;
  };
  StallWatchdog watchdog(observer, options);
  watchdog.start();

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!watchdog.fired() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(watchdog.fired());
  watchdog.stop();

  std::string report;
  {
    const std::lock_guard<std::mutex> lock(captured_mu);
    report = captured;
  }
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("STALL"), std::string::npos);
  // The consumer wedged first (after one item); the producer kept pushing
  // until the channel filled, so the consumer is strictly the most idle.
  EXPECT_NE(report.find("suspected stall: stage.consume"),
            std::string::npos);
  // The channel's detail line shows the full queue behind the wedge.
  EXPECT_NE(report.find("depth 8/8"), std::string::npos);

  // Unwedge and shut down cleanly.
  {
    const std::lock_guard<std::mutex> lock(wedge_mu);
    release = true;
  }
  wedge_cv.notify_all();
  producer.join();
  consumer.join();
  EXPECT_EQ(producer.progress(), 64u);
  EXPECT_GE(consumer.progress(), 1u);
}

TEST(Watchdog, OnStallFiresAtMostOnce) {
  Observer observer;
  std::atomic<std::uint64_t> frozen{0};
  const ScopedProgressSource source(&observer.progress_sources(),
                                    "src.frozen",
                                    [&] { return frozen.load(); });
  std::atomic<int> fires{0};
  WatchdogOptions options;
  options.timeout_s = 0.03;
  options.poll_ms = 10;
  options.on_stall = [&](const std::string&) { fires.fetch_add(1); };
  StallWatchdog watchdog(observer, options);
  watchdog.start();

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!watchdog.fired() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(watchdog.fired());
  // Give the poll loop time to (incorrectly) fire again before stopping.
  std::this_thread::sleep_for(60ms);
  watchdog.stop();
  EXPECT_EQ(fires.load(), 1);
}

TEST(Watchdog, NoSourcesMeansNoStall) {
  Observer observer;
  WatchdogOptions options;
  options.timeout_s = 0.01;
  StallWatchdog watchdog(observer, options);
  EXPECT_EQ(watchdog.check_now(), "");
  std::this_thread::sleep_for(30ms);
  // An empty registry can never stall: there is nothing to be stuck.
  EXPECT_EQ(watchdog.check_now(), "");
}

}  // namespace
}  // namespace ddos::obs
