#include "core/impact.h"

#include <gtest/gtest.h>

namespace ddos::core {
namespace {

openintel::Aggregate agg_with_rtts(std::initializer_list<double> rtts,
                                   std::uint32_t timeouts = 0) {
  openintel::Aggregate agg;
  for (const double r : rtts) {
    openintel::Measurement m;
    m.status = dns::ResponseStatus::Ok;
    m.rtt_ms = r;
    agg.fold(m);
  }
  for (std::uint32_t i = 0; i < timeouts; ++i) {
    openintel::Measurement m;
    m.status = dns::ResponseStatus::Timeout;
    agg.fold(m);
  }
  return agg;
}

TEST(Impact, EquationOne) {
  // Impact_on_RTT = avgRTT(5min) / avgRTT(day before).
  const auto agg = agg_with_rtts({200.0, 220.0, 180.0});
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, 20.0), 10.0);
}

TEST(Impact, ZeroBaselineIsNoSignal) {
  const auto agg = agg_with_rtts({200.0});
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, -5.0), 0.0);
}

TEST(Impact, NoAnsweredQueriesIsNoSignal) {
  const auto agg = agg_with_rtts({}, 10);
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, 20.0), 0.0);
}

TEST(Impact, TimeoutsDoNotDiluteRtt) {
  // The RTT average covers answered queries; timeouts appear in the
  // failure rate instead.
  const auto agg = agg_with_rtts({100.0}, 9);
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(failure_rate(agg), 0.9);
}

TEST(Impact, Thresholds) {
  EXPECT_DOUBLE_EQ(kImpairedThreshold, 10.0);
  EXPECT_DOUBLE_EQ(kSevereThreshold, 100.0);
}

TEST(Impact, UnityWhenUnchanged) {
  const auto agg = agg_with_rtts({20.0, 20.0});
  EXPECT_DOUBLE_EQ(impact_on_rtt(agg, 20.0), 1.0);
}

}  // namespace
}  // namespace ddos::core
