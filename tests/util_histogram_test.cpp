#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ddos::util {
namespace {

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, AddAndCount) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.9);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
}

TEST(LinearHistogram, OutOfRangeClampsIntoEdgeBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h(0.0, 4.0, 4);
  h.add(0.5, 10);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogram, ModeBin) {
  LinearHistogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(LinearHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(LinearHistogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(10.0, 0.0, 5), std::invalid_argument);
}

TEST(LogHistogram, OrderOfMagnitudeBins) {
  LogHistogram h(1.0, 1.0, 6);  // bins [1,10), [10,100), ...
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 1000.0);
  h.add(5.0);
  h.add(50.0);
  h.add(55.0);
  h.add(5e5);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(5), 1u);
}

TEST(LogHistogram, NonPositiveGoesToFirstBin) {
  LogHistogram h(1.0, 1.0, 4);
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.bin(0), 2u);
}

TEST(LogHistogram, ClampsAboveRange) {
  LogHistogram h(1.0, 1.0, 3);  // covers up to 1000
  h.add(1e9);
  EXPECT_EQ(h.bin(2), 1u);
}

TEST(LogHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(LogHistogram(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, MergeAddsBinwise) {
  LinearHistogram a(0.0, 10.0, 5);
  LinearHistogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0, 2);
  b.add(1.5, 3);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.bin(0), 4u);   // 1.0 + 1.5x3
  EXPECT_EQ(a.bin(2), 1u);   // 5.0
  EXPECT_EQ(a.bin(4), 2u);   // 9.0x2
  EXPECT_EQ(a.total(), 7u);
  // b is untouched.
  EXPECT_EQ(b.total(), 4u);
}

TEST(LinearHistogram, MergeShapeMismatchThrows) {
  LinearHistogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(LinearHistogram(0.0, 10.0, 4)), std::invalid_argument);
  EXPECT_THROW(a.merge(LinearHistogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(LinearHistogram(1.0, 10.0, 5)), std::invalid_argument);
}

TEST(LinearHistogram, MergeEmptyIsIdentity) {
  LinearHistogram a(0.0, 4.0, 4);
  a.add(1.0, 5);
  a.merge(LinearHistogram(0.0, 4.0, 4));
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.bin(1), 5u);
}

TEST(LogHistogram, MergeAddsBinwise) {
  LogHistogram a(1.0, 1.0, 4);
  LogHistogram b(1.0, 1.0, 4);
  a.add(5.0);       // bin 0
  b.add(50.0, 2);   // bin 1
  b.add(7.0);       // bin 0
  a.merge(b);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.bin(1), 2u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(LogHistogram, MergeShapeMismatchThrows) {
  LogHistogram a(1.0, 1.0, 4);
  EXPECT_THROW(a.merge(LogHistogram(1.0, 1.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(LogHistogram(2.0, 1.0, 4)), std::invalid_argument);
  EXPECT_THROW(a.merge(LogHistogram(1.0, 0.5, 4)), std::invalid_argument);
}

TEST(LogHistogram, MergeAccumulatesAcrossThreadsPattern) {
  // The per-thread aggregation pattern obs::HistogramMetric relies on:
  // independent shard histograms merged into one at snapshot time.
  std::vector<LogHistogram> shards(4, LogHistogram(1.0, 1.0, 6));
  for (std::size_t t = 0; t < shards.size(); ++t) {
    for (int i = 0; i < 100; ++i) {
      // Thread t observes 10^t-scaled values: one order of magnitude each.
      shards[t].add(std::pow(10.0, static_cast<double>(t)) * 2.0);
    }
  }
  LogHistogram merged(1.0, 1.0, 6);
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.total(), 400u);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(merged.bin(b), 100u);
}

TEST(CategoryCounter, CountsAndFractions) {
  CategoryCounter c;
  c.add("TCP", 9);
  c.add("UDP");
  EXPECT_EQ(c.count("TCP"), 9u);
  EXPECT_EQ(c.count("UDP"), 1u);
  EXPECT_EQ(c.count("ICMP"), 0u);
  EXPECT_EQ(c.total(), 10u);
  EXPECT_DOUBLE_EQ(c.fraction("TCP"), 0.9);
  EXPECT_DOUBLE_EQ(c.fraction("missing"), 0.0);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(CategoryCounter, TopOrdersByCountThenKey) {
  CategoryCounter c;
  c.add("b", 5);
  c.add("a", 5);
  c.add("c", 9);
  const auto top = c.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");  // tie broken by key
}

TEST(CategoryCounter, TopWithFewerEntriesThanK) {
  CategoryCounter c;
  c.add("x");
  const auto top = c.top(10);
  ASSERT_EQ(top.size(), 1u);
}

TEST(CategoryCounter, EmptyFractionIsZero) {
  const CategoryCounter c;
  EXPECT_DOUBLE_EQ(c.fraction("x"), 0.0);
  EXPECT_TRUE(c.top(3).empty());
}

TEST(LogHistogramQuantile, EmptyIsZero) {
  const LogHistogram h(0.01, 0.1, 100);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogramQuantile, SingleValueLandsInItsBin) {
  LogHistogram h(0.01, 0.1, 100);
  h.add(3.0, 1000);
  // Every quantile of a point mass must stay inside the 3.0 bin.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 3.0 / std::pow(10.0, 0.1)) << "q " << q;
    EXPECT_LE(v, 3.0 * std::pow(10.0, 0.1)) << "q " << q;
  }
}

TEST(LogHistogramQuantile, QuantilesAreMonotoneAndBracketTheMass) {
  LogHistogram h(0.01, 0.1, 100);
  // 90% of mass at ~1, 9% at ~10, 1% at ~100.
  h.add(1.0, 9000);
  h.add(10.0, 900);
  h.add(100.0, 100);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p999 = h.quantile(0.999);
  EXPECT_LT(p50, 2.0);
  EXPECT_GT(p95, 5.0);
  EXPECT_LT(p95, 20.0);
  EXPECT_GT(p999, 50.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p999);
}

TEST(LogHistogramQuantile, MergePreservesQuantiles) {
  LogHistogram a(0.01, 0.1, 100);
  LogHistogram b(0.01, 0.1, 100);
  LogHistogram whole(0.01, 0.1, 100);
  for (int i = 1; i <= 1000; ++i) {
    const double x = 0.1 * i;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q " << q;
  }
}

TEST(LogHistogramQuantile, ClampsOutOfRangeQ) {
  LogHistogram h(0.01, 0.1, 100);
  h.add(1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

}  // namespace
}  // namespace ddos::util
