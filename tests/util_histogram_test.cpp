#include "util/histogram.h"

#include <gtest/gtest.h>

namespace ddos::util {
namespace {

TEST(LinearHistogram, BinsAndEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, AddAndCount) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(1.5);
  h.add(9.9);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 3.0);
}

TEST(LinearHistogram, OutOfRangeClampsIntoEdgeBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h(0.0, 4.0, 4);
  h.add(0.5, 10);
  EXPECT_EQ(h.bin(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(LinearHistogram, ModeBin) {
  LinearHistogram h(0.0, 3.0, 3);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(LinearHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(LinearHistogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(10.0, 0.0, 5), std::invalid_argument);
}

TEST(LogHistogram, OrderOfMagnitudeBins) {
  LogHistogram h(1.0, 1.0, 6);  // bins [1,10), [10,100), ...
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 1000.0);
  h.add(5.0);
  h.add(50.0);
  h.add(55.0);
  h.add(5e5);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.bin(5), 1u);
}

TEST(LogHistogram, NonPositiveGoesToFirstBin) {
  LogHistogram h(1.0, 1.0, 4);
  h.add(0.0);
  h.add(-5.0);
  EXPECT_EQ(h.bin(0), 2u);
}

TEST(LogHistogram, ClampsAboveRange) {
  LogHistogram h(1.0, 1.0, 3);  // covers up to 1000
  h.add(1e9);
  EXPECT_EQ(h.bin(2), 1u);
}

TEST(LogHistogram, InvalidConstructionThrows) {
  EXPECT_THROW(LogHistogram(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 0), std::invalid_argument);
}

TEST(CategoryCounter, CountsAndFractions) {
  CategoryCounter c;
  c.add("TCP", 9);
  c.add("UDP");
  EXPECT_EQ(c.count("TCP"), 9u);
  EXPECT_EQ(c.count("UDP"), 1u);
  EXPECT_EQ(c.count("ICMP"), 0u);
  EXPECT_EQ(c.total(), 10u);
  EXPECT_DOUBLE_EQ(c.fraction("TCP"), 0.9);
  EXPECT_DOUBLE_EQ(c.fraction("missing"), 0.0);
  EXPECT_EQ(c.distinct(), 2u);
}

TEST(CategoryCounter, TopOrdersByCountThenKey) {
  CategoryCounter c;
  c.add("b", 5);
  c.add("a", 5);
  c.add("c", 9);
  const auto top = c.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "c");
  EXPECT_EQ(top[1].first, "a");  // tie broken by key
}

TEST(CategoryCounter, TopWithFewerEntriesThanK) {
  CategoryCounter c;
  c.add("x");
  const auto top = c.top(10);
  ASSERT_EQ(top.size(), 1u);
}

TEST(CategoryCounter, EmptyFractionIsZero) {
  const CategoryCounter c;
  EXPECT_DOUBLE_EQ(c.fraction("x"), 0.0);
  EXPECT_TRUE(c.top(3).empty());
}

}  // namespace
}  // namespace ddos::util
