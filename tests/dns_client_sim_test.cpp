#include "dns/client_sim.h"

#include <gtest/gtest.h>

namespace ddos::dns {
namespace {

ClientSimParams base_params() {
  ClientSimParams p;
  p.resolvers = 300;
  p.queries_per_resolver_hz = 0.05;
  p.record_ttl_s = 3600;
  p.upstream_attempts = 3;
  p.attack_duration_s = 2 * 3600;
  p.seed = 5;
  return p;
}

TEST(ClientSim, NoLossNoFailures) {
  ClientSimParams p = base_params();
  p.upstream_loss = 0.0;
  const auto r = simulate_client_population(p);
  EXPECT_GT(r.queries_during_attack, 1000u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_DOUBLE_EQ(r.user_failure_rate(), 0.0);
}

TEST(ClientSim, DikeHolds_FiftyPercentLossBarelyFelt) {
  // Moura et al. 2018: with caching, ~50% packet loss at the authoritative
  // is almost invisible to end users.
  ClientSimParams p = base_params();
  p.upstream_loss = 0.5;
  const auto r = simulate_client_population(p);
  EXPECT_LT(r.user_failure_rate(), 0.01);
  EXPECT_GT(r.cache_hit_rate(), 0.95);
}

TEST(ClientSim, DikeBreaks_NearTotalLossHurts) {
  ClientSimParams p = base_params();
  p.upstream_loss = 0.995;
  p.record_ttl_s = 60;  // CDN-style low TTL
  const auto r = simulate_client_population(p);
  EXPECT_GT(r.user_failure_rate(), 0.3);
}

TEST(ClientSim, HigherTtlTolerantUnderSameLoss) {
  ClientSimParams p = base_params();
  p.upstream_loss = 0.9;
  p.record_ttl_s = 60;
  const double low_ttl = simulate_client_population(p).user_failure_rate();
  p.record_ttl_s = 7200;
  p.seed = 5;
  const double high_ttl = simulate_client_population(p).user_failure_rate();
  EXPECT_GT(low_ttl, high_ttl * 3.0);
}

TEST(ClientSim, QueriesPartition) {
  ClientSimParams p = base_params();
  p.upstream_loss = 0.8;
  const auto r = simulate_client_population(p);
  EXPECT_EQ(r.queries_during_attack,
            r.served_from_cache + r.resolved_upstream + r.failed);
}

TEST(ClientSim, Deterministic) {
  const ClientSimParams p = base_params();
  const auto a = simulate_client_population(p);
  const auto b = simulate_client_population(p);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.queries_during_attack, b.queries_during_attack);
}

TEST(ClientSim, AnalyticalModelMatchesSimulation) {
  for (const double loss : {0.3, 0.5, 0.8, 0.95}) {
    ClientSimParams p = base_params();
    p.resolvers = 2000;  // tight sampling
    p.upstream_loss = loss;
    p.record_ttl_s = 600;
    p.attack_duration_s = 6 * 3600;
    const double simulated =
        simulate_client_population(p).user_failure_rate();
    const double analytical = expected_user_failure_rate(p);
    EXPECT_NEAR(simulated, analytical, std::max(0.002, analytical * 0.4))
        << "loss=" << loss;
  }
}

TEST(ClientSim, AnalyticalEdgeCases) {
  ClientSimParams p = base_params();
  p.upstream_loss = 0.0;
  EXPECT_DOUBLE_EQ(expected_user_failure_rate(p), 0.0);
  p.queries_per_resolver_hz = 0.0;
  EXPECT_DOUBLE_EQ(expected_user_failure_rate(p), 0.0);
}

// Property: failure rate is monotone non-decreasing in loss.
class ClientSimLossSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClientSimLossSweep, MonotoneInLoss) {
  double prev = -1.0;
  for (const double loss : {0.0, 0.5, 0.9, 0.99, 0.999}) {
    ClientSimParams p = base_params();
    p.seed = GetParam();
    p.resolvers = 500;
    p.record_ttl_s = 300;
    p.upstream_loss = loss;
    const double rate = simulate_client_population(p).user_failure_rate();
    EXPECT_GE(rate, prev - 0.01) << "loss=" << loss;
    prev = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClientSimLossSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace ddos::dns
