#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.h"

namespace ddos::obs {
namespace {

TEST(MetricsRegistry, CounterRegistrationAndValue) {
  MetricsRegistry reg;
  Counter& c = reg.counter("pipeline.events");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same (name, labels) -> same instance.
  EXPECT_EQ(&reg.counter("pipeline.events"), &c);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, LabelsDistinguishMetrics) {
  MetricsRegistry reg;
  Counter& nl = reg.counter("sweep.queries", {{"vantage", "nl"}});
  Counter& us = reg.counter("sweep.queries", {{"vantage", "us"}});
  EXPECT_NE(&nl, &us);
  nl.inc(3);
  us.inc(5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  EXPECT_EQ(snap.samples[0].labels.at("vantage"), "nl");
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 3.0);
  EXPECT_DOUBLE_EQ(snap.samples[1].value, 5.0);
}

TEST(MetricsRegistry, KindClashThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x", 1.0, 1.0, 4), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("run.days_swept");
  g.set(17.0);
  g.add(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 20.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].kind, MetricKind::Gauge);
  EXPECT_DOUBLE_EQ(snap.samples[0].value, 20.0);
}

TEST(MetricsRegistry, HistogramSnapshotBins) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.histogram("rtt_ms", 1.0, 1.0, 5);
  h.observe(5.0);       // [1, 10)
  h.observe(50.0, 2);   // [10, 100)
  const MetricsSnapshot snap = reg.snapshot();
  const MetricSample* s = snap.find("rtt_ms");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricKind::Histogram);
  EXPECT_DOUBLE_EQ(s->value, 3.0);  // total observations
  ASSERT_EQ(s->bins.size(), 2u);    // zero bins elided
  EXPECT_DOUBLE_EQ(s->bins[0].lo, 1.0);
  EXPECT_EQ(s->bins[0].count, 1u);
  EXPECT_EQ(s->bins[1].count, 2u);
}

TEST(MetricsSnapshot, JsonShape) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(7);
  reg.gauge("b.level").set(1.5);
  reg.histogram("c.dist", 1.0, 1.0, 4).observe(3.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"name\":\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"bins\":["), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(MetricsSnapshot, TableListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("one").inc();
  reg.gauge("two").set(2.0);
  const std::string table = reg.snapshot().to_table();
  EXPECT_NE(table.find("one"), std::string::npos);
  EXPECT_NE(table.find("two"), std::string::npos);
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("gauge"), std::string::npos);
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// The ThreadSanitizer CI job runs this to validate the lock-free counters
// and the sharded histogram under real contention.
TEST(MetricsRegistry, MultiThreadedHammer) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hammer.count");
  Gauge& g = reg.gauge("hammer.gauge");
  HistogramMetric& h = reg.histogram("hammer.dist", 1.0, 1.0, 8);

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(static_cast<double>(1 + (t * kIters + i) % 1000));
        if (i % 4096 == 0) {
          // Concurrent snapshots must not disturb the totals.
          (void)reg.snapshot();
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(h.snapshot().total(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Observer, PipelineMetricsPreRegistered) {
  Observer obs;
  obs.pipeline.resolver_queries.inc(5);
  const MetricsSnapshot snap = obs.metrics().snapshot();
  const MetricSample* s = snap.find("resolver.queries");
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 5.0);
  EXPECT_NE(snap.find("sweep.rtt_ms"), nullptr);
  EXPECT_NE(snap.find("join.events_out"), nullptr);
}

TEST(Observer, InstallAndScopedRestore) {
  ASSERT_EQ(Observer::installed(), nullptr);
  Observer outer;
  {
    ScopedInstall outer_install(outer);
    EXPECT_EQ(Observer::installed(), &outer);
    {
      Observer inner;
      ScopedInstall inner_install(inner);
      EXPECT_EQ(Observer::installed(), &inner);
    }
    EXPECT_EQ(Observer::installed(), &outer);
  }
  EXPECT_EQ(Observer::installed(), nullptr);
}

TEST(Observer, ProgressThrottleAndForce) {
  Observer obs;
  int emitted = 0;
  // A huge interval: only forced events get through after the first.
  obs.set_progress([&](const ProgressEvent&) { ++emitted; },
                   /*min_interval_ms=*/3600000);
  ProgressEvent ev;
  obs.emit_progress(ev);          // first always emits
  obs.emit_progress(ev);          // throttled
  obs.emit_progress(ev);          // throttled
  EXPECT_EQ(emitted, 1);
  obs.emit_progress(ev, /*force=*/true);
  EXPECT_EQ(emitted, 2);

  // Interval 0 disables throttling entirely.
  Observer obs2;
  int emitted2 = 0;
  obs2.set_progress([&](const ProgressEvent&) { ++emitted2; }, 0);
  obs2.emit_progress(ev);
  obs2.emit_progress(ev);
  EXPECT_EQ(emitted2, 2);
}

TEST(Observer, ProgressCompletionBypassesThrottle) {
  // The 100% line must always be emitted: a completion event
  // (days_done == days_total > 0) passes the throttle even when the
  // caller forgot to force and the interval has not elapsed.
  Observer obs;
  int emitted = 0;
  std::uint64_t last_done = 0;
  obs.set_progress(
      [&](const ProgressEvent& e) {
        ++emitted;
        last_done = e.days_done;
      },
      /*min_interval_ms=*/3600000);
  ProgressEvent ev;
  ev.days_total = 10;
  ev.days_done = 1;
  obs.emit_progress(ev);  // first always emits
  ev.days_done = 5;
  obs.emit_progress(ev);  // throttled
  EXPECT_EQ(emitted, 1);
  ev.days_done = 10;
  obs.emit_progress(ev);  // completion: bypasses the throttle
  EXPECT_EQ(emitted, 2);
  EXPECT_EQ(last_done, 10u);

  // days_total == 0 (unknown-length stage) is NOT a completion signal.
  ProgressEvent open_ended;
  obs.emit_progress(open_ended);
  EXPECT_EQ(emitted, 2);
}

}  // namespace
}  // namespace ddos::obs
