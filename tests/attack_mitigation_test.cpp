#include "attack/mitigation.h"

#include <gtest/gtest.h>

#include "dns/server.h"
#include "telescope/darknet.h"
#include "telescope/feed.h"

namespace ddos::attack {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

AttackSpec big_flood(IPv4Addr target, std::int64_t start_s = 0,
                     std::int64_t duration_s = 2 * 3600,
                     double pps = 800e3) {
  AttackSpec spec;
  spec.target = target;
  spec.start = SimTime(start_s);
  spec.duration_s = duration_s;
  spec.peak_pps = pps;
  spec.steady = true;
  return spec;
}

TEST(Rtbh, TriggersOnlyAboveThreshold) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200, 800e3));
  schedule.add(big_flood(IPv4Addr(2, 2, 2, 2), 0, 7200, 50e3));  // small
  const auto events = apply_rtbh(schedule, RtbhPolicy{});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].victim, IPv4Addr(1, 1, 1, 1));
}

TEST(Rtbh, IntervalFollowsPolicy) {
  AttackSchedule schedule;
  const auto id = schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 1000, 7200));
  RtbhPolicy policy;
  policy.reaction_delay_s = 600;
  policy.hold_s = 1800;
  const auto events = apply_rtbh(schedule, policy);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].attack_id, id);
  EXPECT_EQ(events[0].from.seconds(), 1600);
  EXPECT_EQ(events[0].until.seconds(), 1000 + 7200 + 1800);
}

TEST(Rtbh, ShortAttackEndsBeforeReaction) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 300));  // 5 minutes
  EXPECT_TRUE(apply_rtbh(schedule, RtbhPolicy{}).empty());
}

TEST(Rtbh, ReflectedAttacksNotEligible) {
  AttackSchedule schedule;
  auto spec = big_flood(IPv4Addr(1, 1, 1, 1));
  spec.spoof = SpoofType::Reflected;
  schedule.add(spec);
  EXPECT_TRUE(apply_rtbh(schedule, RtbhPolicy{}).empty());
}

TEST(Rtbh, TruncatesVisiblePortionAndAddsContinuation) {
  AttackSchedule schedule;
  const auto id = schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200));
  apply_rtbh(schedule, RtbhPolicy{});
  EXPECT_EQ(schedule.size(), 2u);  // truncated original + continuation
  const auto* original = schedule.find(id);
  ASSERT_NE(original, nullptr);
  EXPECT_EQ(original->duration_s, 600);  // cut at the reaction delay
  // Attacker traffic bookkeeping continues at full rate.
  EXPECT_NEAR(schedule.attack_pps_at(IPv4Addr(1, 1, 1, 1), 5), 800e3, 1.0);
}

TEST(Rtbh, IdempotentOnContinuations) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200));
  apply_rtbh(schedule, RtbhPolicy{});
  // A second pass finds nothing new (the continuation is Direct, and the
  // truncated original now ends before the reaction delay).
  EXPECT_TRUE(apply_rtbh(schedule, RtbhPolicy{}).empty());
  EXPECT_EQ(schedule.size(), 2u);
}

TEST(Rtbh, TelescopeSeesTruncatedDuration) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200));
  apply_rtbh(schedule, RtbhPolicy{});

  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            BackscatterModelParams{}};
  feed.ingest(schedule, telescope::Darknet::ucsd_like(), 5);
  const auto events = feed.events();
  ASSERT_EQ(events.size(), 1u);
  // The attacker ran two hours; the telescope sees ~10 minutes (§6.5's
  // "attack succeeds and impedes the backscatter signal").
  EXPECT_LE(events[0].duration_s(), 900);
}

TEST(Rtbh, BlackholedServerIsDarkForEveryone) {
  dns::Nameserver ns(IPv4Addr(1, 1, 1, 1), {dns::Site{"x", 50e3, 20.0, 1.0}});
  ns.add_blackhole_interval(SimTime(1000), SimTime(2000));
  netsim::Rng rng(1);
  for (const char* country : {"NL", "RU", "US"}) {
    EXPECT_FALSE(ns.query(rng, dns::OfferedLoad{}, dns::LoadModelParams{},
                          SimTime(1500), 0, country)
                     .responded);
  }
  EXPECT_TRUE(ns.query(rng, dns::OfferedLoad{}, dns::LoadModelParams{},
                       SimTime(999))
                  .responded);
  EXPECT_TRUE(ns.query(rng, dns::OfferedLoad{}, dns::LoadModelParams{},
                       SimTime(2000))
                  .responded);
}

TEST(Rtbh, BlackholeIntervalsAccumulate) {
  dns::Nameserver ns(IPv4Addr(1, 1, 1, 1), {dns::Site{"x", 50e3, 20.0, 1.0}});
  ns.add_blackhole_interval(SimTime(10), SimTime(20));
  ns.add_blackhole_interval(SimTime(50), SimTime(60));
  EXPECT_TRUE(ns.blackholed_at(SimTime(15)));
  EXPECT_FALSE(ns.blackholed_at(SimTime(30)));
  EXPECT_TRUE(ns.blackholed_at(SimTime(55)));
  // Degenerate interval ignored.
  ns.add_blackhole_interval(SimTime(100), SimTime(100));
  EXPECT_FALSE(ns.blackholed_at(SimTime(100)));
}

TEST(Scrubbing, VictimLoadDropsTelescopeViewUnchanged) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200));
  ScrubbingPolicy policy;
  policy.activation_delay_s = 900;
  policy.efficacy = 0.95;
  const auto events = apply_scrubbing(schedule, policy);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].from.seconds(), 900);

  // Victim-side load: full before activation, 5% after.
  EXPECT_NEAR(schedule.attack_pps_at(IPv4Addr(1, 1, 1, 1), 1), 800e3, 1.0);
  EXPECT_NEAR(schedule.attack_pps_at(IPv4Addr(1, 1, 1, 1), 12), 40e3, 1.0);

  // Telescope view: the spoofed traffic still elicits backscatter at full
  // rate for the full two hours (the March 2021 TransIP signature).
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            BackscatterModelParams{}};
  feed.ingest(schedule, telescope::Darknet::ucsd_like(), 5);
  const auto inferred = feed.events();
  ASSERT_EQ(inferred.size(), 1u);
  EXPECT_EQ(inferred[0].duration_s(), 7200);
}

TEST(Scrubbing, BelowTriggerUntouched) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200, 100e3));
  EXPECT_TRUE(apply_scrubbing(schedule, ScrubbingPolicy{}).empty());
  EXPECT_EQ(schedule.size(), 1u);
}

TEST(Scrubbing, IdempotentOnScrubbedTails) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200));
  apply_scrubbing(schedule, ScrubbingPolicy{});
  EXPECT_TRUE(apply_scrubbing(schedule, ScrubbingPolicy{}).empty());
  EXPECT_EQ(schedule.size(), 2u);
}

TEST(Scrubbing, ServerRecoversOnceActive) {
  AttackSchedule schedule;
  schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 7200, 900e3));
  ScrubbingPolicy policy;
  policy.activation_delay_s = 900;
  policy.efficacy = 0.97;
  apply_scrubbing(schedule, policy);

  dns::Nameserver ns(IPv4Addr(1, 1, 1, 1), {dns::Site{"x", 60e3, 20.0, 1.0}});
  ns.set_legit_pps(1e3);
  netsim::Rng rng(2);
  int ok_before = 0, ok_after = 0;
  for (int i = 0; i < 500; ++i) {
    const dns::OfferedLoad before{
        schedule.attack_pps_at(IPv4Addr(1, 1, 1, 1), 1), 0.0};
    const auto qb =
        ns.query(rng, before, dns::LoadModelParams{}, SimTime(400));
    if (qb.responded && qb.rtt_ms < 1500) ++ok_before;
    const dns::OfferedLoad after{
        schedule.attack_pps_at(IPv4Addr(1, 1, 1, 1), 12), 0.0};
    const auto qa =
        ns.query(rng, after, dns::LoadModelParams{}, SimTime(3700));
    if (qa.responded && qa.rtt_ms < 1500) ++ok_after;
  }
  EXPECT_LT(ok_before, 100);  // 15x overload: mostly dead
  EXPECT_GT(ok_after, 450);   // scrubbed to ~0.45x: healthy again
}

TEST(Schedule, TruncateAttackValidation) {
  AttackSchedule schedule;
  const auto id = schedule.add(big_flood(IPv4Addr(1, 1, 1, 1), 0, 3600));
  EXPECT_FALSE(schedule.truncate_attack(999, SimTime(100)));
  EXPECT_FALSE(schedule.truncate_attack(id, SimTime(0)));     // at start
  EXPECT_FALSE(schedule.truncate_attack(id, SimTime(3600)));  // at end
  EXPECT_TRUE(schedule.truncate_attack(id, SimTime(1800)));
  EXPECT_EQ(schedule.find(id)->duration_s, 1800);
}

}  // namespace
}  // namespace ddos::attack
