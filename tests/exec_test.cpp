// Tests for src/exec/ — the deterministic parallel execution engine.
//
// The load-bearing property is the determinism contract: shard structure
// is a pure function of the item count and reduction is ordered, so any
// thread count (1, 2, 8, oversubscribed) produces bit-identical results.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/export.h"
#include "exec/parallel.h"
#include "exec/pool.h"
#include "obs/obs.h"
#include "scenario/driver.h"

using namespace ddos;

namespace {

TEST(PlanShards, PureFunctionOfN) {
  EXPECT_EQ(exec::plan_shards(0), 0u);
  EXPECT_EQ(exec::plan_shards(1), 1u);
  EXPECT_EQ(exec::plan_shards(63), 63u);
  EXPECT_EQ(exec::plan_shards(64), 64u);
  EXPECT_EQ(exec::plan_shards(1'000'000), exec::kDefaultMaxShards);
  EXPECT_EQ(exec::plan_shards(10, 4), 4u);
}

TEST(ShardBounds, CoversRangeExactlyAndBalanced) {
  for (const std::size_t n : {1u, 2u, 63u, 64u, 65u, 1000u, 12345u}) {
    const std::size_t shards = exec::plan_shards(n);
    std::size_t covered = 0;
    std::size_t expected_begin = 0;
    std::size_t min_size = n, max_size = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const exec::ShardRange r = exec::shard_bounds(n, shards, s);
      EXPECT_EQ(r.begin, expected_begin);
      EXPECT_EQ(r.index, s);
      EXPECT_GT(r.end, r.begin);
      covered += r.size();
      expected_begin = r.end;
      min_size = std::min(min_size, r.size());
      max_size = std::max(max_size, r.size());
    }
    EXPECT_EQ(covered, n);
    EXPECT_EQ(expected_begin, n);
    EXPECT_LE(max_size - min_size, 1u);  // balanced to within one item
  }
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  exec::WorkerPool pool(4);
  exec::RegionOptions opts;
  opts.pool = &pool;
  bool ran = false;
  exec::parallel_for(0, opts, [&](const exec::ShardRange&) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleItemRunsInline) {
  exec::WorkerPool pool(4);
  exec::RegionOptions opts;
  opts.pool = &pool;
  std::atomic<int> count{0};
  exec::parallel_for(1, opts, [&](const exec::ShardRange& r) {
    EXPECT_EQ(r.begin, 0u);
    EXPECT_EQ(r.end, 1u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, VisitsEveryItemOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::WorkerPool pool(threads);
    exec::RegionOptions opts;
    opts.pool = &pool;
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> visits(n);
    exec::parallel_for(n, opts, [&](const exec::ShardRange& r) {
      for (std::size_t i = r.begin; i < r.end; ++i) ++visits[i];
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(visits[i].load(), 1) << "item " << i << " at " << threads
                                     << " threads";
    }
  }
}

TEST(ParallelMapReduce, ReductionIsOrderedForAnyThreadCount) {
  const std::size_t n = 5000;
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0u);
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::WorkerPool pool(threads);
    exec::RegionOptions opts;
    opts.pool = &pool;
    const std::vector<std::size_t> got = exec::parallel_map_reduce(
        n, opts, std::vector<std::size_t>{},
        [](const exec::ShardRange& r) {
          std::vector<std::size_t> out;
          for (std::size_t i = r.begin; i < r.end; ++i) out.push_back(i);
          return out;
        },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& shard) {
          acc.insert(acc.end(), shard.begin(), shard.end());
        });
    EXPECT_EQ(got, expected) << threads << " threads";
  }
}

TEST(ParallelMapReduce, FloatFoldOrderIsThreadCountInvariant) {
  // A sum whose value depends on fold order: catches any scheme that
  // reduces in completion order instead of shard order.
  const std::size_t n = 100'000;
  const auto run = [&](unsigned threads) {
    exec::WorkerPool pool(threads);
    exec::RegionOptions opts;
    opts.pool = &pool;
    return exec::parallel_map_reduce(
        n, opts, 0.0,
        [](const exec::ShardRange& r) {
          double s = 0.0;
          for (std::size_t i = r.begin; i < r.end; ++i) {
            s += 1.0 / static_cast<double>(i + 1);
          }
          return s;
        },
        [](double& acc, double&& shard) { acc += shard; });
  };
  const double at1 = run(1);
  EXPECT_EQ(at1, run(2));  // exact bitwise equality, not near
  EXPECT_EQ(at1, run(8));
}

TEST(ParallelFor, PropagatesFirstException) {
  exec::WorkerPool pool(4);
  exec::RegionOptions opts;
  opts.pool = &pool;
  EXPECT_THROW(
      exec::parallel_for(1000, opts,
                         [](const exec::ShardRange& r) {
                           if (r.begin >= 500) {
                             throw std::runtime_error("shard failed");
                           }
                         }),
      std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<std::size_t> count{0};
  exec::parallel_for(100, opts, [&](const exec::ShardRange& r) {
    count += r.size();
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ParallelFor, OversubscriptionHammer) {
  // Far more shards than workers, tiny bodies: stresses the claim counter
  // and region wake/quiesce logic under oversubscription.
  exec::WorkerPool pool(8);
  exec::RegionOptions opts;
  opts.pool = &pool;
  opts.max_shards = 512;
  std::atomic<std::uint64_t> sum{0};
  const std::size_t n = 4096;
  for (int round = 0; round < 50; ++round) {
    exec::parallel_for(n, opts, [&](const exec::ShardRange& r) {
      std::uint64_t local = 0;
      for (std::size_t i = r.begin; i < r.end; ++i) local += i;
      sum += local;
    });
  }
  EXPECT_EQ(sum.load(), 50ull * (n * (n - 1) / 2));
}

TEST(ParallelFor, NestedRegionsRunInline) {
  exec::WorkerPool pool(4);
  exec::RegionOptions opts;
  opts.pool = &pool;
  std::atomic<std::size_t> inner_items{0};
  exec::parallel_for(64, opts, [&](const exec::ShardRange& outer) {
    EXPECT_TRUE(exec::WorkerPool::inside_region());
    exec::parallel_for(outer.size(), opts, [&](const exec::ShardRange& r) {
      inner_items += r.size();
    });
  });
  EXPECT_EQ(inner_items.load(), 64u);
}

TEST(WorkerPool, StatsAccumulateAcrossRegions) {
  exec::WorkerPool pool(2);
  exec::RegionOptions opts;
  opts.pool = &pool;
  exec::parallel_for(1000, opts, [](const exec::ShardRange&) {});
  const auto stats = pool.stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t tasks = 0;
  for (const auto& s : stats) tasks += s.tasks;
  EXPECT_EQ(tasks, exec::plan_shards(1000));
}

TEST(Observer, ProgressThrottleIsRaceFreeUnderConcurrentEmitters) {
  obs::Observer observer;
  std::atomic<std::uint64_t> emitted{0};
  // Effectively-infinite interval: exactly one unforced emission may win.
  observer.set_progress(
      [&](const obs::ProgressEvent&) { ++emitted; },
      /*min_interval_ms=*/10'000'000);
  exec::WorkerPool pool(8);
  exec::RegionOptions opts;
  opts.pool = &pool;
  exec::parallel_for(2048, opts, [&](const exec::ShardRange&) {
    obs::ProgressEvent ev;
    ev.stage = "sweep";
    observer.emit_progress(ev);
  });
  EXPECT_EQ(emitted.load(), 1u);
  // Forced events always pass the throttle.
  obs::ProgressEvent final_ev;
  observer.emit_progress(final_ev, /*force=*/true);
  EXPECT_EQ(emitted.load(), 2u);
}

// The acceptance criterion: the longitudinal pipeline's exported events
// CSV is bit-for-bit identical across --threads 1/2/8 on a seeded world.
TEST(PipelineDeterminism, EventsCsvBitIdenticalAcrossThreadCounts) {
  scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(7);
  const auto run_at = [&](unsigned threads) {
    exec::set_global_threads(threads);
    const scenario::LongitudinalResult r = scenario::run_longitudinal(cfg);
    std::ostringstream csv;
    core::write_events_csv(csv, r.joined);
    return std::pair<std::string, std::uint64_t>(csv.str(),
                                                 r.swept_measurements);
  };
  const auto at1 = run_at(1);
  const auto at2 = run_at(2);
  const auto at8 = run_at(8);
  exec::set_global_threads(0);
  EXPECT_GT(at1.second, 0u);
  EXPECT_FALSE(at1.first.empty());
  EXPECT_EQ(at1.first, at2.first);
  EXPECT_EQ(at1.first, at8.first);
  EXPECT_EQ(at1.second, at2.second);
  EXPECT_EQ(at1.second, at8.second);
}

}  // namespace
