// Workload-generator acceptance: deterministic op streams, Zipfian shape
// (rank-frequency monotonicity across a theta sweep), uniform chi-square
// sanity, and query-mix accounting. These are the statistical contracts
// the serve load driver's throughput and fingerprint numbers stand on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "netsim/rng.h"
#include "serve/workload.h"

namespace ddos::serve {
namespace {

TEST(ParseMix, AcceptsWellFormedSpecs) {
  const auto mix = parse_mix("95:4:1");
  ASSERT_TRUE(mix.has_value());
  EXPECT_EQ(mix->point, 95u);
  EXPECT_EQ(mix->topk, 4u);
  EXPECT_EQ(mix->scan, 1u);
  EXPECT_EQ(mix->total(), 100u);
  EXPECT_EQ(mix->to_string(), "95:4:1");

  const auto point_only = parse_mix("1:0:0");
  ASSERT_TRUE(point_only.has_value());
  EXPECT_EQ(point_only->total(), 1u);
}

TEST(ParseMix, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_mix("").has_value());
  EXPECT_FALSE(parse_mix("95:4").has_value());
  EXPECT_FALSE(parse_mix("95:4:1:0").has_value());
  EXPECT_FALSE(parse_mix("a:b:c").has_value());
  EXPECT_FALSE(parse_mix("95:4:").has_value());
  EXPECT_FALSE(parse_mix("-1:4:1").has_value());
  EXPECT_FALSE(parse_mix("0:0:0").has_value()) << "zero total is a no-op";
}

// The optional `error` out-param carries a FlagParser-style diagnostic:
// it names the expected form, echoes the offending spec, and says which
// field is wrong and why — that exact string is what `ddosrepro serve
// --mix` prints, so the wording is a contract, not decoration.
TEST(ParseMix, DiagnosesWhatIsWrongWithTheSpec) {
  const auto diag = [](std::string_view spec) {
    std::string error;
    EXPECT_FALSE(parse_mix(spec, &error).has_value()) << spec;
    return error;
  };

  const std::string negative = diag("95:-4:1");
  EXPECT_NE(negative.find("point:topk:scan"), std::string::npos);
  EXPECT_NE(negative.find("'95:-4:1'"), std::string::npos);
  EXPECT_NE(negative.find("topk weight '-4' is negative"), std::string::npos);

  EXPECT_NE(diag("95:4:9999999999").find(
                "scan weight '9999999999' overflows 32 bits"),
            std::string::npos);
  EXPECT_NE(diag("0:0:0").find("all three weights are zero"),
            std::string::npos);
  EXPECT_NE(diag("95:4").find("expected three ':'-separated fields"),
            std::string::npos);
  EXPECT_NE(diag("95::1").find("topk weight is empty"), std::string::npos);
  EXPECT_NE(diag("9x:4:1").find(
                "point weight '9x' is not a non-negative integer"),
            std::string::npos);
  // Each weight fits u32 but the roll is against the sum, which must too.
  EXPECT_NE(diag("4000000000:4000000000:1").find("weights sum past 32 bits"),
            std::string::npos);

  // A null error pointer is allowed: rejection without diagnostics.
  EXPECT_FALSE(parse_mix("95:x:1", nullptr).has_value());
}

TEST(ParseDistribution, RoundTrips) {
  EXPECT_EQ(parse_distribution("uniform"), Distribution::Uniform);
  EXPECT_EQ(parse_distribution("zipfian"), Distribution::Zipfian);
  EXPECT_FALSE(parse_distribution("latest").has_value());
  EXPECT_STREQ(to_string(Distribution::Uniform), "uniform");
  EXPECT_STREQ(to_string(Distribution::Zipfian), "zipfian");
}

TEST(Workload, SameSeedSameThreadReproducesTheOpStream) {
  WorkloadSpec spec;
  spec.seed = 1234;
  spec.day_min = 10;
  spec.day_max = 200;
  Workload a(spec, 500, 3);
  Workload b(spec, 500, 3);
  for (int i = 0; i < 5000; ++i) {
    const Op x = a.next();
    const Op y = b.next();
    ASSERT_EQ(x.type, y.type) << "op " << i;
    ASSERT_EQ(x.key_index, y.key_index) << "op " << i;
    ASSERT_EQ(x.k, y.k) << "op " << i;
    ASSERT_EQ(x.metric, y.metric) << "op " << i;
    ASSERT_EQ(x.day_lo, y.day_lo) << "op " << i;
    ASSERT_EQ(x.day_hi, y.day_hi) << "op " << i;
  }
}

TEST(Workload, DifferentThreadsDrawDifferentStreams) {
  WorkloadSpec spec;
  spec.day_min = 0;
  spec.day_max = 100;
  Workload a(spec, 500, 0);
  Workload b(spec, 500, 1);
  int diverged = 0;
  for (int i = 0; i < 200; ++i) {
    const Op x = a.next();
    const Op y = b.next();
    if (x.type != y.type || x.key_index != y.key_index) ++diverged;
  }
  EXPECT_GT(diverged, 100) << "thread streams must be independent";
}

TEST(Workload, MixAccountingMatchesTheSpec) {
  WorkloadSpec spec;
  spec.mix.point = 95;
  spec.mix.topk = 4;
  spec.mix.scan = 1;
  spec.day_min = 0;
  spec.day_max = 100;
  Workload wl(spec, 1000, 0);
  const int n = 200000;
  int counts[kQueryTypeCount] = {0, 0, 0};
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(wl.next().type)];
  }
  // Binomial std-dev at p=0.95 over 200k draws is ~0.05pp; 1pp tolerance
  // is > 20 sigma, deterministic in practice for a fixed seed anyway.
  EXPECT_NEAR(counts[0] / double(n), 0.95, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.04, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.01, 0.005);
  EXPECT_EQ(wl.ops_generated(), static_cast<std::uint64_t>(n));
}

TEST(Workload, ScanWindowsStayInsideTheDayRange) {
  WorkloadSpec spec;
  spec.mix = {0, 0, 1};  // scans only
  spec.scan_days = 30;
  spec.day_min = 50;
  spec.day_max = 120;
  Workload wl(spec, 10, 0);
  for (int i = 0; i < 2000; ++i) {
    const Op op = wl.next();
    ASSERT_EQ(op.type, QueryType::WindowScan);
    EXPECT_GE(op.day_lo, spec.day_min);
    EXPECT_LE(op.day_hi, spec.day_max);
    EXPECT_EQ(op.day_hi - op.day_lo + 1, 30);
  }
}

TEST(Workload, TopKRoundRobinsTheMetrics) {
  WorkloadSpec spec;
  spec.mix = {0, 1, 0};  // topk only
  spec.day_min = 0;
  spec.day_max = 10;
  Workload wl(spec, 10, 0);
  int metric_counts[3] = {0, 0, 0};
  for (int i = 0; i < 300; ++i) {
    const Op op = wl.next();
    ASSERT_EQ(op.type, QueryType::TopK);
    ASSERT_LT(op.metric, 3);
    ++metric_counts[op.metric];
  }
  EXPECT_EQ(metric_counts[0], 100);
  EXPECT_EQ(metric_counts[1], 100);
  EXPECT_EQ(metric_counts[2], 100);
}

// Rank-frequency shape: under Zipfian choice, lower ranks must be sampled
// at least as often as higher ranks (checked over decile buckets to keep
// sampling noise out), and raising theta must concentrate more mass on
// the head.
TEST(KeyChooser, ZipfianRankFrequencyIsMonotone) {
  const std::uint64_t n = 1000;
  const int draws = 300000;
  for (const double theta : {0.5, 0.99, 1.2}) {
    KeyChooser chooser(Distribution::Zipfian, n, theta);
    netsim::Rng rng(99);
    std::vector<std::uint64_t> hits(n, 0);
    for (int i = 0; i < draws; ++i) ++hits[chooser.next_rank(rng)];
    // Decile mass must be non-increasing.
    const std::size_t bucket = n / 10;
    std::uint64_t prev = ~0ull;
    for (std::size_t b = 0; b < 10; ++b) {
      std::uint64_t mass = 0;
      for (std::size_t r = b * bucket; r < (b + 1) * bucket; ++r) {
        mass += hits[r];
      }
      EXPECT_LE(mass, prev) << "theta " << theta << " decile " << b;
      prev = mass;
    }
    EXPECT_GT(hits[0], hits[n / 2]) << "theta " << theta;
  }
}

TEST(KeyChooser, HigherThetaConcentratesTheHead) {
  const std::uint64_t n = 1000;
  const int draws = 200000;
  double prev_head_share = 0.0;
  for (const double theta : {0.5, 0.99, 1.2}) {
    KeyChooser chooser(Distribution::Zipfian, n, theta);
    netsim::Rng rng(7);
    std::uint64_t head = 0;  // draws landing in the top 1% of ranks
    for (int i = 0; i < draws; ++i) {
      if (chooser.next_rank(rng) < n / 100) ++head;
    }
    const double share = head / double(draws);
    EXPECT_GT(share, prev_head_share) << "theta " << theta;
    prev_head_share = share;
  }
  EXPECT_GT(prev_head_share, 0.5) << "theta 1.2 should be head-heavy";
}

// Chi-square sanity for the uniform chooser: 100 cells, 100k draws. The
// 99.9th percentile of chi^2(99) is ~148; a generator this far out is
// broken, not unlucky (and the test is deterministic for the fixed seed).
TEST(KeyChooser, UniformChiSquareWithinBounds) {
  const std::uint64_t n = 100;
  const int draws = 100000;
  KeyChooser chooser(Distribution::Uniform, n, 0.0);
  netsim::Rng rng(2024);
  std::vector<std::uint64_t> hits(n, 0);
  for (int i = 0; i < draws; ++i) ++hits[chooser.next_rank(rng)];
  const double expected = draws / double(n);
  double chi2 = 0.0;
  for (const std::uint64_t h : hits) {
    const double d = h - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 148.0);
  EXPECT_GT(chi2, 40.0) << "suspiciously sub-random spread";
}

TEST(KeyChooser, ScatterSpreadsHotRanksAcrossTheUniverse) {
  const std::uint64_t n = 1000;
  // The ten hottest ranks must not land in one clump of the key space.
  std::vector<std::uint64_t> indices;
  for (std::uint64_t r = 0; r < 10; ++r) {
    const std::uint64_t idx = KeyChooser::scatter(r, n);
    EXPECT_LT(idx, n);
    indices.push_back(idx);
  }
  std::uint64_t lo = n, hi = 0;
  for (const std::uint64_t idx : indices) {
    lo = std::min(lo, idx);
    hi = std::max(hi, idx);
  }
  EXPECT_GT(hi - lo, n / 4) << "hot ranks clumped together";
  // And scatter is a pure function.
  EXPECT_EQ(KeyChooser::scatter(3, n), KeyChooser::scatter(3, n));
}

TEST(KeyChooser, RejectsEmptyUniverse) {
  EXPECT_THROW(KeyChooser(Distribution::Uniform, 0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddos::serve
