#include "netsim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "util/stats.h"

namespace ddos::netsim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_u64(7), 7u);
  }
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng(4);
  std::map<std::uint64_t, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_u64(6)];
  for (const auto& [v, c] : counts) {
    EXPECT_NEAR(c, n / 6, n / 6 * 0.1) << "value " << v;
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(6);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, ChanceEdges) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_FALSE(rng.chance(-0.5));
  EXPECT_TRUE(rng.chance(2.0));
}

TEST(Rng, NormalMoments) {
  Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.normal(10.0, 3.0));
  EXPECT_NEAR(util::mean(xs), 10.0, 0.05);
  EXPECT_NEAR(util::stddev(xs), 3.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  EXPECT_NEAR(util::median(xs), std::exp(2.0), std::exp(2.0) * 0.03);
  EXPECT_DOUBLE_EQ(util::min_of(xs) > 0.0, true);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.exponential(0.5));
  EXPECT_NEAR(util::mean(xs), 2.0, 0.05);
  EXPECT_GT(util::min_of(xs), 0.0);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, ParetoTailAndMinimum) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.pareto(2.0, 1.5));
  EXPECT_GE(util::min_of(xs), 2.0);
  // Median of Pareto(xm, a) is xm * 2^(1/a).
  EXPECT_NEAR(util::median(xs), 2.0 * std::pow(2.0, 1.0 / 1.5), 0.1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng(12);
  std::vector<double> small, large;
  for (int i = 0; i < 50000; ++i) {
    small.push_back(static_cast<double>(rng.poisson(3.0)));
    large.push_back(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(util::mean(small), 3.0, 0.05);
  EXPECT_NEAR(util::variance(small), 3.0, 0.15);
  EXPECT_NEAR(util::mean(large), 200.0, 1.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(13);
  const std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.02);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.02);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.02);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
}

TEST(Rng, WeightedIndexIgnoresNegative) {
  Rng rng(14);
  const std::vector<double> w = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(w), 1u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ShuffleIsUniformOverPermutations) {
  Rng rng(16);
  std::map<std::vector<int>, int> counts;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    std::vector<int> v = {0, 1, 2};
    rng.shuffle(v);
    ++counts[v];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, c] : counts) EXPECT_NEAR(c, n / 6, n / 6 * 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b(17);
  b.next_u64();  // align with 'a' post-fork
  EXPECT_NE(child.next_u64(), b.next_u64());
}

TEST(Mix64, StatelessAndDispersive) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

// --- Zipf sampler properties --------------------------------------------

class ZipfProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ZipfProperty, RanksInRangeAndMonotoneFrequencies) {
  const auto [n, alpha] = GetParam();
  ZipfSampler zipf(n, alpha);
  Rng rng(99);
  std::vector<std::uint64_t> counts(n, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, n);
    ++counts[r - 1];
  }
  // Rank 1 must dominate rank 4 which must dominate rank 16 (allowing
  // sampling noise on a 200K draw).
  if (n >= 16) {
    EXPECT_GT(counts[0], counts[3]);
    EXPECT_GT(counts[3], counts[15]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfProperty,
    ::testing::Values(std::make_tuple(std::uint64_t{100}, 0.85),
                      std::make_tuple(std::uint64_t{100}, 1.0),
                      std::make_tuple(std::uint64_t{1000}, 1.2),
                      std::make_tuple(std::uint64_t{16}, 0.5),
                      std::make_tuple(std::uint64_t{2}, 1.0)));

TEST(Zipf, HeadProbabilityMatchesTheory) {
  const std::uint64_t n = 50;
  const double alpha = 1.0;
  ZipfSampler zipf(n, alpha);
  Rng rng(100);
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  int rank1 = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.sample(rng) == 1) ++rank1;
  }
  EXPECT_NEAR(static_cast<double>(rank1) / samples, 1.0 / h, 0.01);
}

TEST(RngSplit, DoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.split(7);
  (void)a.split(9);
  // Parent state untouched: both generators continue identically.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngSplit, PureFunctionOfStateAndId) {
  const Rng parent(99);
  Rng c1 = parent.split(5);
  Rng c2 = parent.split(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngSplit, DistinctIdsGiveIndependentStreams) {
  const Rng parent(1);
  Rng c0 = parent.split(0);
  Rng c1 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (c0.next_u64() == c1.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
  // Adjacent ids must not correlate in the low bits either.
  const Rng p2(1);
  for (std::uint64_t id = 0; id < 8; ++id) {
    Rng a = p2.split(id);
    Rng b = p2.split(id + 1);
    EXPECT_NE(a.next_u64(), b.next_u64());
  }
}

TEST(RngSplit, DiffersFromParentStream) {
  const Rng parent(7);
  Rng copy = parent;
  Rng child = parent.split(0);
  EXPECT_NE(copy.next_u64(), child.next_u64());
}

TEST(RngSplit, ChildUniformityIsSane) {
  // Coarse uniformity across children keyed by consecutive ids (the
  // parallel-shard pattern): bucket the first draw of 4096 children.
  const Rng parent(123);
  int buckets[16] = {0};
  const int children = 4096;
  for (int id = 0; id < children; ++id) {
    Rng child = parent.split(static_cast<std::uint64_t>(id));
    buckets[child.next_u64() >> 60] += 1;
  }
  for (int b = 0; b < 16; ++b) {
    EXPECT_GT(buckets[b], children / 16 / 2) << "bucket " << b;
    EXPECT_LT(buckets[b], children / 16 * 2) << "bucket " << b;
  }
}

TEST(Zipf, InvalidArgsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace ddos::netsim
