#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "netsim/rng.h"

namespace ddos::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, VarianceMatchesHandComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with n-1 denominator.
  EXPECT_NEAR(variance(xs), 4.571428571, 1e-9);
  EXPECT_NEAR(stddev(xs), std::sqrt(4.571428571), 1e-9);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateSeriesIsZero) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Stats, PearsonIndependentNearZero) {
  netsim::Rng rng(1);
  std::vector<double> xs, ys;
  for (int i = 0; i < 10000; ++i) {
    xs.push_back(rng.uniform());
    ys.push_back(rng.uniform());
  }
  EXPECT_LT(std::abs(pearson(xs, ys)), 0.05);
}

TEST(Stats, RanksHandleTies) {
  const std::vector<double> xs = {10.0, 20.0, 20.0, 30.0};
  const auto r = ranks(xs);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanMonotonicNonlinearIsOne) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.1 * i));  // monotone but nonlinear
  }
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
}

TEST(RunningStats, MatchesBatchStatistics) {
  netsim::Rng rng(7);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  netsim::Rng rng(9);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(-2.0, 0.5);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 1.5);
}

TEST(Ecdf, EmptySample) {
  const Ecdf ecdf(std::span<const double>{});
  EXPECT_TRUE(ecdf.empty());
  EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 0.0);
  EXPECT_TRUE(ecdf.curve(10).empty());
}

TEST(Ecdf, StepFunction) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Ecdf ecdf(xs);
  EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.at(99.0), 1.0);
}

TEST(Ecdf, QuantileInverse) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const Ecdf ecdf(xs);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.21), 20.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 10.0);
}

TEST(Ecdf, CurveIsMonotone) {
  netsim::Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal(0, 1));
  const Ecdf ecdf(xs);
  const auto curve = ecdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Ecdf, AtAndQuantileConsistent) {
  netsim::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(rng.normal(0, 5));
  const Ecdf ecdf(xs);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    EXPECT_GE(ecdf.at(ecdf.quantile(q)), q - 1e-12);
  }
}

// Property sweep: percentile is monotone in p and bounded by min/max.
class PercentileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  netsim::Rng rng(GetParam());
  std::vector<double> xs;
  const auto n = 1 + rng.uniform_u64(200);
  for (std::uint64_t i = 0; i < n; ++i) xs.push_back(rng.normal(0, 10));
  double prev = percentile(xs, 0.0);
  EXPECT_DOUBLE_EQ(prev, min_of(xs));
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double cur = percentile(xs, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, max_of(xs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ddos::util
