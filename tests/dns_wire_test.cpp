#include "dns/wire.h"

#include <gtest/gtest.h>

#include "netsim/rng.h"

namespace ddos::dns {
namespace {

TEST(WireHeader, EncodeDecodeRoundTrip) {
  WireHeader h;
  h.id = 0xBEEF;
  h.qr = true;
  h.opcode = 0;
  h.aa = true;
  h.tc = false;
  h.rd = true;
  h.ra = true;
  h.rcode = WireRcode::NxDomain;
  h.qdcount = 1;
  h.ancount = 2;
  h.nscount = 3;
  h.arcount = 4;
  std::vector<std::uint8_t> buf;
  h.encode(buf);
  ASSERT_EQ(buf.size(), WireHeader::kSize);
  const auto decoded = WireHeader::decode(buf);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->id, 0xBEEF);
  EXPECT_TRUE(decoded->qr);
  EXPECT_TRUE(decoded->aa);
  EXPECT_FALSE(decoded->tc);
  EXPECT_TRUE(decoded->rd);
  EXPECT_TRUE(decoded->ra);
  EXPECT_EQ(decoded->rcode, WireRcode::NxDomain);
  EXPECT_EQ(decoded->qdcount, 1);
  EXPECT_EQ(decoded->arcount, 4);
}

TEST(WireHeader, DecodeShortBufferFails) {
  const std::vector<std::uint8_t> buf(11, 0);
  EXPECT_FALSE(WireHeader::decode(buf));
}

TEST(WireName, EncodeBasic) {
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(encode_name(DomainName::must("mil.ru"), out));
  const std::vector<std::uint8_t> expected = {3, 'm', 'i', 'l',
                                              2, 'r', 'u', 0};
  EXPECT_EQ(out, expected);
}

TEST(WireName, EncodeDecodeRoundTrip) {
  for (const char* name :
       {"mil.ru", "www.example.com", "a.b.c.d.e.f", "xn--90adear.xn--p1ai"}) {
    std::vector<std::uint8_t> buf;
    ASSERT_TRUE(encode_name(DomainName::must(name), buf)) << name;
    std::size_t next = 0;
    const auto decoded = decode_name(buf, 0, next);
    ASSERT_TRUE(decoded) << name;
    EXPECT_EQ(decoded->str(), name);
    EXPECT_EQ(next, buf.size());
  }
}

TEST(WireName, CompressionPointerDecodes) {
  // Message: "mil.ru" at offset 0, then a name "www" + pointer to 0.
  std::vector<std::uint8_t> msg;
  encode_name(DomainName::must("mil.ru"), msg);
  const std::size_t ptr_target = 0;
  const std::size_t second = msg.size();
  msg.push_back(3);
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back(0xC0 | (ptr_target >> 8));
  msg.push_back(ptr_target & 0xFF);
  std::size_t next = 0;
  const auto decoded = decode_name(msg, second, next);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->str(), "www.mil.ru");
  EXPECT_EQ(next, msg.size());
}

TEST(WireName, RejectsPointerLoop) {
  // A pointer at offset 2 pointing to offset 0, where a pointer points
  // forward — malformed either way.
  std::vector<std::uint8_t> msg = {0xC0, 0x02, 0xC0, 0x00};
  std::size_t next = 0;
  EXPECT_FALSE(decode_name(msg, 0, next));
  EXPECT_FALSE(decode_name(msg, 2, next));
}

TEST(WireName, RejectsForwardPointer) {
  const std::vector<std::uint8_t> msg = {0xC0, 0x05, 0, 0, 0, 3, 'a', 'b',
                                         'c', 0};
  std::size_t next = 0;
  EXPECT_FALSE(decode_name(msg, 0, next));
}

TEST(WireName, RejectsTruncatedLabel) {
  const std::vector<std::uint8_t> msg = {5, 'a', 'b'};
  std::size_t next = 0;
  EXPECT_FALSE(decode_name(msg, 0, next));
}

TEST(WireName, RejectsReservedLabelTypes) {
  const std::vector<std::uint8_t> msg = {0x40, 'a', 0};
  std::size_t next = 0;
  EXPECT_FALSE(decode_name(msg, 0, next));
}

TEST(WireName, RejectsBareRoot) {
  const std::vector<std::uint8_t> msg = {0};
  std::size_t next = 0;
  EXPECT_FALSE(decode_name(msg, 0, next));
}

TEST(WireQuery, EncodeParseRoundTrip) {
  WireQuestion q;
  q.qname = DomainName::must("rzd.ru");
  q.qtype = RRType::NS;
  const auto msg = encode_query(0x1234, q, true);
  const auto parsed = parse_message(msg);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header.id, 0x1234);
  EXPECT_FALSE(parsed->header.qr);
  EXPECT_TRUE(parsed->header.rd);
  EXPECT_EQ(parsed->header.qdcount, 1);
  ASSERT_EQ(parsed->questions.size(), 1u);
  EXPECT_EQ(parsed->questions[0].qname.str(), "rzd.ru");
  EXPECT_EQ(parsed->questions[0].qtype, RRType::NS);
  EXPECT_EQ(parsed->questions[0].qclass, 1);
}

TEST(WireQuery, ParseRejectsTruncatedQuestion) {
  WireQuestion q;
  q.qname = DomainName::must("example.com");
  auto msg = encode_query(1, q);
  msg.resize(msg.size() - 2);  // chop qclass
  EXPECT_FALSE(parse_message(msg));
}

TEST(WireRcodeMapping, ToResponseStatus) {
  EXPECT_EQ(to_response_status(WireRcode::NoError), ResponseStatus::Ok);
  EXPECT_EQ(to_response_status(WireRcode::ServFail),
            ResponseStatus::ServFail);
  EXPECT_EQ(to_response_status(WireRcode::NxDomain),
            ResponseStatus::NxDomain);
  EXPECT_EQ(to_response_status(WireRcode::Refused),
            ResponseStatus::ServFail);
}

// Fuzz-ish property: decode_name never crashes or overruns on random
// bytes, and when it succeeds the result is a valid DomainName.
class WireNameFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireNameFuzz, DecodeIsTotalOnRandomBytes) {
  netsim::Rng rng(GetParam());
  for (int i = 0; i < 20000; ++i) {
    const std::size_t len = 1 + rng.uniform_u64(64);
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    std::size_t next = 0;
    const auto decoded =
        decode_name(msg, rng.uniform_u64(len), next);
    if (decoded) {
      EXPECT_FALSE(decoded->empty());
      EXPECT_LE(next, msg.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireNameFuzz, ::testing::Values(1, 2, 3, 4));

TEST(WireQuery, ParseIsTotalOnRandomBytes) {
  netsim::Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t len = rng.uniform_u64(80);
    std::vector<std::uint8_t> msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)parse_message(msg);  // must not crash / sanitise trips
  }
}

}  // namespace
}  // namespace ddos::dns
