#include <gtest/gtest.h>

#include "netsim/rng.h"
#include "topology/as_registry.h"
#include "topology/prefix_table.h"

namespace ddos::topology {
namespace {

using netsim::IPv4Addr;
using netsim::Prefix;

TEST(AsRegistry, AddAndLookup) {
  AsRegistry reg;
  EXPECT_TRUE(reg.add(AsInfo{15169, "Google", "US"}));
  EXPECT_TRUE(reg.contains(15169));
  const auto info = reg.lookup(15169);
  ASSERT_TRUE(info);
  EXPECT_EQ(info->org, "Google");
  EXPECT_EQ(reg.org_of(15169), "Google");
  EXPECT_EQ(reg.country_of(15169), "US");
}

TEST(AsRegistry, UnknownLookups) {
  const AsRegistry reg;
  EXPECT_FALSE(reg.lookup(1));
  EXPECT_EQ(reg.org_of(1), "");
  EXPECT_EQ(reg.country_of(1), "");
  EXPECT_FALSE(reg.contains(1));
}

TEST(AsRegistry, UpdateReportsConflict) {
  AsRegistry reg;
  reg.add(AsInfo{100, "OrgA", "NL"});
  EXPECT_FALSE(reg.add(AsInfo{100, "OrgB", "NL"}));  // conflict flagged
  EXPECT_EQ(reg.org_of(100), "OrgB");                // but applied
  EXPECT_TRUE(reg.add(AsInfo{100, "OrgB", "DE"}));   // same org: no conflict
}

TEST(AsRegistry, AsnsOfOrg) {
  AsRegistry reg;
  reg.add(AsInfo{1, "Multi", "US"});
  reg.add(AsInfo{2, "Multi", "US"});
  reg.add(AsInfo{3, "Other", "US"});
  auto asns = reg.asns_of_org("Multi");
  std::sort(asns.begin(), asns.end());
  EXPECT_EQ(asns, (std::vector<Asn>{1, 2}));
}

TEST(PrefixTable, EmptyLookupIsNull) {
  PrefixTable table;
  EXPECT_FALSE(table.lookup(IPv4Addr(1, 2, 3, 4)));
  EXPECT_EQ(table.origin_of(IPv4Addr(1, 2, 3, 4)), 0u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(PrefixTable, BasicAnnounceLookup) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 8), 65001);
  EXPECT_EQ(table.origin_of(IPv4Addr(10, 9, 8, 7)), 65001u);
  EXPECT_EQ(table.origin_of(IPv4Addr(11, 0, 0, 1)), 0u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, LongestPrefixWins) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 8), 1);
  table.announce(Prefix(IPv4Addr(10, 1, 0, 0), 16), 2);
  table.announce(Prefix(IPv4Addr(10, 1, 2, 0), 24), 3);
  EXPECT_EQ(table.origin_of(IPv4Addr(10, 1, 2, 3)), 3u);
  EXPECT_EQ(table.origin_of(IPv4Addr(10, 1, 9, 9)), 2u);
  EXPECT_EQ(table.origin_of(IPv4Addr(10, 9, 9, 9)), 1u);
  const auto entry = table.lookup(IPv4Addr(10, 1, 2, 3));
  ASSERT_TRUE(entry);
  EXPECT_EQ(entry->prefix.to_string(), "10.1.2.0/24");
}

TEST(PrefixTable, ReannounceReplacesOrigin) {
  PrefixTable table;
  const Prefix p(IPv4Addr(192, 0, 2, 0), 24);
  table.announce(p, 1);
  table.announce(p, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.origin_of(IPv4Addr(192, 0, 2, 55)), 2u);
}

TEST(PrefixTable, WithdrawRestoresCoveringRoute) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 8), 1);
  table.announce(Prefix(IPv4Addr(10, 1, 0, 0), 16), 2);
  EXPECT_TRUE(table.withdraw(Prefix(IPv4Addr(10, 1, 0, 0), 16)));
  EXPECT_EQ(table.origin_of(IPv4Addr(10, 1, 2, 3)), 1u);
  EXPECT_FALSE(table.withdraw(Prefix(IPv4Addr(10, 1, 0, 0), 16)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, ExactMatch) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 8), 7);
  EXPECT_EQ(table.exact(Prefix(IPv4Addr(10, 0, 0, 0), 8)), 7u);
  EXPECT_FALSE(table.exact(Prefix(IPv4Addr(10, 0, 0, 0), 9)));
  EXPECT_FALSE(table.exact(Prefix(IPv4Addr(11, 0, 0, 0), 8)));
}

TEST(PrefixTable, DefaultRouteMatchesEverything) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(0), 0), 99);
  EXPECT_EQ(table.origin_of(IPv4Addr(1, 2, 3, 4)), 99u);
  EXPECT_EQ(table.origin_of(IPv4Addr(255, 255, 255, 255)), 99u);
}

TEST(PrefixTable, HostRoutes) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(8, 8, 8, 8), 32), 15169);
  EXPECT_EQ(table.origin_of(IPv4Addr(8, 8, 8, 8)), 15169u);
  EXPECT_EQ(table.origin_of(IPv4Addr(8, 8, 8, 9)), 0u);
}

TEST(PrefixTable, EntriesEnumeratesSorted) {
  PrefixTable table;
  table.announce(Prefix(IPv4Addr(20, 0, 0, 0), 8), 2);
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 8), 1);
  table.announce(Prefix(IPv4Addr(10, 0, 0, 0), 16), 3);
  const auto entries = table.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].prefix.to_string(), "10.0.0.0/8");
  EXPECT_EQ(entries[1].prefix.to_string(), "10.0.0.0/16");
  EXPECT_EQ(entries[2].prefix.to_string(), "20.0.0.0/8");
}

// Property: LPM result equals brute-force over announced entries.
class LpmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpmProperty, MatchesBruteForce) {
  netsim::Rng rng(GetParam());
  PrefixTable table;
  std::vector<RouteEntry> announced;
  for (int i = 0; i < 200; ++i) {
    const IPv4Addr addr(static_cast<std::uint32_t>(rng.next_u64()));
    const int len = static_cast<int>(8 + rng.uniform_u64(17));  // 8..24
    const Prefix p(addr, len);
    const Asn asn = static_cast<Asn>(1 + rng.uniform_u64(1000));
    table.announce(p, asn);
    // Mirror replacement semantics in the brute-force list.
    bool replaced = false;
    for (auto& e : announced) {
      if (e.prefix == p) {
        e.origin = asn;
        replaced = true;
      }
    }
    if (!replaced) announced.push_back(RouteEntry{p, asn});
  }
  for (int i = 0; i < 2000; ++i) {
    const IPv4Addr q(static_cast<std::uint32_t>(rng.next_u64()));
    const RouteEntry* best = nullptr;
    for (const auto& e : announced) {
      if (e.prefix.contains(q) &&
          (!best || e.prefix.length() > best->prefix.length())) {
        best = &e;
      }
    }
    const auto got = table.lookup(q);
    if (!best) {
      EXPECT_FALSE(got);
    } else {
      ASSERT_TRUE(got);
      EXPECT_EQ(got->origin, best->origin);
      EXPECT_EQ(got->prefix.length(), best->prefix.length());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpmProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ddos::topology
