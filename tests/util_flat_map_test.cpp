// FlatMap / FlatSet / radix-sort coverage: probe-chain mechanics
// (backward-shift erase under forced collisions), growth rehash, snapshot
// determinism across insertion orders, and a randomized differential
// against std::unordered_map — the reference semantics the flat tables
// replace on the hot paths.
#include "util/flat_map.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "util/radix.h"

namespace ddos::util {
namespace {

TEST(FlatMap, InsertFindEraseRoundTrip) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(7u), nullptr);
  EXPECT_FALSE(map.erase(7u));

  auto [slot, inserted] = map.try_emplace(7u, 70);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*slot, 70);
  auto [again, inserted_again] = map.try_emplace(7u, 99);
  EXPECT_FALSE(inserted_again);
  EXPECT_EQ(*again, 70);  // try_emplace does not overwrite

  map[8u] = 80;
  map.insert_or_assign(9u, 90);
  map.insert_or_assign(9u, 91);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.find(8u), 80);
  EXPECT_EQ(*map.find(9u), 91);
  EXPECT_TRUE(map.contains(7u));

  EXPECT_TRUE(map.erase(8u));
  EXPECT_FALSE(map.contains(8u));
  EXPECT_EQ(map.size(), 2u);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(7u));
}

// Degenerate hash: every key lands in slot 0, so all entries form one
// probe chain and erase exercises the backward-shift logic maximally.
struct CollidingHash {
  std::uint64_t operator()(const std::uint64_t&) const { return 0; }
};

TEST(FlatMap, BackwardShiftEraseUnderCollisionChain) {
  FlatMap<std::uint64_t, int, CollidingHash> map;
  for (std::uint64_t k = 0; k < 10; ++k) map[k] = static_cast<int>(k * 10);

  // Erase from the middle of the chain: everything behind must stay
  // reachable (a tombstone-free scheme has to shift the tail back).
  EXPECT_TRUE(map.erase(4u));
  for (std::uint64_t k = 0; k < 10; ++k) {
    if (k == 4) {
      EXPECT_FALSE(map.contains(k));
    } else {
      ASSERT_NE(map.find(k), nullptr) << "lost key " << k;
      EXPECT_EQ(*map.find(k), static_cast<int>(k * 10));
    }
  }
  // Erase the chain head, then the tail, re-checking the survivors.
  EXPECT_TRUE(map.erase(0u));
  EXPECT_TRUE(map.erase(9u));
  for (const std::uint64_t k : {1u, 2u, 3u, 5u, 6u, 7u, 8u}) {
    ASSERT_NE(map.find(k), nullptr) << "lost key " << k;
  }
  EXPECT_EQ(map.size(), 7u);
}

TEST(FlatMap, GrowthRehashKeepsAllEntries) {
  FlatMap<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kN = 10000;  // forces many doublings from 16
  for (std::uint64_t k = 0; k < kN; ++k) map[k * 977] = k;
  EXPECT_EQ(map.size(), kN);
  EXPECT_GE(map.capacity() * 3, map.size() * 4);  // load factor <= 3/4
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_NE(map.find(k * 977), nullptr);
    EXPECT_EQ(*map.find(k * 977), k);
  }
}

TEST(FlatMap, ReservePreventsRehash) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap * 3, std::size_t{1000} * 4 - 3);
  int* slot = map.try_emplace(1u, 1).first;
  for (std::uint64_t k = 2; k <= 1000; ++k) map.try_emplace(k);
  EXPECT_EQ(map.capacity(), cap);  // no growth within the reservation
  EXPECT_EQ(*slot, 1);             // original slot pointer still valid
}

TEST(FlatMap, SortedItemsDeterministicAcrossInsertionOrders) {
  std::vector<std::uint64_t> keys;
  netsim::Rng rng(42);
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next_u64());

  FlatMap<std::uint64_t, std::uint64_t> forward;
  for (const auto k : keys) forward[k] = k ^ 1;
  FlatMap<std::uint64_t, std::uint64_t> backward;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) backward[*it] = *it ^ 1;
  // A third order with churn: insert everything twice as much, erase half,
  // re-insert — contents end equal, history very different.
  FlatMap<std::uint64_t, std::uint64_t> churned;
  for (const auto k : keys) churned[k] = 0;
  for (std::size_t i = 0; i < keys.size(); i += 2) churned.erase(keys[i]);
  for (const auto k : keys) churned[k] = k ^ 1;

  const auto a = forward.sorted_items();
  const auto b = backward.sorted_items();
  const auto c = churned.sorted_items();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const auto& x, const auto& y) {
                               return x.first < y.first;
                             }));
}

TEST(FlatMap, RandomizedDifferentialAgainstUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  netsim::Rng rng(7);
  for (int op = 0; op < 200000; ++op) {
    // Small key universe so inserts, hits, misses and erases all happen
    // frequently and probe chains overlap heavily.
    const std::uint64_t key = rng.uniform_u64(512);
    switch (rng.uniform_u64(4)) {
      case 0: {  // try_emplace
        const std::uint64_t v = rng.next_u64();
        const auto [slot, inserted] = flat.try_emplace(key, v);
        const auto [it, ref_inserted] = ref.try_emplace(key, v);
        ASSERT_EQ(inserted, ref_inserted);
        ASSERT_EQ(*slot, it->second);
        break;
      }
      case 1: {  // insert_or_assign
        const std::uint64_t v = rng.next_u64();
        flat.insert_or_assign(key, v);
        ref[key] = v;
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // find
        const std::uint64_t* v = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content equivalence at the end.
  const auto items = flat.sorted_items();
  ASSERT_EQ(items.size(), ref.size());
  for (const auto& [k, v] : items) {
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    ASSERT_EQ(v, it->second);
  }
}

TEST(FlatMap, EraseIfPrunesExactlyMatches) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = static_cast<int>(k);
  const std::size_t erased =
      map.erase_if([](std::uint64_t k, int) { return k % 3 == 0; });
  EXPECT_EQ(erased, 334u);
  EXPECT_EQ(map.size(), 666u);
  for (std::uint64_t k = 0; k < 1000; ++k)
    EXPECT_EQ(map.contains(k), k % 3 != 0);
}

TEST(FlatMap, IPv4KeysUseValueHash) {
  FlatMap<netsim::IPv4Addr, int> map;
  map[netsim::IPv4Addr(10, 0, 0, 1)] = 1;
  map[netsim::IPv4Addr(10, 0, 0, 2)] = 2;
  EXPECT_EQ(*map.find(netsim::IPv4Addr(10, 0, 0, 1)), 1);
  EXPECT_FALSE(map.contains(netsim::IPv4Addr(10, 0, 0, 3)));
}

TEST(FlatSet, BasicsAndSortedKeys) {
  FlatSet<std::uint64_t> set;
  EXPECT_TRUE(set.insert(5u));
  EXPECT_FALSE(set.insert(5u));  // duplicate
  EXPECT_TRUE(set.insert(3u));
  EXPECT_TRUE(set.insert(9u));
  EXPECT_TRUE(set.contains(3u));
  EXPECT_FALSE(set.contains(4u));
  EXPECT_TRUE(set.erase(3u));
  EXPECT_FALSE(set.erase(3u));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.sorted_keys(), (std::vector<std::uint64_t>{5u, 9u}));
}

TEST(RadixSort, SortsAndIsStable) {
  // Pairs with duplicated keys; payloads record arrival order, so
  // stability is observable.
  std::vector<KeyedIndex> v;
  netsim::Rng rng(11);
  for (std::uint32_t i = 0; i < 5000; ++i)
    v.emplace_back(rng.uniform_u64(64) << 40 | rng.uniform_u64(256), i);
  std::vector<KeyedIndex> expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const KeyedIndex& a, const KeyedIndex& b) {
                     return a.first < b.first;
                   });
  std::vector<KeyedIndex> tmp;
  radix_sort_keyed(v, tmp);
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, SmallInputsAndConstantKeys) {
  std::vector<KeyedIndex> tmp;

  std::vector<KeyedIndex> empty;
  radix_sort_keyed(empty, tmp);
  EXPECT_TRUE(empty.empty());

  std::vector<KeyedIndex> one{{42, 0}};
  radix_sort_keyed(one, tmp);
  EXPECT_EQ(one.size(), 1u);

  // All keys equal: every byte plane is constant, nothing moves, payload
  // order must survive.
  std::vector<KeyedIndex> same;
  for (std::uint32_t i = 0; i < 100; ++i) same.emplace_back(7u, i);
  radix_sort_keyed(same, tmp);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(same[i].second, i);

  // Below the comparison-sort cutoff (n < 64) with varying keys.
  std::vector<KeyedIndex> small;
  for (std::uint32_t i = 0; i < 40; ++i)
    small.emplace_back(40 - i, i);
  radix_sort_keyed(small, tmp);
  EXPECT_TRUE(std::is_sorted(small.begin(), small.end(),
                             [](const KeyedIndex& a, const KeyedIndex& b) {
                               return a.first < b.first;
                             }));
}

TEST(RadixSort, FullWidthKeysMatchStdSort) {
  std::vector<KeyedIndex> v;
  netsim::Rng rng(13);
  for (std::uint32_t i = 0; i < 10000; ++i) v.emplace_back(rng.next_u64(), i);
  std::vector<KeyedIndex> expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<KeyedIndex> tmp;
  radix_sort_keyed(v, tmp);
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace ddos::util
