// Ring-buffer time series + telemetry sampler: wraparound semantics,
// counter-rate correctness against hand-computed deltas, JSONL stream
// shape, and sample-while-mutate safety (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/sampler.h"
#include "obs/timeseries.h"

namespace ddos::obs {
namespace {

TEST(TimeSeries, RingWraparoundKeepsNewestCapacityPoints) {
  TimeSeries series(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    series.push(i * 100, static_cast<double>(i));
  }
  EXPECT_EQ(series.capacity(), 4u);
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total_pushed(), 10u);
  // Pushes 0..9 into 4 slots retain 6,7,8,9 oldest-first.
  const auto points = series.points();
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].value, static_cast<double>(6 + i));
    EXPECT_EQ(points[i].t_ns, (6 + i) * 100);
  }
  EXPECT_EQ(series.at(0).value, 6.0);
  EXPECT_EQ(series.back().value, 9.0);
  EXPECT_EQ(series.min_value(), 6.0);
  EXPECT_EQ(series.max_value(), 9.0);

  const auto tail2 = series.tail(2);
  ASSERT_EQ(tail2.size(), 2u);
  EXPECT_EQ(tail2[0].value, 8.0);
  EXPECT_EQ(tail2[1].value, 9.0);
  EXPECT_EQ(series.tail(100).size(), 4u);
}

TEST(TimeSeries, BeforeWrapBehavesLikeVector) {
  TimeSeries series(8, SeriesKind::Rate);
  EXPECT_EQ(series.kind(), SeriesKind::Rate);
  series.push(1, 5.0);
  series.push(2, -3.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.total_pushed(), 2u);
  EXPECT_EQ(series.at(0).value, 5.0);
  EXPECT_EQ(series.back().value, -3.0);
  EXPECT_EQ(series.min_value(), -3.0);
  EXPECT_EQ(series.max_value(), 5.0);
}

TEST(TimeSeriesSet, CreatesSeriesOnFirstTouchWithMemoryBound) {
  TimeSeriesSet set(8);
  set.push("b.level", SeriesKind::Level, 1, 1.0);
  set.push("a.rate", SeriesKind::Rate, 1, 2.0);
  set.push("c.level", SeriesKind::Level, 1, 3.0);
  set.push("b.level", SeriesKind::Level, 2, 4.0);
  EXPECT_EQ(set.series_count(), 3u);
  EXPECT_EQ(set.capacity_per_series(), 8u);
  // The documented bound: series x capacity x 16 bytes per point.
  EXPECT_EQ(set.memory_bound_bytes(), 3u * 8u * 16u);

  const auto snapshot = set.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.rate");
  EXPECT_EQ(snapshot[0].kind, SeriesKind::Rate);
  EXPECT_EQ(snapshot[1].name, "b.level");
  ASSERT_EQ(snapshot[1].points.size(), 2u);
  EXPECT_EQ(snapshot[1].points[1].value, 4.0);
  EXPECT_EQ(snapshot[2].name, "c.level");

  const auto tails = set.snapshot_tails(1);
  ASSERT_EQ(tails.size(), 3u);
  ASSERT_EQ(tails[1].points.size(), 1u);
  EXPECT_EQ(tails[1].points[0].value, 4.0);
}

TEST(Sampler, CounterRateMatchesHandComputedDeltas) {
  Observer observer;
  SamplerOptions options;
  options.sample_process = false;
  TelemetrySampler sampler(observer, options);

  observer.pipeline.resolver_queries.inc(5);
  sampler.sample_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  observer.pipeline.resolver_queries.inc(10);
  sampler.sample_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  observer.pipeline.resolver_queries.inc(2);
  sampler.sample_now();
  EXPECT_EQ(sampler.samples_taken(), 3u);

  const auto snapshot = sampler.series().snapshot();
  const TimeSeriesSet::NamedSeries* level = nullptr;
  const TimeSeriesSet::NamedSeries* rate = nullptr;
  for (const auto& s : snapshot) {
    if (s.name == "resolver.queries") level = &s;
    if (s.name == "resolver.queries.rate") rate = &s;
  }
  ASSERT_NE(level, nullptr);
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(level->points.size(), 3u);
  EXPECT_EQ(level->points[0].value, 5.0);
  EXPECT_EQ(level->points[1].value, 15.0);
  EXPECT_EQ(level->points[2].value, 17.0);

  // Rate point i is derived from level points i and i+1: the value delta
  // over the elapsed seconds between those samples. Recompute from the
  // level series' own timestamps and demand a match.
  ASSERT_EQ(rate->points.size(), 2u);
  for (std::size_t i = 0; i < rate->points.size(); ++i) {
    const auto& prev = level->points[i];
    const auto& next = level->points[i + 1];
    ASSERT_GT(next.t_ns, prev.t_ns);
    const double dt_s = static_cast<double>(next.t_ns - prev.t_ns) / 1e9;
    EXPECT_DOUBLE_EQ(rate->points[i].value,
                     (next.value - prev.value) / dt_s);
    EXPECT_EQ(rate->points[i].t_ns, next.t_ns);
  }
}

TEST(Sampler, ProgressSourcesBecomeSeries) {
  Observer observer;
  SamplerOptions options;
  options.sample_process = false;
  TelemetrySampler sampler(observer, options);

  std::atomic<std::uint64_t> items{7};
  const ScopedProgressSource source(
      &observer.progress_sources(), "test.items",
      [&] { return items.load(std::memory_order_relaxed); });
  sampler.sample_now();
  items.store(11);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  sampler.sample_now();

  bool level_seen = false;
  bool rate_seen = false;
  for (const auto& s : sampler.series().snapshot()) {
    if (s.name == "progress.test.items") {
      level_seen = true;
      ASSERT_EQ(s.points.size(), 2u);
      EXPECT_EQ(s.points[0].value, 7.0);
      EXPECT_EQ(s.points[1].value, 11.0);
    }
    if (s.name == "progress.test.items.rate") rate_seen = true;
  }
  EXPECT_TRUE(level_seen);
  EXPECT_TRUE(rate_seen);
}

TEST(Sampler, JsonlStreamOneObjectPerSample) {
  const std::string path = ::testing::TempDir() + "sampler_test.jsonl";
  Observer observer;
  SamplerOptions options;
  options.sample_process = false;
  options.jsonl_path = path;
  {
    TelemetrySampler sampler(observer, options);
    observer.pipeline.cache_hits.inc(3);
    sampler.sample_now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    observer.pipeline.cache_hits.inc(4);
    sampler.stop();  // takes the final sample and flushes
    EXPECT_EQ(sampler.samples_taken(), 2u);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  double prev_t = -1.0;
  for (const auto& l : lines) {
    ASSERT_EQ(l.rfind("{\"t_ms\":", 0), 0u) << l;
    EXPECT_NE(l.find("\"values\":{"), std::string::npos);
    EXPECT_NE(l.find("\"cache.hits\":"), std::string::npos);
    EXPECT_EQ(l.back(), '}');
    const double t = std::stod(l.substr(8));
    EXPECT_GT(t, prev_t);
    prev_t = t;
  }
  EXPECT_NE(lines[1].find("\"cache.hits\":7"), std::string::npos);
  std::remove(path.c_str());
}

// TSan target: the sampler thread snapshots while pipeline counters,
// gauges, and a progress source mutate from another thread.
TEST(Sampler, ConcurrentSampleWhileMutate) {
  Observer observer;
  SamplerOptions options;
  options.interval_ms = 1;
  options.sample_process = false;
  TelemetrySampler sampler(observer, options);

  std::atomic<std::uint64_t> items{0};
  const ScopedProgressSource source(
      &observer.progress_sources(), "mutate.items",
      [&] { return items.load(std::memory_order_relaxed); });

  sampler.start();
  std::thread mutator([&] {
    for (int i = 0; i < 20000; ++i) {
      observer.pipeline.server_queries.inc();
      observer.pipeline.stream_watermark_day.set(i);
      observer.pipeline.sweep_rtt_ms.observe(static_cast<double>(i % 100));
      items.fetch_add(1, std::memory_order_relaxed);
      if (i % 4096 == 0) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
    }
  });
  mutator.join();
  sampler.stop();

  ASSERT_GE(sampler.samples_taken(), 2u);
  // Counter levels must be non-decreasing in sample order even though the
  // samples raced the increments.
  for (const auto& s : sampler.series().snapshot()) {
    if (s.name != "server.queries" && s.name != "progress.mutate.items") {
      continue;
    }
    double prev = -1.0;
    for (const auto& p : s.points) {
      EXPECT_GE(p.value, prev) << s.name;
      prev = p.value;
    }
    EXPECT_EQ(s.points.back().value, 20000.0) << s.name;
  }
}

}  // namespace
}  // namespace ddos::obs
