#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.h"
#include "obs/report.h"

namespace ddos::obs {
namespace {

TEST(ScopedSpan, RecordsNameDurationAndItems) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "stage.sweep");
    span.set_items(100);
    span.add_items(25);
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "stage.sweep");
  EXPECT_EQ(events[0].items, 125u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_GT(events[0].duration_ns, 0u);
  EXPECT_GT(events[0].items_per_sec(), 0.0);
}

TEST(ScopedSpan, NestingDepths) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan mid(&tracer, "mid");
      { ScopedSpan inner(&tracer, "inner"); }
    }
    { ScopedSpan sibling(&tracer, "sibling"); }
  }
  const auto events = tracer.events();  // completion order
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].depth, 1u);
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].depth, 0u);
  // Children are contained in the parent's [start, start+dur] interval —
  // what chrome://tracing uses to reconstruct the hierarchy.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].duration_ns,
            events[3].start_ns + events[3].duration_ns);
}

TEST(ScopedSpan, NullTracerIsNoOp) {
  ScopedSpan span(nullptr, "disabled");
  EXPECT_FALSE(span.enabled());
  span.set_items(5);
  span.arg("k", "v");
  EXPECT_EQ(span.elapsed_ns(), 0u);
  // Destruction records nothing and must not crash.
}

TEST(ScopedSpan, DepthResetAfterDisabledSpans) {
  // Disabled spans must not leak nesting depth into later enabled ones.
  { ScopedSpan off(nullptr, "off"); }
  Tracer tracer;
  { ScopedSpan on(&tracer, "on"); }
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].depth, 0u);
}

TEST(Tracer, ThreadedSpansKeepThreadIds) {
  Tracer tracer;
  std::thread worker([&] { ScopedSpan span(&tracer, "worker"); });
  worker.join();
  { ScopedSpan span(&tracer, "main"); }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
  // Both threads start their own hierarchy at depth 0.
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 0u);
}

TEST(Tracer, ChromeJsonShape) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, "sweep \"day\"");
    span.set_items(7);
    span.arg("day", static_cast<std::int64_t>(123));
  }
  const std::string json = tracer.chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"items\":7"), std::string::npos);
  EXPECT_NE(json.find("\"day\":\"123\""), std::string::npos);
  // Quotes in span names must be escaped.
  EXPECT_NE(json.find("sweep \\\"day\\\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST(RunReport, JsonContainsConfigResultsStagesAndMetrics) {
  Observer obs;
  obs.pipeline.sweep_measurements.inc(321);
  {
    ScopedSpan root(&obs.tracer(), "run_longitudinal");
    {
      ScopedSpan stage(&obs.tracer(), "sweep");
      stage.set_items(321);
      // Depth-2 spans are trace-only detail, not report stages.
      ScopedSpan day(&obs.tracer(), "sweep.day");
    }
  }
  RunReport report("run");
  report.add_config("seed", static_cast<std::int64_t>(42));
  report.add_config("scale", 30.0);
  report.add_config("preset", "small");
  report.add_result("joined", static_cast<std::int64_t>(12));

  const std::string json = report.to_json(obs);
  EXPECT_EQ(json.find("{\"tool\":\"ddosrepro\",\"command\":\"run\""), 0u);
  EXPECT_NE(json.find("\"config\":{\"seed\":42,\"scale\":30,\"preset\":\"small\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"results\":{\"joined\":12}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"run_longitudinal\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sweep\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\":\"sweep.day\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":321"), std::string::npos);
  EXPECT_NE(json.find("\"items_per_sec\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sweep.measurements\""), std::string::npos);
}

}  // namespace
}  // namespace ddos::obs
