#include "dns/load_model.h"

#include <gtest/gtest.h>

namespace ddos::dns {
namespace {

TEST(LoadModel, IdleServerHasNoInflation) {
  const LoadModelParams params;
  EXPECT_DOUBLE_EQ(rtt_multiplier(0.0, params), 1.0);
  EXPECT_DOUBLE_EQ(rtt_multiplier(-1.0, params), 1.0);
}

TEST(LoadModel, ModerateLoadSmallInflation) {
  const LoadModelParams params;
  EXPECT_LT(rtt_multiplier(0.5, params), 1.5);
  EXPECT_GT(rtt_multiplier(0.5, params), 1.0);
}

TEST(LoadModel, NearSaturationExplodes) {
  const LoadModelParams params;
  // The paper's 10x and 100x regimes live close to saturation.
  EXPECT_GT(rtt_multiplier(0.97, params), 10.0);
  EXPECT_GT(rtt_multiplier(0.999, params), 100.0);
}

TEST(LoadModel, SaturationCapped) {
  const LoadModelParams params;
  EXPECT_DOUBLE_EQ(rtt_multiplier(1.0, params), params.max_inflation);
  EXPECT_DOUBLE_EQ(rtt_multiplier(50.0, params), params.max_inflation);
}

TEST(LoadModel, LinearLawNeverExplodes) {
  const LoadModelParams params;
  // The ablation comparator: even at 100x overload, latency grows mildly —
  // which is why it cannot reproduce the paper's impact tail.
  EXPECT_LT(rtt_multiplier(0.999, params, InflationLaw::Linear), 2.0);
  EXPECT_LT(rtt_multiplier(100.0, params, InflationLaw::Linear),
            params.max_inflation + 1.0);
}

TEST(LoadModel, ResponseProbabilityRegimes) {
  const LoadModelParams params;  // loss_onset = 0.90
  EXPECT_DOUBLE_EQ(response_probability(0.0, params), 1.0);
  EXPECT_DOUBLE_EQ(response_probability(0.90, params), 1.0);
  EXPECT_NEAR(response_probability(0.95, params), 0.975, 1e-12);
  EXPECT_NEAR(response_probability(1.0, params), 0.95, 1e-12);
  EXPECT_NEAR(response_probability(2.0, params), 0.475, 1e-12);
  EXPECT_NEAR(response_probability(10.0, params), 0.095, 1e-12);
}

TEST(LoadModel, ResponseProbabilityContinuousAtSaturation) {
  const LoadModelParams params;
  const double left = response_probability(1.0 - 1e-9, params);
  const double right = response_probability(1.0 + 1e-9, params);
  EXPECT_NEAR(left, right, 1e-6);
}

TEST(LoadModel, Utilisation) {
  EXPECT_DOUBLE_EQ(utilisation(50e3, 10e3, 120e3), 0.5);
  EXPECT_DOUBLE_EQ(utilisation(0.0, 0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(utilisation(-5.0, -5.0, 100.0), 0.0);  // guards negatives
  EXPECT_GT(utilisation(1.0, 0.0, 0.0), 1e6);  // zero capacity saturates
  EXPECT_DOUBLE_EQ(utilisation(0.0, 0.0, 0.0), 0.0);
}

// Property sweep: the multiplier is monotone non-decreasing in rho and
// bounded by [1, max_inflation]; response probability is non-increasing.
class LoadModelMonotone : public ::testing::TestWithParam<double> {};

TEST_P(LoadModelMonotone, MultiplierMonotoneBounded) {
  LoadModelParams params;
  params.kappa = GetParam();
  double prev_mult = 0.0;
  double prev_p = 2.0;
  for (double rho = 0.0; rho <= 3.0; rho += 0.01) {
    const double mult = rtt_multiplier(rho, params);
    const double p = response_probability(rho, params);
    EXPECT_GE(mult, 1.0);
    EXPECT_LE(mult, params.max_inflation);
    EXPECT_GE(mult, prev_mult - 1e-12);
    EXPECT_LE(p, prev_p + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev_mult = mult;
    prev_p = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Kappas, LoadModelMonotone,
                         ::testing::Values(0.1, 0.35, 1.0, 2.0));

}  // namespace
}  // namespace ddos::dns
