#include "anycast/census.h"

#include <gtest/gtest.h>

namespace ddos::anycast {
namespace {

using netsim::IPv4Addr;

CensusSnapshot snap(netsim::DayIndex day,
                    std::vector<IPv4Addr> nets) {
  CensusSnapshot s;
  s.taken_day = day;
  for (const auto& n : nets) s.anycast_slash24.insert(n.slash24());
  return s;
}

TEST(Census, EmptyCensusNeverMatches) {
  const AnycastCensus census;
  EXPECT_FALSE(census.is_anycast(IPv4Addr(1, 2, 3, 4), 100));
  EXPECT_EQ(census.classify({IPv4Addr(1, 2, 3, 4)}, 100), AnycastClass::None);
}

TEST(Census, Slash24Matching) {
  AnycastCensus census;
  census.add_snapshot(snap(0, {IPv4Addr(10, 0, 0, 0)}));
  EXPECT_TRUE(census.is_anycast(IPv4Addr(10, 0, 0, 99), 10));
  EXPECT_FALSE(census.is_anycast(IPv4Addr(10, 0, 1, 99), 10));
}

TEST(Census, SnapshotSelectionByDay) {
  AnycastCensus census;
  census.add_snapshot(snap(100, {IPv4Addr(10, 0, 0, 0)}));
  census.add_snapshot(snap(200, {IPv4Addr(20, 0, 0, 0)}));
  // Days before all snapshots use the earliest (paper: Nov-Dec 2020 use
  // the January 2021 census).
  EXPECT_TRUE(census.is_anycast(IPv4Addr(10, 0, 0, 1), 50));
  EXPECT_FALSE(census.is_anycast(IPv4Addr(20, 0, 0, 1), 50));
  // Between snapshots: latest at-or-before.
  EXPECT_TRUE(census.is_anycast(IPv4Addr(10, 0, 0, 1), 150));
  EXPECT_FALSE(census.is_anycast(IPv4Addr(20, 0, 0, 1), 150));
  // After the second snapshot: only the new /24 is flagged.
  EXPECT_FALSE(census.is_anycast(IPv4Addr(10, 0, 0, 1), 250));
  EXPECT_TRUE(census.is_anycast(IPv4Addr(20, 0, 0, 1), 250));
  EXPECT_EQ(census.snapshot_count(), 2u);
}

TEST(Census, ClassifyBands) {
  AnycastCensus census;
  census.add_snapshot(snap(0, {IPv4Addr(10, 0, 0, 0), IPv4Addr(10, 0, 1, 0)}));
  const IPv4Addr any1(10, 0, 0, 5), any2(10, 0, 1, 5), uni(99, 0, 0, 5);
  EXPECT_EQ(census.classify({any1, any2}, 10), AnycastClass::Full);
  EXPECT_EQ(census.classify({any1, uni}, 10), AnycastClass::Partial);
  EXPECT_EQ(census.classify({uni}, 10), AnycastClass::None);
  EXPECT_EQ(census.classify({}, 10), AnycastClass::None);
}

TEST(Census, ToStringLabels) {
  EXPECT_STREQ(to_string(AnycastClass::None), "unicast");
  EXPECT_STREQ(to_string(AnycastClass::Partial), "partial-anycast");
  EXPECT_STREQ(to_string(AnycastClass::Full), "anycast");
}

TEST(Census, PaperCadence) {
  const auto days = paper_census_days();
  ASSERT_EQ(days.size(), 5u);  // Jan/Apr/Jul/Oct 2021 + Jan 2022
  EXPECT_EQ(days.front(), netsim::month_start_day(2021, 1));
  EXPECT_EQ(days.back(), netsim::month_start_day(2022, 1));
  for (std::size_t i = 1; i < days.size(); ++i)
    EXPECT_GT(days[i], days[i - 1]);
}

TEST(Census, FromRegistryDetectsAnycastOnly) {
  dns::DnsRegistry registry;
  dns::Nameserver any(IPv4Addr(10, 0, 0, 1),
                      {dns::Site{"a", 1e5, 20.0, 1.0},
                       dns::Site{"b", 1e5, 20.0, 1.0}});
  dns::Nameserver uni(IPv4Addr(20, 0, 0, 1), {dns::Site{"a", 1e5, 20.0, 1.0}});
  registry.add_nameserver(std::move(any));
  registry.add_nameserver(std::move(uni));
  registry.add_domain(dns::DomainName::must("x.com"),
                      {IPv4Addr(10, 0, 0, 1), IPv4Addr(20, 0, 0, 1)});

  const auto census =
      AnycastCensus::from_registry(registry, {0}, /*recall=*/1.0, 7);
  EXPECT_TRUE(census.is_anycast(IPv4Addr(10, 0, 0, 1), 0));
  EXPECT_FALSE(census.is_anycast(IPv4Addr(20, 0, 0, 1), 0));
}

TEST(Census, RecallIsLowerBound) {
  dns::DnsRegistry registry;
  std::vector<IPv4Addr> ips;
  for (int i = 0; i < 100; ++i) {
    const IPv4Addr ip(10, 0, static_cast<std::uint8_t>(i), 1);
    dns::Nameserver ns(ip, {dns::Site{"a", 1e5, 20.0, 1.0},
                            dns::Site{"b", 1e5, 20.0, 1.0}});
    registry.add_nameserver(std::move(ns));
    ips.push_back(ip);
    registry.add_domain(
        dns::DomainName::must("d" + std::to_string(i) + ".com"), {ip});
  }
  const auto census =
      AnycastCensus::from_registry(registry, {0}, /*recall=*/0.7, 7);
  int detected = 0;
  for (const auto& ip : ips) {
    if (census.is_anycast(ip, 0)) ++detected;
  }
  EXPECT_GT(detected, 50);
  EXPECT_LT(detected, 90);  // misses exist: the census is a lower bound
}

TEST(Census, RecallDrawStableWithinSnapshot) {
  dns::DnsRegistry registry;
  const IPv4Addr ip(10, 0, 0, 1);
  dns::Nameserver ns(ip, {dns::Site{"a", 1e5, 20.0, 1.0},
                          dns::Site{"b", 1e5, 20.0, 1.0}});
  registry.add_nameserver(std::move(ns));
  registry.add_domain(dns::DomainName::must("x.com"), {ip});
  const auto c1 = AnycastCensus::from_registry(registry, {0, 90}, 0.5, 42);
  const auto c2 = AnycastCensus::from_registry(registry, {0, 90}, 0.5, 42);
  EXPECT_EQ(c1.is_anycast(ip, 0), c2.is_anycast(ip, 0));
  EXPECT_EQ(c1.is_anycast(ip, 90), c2.is_anycast(ip, 90));
}

TEST(CensusProbing, DetectsMultiSiteMissesUnicast) {
  dns::DnsRegistry registry;
  dns::Nameserver any(IPv4Addr(10, 0, 0, 1),
                      {dns::Site{"a", 1e5, 20.0, 1.0},
                       dns::Site{"b", 1e5, 20.0, 1.0},
                       dns::Site{"c", 1e5, 20.0, 1.0}});
  dns::Nameserver uni(IPv4Addr(20, 0, 0, 1), {dns::Site{"a", 1e5, 20.0, 1.0}});
  registry.add_nameserver(std::move(any));
  registry.add_nameserver(std::move(uni));
  registry.add_domain(dns::DomainName::must("x.com"),
                      {IPv4Addr(10, 0, 0, 1), IPv4Addr(20, 0, 0, 1)});
  const auto census = AnycastCensus::from_probing(registry, {0}, 8, 7);
  EXPECT_TRUE(census.is_anycast(IPv4Addr(10, 0, 0, 1), 0));
  EXPECT_FALSE(census.is_anycast(IPv4Addr(20, 0, 0, 1), 0));
}

TEST(CensusProbing, LowerBoundEmergesFromVantageCount) {
  // With a single probing vantage, anycast is undetectable by definition;
  // with two vantages, heavily skewed catchments are often missed.
  dns::DnsRegistry registry;
  int planted = 0;
  for (int i = 0; i < 60; ++i) {
    const IPv4Addr ip(10, 0, static_cast<std::uint8_t>(i), 1);
    // Hot catchment site carries nearly all traffic.
    dns::Nameserver ns(ip, {dns::Site{"hot", 1e5, 20.0, 30.0},
                            dns::Site{"cold", 1e5, 20.0, 1.0}});
    registry.add_nameserver(std::move(ns));
    registry.add_domain(
        dns::DomainName::must("d" + std::to_string(i) + ".com"), {ip});
    ++planted;
  }
  const auto one = AnycastCensus::from_probing(registry, {0}, 1, 7);
  const auto two = AnycastCensus::from_probing(registry, {0}, 2, 7);
  const auto many = AnycastCensus::from_probing(registry, {0}, 64, 7);
  int seen_one = 0, seen_two = 0, seen_many = 0;
  for (int i = 0; i < planted; ++i) {
    const IPv4Addr ip(10, 0, static_cast<std::uint8_t>(i), 1);
    if (one.is_anycast(ip, 0)) ++seen_one;
    if (two.is_anycast(ip, 0)) ++seen_two;
    if (many.is_anycast(ip, 0)) ++seen_many;
  }
  EXPECT_EQ(seen_one, 0);
  EXPECT_LT(seen_two, planted);   // the lower-bound property
  EXPECT_GT(seen_many, seen_two);
}

TEST(CensusProbing, SkipsLameEntries) {
  dns::DnsRegistry registry;
  registry.add_domain(dns::DomainName::must("stale.com"),
                      {IPv4Addr(66, 0, 0, 1)});  // no server registered
  const auto census = AnycastCensus::from_probing(registry, {0}, 8, 7);
  EXPECT_FALSE(census.is_anycast(IPv4Addr(66, 0, 0, 1), 0));
}

}  // namespace
}  // namespace ddos::anycast
