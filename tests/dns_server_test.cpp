#include "dns/server.h"

#include <gtest/gtest.h>

#include <set>

namespace ddos::dns {
namespace {

using netsim::IPv4Addr;
using netsim::Rng;
using netsim::SimTime;

Nameserver make_unicast(double capacity = 50e3, double base_rtt = 20.0) {
  Nameserver ns(IPv4Addr(10, 0, 0, 1),
                {Site{"AMS", capacity, base_rtt, 1.0}});
  ns.set_legit_pps(1e3);
  return ns;
}

Nameserver make_anycast(std::size_t sites, double capacity = 50e3) {
  std::vector<Site> s;
  for (std::size_t i = 0; i < sites; ++i) {
    s.push_back(Site{"s" + std::to_string(i), capacity, 20.0, 1.0});
  }
  return Nameserver(IPv4Addr(10, 0, 0, 2), std::move(s));
}

TEST(Nameserver, RequiresAtLeastOneSite) {
  EXPECT_THROW(Nameserver(IPv4Addr(1, 1, 1, 1), {}), std::invalid_argument);
}

TEST(Nameserver, RejectsDegenerateCatchment) {
  EXPECT_THROW(
      Nameserver(IPv4Addr(1, 1, 1, 1), {Site{"x", 1e3, 20.0, 0.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      Nameserver(IPv4Addr(1, 1, 1, 1), {Site{"x", 1e3, 20.0, -1.0}}),
      std::invalid_argument);
}

TEST(Nameserver, AnycastFlag) {
  EXPECT_FALSE(make_unicast().anycast());
  EXPECT_TRUE(make_anycast(5).anycast());
}

TEST(Nameserver, UnloadedQueryRespondsNearBaseRtt) {
  const Nameserver ns = make_unicast();
  Rng rng(1);
  int responded = 0;
  double rtt_sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const auto q = ns.query(rng, OfferedLoad{}, LoadModelParams{});
    if (q.responded && !q.servfail) {
      ++responded;
      rtt_sum += q.rtt_ms;
    }
  }
  EXPECT_EQ(responded, 2000);
  EXPECT_NEAR(rtt_sum / responded, 20.0, 1.0);
}

TEST(Nameserver, SaturatedServerDropsAndInflates) {
  const Nameserver ns = make_unicast(50e3);
  Rng rng(2);
  const OfferedLoad load{500e3, 0.0};  // 10x capacity
  int responded = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto q = ns.query(rng, load, LoadModelParams{});
    if (q.responded && !q.servfail) {
      ++responded;
      EXPECT_GT(q.rtt_ms, 100.0);  // inflated far beyond the 20ms base
    }
  }
  // Response probability ~0.95/10, so roughly 10% answer.
  EXPECT_NEAR(responded, 190, 80);
}

TEST(Nameserver, ServfailShareUnderOverload) {
  const Nameserver ns = make_unicast(50e3);
  Rng rng(3);
  const OfferedLoad load{5e6, 0.0};  // hopeless overload
  int servfails = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    const auto q = ns.query(rng, load, LoadModelParams{});
    if (q.responded && q.servfail) {
      ++servfails;
      // SERVFAIL is a fast backend error, not a queued response.
      EXPECT_LT(q.rtt_ms, 100.0);
    }
  }
  // ~2.8% of lost queries surface as SERVFAIL.
  EXPECT_NEAR(servfails, total * 0.028, total * 0.01);
}

TEST(Nameserver, SharedLinkCongestionAloneDegrades) {
  const Nameserver ns = make_unicast();
  Rng rng(4);
  const OfferedLoad load{0.0, 0.97};  // only the /24 uplink is congested
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto q = ns.query(rng, load, LoadModelParams{});
    if (q.responded && !q.servfail) {
      sum += q.rtt_ms;
      ++n;
    }
  }
  EXPECT_GT(sum / n, 100.0);  // ~12x inflation from the link queue
}

TEST(Nameserver, AnycastSpreadsAttackAcrossSites) {
  // 10 sites x 50K capacity; a 300K flood is 30K/site (rho 0.6) — harmless.
  const Nameserver any = make_anycast(10);
  const Nameserver uni = make_unicast();
  Rng rng(5);
  const OfferedLoad load{300e3, 0.0};
  double any_sum = 0.0, uni_sum = 0.0;
  int any_n = 0, uni_n = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto qa = any.query(rng, load, LoadModelParams{});
    if (qa.responded && !qa.servfail) {
      any_sum += qa.rtt_ms;
      ++any_n;
    }
    const auto qu = uni.query(rng, load, LoadModelParams{});
    if (qu.responded && !qu.servfail) {
      uni_sum += qu.rtt_ms;
      ++uni_n;
    }
  }
  ASSERT_GT(any_n, 0);
  EXPECT_LT(any_sum / any_n, 40.0);  // anycast shrugs it off (Fig. 11)
  // The unicast server at rho ~6 rarely answers, and slowly when it does.
  EXPECT_LT(uni_n, any_n / 2);
}

TEST(Nameserver, VantageSiteIsStable) {
  const Nameserver ns = make_anycast(8);
  const std::size_t site = ns.vantage_site(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ns.vantage_site(42), site);
}

TEST(Nameserver, DifferentVantagesSpreadOverSites) {
  const Nameserver ns = make_anycast(8);
  std::set<std::size_t> sites;
  for (std::uint64_t v = 0; v < 200; ++v) sites.insert(ns.vantage_site(v));
  EXPECT_GT(sites.size(), 4u);  // catchment splits vantage points
}

TEST(Nameserver, SiteUtilisationUsesCatchmentShare) {
  Nameserver ns(IPv4Addr(10, 0, 0, 3),
                {Site{"a", 100e3, 20.0, 3.0}, Site{"b", 100e3, 20.0, 1.0}});
  ns.set_legit_pps(0.0);
  const OfferedLoad load{100e3, 0.0};
  EXPECT_NEAR(ns.site_utilisation(0, load, LoadModelParams{}), 0.75, 1e-12);
  EXPECT_NEAR(ns.site_utilisation(1, load, LoadModelParams{}), 0.25, 1e-12);
}

TEST(Nameserver, GeofenceBlocksForeignVantagesDuringInterval) {
  Nameserver ns = make_unicast();
  ns.set_home_country("RU");
  ns.set_geofence_interval(SimTime(1000), SimTime(2000));
  Rng rng(6);
  // Outside the interval: answers.
  EXPECT_TRUE(ns.query(rng, OfferedLoad{}, LoadModelParams{}, SimTime(500), 0,
                       "NL")
                  .responded);
  // Inside: silence for NL, answers for RU.
  EXPECT_FALSE(ns.query(rng, OfferedLoad{}, LoadModelParams{}, SimTime(1500),
                        0, "NL")
                   .responded);
  EXPECT_TRUE(ns.query(rng, OfferedLoad{}, LoadModelParams{}, SimTime(1500),
                       0, "RU")
                  .responded);
  // After: answers again.
  EXPECT_TRUE(ns.query(rng, OfferedLoad{}, LoadModelParams{}, SimTime(2000),
                       0, "NL")
                  .responded);
}

TEST(Nameserver, GeofencedAtBoundaries) {
  Nameserver ns = make_unicast();
  ns.set_geofence_interval(SimTime(10), SimTime(20));
  EXPECT_FALSE(ns.geofenced_at(SimTime(9)));
  EXPECT_TRUE(ns.geofenced_at(SimTime(10)));
  EXPECT_TRUE(ns.geofenced_at(SimTime(19)));
  EXPECT_FALSE(ns.geofenced_at(SimTime(20)));
}

TEST(Nameserver, NoGeofenceByDefault) {
  const Nameserver ns = make_unicast();
  EXPECT_FALSE(ns.geofenced_at(SimTime(0)));
}

}  // namespace
}  // namespace ddos::dns
