// Tests for MeasurementStore day-window eviction (retire_days_below) —
// the API the streaming driver uses to bound memory. Load-bearing
// properties:
//
//   * retired chunks are sorted, and their concatenation across ascending
//     retire calls equals the sorted_* snapshots of a never-evicted store
//     regardless of how the eviction thresholds are spaced (the time-major
//     key layout makes each chunk a key-order prefix);
//   * day d-1 state survives every threshold <= d-1 — the previous-day
//     baseline is readable until day d's join retires it;
//   * evicted keys are gone from daily()/window()/ns_seen_on();
//   * the public key decomposition helpers round-trip, including the
//     pre-study day -1 the biased keys exist for.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "openintel/measurement.h"
#include "openintel/storage.h"

using namespace ddos;
using openintel::Aggregate;
using openintel::Measurement;
using openintel::MeasurementStore;

namespace {

Measurement make_measurement(dns::NssetId nsset, netsim::DayIndex day,
                             std::uint32_t second_of_day, double rtt_ms,
                             std::uint32_t ns_ip) {
  Measurement m;
  m.time = netsim::day_start(day) + second_of_day;
  m.domain = static_cast<dns::DomainId>(nsset * 100 + second_of_day);
  m.nsset = nsset;
  m.status = dns::ResponseStatus::Ok;
  m.rtt_ms = rtt_ms;
  m.chosen_ns = netsim::IPv4Addr(ns_ip);
  return m;
}

// A deterministic spread of measurements over days [-1, 5] and a few
// nssets; day -1 exercises the biased key encoding.
std::vector<Measurement> sample_measurements() {
  std::vector<Measurement> all;
  for (netsim::DayIndex day = -1; day <= 5; ++day) {
    for (const dns::NssetId nsset : {7u, 3u, 11u}) {
      for (std::uint32_t i = 0; i < 4; ++i) {
        all.push_back(make_measurement(
            nsset, day, 600 * i + static_cast<std::uint32_t>(nsset),
            10.0 + static_cast<double>(day + 2) + i,
            0x0A000000u + nsset * 16 + i % 2));
      }
    }
  }
  return all;
}

void fold_all(MeasurementStore& store, const std::vector<Measurement>& ms) {
  for (const Measurement& m : ms) store.add(m);
}

void expect_rows_equal(
    const std::vector<std::pair<std::uint64_t, Aggregate>>& got,
    const std::vector<std::pair<std::uint64_t, Aggregate>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_EQ(got[i].second.measured, want[i].second.measured);
    EXPECT_EQ(got[i].second.ok, want[i].second.ok);
    EXPECT_EQ(got[i].second.rtt.raw().sum, want[i].second.rtt.raw().sum);
    EXPECT_EQ(got[i].second.rtt.raw().m2, want[i].second.rtt.raw().m2);
  }
}

TEST(KeyDecomposition, RoundTripsIncludingNegativeDay) {
  for (const netsim::DayIndex day : {-1L, 0L, 1L, 511L}) {
    for (const dns::NssetId nsset : {0u, 9u, 0xFFFFFFu}) {
      const std::uint64_t dk = MeasurementStore::make_day_key(nsset, day);
      EXPECT_EQ(MeasurementStore::key_nsset(dk), nsset);
      EXPECT_EQ(MeasurementStore::day_key_day(dk), day);

      const netsim::WindowIndex w = day * netsim::kWindowsPerDay + 17;
      const std::uint64_t wk = MeasurementStore::make_window_key(nsset, w);
      EXPECT_EQ(MeasurementStore::key_nsset(wk), nsset);
      EXPECT_EQ(MeasurementStore::window_key_window(wk), w);
    }
  }
  // Time-major: later days order after earlier ones, nsset breaks ties.
  EXPECT_LT(MeasurementStore::make_day_key(5, -1),
            MeasurementStore::make_day_key(0, 0));
  EXPECT_LT(MeasurementStore::make_day_key(0, 3),
            MeasurementStore::make_day_key(1, 3));
}

// Retired chunks, concatenated, must reproduce the full sorted snapshots
// — for several eviction-threshold spacings, including one retiring
// everything at once and one day at a time.
TEST(RetireDaysBelow, ChunkConcatenationMatchesFullSnapshots) {
  const auto ms = sample_measurements();
  MeasurementStore full;
  fold_all(full, ms);
  const auto want_daily = full.sorted_daily();
  const auto want_window = full.sorted_window();
  const auto want_ns_seen = full.sorted_ns_seen();

  const std::vector<std::vector<netsim::DayIndex>> schedules = {
      {6},                       // everything at once
      {0, 1, 2, 3, 4, 5, 6},     // one day at a time
      {2, 2, 5, 6},              // uneven, with a no-op repeat
      {-1, 3, 99},               // below-everything start, beyond-end finish
  };
  for (const auto& schedule : schedules) {
    MeasurementStore store;
    fold_all(store, ms);
    std::vector<std::pair<std::uint64_t, Aggregate>> daily, window;
    std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>> ns_seen;
    for (const netsim::DayIndex threshold : schedule) {
      auto chunk = store.retire_days_below(threshold);
      daily.insert(daily.end(), chunk.daily.begin(), chunk.daily.end());
      window.insert(window.end(), chunk.window.begin(), chunk.window.end());
      ns_seen.insert(ns_seen.end(), chunk.ns_seen.begin(),
                     chunk.ns_seen.end());
    }
    expect_rows_equal(daily, want_daily);
    expect_rows_equal(window, want_window);
    EXPECT_EQ(ns_seen, want_ns_seen);
    EXPECT_EQ(store.daily_entries(), 0u);
    EXPECT_EQ(store.window_entries(), 0u);
  }
}

// The streaming driver's contract: while the join of day d is pending, a
// retire at threshold d-1 must keep day d-1 (baseline + previous-day seen
// set) readable; retiring at d evicts it.
TEST(RetireDaysBelow, PreviousDayBaselineSurvivesUntilItsJoin) {
  const netsim::DayIndex d = 3;
  MeasurementStore store;
  fold_all(store, sample_measurements());

  ASSERT_NE(store.daily(7, d - 1), nullptr);
  const double baseline = store.daily_avg_rtt(7, d - 1);
  ASSERT_GT(baseline, 0.0);

  store.retire_days_below(d - 1);  // days ..d-2 gone, d-1 kept
  ASSERT_NE(store.daily(7, d - 1), nullptr);
  EXPECT_EQ(store.daily_avg_rtt(7, d - 1), baseline);
  EXPECT_TRUE(store.ns_seen_on(netsim::IPv4Addr(0x0A000000u + 7 * 16), d - 1));
  EXPECT_EQ(store.daily(7, d - 2), nullptr);  // evicted
  EXPECT_FALSE(
      store.ns_seen_on(netsim::IPv4Addr(0x0A000000u + 7 * 16), d - 2));

  store.retire_days_below(d);  // day d-1 retired after its join consumed it
  EXPECT_EQ(store.daily(7, d - 1), nullptr);
  EXPECT_FALSE(
      store.ns_seen_on(netsim::IPv4Addr(0x0A000000u + 7 * 16), d - 1));
  // Day d itself is untouched, window state included.
  EXPECT_NE(store.daily(7, d), nullptr);
  const netsim::WindowIndex wd = netsim::day_start(d).window();
  EXPECT_NE(store.window(7, wd), nullptr);
  EXPECT_EQ(store.window(7, wd - netsim::kWindowsPerDay), nullptr);
}

// Eviction must not disturb what remains: the post-retire snapshots equal
// the tail of the full-store snapshots, whatever order eviction ran in.
TEST(RetireDaysBelow, RemnantSnapshotsDeterministicAcrossEvictionOrders) {
  const auto ms = sample_measurements();
  MeasurementStore full;
  fold_all(full, ms);
  auto want_daily = full.sorted_daily();
  const std::uint64_t limit = MeasurementStore::make_day_key(0, 2);
  std::erase_if(want_daily, [&](const auto& row) { return row.first < limit; });

  for (const std::vector<netsim::DayIndex>& schedule :
       {std::vector<netsim::DayIndex>{2},
        std::vector<netsim::DayIndex>{0, 1, 2},
        std::vector<netsim::DayIndex>{-1, 2}}) {
    MeasurementStore store;
    fold_all(store, ms);
    for (const netsim::DayIndex t : schedule) store.retire_days_below(t);
    expect_rows_equal(store.sorted_daily(), want_daily);
  }
}

}  // namespace
