// NS-exhaustive measurement (§9 future work): per-server visibility that
// the agnostic single-pick resolution cannot provide.
#include <gtest/gtest.h>

#include "openintel/sweeper.h"

namespace ddos::openintel {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

struct Fixture {
  dns::DnsRegistry registry;
  attack::AttackSchedule schedule;
  const IPv4Addr healthy{10, 0, 0, 1};
  const IPv4Addr attacked{10, 0, 0, 2};

  Fixture() {
    for (const auto& ip : {healthy, attacked}) {
      dns::Nameserver ns(ip, {dns::Site{"x", 50e3, 20.0, 1.0}});
      ns.set_legit_pps(1e3);
      registry.add_nameserver(std::move(ns));
    }
    registry.add_domain(dns::DomainName::must("victim.com"),
                        {healthy, attacked});
    attack::AttackSpec spec;
    spec.target = attacked;
    spec.start = SimTime(0);
    spec.duration_s = 3600;
    spec.peak_pps = 50e6;  // hopeless
    spec.steady = true;
    schedule.add(spec);
  }

  Sweeper sweeper() const {
    SweeperParams params;
    params.seed = 3;
    return Sweeper(registry, schedule, params);
  }
};

TEST(Exhaustive, SeparatesHealthyFromAttackedServer) {
  const Fixture fx;
  const auto sweeper = fx.sweeper();
  int healthy_ok = 0, attacked_ok = 0;
  for (int i = 0; i < 200; ++i) {
    const auto outcomes =
        sweeper.measure_exhaustive(0, SimTime(10 + i));
    ASSERT_EQ(outcomes.size(), 2u);
    for (const auto& o : outcomes) {
      if (o.ns == fx.healthy && o.status == dns::ResponseStatus::Ok)
        ++healthy_ok;
      if (o.ns == fx.attacked && o.status == dns::ResponseStatus::Ok)
        ++attacked_ok;
    }
  }
  EXPECT_GT(healthy_ok, 190);
  EXPECT_LT(attacked_ok, 20);
}

TEST(Exhaustive, AgnosticViewCannotAttributeTheFailure) {
  // The agnostic resolution succeeds via retries (one server healthy), so
  // the single-pick record never says *which* server is down — exactly the
  // limitation §4.3 describes and measure_exhaustive removes.
  const Fixture fx;
  const auto sweeper = fx.sweeper();
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    const auto m = sweeper.measure(0, SimTime(10 + i));
    if (m.status == dns::ResponseStatus::Ok) ++ok;
  }
  EXPECT_GT(ok, 190);  // resolution "fine" while half the NSSet is dead
}

TEST(Exhaustive, OutcomesCoverEveryNameserverOnce) {
  const Fixture fx;
  const auto sweeper = fx.sweeper();
  const auto outcomes = sweeper.measure_exhaustive(0, SimTime(123456));
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_NE(outcomes[0].ns, outcomes[1].ns);
}

TEST(Exhaustive, Deterministic) {
  const Fixture fx;
  const auto sweeper = fx.sweeper();
  const auto a = sweeper.measure_exhaustive(0, SimTime(77));
  const auto b = sweeper.measure_exhaustive(0, SimTime(77));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_DOUBLE_EQ(a[i].rtt_ms, b[i].rtt_ms);
  }
}

TEST(Exhaustive, AnsweredOutcomesHaveBoundedRtt) {
  const Fixture fx;
  const auto sweeper = fx.sweeper();
  for (int i = 0; i < 100; ++i) {
    for (const auto& o : sweeper.measure_exhaustive(0, SimTime(9000 + i))) {
      if (o.status != dns::ResponseStatus::Timeout) {
        EXPECT_GT(o.rtt_ms, 0.0);
        EXPECT_LE(o.rtt_ms, 1500.0);
      }
    }
  }
}

}  // namespace
}  // namespace ddos::openintel
