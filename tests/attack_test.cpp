#include <gtest/gtest.h>

#include "attack/attack.h"
#include "attack/backscatter.h"
#include "attack/schedule.h"

namespace ddos::attack {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

AttackSpec make_attack(IPv4Addr target, std::int64_t start_s,
                       std::int64_t duration_s, double pps) {
  AttackSpec spec;
  spec.target = target;
  spec.start = SimTime(start_s);
  spec.duration_s = duration_s;
  spec.peak_pps = pps;
  return spec;
}

TEST(AttackSpec, ActiveInterval) {
  const auto a = make_attack(IPv4Addr(1, 2, 3, 4), 600, 900, 1e4);
  EXPECT_FALSE(a.active_at(SimTime(599)));
  EXPECT_TRUE(a.active_at(SimTime(600)));
  EXPECT_TRUE(a.active_at(SimTime(1499)));
  EXPECT_FALSE(a.active_at(SimTime(1500)));
  EXPECT_EQ(a.end().seconds(), 1500);
}

TEST(AttackSpec, WindowRange) {
  const auto a = make_attack(IPv4Addr(1, 2, 3, 4), 600, 900, 1e4);
  EXPECT_EQ(a.first_window(), 2);  // [600, 900)
  EXPECT_EQ(a.last_window(), 4);   // ends at 1500, last touched window 4
}

TEST(AttackSpec, PpsZeroOutsideAttack) {
  const auto a = make_attack(IPv4Addr(1, 2, 3, 4), 600, 900, 1e4);
  EXPECT_DOUBLE_EQ(a.pps_in_window(0), 0.0);
  EXPECT_DOUBLE_EQ(a.pps_in_window(5), 0.0);
}

TEST(AttackSpec, FullWindowNearPeak) {
  auto a = make_attack(IPv4Addr(1, 2, 3, 4), 600, 900, 1e4);
  const double pps = a.pps_in_window(3);  // fully covered window
  EXPECT_GE(pps, 0.9e4 - 1.0);
  EXPECT_LE(pps, 1.1e4 + 1.0);
}

TEST(AttackSpec, PartialWindowProRated) {
  // Attack covers only 60s of window 0.
  auto a = make_attack(IPv4Addr(1, 2, 3, 4), 240, 60, 1e4);
  a.steady = true;
  EXPECT_NEAR(a.pps_in_window(0), 1e4 * 60.0 / 300.0, 1e-9);
}

TEST(AttackSpec, SteadyDisablesWobble) {
  auto a = make_attack(IPv4Addr(1, 2, 3, 4), 0, 3000, 1e4);
  a.steady = true;
  for (netsim::WindowIndex w = 0; w < 10; ++w) {
    EXPECT_DOUBLE_EQ(a.pps_in_window(w), 1e4);
  }
}

TEST(AttackSpec, WobbleIsStablePerWindow) {
  auto a = make_attack(IPv4Addr(1, 2, 3, 4), 0, 3000, 1e4);
  a.id = 7;
  const double first = a.pps_in_window(3);
  EXPECT_DOUBLE_EQ(a.pps_in_window(3), first);  // deterministic
  EXPECT_GE(first, 0.9e4);
  EXPECT_LE(first, 1.1e4);
}

TEST(AttackSpec, UniqueSpoofedSources) {
  EXPECT_DOUBLE_EQ(expected_unique_spoofed_sources(0.0, 100.0), 0.0);
  // Far below the birthday regime: ~= packet count.
  EXPECT_NEAR(expected_unique_spoofed_sources(1000.0, 10.0), 10000.0, 15.0);
  // Saturating regime caps at the address space.
  EXPECT_LE(expected_unique_spoofed_sources(1e9, 1e5), 4294967296.0);
  EXPECT_GT(expected_unique_spoofed_sources(1e9, 1e5), 4e9);
}

TEST(Protocol, Names) {
  EXPECT_EQ(to_string(Protocol::TCP), "TCP");
  EXPECT_EQ(to_string(Protocol::UDP), "UDP");
  EXPECT_EQ(to_string(Protocol::ICMP), "ICMP");
  EXPECT_EQ(to_string(SpoofType::RandomUniform), "random-spoofed");
}

TEST(Schedule, AssignsIds) {
  AttackSchedule sched;
  const auto id1 = sched.add(make_attack(IPv4Addr(1, 1, 1, 1), 0, 300, 1e3));
  const auto id2 = sched.add(make_attack(IPv4Addr(1, 1, 1, 1), 0, 300, 1e3));
  EXPECT_NE(id1, 0u);
  EXPECT_NE(id1, id2);
  EXPECT_EQ(sched.size(), 2u);
  EXPECT_NE(sched.find(id1), nullptr);
  EXPECT_EQ(sched.find(9999), nullptr);
}

TEST(Schedule, AttackPpsSumsConcurrentFloods) {
  AttackSchedule sched;
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 1e4);
  auto b = make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 2e4);
  a.steady = b.steady = true;
  sched.add(a);
  sched.add(b);
  EXPECT_DOUBLE_EQ(sched.attack_pps_at(IPv4Addr(1, 1, 1, 1), 0), 3e4);
  EXPECT_DOUBLE_EQ(sched.attack_pps_at(IPv4Addr(1, 1, 1, 2), 0), 0.0);
  EXPECT_DOUBLE_EQ(sched.attack_pps_at(IPv4Addr(1, 1, 1, 1), 10), 0.0);
}

TEST(Schedule, Slash24AggregatesNeighbours) {
  AttackSchedule sched;
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 1e4);
  auto b = make_attack(IPv4Addr(1, 1, 1, 200), 0, 600, 2e4);
  auto c = make_attack(IPv4Addr(1, 1, 2, 1), 0, 600, 5e4);  // other /24
  a.steady = b.steady = c.steady = true;
  sched.add(a);
  sched.add(b);
  sched.add(c);
  EXPECT_DOUBLE_EQ(sched.slash24_pps_at(IPv4Addr(1, 1, 1, 99), 0), 3e4);
  EXPECT_DOUBLE_EQ(sched.slash24_pps_at(IPv4Addr(1, 1, 2, 99), 0), 5e4);
}

TEST(Schedule, LinkUtilisation) {
  AttackSchedule sched;
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 5e4);
  a.steady = true;
  sched.add(a);
  // Unconfigured link: no congestion signal.
  EXPECT_DOUBLE_EQ(sched.link_utilisation_at(IPv4Addr(1, 1, 1, 1), 0), 0.0);
  sched.set_link_capacity(IPv4Addr(1, 1, 1, 200), 1e5);  // same /24
  EXPECT_DOUBLE_EQ(sched.link_utilisation_at(IPv4Addr(1, 1, 1, 1), 0), 0.5);
}

TEST(Schedule, QueriesByTargetAndWindow) {
  AttackSchedule sched;
  sched.add(make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 1e3));
  sched.add(make_attack(IPv4Addr(2, 2, 2, 2), 900, 600, 1e3));
  EXPECT_EQ(sched.attacks_on(IPv4Addr(1, 1, 1, 1)).size(), 1u);
  EXPECT_TRUE(sched.attacks_on(IPv4Addr(9, 9, 9, 9)).empty());
  EXPECT_EQ(sched.active_in(0).size(), 1u);
  EXPECT_EQ(sched.active_in(3).size(), 1u);
  EXPECT_EQ(sched.active_in(10).size(), 0u);
  EXPECT_EQ(sched.earliest_start().seconds(), 0);
  EXPECT_EQ(sched.latest_end().seconds(), 1500);
}

TEST(Backscatter, InvisibleForNonRandomSpoof) {
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 600, 1e6);
  a.spoof = SpoofType::Reflected;
  netsim::Rng rng(1);
  const auto bw = observe_backscatter(a, 0, 1.0 / 341.0, 192,
                                      BackscatterModelParams{}, rng);
  EXPECT_EQ(bw.packets, 0u);

  a.spoof = SpoofType::Direct;
  const auto bw2 = observe_backscatter(a, 0, 1.0 / 341.0, 192,
                                       BackscatterModelParams{}, rng);
  EXPECT_EQ(bw2.packets, 0u);
}

TEST(Backscatter, CapturesExpectedFraction) {
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 300, 341e3);
  a.steady = true;
  netsim::Rng rng(2);
  // 341K pps * 300 s / 341 = 300K expected captured packets.
  const auto bw = observe_backscatter(a, 0, 1.0 / 341.0, 192,
                                      BackscatterModelParams{}, rng);
  EXPECT_NEAR(static_cast<double>(bw.packets), 300000.0, 5000.0);
  EXPECT_GT(bw.distinct_slash16, 180u);  // uniform spray covers the /16s
  EXPECT_GT(bw.peak_ppm, 50000.0);
}

TEST(Backscatter, VictimResponseCapacityCapsSignal) {
  auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 300, 100e6);
  a.steady = true;
  BackscatterModelParams params;
  params.victim_response_capacity_pps = 1e6;
  netsim::Rng rng(3);
  const auto bw =
      observe_backscatter(a, 0, 1.0 / 341.0, 192, params, rng);
  // Capped at 1M pps -> ~880K captured over the window, not 88M.
  EXPECT_LT(static_cast<double>(bw.packets), 1.0e6);
  EXPECT_GT(static_cast<double>(bw.packets), 0.8e6);
}

TEST(Backscatter, ZeroOutsideWindow) {
  const auto a = make_attack(IPv4Addr(1, 1, 1, 1), 0, 300, 1e5);
  netsim::Rng rng(4);
  const auto bw = observe_backscatter(a, 5, 1.0 / 341.0, 192,
                                      BackscatterModelParams{}, rng);
  EXPECT_EQ(bw.packets, 0u);
}

TEST(Backscatter, ExpectedDistinctSubnets) {
  EXPECT_DOUBLE_EQ(expected_distinct_subnets(0, 192), 0.0);
  EXPECT_NEAR(expected_distinct_subnets(1, 192), 1.0, 0.01);
  EXPECT_NEAR(expected_distinct_subnets(100000, 192), 192.0, 0.01);
  EXPECT_DOUBLE_EQ(expected_distinct_subnets(10, 0), 0.0);
}

}  // namespace
}  // namespace ddos::attack
