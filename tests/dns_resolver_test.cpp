#include "dns/resolver.h"

#include <gtest/gtest.h>

#include <map>

namespace ddos::dns {
namespace {

using netsim::IPv4Addr;
using netsim::Rng;

std::vector<Nameserver> make_set(int n, double capacity = 50e3) {
  std::vector<Nameserver> out;
  for (int i = 0; i < n; ++i) {
    Nameserver ns(IPv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
                  {Site{"x", capacity, 20.0, 1.0}});
    ns.set_legit_pps(1e3);
    out.push_back(std::move(ns));
  }
  return out;
}

std::vector<const Nameserver*> ptrs(const std::vector<Nameserver>& v) {
  std::vector<const Nameserver*> out;
  for (const auto& ns : v) out.push_back(&ns);
  return out;
}

TEST(Resolver, RejectsBadInputs) {
  const AgnosticResolver resolver;
  Rng rng(1);
  EXPECT_THROW(resolver.resolve(rng, {}, {}, LoadModelParams{}),
               std::invalid_argument);
  const auto set = make_set(2);
  EXPECT_THROW(resolver.resolve(rng, ptrs(set), {OfferedLoad{}},
                                LoadModelParams{}),
               std::invalid_argument);
  ResolverParams bad;
  bad.max_attempts = 0;
  EXPECT_THROW(AgnosticResolver{bad}, std::invalid_argument);
}

TEST(Resolver, HealthySetResolvesOk) {
  const auto set = make_set(3);
  const AgnosticResolver resolver;
  Rng rng(2);
  const std::vector<OfferedLoad> loads(3);
  for (int i = 0; i < 500; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    EXPECT_EQ(res.status, ResponseStatus::Ok);
    EXPECT_EQ(res.attempts, 1);
    EXPECT_NEAR(res.rtt_ms, 20.0, 10.0);
  }
}

TEST(Resolver, AgnosticChoiceIsUniform) {
  const auto set = make_set(3);
  const AgnosticResolver resolver;
  Rng rng(3);
  const std::vector<OfferedLoad> loads(3);
  std::map<std::uint32_t, int> chosen;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    ++chosen[res.chosen_ns.value()];
  }
  ASSERT_EQ(chosen.size(), 3u);
  for (const auto& [ip, c] : chosen) EXPECT_NEAR(c, n / 3, n / 3 * 0.08);
}

TEST(Resolver, RetriesAnotherServerWhenOneIsDead) {
  auto set = make_set(2);
  const AgnosticResolver resolver;
  Rng rng(4);
  // Server 0 is hopelessly overloaded, server 1 idle.
  const std::vector<OfferedLoad> loads = {OfferedLoad{50e6, 0.0},
                                          OfferedLoad{}};
  int ok = 0, with_retry = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    if (res.status == ResponseStatus::Ok) {
      ++ok;
      if (res.attempts > 1) {
        ++with_retry;
        // A retried resolution carries the timeout in its elapsed RTT —
        // exactly how attacks surface in Impact_on_RTT.
        EXPECT_GT(res.rtt_ms, 1500.0);
      }
    }
  }
  EXPECT_GT(ok, 1900);        // the healthy server saves almost everything
  EXPECT_GT(with_retry, 700); // about half the first picks hit the dead one
}

TEST(Resolver, AllDeadYieldsTimeoutWithFullElapsed) {
  const auto set = make_set(2);
  ResolverParams params;
  params.max_attempts = 3;
  const AgnosticResolver resolver(params);
  Rng rng(5);
  const std::vector<OfferedLoad> loads = {OfferedLoad{50e6, 0.0},
                                          OfferedLoad{50e6, 0.0}};
  int timeouts = 0, servfails = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    if (res.status == ResponseStatus::Timeout) {
      ++timeouts;
      EXPECT_DOUBLE_EQ(res.rtt_ms, 3 * params.attempt_timeout_ms);
      EXPECT_EQ(res.attempts, 3);
    } else if (res.status == ResponseStatus::ServFail) {
      ++servfails;
    }
  }
  EXPECT_GT(timeouts, 850);
  EXPECT_GT(servfails, 10);  // fast backend errors still get through
}

TEST(Resolver, SlowAnswersCountAsTimeouts) {
  // A server at rho ~0.999 "answers", but its latency (~400x of 20ms =
  // 8s) exceeds the attempt budget, so the resolver must classify the
  // resolution as a timeout rather than record an 8-second RTT.
  const auto set = make_set(1);
  const AgnosticResolver resolver;
  Rng rng(6);
  const std::vector<OfferedLoad> loads = {OfferedLoad{50e3 * 400, 0.0}};
  for (int i = 0; i < 500; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    if (res.status == ResponseStatus::Ok) {
      EXPECT_LE(res.rtt_ms, 3 * 1500.0);
    }
  }
}

TEST(Resolver, DeterministicGivenRngState) {
  const auto set = make_set(3);
  const AgnosticResolver resolver;
  const std::vector<OfferedLoad> loads(3);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    const auto ra = resolver.resolve(a, ptrs(set), loads, LoadModelParams{});
    const auto rb = resolver.resolve(b, ptrs(set), loads, LoadModelParams{});
    EXPECT_EQ(ra.status, rb.status);
    EXPECT_DOUBLE_EQ(ra.rtt_ms, rb.rtt_ms);
    EXPECT_EQ(ra.chosen_ns, rb.chosen_ns);
  }
}

TEST(Resolver, SingleServerRetriesItself) {
  const auto set = make_set(1);
  ResolverParams params;
  params.max_attempts = 3;
  const AgnosticResolver resolver(params);
  Rng rng(8);
  // rho ~1.05: answers ~90% of attempts but with dead latency sometimes.
  const std::vector<OfferedLoad> loads = {OfferedLoad{51e3, 0.0}};
  int ok_after_retry = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto res = resolver.resolve(rng, ptrs(set), loads, LoadModelParams{});
    if (res.status == ResponseStatus::Ok && res.attempts > 1)
      ++ok_after_retry;
  }
  EXPECT_GT(ok_after_retry, 0);  // the same server is retried and can recover
}

}  // namespace
}  // namespace ddos::dns
