// QueryEngine concurrency + load-driver acceptance: the shared-nothing
// read API must give every thread the same answers it gives a serial
// replay (this binary is in the TSan CI job — any hidden shared write in
// the query path fails there), and drive()'s fixed-ops mode must be
// fingerprint-reproducible run over run.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "scenario/driver.h"
#include "serve/driver.h"
#include "serve/query_engine.h"
#include "serve/workload.h"

namespace ddos::serve {
namespace {

// One thread's slice of work: replay `ops` operations of the (seed,
// thread) stream against the engine and fold every answer — the same
// folds drive() uses, kept in lockstep by the shared fingerprint_fold.
std::uint64_t replay_fingerprint(const QueryEngine& engine,
                                 const WorkloadSpec& spec_in,
                                 unsigned thread_id, std::uint64_t ops) {
  WorkloadSpec spec = spec_in;
  spec.day_min = engine.day_min();
  spec.day_max = engine.day_max();
  Workload wl(spec, engine.keys().size(), thread_id);
  std::vector<TopEntry> scratch;
  std::uint64_t fp = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    const Op op = wl.next();
    switch (op.type) {
      case QueryType::PointLookup: {
        const PointResult r =
            engine.point_lookup(engine.keys()[op.key_index]);
        fp = fingerprint_fold(
            fp, (static_cast<std::uint64_t>(r.summary.nsset) << 1) |
                    (r.found ? 1u : 0u));
        fp = fingerprint_fold(fp, r.summary.peak_impact);
        break;
      }
      case QueryType::TopK: {
        const std::size_t n = engine.top_k(
            static_cast<TopKMetric>(op.metric), op.k, scratch);
        fp = fingerprint_fold(fp, static_cast<std::uint64_t>(n));
        for (const TopEntry& e : scratch) {
          fp = fingerprint_fold(fp, e.key);
          fp = fingerprint_fold(fp, e.value);
        }
        break;
      }
      case QueryType::WindowScan: {
        const WindowScanResult r = engine.window_scan(op.day_lo, op.day_hi);
        fp = fingerprint_fold(fp, r.events);
        fp = fingerprint_fold(fp, r.max_peak_impact);
        break;
      }
    }
  }
  return fp;
}

class ServeEngineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new scenario::LongitudinalResult(
        scenario::run_longitudinal(scenario::small_longitudinal_config(33)));
    engine_ = new QueryEngine(*result_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete result_;
    result_ = nullptr;
  }

  static scenario::LongitudinalResult* result_;
  static QueryEngine* engine_;
};

scenario::LongitudinalResult* ServeEngineTest::result_ = nullptr;
QueryEngine* ServeEngineTest::engine_ = nullptr;

// The core concurrency contract: eight raw threads hammer the const API
// simultaneously; each must end with the fingerprint a serial replay of
// its stream produces. A data race in the query path shows up here under
// TSan; a wrong answer shows up as a fingerprint mismatch anywhere.
TEST_F(ServeEngineTest, ConcurrentReadersMatchSerialReplay) {
  ASSERT_FALSE(engine_->keys().empty());
  WorkloadSpec spec;
  spec.seed = 4242;
  const unsigned kThreads = 8;
  const std::uint64_t kOps = 20000;

  std::vector<std::uint64_t> concurrent(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        concurrent[t] = replay_fingerprint(*engine_, spec, t, kOps);
      });
    }
    for (auto& th : threads) th.join();
  }
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(concurrent[t], replay_fingerprint(*engine_, spec, t, kOps))
        << "thread " << t;
  }
  // Distinct streams should not collapse onto one fingerprint.
  EXPECT_NE(concurrent[0], concurrent[1]);
}

TEST_F(ServeEngineTest, DriveFixedOpsIsReproducible) {
  exec::set_global_threads(4);
  DriveOptions opts;
  opts.workload.seed = 7;
  opts.ops_per_thread = 10000;

  const DriveReport a = drive(*engine_, opts);
  const DriveReport b = drive(*engine_, opts);

  EXPECT_EQ(a.threads, 4u);
  EXPECT_EQ(a.total_ops, 4u * 10000u);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.thread_fingerprints, b.thread_fingerprints);
  EXPECT_EQ(a.thread_ops, b.thread_ops);
  for (std::size_t q = 0; q < kQueryTypeCount; ++q) {
    EXPECT_EQ(a.by_type[q].ops, b.by_type[q].ops) << "query type " << q;
  }
  // The op mix lands: with 95:4:1 almost all ops are point lookups.
  EXPECT_GT(a.by_type[0].ops, a.total_ops * 9 / 10);
  std::uint64_t sum = 0;
  for (const auto& tr : a.by_type) sum += tr.ops;
  EXPECT_EQ(sum, a.total_ops);
}

TEST_F(ServeEngineTest, ThreadStreamsAreStableAcrossThreadCounts) {
  DriveOptions opts;
  opts.workload.seed = 7;
  opts.ops_per_thread = 2000;
  exec::set_global_threads(2);
  const DriveReport two = drive(*engine_, opts);
  exec::set_global_threads(4);
  const DriveReport four = drive(*engine_, opts);
  EXPECT_EQ(two.threads, 2u);
  EXPECT_EQ(four.threads, 4u);
  // Thread 0 and 1 run the same streams in both configurations.
  EXPECT_EQ(two.thread_fingerprints[0], four.thread_fingerprints[0]);
  EXPECT_EQ(two.thread_fingerprints[1], four.thread_fingerprints[1]);
}

TEST_F(ServeEngineTest, DriveDurationModeTerminates) {
  exec::set_global_threads(2);
  DriveOptions opts;
  opts.ops_per_thread = 0;
  opts.duration_s = 0.05;
  const DriveReport r = drive(*engine_, opts);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.wall_s, 0.0);
  EXPECT_GT(r.ops_per_sec, 0.0);
  std::uint64_t sum = 0;
  for (const auto& tr : r.by_type) sum += tr.ops;
  EXPECT_EQ(sum, r.total_ops);
  // Latency quantiles are populated and ordered for the dominant type.
  EXPECT_GT(r.by_type[0].p50_us, 0.0);
  EXPECT_LE(r.by_type[0].p50_us, r.by_type[0].p99_us);
  EXPECT_LE(r.by_type[0].p99_us, r.by_type[0].p999_us);
}

TEST_F(ServeEngineTest, DriveRejectsAnEmptyEngine) {
  const scenario::LongitudinalResult empty;
  const QueryEngine engine(empty);
  EXPECT_TRUE(engine.keys().empty());
  DriveOptions opts;
  opts.ops_per_thread = 10;
  EXPECT_THROW(drive(engine, opts), std::invalid_argument);
}

TEST_F(ServeEngineTest, EmptyEngineAnswersAreEmptyNotUndefined) {
  const scenario::LongitudinalResult empty;
  const QueryEngine engine(empty);
  EXPECT_FALSE(engine.point_lookup(0).found);
  std::vector<TopEntry> out;
  EXPECT_EQ(engine.top_k(TopKMetric::Attacks, 10, out), 0u);
  const WindowScanResult scan = engine.window_scan(0, 1000);
  EXPECT_EQ(scan.events, 0u);
}

}  // namespace
}  // namespace ddos::serve
