// Integration tests of the §5 case-study scenarios. These run the full
// telescope + sweep + (reactive) pipelines at reduced scale and assert the
// paper's qualitative findings.
#include <gtest/gtest.h>

#include "scenario/russia.h"
#include "scenario/transip.h"

namespace ddos::scenario {
namespace {

class TransIPTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TransIPParams params;
    params.scale = 0.02;  // ~15.5K domains: fast but statistically stable
    result_ = new TransIPResult(run_transip(params));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static TransIPResult* result_;
};

TransIPResult* TransIPTest::result_ = nullptr;

TEST_F(TransIPTest, PopulationShape) {
  const auto& r = *result_;
  EXPECT_NEAR(r.nl_share, 510.0 / 776.0, 0.03);            // two-thirds .nl
  EXPECT_NEAR(r.third_party_web_share, 0.27, 0.03);        // §5.1.1
  EXPECT_GT(r.domains_hosted, 10000u);
}

TEST_F(TransIPTest, Table2DecemberMetrics) {
  const auto& dec = result_->december;
  // A ~21.8K ppm >> B ~3.8K >> C ~2.9K (within sampling slack).
  EXPECT_NEAR(dec[0].observed_ppm, 21.8e3, 4e3);
  EXPECT_NEAR(dec[1].observed_ppm, 3.8e3, 1e3);
  EXPECT_NEAR(dec[2].observed_ppm, 2.9e3, 1e3);
  // Inferred volume ~1.4 Gbps on A.
  EXPECT_NEAR(dec[0].inferred_gbps, 1.4, 0.4);
  EXPECT_GT(dec[0].attacker_ip_count, dec[1].attacker_ip_count);
  EXPECT_GT(dec[1].attacker_ip_count, dec[2].attacker_ip_count);
}

TEST_F(TransIPTest, Table2MarchSixfoldStronger) {
  const auto& dec = result_->december;
  const auto& mar = result_->march;
  // Paper: peak packet rate ~6x the December attack.
  EXPECT_GT(mar[0].observed_ppm, dec[0].observed_ppm * 4.0);
  EXPECT_NEAR(mar[0].inferred_gbps, 8.0, 2.5);
  EXPECT_NEAR(mar[2].inferred_gbps, 0.845, 0.4);
}

TEST_F(TransIPTest, DecemberTenfoldImpact) {
  EXPECT_GT(result_->december_peak_impact, 5.0);
  EXPECT_LT(result_->december_peak_impact, 30.0);
  // December failures negligible (paper: "a negligible fraction").
  EXPECT_LT(result_->december_peak_timeout_share, 0.05);
}

TEST_F(TransIPTest, DecemberImpairmentOutlivesVisibleAttack) {
  // Paper: effects persisted ~8 hours after the RSDoS-inferred end.
  EXPECT_GE(result_->december_residual_hours, 6.0);
  EXPECT_LE(result_->december_residual_hours, 10.0);
}

TEST_F(TransIPTest, MarchTimeoutsNearTwentyPercent) {
  EXPECT_GT(result_->march_peak_timeout_share, 0.10);
  EXPECT_LT(result_->march_peak_timeout_share, 0.40);
}

TEST_F(TransIPTest, MarchImpairmentMatchesTelescopeWindow) {
  // No window outside [start, end] should show heavy impact (scrubbing
  // deployed; unlike December there is no residual tail).
  for (const auto& pt : result_->march_series) {
    if (pt.time >= result_->mar_end + netsim::kSecondsPerHour) {
      EXPECT_LT(pt.impact_on_rtt, 3.0) << pt.time.to_string();
    }
  }
  EXPECT_GT(result_->march_peak_impact, result_->december_peak_impact);
}

TEST_F(TransIPTest, QuietHoursAreQuiet) {
  int quiet = 0;
  for (const auto& pt : result_->december_series) {
    if (pt.time < result_->dec_visible_start && pt.impact_on_rtt > 0.0 &&
        pt.impact_on_rtt < 2.0) {
      ++quiet;
    }
  }
  EXPECT_GT(quiet, 5);
}

class RussiaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    result_ = new RussiaResult(run_russia(RussiaParams{}));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static RussiaResult* result_;
};

RussiaResult* RussiaTest::result_ = nullptr;

TEST_F(RussiaTest, MilRuAttackTimeline) {
  const auto& m = result_->milru;
  EXPECT_EQ(m.attack_start.to_string(), "2022-03-11 06:00:00");
  EXPECT_EQ(m.attack_end.to_string(), "2022-03-18 20:00:00");
  EXPECT_EQ(result_->milru_distinct_slash24, 1u);  // the anti-pattern
}

TEST_F(RussiaTest, OpenIntelFailsDuringGeofence) {
  const auto& daily = result_->milru.openintel_daily;
  ASSERT_FALSE(daily.empty());
  const netsim::DayIndex geo_first = result_->milru.geofence_start.day();
  const netsim::DayIndex geo_last = result_->milru.geofence_end.day() - 1;
  for (const auto& d : daily) {
    if (d.day >= geo_first && d.day <= geo_last) {
      EXPECT_DOUBLE_EQ(d.success_share, 0.0) << "day " << d.day;
    } else if (d.day < result_->milru.attack_start.day()) {
      EXPECT_GT(d.success_share, 0.9) << "day " << d.day;
    }
  }
}

TEST_F(RussiaTest, GeofenceDaysMatchPaper) {
  // Paper: OpenINTEL completely failed March 12-16 inclusive.
  EXPECT_EQ(result_->milru.geofence_start.to_string(), "2022-03-12 00:00:00");
  EXPECT_EQ(result_->milru.geofence_end.to_string(), "2022-03-17 00:00:00");
}

TEST_F(RussiaTest, ReactiveSeesNoResponsiveNameserverDuringGeofence) {
  EXPECT_TRUE(result_->milru.no_ns_responsive_during_geofence);
  EXPECT_GT(result_->milru.attack_windows_probed, 1000u);  // 8-day campaign
  EXPECT_GT(result_->milru.unresolvable_share(), 0.5);
}

TEST_F(RussiaTest, RdzTimelineAndRecovery) {
  const auto& r = result_->rdz;
  EXPECT_EQ(r.attack_start.to_string(), "2022-03-08 15:30:00");
  EXPECT_EQ(r.attack_end.to_string(), "2022-03-08 20:45:00");
  EXPECT_LT(r.during_attack_resolution_rate, 0.1);  // saturated
  ASSERT_TRUE(r.recovered());
  // Paper: intermittently responsive from ~06:00 the next morning.
  EXPECT_EQ(r.recovery_time.day(), r.attack_end.day() + 1);
  const std::int64_t recovery_hour =
      r.recovery_time.second_of_day() / netsim::kSecondsPerHour;
  EXPECT_GE(recovery_hour, 5);
  EXPECT_LE(recovery_hour, 7);
}

TEST_F(RussiaTest, RdzUsesTwoPrefixes) {
  EXPECT_EQ(result_->rdz_distinct_slash24, 2u);
}

TEST(RussiaDeterminism, SameSeedSameResult) {
  const auto r1 = run_russia(RussiaParams{});
  const auto r2 = run_russia(RussiaParams{});
  EXPECT_EQ(r1.milru.unresolvable_attack_windows,
            r2.milru.unresolvable_attack_windows);
  EXPECT_EQ(r1.rdz.recovery_time.seconds(), r2.rdz.recovery_time.seconds());
}

}  // namespace
}  // namespace ddos::scenario
