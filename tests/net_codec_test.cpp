// Wire-protocol acceptance: every message type must survive an
// encode/decode round trip bit-exactly, and every malformed byte stream —
// truncated, oversized, corrupted header, wrong body length, invalid enum
// — must be rejected with a typed status instead of best-effort
// acceptance. The fuzz loops at the end are the "never crash, never
// silently accept" guarantee the server's connection handling stands on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/codec.h"
#include "netsim/rng.h"

namespace ddos::net {
namespace {

std::vector<std::uint8_t> one_hello(std::uint32_t request_id) {
  std::vector<std::uint8_t> buf;
  encode_hello(request_id, buf);
  return buf;
}

Frame decode_ok(const std::vector<std::uint8_t>& buf) {
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus status = decode_frame(buf, frame, consumed);
  EXPECT_EQ(status, DecodeStatus::Ok) << to_string(status);
  EXPECT_EQ(consumed, buf.size());
  return frame;
}

TEST(NetCodec, RoundTripsRequests) {
  {
    const Frame f = decode_ok(one_hello(7));
    EXPECT_EQ(f.opcode, Opcode::Hello);
    EXPECT_EQ(f.request_id, 7u);
    EXPECT_TRUE(f.body.empty());
  }
  {
    std::vector<std::uint8_t> buf;
    encode_point_lookup(0xDEADBEEF, 0x0123456789ABCDEFull, buf);
    const Frame f = decode_ok(buf);
    EXPECT_EQ(f.opcode, Opcode::PointLookup);
    EXPECT_EQ(f.request_id, 0xDEADBEEFu);
    const auto key = decode_point_lookup(f);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, 0x0123456789ABCDEFull);
  }
  {
    std::vector<std::uint8_t> buf;
    encode_top_k(3, serve::TopKMetric::PeakImpact, 25, buf);
    const auto req = decode_top_k(decode_ok(buf));
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->metric, serve::TopKMetric::PeakImpact);
    EXPECT_EQ(req->k, 25u);
  }
  {
    std::vector<std::uint8_t> buf;
    encode_window_scan(9, -5, 1234, buf);
    const auto req = decode_window_scan(decode_ok(buf));
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->day_lo, -5);
    EXPECT_EQ(req->day_hi, 1234);
  }
}

TEST(NetCodec, RoundTripsResponses) {
  {
    HelloResult hello;
    hello.key_count = 12345;
    hello.day_min = -3;
    hello.day_max = 511;
    hello.nsset_count = 777;
    hello.engine_epoch = 42;
    std::vector<std::uint8_t> buf;
    encode_hello_ok(1, hello, buf);
    const auto decoded = decode_hello_ok(decode_ok(buf));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, hello);
  }
  {
    WirePointResult point;
    point.found = true;
    point.summary.nsset = 0xABCDu;
    point.summary.events = 17;
    point.summary.domains_hosted = 99999;
    point.summary.peak_impact = 123.456789;
    point.summary.max_failure_rate = 0.25;
    point.summary.ok = 10;
    point.summary.timeouts = 5;
    point.summary.servfails = 2;
    point.summary.first_day = -1;
    point.summary.last_day = 500;
    point.event_count = 17;
    point.series_len = 31;
    std::vector<std::uint8_t> buf;
    encode_point_ok(2, point, buf);
    const auto decoded = decode_point_ok(decode_ok(buf));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, point);
  }
  {
    const std::vector<serve::TopEntry> rows = {
        {1, 10.5}, {2, -0.0}, {0xFFFFFFFFFFFFFFFFull, 1e300}};
    std::vector<std::uint8_t> buf;
    encode_top_k_ok(3, rows, buf);
    std::vector<serve::TopEntry> decoded;
    ASSERT_TRUE(decode_top_k_ok(decode_ok(buf), decoded));
    EXPECT_EQ(decoded, rows);

    buf.clear();
    encode_top_k_ok(4, {}, buf);  // zero rows is a valid answer
    ASSERT_TRUE(decode_top_k_ok(decode_ok(buf), decoded));
    EXPECT_TRUE(decoded.empty());
  }
  {
    serve::WindowScanResult scan;
    scan.day_lo = -7;
    scan.day_hi = 100;
    scan.events = 12;
    scan.events_with_failures = 6;
    scan.timeouts = 4;
    scan.servfails = 2;
    scan.impaired_10x = 3;
    scan.severe_100x = 1;
    scan.max_peak_impact = 512.125;
    std::vector<std::uint8_t> buf;
    encode_scan_ok(5, scan, buf);
    const auto decoded = decode_scan_ok(decode_ok(buf));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, scan);
  }
  {
    std::vector<std::uint8_t> buf;
    encode_error(6, ErrorCode::BadRequest, "key out of range", buf);
    const auto decoded = decode_error(decode_ok(buf));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->code, ErrorCode::BadRequest);
    EXPECT_EQ(decoded->message, "key out of range");
  }
}

TEST(NetCodec, PipelinedFramesDecodeSequentially) {
  std::vector<std::uint8_t> buf;
  encode_point_lookup(0, 11, buf);
  encode_top_k(1, serve::TopKMetric::Attacks, 5, buf);
  encode_window_scan(2, 0, 9, buf);

  std::span<const std::uint8_t> rest(buf);
  for (std::uint32_t expect_id = 0; expect_id < 3; ++expect_id) {
    Frame frame;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(rest, frame, consumed), DecodeStatus::Ok);
    EXPECT_EQ(frame.request_id, expect_id);
    rest = rest.subspan(consumed);
  }
  EXPECT_TRUE(rest.empty());
}

TEST(NetCodec, EveryTruncatedPrefixAsksForMore) {
  std::vector<std::uint8_t> buf;
  encode_point_lookup(77, 123456, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = decode_frame(
        std::span<const std::uint8_t>(buf.data(), len), frame, consumed);
    EXPECT_EQ(status, DecodeStatus::NeedMore) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(NetCodec, OversizedLengthRejectedBeforeBuffering) {
  // Only the 4-byte length prefix has arrived, announcing a payload past
  // the cap: the decoder must reject NOW, not wait for the bytes.
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
  }
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf, frame, consumed), DecodeStatus::Oversized);
}

TEST(NetCodec, PayloadShorterThanHeaderIsTruncated) {
  std::vector<std::uint8_t> buf = {4, 0, 0, 0, kMagic, kProtocolVersion, 1,
                                   0};
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(buf, frame, consumed), DecodeStatus::Truncated);
}

TEST(NetCodec, CorruptedHeaderBytesGetTypedRejections) {
  const std::vector<std::uint8_t> good = one_hello(1);
  ASSERT_GE(good.size(), 4 + kHeaderBytes);

  struct Case {
    std::size_t offset;  // into the payload header
    std::uint8_t value;
    DecodeStatus expect;
  };
  const Case cases[] = {
      {0, 0x00, DecodeStatus::BadMagic},
      {1, 99, DecodeStatus::BadVersion},
      {2, 0x55, DecodeStatus::BadOpcode},
      {3, 1, DecodeStatus::BadReserved},
  };
  for (const Case& c : cases) {
    std::vector<std::uint8_t> bad = good;
    bad[4 + c.offset] = c.value;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_frame(bad, frame, consumed), c.expect)
        << "offset " << c.offset;
  }
}

// Build a frame whose payload is (header with `op`) + `body`, bypassing
// the typed encoders so tests can hand the decoders broken bodies.
std::vector<std::uint8_t> raw_frame(Opcode op,
                                    const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> buf;
  const std::uint32_t payload =
      static_cast<std::uint32_t>(kHeaderBytes + body.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(payload >> (8 * i)));
  }
  buf.push_back(kMagic);
  buf.push_back(kProtocolVersion);
  buf.push_back(static_cast<std::uint8_t>(op));
  buf.push_back(0);
  for (int i = 0; i < 4; ++i) buf.push_back(0);  // request_id 0
  buf.insert(buf.end(), body.begin(), body.end());
  return buf;
}

TEST(NetCodec, BodyDecodersRejectWrongLengthsAndValues) {
  // PointLookup body must be exactly 8 bytes.
  for (const std::size_t len : {std::size_t{7}, std::size_t{9}}) {
    const auto buf = raw_frame(Opcode::PointLookup,
                               std::vector<std::uint8_t>(len, 0));
    EXPECT_FALSE(decode_point_lookup(decode_ok(buf)).has_value())
        << "body length " << len;
  }
  // TopK: metric must be 0..2 and the pad bytes zero.
  {
    std::vector<std::uint8_t> body = {3, 0, 0, 0, 5, 0, 0, 0};
    EXPECT_FALSE(decode_top_k(decode_ok(raw_frame(Opcode::TopK, body)))
                     .has_value())
        << "metric 3 must be rejected";
    body = {0, 1, 0, 0, 5, 0, 0, 0};
    EXPECT_FALSE(decode_top_k(decode_ok(raw_frame(Opcode::TopK, body)))
                     .has_value())
        << "non-zero pad must be rejected";
  }
  // PointOk: found must be 0/1.
  {
    std::vector<std::uint8_t> good;
    encode_point_ok(0, WirePointResult{}, good);
    Frame f = decode_ok(good);
    std::vector<std::uint8_t> body(f.body.begin(), f.body.end());
    body[0] = 2;
    EXPECT_FALSE(decode_point_ok(decode_ok(raw_frame(Opcode::PointOk, body)))
                     .has_value());
  }
  // TopKOk: row count must match the byte count.
  {
    std::vector<std::uint8_t> body = {2, 0, 0, 0};  // claims 2 rows, has 1
    body.resize(4 + 16, 0);
    std::vector<serve::TopEntry> rows;
    EXPECT_FALSE(
        decode_top_k_ok(decode_ok(raw_frame(Opcode::TopKOk, body)), rows));
  }
  // Error: message length must match the remaining bytes.
  {
    std::vector<std::uint8_t> body = {1, 0, 5, 0, 'a', 'b'};
    EXPECT_FALSE(decode_error(decode_ok(raw_frame(Opcode::Error, body)))
                     .has_value());
  }
  // A decoder handed the wrong opcode's frame declines.
  {
    std::vector<std::uint8_t> buf;
    encode_top_k(0, serve::TopKMetric::Attacks, 5, buf);
    EXPECT_FALSE(decode_point_lookup(decode_ok(buf)).has_value());
    EXPECT_FALSE(decode_window_scan(decode_ok(buf)).has_value());
  }
}

TEST(NetCodec, ErrorMessageClampedToFrameSafeLength) {
  const std::string huge(600, 'x');
  std::vector<std::uint8_t> buf;
  encode_error(0, ErrorCode::Internal, huge, buf);
  const auto decoded = decode_error(decode_ok(buf));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->message.size(), 512u);
}

TEST(NetCodec, FuzzedRandomBuffersNeverCrashOrOverconsume) {
  netsim::Rng rng(0xC0DEC);
  for (int iter = 0; iter < 20000; ++iter) {
    const std::size_t len = rng.uniform_u64(64);
    std::vector<std::uint8_t> buf(len);
    for (std::uint8_t& b : buf) {
      b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    }
    Frame frame;
    std::size_t consumed = 0;
    const DecodeStatus status = decode_frame(buf, frame, consumed);
    if (status == DecodeStatus::Ok) {
      ASSERT_LE(consumed, buf.size());
      // Whatever parsed, the strict body decoders must not read past the
      // span they were given (ASan/val would flag it); they may accept or
      // reject, but must return.
      decode_point_lookup(frame);
      decode_top_k(frame);
      decode_window_scan(frame);
      decode_hello_ok(frame);
      decode_point_ok(frame);
      std::vector<serve::TopEntry> rows;
      decode_top_k_ok(frame, rows);
      decode_scan_ok(frame);
      decode_error(frame);
    } else {
      EXPECT_EQ(consumed, 0u);
    }
  }
}

TEST(NetCodec, FuzzedBitFlipsOnValidFramesNeverCrash) {
  netsim::Rng rng(0xBADC0DE);
  std::vector<std::uint8_t> pristine;
  encode_point_ok(123, WirePointResult{}, pristine);
  const std::vector<serve::TopEntry> rows = {{1, 2.0}, {3, 4.0}};
  encode_top_k_ok(124, rows, pristine);
  encode_error(125, ErrorCode::Malformed, "boom", pristine);

  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::uint8_t> buf = pristine;
    // Flip 1..4 random bytes, sometimes truncate.
    const int flips = 1 + static_cast<int>(rng.uniform_u64(4));
    for (int i = 0; i < flips; ++i) {
      buf[rng.uniform_u64(buf.size())] ^=
          static_cast<std::uint8_t>(1 + rng.uniform_u64(255));
    }
    if (rng.uniform_u64(4) == 0) {
      buf.resize(rng.uniform_u64(buf.size() + 1));
    }
    std::span<const std::uint8_t> rest(buf);
    // Walk frames like the server does until the stream breaks or drains.
    for (;;) {
      Frame frame;
      std::size_t consumed = 0;
      const DecodeStatus status = decode_frame(rest, frame, consumed);
      if (status != DecodeStatus::Ok) break;
      std::vector<serve::TopEntry> rows;
      decode_point_ok(frame);
      decode_top_k_ok(frame, rows);
      decode_error(frame);
      rest = rest.subspan(consumed);
    }
  }
}

}  // namespace
}  // namespace ddos::net
