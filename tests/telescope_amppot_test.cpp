#include "telescope/amppot.h"

#include "telescope/rsdos.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ddos::telescope {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

attack::AttackSpec reflected_attack(std::uint64_t id = 1) {
  attack::AttackSpec spec;
  spec.id = id;
  spec.target = IPv4Addr(9, 9, 9, 9);
  spec.spoof = attack::SpoofType::Reflected;
  spec.start = SimTime(0);
  spec.duration_s = 1800;
  spec.peak_pps = 100e3;
  spec.protocol = attack::Protocol::UDP;
  spec.first_port = 53;
  return spec;
}

TEST(AmpPot, RejectsBadConfig) {
  AmpPotParams p;
  p.honeypots = 0;
  EXPECT_THROW(AmpPotFleet{p}, std::invalid_argument);
  p.honeypots = 100;
  p.reflector_population = 50;
  EXPECT_THROW(AmpPotFleet{p}, std::invalid_argument);
}

TEST(AmpPot, DetectionProbabilityFormula) {
  AmpPotParams p;
  p.honeypots = 48;
  p.reflector_population = 2'000'000;
  const AmpPotFleet fleet(p);
  EXPECT_NEAR(fleet.detection_probability(0), 0.0, 1e-12);
  // 1 - (1 - 48/2M)^6000 ~ 13.4%.
  EXPECT_NEAR(fleet.detection_probability(6000),
              1.0 - std::pow(1.0 - 48.0 / 2e6, 6000.0), 1e-9);
  // A huge reflector draw is essentially always seen.
  EXPECT_GT(fleet.detection_probability(1'000'000), 0.99);
}

TEST(AmpPot, InvisibleToNonReflectedAttacks) {
  const AmpPotFleet fleet(AmpPotParams{});
  netsim::Rng rng(1);
  auto direct = reflected_attack();
  direct.spoof = attack::SpoofType::Direct;
  EXPECT_FALSE(fleet.observe(direct, rng));
  auto random = reflected_attack();
  random.spoof = attack::SpoofType::RandomUniform;
  EXPECT_FALSE(fleet.observe(random, rng));
}

TEST(AmpPot, ObservationCarriesAttackAttributes) {
  AmpPotParams p;
  p.honeypots = 5000;  // big fleet so the draw virtually always hits
  p.mean_reflectors_used = 50000;
  const AmpPotFleet fleet(p);
  netsim::Rng rng(2);
  const auto obs = fleet.observe(reflected_attack(), rng);
  ASSERT_TRUE(obs);
  EXPECT_EQ(obs->victim, IPv4Addr(9, 9, 9, 9));
  EXPECT_EQ(obs->protocol, attack::Protocol::UDP);
  EXPECT_EQ(obs->port, 53);
  EXPECT_GT(obs->honeypots_hit, 0u);
  EXPECT_EQ(obs->duration_s(), 1800);
  // pps estimate within the noise band of the true rate.
  EXPECT_NEAR(obs->estimated_pps, 100e3, 25e3);
}

TEST(AmpPot, ObserveAllRateMatchesFormula) {
  AmpPotParams p;
  p.honeypots = 48;
  p.reflector_population = 2'000'000;
  p.mean_reflectors_used = 6000;
  const AmpPotFleet fleet(p);
  std::vector<attack::AttackSpec> attacks;
  for (std::uint64_t i = 1; i <= 4000; ++i)
    attacks.push_back(reflected_attack(i));
  const auto seen = fleet.observe_all(attacks);
  // Expected detection ~ E over exp-distributed M of 1-(1-h/R)^M; for
  // exponential M with mean m and per-reflector rate q = h/R << 1 this is
  // ~ mq/(1+mq) = 0.144/1.144 ~ 12.6%.
  const double rate = static_cast<double>(seen.size()) / attacks.size();
  EXPECT_GT(rate, 0.07);
  EXPECT_LT(rate, 0.20);
}

TEST(AmpPot, DeterministicAndOrderIndependent) {
  const AmpPotFleet fleet(AmpPotParams{});
  std::vector<attack::AttackSpec> attacks;
  for (std::uint64_t i = 1; i <= 500; ++i)
    attacks.push_back(reflected_attack(i));
  const auto a = fleet.observe_all(attacks);
  std::reverse(attacks.begin(), attacks.end());
  const auto b = fleet.observe_all(attacks);
  EXPECT_EQ(a.size(), b.size());
}

TEST(AmpPot, BiggerFleetSeesMore) {
  std::vector<attack::AttackSpec> attacks;
  for (std::uint64_t i = 1; i <= 2000; ++i)
    attacks.push_back(reflected_attack(i));
  AmpPotParams small;
  small.honeypots = 8;
  AmpPotParams large = small;
  large.honeypots = 512;
  const auto seen_small = AmpPotFleet(small).observe_all(attacks).size();
  const auto seen_large = AmpPotFleet(large).observe_all(attacks).size();
  EXPECT_GT(seen_large, seen_small * 3);
}

TEST(RsdosCsv, RoundTrip) {
  RSDoSRecord rec;
  rec.window = 1234;
  rec.victim = IPv4Addr(1, 2, 3, 4);
  rec.distinct_slash16 = 77;
  rec.protocol = attack::Protocol::UDP;
  rec.first_port = 53;
  rec.unique_ports = 3;
  rec.max_ppm = 123.5;
  rec.packets = 99;
  const auto parsed = RSDoSRecord::from_csv_row(rec.to_csv_row());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->window, rec.window);
  EXPECT_EQ(parsed->victim, rec.victim);
  EXPECT_EQ(parsed->distinct_slash16, rec.distinct_slash16);
  EXPECT_EQ(parsed->protocol, rec.protocol);
  EXPECT_EQ(parsed->first_port, rec.first_port);
  EXPECT_EQ(parsed->unique_ports, rec.unique_ports);
  EXPECT_DOUBLE_EQ(parsed->max_ppm, rec.max_ppm);
  EXPECT_EQ(parsed->packets, rec.packets);
}

TEST(RsdosCsv, RejectsMalformed) {
  EXPECT_FALSE(RSDoSRecord::from_csv_row(""));
  EXPECT_FALSE(RSDoSRecord::from_csv_row("1,2,3"));
  EXPECT_FALSE(RSDoSRecord::from_csv_row("x,1.2.3.4,5,TCP,80,1,10.0,5"));
  EXPECT_FALSE(RSDoSRecord::from_csv_row("1,999.2.3.4,5,TCP,80,1,10.0,5"));
  EXPECT_FALSE(RSDoSRecord::from_csv_row("1,1.2.3.4,5,GRE,80,1,10.0,5"));
  EXPECT_FALSE(RSDoSRecord::from_csv_row("1,1.2.3.4,5,TCP,99999,1,10.0,5"));
}

}  // namespace
}  // namespace ddos::telescope
