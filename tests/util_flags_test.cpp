#include "util/flags.h"

#include <gtest/gtest.h>

namespace ddos::util {
namespace {

FlagParser make_parser() {
  FlagParser flags("test tool");
  flags.add_string("name", "default", "a string");
  flags.add_int("count", 7, "an int");
  flags.add_double("scale", 1.5, "a double");
  flags.add_bool("verbose", "a bool");
  return flags;
}

TEST(Flags, DefaultsApply) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 1.5);
  EXPECT_FALSE(flags.get_bool("verbose"));
}

TEST(Flags, SpaceSeparatedValues) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({"--name", "mil.ru", "--count", "42"}));
  EXPECT_EQ(flags.get_string("name"), "mil.ru");
  EXPECT_EQ(flags.get_int("count"), 42);
}

TEST(Flags, EqualsSyntaxAndBool) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({"--scale=2.25", "--verbose"}));
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 2.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Flags, PositionalArguments) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({"run", "--count", "3", "extra"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "run");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(Flags, UnknownFlagFails) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--bogus", "1"}));
  EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST(Flags, UnknownFlagErrorListsValidFlags) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--prgress"}));  // typo must fail loudly
  const std::string& err = flags.error();
  EXPECT_NE(err.find("unknown flag --prgress"), std::string::npos);
  EXPECT_NE(err.find("valid flags:"), std::string::npos);
  EXPECT_NE(err.find("--count"), std::string::npos);
  EXPECT_NE(err.find("--name"), std::string::npos);
  EXPECT_NE(err.find("--scale"), std::string::npos);
  EXPECT_NE(err.find("--verbose"), std::string::npos);

  // The =value syntax reports the same listing.
  auto flags2 = make_parser();
  EXPECT_FALSE(flags2.parse({"--bogus=3"}));
  EXPECT_NE(flags2.error().find("valid flags:"), std::string::npos);
}

TEST(Flags, MissingValueFails) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--count"}));
  EXPECT_NE(flags.error().find("requires a value"), std::string::npos);
}

TEST(Flags, TypeValidation) {
  auto flags = make_parser();
  EXPECT_FALSE(flags.parse({"--count", "abc"}));
  auto flags2 = make_parser();
  EXPECT_FALSE(flags2.parse({"--scale", "xyz"}));
  auto flags3 = make_parser();
  EXPECT_FALSE(flags3.parse({"--verbose=maybe"}));
  auto flags4 = make_parser();
  EXPECT_TRUE(flags4.parse({"--verbose=true"}));
  EXPECT_TRUE(flags4.get_bool("verbose"));
}

TEST(Flags, HelpRequested) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({"--help"}));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.usage().find("--count"), std::string::npos);
  EXPECT_NE(flags.usage().find("a double"), std::string::npos);
}

TEST(Flags, UintRangeValidation) {
  FlagParser flags("test tool");
  flags.add_uint("threads", 4, "worker threads", 1, 4096);
  ASSERT_TRUE(flags.parse({}));
  EXPECT_EQ(flags.get_uint("threads"), 4u);

  FlagParser ok("test tool");
  ok.add_uint("threads", 4, "worker threads", 1, 4096);
  ASSERT_TRUE(ok.parse({"--threads", "8"}));
  EXPECT_EQ(ok.get_uint("threads"), 8u);

  // Zero is below the range: clear error naming the accepted interval.
  FlagParser zero("test tool");
  zero.add_uint("threads", 4, "worker threads", 1, 4096);
  EXPECT_FALSE(zero.parse({"--threads", "0"}));
  EXPECT_NE(zero.error().find("unsigned integer in [1, 4096]"),
            std::string::npos);

  FlagParser over("test tool");
  over.add_uint("threads", 4, "worker threads", 1, 4096);
  EXPECT_FALSE(over.parse({"--threads", "5000"}));

  FlagParser garbage("test tool");
  garbage.add_uint("threads", 4, "worker threads", 1, 4096);
  EXPECT_FALSE(garbage.parse({"--threads", "lots"}));
  EXPECT_NE(garbage.error().find("got 'lots'"), std::string::npos);

  FlagParser negative("test tool");
  negative.add_uint("threads", 4, "worker threads", 1, 4096);
  EXPECT_FALSE(negative.parse({"--threads", "-2"}));
}

TEST(Flags, NegativeAndScientificNumbers) {
  auto flags = make_parser();
  ASSERT_TRUE(flags.parse({"--scale", "-3e2", "--count", "-5"}));
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), -300.0);
  EXPECT_EQ(flags.get_int("count"), -5);
}

TEST(Flags, EqualsFormParsesEveryType) {
  FlagParser flags("test tool");
  flags.add_string("name", "default", "a string");
  flags.add_int("count", 1, "an int");
  flags.add_uint("threads", 2, "a uint", 1, 64);
  flags.add_double("scale", 1.0, "a double");
  flags.add_bool("verbose", "a bool");
  ASSERT_TRUE(flags.parse({"--name=run7", "--count=-3", "--threads=8",
                           "--scale=2.5", "--verbose=true"}))
      << flags.error();
  EXPECT_EQ(flags.get_string("name"), "run7");
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_EQ(flags.get_uint("threads"), 8u);
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 2.5);
  EXPECT_TRUE(flags.get_bool("verbose"));

  // The space-separated and = forms are interchangeable per flag.
  FlagParser mixed("test tool");
  mixed.add_uint("interval-ms", 250, "sampling cadence", 10, 60000);
  mixed.add_double("timeout-s", 0.0, "watchdog timeout", 0.0, 86400.0);
  ASSERT_TRUE(mixed.parse({"--interval-ms=50", "--timeout-s", "30"}));
  EXPECT_EQ(mixed.get_uint("interval-ms"), 50u);
  EXPECT_DOUBLE_EQ(mixed.get_double("timeout-s"), 30.0);
}

TEST(Flags, DoubleRangeValidation) {
  const auto make = [] {
    FlagParser flags("test tool");
    flags.add_double("timeout-s", 60.0, "watchdog timeout", 0.0, 86400.0);
    return flags;
  };
  auto defaults = make();
  ASSERT_TRUE(defaults.parse({}));
  EXPECT_DOUBLE_EQ(defaults.get_double("timeout-s"), 60.0);

  auto ok = make();
  ASSERT_TRUE(ok.parse({"--timeout-s=0"}));  // inclusive bounds
  EXPECT_DOUBLE_EQ(ok.get_double("timeout-s"), 0.0);

  // Out of range: the error names the accepted interval.
  auto below = make();
  EXPECT_FALSE(below.parse({"--timeout-s=-1"}));
  EXPECT_NE(below.error().find("in [0.000000, 86400.000000]"),
            std::string::npos)
      << below.error();

  auto above = make();
  EXPECT_FALSE(above.parse({"--timeout-s", "90000"}));

  auto garbage = make();
  EXPECT_FALSE(garbage.parse({"--timeout-s=soon"}));
  EXPECT_NE(garbage.error().find("got 'soon'"), std::string::npos);

  // Unbounded flags still accept any finite number.
  FlagParser unbounded("test tool");
  unbounded.add_double("offset", 0.0, "free range");
  ASSERT_TRUE(unbounded.parse({"--offset=-1e9"}));
  EXPECT_DOUBLE_EQ(unbounded.get_double("offset"), -1e9);
}

}  // namespace
}  // namespace ddos::util
