// Seed-sweep property tests: the paper's headline *shapes* must hold for
// any seed, not just the bench default — otherwise the reproduction would
// be a lucky draw rather than a property of the models.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "scenario/driver.h"

namespace ddos::scenario {
namespace {

class ShapeSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static LongitudinalResult run_for_seed(std::uint64_t seed) {
    LongitudinalConfig cfg = small_longitudinal_config(seed);
    cfg.world.provider_count = 120;
    cfg.world.domain_count = 10000;
    cfg.workload.scale = 120.0;
    return run_longitudinal(cfg);
  }
};

TEST_P(ShapeSweep, HeadlineShapesHold) {
  const auto r = run_for_seed(GetParam());
  const auto& registry = r.world->registry;
  ASSERT_GT(r.joined.size(), 20u);

  // Table 3 shape: DNS share of attacks in the paper's band (±0.5pp).
  const auto totals = core::summary_totals(
      core::monthly_summary(r.events, registry));
  EXPECT_GT(totals.dns_attack_share(), 0.006);
  EXPECT_LT(totals.dns_attack_share(), 0.022);

  // Fig. 6 shape: single-port attacks dominate, mostly TCP.
  const auto ports = core::port_distribution(r.events, registry);
  EXPECT_GT(ports.single_port_share(), 0.7);
  EXPECT_LT(ports.single_port_share(), 0.9);
  EXPECT_GT(ports.by_protocol.fraction("TCP"), 0.85);

  // Fig. 8 shape: a minority of events are impaired; a minority of those
  // severe.
  const auto impacts = core::impact_summary(r.joined);
  EXPECT_LT(impacts.impaired_share(), 0.25);
  if (impacts.impaired_10x > 0) {
    EXPECT_LT(impacts.severe_share_of_impaired(), 0.8);
  }

  // Fig. 9 shape: intensity does not predict impact.
  const auto fig9 = core::intensity_impact_series(r.joined, r.darknet);
  if (fig9.n() >= 30) {
    EXPECT_LT(std::abs(fig9.pearson), 0.5);
  }

  // Fig. 11 shape: full anycast never reaches the severe band and never
  // fails completely.
  for (const auto& ev : r.joined) {
    if (ev.resilience.anycast_class == anycast::AnycastClass::Full) {
      EXPECT_LT(ev.peak_impact, 100.0);
      EXPECT_FALSE(ev.complete_failure());
    }
  }

  // §6.3 shape: failures are a small minority and mostly timeouts.
  const auto failures = core::failure_summary(r.joined);
  EXPECT_LT(failures.failing_event_share(), 0.12);
  if (failures.timeouts + failures.servfails > 10) {
    EXPECT_GT(failures.timeout_share_of_failures(), 0.6);
  }
}

TEST_P(ShapeSweep, JoinAccountingInvariants) {
  const auto r = run_for_seed(GetParam() ^ 0xABCD);
  const auto& s = r.join_stats;
  EXPECT_EQ(s.total_events, r.events.size());
  EXPECT_LE(s.open_resolver_filtered + s.non_dns + s.dns_events,
            s.total_events);
  EXPECT_EQ(s.joined, r.joined.size());
  for (const auto& ev : r.joined) {
    EXPECT_EQ(ev.ok + ev.timeouts + ev.servfails, ev.domains_measured);
    // Each domain is measured once per day, so an event spanning N days
    // can accumulate up to N measurements per hosted domain.
    const auto days_spanned = static_cast<std::uint64_t>(
        (ev.rsdos.end_time() - 1).day() - ev.rsdos.start_time().day() + 1);
    EXPECT_LE(ev.domains_measured, ev.domains_hosted * days_spanned);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSweep, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace ddos::scenario
