#include "core/audit.h"

#include <gtest/gtest.h>

#include "scenario/world.h"

namespace ddos::core {
namespace {

using netsim::IPv4Addr;

struct Fixture {
  dns::DnsRegistry registry;
  anycast::AnycastCensus census;
  topology::PrefixTable routes;

  Fixture() {
    const auto add_ns = [&](IPv4Addr ip, topology::Asn asn,
                            bool anycast = false) {
      std::vector<dns::Site> sites;
      sites.push_back(dns::Site{"a", 50e3, 20.0, 1.0});
      if (anycast) sites.push_back(dns::Site{"b", 50e3, 20.0, 1.0});
      registry.add_nameserver(dns::Nameserver(ip, std::move(sites)));
      routes.announce(netsim::Prefix(ip, 24), asn);
    };
    add_ns(IPv4Addr(10, 0, 0, 1), 100);
    add_ns(IPv4Addr(10, 0, 0, 2), 100);   // same /24, same ASN
    add_ns(IPv4Addr(10, 0, 1, 1), 100);   // second /24, same ASN
    add_ns(IPv4Addr(20, 0, 0, 1), 200);   // second ASN
    add_ns(IPv4Addr(30, 0, 0, 1), 300, true);  // anycast
    add_ns(IPv4Addr(30, 0, 1, 1), 300, true);
    registry.add_nameserver(
        dns::Nameserver(IPv4Addr(8, 8, 8, 8), {dns::Site{"x", 1e6, 10.0, 1.0}}));
    registry.mark_open_resolver(IPv4Addr(8, 8, 8, 8));
    routes.announce(netsim::Prefix(IPv4Addr(8, 8, 8, 8), 24), 15169);
    routes.announce(netsim::Prefix(IPv4Addr(66, 0, 0, 0), 24), 666);

    anycast::CensusSnapshot snap;
    snap.taken_day = 0;
    snap.anycast_slash24.insert(IPv4Addr(30, 0, 0, 0));
    snap.anycast_slash24.insert(IPv4Addr(30, 0, 1, 0));
    census.add_snapshot(std::move(snap));
  }

  DelegationAuditor auditor() const {
    return DelegationAuditor(registry, census, routes);
  }
};

bool has_issue(const std::vector<DelegationIssue>& issues,
               DelegationIssue issue) {
  return std::find(issues.begin(), issues.end(), issue) != issues.end();
}

TEST(Audit, HealthyDelegationIsClean) {
  Fixture fx;
  const auto d = fx.registry.add_domain(
      dns::DomainName::must("ok.com"),
      {IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 1, 1), IPv4Addr(20, 0, 0, 1)});
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_TRUE(issues.empty());
}

TEST(Audit, SingleNameserverFlagged) {
  Fixture fx;
  const auto d = fx.registry.add_domain(dns::DomainName::must("solo.com"),
                                        {IPv4Addr(10, 0, 0, 1)});
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_TRUE(has_issue(issues, DelegationIssue::SingleNameserver));
  // With one NS, /24 and ASN flags are not separately reported.
  EXPECT_FALSE(has_issue(issues, DelegationIssue::SingleSlash24));
}

TEST(Audit, MilRuAntiPatternFlagged) {
  Fixture fx;
  const auto d = fx.registry.add_domain(
      dns::DomainName::must("mil.example"),
      {IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 0, 2)});
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_TRUE(has_issue(issues, DelegationIssue::SingleSlash24));
  EXPECT_TRUE(has_issue(issues, DelegationIssue::SingleAsn));
}

TEST(Audit, PrefixDiverseSingleAsnFlagsOnlyAsn) {
  Fixture fx;
  const auto d = fx.registry.add_domain(
      dns::DomainName::must("rzd.example"),
      {IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 1, 1)});
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_FALSE(has_issue(issues, DelegationIssue::SingleSlash24));
  EXPECT_TRUE(has_issue(issues, DelegationIssue::SingleAsn));
}

TEST(Audit, LameNameserverFlagged) {
  Fixture fx;
  const auto d = fx.registry.add_domain(
      dns::DomainName::must("stale.com"),
      {IPv4Addr(10, 0, 0, 1), IPv4Addr(66, 0, 0, 9)});  // no server at 66.x
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_TRUE(has_issue(issues, DelegationIssue::LameNameserver));
}

TEST(Audit, OpenResolverFlagged) {
  Fixture fx;
  const auto d = fx.registry.add_domain(
      dns::DomainName::must("misconfig.com"),
      {IPv4Addr(8, 8, 8, 8), IPv4Addr(10, 0, 0, 1)});
  const auto issues = fx.auditor().audit_domain(d, 0);
  EXPECT_TRUE(has_issue(issues, DelegationIssue::OpenResolverAsNs));
}

TEST(Audit, SummaryCountsAndAdoption) {
  Fixture fx;
  fx.registry.add_domain(dns::DomainName::must("solo.com"),
                         {IPv4Addr(10, 0, 0, 1)});
  fx.registry.add_domain(
      dns::DomainName::must("anycast.com"),
      {IPv4Addr(30, 0, 0, 1), IPv4Addr(30, 0, 1, 1)});
  fx.registry.add_domain(
      dns::DomainName::must("partial.com"),
      {IPv4Addr(30, 0, 0, 1), IPv4Addr(10, 0, 0, 1)});
  fx.registry.add_domain(
      dns::DomainName::must("diverse.com"),
      {IPv4Addr(10, 0, 0, 1), IPv4Addr(20, 0, 0, 1)});
  std::vector<DelegationFinding> findings;
  const auto summary = fx.auditor().audit_all(0, &findings);
  EXPECT_EQ(summary.domains, 4u);
  EXPECT_EQ(summary.single_ns, 1u);
  EXPECT_EQ(summary.full_anycast, 1u);
  EXPECT_EQ(summary.partial_anycast, 1u);
  EXPECT_EQ(summary.multi_asn, 2u);  // partial.com (300/100) + diverse.com
  EXPECT_EQ(summary.multi_prefix, 3u);
  EXPECT_FALSE(findings.empty());
  EXPECT_DOUBLE_EQ(summary.share(summary.single_ns), 0.25);
}

TEST(Audit, IssueNames) {
  EXPECT_STREQ(to_string(DelegationIssue::SingleNameserver),
               "single-nameserver");
  EXPECT_STREQ(to_string(DelegationIssue::LameNameserver),
               "lame-nameserver");
  EXPECT_STREQ(to_string(DelegationIssue::OpenResolverAsNs),
               "open-resolver-as-ns");
}

TEST(Audit, SyntheticWorldPlantsFindableMisconfigurations) {
  scenario::WorldParams params = scenario::small_world_params(23);
  params.domain_count = 6000;
  params.provider_count = 80;
  const auto world = scenario::build_world(params);
  const DelegationAuditor auditor(world->registry, world->census,
                                  world->routes);
  const auto summary = auditor.audit_all(100);
  EXPECT_EQ(summary.domains, 6000u);
  EXPECT_GT(summary.single_ns, 20u);            // ~1.5% planted
  EXPECT_GT(summary.with_lame_ns, 5u);          // ~0.4% planted
  EXPECT_GT(summary.with_open_resolver_ns, 5u); // misconfig knob
  EXPECT_GT(summary.full_anycast, summary.domains / 5);  // adoption skew
  EXPECT_GT(summary.multi_prefix, summary.domains / 3);
}

}  // namespace
}  // namespace ddos::core
