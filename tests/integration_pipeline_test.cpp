// End-to-end integration: the full longitudinal pipeline at test scale,
// asserting cross-module invariants that no unit test can see.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/analysis.h"
#include "scenario/driver.h"

namespace ddos::scenario {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    LongitudinalConfig cfg = small_longitudinal_config(21);
    cfg.world.provider_count = 100;
    cfg.world.domain_count = 6000;
    cfg.workload.scale = 150.0;
    result_ = new LongitudinalResult(run_longitudinal(cfg));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static LongitudinalResult* result_;
};

LongitudinalResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ProducesEventsAndJoins) {
  EXPECT_GT(result_->events.size(), 1000u);
  EXPECT_GT(result_->joined.size(), 10u);
  EXPECT_GT(result_->swept_measurements, 1000u);
}

TEST_F(PipelineTest, JoinStatsAreConsistent) {
  const auto& s = result_->join_stats;
  EXPECT_EQ(s.total_events, result_->events.size());
  EXPECT_EQ(s.joined, result_->joined.size());
  EXPECT_LE(s.dns_events, s.total_events);
  EXPECT_LE(s.open_resolver_filtered + s.non_dns + s.dns_events,
            s.total_events);
}

TEST_F(PipelineTest, EveryJoinedEventIsWellFormed) {
  for (const auto& ev : result_->joined) {
    EXPECT_GE(ev.domains_measured, 5u);  // the §6.3 floor
    EXPECT_GT(ev.domains_hosted, 0u);
    EXPECT_GT(ev.baseline_rtt_ms, 0.0);
    EXPECT_GE(ev.peak_impact, 0.0);
    EXPECT_EQ(ev.ok + ev.timeouts + ev.servfails, ev.domains_measured);
    EXPECT_GE(ev.failure_rate, 0.0);
    EXPECT_LE(ev.failure_rate, 1.0);
    EXPECT_GE(ev.duration_s(), netsim::kSecondsPerWindow);
    EXPECT_FALSE(ev.resilience.org.empty());
    EXPECT_GE(ev.resilience.distinct_slash24, 1u);
    // Victims must be nameserver IPs and never open resolvers.
    EXPECT_TRUE(result_->world->registry.is_ns_ip(ev.rsdos.victim));
    EXPECT_FALSE(result_->world->registry.is_open_resolver(ev.rsdos.victim));
  }
}

TEST_F(PipelineTest, MergedEventsAreDisjointPerNsset) {
  std::map<dns::NssetId, netsim::WindowIndex> last_end;
  auto sorted = result_->joined;
  std::sort(sorted.begin(), sorted.end(),
            [](const core::NssetAttackEvent& a,
               const core::NssetAttackEvent& b) {
              if (a.nsset != b.nsset) return a.nsset < b.nsset;
              return a.rsdos.start_window < b.rsdos.start_window;
            });
  for (const auto& ev : sorted) {
    const auto it = last_end.find(ev.nsset);
    if (it != last_end.end()) {
      EXPECT_GT(ev.rsdos.start_window, it->second)
          << "overlapping merged events on nsset " << ev.nsset;
    }
    last_end[ev.nsset] = ev.rsdos.end_window;
  }
}

TEST_F(PipelineTest, TelescopeOnlySeesRandomSpoofedAttacks) {
  // Every stitched event's victim must correspond to at least one visible
  // attack in the schedule; invisible vectors alone never produce events.
  std::unordered_set<netsim::IPv4Addr> visible_targets;
  for (const auto& a : result_->workload.schedule.attacks()) {
    if (a.spoof == attack::SpoofType::RandomUniform)
      visible_targets.insert(a.target);
  }
  for (const auto& ev : result_->events) {
    EXPECT_TRUE(visible_targets.contains(ev.victim))
        << ev.victim.to_string();
  }
}

TEST_F(PipelineTest, AnycastNeverSuffersSevereImpact) {
  for (const auto& ev : result_->joined) {
    if (ev.resilience.anycast_class == anycast::AnycastClass::Full) {
      EXPECT_LT(ev.peak_impact, 100.0)
          << "Fig. 11: no anycast deployment at 100x";
      EXPECT_FALSE(ev.complete_failure());
    }
  }
}

TEST_F(PipelineTest, CompleteFailuresAreUnicastSingleAsn) {
  const auto attr = core::failure_attribution(result_->joined);
  if (attr.complete_failures > 0) {
    EXPECT_GT(attr.single_asn_share(), 0.5);
    EXPECT_GT(attr.unicast_share(), 0.5);
  }
}

TEST_F(PipelineTest, IntensityDoesNotPredictImpact) {
  const auto series =
      core::intensity_impact_series(result_->joined, result_->darknet);
  if (series.n() >= 20) {
    EXPECT_LT(std::abs(series.pearson), 0.5);  // Fig. 9's key takeaway
  }
}

TEST_F(PipelineTest, MonthlySummaryCoversSeventeenMonths) {
  const auto rows =
      core::monthly_summary(result_->events, result_->world->registry);
  EXPECT_GE(rows.size(), 15u);  // sampling may leave a thin month empty
  EXPECT_LE(rows.size(), 17u);
  const auto totals = core::summary_totals(rows);
  EXPECT_EQ(totals.total_attacks(), result_->events.size());
  EXPECT_GT(totals.dns_attack_share(), 0.003);
  EXPECT_LT(totals.dns_attack_share(), 0.05);
}

TEST_F(PipelineTest, SparseSweepOnlyTouchesAttackAdjacentState) {
  // The retention predicates must have kept window aggregates only inside
  // inferred attack windows of NSSets containing a victim.
  EXPECT_GT(result_->store.window_entries(), 0u);
  EXPECT_GT(result_->store.daily_entries(), 0u);
  // Memory sanity: far fewer entries than a full 17-month dense sweep.
  EXPECT_LT(result_->store.window_entries(), 500000u);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  LongitudinalConfig cfg = small_longitudinal_config(21);
  cfg.world.provider_count = 100;
  cfg.world.domain_count = 6000;
  cfg.workload.scale = 150.0;
  const auto again = run_longitudinal(cfg);
  EXPECT_EQ(again.events.size(), result_->events.size());
  ASSERT_EQ(again.joined.size(), result_->joined.size());
  for (std::size_t i = 0; i < again.joined.size(); ++i) {
    EXPECT_EQ(again.joined[i].nsset, result_->joined[i].nsset);
    EXPECT_DOUBLE_EQ(again.joined[i].peak_impact,
                     result_->joined[i].peak_impact);
    EXPECT_EQ(again.joined[i].domains_measured,
              result_->joined[i].domains_measured);
  }
}

}  // namespace
}  // namespace ddos::scenario
