// Columnar kernel parity: every core/columnar.h kernel must be
// bit-identical to its row fold from core/analysis.h when run over the
// column spans of a saved run — at any thread count (the threads2/8
// ctest variants re-run this binary under DDOSREPRO_THREADS). Also pins
// frame_equals_events (the columnar --rejoin assertion) positive and
// negative, and the monthly rollup against its row reference.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/columnar.h"
#include "scenario/driver.h"
#include "store/reader.h"
#include "store/scan.h"

namespace ddos::core {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

// One saved small run shared by every case in this process.
class ColumnarParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(temp_path("columnar_parity.drs"));
    config_ = new scenario::LongitudinalConfig(
        scenario::small_longitudinal_config(33));
    result_ = new scenario::LongitudinalResult(
        scenario::run_longitudinal(*config_));
    scenario::save_run(*path_, *config_, 1, *result_);
    reader_ = new store::Reader(*path_, store::ReadMode::Mapped);
    arena_ = new store::ColumnArena;
    frame_ = new EventFrame(store::read_event_frame(*reader_, *arena_));
  }
  static void TearDownTestSuite() {
    delete frame_;
    delete arena_;
    delete reader_;
    std::filesystem::remove(*path_);
    delete result_;
    delete config_;
    delete path_;
  }

  static std::string* path_;
  static scenario::LongitudinalConfig* config_;
  static scenario::LongitudinalResult* result_;
  static store::Reader* reader_;
  static store::ColumnArena* arena_;
  static EventFrame* frame_;
};

std::string* ColumnarParity::path_ = nullptr;
scenario::LongitudinalConfig* ColumnarParity::config_ = nullptr;
scenario::LongitudinalResult* ColumnarParity::result_ = nullptr;
store::Reader* ColumnarParity::reader_ = nullptr;
store::ColumnArena* ColumnarParity::arena_ = nullptr;
EventFrame* ColumnarParity::frame_ = nullptr;

TEST_F(ColumnarParity, FrameMatchesRows) {
  ASSERT_GT(frame_->rows, 0u) << "small run produced no joined events";
  EXPECT_EQ(frame_->rows, result_->joined.size());
  EXPECT_TRUE(frame_equals_events(*frame_, result_->joined));
}

TEST_F(ColumnarParity, FrameEqualityIsFieldExact) {
  // A single mutated field in a single row must be caught.
  auto mutated = result_->joined;
  ASSERT_FALSE(mutated.empty());
  mutated.back().timeouts += 1;
  EXPECT_FALSE(frame_equals_events(*frame_, mutated));
  // So must a length mismatch.
  mutated = result_->joined;
  mutated.pop_back();
  EXPECT_FALSE(frame_equals_events(*frame_, mutated));
}

TEST_F(ColumnarParity, ImpactSummaryBitIdentical) {
  const ImpactSummary row = impact_summary(result_->joined);
  const ImpactSummary col = impact_summary_columnar(*frame_);
  EXPECT_EQ(col.events, row.events);
  EXPECT_EQ(col.impaired_10x, row.impaired_10x);
  EXPECT_EQ(col.severe_100x, row.severe_100x);
}

TEST_F(ColumnarParity, FailureSummaryBitIdentical) {
  const FailureSummary row = failure_summary(result_->joined);
  const FailureSummary col = failure_summary_columnar(*frame_);
  EXPECT_EQ(col.events, row.events);
  EXPECT_EQ(col.events_with_failures, row.events_with_failures);
  EXPECT_EQ(col.timeouts, row.timeouts);
  EXPECT_EQ(col.servfails, row.servfails);
  EXPECT_EQ(col.failed_event_ports.total(), row.failed_event_ports.total());
  for (const char* bucket : {"80", "53", "443", "other"}) {
    EXPECT_EQ(col.failed_event_ports.count(bucket),
              row.failed_event_ports.count(bucket))
        << bucket;
  }
}

TEST_F(ColumnarParity, DurationSeriesBitIdentical) {
  const CorrelationSeries row = duration_impact_series(result_->joined);
  const CorrelationSeries col = duration_impact_series_columnar(*frame_);
  // Element order matters (ordered reduction): compare the raw vectors
  // with exact double equality, then the derived statistics.
  ASSERT_EQ(col.x.size(), row.x.size());
  for (std::size_t i = 0; i < row.x.size(); ++i) {
    EXPECT_EQ(col.x[i], row.x[i]) << i;
    EXPECT_EQ(col.y[i], row.y[i]) << i;
  }
  EXPECT_EQ(col.pearson, row.pearson);
  EXPECT_EQ(col.spearman, row.spearman);
}

TEST_F(ColumnarParity, AnycastGroupsBitIdentical) {
  const auto row = impact_by_anycast(result_->joined);
  const auto col = impact_by_anycast_columnar(*frame_);
  ASSERT_EQ(col.size(), row.size());
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(col[i].group, row[i].group);
    EXPECT_EQ(col[i].events, row[i].events);
    EXPECT_EQ(col[i].median_impact, row[i].median_impact);
    EXPECT_EQ(col[i].p90_impact, row[i].p90_impact);
    EXPECT_EQ(col[i].max_impact, row[i].max_impact);
    EXPECT_EQ(col[i].impaired_10x, row[i].impaired_10x);
    EXPECT_EQ(col[i].severe_100x, row[i].severe_100x);
    EXPECT_EQ(col[i].events_with_failures, row[i].events_with_failures);
    EXPECT_EQ(col[i].complete_failures, row[i].complete_failures);
  }
}

TEST_F(ColumnarParity, MonthlyRollupMatchesRowReference) {
  const auto row = monthly_joined_summary(result_->joined);
  const auto col = monthly_joined_summary_columnar(*frame_);
  ASSERT_EQ(col.size(), row.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(col[i].year, row[i].year);
    EXPECT_EQ(col[i].month, row[i].month);
    EXPECT_EQ(col[i].events, row[i].events);
    EXPECT_EQ(col[i].impaired_10x, row[i].impaired_10x);
    EXPECT_EQ(col[i].severe_100x, row[i].severe_100x);
    EXPECT_EQ(col[i].events_with_failures, row[i].events_with_failures);
    total += col[i].events;
  }
  EXPECT_EQ(total, frame_->rows);  // every event lands in exactly one month
}

TEST_F(ColumnarParity, AnalyzeStoreMatchesRowAnalyses) {
  const scenario::StoreAnalysis analysis = scenario::analyze_store(*path_);
  EXPECT_EQ(analysis.joined, result_->joined.size());
  const ImpactSummary impact = impact_summary(result_->joined);
  EXPECT_EQ(analysis.impact.events, impact.events);
  EXPECT_EQ(analysis.impact.impaired_10x, impact.impaired_10x);
  EXPECT_EQ(analysis.impact.severe_100x, impact.severe_100x);
  const FailureSummary failures = failure_summary(result_->joined);
  EXPECT_EQ(analysis.failures.events_with_failures,
            failures.events_with_failures);
  EXPECT_EQ(analysis.duration_series.pearson,
            duration_impact_series(result_->joined).pearson);
  EXPECT_EQ(analysis.by_anycast.size(),
            impact_by_anycast(result_->joined).size());
  EXPECT_TRUE(analysis.mapped);
}

}  // namespace
}  // namespace ddos::core
