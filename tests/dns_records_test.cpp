#include "dns/records.h"

#include <gtest/gtest.h>

namespace ddos::dns {
namespace {

using netsim::IPv4Addr;

TEST(RRType, ToString) {
  EXPECT_EQ(to_string(RRType::A), "A");
  EXPECT_EQ(to_string(RRType::NS), "NS");
  EXPECT_EQ(to_string(RRType::AAAA), "AAAA");
}

TEST(ResponseStatus, ToString) {
  EXPECT_EQ(to_string(ResponseStatus::Ok), "OK");
  EXPECT_EQ(to_string(ResponseStatus::ServFail), "SERVFAIL");
  EXPECT_EQ(to_string(ResponseStatus::Timeout), "TIMEOUT");
  EXPECT_EQ(to_string(ResponseStatus::NxDomain), "NXDOMAIN");
}

TEST(Zone, AddAndFind) {
  Zone zone(DomainName::must("example.com"));
  zone.add(ResourceRecord{DomainName::must("example.com"), RRType::NS, 3600,
                          "ns1.example.com"});
  zone.add(ResourceRecord{DomainName::must("example.com"), RRType::NS, 3600,
                          "ns2.example.com"});
  zone.add(ResourceRecord{DomainName::must("ns1.example.com"), RRType::A,
                          3600, "192.0.2.1"});
  const auto ns = zone.find(DomainName::must("example.com"), RRType::NS);
  EXPECT_EQ(ns.size(), 2u);
  const auto a = zone.find(DomainName::must("ns1.example.com"), RRType::A);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].rdata, "192.0.2.1");
  EXPECT_TRUE(zone.find(DomainName::must("other.com"), RRType::A).empty());
  EXPECT_EQ(zone.size(), 3u);
  EXPECT_EQ(zone.apex().str(), "example.com");
}

TEST(NSSetKey, DeduplicatesAndSorts) {
  const auto key = NSSetKey::from_ips(
      {IPv4Addr(2, 2, 2, 2), IPv4Addr(1, 1, 1, 1), IPv4Addr(2, 2, 2, 2)});
  ASSERT_EQ(key.ips.size(), 2u);
  EXPECT_EQ(key.ips[0], IPv4Addr(1, 1, 1, 1));
  EXPECT_EQ(key.ips[1], IPv4Addr(2, 2, 2, 2));
}

TEST(NSSetKey, OrderInsensitiveEquality) {
  const auto a = NSSetKey::from_ips({IPv4Addr(1, 0, 0, 1), IPv4Addr(2, 0, 0, 2)});
  const auto b = NSSetKey::from_ips({IPv4Addr(2, 0, 0, 2), IPv4Addr(1, 0, 0, 1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<NSSetKey>{}(a), std::hash<NSSetKey>{}(b));
}

TEST(NSSetKey, DifferentSetsDiffer) {
  const auto a = NSSetKey::from_ips({IPv4Addr(1, 0, 0, 1)});
  const auto b = NSSetKey::from_ips({IPv4Addr(1, 0, 0, 2)});
  EXPECT_NE(a, b);
}

TEST(NSSetKey, StringForm) {
  const auto key = NSSetKey::from_ips({IPv4Addr(8, 8, 8, 8), IPv4Addr(1, 1, 1, 1)});
  EXPECT_EQ(key.to_string(), "1.1.1.1|8.8.8.8");
  EXPECT_EQ(NSSetKey{}.to_string(), "");
}

}  // namespace
}  // namespace ddos::dns
