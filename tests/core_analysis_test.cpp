#include "core/analysis.h"

#include <gtest/gtest.h>

namespace ddos::core {
namespace {

using netsim::IPv4Addr;

telescope::RSDoSEvent event_on(IPv4Addr victim, netsim::DayIndex day,
                               int windows = 3,
                               attack::Protocol proto = attack::Protocol::TCP,
                               std::uint16_t port = 80,
                               std::uint16_t unique_ports = 1) {
  telescope::RSDoSEvent ev;
  ev.victim = victim;
  ev.start_window = day * netsim::kWindowsPerDay;
  ev.end_window = ev.start_window + windows - 1;
  ev.protocol = proto;
  ev.first_port = port;
  ev.max_unique_ports = unique_ports;
  ev.max_ppm = 100.0;
  return ev;
}

dns::DnsRegistry registry_with_ns(std::vector<IPv4Addr> ns_ips,
                                  int domains_per_set = 3) {
  dns::DnsRegistry reg;
  int d = 0;
  for (const auto& ip : ns_ips) {
    for (int i = 0; i < domains_per_set; ++i) {
      reg.add_domain(dns::DomainName::must("d" + std::to_string(d++) + ".com"),
                     {ip});
    }
  }
  return reg;
}

TEST(MonthlySummary, ClassifiesAndCountsUniqueIps) {
  auto reg = registry_with_ns({IPv4Addr(10, 0, 0, 1)});
  const std::vector<telescope::RSDoSEvent> events = {
      event_on(IPv4Addr(10, 0, 0, 1), 5),    // Nov 2020, DNS
      event_on(IPv4Addr(10, 0, 0, 1), 6),    // Nov 2020, DNS (same IP)
      event_on(IPv4Addr(99, 0, 0, 1), 5),    // Nov 2020, other
      event_on(IPv4Addr(10, 0, 0, 1), 40),   // Dec 2020, DNS
  };
  const auto rows = monthly_summary(events, reg);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].year, 2020);
  EXPECT_EQ(rows[0].month, 11);
  EXPECT_EQ(rows[0].dns_attacks, 2u);
  EXPECT_EQ(rows[0].other_attacks, 1u);
  EXPECT_EQ(rows[0].dns_ips, 1u);
  EXPECT_EQ(rows[0].other_ips, 1u);
  EXPECT_NEAR(rows[0].dns_attack_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(rows[1].month, 12);

  const auto totals = summary_totals(rows);
  EXPECT_EQ(totals.dns_attacks, 3u);
  EXPECT_EQ(totals.total_attacks(), 4u);
}

TEST(MonthlySummary, OpenResolversCountAsDnsInTable3) {
  auto reg = registry_with_ns({IPv4Addr(8, 8, 8, 8)});
  reg.mark_open_resolver(IPv4Addr(8, 8, 8, 8));
  const auto rows =
      monthly_summary({event_on(IPv4Addr(8, 8, 8, 8), 5)}, reg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].dns_attacks, 1u);
}

TEST(MonthlyAffected, UnionsDomainsAndTracksLargestBlast) {
  dns::DnsRegistry reg;
  const IPv4Addr big(10, 0, 0, 1), small(10, 0, 0, 2);
  for (int i = 0; i < 10; ++i)
    reg.add_domain(dns::DomainName::must("b" + std::to_string(i) + ".com"),
                   {big});
  reg.add_domain(dns::DomainName::must("s.com"), {small});
  const std::vector<telescope::RSDoSEvent> events = {
      event_on(big, 5), event_on(big, 6), event_on(small, 7)};
  const auto rows = monthly_affected_domains(events, reg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].affected_domains, 11u);  // distinct across the month
  EXPECT_EQ(rows[0].largest_single_event, 10u);
  EXPECT_EQ(rows[0].attacked_ns_ips, 2u);
}

TEST(MonthlyAffected, ExcludesOpenResolvers) {
  auto reg = registry_with_ns({IPv4Addr(8, 8, 8, 8)});
  reg.mark_open_resolver(IPv4Addr(8, 8, 8, 8));
  EXPECT_TRUE(
      monthly_affected_domains({event_on(IPv4Addr(8, 8, 8, 8), 5)}, reg)
          .empty());
}

TEST(TopOrgs, RanksByAttackCount) {
  auto reg = registry_with_ns({IPv4Addr(10, 0, 0, 1), IPv4Addr(20, 0, 0, 1)});
  topology::PrefixTable routes;
  routes.announce(netsim::Prefix(IPv4Addr(10, 0, 0, 0), 24), 1);
  routes.announce(netsim::Prefix(IPv4Addr(20, 0, 0, 0), 24), 2);
  topology::AsRegistry orgs;
  orgs.add(topology::AsInfo{1, "Alpha", "US"});
  orgs.add(topology::AsInfo{2, "Beta", "US"});
  std::vector<telescope::RSDoSEvent> events;
  for (int i = 0; i < 5; ++i) events.push_back(event_on(IPv4Addr(10, 0, 0, 1), i));
  events.push_back(event_on(IPv4Addr(20, 0, 0, 1), 1));
  events.push_back(event_on(IPv4Addr(99, 0, 0, 1), 1));  // non-DNS: ignored
  const auto top = top_attacked_orgs(events, reg, routes, orgs, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].label, "Alpha");
  EXPECT_EQ(top[0].attacks, 5u);
  EXPECT_EQ(top[1].label, "Beta");
}

TEST(TopIps, LabelsResolverVsAuthoritative) {
  auto reg = registry_with_ns({IPv4Addr(10, 0, 0, 1), IPv4Addr(8, 8, 8, 8)});
  reg.mark_open_resolver(IPv4Addr(8, 8, 8, 8));
  std::vector<telescope::RSDoSEvent> events;
  for (int i = 0; i < 3; ++i)
    events.push_back(event_on(IPv4Addr(8, 8, 8, 8), i));
  events.push_back(event_on(IPv4Addr(10, 0, 0, 1), 0));
  const auto top = top_attacked_ips(events, reg, 5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].ip, IPv4Addr(8, 8, 8, 8));
  EXPECT_EQ(top[0].type, "open-resolver");
  EXPECT_EQ(top[1].type, "authoritative-ns");
}

TEST(PortDistribution, BucketsAndShares) {
  auto reg = registry_with_ns({IPv4Addr(10, 0, 0, 1)});
  std::vector<telescope::RSDoSEvent> events = {
      event_on(IPv4Addr(10, 0, 0, 1), 0, 3, attack::Protocol::TCP, 80),
      event_on(IPv4Addr(10, 0, 0, 1), 1, 3, attack::Protocol::TCP, 53),
      event_on(IPv4Addr(10, 0, 0, 1), 2, 3, attack::Protocol::UDP, 53),
      event_on(IPv4Addr(10, 0, 0, 1), 3, 3, attack::Protocol::TCP, 8080),
      event_on(IPv4Addr(10, 0, 0, 1), 4, 3, attack::Protocol::TCP, 80, 9),
  };
  const auto dist = port_distribution(events, reg);
  EXPECT_EQ(dist.total, 5u);
  EXPECT_EQ(dist.single_port, 4u);
  EXPECT_DOUBLE_EQ(dist.single_port_share(), 0.8);
  EXPECT_EQ(dist.by_protocol.count("TCP"), 3u);
  EXPECT_EQ(dist.by_protocol.count("UDP"), 1u);
  EXPECT_EQ(dist.tcp_ports.count("80"), 1u);
  EXPECT_EQ(dist.tcp_ports.count("53"), 1u);
  EXPECT_EQ(dist.tcp_ports.count("other"), 1u);
  EXPECT_EQ(dist.udp_ports.count("53"), 1u);
}

TEST(PortBucket, Mapping) {
  EXPECT_EQ(port_bucket(80), "80");
  EXPECT_EQ(port_bucket(53), "53");
  EXPECT_EQ(port_bucket(443), "443");
  EXPECT_EQ(port_bucket(8080), "other");
}

NssetAttackEvent make_event(double peak_impact, std::uint32_t timeouts,
                            std::uint32_t servfails, std::uint32_t ok,
                            std::uint64_t hosted = 100,
                            anycast::AnycastClass ac = anycast::AnycastClass::None,
                            std::uint32_t asns = 1, std::uint32_t prefixes = 1) {
  NssetAttackEvent ev;
  ev.peak_impact = peak_impact;
  ev.timeouts = timeouts;
  ev.servfails = servfails;
  ev.ok = ok;
  ev.domains_measured = timeouts + servfails + ok;
  ev.failure_rate =
      ev.domains_measured
          ? static_cast<double>(timeouts + servfails) / ev.domains_measured
          : 0.0;
  ev.domains_hosted = hosted;
  ev.resilience.anycast_class = ac;
  ev.resilience.distinct_asns = asns;
  ev.resilience.distinct_slash24 = prefixes;
  ev.rsdos.first_port = 53;
  ev.rsdos.start_window = 0;
  ev.rsdos.end_window = 11;  // one hour
  return ev;
}

TEST(FailureSummary, CountsAndShares) {
  const std::vector<NssetAttackEvent> events = {
      make_event(1.0, 0, 0, 10),
      make_event(5.0, 9, 1, 0),
      make_event(2.0, 1, 0, 9),
  };
  const auto s = failure_summary(events);
  EXPECT_EQ(s.events, 3u);
  EXPECT_EQ(s.events_with_failures, 2u);
  EXPECT_EQ(s.timeouts, 10u);
  EXPECT_EQ(s.servfails, 1u);
  EXPECT_NEAR(s.timeout_share_of_failures(), 10.0 / 11.0, 1e-12);
  EXPECT_NEAR(s.failing_event_share(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(s.failed_event_ports.count("53"), 2u);
}

TEST(FailurePoints, OnlyFailingEvents) {
  const std::vector<NssetAttackEvent> events = {
      make_event(1.0, 0, 0, 10),
      make_event(5.0, 5, 0, 5, 1000, anycast::AnycastClass::None),
  };
  const auto pts = failure_points(events);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].domains_measured, 10u);
  EXPECT_DOUBLE_EQ(pts[0].failure_rate, 0.5);
  EXPECT_EQ(pts[0].domains_hosted, 1000u);
  EXPECT_TRUE(pts[0].unicast_only);
}

TEST(ImpactSummary, ThresholdCounts) {
  const std::vector<NssetAttackEvent> events = {
      make_event(1.5, 0, 0, 10), make_event(15.0, 0, 0, 10),
      make_event(150.0, 0, 0, 10)};
  const auto s = impact_summary(events);
  EXPECT_EQ(s.events, 3u);
  EXPECT_EQ(s.impaired_10x, 2u);
  EXPECT_EQ(s.severe_100x, 1u);
  EXPECT_NEAR(s.impaired_share(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.severe_share_of_impaired(), 0.5);
}

TEST(CorrelationSeries, PerfectCorrelationDetected) {
  std::vector<NssetAttackEvent> events;
  for (int i = 1; i <= 20; ++i) {
    auto ev = make_event(static_cast<double>(i), 0, 0, 10);
    ev.rsdos.max_ppm = 100.0 * i;
    events.push_back(ev);
  }
  const auto series =
      intensity_impact_series(events, telescope::Darknet::ucsd_like());
  EXPECT_EQ(series.n(), 20u);
  EXPECT_NEAR(series.pearson, 1.0, 1e-9);
  EXPECT_NEAR(series.spearman, 1.0, 1e-9);
}

TEST(CorrelationSeries, SkipsZeroImpactEvents) {
  const std::vector<NssetAttackEvent> events = {make_event(0.0, 10, 0, 0),
                                                make_event(2.0, 0, 0, 10)};
  const auto series = duration_impact_series(events);
  EXPECT_EQ(series.n(), 1u);
}

TEST(DurationHistogram, Buckets) {
  std::vector<NssetAttackEvent> events;
  auto quick = make_event(1.0, 0, 0, 10);
  quick.rsdos.end_window = 2;  // 15 minutes
  auto hour = make_event(1.0, 0, 0, 10);
  hour.rsdos.end_window = 11;  // 60 minutes
  auto marathon = make_event(1.0, 0, 0, 10);
  marathon.rsdos.end_window = 12 * 19 - 1;  // 19 hours (Contabo)
  events = {quick, hour, marathon};
  const auto hist = duration_mode_histogram(events);
  EXPECT_EQ(hist.count("<=15m"), 1u);
  EXPECT_EQ(hist.count("30-60m"), 1u);
  EXPECT_EQ(hist.count(">12h"), 1u);
}

TEST(GroupImpact, AnycastGrouping) {
  const std::vector<NssetAttackEvent> events = {
      make_event(150.0, 0, 0, 10, 100, anycast::AnycastClass::None),
      make_event(1.2, 0, 0, 10, 100, anycast::AnycastClass::Full),
      make_event(1.4, 0, 0, 10, 100, anycast::AnycastClass::Full),
      make_event(3.0, 0, 0, 10, 100, anycast::AnycastClass::Partial),
  };
  const auto groups = impact_by_anycast(events);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].group, "unicast");
  EXPECT_EQ(groups[0].events, 1u);
  EXPECT_EQ(groups[0].severe_100x, 1u);
  EXPECT_EQ(groups[2].group, "anycast");
  EXPECT_EQ(groups[2].events, 2u);
  EXPECT_EQ(groups[2].severe_100x, 0u);
  EXPECT_NEAR(groups[2].median_impact, 1.3, 1e-12);
}

TEST(GroupImpact, EmptyGroupsStillListed) {
  const auto groups = impact_by_as_diversity({});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].group, "1 ASN");
  EXPECT_EQ(groups[0].events, 0u);
}

TEST(GroupImpact, PrefixDiversityBands) {
  const std::vector<NssetAttackEvent> events = {
      make_event(5.0, 0, 0, 10, 100, anycast::AnycastClass::None, 1, 1),
      make_event(5.0, 0, 0, 10, 100, anycast::AnycastClass::None, 1, 2),
      make_event(5.0, 0, 0, 10, 100, anycast::AnycastClass::None, 1, 5),
  };
  const auto groups = impact_by_prefix_diversity(events);
  EXPECT_EQ(groups[0].events, 1u);
  EXPECT_EQ(groups[1].events, 1u);
  EXPECT_EQ(groups[2].events, 1u);
}

TEST(FailureAttribution, SharesOverCompleteFailures) {
  const std::vector<NssetAttackEvent> events = {
      make_event(0.0, 10, 0, 0, 100, anycast::AnycastClass::None, 1, 1),
      make_event(0.0, 10, 0, 0, 100, anycast::AnycastClass::None, 2, 2),
      make_event(5.0, 1, 0, 9, 100, anycast::AnycastClass::None, 1, 1),
  };
  const auto attr = failure_attribution(events);
  EXPECT_EQ(attr.complete_failures, 2u);  // the partial failure is excluded
  EXPECT_EQ(attr.single_asn, 1u);
  EXPECT_EQ(attr.single_prefix, 1u);
  EXPECT_EQ(attr.unicast, 2u);
  EXPECT_DOUBLE_EQ(attr.single_asn_share(), 0.5);
  EXPECT_DOUBLE_EQ(attr.unicast_share(), 1.0);
}

TEST(TopCompanies, MaxImpactPerOrg) {
  std::vector<NssetAttackEvent> events;
  auto a1 = make_event(50.0, 0, 0, 10);
  a1.resilience.org = "Alpha";
  auto a2 = make_event(348.0, 0, 0, 10);
  a2.resilience.org = "Alpha";
  auto b = make_event(219.0, 0, 0, 10);
  b.resilience.org = "Beta";
  auto anon = make_event(999.0, 0, 0, 10);
  anon.resilience.org = "";  // unattributed: excluded
  events = {a1, a2, b, anon};
  const auto top = top_companies_by_impact(events, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].org, "Alpha");
  EXPECT_DOUBLE_EQ(top[0].max_impact, 348.0);
  EXPECT_EQ(top[1].org, "Beta");
}

}  // namespace
}  // namespace ddos::core
