// Serve/batch parity: every QueryEngine answer must equal a brute-force
// recomputation from the run artifacts — the exact statistics the batch
// `analyze --store` path prints. Also asserts the engine is insensitive
// to which side of a DRS round trip it is built from: a live run and its
// save_run/load_run image answer every query identically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/impact.h"
#include "openintel/storage.h"
#include "scenario/driver.h"
#include "serve/query_engine.h"

namespace ddos::serve {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

class ServeParityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(21);
    result_ = new scenario::LongitudinalResult(
        scenario::run_longitudinal(cfg));
    config_ = new scenario::LongitudinalConfig(cfg);
    engine_ = new QueryEngine(*result_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete config_;
    config_ = nullptr;
    delete result_;
    result_ = nullptr;
  }

  static scenario::LongitudinalResult* result_;
  static scenario::LongitudinalConfig* config_;
  static QueryEngine* engine_;
};

scenario::LongitudinalResult* ServeParityTest::result_ = nullptr;
scenario::LongitudinalConfig* ServeParityTest::config_ = nullptr;
QueryEngine* ServeParityTest::engine_ = nullptr;

TEST_F(ServeParityTest, RunHasEnoughStateToBeWorthServing) {
  ASSERT_FALSE(result_->joined.empty());
  ASSERT_FALSE(result_->events.empty());
  ASSERT_GT(engine_->nsset_count(), 0u);
  ASSERT_GT(engine_->series_points(), 0u);
}

// WindowScan over the full indexed range must reproduce the batch
// headline statistics byte for byte.
TEST_F(ServeParityTest, FullRangeWindowScanMatchesBatchSummaries) {
  const core::ImpactSummary impacts = core::impact_summary(result_->joined);
  const core::FailureSummary failures =
      core::failure_summary(result_->joined);

  const WindowScanResult scan =
      engine_->window_scan(engine_->day_min(), engine_->day_max());
  EXPECT_EQ(scan.events, impacts.events);
  EXPECT_EQ(scan.impaired_10x, impacts.impaired_10x);
  EXPECT_EQ(scan.severe_100x, impacts.severe_100x);
  EXPECT_EQ(scan.events, failures.events);
  EXPECT_EQ(scan.events_with_failures, failures.events_with_failures);
  EXPECT_EQ(scan.timeouts, failures.timeouts);
  EXPECT_EQ(scan.servfails, failures.servfails);
  EXPECT_DOUBLE_EQ(scan.failing_event_share(),
                   failures.failing_event_share());
}

// Splitting the range at every day must tile: the two halves sum to the
// whole (max_peak_impact folds with max).
TEST_F(ServeParityTest, WindowScansTile) {
  const WindowScanResult whole =
      engine_->window_scan(engine_->day_min(), engine_->day_max());
  for (netsim::DayIndex cut = engine_->day_min();
       cut < engine_->day_max(); cut += 7) {
    const WindowScanResult left = engine_->window_scan(engine_->day_min(), cut);
    const WindowScanResult right =
        engine_->window_scan(cut + 1, engine_->day_max());
    EXPECT_EQ(left.events + right.events, whole.events);
    EXPECT_EQ(left.timeouts + right.timeouts, whole.timeouts);
    EXPECT_EQ(left.servfails + right.servfails, whole.servfails);
    EXPECT_EQ(left.impaired_10x + right.impaired_10x, whole.impaired_10x);
    EXPECT_EQ(left.severe_100x + right.severe_100x, whole.severe_100x);
    EXPECT_DOUBLE_EQ(
        std::max(left.max_peak_impact, right.max_peak_impact),
        whole.max_peak_impact);
  }
}

// PointLookup vs a brute-force fold of the joined vector, for every NSSet
// that appears there.
TEST_F(ServeParityTest, PointLookupMatchesBruteForceEventFold) {
  std::map<dns::NssetId, std::vector<std::uint32_t>> expected_indices;
  for (std::uint32_t i = 0; i < result_->joined.size(); ++i) {
    expected_indices[result_->joined[i].nsset].push_back(i);
  }
  ASSERT_FALSE(expected_indices.empty());
  for (const auto& [nsset, indices] : expected_indices) {
    const PointResult r = engine_->point_lookup(nsset);
    ASSERT_TRUE(r.found) << "nsset " << nsset;
    EXPECT_EQ(r.summary.nsset, nsset);
    ASSERT_EQ(r.event_indices.size(), indices.size());
    std::uint32_t events = 0, ok = 0, timeouts = 0, servfails = 0;
    double peak = 0.0, fail_rate = 0.0;
    netsim::DayIndex first = 0, last = 0;
    for (std::size_t j = 0; j < indices.size(); ++j) {
      EXPECT_EQ(r.event_indices[j], indices[j]) << "canonical order";
      const core::NssetAttackEvent& ev = result_->joined[indices[j]];
      const netsim::DayIndex day = ev.rsdos.start_time().day();
      if (events == 0 || day < first) first = day;
      if (events == 0 || day > last) last = day;
      ++events;
      ok += ev.ok;
      timeouts += ev.timeouts;
      servfails += ev.servfails;
      peak = std::max(peak, ev.peak_impact);
      fail_rate = std::max(fail_rate, ev.failure_rate);
    }
    EXPECT_EQ(r.summary.events, events);
    EXPECT_EQ(r.summary.ok, ok);
    EXPECT_EQ(r.summary.timeouts, timeouts);
    EXPECT_EQ(r.summary.servfails, servfails);
    EXPECT_DOUBLE_EQ(r.summary.peak_impact, peak);
    EXPECT_DOUBLE_EQ(r.summary.max_failure_rate, fail_rate);
    EXPECT_EQ(r.summary.first_day, first);
    EXPECT_EQ(r.summary.last_day, last);
  }
}

// PointLookup series vs the store's daily aggregates, for every NSSet in
// the serving key universe (attacked or series-only).
TEST_F(ServeParityTest, PointLookupSeriesMatchesTheStore) {
  std::map<dns::NssetId, std::vector<DayPoint>> expected;
  for (const auto& [key, agg] : result_->store.sorted_daily()) {
    DayPoint p;
    p.day = openintel::MeasurementStore::day_key_day(key);
    p.measured = agg.measured;
    p.avg_rtt_ms = agg.avg_rtt();
    p.failure_rate = agg.failure_rate();
    expected[openintel::MeasurementStore::key_nsset(key)].push_back(p);
  }
  std::size_t total_points = 0;
  for (const dns::NssetId nsset : engine_->keys()) {
    const PointResult r = engine_->point_lookup(nsset);
    ASSERT_TRUE(r.found);
    const auto it = expected.find(nsset);
    const std::size_t want = it == expected.end() ? 0 : it->second.size();
    ASSERT_EQ(r.series.size(), want) << "nsset " << nsset;
    for (std::size_t j = 0; j < want; ++j) {
      EXPECT_EQ(r.series[j], it->second[j]) << "nsset " << nsset
                                            << " point " << j;
    }
    total_points += r.series.size();
  }
  EXPECT_EQ(total_points, engine_->series_points());
  EXPECT_EQ(total_points, result_->store.sorted_daily().size());
}

TEST_F(ServeParityTest, PointLookupMissesCleanly) {
  // The serving universe is dense NssetIds from the registry; an id far
  // past it must miss without touching per-key state.
  const PointResult r = engine_->point_lookup(0x7FFFFFFFu);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.event_indices.empty());
  EXPECT_TRUE(r.series.empty());
}

// TopK(Attacks) vs a brute-force per-victim count over the telescope
// events — the batch "top attacked targets" table.
TEST_F(ServeParityTest, TopKAttacksMatchesBruteForce) {
  std::map<std::uint64_t, std::uint64_t> per_victim;
  for (const auto& ev : result_->events) ++per_victim[ev.victim.value()];
  std::vector<TopEntry> expected;
  for (const auto& [ip, n] : per_victim) {
    expected.push_back({ip, static_cast<double>(n)});
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const TopEntry& a, const TopEntry& b) {
                     return a.value > b.value;
                   });

  std::vector<TopEntry> got;
  const std::size_t n =
      engine_->top_k(TopKMetric::Attacks, expected.size() + 10, got);
  ASSERT_EQ(n, expected.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(got[i], expected[i]) << "row " << i;
  }

  // The k prefix is exactly the head of the full board.
  std::vector<TopEntry> head;
  engine_->top_k(TopKMetric::Attacks, 5, head);
  ASSERT_LE(head.size(), 5u);
  for (std::size_t i = 0; i < head.size(); ++i) {
    EXPECT_EQ(head[i], expected[i]);
  }
}

// TopK(PeakImpact)/TopK(FailureRate) vs brute-force per-NSSet maxima.
TEST_F(ServeParityTest, TopKNssetBoardsMatchBruteForce) {
  std::map<dns::NssetId, double> peak, fail;
  for (const auto& ev : result_->joined) {
    peak[ev.nsset] = std::max(peak[ev.nsset], ev.peak_impact);
    fail[ev.nsset] = std::max(fail[ev.nsset], ev.failure_rate);
  }
  const auto check = [&](TopKMetric metric,
                         const std::map<dns::NssetId, double>& by_key) {
    std::vector<TopEntry> expected;
    for (const auto& [nsset, value] : by_key) {
      expected.push_back({nsset, value});
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const TopEntry& a, const TopEntry& b) {
                       return a.value > b.value;
                     });
    std::vector<TopEntry> got;
    const std::size_t n = engine_->top_k(metric, by_key.size(), got);
    ASSERT_EQ(n, expected.size()) << to_string(metric);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], expected[i]) << to_string(metric) << " row " << i;
    }
  };
  check(TopKMetric::PeakImpact, peak);
  check(TopKMetric::FailureRate, fail);
}

// A DRS round trip must not change a single answer: build a second engine
// from save_run/load_run and compare every query against the live one.
TEST_F(ServeParityTest, StoredRunEngineAnswersIdentically) {
  const std::string path = temp_path("serve-parity.drs");
  ASSERT_GT(scenario::save_run(path, *config_, 1, *result_), 0u);
  const scenario::StoredRun stored = scenario::load_run(path);
  QueryEngine loaded(stored);

  ASSERT_EQ(loaded.nsset_count(), engine_->nsset_count());
  ASSERT_EQ(loaded.series_points(), engine_->series_points());
  ASSERT_EQ(loaded.day_min(), engine_->day_min());
  ASSERT_EQ(loaded.day_max(), engine_->day_max());
  ASSERT_TRUE(std::equal(loaded.keys().begin(), loaded.keys().end(),
                         engine_->keys().begin(), engine_->keys().end()));

  for (const dns::NssetId nsset : engine_->keys()) {
    const PointResult a = engine_->point_lookup(nsset);
    const PointResult b = loaded.point_lookup(nsset);
    ASSERT_EQ(a.found, b.found);
    EXPECT_EQ(a.summary, b.summary) << "nsset " << nsset;
    ASSERT_EQ(a.event_indices.size(), b.event_indices.size());
    EXPECT_TRUE(std::equal(a.event_indices.begin(), a.event_indices.end(),
                           b.event_indices.begin()));
    ASSERT_EQ(a.series.size(), b.series.size());
    EXPECT_TRUE(
        std::equal(a.series.begin(), a.series.end(), b.series.begin()));
  }
  for (const TopKMetric metric :
       {TopKMetric::Attacks, TopKMetric::PeakImpact,
        TopKMetric::FailureRate}) {
    std::vector<TopEntry> a, b;
    engine_->top_k(metric, 1u << 20, a);
    loaded.top_k(metric, 1u << 20, b);
    EXPECT_EQ(a, b) << to_string(metric);
  }
  for (netsim::DayIndex d = engine_->day_min(); d <= engine_->day_max();
       d += 11) {
    EXPECT_EQ(engine_->window_scan(d, d + 30), loaded.window_scan(d, d + 30));
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ddos::serve
