#include "scenario/world.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ddos::scenario {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldParams params = small_world_params(11);
    params.provider_count = 120;
    params.domain_count = 8000;
    world_ = build_world(params).release();
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, PopulationCounts) {
  EXPECT_EQ(world_->registry.domain_count(), 8000u);
  EXPECT_EQ(world_->providers.size(), 120u);
  EXPECT_GT(world_->registry.nsset_count(), 120u);  // multiple plans
  EXPECT_GT(world_->registry.nameserver_count(), 200u);
}

TEST_F(WorldTest, ProviderSizesHeavyTailed) {
  const auto& providers = world_->providers;
  // Rank 0 hosts the most; top provider around 4-8% of the namespace.
  std::uint64_t max_hosted = 0;
  for (const auto& p : providers) max_hosted = std::max(max_hosted, p.domains_hosted);
  EXPECT_EQ(providers[0].domains_hosted, max_hosted);
  const double top_share =
      static_cast<double>(providers[0].domains_hosted) / 8000.0;
  EXPECT_GT(top_share, 0.02);
  EXPECT_LT(top_share, 0.15);
}

TEST_F(WorldTest, FamousOrgsOnTopRanks) {
  EXPECT_EQ(world_->providers[0].name, "Google");
  EXPECT_EQ(world_->providers[1].name, "Unified Layer");
  EXPECT_EQ(world_->providers[2].name, "Cloudflare");
  EXPECT_EQ(world_->provider_index("TransIP"), 11);
}

TEST_F(WorldTest, LargeProvidersRunAnycast) {
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(world_->providers[i].style, DeployStyle::FullAnycast)
        << world_->providers[i].name;
    for (const auto& ip : world_->providers[i].ns_ips) {
      EXPECT_TRUE(world_->registry.nameserver(ip).anycast());
    }
  }
}

TEST_F(WorldTest, CaseOrgsAreUnicast) {
  for (const char* org : {"nic.ru", "Euskaltel", "NForce B.V.", "Contabo"}) {
    const int idx = world_->provider_index(org);
    ASSERT_GE(idx, 0) << org;
    const auto& p = world_->providers[static_cast<std::size_t>(idx)];
    EXPECT_NE(p.style, DeployStyle::FullAnycast) << org;
    EXPECT_NE(p.style, DeployStyle::PartialAnycast) << org;
    EXPECT_GT(p.domains_hosted, 0u) << org;
  }
}

TEST_F(WorldTest, NicRuIsLargerThanNForce) {
  const auto& providers = world_->providers;
  const auto hosted = [&](const char* name) {
    return providers[static_cast<std::size_t>(world_->provider_index(name))]
        .domains_hosted;
  };
  EXPECT_GT(hosted("nic.ru"), hosted("NForce B.V."));
}

TEST_F(WorldTest, EveryNsIpHasRegisteredNameserverAndRoute) {
  const netsim::Prefix lame_pool(netsim::IPv4Addr(70, 0, 0, 0), 24);
  std::size_t lame = 0;
  for (const auto& ip : world_->registry.all_ns_ips()) {
    if (lame_pool.contains(ip)) {
      // Planted lame delegations: routed decommissioned space with no
      // server behind it (Akiwate et al. 2020).
      EXPECT_FALSE(world_->registry.has_nameserver(ip)) << ip.to_string();
      EXPECT_EQ(world_->orgs.org_of(world_->routes.origin_of(ip)),
                "Decommissioned-Hosting");
      ++lame;
      continue;
    }
    EXPECT_TRUE(world_->registry.has_nameserver(ip)) << ip.to_string();
    EXPECT_NE(world_->routes.origin_of(ip), 0u) << ip.to_string();
  }
  EXPECT_GT(lame, 0u);  // the lame share knob plants some
}

TEST_F(WorldTest, PlantedMisconfigurationShares) {
  std::uint64_t single_ns = 0;
  for (dns::DomainId d = 0; d < world_->registry.end_domain(); ++d) {
    const auto& key =
        world_->registry.nsset_key(world_->registry.nsset_of_domain(d));
    if (key.ips.size() == 1 &&
        !world_->registry.is_open_resolver(key.ips[0])) {
      ++single_ns;
    }
  }
  // ~1.5% of domains violate the RFC 1034 two-nameserver minimum.
  EXPECT_GT(single_ns, 8000 * 0.005);
  EXPECT_LT(single_ns, 8000 * 0.04);
}

TEST_F(WorldTest, OrgAttributionResolvesForProviders) {
  for (const auto& p : world_->providers) {
    const topology::Asn asn = world_->routes.origin_of(p.ns_ips.front());
    const std::string org = world_->orgs.org_of(asn);
    EXPECT_FALSE(org.empty()) << p.name;
    if (p.hosted_on.empty()) {
      EXPECT_EQ(org, p.name);
    } else {
      EXPECT_EQ(org, p.hosted_on);  // cloud-hosted: attributed to the cloud
    }
  }
}

TEST_F(WorldTest, OpenResolversRegisteredAndMarked) {
  ASSERT_EQ(world_->open_resolver_ips.size(), 3u);
  for (const auto& ip : world_->open_resolver_ips) {
    EXPECT_TRUE(world_->registry.is_open_resolver(ip));
    EXPECT_TRUE(world_->registry.has_nameserver(ip));
    EXPECT_TRUE(world_->registry.nameserver(ip).anycast());
    EXPECT_GT(world_->registry.domain_count_of_ns_ip(ip), 0u);
  }
  EXPECT_TRUE(
      world_->registry.is_open_resolver(netsim::IPv4Addr(8, 8, 8, 8)));
}

TEST_F(WorldTest, CensusDetectsAnycastProviders) {
  // Google's nameservers should be census-flagged for the paper's window
  // (recall < 1, so check that at least one is).
  int flagged = 0;
  for (const auto& ip : world_->providers[0].ns_ips) {
    if (world_->census.is_anycast(ip, 100)) ++flagged;
  }
  EXPECT_GT(flagged, 0);
  // A unicast case org must never be census-flagged.
  const int nf = world_->provider_index("NForce B.V.");
  for (const auto& ip :
       world_->providers[static_cast<std::size_t>(nf)].ns_ips) {
    EXPECT_FALSE(world_->census.is_anycast(ip, 100));
  }
}

TEST_F(WorldTest, CapacityGrowsWithSize) {
  // Compare the largest and an (order-of-magnitude smaller) mid provider.
  const auto& big = world_->providers[0];
  const auto& small = world_->providers[world_->providers.size() - 1];
  EXPECT_GT(big.site_capacity_pps, small.site_capacity_pps);
}

TEST_F(WorldTest, NonDnsSpaceDisjointFromNsSpace) {
  netsim::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto ip = world_->random_other_ip(rng);
    EXPECT_FALSE(world_->registry.is_ns_ip(ip));
    EXPECT_NE(world_->routes.origin_of(ip), 0u);  // routed space
  }
}

TEST_F(WorldTest, LookupHelpers) {
  EXPECT_EQ(world_->provider_index("Google"), 0);
  EXPECT_EQ(world_->provider_index("NoSuchOrg"), -1);
  EXPECT_NO_THROW(world_->ns_ip_of("Google"));
  EXPECT_THROW(world_->ns_ip_of("NoSuchOrg"), std::out_of_range);
}

TEST(WorldBuild, DeterministicInSeed) {
  WorldParams params = small_world_params(3);
  const auto w1 = build_world(params);
  const auto w2 = build_world(params);
  ASSERT_EQ(w1->providers.size(), w2->providers.size());
  for (std::size_t i = 0; i < w1->providers.size(); ++i) {
    EXPECT_EQ(w1->providers[i].name, w2->providers[i].name);
    EXPECT_EQ(w1->providers[i].domains_hosted, w2->providers[i].domains_hosted);
    EXPECT_EQ(w1->providers[i].ns_ips, w2->providers[i].ns_ips);
    EXPECT_DOUBLE_EQ(w1->providers[i].site_capacity_pps,
                     w2->providers[i].site_capacity_pps);
  }
}

TEST(WorldBuild, RejectsEmptyWorld) {
  WorldParams params;
  params.provider_count = 0;
  EXPECT_THROW(build_world(params), std::invalid_argument);
  params = WorldParams{};
  params.domain_count = 0;
  EXPECT_THROW(build_world(params), std::invalid_argument);
}

TEST(WorldBuild, DomainsDelegateToOwnProviderPlans) {
  WorldParams params = small_world_params(9);
  params.domain_count = 500;
  const auto world = build_world(params);
  // Every domain's NS IPs belong to exactly one provider's pool (or to the
  // open-resolver set for misconfigured ones).
  for (dns::DomainId d = 0; d < world->registry.end_domain(); ++d) {
    const auto& key =
        world->registry.nsset_key(world->registry.nsset_of_domain(d));
    EXPECT_GE(key.ips.size(), 1u);
    EXPECT_LE(key.ips.size(), 4u);
  }
}

}  // namespace
}  // namespace ddos::scenario
