#include "core/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/analysis.h"
#include "scenario/driver.h"

namespace ddos::core {
namespace {

NssetAttackEvent sample_event() {
  NssetAttackEvent ev;
  ev.rsdos.victim = netsim::IPv4Addr(10, 1, 2, 3);
  ev.rsdos.start_window = 1000;
  ev.rsdos.end_window = 1011;
  ev.rsdos.max_ppm = 1234.5;
  ev.nsset = 42;
  ev.domains_hosted = 777;
  ev.domains_measured = 31;
  ev.baseline_rtt_ms = 17.25;
  ev.peak_impact = 123.4;
  ev.mean_impact = 45.6;
  ev.ok = 28;
  ev.timeouts = 2;
  ev.servfails = 1;
  ev.failure_rate = 3.0 / 31.0;
  ev.resilience.anycast_class = anycast::AnycastClass::Partial;
  ev.resilience.distinct_asns = 2;
  ev.resilience.distinct_slash24 = 3;
  ev.resilience.org = "NForce B.V.";
  return ev;
}

TEST(EventsCsv, RoundTripPreservesFields) {
  std::ostringstream out;
  write_events_csv(out, {sample_event()});
  std::istringstream in(out.str());
  const auto events = read_events_csv(in);
  ASSERT_EQ(events.size(), 1u);
  const auto& ev = events[0];
  EXPECT_EQ(ev.rsdos.victim.to_string(), "10.1.2.3");
  EXPECT_EQ(ev.nsset, 42u);
  EXPECT_EQ(ev.rsdos.start_window, 1000);
  EXPECT_EQ(ev.rsdos.end_window, 1011);
  EXPECT_NEAR(ev.rsdos.max_ppm, 1234.5, 1e-3);
  EXPECT_EQ(ev.domains_hosted, 777u);
  EXPECT_EQ(ev.domains_measured, 31u);
  EXPECT_NEAR(ev.baseline_rtt_ms, 17.25, 1e-4);
  EXPECT_NEAR(ev.peak_impact, 123.4, 1e-4);
  EXPECT_NEAR(ev.mean_impact, 45.6, 1e-4);
  EXPECT_EQ(ev.ok, 28u);
  EXPECT_EQ(ev.timeouts, 2u);
  EXPECT_EQ(ev.servfails, 1u);
  EXPECT_NEAR(ev.failure_rate, 3.0 / 31.0, 1e-9);
  EXPECT_EQ(ev.resilience.anycast_class, anycast::AnycastClass::Partial);
  EXPECT_EQ(ev.resilience.distinct_asns, 2u);
  EXPECT_EQ(ev.resilience.distinct_slash24, 3u);
  EXPECT_EQ(ev.resilience.org, "NForce B.V.");
}

TEST(EventsCsv, OrgWithCommaSurvives) {
  auto ev = sample_event();
  ev.resilience.org = "Acme, Inc.";
  std::ostringstream out;
  write_events_csv(out, {ev});
  std::istringstream in(out.str());
  const auto events = read_events_csv(in);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].resilience.org, "Acme, Inc.");
}

TEST(EventsCsv, SkipsMalformedRows) {
  std::istringstream in(events_csv_header() +
                        "\nnot,a,row\n"
                        "999.1.1.1,1,1,1,1,1,1,1,1,1,1,1,1,unicast,1,1,x\n");
  EXPECT_TRUE(read_events_csv(in).empty());
}

TEST(EventsCsv, ReportCountsReadAndSkippedRows) {
  std::ostringstream out;
  write_events_csv(out, {sample_event(), sample_event()});
  // Append one malformed row and a blank line; only the former is a skip.
  std::istringstream in(out.str() + "not,a,row\n\n");
  EventsCsvReport report;
  const auto events = read_events_csv(in, &report);
  EXPECT_EQ(events.size(), 2u);
  EXPECT_EQ(report.rows_read, 2u);
  EXPECT_EQ(report.rows_skipped, 1u);
}

TEST(EventsCsv, ReportIsCleanOnWellFormedInput) {
  std::ostringstream out;
  write_events_csv(out, {sample_event()});
  std::istringstream in(out.str());
  EventsCsvReport report;
  read_events_csv(in, &report);
  EXPECT_EQ(report.rows_read, 1u);
  EXPECT_EQ(report.rows_skipped, 0u);
}

TEST(EventsCsv, PipelineEventsRoundTripAggregates) {
  scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(33);
  cfg.workload.scale = 300.0;
  const auto result = scenario::run_longitudinal(cfg);
  std::ostringstream out;
  write_events_csv(out, result.joined);
  std::istringstream in(out.str());
  const auto events = read_events_csv(in);
  ASSERT_EQ(events.size(), result.joined.size());
  // The figure-level analyses over the re-imported events must agree.
  const auto a = impact_summary(result.joined);
  const auto b = impact_summary(events);
  EXPECT_EQ(a.impaired_10x, b.impaired_10x);
  EXPECT_EQ(a.severe_100x, b.severe_100x);
  const auto fa = failure_summary(result.joined);
  const auto fb = failure_summary(events);
  EXPECT_EQ(fa.timeouts, fb.timeouts);
  EXPECT_EQ(fa.servfails, fb.servfails);
}

TEST(TldBreakdown, CountsDomainsOfAffectedNssets) {
  dns::DnsRegistry reg;
  const netsim::IPv4Addr ns1(10, 0, 0, 1), ns2(10, 0, 0, 2);
  reg.add_domain(dns::DomainName::must("a.nl"), {ns1});
  reg.add_domain(dns::DomainName::must("b.nl"), {ns1});
  reg.add_domain(dns::DomainName::must("c.com"), {ns1});
  reg.add_domain(dns::DomainName::must("other.com"), {ns2});

  NssetAttackEvent ev;
  ev.nsset = reg.nsset_of_domain(0);
  const auto rows = tld_breakdown({ev, ev}, reg);  // duplicate events dedup
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tld, "nl");
  EXPECT_EQ(rows[0].affected_domains, 2u);
  EXPECT_EQ(rows[1].tld, "com");
  EXPECT_EQ(rows[1].affected_domains, 1u);
}

}  // namespace
}  // namespace ddos::core
