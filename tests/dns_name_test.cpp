#include "dns/name.h"

#include <gtest/gtest.h>

namespace ddos::dns {
namespace {

TEST(DomainName, ParseNormalisesCase) {
  const auto d = DomainName::parse("MiL.Ru");
  ASSERT_TRUE(d);
  EXPECT_EQ(d->str(), "mil.ru");
}

TEST(DomainName, ParseStripsTrailingDot) {
  EXPECT_EQ(DomainName::parse("mil.ru.")->str(), "mil.ru");
}

TEST(DomainName, RejectsInvalid) {
  EXPECT_FALSE(DomainName::parse(""));
  EXPECT_FALSE(DomainName::parse("."));
  EXPECT_FALSE(DomainName::parse("a..b"));
  EXPECT_FALSE(DomainName::parse(".leading"));
  EXPECT_FALSE(DomainName::parse("has space.com"));
  EXPECT_FALSE(DomainName::parse("bad!char.com"));
  // Label longer than 63 octets.
  EXPECT_FALSE(DomainName::parse(std::string(64, 'a') + ".com"));
  EXPECT_TRUE(DomainName::parse(std::string(63, 'a') + ".com"));
  // Total longer than 253 octets.
  std::string long_name;
  for (int i = 0; i < 42; ++i) long_name += "abcde.";
  long_name += "toolong";
  EXPECT_FALSE(DomainName::parse(long_name));
}

TEST(DomainName, AcceptsUnderscoreAndDigits) {
  EXPECT_TRUE(DomainName::parse("_dmarc.example.com"));
  EXPECT_TRUE(DomainName::parse("8.8.8.8.in-addr.arpa"));
}

TEST(DomainName, MustThrowsOnInvalid) {
  EXPECT_THROW(DomainName::must("bad name"), std::invalid_argument);
  EXPECT_NO_THROW(DomainName::must("rzd.ru"));
}

TEST(DomainName, Labels) {
  const auto d = DomainName::must("www.mil.ru");
  const auto lbls = d.labels();
  ASSERT_EQ(lbls.size(), 3u);
  EXPECT_EQ(lbls[0], "www");
  EXPECT_EQ(lbls[1], "mil");
  EXPECT_EQ(lbls[2], "ru");
  EXPECT_EQ(d.label_count(), 3u);
  EXPECT_EQ(DomainName::must("com").label_count(), 1u);
}

TEST(DomainName, Tld) {
  EXPECT_EQ(DomainName::must("www.mil.ru").tld(), "ru");
  EXPECT_EQ(DomainName::must("example.nl").tld(), "nl");
  EXPECT_EQ(DomainName::must("localhost").tld(), "localhost");
}

TEST(DomainName, RegisteredDomain) {
  EXPECT_EQ(DomainName::must("www.mil.ru").registered_domain().str(),
            "mil.ru");
  EXPECT_EQ(DomainName::must("a.b.c.example.com").registered_domain().str(),
            "example.com");
  EXPECT_EQ(DomainName::must("mil.ru").registered_domain().str(), "mil.ru");
  EXPECT_EQ(DomainName::must("ru").registered_domain().str(), "ru");
}

TEST(DomainName, SubdomainChecks) {
  const auto mil = DomainName::must("mil.ru");
  EXPECT_TRUE(DomainName::must("www.mil.ru").is_subdomain_of(mil));
  EXPECT_TRUE(mil.is_subdomain_of(mil));
  EXPECT_FALSE(DomainName::must("notmil.ru").is_subdomain_of(mil));
  EXPECT_FALSE(DomainName::must("ru").is_subdomain_of(mil));
}

TEST(DomainName, IdnDetection) {
  // The Cyrillic IDN of mil.ru studied in §5.2.1 is punycode.
  EXPECT_TRUE(DomainName::must("xn--90adear.xn--p1ai").is_idn());
  EXPECT_FALSE(DomainName::must("mil.ru").is_idn());
}

TEST(DomainName, OrderingAndHash) {
  const auto a = DomainName::must("a.com");
  const auto b = DomainName::must("b.com");
  EXPECT_LT(a, b);
  EXPECT_EQ(std::hash<DomainName>{}(a),
            std::hash<DomainName>{}(DomainName::must("A.COM")));
}

}  // namespace
}  // namespace ddos::dns
