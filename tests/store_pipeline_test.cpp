// The generate/analyze acceptance test: run the pipeline once, persist it
// with scenario::save_run, load it back with scenario::load_run, and
// assert the store reproduces the generating run bit-for-bit — feed
// records, sweep aggregates, joined events, headline statistics, and a
// full re-join from the stored aggregates. Also exercises the loud-error
// path on a corrupted store file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/analysis.h"
#include "scenario/driver.h"
#include "store/format.h"

namespace ddos::scenario {
namespace {

// gtest_discover_tests runs every test case of this binary as its own
// ctest entry (its own process), and SetUpTestSuite re-runs in each of
// them — so TempDir() names must be per-process or concurrent ctest -j
// workers race on the same store file.
std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

void expect_stats_equal(const util::RunningStats& a,
                        const util::RunningStats& b) {
  const auto ra = a.raw();
  const auto rb = b.raw();
  EXPECT_EQ(ra.n, rb.n);
  EXPECT_EQ(ra.sum, rb.sum);
  EXPECT_EQ(ra.m, rb.m);
  EXPECT_EQ(ra.m2, rb.m2);
  EXPECT_EQ(ra.min, rb.min);
  EXPECT_EQ(ra.max, rb.max);
}

void expect_aggregates_equal(const openintel::MeasurementStore& a,
                             const openintel::MeasurementStore& b) {
  const auto check =
      [](const std::vector<std::pair<std::uint64_t, openintel::Aggregate>>& x,
         const std::vector<std::pair<std::uint64_t, openintel::Aggregate>>&
             y) {
        ASSERT_EQ(x.size(), y.size());
        for (std::size_t i = 0; i < x.size(); ++i) {
          EXPECT_EQ(x[i].first, y[i].first);
          EXPECT_EQ(x[i].second.measured, y[i].second.measured);
          EXPECT_EQ(x[i].second.ok, y[i].second.ok);
          EXPECT_EQ(x[i].second.timeout, y[i].second.timeout);
          EXPECT_EQ(x[i].second.servfail, y[i].second.servfail);
          expect_stats_equal(x[i].second.rtt, y[i].second.rtt);
        }
      };
  check(a.sorted_daily(), b.sorted_daily());
  check(a.sorted_window(), b.sorted_window());
  EXPECT_EQ(a.sorted_ns_seen(), b.sorted_ns_seen());
  EXPECT_EQ(a.total_measurements(), b.total_measurements());
}

class StorePipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new LongitudinalConfig(small_longitudinal_config(21));
    config_->world.provider_count = 80;
    config_->world.domain_count = 4000;
    config_->workload.scale = 200.0;
    result_ = new LongitudinalResult(run_longitudinal(*config_));
    path_ = new std::string(temp_path("pipeline.drs"));
    save_run(*path_, *config_, /*threads=*/2, *result_);
    loaded_ = new StoredRun(load_run(*path_));
  }
  static void TearDownTestSuite() {
    delete loaded_;
    delete result_;
    delete config_;
    delete path_;
    loaded_ = nullptr;
    result_ = nullptr;
    config_ = nullptr;
    path_ = nullptr;
  }
  static LongitudinalConfig* config_;
  static LongitudinalResult* result_;
  static StoredRun* loaded_;
  static std::string* path_;
};

LongitudinalConfig* StorePipelineTest::config_ = nullptr;
LongitudinalResult* StorePipelineTest::result_ = nullptr;
StoredRun* StorePipelineTest::loaded_ = nullptr;
std::string* StorePipelineTest::path_ = nullptr;

TEST_F(StorePipelineTest, ProvenanceRoundTrips) {
  const LongitudinalConfig& cfg = loaded_->config;
  EXPECT_EQ(cfg.world.seed, config_->world.seed);
  EXPECT_EQ(cfg.world.domain_count, config_->world.domain_count);
  EXPECT_EQ(cfg.world.provider_count, config_->world.provider_count);
  EXPECT_EQ(cfg.world.anycast_recall, config_->world.anycast_recall);
  EXPECT_EQ(cfg.workload.seed, config_->workload.seed);
  EXPECT_EQ(cfg.workload.scale, config_->workload.scale);
  EXPECT_EQ(cfg.sweep_seed, config_->sweep_seed);
  EXPECT_EQ(cfg.feed_seed, config_->feed_seed);
  EXPECT_EQ(loaded_->threads, 2u);
  EXPECT_EQ(loaded_->attacks, result_->workload.schedule.size());
  EXPECT_EQ(loaded_->swept_measurements, result_->swept_measurements);
  EXPECT_EQ(loaded_->join_stats, result_->join_stats);
}

TEST_F(StorePipelineTest, FeedRecordsRoundTripBitForBit) {
  ASSERT_FALSE(result_->feed.records().empty());
  EXPECT_EQ(loaded_->feed.records(), result_->feed.records());
}

TEST_F(StorePipelineTest, StitchedEventsMatchGeneratingRun) {
  ASSERT_FALSE(result_->events.empty());
  EXPECT_EQ(loaded_->events, result_->events);
}

TEST_F(StorePipelineTest, SweepAggregatesRoundTripBitForBit) {
  expect_aggregates_equal(loaded_->store, result_->store);
}

TEST_F(StorePipelineTest, JoinedEventsRoundTripBitForBit) {
  ASSERT_FALSE(result_->joined.empty());
  EXPECT_EQ(loaded_->joined, result_->joined);
}

TEST_F(StorePipelineTest, HeadlineStatisticsMatch) {
  const auto a = core::impact_summary(result_->joined);
  const auto b = core::impact_summary(loaded_->joined);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.impaired_share(), b.impaired_share());
  EXPECT_EQ(a.severe_share_of_impaired(), b.severe_share_of_impaired());
  const auto fa = core::failure_summary(result_->joined);
  const auto fb = core::failure_summary(loaded_->joined);
  EXPECT_EQ(fa.failing_event_share(), fb.failing_event_share());
  EXPECT_EQ(fa.timeout_share_of_failures(), fb.timeout_share_of_failures());
  EXPECT_EQ(core::duration_impact_series(result_->joined).pearson,
            core::duration_impact_series(loaded_->joined).pearson);
}

TEST_F(StorePipelineTest, RejoinReproducesStoredJoin) {
  const RejoinResult rejoin = rejoin_from_store(*loaded_);
  EXPECT_EQ(rejoin.joined, loaded_->joined);
  EXPECT_EQ(rejoin.stats, loaded_->join_stats);
}

TEST_F(StorePipelineTest, CorruptedStoreFailsLoudly) {
  const std::string copy = temp_path("pipeline-corrupt.drs");
  std::filesystem::copy_file(*path_, copy,
                             std::filesystem::copy_options::overwrite_existing);
  {
    // Flip a byte in the middle of the block region (between the header
    // and the footer) so a column checksum — not the footer CRC — trips.
    std::fstream f(copy, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f);
    const auto offset =
        static_cast<std::streamoff>(std::filesystem::file_size(copy) / 2);
    f.seekg(offset);
    char c = 0;
    f.get(c);
    f.seekp(offset);
    f.put(static_cast<char>(c ^ 0x55));
  }
  EXPECT_THROW(load_run(copy), store::StoreError);
}

}  // namespace
}  // namespace ddos::scenario
