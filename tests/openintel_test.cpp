#include <gtest/gtest.h>

#include "openintel/storage.h"
#include "openintel/sweeper.h"

namespace ddos::openintel {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

struct Fixture {
  dns::DnsRegistry registry;
  attack::AttackSchedule schedule;

  Fixture() {
    for (int i = 1; i <= 3; ++i) {
      dns::Nameserver ns(IPv4Addr(10, 0, 0, static_cast<std::uint8_t>(i)),
                         {dns::Site{"x", 50e3, 20.0, 1.0}});
      ns.set_legit_pps(1e3);
      registry.add_nameserver(std::move(ns));
    }
    for (int d = 0; d < 40; ++d) {
      registry.add_domain(
          dns::DomainName::must("d" + std::to_string(d) + ".com"),
          {IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 0, 2), IPv4Addr(10, 0, 0, 3)});
    }
  }

  Sweeper sweeper(std::uint64_t seed = 1) {
    SweeperParams params;
    params.seed = seed;
    return Sweeper(registry, schedule, params);
  }
};

TEST(Sweeper, MeasurementTimeStableAndSpread) {
  Fixture fx;
  const auto sweeper = fx.sweeper();
  const SimTime t1 = sweeper.measurement_time(0, 5);
  EXPECT_EQ(sweeper.measurement_time(0, 5), t1);  // stable
  EXPECT_EQ(t1.day(), 5);
  // Different domains land in different windows (overwhelmingly).
  int distinct = 0;
  netsim::WindowIndex prev = -1;
  for (dns::DomainId d = 0; d < 40; ++d) {
    const auto w = sweeper.measurement_time(d, 5).window();
    if (w != prev) ++distinct;
    prev = w;
  }
  EXPECT_GT(distinct, 30);
}

TEST(Sweeper, MeasureHealthyDomain) {
  Fixture fx;
  const auto sweeper = fx.sweeper();
  const Measurement m = sweeper.measure(0, SimTime(1000));
  EXPECT_EQ(m.status, dns::ResponseStatus::Ok);
  EXPECT_EQ(m.domain, 0u);
  EXPECT_EQ(m.nsset, fx.registry.nsset_of_domain(0));
  EXPECT_GT(m.rtt_ms, 5.0);
  EXPECT_LT(m.rtt_ms, 100.0);
  EXPECT_TRUE(m.answered());
}

TEST(Sweeper, DeterministicMeasurements) {
  Fixture fx;
  const auto s1 = fx.sweeper(42);
  const auto s2 = fx.sweeper(42);
  for (dns::DomainId d = 0; d < 10; ++d) {
    const auto a = s1.measure(d, SimTime(500));
    const auto b = s2.measure(d, SimTime(500));
    EXPECT_EQ(a.status, b.status);
    EXPECT_DOUBLE_EQ(a.rtt_ms, b.rtt_ms);
    EXPECT_EQ(a.chosen_ns, b.chosen_ns);
  }
}

TEST(Sweeper, SaltDecorrelates) {
  Fixture fx;
  const auto sweeper = fx.sweeper();
  const auto a = sweeper.measure_with_salt(0, SimTime(500), 1);
  const auto b = sweeper.measure_with_salt(0, SimTime(500), 2);
  // Same instant, different salts: independent draws (usually different).
  EXPECT_NE(a.rtt_ms, b.rtt_ms);
}

TEST(Sweeper, AttackElevatesRtt) {
  Fixture fx;
  attack::AttackSpec spec;
  spec.target = IPv4Addr(10, 0, 0, 1);
  spec.start = SimTime(0);
  spec.duration_s = 3600;
  spec.peak_pps = 48e3;  // rho ~0.98 on the 50K-capacity server
  spec.steady = true;
  fx.schedule.add(spec);
  const auto sweeper = fx.sweeper();

  double attacked_avg = 0.0, baseline_avg = 0.0;
  int attacked_n = 0, baseline_n = 0;
  for (int i = 0; i < 600; ++i) {
    const auto during = sweeper.measure_with_salt(i % 40, SimTime(600), i);
    if (during.status == dns::ResponseStatus::Ok) {
      attacked_avg += during.rtt_ms;
      ++attacked_n;
    }
    const auto after = sweeper.measure_with_salt(i % 40, SimTime(7200), i);
    if (after.status == dns::ResponseStatus::Ok) {
      baseline_avg += after.rtt_ms;
      ++baseline_n;
    }
  }
  attacked_avg /= attacked_n;
  baseline_avg /= baseline_n;
  // One of three servers near saturation: the mean rises well above base.
  EXPECT_GT(attacked_avg, baseline_avg * 2.0);
}

TEST(Sweeper, SweepDayVisitsEveryDomain) {
  Fixture fx;
  const auto sweeper = fx.sweeper();
  int count = 0;
  sweeper.sweep_day(3, [&](const Measurement& m) {
    EXPECT_EQ(m.time.day(), 3);
    ++count;
  });
  EXPECT_EQ(count, 40);
}

TEST(Sweeper, SweepDomainsSubsetMatchesFullSweep) {
  Fixture fx;
  const auto sweeper = fx.sweeper();
  std::vector<Measurement> full;
  sweeper.sweep_day(3, [&](const Measurement& m) { full.push_back(m); });
  const std::vector<dns::DomainId> subset = {5, 17};
  std::vector<Measurement> sparse;
  sweeper.sweep_domains(3, subset,
                        [&](const Measurement& m) { sparse.push_back(m); });
  ASSERT_EQ(sparse.size(), 2u);
  EXPECT_DOUBLE_EQ(sparse[0].rtt_ms, full[5].rtt_ms);
  EXPECT_DOUBLE_EQ(sparse[1].rtt_ms, full[17].rtt_ms);
  EXPECT_EQ(sparse[0].status, full[5].status);
}

Measurement make_measurement(dns::NssetId nsset, std::int64_t t,
                             dns::ResponseStatus status, double rtt,
                             IPv4Addr ns = IPv4Addr(10, 0, 0, 1)) {
  Measurement m;
  m.time = SimTime(t);
  m.domain = 0;
  m.nsset = nsset;
  m.status = status;
  m.rtt_ms = rtt;
  m.chosen_ns = ns;
  return m;
}

TEST(Aggregate, FoldsStatuses) {
  Aggregate agg;
  agg.fold(make_measurement(0, 0, dns::ResponseStatus::Ok, 20.0));
  agg.fold(make_measurement(0, 0, dns::ResponseStatus::Ok, 40.0));
  agg.fold(make_measurement(0, 0, dns::ResponseStatus::Timeout, 4500.0));
  agg.fold(make_measurement(0, 0, dns::ResponseStatus::ServFail, 25.0));
  EXPECT_EQ(agg.measured, 4u);
  EXPECT_EQ(agg.ok, 2u);
  EXPECT_EQ(agg.timeout, 1u);
  EXPECT_EQ(agg.servfail, 1u);
  EXPECT_EQ(agg.errors(), 2u);
  EXPECT_DOUBLE_EQ(agg.failure_rate(), 0.5);
  // RTT aggregates over answered queries only (timeouts carry no RTT).
  EXPECT_NEAR(agg.avg_rtt(), (20.0 + 40.0 + 25.0) / 3.0, 1e-12);
}

TEST(MeasurementStore, DailyAndWindowAggregation) {
  MeasurementStore store;
  store.add(make_measurement(7, 100, dns::ResponseStatus::Ok, 20.0));
  store.add(make_measurement(7, 400, dns::ResponseStatus::Ok, 30.0));
  store.add(make_measurement(7, netsim::kSecondsPerDay + 50,
                             dns::ResponseStatus::Ok, 40.0));
  const auto* day0 = store.daily(7, 0);
  ASSERT_NE(day0, nullptr);
  EXPECT_EQ(day0->measured, 2u);
  EXPECT_DOUBLE_EQ(store.daily_avg_rtt(7, 0), 25.0);
  EXPECT_DOUBLE_EQ(store.daily_avg_rtt(7, 1), 40.0);
  EXPECT_DOUBLE_EQ(store.daily_avg_rtt(7, 5), 0.0);
  const auto* w0 = store.window(7, 0);
  ASSERT_NE(w0, nullptr);
  EXPECT_EQ(w0->measured, 1u);
  const auto* w1 = store.window(7, 1);
  ASSERT_NE(w1, nullptr);
  EXPECT_EQ(w1->measured, 1u);
  EXPECT_EQ(store.window(7, 2), nullptr);
  EXPECT_EQ(store.total_measurements(), 3u);
}

TEST(MeasurementStore, NsSeenTracksAnsweredOnly) {
  MeasurementStore store;
  store.add(make_measurement(7, 100, dns::ResponseStatus::Ok, 20.0,
                             IPv4Addr(10, 0, 0, 1)));
  store.add(make_measurement(7, 200, dns::ResponseStatus::Timeout, 0.0,
                             IPv4Addr(10, 0, 0, 2)));
  EXPECT_TRUE(store.ns_seen_on(IPv4Addr(10, 0, 0, 1), 0));
  EXPECT_FALSE(store.ns_seen_on(IPv4Addr(10, 0, 0, 2), 0));
  EXPECT_FALSE(store.ns_seen_on(IPv4Addr(10, 0, 0, 1), 1));
  EXPECT_EQ(store.ns_seen_count(0), 1u);
}

TEST(MeasurementStore, RetentionPredicatesFilterOnIngest) {
  MeasurementStore store;
  store.set_retention(
      [](dns::NssetId nsset, netsim::DayIndex) { return nsset == 1; },
      [](dns::NssetId, netsim::WindowIndex w) { return w == 0; },
      [](IPv4Addr, netsim::DayIndex) { return false; });
  store.add(make_measurement(1, 100, dns::ResponseStatus::Ok, 20.0));
  store.add(make_measurement(2, 400, dns::ResponseStatus::Ok, 30.0));
  EXPECT_NE(store.daily(1, 0), nullptr);
  EXPECT_EQ(store.daily(2, 0), nullptr);
  EXPECT_NE(store.window(1, 0), nullptr);
  EXPECT_EQ(store.window(2, 1), nullptr);
  EXPECT_FALSE(store.ns_seen_on(IPv4Addr(10, 0, 0, 1), 0));
  EXPECT_EQ(store.total_measurements(), 2u);  // counting is unaffected
}

TEST(MeasurementStore, FinalizeDayPrunes) {
  MeasurementStore store;
  store.add(make_measurement(1, 100, dns::ResponseStatus::Ok, 20.0));
  store.add(make_measurement(2, 400, dns::ResponseStatus::Ok, 30.0));
  EXPECT_EQ(store.window_entries(), 2u);
  store.finalize_day(0, [](dns::NssetId nsset, netsim::WindowIndex) {
    return nsset == 1;
  });
  EXPECT_EQ(store.window_entries(), 1u);
  EXPECT_NE(store.window(1, 0), nullptr);
  EXPECT_EQ(store.window(2, 1), nullptr);
  // Daily aggregates survive finalize_day.
  EXPECT_NE(store.daily(2, 0), nullptr);
}

}  // namespace
}  // namespace ddos::openintel
