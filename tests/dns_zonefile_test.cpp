#include "dns/zonefile.h"

#include <gtest/gtest.h>

#include "scenario/world.h"

namespace ddos::dns {
namespace {

using netsim::IPv4Addr;

struct Fixture {
  DnsRegistry registry;

  Fixture() {
    const auto add_ns = [&](IPv4Addr ip, const char* host) {
      registry.add_nameserver(
          Nameserver(ip, {Site{"x", 50e3, 20.0, 1.0}}, host));
    };
    add_ns(IPv4Addr(10, 0, 0, 1), "ns1.alpha.example");
    add_ns(IPv4Addr(10, 0, 0, 2), "ns2.alpha.example");
    add_ns(IPv4Addr(20, 0, 0, 1), "ns1.beta.example");
    registry.add_domain(DomainName::must("aap.nl"),
                        {IPv4Addr(10, 0, 0, 1), IPv4Addr(10, 0, 0, 2)});
    registry.add_domain(DomainName::must("noot.nl"),
                        {IPv4Addr(20, 0, 0, 1)});
    registry.add_domain(DomainName::must("mies.com"),
                        {IPv4Addr(10, 0, 0, 1)});
  }
};

TEST(ZoneFile, ExportFiltersByTld) {
  Fixture fx;
  const std::string zone = export_zone_file(fx.registry, "nl");
  EXPECT_NE(zone.find("aap.nl. 3600 IN NS ns1.alpha.example."),
            std::string::npos);
  EXPECT_NE(zone.find("noot.nl. 3600 IN NS ns1.beta.example."),
            std::string::npos);
  EXPECT_EQ(zone.find("mies.com"), std::string::npos);
  // Glue present for referenced hosts only.
  EXPECT_NE(zone.find("ns1.alpha.example. 3600 IN A 10.0.0.1"),
            std::string::npos);
}

TEST(ZoneFile, RoundTripRecoversDelegations) {
  Fixture fx;
  const std::string zone = export_zone_file(fx.registry, "nl");
  const auto parsed = parse_zone_file(zone);
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->delegations.size(), 2u);
  const auto resolved = parsed->resolved_delegations();
  ASSERT_EQ(resolved.size(), 2u);
  for (const auto& [domain, ips] : resolved) {
    const auto expect = fx.registry.nsset_key(
        fx.registry.nsset_of_domain(domain.str() == "aap.nl" ? 0 : 1));
    EXPECT_EQ(ips, expect.ips) << domain.str();
  }
}

TEST(ZoneFile, LameEntriesGetSynthesisedHosts) {
  Fixture fx;
  fx.registry.add_domain(DomainName::must("stale.nl"),
                         {IPv4Addr(10, 0, 0, 1), IPv4Addr(66, 6, 6, 6)});
  const std::string zone = export_zone_file(fx.registry, "nl");
  EXPECT_NE(zone.find("ns-66-6-6-6.lame.invalid"), std::string::npos);
  const auto parsed = parse_zone_file(zone);
  ASSERT_TRUE(parsed);
  // The lame host still has glue (the stale address), so the delegation
  // resolves to both addresses — exactly what a measurement platform sees.
  for (const auto& [domain, ips] : parsed->resolved_delegations()) {
    if (domain.str() == "stale.nl") {
      EXPECT_EQ(ips.size(), 2u);
    }
  }
}

TEST(ZoneFile, ParseSkipsCommentsAndBlanks) {
  const auto parsed = parse_zone_file(
      "; a comment\n"
      "\n"
      "x.nl. 300 IN NS ns1.h.example.\n"
      "ns1.h.example. 300 IN A 1.2.3.4\n");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->delegations.size(), 1u);
  EXPECT_EQ(parsed->delegations[0].ns_hosts[0], "ns1.h.example");
  const auto resolved = parsed->resolved_delegations();
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0].second[0], IPv4Addr(1, 2, 3, 4));
}

TEST(ZoneFile, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_zone_file("x.nl. 300 IN NS\n"));       // missing rdata
  EXPECT_FALSE(parse_zone_file("x.nl. ttl IN NS a.b.\n"));  // bad ttl
  EXPECT_FALSE(parse_zone_file("x.nl. 300 XX NS a.b.\n"));  // class
  EXPECT_FALSE(parse_zone_file("x.nl. 300 IN MX a.b.\n"));  // unsupported
  EXPECT_FALSE(parse_zone_file("x.nl. 300 IN A 1.2.3.999\n"));
}

TEST(ZoneFile, MultiNsDelegationGroups) {
  const auto parsed = parse_zone_file(
      "x.nl. 300 IN NS ns1.h.example.\n"
      "x.nl. 300 IN NS ns2.h.example.\n"
      "ns1.h.example. 300 IN A 1.1.1.2\n"
      "ns2.h.example. 300 IN A 1.1.1.3\n");
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->delegations.size(), 1u);
  EXPECT_EQ(parsed->delegations[0].ns_hosts.size(), 2u);
  EXPECT_EQ(parsed->resolved_delegations()[0].second.size(), 2u);
}

TEST(ZoneFile, MissingGlueYieldsEmptyResolution) {
  const auto parsed =
      parse_zone_file("x.nl. 300 IN NS ns1.offsite.example.\n");
  ASSERT_TRUE(parsed);
  const auto resolved = parsed->resolved_delegations();
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_TRUE(resolved[0].second.empty());
}

TEST(ZoneFile, SyntheticWorldRoundTrip) {
  scenario::WorldParams params = scenario::small_world_params(31);
  params.domain_count = 1500;
  const auto world = scenario::build_world(params);
  const std::string zone = export_zone_file(world->registry, "nl");
  const auto parsed = parse_zone_file(zone);
  ASSERT_TRUE(parsed);
  EXPECT_GT(parsed->delegations.size(), 50u);
  // Every resolved delegation must match the registry's NSSet.
  std::size_t checked = 0;
  for (const auto& [domain, ips] : parsed->resolved_delegations()) {
    for (DomainId d = 0; d < world->registry.end_domain(); ++d) {
      if (world->registry.domain_name(d) == domain) {
        EXPECT_EQ(ips,
                  world->registry.nsset_key(world->registry.nsset_of_domain(d))
                      .ips)
            << domain.str();
        ++checked;
        break;
      }
    }
    if (checked > 40) break;  // spot-check is enough
  }
  EXPECT_GT(checked, 20u);
}

}  // namespace
}  // namespace ddos::dns
