// The streaming acceptance test: run_longitudinal_streaming must be
// bit-identical to run_longitudinal — joined events, join statistics,
// swept-measurement count, analysis summaries, and the DRS store file —
// for any window_days and channel capacity. A ctest variant re-runs this
// binary under DDOSREPRO_THREADS=2 to cover the multi-threaded sweep.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/analysis.h"
#include "scenario/driver.h"

namespace ddos::scenario {
namespace {

// Each discovered test case runs as its own process, concurrently with
// the whole-binary DDOSREPRO_THREADS=2/8 ctest variants — TempDir()
// names must be per-process or parallel ctest workers race on the same
// store file.
std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

LongitudinalConfig test_config() {
  LongitudinalConfig cfg = small_longitudinal_config(21);
  cfg.world.provider_count = 80;
  cfg.world.domain_count = 4000;
  cfg.workload.scale = 200.0;
  return cfg;
}

void expect_equivalent(const LongitudinalResult& streamed,
                       const LongitudinalResult& materialized,
                       bool feed_retired = true) {
  EXPECT_EQ(streamed.feed_records, materialized.feed_records);
  // Streaming retires feed records shard by shard; only the count and the
  // stitched events survive (retain_feed keeps the vector for --feed-csv).
  EXPECT_EQ(streamed.feed.records().empty(), feed_retired);
  ASSERT_EQ(streamed.events.size(), materialized.events.size());
  for (std::size_t i = 0; i < streamed.events.size(); ++i) {
    EXPECT_EQ(streamed.events[i], materialized.events[i]) << "event " << i;
  }
  EXPECT_EQ(streamed.swept_measurements, materialized.swept_measurements);
  EXPECT_EQ(streamed.join_stats, materialized.join_stats);
  ASSERT_EQ(streamed.joined.size(), materialized.joined.size());
  for (std::size_t i = 0; i < streamed.joined.size(); ++i) {
    EXPECT_EQ(streamed.joined[i], materialized.joined[i]) << "event " << i;
  }

  // Downstream analyses see identical inputs, so their summaries agree.
  const auto ms = core::monthly_summary(streamed.events,
                                        streamed.world->registry);
  const auto mm = core::monthly_summary(materialized.events,
                                        materialized.world->registry);
  ASSERT_EQ(ms.size(), mm.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(ms[i].year, mm[i].year);
    EXPECT_EQ(ms[i].month, mm[i].month);
    EXPECT_EQ(ms[i].dns_attacks, mm[i].dns_attacks);
    EXPECT_EQ(ms[i].other_attacks, mm[i].other_attacks);
    EXPECT_EQ(ms[i].dns_ips, mm[i].dns_ips);
    EXPECT_EQ(ms[i].other_ips, mm[i].other_ips);
  }
  const auto fs = core::failure_attribution(streamed.joined);
  const auto fm = core::failure_attribution(materialized.joined);
  EXPECT_EQ(fs.complete_failures, fm.complete_failures);
  EXPECT_EQ(fs.single_asn, fm.single_asn);
  EXPECT_EQ(fs.single_prefix, fm.single_prefix);
  EXPECT_EQ(fs.unicast, fm.unicast);
  const auto is = core::intensity_impact_series(streamed.joined,
                                                streamed.darknet);
  const auto im = core::intensity_impact_series(materialized.joined,
                                                materialized.darknet);
  EXPECT_EQ(is.n(), im.n());
  EXPECT_EQ(is.pearson, im.pearson);
}

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new LongitudinalConfig(test_config());
    materialized_ = new LongitudinalResult(run_longitudinal(*config_));
  }
  static void TearDownTestSuite() {
    delete materialized_;
    delete config_;
    materialized_ = nullptr;
    config_ = nullptr;
  }
  static LongitudinalConfig* config_;
  static LongitudinalResult* materialized_;
};

LongitudinalConfig* StreamingTest::config_ = nullptr;
LongitudinalResult* StreamingTest::materialized_ = nullptr;

TEST_F(StreamingTest, MatchesMaterializedAtMinimumWindow) {
  StreamingOptions opts;
  opts.window_days = 1;  // tightest legal retirement
  opts.channel_capacity = 1;
  const auto streamed = run_longitudinal_streaming(*config_, opts);
  expect_equivalent(streamed, *materialized_);
}

TEST_F(StreamingTest, MatchesMaterializedAtWiderWindow) {
  StreamingOptions opts;
  opts.window_days = 3;  // slack only delays retirement, never output
  opts.channel_capacity = 8;
  const auto streamed = run_longitudinal_streaming(*config_, opts);
  expect_equivalent(streamed, *materialized_);
}

TEST_F(StreamingTest, StreamedStoreFileIsByteIdenticalToSaveRun) {
  const std::string mat_path = temp_path("streaming_mat.drs");
  const std::uint64_t mat_bytes =
      save_run(mat_path, *config_, /*threads=*/2, *materialized_);

  StreamingOptions opts;
  opts.store_path = temp_path("streaming_str.drs");
  opts.threads = 2;  // provenance meta must match save_run's
  const auto streamed = run_longitudinal_streaming(*config_, opts);
  EXPECT_EQ(streamed.store_bytes, mat_bytes);

  const std::string mat = read_file(mat_path);
  const std::string str = read_file(opts.store_path);
  ASSERT_EQ(str.size(), mat.size());
  EXPECT_TRUE(str == mat) << "streamed DRS store differs from save_run's";

  // And the streamed file is a valid store that loads back to the run.
  const StoredRun loaded = load_run(opts.store_path);
  EXPECT_EQ(loaded.joined, materialized_->joined);
  EXPECT_EQ(loaded.join_stats, materialized_->join_stats);
}

TEST_F(StreamingTest, RetainFeedKeepsRecordVector) {
  StreamingOptions opts;
  opts.retain_feed = true;  // --feed-csv path: the CSV needs the vector
  const auto streamed = run_longitudinal_streaming(*config_, opts);
  EXPECT_EQ(streamed.feed.records(), materialized_->feed.records());
  expect_equivalent(streamed, *materialized_, /*feed_retired=*/false);
}

TEST_F(StreamingTest, RejectsZeroWindowDays) {
  StreamingOptions opts;
  opts.window_days = 0;
  EXPECT_THROW(run_longitudinal_streaming(*config_, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace ddos::scenario
