#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "store/checksum.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace ddos::store {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) / name).string();
}

// Flip one byte at `offset` in the file at `path`.
void corrupt_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0xFF));
}

TEST(Checksum, KnownVector) {
  // The canonical CRC32C check value for the ASCII digits "123456789".
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
}

TEST(Checksum, SeedChains) {
  const std::uint32_t whole = crc32c("123456789", 9);
  const std::uint32_t first = crc32c("12345", 5);
  EXPECT_EQ(crc32c("6789", 4, first), whole);
}

TEST(Format, VarintRoundTrip) {
  const std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  std::string buf;
  for (const auto v : values) put_varint(buf, v);
  std::size_t pos = 0;
  for (const auto v : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(get_varint(buf, pos, got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Format, VarintRejectsTruncation) {
  std::string buf;
  put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t pos = 0;
  std::uint64_t got = 0;
  EXPECT_FALSE(get_varint(buf, pos, got));
}

TEST(Format, ZigzagRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::int64_t{-123456789}, std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes stay small: the point of zigzag before varint.
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Format, DeltaVarintHandlesDescendingValues) {
  // Deltas wrap mod 2^64, so unsorted and descending sequences survive.
  const std::vector<std::uint64_t> values = {
      100, 5, std::numeric_limits<std::uint64_t>::max(), 0, 100};
  const std::string payload = encode_u64_column(values, Encoding::DeltaVarint);
  EXPECT_EQ(decode_u64_column(payload, Encoding::DeltaVarint, values.size()),
            values);
}

TEST(Format, DecodeRejectsTrailingBytes) {
  const std::vector<std::uint64_t> values = {1, 2, 3};
  std::string payload = encode_u64_column(values, Encoding::Varint);
  payload.push_back('\0');
  EXPECT_THROW(decode_u64_column(payload, Encoding::Varint, values.size()),
               StoreError);
}

TEST(WriterReader, RoundTripAllColumnTypes) {
  const std::string path = temp_path("roundtrip.drs");
  const std::vector<std::uint64_t> keys = {10, 20, 20, 35};
  const std::vector<std::uint64_t> counts = {0, 7, 1u << 20, 3};
  const std::vector<double> rtts = {0.0, -1.5, 1e308, 5e-324};
  const std::vector<std::uint8_t> protocols = {17, 6, 1, 17};
  const std::vector<std::string> orgs = {"NForce B.V.", "", "with,comma",
                                         std::string(1, '\0')};
  {
    Writer writer(path);
    ASSERT_TRUE(writer.ok());
    writer.add_meta("seed", "42");
    writer.add_meta("seed", "43");  // same key overwrites
    writer.add_meta("tool", "test");
    writer.add_u64("ds", "key", keys, Encoding::DeltaVarint);
    writer.add_u64("ds", "count", counts, Encoding::Varint);
    writer.add_f64("ds", "rtt", rtts);
    writer.add_u8("ds", "protocol", protocols);
    writer.add_strings("ds", "org", orgs);
    ASSERT_TRUE(writer.finish());
    EXPECT_EQ(writer.bytes_written(),
              std::filesystem::file_size(path));
  }
  const Reader reader(path);
  EXPECT_EQ(reader.meta_value("seed"), "43");
  EXPECT_EQ(reader.meta_value("tool"), "test");
  EXPECT_EQ(reader.meta_or("absent", "fallback"), "fallback");
  EXPECT_THROW(reader.meta_value("absent"), StoreError);
  EXPECT_EQ(reader.dataset_rows("ds"), 4u);
  EXPECT_EQ(reader.read_u64("ds", "key"), keys);
  EXPECT_EQ(reader.read_u64("ds", "count"), counts);
  EXPECT_EQ(reader.read_f64("ds", "rtt"), rtts);
  EXPECT_EQ(reader.read_u8("ds", "protocol"), protocols);
  EXPECT_EQ(reader.read_strings("ds", "org"), orgs);
  EXPECT_FALSE(reader.has_column("ds", "absent"));
  EXPECT_THROW(reader.column("ds", "absent"), StoreError);
  EXPECT_NO_THROW(reader.validate_all());
}

TEST(WriterReader, EmptyDatasetRoundTrips) {
  const std::string path = temp_path("empty.drs");
  {
    Writer writer(path);
    writer.add_u64("feed", "window", {}, Encoding::DeltaVarint);
    writer.add_f64("feed", "ppm", {});
    writer.add_strings("feed", "org", {});
    ASSERT_TRUE(writer.finish());
  }
  const Reader reader(path);
  EXPECT_EQ(reader.dataset_rows("feed"), 0u);
  EXPECT_TRUE(reader.read_u64("feed", "window").empty());
  EXPECT_TRUE(reader.read_f64("feed", "ppm").empty());
  EXPECT_TRUE(reader.read_strings("feed", "org").empty());
  EXPECT_NO_THROW(reader.validate_all());
}

TEST(WriterReader, SingleRowBlocks) {
  const std::string path = temp_path("single.drs");
  {
    Writer writer(path);
    writer.add_u64("ds", "key", std::vector<std::uint64_t>{
        std::numeric_limits<std::uint64_t>::max()});
    writer.add_f64("ds", "value", std::vector<double>{-0.0});
    ASSERT_TRUE(writer.finish());
  }
  const Reader reader(path);
  EXPECT_EQ(reader.read_u64("ds", "key"),
            (std::vector<std::uint64_t>{
                std::numeric_limits<std::uint64_t>::max()}));
  const auto values = reader.read_f64("ds", "value");
  ASSERT_EQ(values.size(), 1u);
  EXPECT_TRUE(std::signbit(values[0]));  // -0.0 bit pattern preserved
}

TEST(WriterReader, DetectsCorruptBlock) {
  const std::string path = temp_path("corrupt.drs");
  {
    Writer writer(path);
    const std::vector<std::uint64_t> keys = {1000, 2000, 3000, 4000};
    writer.add_u64("ds", "key", keys);
    ASSERT_TRUE(writer.finish());
  }
  // First block payload starts right after the 16-byte header.
  corrupt_byte(path, kHeaderSize);
  const Reader reader(path);  // footer itself is intact
  EXPECT_THROW(reader.read_u64("ds", "key"), StoreError);
  EXPECT_THROW(reader.validate_all(), StoreError);
}

TEST(WriterReader, DetectsTruncatedFile) {
  const std::string path = temp_path("truncated.drs");
  {
    Writer writer(path);
    writer.add_u64("ds", "key", std::vector<std::uint64_t>{1, 2, 3});
    ASSERT_TRUE(writer.finish());
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  EXPECT_THROW(Reader{path}, StoreError);
}

TEST(WriterReader, RejectsBadMagicAndVersion) {
  const std::string path = temp_path("versioned.drs");
  {
    Writer writer(path);
    writer.add_u64("ds", "key", std::vector<std::uint64_t>{7});
    ASSERT_TRUE(writer.finish());
  }
  {
    // Bump the format version field (bytes 4..7 of the header).
    corrupt_byte(path, 4);
    try {
      const Reader reader(path);
      FAIL() << "expected StoreError";
    } catch (const StoreError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    corrupt_byte(path, 4);  // restore
  }
  corrupt_byte(path, 0);  // break the magic
  EXPECT_THROW(Reader{path}, StoreError);
}

TEST(WriterReader, MissingFileThrows) {
  EXPECT_THROW(Reader{temp_path("does-not-exist.drs")}, StoreError);
}

TEST(Writer, RejectsColumnsAfterFinish) {
  const std::string path = temp_path("finished.drs");
  Writer writer(path);
  ASSERT_TRUE(writer.finish());
  EXPECT_THROW(
      writer.add_u64("ds", "key", std::vector<std::uint64_t>{1}),
      StoreError);
}

}  // namespace
}  // namespace ddos::store
