// Tests for exec::Channel / exec::Stage — the bounded MPSC queue and the
// stage-thread runner connecting the streaming pipeline (scenario driver).
// The properties under test are the ones the driver leans on: FIFO order,
// backpressure at the capacity bound, close() as the shutdown signal on
// both ends, and exceptions crossing a Stage via join(). This file runs in
// the ThreadSanitizer CI job, so the hammer tests double as race checks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/channel.h"
#include "exec/stage.h"

using namespace ddos;

namespace {

TEST(Channel, FifoSingleProducer) {
  exec::Channel<int> ch(4);
  EXPECT_EQ(ch.capacity(), 4u);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(ch.push(i));
    ch.close();
  });
  int expected = 0;
  while (auto item = ch.pop()) {
    EXPECT_EQ(*item, expected);
    ++expected;
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(Channel, CapacityZeroClampsToOne) {
  exec::Channel<int> ch(0);
  EXPECT_EQ(ch.capacity(), 1u);
  EXPECT_TRUE(ch.push(7));
  EXPECT_EQ(ch.depth(), 1u);
  EXPECT_EQ(ch.pop().value(), 7);
}

TEST(Channel, PushAfterCloseFailsAndPopDrains) {
  exec::Channel<int> ch(8);
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  ch.close();
  ch.close();  // idempotent
  EXPECT_TRUE(ch.closed());
  EXPECT_FALSE(ch.push(3));  // dropped
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
  EXPECT_FALSE(ch.pop().has_value());  // closed and drained
}

// Backpressure: with the consumer stalled, exactly `capacity` pushes land
// and the next one blocks until a pop frees a slot.
TEST(Channel, BoundedCapacityBackpressure) {
  exec::Channel<int> ch(3);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.push(i));
  EXPECT_EQ(ch.depth(), 3u);

  std::atomic<bool> fourth_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(ch.push(3));  // blocks until the consumer pops
    fourth_done.store(true);
  });
  // The producer cannot have completed while the channel is full. (A
  // sleep cannot prove blocking, but TSan + the depth bound below make a
  // broken wait loud.)
  EXPECT_EQ(ch.pop().value(), 0);
  producer.join();
  EXPECT_TRUE(fourth_done.load());
  EXPECT_EQ(ch.depth(), 3u);  // 1,2,3 queued — never above capacity
  EXPECT_EQ(ch.pop().value(), 1);
  EXPECT_EQ(ch.pop().value(), 2);
  EXPECT_EQ(ch.pop().value(), 3);
}

// MPSC hammer: several producers racing into one bounded channel, one
// consumer draining. Every item must arrive exactly once, and the depth
// observed by the consumer must never exceed the capacity.
TEST(Channel, MultiProducerHammer) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  exec::Channel<std::uint64_t> ch(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.push(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  std::thread closer([&] {
    for (auto& t : producers) t.join();
    ch.close();
  });

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  while (auto item = ch.pop()) {
    EXPECT_LE(ch.depth(), ch.capacity());
    ++count;
    sum += *item;
  }
  closer.join();

  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(count, n);
  EXPECT_EQ(sum, n * (n - 1) / 2);  // each value 0..n-1 exactly once
}

TEST(Stage, JoinRethrowsBodyException) {
  exec::Stage stage("boom", [] { throw std::runtime_error("stage died"); });
  EXPECT_THROW(stage.join(), std::runtime_error);
  // The first join consumes the error; a repeat join is a quiet no-op.
  EXPECT_FALSE(stage.failed());
  stage.join();
}

TEST(Stage, CompletesAndCarriesName) {
  std::atomic<int> ran{0};
  exec::Stage stage("worker", [&] { ran.store(42); });
  stage.join();
  EXPECT_EQ(ran.load(), 42);
  EXPECT_FALSE(stage.failed());
  EXPECT_EQ(stage.name(), "worker");
}

// The driver's shutdown-on-exception wiring: a consumer stage that dies
// mid-stream closes its input channel, the producer's push fails, and the
// producer unwinds cleanly instead of deadlocking on a full channel.
TEST(Stage, DyingConsumerUnblocksProducer) {
  exec::Channel<int> ch(2);
  std::atomic<int> produced{0};

  exec::Stage producer("producer", [&] {
    for (int i = 0; i < 1000; ++i) {
      if (!ch.push(i)) return;  // consumer is gone
      produced.store(i + 1);
    }
    ch.close();
  });
  exec::Stage consumer("consumer", [&] {
    try {
      auto first = ch.pop();
      ASSERT_TRUE(first.has_value());
      throw std::runtime_error("consumer died");
    } catch (...) {
      ch.close();
      throw;
    }
  });

  producer.join();  // returns: push() fails once the channel closes
  EXPECT_THROW(consumer.join(), std::runtime_error);
  EXPECT_LT(produced.load(), 1000);
}

}  // namespace
