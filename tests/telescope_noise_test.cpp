#include "telescope/noise.h"

#include <gtest/gtest.h>

#include "attack/schedule.h"
#include "telescope/feed.h"

namespace ddos::telescope {
namespace {

using netsim::IPv4Addr;

TEST(IbrNoise, GeneratesExpectedVolume) {
  IbrNoiseParams params;
  const auto noise =
      generate_ibr_noise(params, 0, 999, Darknet::ucsd_like());
  // ~43 sources/window over 1000 windows.
  EXPECT_GT(noise.size(), 35000u);
  EXPECT_LT(noise.size(), 52000u);
  for (const auto& bw : noise) {
    EXPECT_GE(bw.window, 0);
    EXPECT_LE(bw.window, 999);
    EXPECT_GT(bw.packets, 0u);
    EXPECT_GE(bw.distinct_slash16, 1u);
  }
}

TEST(IbrNoise, ThresholdsRejectAlmostEverything) {
  IbrNoiseParams params;
  const auto noise =
      generate_ibr_noise(params, 0, 1999, Darknet::ucsd_like());
  const double rate = rejection_rate(noise, InferenceParams{});
  // Moore et al.'s thresholds exist for this: >= 99.8% of IBR noise falls
  // below them; only the rare flicker survives.
  EXPECT_GT(rate, 0.998);
  EXPECT_LT(rate, 1.0);  // the false-positive floor is not zero
}

TEST(IbrNoise, MisconfigurationsFailTheSpreadThreshold) {
  IbrNoiseParams params;
  params.residual_sources_per_window = 0.0;
  params.flicker_sources_per_window = 0.0;
  const auto noise =
      generate_ibr_noise(params, 0, 499, Darknet::ucsd_like());
  ASSERT_FALSE(noise.empty());
  for (const auto& bw : noise) {
    EXPECT_FALSE(passes_thresholds(bw, InferenceParams{}))
        << "packets=" << bw.packets << " spread=" << bw.distinct_slash16;
  }
}

TEST(IbrNoise, ResidualsFailThePacketThreshold) {
  IbrNoiseParams params;
  params.misconfig_sources_per_window = 0.0;
  params.flicker_sources_per_window = 0.0;
  const auto noise =
      generate_ibr_noise(params, 0, 199, Darknet::ucsd_like());
  ASSERT_FALSE(noise.empty());
  for (const auto& bw : noise) {
    EXPECT_FALSE(passes_thresholds(bw, InferenceParams{}));
  }
}

TEST(IbrNoise, NoiseDoesNotPerturbAttackInference) {
  // A real attack plus a sea of noise: the feed must recover the attack
  // and nothing but the attack (modulo the tiny flicker floor).
  attack::AttackSchedule schedule;
  attack::AttackSpec spec;
  spec.target = IPv4Addr(7, 7, 7, 7);
  spec.start = netsim::SimTime(0);
  spec.duration_s = 3600;
  spec.peak_pps = 80e3;
  spec.steady = true;
  schedule.add(spec);

  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  feed.ingest(schedule, Darknet::ucsd_like(), 3);
  const std::size_t clean_records = feed.records().size();

  IbrNoiseParams noise_params;
  noise_params.flicker_sources_per_window = 0.0;
  for (const auto& bw :
       generate_ibr_noise(noise_params, 0, 11, Darknet::ucsd_like())) {
    if (passes_thresholds(bw, feed.inference())) {
      feed.add_record(to_record(bw));
    }
  }
  EXPECT_EQ(feed.records().size(), clean_records);  // all noise rejected
  const auto events = feed.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].victim, IPv4Addr(7, 7, 7, 7));
}

TEST(IbrNoise, Deterministic) {
  IbrNoiseParams params;
  const auto a = generate_ibr_noise(params, 0, 99, Darknet::ucsd_like());
  const auto b = generate_ibr_noise(params, 0, 99, Darknet::ucsd_like());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].victim, b[i].victim);
    EXPECT_EQ(a[i].packets, b[i].packets);
  }
}

TEST(IbrNoise, RejectionRateEdgeCases) {
  EXPECT_DOUBLE_EQ(rejection_rate({}, InferenceParams{}), 0.0);
}

}  // namespace
}  // namespace ddos::telescope
