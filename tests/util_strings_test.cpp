#include "util/strings.h"

#include <gtest/gtest.h>

namespace ddos::util {
namespace {

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("TCP", "tcp"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("tcp", "udp"));
  EXPECT_FALSE(iequals("tcp", "tcpx"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiL.Ru"), "mil.ru");
  EXPECT_EQ(to_lower("123-abc"), "123-abc");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("mil.ru", "mil"));
  EXPECT_FALSE(starts_with("mil", "mil.ru"));
  EXPECT_TRUE(ends_with("www.mil.ru", ".ru"));
  EXPECT_FALSE(ends_with("ru", "mil.ru"));
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(parse_u64("  42 ", v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12x", v));
  EXPECT_FALSE(parse_u64("-3", v));
  EXPECT_FALSE(parse_u64("99999999999999999999999", v));
}

TEST(Strings, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("-1e3", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(4039485), "4,039,485");
  EXPECT_EQ(with_commas(1022102), "1,022,102");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
}

TEST(Strings, FormatBps) {
  EXPECT_EQ(format_bps(1.4e9), "1.40 Gbps");
  EXPECT_EQ(format_bps(247e6), "247 Mbps");
  EXPECT_EQ(format_bps(500.0), "500 bps");
}

TEST(Strings, FormatCount) {
  EXPECT_EQ(format_count(5790000), "5.79M");
  EXPECT_EQ(format_count(21800), "21.8K");
  EXPECT_EQ(format_count(7e6), "7M");
  EXPECT_EQ(format_count(950), "950");
}

}  // namespace
}  // namespace ddos::util
