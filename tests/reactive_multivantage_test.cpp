#include <gtest/gtest.h>

#include "reactive/platform.h"

namespace ddos::reactive {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

// An anycast deployment whose sites differ sharply in catchment weight:
// a flood near the aggregate capacity saturates the heavy-catchment site
// while light sites stay comfortable — exactly the masking §4.3 warns
// about for single-vantage measurement.
struct Fixture {
  dns::DnsRegistry registry;
  attack::AttackSchedule schedule;
  const IPv4Addr ns_ip{10, 1, 0, 1};

  Fixture() {
    std::vector<dns::Site> sites;
    sites.push_back(dns::Site{"hot", 50e3, 20.0, 8.0});   // 8/11 of traffic
    sites.push_back(dns::Site{"cool1", 50e3, 20.0, 1.5});
    sites.push_back(dns::Site{"cool2", 50e3, 20.0, 1.5});
    dns::Nameserver ns(ns_ip, std::move(sites));
    ns.set_legit_pps(100.0);
    registry.add_nameserver(std::move(ns));
    for (int d = 0; d < 40; ++d) {
      registry.add_domain(
          dns::DomainName::must("d" + std::to_string(d) + ".com"), {ns_ip});
    }
    // Flood sized to saturate the hot site (~8/11 share of 90K ~ 65K vs
    // 50K capacity) but not the cool sites (~12K each).
    attack::AttackSpec spec;
    spec.target = ns_ip;
    spec.start = netsim::window_start(100);
    spec.duration_s = 10 * netsim::kSecondsPerWindow;
    spec.peak_pps = 90e3;
    spec.steady = true;
    schedule.add(spec);
  }

  telescope::RSDoSEvent event() const {
    telescope::RSDoSEvent ev;
    ev.victim = ns_ip;
    ev.start_window = 100;
    ev.end_window = 109;
    return ev;
  }
};

std::vector<VantagePoint> many_vantages(std::size_t n) {
  std::vector<VantagePoint> vps;
  for (std::size_t i = 0; i < n; ++i) {
    vps.push_back(VantagePoint{1000 + i * 37, "NL",
                               "vp" + std::to_string(i)});
  }
  return vps;
}

TEST(MultiVantage, DefaultVantagesSpanRegions) {
  const auto vps = default_vantage_points();
  EXPECT_GE(vps.size(), 6u);
  std::set<std::string> countries;
  for (const auto& vp : vps) countries.insert(vp.country);
  EXPECT_GE(countries.size(), 5u);
}

TEST(MultiVantage, CatchmentMaskingDetected) {
  const Fixture fx;
  const MultiVantagePlatform platform(fx.registry, fx.schedule,
                                      ReactiveParams{}, many_vantages(16));
  const auto campaign = platform.run_campaign(fx.event());
  ASSERT_EQ(campaign.windows.size(), 9u);  // trigger at start+1

  // With 16 vantages, some land in the saturated catchment and some in the
  // healthy ones: the union view must see degradation AND disagreement.
  EXPECT_GT(campaign.degraded_windows_any_vantage(0.9), 0u);
  EXPECT_GT(campaign.masked_windows(0.5), 0u);

  // At least one vantage individually sees (almost) nothing wrong.
  bool some_vantage_blind = false;
  for (std::size_t v = 0; v < campaign.vantages.size(); ++v) {
    if (campaign.degraded_windows_from(v, 0.9) == 0) some_vantage_blind = true;
  }
  EXPECT_TRUE(some_vantage_blind);
}

TEST(MultiVantage, SingleVantageCanMissWhatUnionSees) {
  const Fixture fx;
  const auto vps = many_vantages(16);
  const MultiVantagePlatform platform(fx.registry, fx.schedule,
                                      ReactiveParams{}, vps);
  const auto campaign = platform.run_campaign(fx.event());
  const std::size_t union_view = campaign.degraded_windows_any_vantage(0.9);
  std::size_t min_single = union_view;
  for (std::size_t v = 0; v < vps.size(); ++v) {
    min_single = std::min(min_single, campaign.degraded_windows_from(v, 0.9));
  }
  EXPECT_LT(min_single, union_view);
}

TEST(MultiVantage, UnicastShowsNoMasking) {
  dns::DnsRegistry registry;
  const IPv4Addr ns_ip(10, 2, 0, 1);
  dns::Nameserver ns(ns_ip, {dns::Site{"uni", 50e3, 20.0, 1.0}});
  registry.add_nameserver(std::move(ns));
  for (int d = 0; d < 20; ++d) {
    registry.add_domain(
        dns::DomainName::must("u" + std::to_string(d) + ".com"), {ns_ip});
  }
  attack::AttackSchedule schedule;
  attack::AttackSpec spec;
  spec.target = ns_ip;
  spec.start = netsim::window_start(100);
  spec.duration_s = 5 * netsim::kSecondsPerWindow;
  spec.peak_pps = 5e6;  // dead for everyone
  spec.steady = true;
  schedule.add(spec);
  telescope::RSDoSEvent ev;
  ev.victim = ns_ip;
  ev.start_window = 100;
  ev.end_window = 104;

  const MultiVantagePlatform platform(registry, schedule, ReactiveParams{},
                                      many_vantages(8));
  const auto campaign = platform.run_campaign(ev);
  // Unicast: every vantage reaches the same melted server.
  EXPECT_EQ(campaign.masked_windows(0.5), 0u);
  for (const auto& w : campaign.windows) {
    EXPECT_LT(w.max_rate(), 0.5);
  }
}

TEST(MultiVantage, EmptyForNonNsVictim) {
  const Fixture fx;
  const MultiVantagePlatform platform(fx.registry, fx.schedule,
                                      ReactiveParams{}, many_vantages(4));
  telescope::RSDoSEvent ev;
  ev.victim = IPv4Addr(99, 99, 99, 99);
  ev.start_window = 100;
  ev.end_window = 104;
  EXPECT_TRUE(platform.run_campaign(ev).windows.empty());
}

TEST(MultiVantage, Deterministic) {
  const Fixture fx;
  const MultiVantagePlatform platform(fx.registry, fx.schedule,
                                      ReactiveParams{}, many_vantages(6));
  const auto a = platform.run_campaign(fx.event());
  const auto b = platform.run_campaign(fx.event());
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].rate_per_vantage, b.windows[i].rate_per_vantage);
  }
}

}  // namespace
}  // namespace ddos::reactive
