#include "reactive/platform.h"

#include <gtest/gtest.h>

namespace ddos::reactive {
namespace {

using netsim::IPv4Addr;
using netsim::SimTime;

struct Fixture {
  dns::DnsRegistry registry;
  attack::AttackSchedule schedule;

  const IPv4Addr ns1{10, 0, 0, 1};
  const IPv4Addr ns2{10, 0, 0, 2};

  explicit Fixture(int domains = 80) {
    for (const auto& ip : {ns1, ns2}) {
      dns::Nameserver ns(ip, {dns::Site{"x", 50e3, 20.0, 1.0}});
      ns.set_legit_pps(1e3);
      registry.add_nameserver(std::move(ns));
    }
    for (int d = 0; d < domains; ++d) {
      registry.add_domain(
          dns::DomainName::must("d" + std::to_string(d) + ".com"),
          {ns1, ns2});
    }
  }

  telescope::RSDoSEvent event(netsim::WindowIndex from,
                              netsim::WindowIndex to) const {
    telescope::RSDoSEvent ev;
    ev.victim = ns1;
    ev.start_window = from;
    ev.end_window = to;
    return ev;
  }

  ReactivePlatform platform(ReactiveParams params = {}) const {
    return ReactivePlatform(registry, schedule, params);
  }
};

TEST(Reactive, ProbeSetCappedAtFifty) {
  const Fixture fx(200);
  const auto platform = fx.platform();
  const auto domains = platform.probe_set(fx.ns1);
  EXPECT_EQ(domains.size(), 50u);  // the §4.3.1 / §8 ethical cap
}

TEST(Reactive, ProbeSetSmallDeploymentTakesAll) {
  const Fixture fx(7);
  const auto platform = fx.platform();
  EXPECT_EQ(platform.probe_set(fx.ns1).size(), 7u);
}

TEST(Reactive, ProbeSetStable) {
  const Fixture fx(200);
  const auto platform = fx.platform();
  EXPECT_EQ(platform.probe_set(fx.ns1), platform.probe_set(fx.ns1));
}

TEST(Reactive, ProbeSetEmptyForNonNsVictim) {
  const Fixture fx;
  const auto platform = fx.platform();
  EXPECT_TRUE(platform.probe_set(IPv4Addr(9, 9, 9, 9)).empty());
}

TEST(Reactive, TriggerWithinTenMinutes) {
  const Fixture fx;
  const auto platform = fx.platform();
  const auto campaign = platform.run_campaign(fx.event(100, 105));
  EXPECT_LE(campaign.trigger_delay_s(), 600);
  EXPECT_GT(campaign.trigger_window, campaign.attack_start);
}

TEST(Reactive, CampaignCoversAttackPlus24Hours) {
  const Fixture fx;
  const auto platform = fx.platform();
  const auto campaign = platform.run_campaign(fx.event(100, 111));
  ASSERT_FALSE(campaign.windows.empty());
  EXPECT_EQ(campaign.windows.front().window, 101);
  EXPECT_EQ(campaign.windows.back().window,
            111 + 24 * netsim::kSecondsPerHour / netsim::kSecondsPerWindow);
  // during_attack flags are consistent with the event interval.
  for (const auto& w : campaign.windows) {
    EXPECT_EQ(w.during_attack, w.window <= 111);
  }
}

TEST(Reactive, HealthyDeploymentFullyResolves) {
  const Fixture fx;
  const auto platform = fx.platform();
  const auto campaign = platform.run_campaign(fx.event(100, 102));
  for (const auto& w : campaign.windows) {
    EXPECT_EQ(w.domains_resolved, w.domains_probed);
    EXPECT_DOUBLE_EQ(w.resolution_rate(), 1.0);
    // Iterative probing hits every nameserver individually.
    EXPECT_EQ(w.per_ns.size(), 2u);
    for (const auto& [ip, tally] : w.per_ns) {
      EXPECT_EQ(tally.probes, w.domains_probed);
      EXPECT_TRUE(tally.responsive());
    }
  }
  EXPECT_EQ(campaign.fully_unresolvable_attack_windows(), 0u);
}

TEST(Reactive, SaturatedDeploymentUnresolvableThenRecovers) {
  Fixture fx;
  // Saturate both nameservers for windows 100..111.
  for (const auto& ip : {fx.ns1, fx.ns2}) {
    attack::AttackSpec spec;
    spec.target = ip;
    spec.start = netsim::window_start(100);
    spec.duration_s = 12 * netsim::kSecondsPerWindow;
    spec.peak_pps = 50e6;
    spec.steady = true;
    fx.schedule.add(spec);
  }
  const auto platform = fx.platform();
  const auto campaign = platform.run_campaign(fx.event(100, 111));
  EXPECT_GT(campaign.attack_windows_probed(), 0u);
  EXPECT_EQ(campaign.fully_unresolvable_attack_windows(),
            campaign.attack_windows_probed());
  const auto recovery = campaign.recovery_window();
  EXPECT_EQ(recovery, 112);  // first post-attack window is healthy
  // Per-NS view: almost nothing answered during the attack (the few
  // "responses" are fast SERVFAIL error paths — the server is distressed,
  // not serving).
  for (const auto& w : campaign.windows) {
    if (!w.during_attack) continue;
    for (const auto& [ip, tally] : w.per_ns) {
      EXPECT_LT(tally.responses, tally.probes / 5 + 1);
    }
  }
}

TEST(Reactive, NoRecoveryReportedWhenCampaignEndsDegraded) {
  Fixture fx;
  for (const auto& ip : {fx.ns1, fx.ns2}) {
    attack::AttackSpec spec;
    spec.target = ip;
    spec.start = netsim::window_start(100);
    // Attack runs far beyond the probing tail.
    spec.duration_s = 80 * netsim::kSecondsPerHour;
    spec.peak_pps = 50e6;
    spec.steady = true;
    fx.schedule.add(spec);
  }
  const auto platform = fx.platform();
  // Telescope saw only the first hour (backscatter silenced, §6.5) — the
  // campaign's "post-attack" tail is in fact still under attack.
  const auto campaign = platform.run_campaign(fx.event(100, 111));
  EXPECT_EQ(campaign.recovery_window(), -1);
}

TEST(Reactive, RunAllSkipsNonNsVictims) {
  const Fixture fx;
  const auto platform = fx.platform();
  telescope::RSDoSEvent other;
  other.victim = IPv4Addr(99, 99, 99, 99);
  other.start_window = 5;
  other.end_window = 6;
  const auto campaigns = platform.run_all({fx.event(100, 101), other});
  EXPECT_EQ(campaigns.size(), 1u);
}

TEST(Reactive, ProbesSpreadWithinWindow) {
  // 50 probes over 300 s is one query every 6 seconds (§8); with fewer
  // domains the spacing widens. We verify via the parameters.
  const ReactiveParams params;
  EXPECT_EQ(params.domains_per_window, 50u);
  EXPECT_EQ(netsim::kSecondsPerWindow / params.domains_per_window, 6);
}

}  // namespace
}  // namespace ddos::reactive
