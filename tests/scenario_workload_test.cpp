#include "scenario/workload.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ddos::scenario {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldParams wp = small_world_params(11);
    wp.provider_count = 120;
    wp.domain_count = 8000;
    world_ = build_world(wp).release();
    LongitudinalParams lp;
    lp.seed = 77;
    lp.scale = 200.0;
    workload_ = new Workload(generate_workload(*world_, lp));
  }
  static void TearDownTestSuite() {
    delete workload_;
    delete world_;
  }
  static World* world_;
  static Workload* workload_;
};

World* WorkloadTest::world_ = nullptr;
Workload* WorkloadTest::workload_ = nullptr;

TEST_F(WorkloadTest, MonthlyTotalsTrackTable3) {
  // Count attacks per month (visible specs only, excluding companions).
  std::map<std::string, std::uint64_t> by_month;
  for (const auto& a : workload_->schedule.attacks()) {
    if (a.spoof != attack::SpoofType::RandomUniform) continue;
    ++by_month[a.start.year_month()];
  }
  for (const auto& row : paper_monthly_totals()) {
    char key[16];
    std::snprintf(key, sizeof(key), "%04d-%02d", row.year, row.month);
    const double expected = row.total_attacks / 200.0;
    EXPECT_NEAR(static_cast<double>(by_month[key]), expected,
                expected * 0.25 + 25.0)
        << key;
  }
}

TEST_F(WorkloadTest, AllAttacksInsideObservationWindow) {
  const netsim::SimTime window_end =
      netsim::day_start(netsim::month_start_day(2022, 4));
  for (const auto& a : workload_->schedule.attacks()) {
    EXPECT_GE(a.start.seconds(), 0);
    EXPECT_LT(a.start, window_end);
    EXPECT_GT(a.peak_pps, 0.0);
    EXPECT_GE(a.duration_s, 300);
  }
}

TEST_F(WorkloadTest, DnsShareRoughlyPaperLike) {
  const double share =
      static_cast<double>(workload_->dns_attacks) /
      static_cast<double>(workload_->dns_attacks + workload_->other_attacks);
  EXPECT_GT(share, 0.005);
  EXPECT_LT(share, 0.05);
}

TEST_F(WorkloadTest, DnsAttacksTargetNsIps) {
  std::uint64_t on_ns = 0, dns_like = 0;
  for (const auto& a : workload_->schedule.attacks()) {
    if (world_->registry.is_ns_ip(a.target)) ++on_ns;
  }
  dns_like = workload_->dns_attacks;
  // Multi-vector companions also target NS IPs, so on_ns >= dns_attacks.
  EXPECT_GE(on_ns, dns_like);
}

TEST_F(WorkloadTest, MultiVectorCompanionsInvisible) {
  EXPECT_GT(workload_->invisible_vectors, 0u);
  std::uint64_t invisible = 0;
  for (const auto& a : workload_->schedule.attacks()) {
    if (a.spoof != attack::SpoofType::RandomUniform) ++invisible;
  }
  EXPECT_EQ(invisible, workload_->invisible_vectors);
}

TEST_F(WorkloadTest, VictimReuseCompressesUniqueIps) {
  std::unordered_set<netsim::IPv4Addr> uniq;
  std::uint64_t other = 0;
  for (const auto& a : workload_->schedule.attacks()) {
    if (world_->registry.is_ns_ip(a.target)) continue;
    ++other;
    uniq.insert(a.target);
  }
  ASSERT_GT(other, 0u);
  const double ratio = static_cast<double>(uniq.size()) / other;
  // Paper: 1.02M unique IPs / 4.04M attacks ~ 0.25.
  EXPECT_GT(ratio, 0.1);
  EXPECT_LT(ratio, 0.55);
}

TEST_F(WorkloadTest, ScriptedCasesPresent) {
  EXPECT_GT(workload_->scripted_attacks, 0u);
  // The Fig-5 megas hit the top provider's pool.
  const auto& top = world_->providers[0];
  bool mega_found = false;
  for (const auto& a : workload_->schedule.attacks_on(top.ns_ips[0])) {
    if (a->peak_pps > 5e5) mega_found = true;
  }
  EXPECT_TRUE(mega_found);
  // The Apple Russia attack is pinned to 2022-01-21 (§6.3.2).
  const int apple = world_->provider_index("Apple Russia");
  ASSERT_GE(apple, 0);
  bool apple_found = false;
  for (const auto& ip :
       world_->providers[static_cast<std::size_t>(apple)].ns_ips) {
    for (const auto* a : workload_->schedule.attacks_on(ip)) {
      if (a->start.to_string().substr(0, 10) == "2022-01-21")
        apple_found = true;
    }
  }
  EXPECT_TRUE(apple_found);
}

TEST_F(WorkloadTest, LinkCapacitiesConfigured) {
  // A unicast provider's /24 link binds under enormous floods.
  for (const auto& p : world_->providers) {
    if (p.style != DeployStyle::UnicastSinglePrefix) continue;
    const auto ip = p.ns_ips.front();
    attack::AttackSchedule probe;  // borrow the configured schedule instead
    (void)probe;
    // Not directly inspectable; assert via utilisation of a synthetic
    // attack on the real schedule: no attack -> zero utilisation.
    EXPECT_GE(workload_->schedule.link_utilisation_at(ip, 0), 0.0);
    break;
  }
}

TEST(Workload, DeterministicInSeed) {
  WorldParams wp = small_world_params(5);
  const auto world = build_world(wp);
  LongitudinalParams lp;
  lp.scale = 400.0;
  const auto w1 = generate_workload(*world, lp);
  const auto w2 = generate_workload(*world, lp);
  ASSERT_EQ(w1.schedule.size(), w2.schedule.size());
  for (std::size_t i = 0; i < w1.schedule.attacks().size(); ++i) {
    const auto& a = w1.schedule.attacks()[i];
    const auto& b = w2.schedule.attacks()[i];
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.start.seconds(), b.start.seconds());
    EXPECT_DOUBLE_EQ(a.peak_pps, b.peak_pps);
  }
}

TEST(Workload, ScriptedCasesCanBeDisabled) {
  WorldParams wp = small_world_params(5);
  const auto world = build_world(wp);
  LongitudinalParams lp;
  lp.scale = 400.0;
  lp.scripted_cases = false;
  const auto w = generate_workload(*world, lp);
  EXPECT_EQ(w.scripted_attacks, 0u);
}

TEST(PaperTotals, MatchPublishedTable3) {
  const auto& rows = paper_monthly_totals();
  ASSERT_EQ(rows.size(), 17u);
  std::uint64_t total = 0, dns = 0;
  for (const auto& r : rows) {
    total += r.total_attacks;
    dns += r.dns_attacks;
  }
  EXPECT_EQ(total, 4039485u);  // Table 1 / Table 3 grand total
  EXPECT_EQ(dns, 48858u);      // Table 3 DNS total
  EXPECT_EQ(rows.front().year, 2020);
  EXPECT_EQ(rows.front().month, 11);
  EXPECT_EQ(rows.back().month, 3);
}

// --- Calibration properties ----------------------------------------------

TEST(Calibration, ExpectedImpactMonotoneInRho) {
  const dns::LoadModelParams model;
  double prev = 0.0;
  for (double rho = 0.0; rho <= 0.999; rho += 0.001) {
    const double impact = expected_impact_at(rho, model, 12.0, 1500.0, 3);
    EXPECT_GE(impact, prev - 1e-6) << "rho=" << rho;
    prev = impact;
  }
}

TEST(Calibration, IdleImpactIsUnity) {
  const dns::LoadModelParams model;
  EXPECT_NEAR(expected_impact_at(0.0, model, 20.0, 1500.0, 3), 1.0, 1e-9);
}

class CalibrationRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CalibrationRoundTrip, RealizedExpectationNearTarget) {
  const double target = GetParam();
  const dns::LoadModelParams model;
  dns::Nameserver ns(netsim::IPv4Addr(10, 0, 0, 1),
                     {dns::Site{"x", 100e3, 12.0, 1.0}});
  ns.set_legit_pps(1e3);
  const double pps = calibrate_attack_pps(ns, target, model);
  EXPECT_GT(pps, 0.0);
  const double rho = (pps + ns.legit_pps()) / 100e3;
  const double achieved = expected_impact_at(rho, model, 12.0, 1500.0, 3);
  EXPECT_NEAR(achieved, target, target * 0.15 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Targets, CalibrationRoundTrip,
                         ::testing::Values(2.0, 10.0, 30.0, 75.0, 120.0));

TEST(Calibration, PeakCorrectionGrowsWithSamples) {
  EXPECT_GT(peak_of_samples_correction(100), peak_of_samples_correction(10));
  EXPECT_GE(peak_of_samples_correction(2), 1.0);
}

}  // namespace
}  // namespace ddos::scenario
