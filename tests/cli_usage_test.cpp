// Guards the CLI's usage header against drifting from the dispatch table
// (the header once advertised only six of the seven commands). Both sides
// now derive from cli::kCommands — main() static_asserts its handler table
// against it — so this test pins the remaining human-visible contract:
// the rendered header names every dispatched command, exactly once, with
// a summary line.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cli_commands.h"

namespace ddos::cli {
namespace {

TEST(CliUsage, EveryCommandAppearsInTheUsageLine) {
  const std::string usage = usage_header();
  const std::string alternation = "<" + command_list() + ">";
  EXPECT_NE(usage.find(alternation), std::string::npos)
      << "usage line missing the command alternation: " << usage;
  for (const CommandInfo& cmd : kCommands) {
    EXPECT_NE(usage.find(std::string(cmd.name)), std::string::npos)
        << "command '" << cmd.name << "' missing from usage header";
  }
}

TEST(CliUsage, EveryCommandHasASummaryLine) {
  const std::string usage = usage_header();
  for (const CommandInfo& cmd : kCommands) {
    EXPECT_FALSE(cmd.summary.empty())
        << "command '" << cmd.name << "' has no summary";
    EXPECT_NE(usage.find(std::string(cmd.summary)), std::string::npos)
        << "summary for '" << cmd.name << "' missing from usage header";
  }
}

TEST(CliUsage, CommandNamesAreUniqueAndWellFormed) {
  std::set<std::string> seen;
  for (const CommandInfo& cmd : kCommands) {
    EXPECT_FALSE(cmd.name.empty());
    EXPECT_TRUE(seen.insert(std::string(cmd.name)).second)
        << "duplicate command '" << cmd.name << "'";
    for (const char c : cmd.name) {
      EXPECT_TRUE(c >= 'a' && c <= 'z')
          << "command names are lowercase words, got '" << cmd.name << "'";
    }
  }
}

TEST(CliUsage, CommandListIsPipeSeparatedInTableOrder) {
  const std::string list = command_list();
  std::size_t pos = 0;
  for (std::size_t i = 0; i < kCommands.size(); ++i) {
    const std::string expected =
        std::string(kCommands[i].name) +
        (i + 1 < kCommands.size() ? "|" : "");
    EXPECT_EQ(list.compare(pos, expected.size(), expected), 0)
        << "command_list() out of order at '" << kCommands[i].name << "'";
    pos += expected.size();
  }
  EXPECT_EQ(pos, list.size());
}

// The bug this file exists for: `serve` (and friends) must never vanish
// from the advertised command set again.
TEST(CliUsage, KnownCommandsArePresent) {
  const std::string usage = usage_header();
  for (const char* name :
       {"world", "run", "generate", "analyze", "serve", "transip",
        "russia"}) {
    EXPECT_NE(usage.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace ddos::cli
