// End-to-end tests for the epoll serve front-end (net::Server), the
// blocking client, and the remote load driver.
//
// The anchor test is fingerprint parity: a remote closed-loop drive with
// C connections against a served engine must produce bit-identical
// per-thread fingerprints to serve::drive with C pool threads over the
// same (seed, mix, engine) — the wire protocol's regression gate. The
// open-loop test injects a server stall through the before_request hook
// and asserts the reported tail latency reflects the *intended* send
// schedule (coordinated-omission correction): a stalled server must show
// p99 far above its per-request service time. The re-fill test swaps the
// engine atomically under concurrent client load (the TSan target for
// the RCU handoff) and checks post-swap answers come from the new
// engine. Malformed-input tests go through a raw socket: one Error
// frame, then the connection closes; semantic errors (BadRequest) keep
// the connection alive.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "exec/pool.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/remote.h"
#include "net/server.h"
#include "scenario/driver.h"
#include "serve/driver.h"
#include "serve/query_engine.h"

namespace ddos::net {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

class NetServerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(21);
    result_ = new scenario::LongitudinalResult(scenario::run_longitudinal(cfg));
    config_ = new scenario::LongitudinalConfig(cfg);
    engine_ = new serve::QueryEngine(*result_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete config_;
    config_ = nullptr;
    delete result_;
    result_ = nullptr;
  }

  /// The fixture engine wrapped for serving (caller keeps it alive).
  static std::shared_ptr<const EngineHandle> handle(std::uint64_t epoch = 1) {
    return EngineHandle::view(*engine_, epoch);
  }

  static scenario::LongitudinalResult* result_;
  static scenario::LongitudinalConfig* config_;
  static serve::QueryEngine* engine_;
};

scenario::LongitudinalResult* NetServerTest::result_ = nullptr;
scenario::LongitudinalConfig* NetServerTest::config_ = nullptr;
serve::QueryEngine* NetServerTest::engine_ = nullptr;

TEST_F(NetServerTest, HelloReportsEngineShapeAndEpoch) {
  ServerOptions options;
  options.threads = 2;
  Server server(handle(/*epoch=*/7), options);
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const HelloResult hello = client.hello(42);
  EXPECT_EQ(hello.key_count, engine_->keys().size());
  EXPECT_EQ(hello.day_min, engine_->day_min());
  EXPECT_EQ(hello.day_max, engine_->day_max());
  EXPECT_EQ(hello.nsset_count, engine_->nsset_count());
  EXPECT_EQ(hello.engine_epoch, 7u);

  client.close();
  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.malformed_frames, 0u);
}

// EngineHandle::load owns the whole DRS store -> StoredRun -> engine
// chain; a server built from it must answer with the same shape as the
// live engine the store was saved from.
TEST_F(NetServerTest, EngineHandleLoadServesASavedStore) {
  const std::string path = temp_path("net-load.drs");
  ASSERT_GT(scenario::save_run(path, *config_, 1, *result_), 0u);

  Server server(EngineHandle::load(path, /*epoch=*/3), ServerOptions{});
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  const HelloResult hello = client.hello();
  EXPECT_EQ(hello.key_count, engine_->keys().size());
  EXPECT_EQ(hello.nsset_count, engine_->nsset_count());
  EXPECT_EQ(hello.engine_epoch, 3u);
  client.close();
  server.stop();
  std::filesystem::remove(path);
}

// The parity gate: remote closed loop with C connections == local drive
// with C pool threads, per-thread and combined, for the same
// (seed, mix, engine). Any wire-format field drift, reordering or
// truncation breaks this.
TEST_F(NetServerTest, RemoteClosedLoopMatchesLocalDriveFingerprints) {
  exec::set_global_threads(2);

  serve::DriveOptions local;
  local.workload.seed = 1234;
  local.ops_per_thread = 2000;
  const serve::DriveReport local_report = serve::drive(*engine_, local);
  ASSERT_EQ(local_report.threads, 2u);

  ServerOptions options;
  options.threads = 2;
  Server server(handle(), options);
  server.start();

  RemoteDriveOptions remote;
  remote.host = "127.0.0.1";
  remote.port = server.port();
  remote.connections = 2;
  remote.workload.seed = 1234;
  remote.ops_per_thread = 2000;
  const serve::DriveReport remote_report = drive_remote(remote);
  server.stop();

  ASSERT_EQ(remote_report.threads, 2u);
  EXPECT_EQ(remote_report.total_ops, local_report.total_ops);
  ASSERT_EQ(remote_report.thread_fingerprints.size(),
            local_report.thread_fingerprints.size());
  for (std::size_t t = 0; t < local_report.thread_fingerprints.size(); ++t) {
    EXPECT_EQ(remote_report.thread_fingerprints[t],
              local_report.thread_fingerprints[t])
        << "thread " << t;
    EXPECT_EQ(remote_report.thread_ops[t], local_report.thread_ops[t]);
  }
  EXPECT_EQ(remote_report.fingerprint, local_report.fingerprint);
  EXPECT_EQ(remote_report.target_qps, 0.0);

  // Per-type op counts travel through distinct response opcodes; equality
  // means every op was answered by the matching handler.
  for (std::size_t i = 0; i < local_report.by_type.size(); ++i) {
    EXPECT_EQ(remote_report.by_type[i].ops, local_report.by_type[i].ops);
  }
}

// Coordinated-omission correction: with a server stalled ~1ms per
// request and an intended rate of 2x the service rate, the open-loop
// driver must report tail latency from the intended send times — the
// queueing delay that a closed loop (which self-clocks down to the
// service rate) structurally cannot see.
TEST_F(NetServerTest, OpenLoopLatencyIsMeasuredFromIntendedSendTime) {
  ServerOptions options;
  options.before_request = [](Opcode op) {
    if (op != Opcode::Hello) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(handle(), options);
  server.start();

  RemoteDriveOptions base;
  base.host = "127.0.0.1";
  base.port = server.port();
  base.connections = 1;
  base.workload.seed = 9;
  base.workload.mix = {1, 0, 0};  // point-only: uniform ~1ms service time
  base.ops_per_thread = 200;

  RemoteDriveOptions closed = base;
  const serve::DriveReport closed_report = drive_remote(closed);

  RemoteDriveOptions open = base;
  open.target_qps = 2000.0;  // intended interval 0.5ms << 1ms service
  const serve::DriveReport open_report = drive_remote(open);
  server.stop();

  EXPECT_EQ(open_report.target_qps, 2000.0);
  EXPECT_EQ(open_report.total_ops, 200u);
  // Fingerprints are transport-policy-independent: same op stream, same
  // engine, same fold order.
  EXPECT_EQ(open_report.fingerprint, closed_report.fingerprint);

  const auto& open_point =
      open_report.by_type[static_cast<std::size_t>(serve::QueryType::PointLookup)];
  const auto& closed_point =
      closed_report.by_type[static_cast<std::size_t>(serve::QueryType::PointLookup)];
  ASSERT_EQ(open_point.ops, 200u);

  // Deterministic queueing math: each op adds >= 0.5ms of backlog, so the
  // 200-op run ends >= 100ms behind schedule and most ops wait tens of
  // milliseconds. 20ms is a 5x safety margin over the minimum p99.
  EXPECT_GT(open_point.p99_us, 20'000.0)
      << "open-loop p99 hides the server stall (coordinated omission)";
  // The closed loop self-clocks to the ~1ms service time; the open loop's
  // tail must dwarf it.
  EXPECT_GT(open_point.p99_us, 3.0 * closed_point.p99_us);
}

// Below saturation the fixed schedule has slack: intended-send-time
// latency collapses back to ~service time (no queueing term), and the
// run's wall clock is the schedule's, not the server's.
TEST_F(NetServerTest, OpenLoopBelowSaturationPacesTheSchedule) {
  ServerOptions options;
  options.before_request = [](Opcode op) {
    if (op != Opcode::Hello) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(handle(), options);
  server.start();

  RemoteDriveOptions open;
  open.host = "127.0.0.1";
  open.port = server.port();
  open.connections = 1;
  open.workload.seed = 9;
  open.workload.mix = {1, 0, 0};
  open.ops_per_thread = 60;
  open.target_qps = 200.0;  // 5ms between sends >> 1ms service: slack
  const serve::DriveReport report = drive_remote(open);
  server.stop();

  ASSERT_EQ(report.total_ops, 60u);
  // The schedule dictates the wall clock: 60 ops at 200/s = 300ms.
  EXPECT_GT(report.wall_s, 0.25);
  EXPECT_LT(report.wall_s, 2.0);
  const auto& point =
      report.by_type[static_cast<std::size_t>(serve::QueryType::PointLookup)];
  // No backlog accumulates, so p99 from intended send times is the
  // ~1ms service time plus loopback noise — far under the 20ms the
  // saturated run exceeds.
  EXPECT_LT(point.p99_us, 20'000.0);
}

// Live re-fill: install_engine is one guarded shared_ptr swap, pinned
// per event batch by the loops. Clients hammer the server across the swap
// (this is the TSan target for the RCU handoff), must never see an
// error or a torn answer, and must observe the epoch bump exactly once;
// post-swap answers come from the new engine.
TEST_F(NetServerTest, InstallEngineSwapsLiveUnderConcurrentLoad) {
  scenario::LongitudinalConfig cfg_b = scenario::small_longitudinal_config(5);
  const scenario::LongitudinalResult result_b =
      scenario::run_longitudinal(cfg_b);
  const serve::QueryEngine engine_b(result_b);

  ServerOptions options;
  options.threads = 2;
  Server server(handle(/*epoch=*/1), options);
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kClients = 3;
  std::atomic<bool> failed{false};
  std::atomic<int> saw_new_epoch{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client;
        client.connect("127.0.0.1", port);
        std::uint64_t last_epoch = 0;
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(30);
        std::uint32_t id = static_cast<std::uint32_t>(c) << 16;
        while (std::chrono::steady_clock::now() < deadline) {
          const HelloResult hello = client.hello(++id);
          if (hello.engine_epoch < last_epoch) {
            failed = true;  // epochs must be monotone per connection
            return;
          }
          last_epoch = hello.engine_epoch;
          // Keep the query path busy across the swap; TopK is valid
          // against either engine regardless of their key universes.
          serve::Op op;
          op.type = serve::QueryType::TopK;
          op.k = 8;
          op.metric = 0;
          client.queue_op(op, ++id);
          client.flush();
          const Answer& answer = client.recv();
          if (answer.opcode != Opcode::TopKOk || answer.request_id != id) {
            failed = true;
            return;
          }
          if (last_epoch == 2) {
            saw_new_epoch.fetch_add(1);
            return;
          }
        }
        failed = true;  // deadline: never saw the new epoch
      } catch (...) {
        failed = true;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.install_engine(EngineHandle::view(engine_b, /*epoch=*/2));
  for (std::thread& t : clients) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(saw_new_epoch.load(), kClients);
  EXPECT_EQ(server.stats().engine_swaps, 1u);

  // A fresh connection is answered entirely by the new engine.
  Client after;
  after.connect("127.0.0.1", port);
  const HelloResult hello = after.hello();
  EXPECT_EQ(hello.engine_epoch, 2u);
  EXPECT_EQ(hello.key_count, engine_b.keys().size());
  EXPECT_EQ(hello.nsset_count, engine_b.nsset_count());

  serve::Op op;
  op.type = serve::QueryType::TopK;
  op.k = 5;
  op.metric = static_cast<std::uint8_t>(serve::TopKMetric::PeakImpact);
  after.queue_op(op, 77);
  after.flush();
  const Answer& answer = after.recv();
  ASSERT_EQ(answer.opcode, Opcode::TopKOk);
  std::vector<serve::TopEntry> expected;
  const std::size_t n = engine_b.top_k(serve::TopKMetric::PeakImpact, 5, expected);
  expected.resize(n);
  ASSERT_NE(answer.rows, nullptr);
  EXPECT_EQ(*answer.rows, expected);

  after.close();
  server.stop();
}

// Unmap safety across store-backed swaps: EngineHandle::load goes
// through the mmap reader, and load_run copies every decoded dataset
// into the StoredRun before the mapping closes — so answers must never
// reference bytes of a store file that has since been swapped out (and
// even deleted). Swapping repeatedly between two loaded stores while
// clients hammer TopK (whose rows point into the engine's run) is the
// dangling-read probe; the TSan job runs this binary to make any
// lifetime violation loud.
TEST_F(NetServerTest, StoreBackedSwapNeverDanglesIntoTheMapping) {
  const std::string path_a = temp_path("net-swap-a.drs");
  const std::string path_b = temp_path("net-swap-b.drs");
  ASSERT_GT(scenario::save_run(path_a, *config_, 1, *result_), 0u);
  scenario::LongitudinalConfig cfg_b = scenario::small_longitudinal_config(5);
  const scenario::LongitudinalResult result_b =
      scenario::run_longitudinal(cfg_b);
  ASSERT_GT(scenario::save_run(path_b, cfg_b, 1, result_b), 0u);

  ServerOptions options;
  options.threads = 2;
  Server server(EngineHandle::load(path_a, /*epoch=*/1), options);
  server.start();
  const std::uint16_t port = server.port();

  constexpr int kClients = 2;
  constexpr std::uint64_t kSwaps = 8;
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        Client client;
        client.connect("127.0.0.1", port);
        std::uint32_t id = static_cast<std::uint32_t>(c) << 16;
        while (!done.load()) {
          serve::Op op;
          op.type = serve::QueryType::TopK;
          op.k = 8;
          op.metric = 0;
          client.queue_op(op, ++id);
          client.flush();
          const Answer& answer = client.recv();
          if (answer.opcode != Opcode::TopKOk || answer.request_id != id ||
              answer.rows == nullptr) {
            failed = true;
            return;
          }
          // Touch every byte of every row: a dangling reference into an
          // unmapped store would fault (or trip TSan) right here.
          for (const serve::TopEntry& row : *answer.rows) {
            if (row.key == 0 && row.value != row.value) failed = true;
          }
        }
      } catch (...) {
        failed = true;
      }
    });
  }

  for (std::uint64_t swap = 0; swap < kSwaps; ++swap) {
    const std::string& path = (swap % 2 == 0) ? path_b : path_a;
    server.install_engine(EngineHandle::load(path, /*epoch=*/swap + 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (swap == kSwaps / 2) {
      // Mid-hammer, delete both files: every engine already installed
      // must be self-contained — nothing may still read the store paths.
      std::filesystem::remove(path_a);
      std::filesystem::remove(path_b);
      break;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done = true;
  for (std::thread& t : clients) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GE(server.stats().engine_swaps, 1u);
  server.stop();
}

// ---- malformed input over a raw socket -------------------------------

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

/// Read until the server closes; returns everything received.
std::vector<std::uint8_t> read_to_eof(int fd) {
  std::vector<std::uint8_t> all;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    all.insert(all.end(), chunk, chunk + n);
  }
  return all;
}

TEST_F(NetServerTest, MalformedFrameGetsOneErrorFrameThenClose) {
  Server server(handle(), ServerOptions{});
  server.start();
  const int fd = raw_connect(server.port());

  std::vector<std::uint8_t> wire;
  encode_hello(1, wire);
  wire[4] = 0x00;  // corrupt the magic byte
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  const std::vector<std::uint8_t> reply = read_to_eof(fd);  // EOF = closed
  ::close(fd);

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(reply, frame, consumed), DecodeStatus::Ok);
  EXPECT_EQ(frame.opcode, Opcode::Error);
  EXPECT_EQ(frame.request_id, 0u);  // header was garbage; id 0 goodbye
  const std::optional<WireError> error = decode_error(frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::Malformed);
  EXPECT_EQ(consumed, reply.size());  // exactly one frame, nothing after

  server.stop();
  EXPECT_EQ(server.stats().malformed_frames, 1u);
}

TEST_F(NetServerTest, OversizedLengthPrefixClosesWithoutBuffering) {
  Server server(handle(), ServerOptions{});
  server.start();
  const int fd = raw_connect(server.port());

  // A length prefix past kMaxFrameBytes must be rejected from the prefix
  // alone — the server never waits for (or buffers) the announced body.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(huge & 0xFF),
      static_cast<std::uint8_t>((huge >> 8) & 0xFF),
      static_cast<std::uint8_t>((huge >> 16) & 0xFF),
      static_cast<std::uint8_t>((huge >> 24) & 0xFF),
  };
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), 0),
            static_cast<ssize_t>(sizeof(prefix)));

  const std::vector<std::uint8_t> reply = read_to_eof(fd);
  ::close(fd);

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(reply, frame, consumed), DecodeStatus::Ok);
  EXPECT_EQ(frame.opcode, Opcode::Error);
  const std::optional<WireError> error = decode_error(frame);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, ErrorCode::Malformed);

  server.stop();
  EXPECT_EQ(server.stats().malformed_frames, 1u);
}

// Semantic errors are not framing errors: an out-of-range key_index gets
// a BadRequest Error frame and the connection stays usable.
TEST_F(NetServerTest, BadRequestAnswersErrorAndKeepsConnection) {
  Server server(handle(), ServerOptions{});
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  serve::Op op;
  op.type = serve::QueryType::PointLookup;
  op.key_index = engine_->keys().size();  // one past the end
  client.queue_op(op, 5);
  client.flush();
  const Answer& answer = client.recv();
  EXPECT_EQ(answer.opcode, Opcode::Error);
  EXPECT_EQ(answer.request_id, 5u);
  EXPECT_EQ(answer.error.code, ErrorCode::BadRequest);

  // Same connection keeps serving.
  const HelloResult hello = client.hello(6);
  EXPECT_EQ(hello.key_count, engine_->keys().size());

  client.close();
  server.stop();
  EXPECT_EQ(server.stats().malformed_frames, 0u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

}  // namespace
}  // namespace ddos::net
