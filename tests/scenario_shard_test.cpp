// The sharded-generation acceptance test: the plan/execute/compact
// pipeline must reproduce a single-process run exactly. parse_shard's
// diagnostics are asserted verbatim (the CLI prints them after "flag --",
// like parse_mix); shard_day_cuts must partition every plan day and every
// telescope event deterministically; and merge(shard_0..N-1) must be
// byte-identical to save_run of the whole world for N in {1, 2, 3, 8}.
// ctest variants re-run this binary under DDOSREPRO_THREADS=2/8 so the
// identity also holds across sweep-pool widths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/driver.h"
#include "scenario/plan.h"
#include "store/merge.h"

namespace ddos::scenario {
namespace {

// Each discovered test case runs as its own process, concurrently with
// the whole-binary DDOSREPRO_THREADS=2/8 ctest variants — TempDir()
// names must be per-process or parallel ctest workers race on the same
// store file.
std::string temp_path(const std::string& name) {
  return (std::filesystem::path(testing::TempDir()) /
          (std::to_string(::getpid()) + "-" + name))
      .string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

LongitudinalConfig test_config() {
  LongitudinalConfig cfg = small_longitudinal_config(21);
  cfg.world.provider_count = 80;
  cfg.world.domain_count = 4000;
  cfg.workload.scale = 200.0;
  return cfg;
}

// One whole-world run shared across test cases (the expensive part).
const LongitudinalResult& whole() {
  static const LongitudinalResult result = run_longitudinal(test_config());
  return result;
}

// The sweep plan every shard derives — identical in each process by the
// determinism argument in plan.h, so deriving it once here is the same
// plan run_shard sees.
const SweepPlan& whole_plan() {
  static const SweepPlan plan =
      derive_sweep_plan(*whole().world, whole().events, nullptr, nullptr);
  return plan;
}

TEST(ParseShard, Valid) {
  std::string error;
  const auto one = parse_shard("0/1", &error);
  ASSERT_TRUE(one.has_value()) << error;
  EXPECT_EQ(*one, (ShardSpec{0, 1}));
  const auto mid = parse_shard("2/3");
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid, (ShardSpec{2, 3}));
  const auto last = parse_shard("7/8", &error);
  ASSERT_TRUE(last.has_value()) << error;
  EXPECT_EQ(last->index, 7u);
  EXPECT_EQ(last->count, 8u);
  EXPECT_TRUE(error.empty());
}

// The exact diagnostic the CLI prints (prefixed "flag --"), tested
// verbatim like parse_mix's: a regression here silently degrades the
// operator-facing error message.
TEST(ParseShard, DiagnosticsVerbatim) {
  const auto expect_error = [](std::string_view spec,
                               const std::string& detail) {
    std::string error;
    EXPECT_FALSE(parse_shard(spec, &error).has_value()) << spec;
    EXPECT_EQ(error,
              "shard expects i/N — a zero-based shard index and the total "
              "shard count (two unsigned integers with i < N, e.g. 0/3), "
              "got '" +
                  std::string(spec) + "': " + detail);
  };
  expect_error("abc", "expected one '/' separator");
  expect_error("/3", "shard index is empty");
  expect_error("0/", "shard count is empty");
  expect_error("-1/3", "shard index '-1' is negative");
  expect_error("0/-2", "shard count '-2' is negative");
  expect_error("0/99999999999", "shard count '99999999999' overflows 32 bits");
  expect_error("x/3", "shard index 'x' is not an unsigned integer");
  expect_error("1.0/3", "shard index '1.0' is not an unsigned integer");
  expect_error("1/0", "shard count is zero; at least one shard is required");
  expect_error("3/3", "shard index 3 is out of range for 3 shards "
                      "(valid: 0..2)");
  expect_error("1/1", "shard index 1 is out of range for 1 shard "
                      "(valid: 0..0)");
}

TEST(ShardPlan, DayCutsDeterministicAndCovering) {
  const SweepPlan& plan = whole_plan();
  ASSERT_FALSE(plan.days.empty());
  constexpr auto kLo = std::numeric_limits<netsim::DayIndex>::min();
  constexpr auto kHi = std::numeric_limits<netsim::DayIndex>::max();

  for (const std::uint32_t count : {1u, 2u, 3u, 8u}) {
    const std::vector<netsim::DayIndex> cuts = shard_day_cuts(plan, count);
    ASSERT_EQ(cuts.size(), count + 1u);
    EXPECT_EQ(cuts.front(), kLo);
    EXPECT_EQ(cuts.back(), kHi);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      EXPECT_LE(cuts[i], cuts[i + 1]);
    }
    // Pure function of (plan, count): re-deriving gives identical cuts.
    EXPECT_EQ(shard_day_cuts(plan, count), cuts);

    // Contiguous half-open ranges: every plan day and every telescope
    // event is owned by exactly one shard.
    for (const auto& [day, domains] : plan.days) {
      std::uint32_t owners = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (shard_bounds(plan, ShardSpec{i, count}).owns_day(day)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "day " << day << " at N=" << count;
    }
    for (const auto& ev : whole().events) {
      std::uint32_t owners = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        if (shard_bounds(plan, ShardSpec{i, count}).owns_event(ev)) ++owners;
      }
      EXPECT_EQ(owners, 1u) << "event ending day " << event_final_day(ev)
                            << " at N=" << count;
    }
  }
}

TEST(ShardPlan, FeedSlicesPartitionTheRows) {
  for (const std::uint32_t count : {1u, 2u, 3u, 8u}) {
    for (const std::uint64_t total : {0ull, 1ull, 7ull, 1000ull, 1001ull}) {
      std::uint64_t expect_begin = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto [begin, end] = shard_feed_slice(total, ShardSpec{i, count});
        EXPECT_EQ(begin, expect_begin) << i << "/" << count << " of " << total;
        EXPECT_LE(begin, end);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, total);
    }
  }
}

// The headline invariant: merging the N shard stores reproduces the
// single-process store at the byte level, and the per-shard accounting
// sums to the whole run's counts.
TEST(ShardMerge, ByteIdenticalToWholeRunStore) {
  const LongitudinalConfig cfg = test_config();
  const std::string whole_path = temp_path("shard-whole.drs");
  save_run(whole_path, cfg, 1, whole());
  const std::string whole_bytes = read_file(whole_path);
  ASSERT_FALSE(whole_bytes.empty());

  for (const std::uint32_t count : {1u, 2u, 3u, 8u}) {
    std::vector<std::string> shard_paths;
    std::uint64_t owned = 0, feed_rows = 0, swept = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string path = temp_path(
          "shard-" + std::to_string(i) + "of" + std::to_string(count) +
          ".drs");
      const ShardRunResult shard =
          run_shard(cfg, ShardSpec{i, count}, 1, path);
      EXPECT_EQ(shard.spec, (ShardSpec{i, count}));
      EXPECT_EQ(shard.events_total, whole().events.size());
      EXPECT_EQ(shard.store_bytes,
                std::filesystem::file_size(std::filesystem::path(path)));
      owned += shard.owned_events;
      feed_rows += shard.feed_rows;
      swept += shard.swept_measurements;
      shard_paths.push_back(path);
    }
    EXPECT_EQ(owned, whole().events.size()) << "N=" << count;
    EXPECT_EQ(feed_rows, whole().feed_records) << "N=" << count;
    EXPECT_EQ(swept, whole().swept_measurements) << "N=" << count;

    // Shard paths may arrive in any order — each store carries its own
    // manifest index. Reverse one set to exercise that.
    if (count == 3) {
      std::reverse(shard_paths.begin(), shard_paths.end());
    }

    const std::string merged_path =
        temp_path("shard-merged-" + std::to_string(count) + ".drs");
    const store::MergeStats stats =
        store::merge_stores(merged_path, shard_paths);
    EXPECT_EQ(stats.shards, count);
    EXPECT_EQ(stats.events_out, whole().joined.size());
    EXPECT_EQ(stats.bytes_written, whole_bytes.size());
    EXPECT_EQ(read_file(merged_path), whole_bytes)
        << "merge of " << count << " shards is not byte-identical";

    // The merged store is a full save_run store: the columnar analyze
    // pass over it reproduces the whole run's headline numbers.
    if (count == 3) {
      const StoreAnalysis merged = analyze_store(merged_path);
      const StoreAnalysis single = analyze_store(whole_path);
      EXPECT_EQ(merged.events, single.events);
      EXPECT_EQ(merged.joined, single.joined);
      EXPECT_EQ(merged.feed_records, single.feed_records);
      EXPECT_EQ(merged.swept_measurements, single.swept_measurements);
      EXPECT_EQ(merged.impact.impaired_10x, single.impact.impaired_10x);
      EXPECT_EQ(merged.impact.severe_100x, single.impact.severe_100x);
      EXPECT_EQ(merged.monthly.size(), single.monthly.size());
    }

    for (const std::string& path : shard_paths) {
      std::filesystem::remove(path);
    }
    std::filesystem::remove(merged_path);
  }
  std::filesystem::remove(whole_path);
}

}  // namespace
}  // namespace ddos::scenario
