#include "netsim/simtime.h"

#include <gtest/gtest.h>

namespace ddos::netsim {
namespace {

TEST(SimTime, EpochIsStartOfObservationWindow) {
  const SimTime t = SimTime::from_utc(2020, 11, 1, 0, 0, 0);
  EXPECT_EQ(t.seconds(), 0);
  EXPECT_EQ(t.day(), 0);
  EXPECT_EQ(t.window(), 0);
}

TEST(SimTime, KnownDates) {
  // 2020-11 has 30 days.
  EXPECT_EQ(SimTime::from_utc(2020, 12, 1).day(), 30);
  // End of the paper's window: 2022-03-31 is day 515.
  EXPECT_EQ(SimTime::from_utc(2022, 3, 31).day(), 515);
}

TEST(SimTime, LeapYearFebruary2024HasNoEffectBefore) {
  // 2021 is not a leap year; Feb has 28 days.
  EXPECT_EQ(days_in_month(2021, 2), 28);
  EXPECT_EQ(days_in_month(2024, 2), 29);
  EXPECT_EQ(days_in_month(2000, 2), 29);
  EXPECT_EQ(days_in_month(2100, 2), 28);
}

TEST(SimTime, WindowArithmetic) {
  const SimTime t = SimTime::from_utc(2020, 11, 1, 0, 5, 0);
  EXPECT_EQ(t.window(), 1);
  EXPECT_EQ(SimTime::from_utc(2020, 11, 1, 0, 4, 59).window(), 0);
  EXPECT_EQ(kWindowsPerDay, 288);
  EXPECT_EQ(SimTime::from_utc(2020, 11, 2).window(), 288);
}

TEST(SimTime, NegativeTimesFloorCorrectly) {
  // One second before the epoch belongs to day -1 / window -1.
  const SimTime t(-1);
  EXPECT_EQ(t.day(), -1);
  EXPECT_EQ(t.window(), -1);
  EXPECT_EQ(t.second_of_day(), kSecondsPerDay - 1);
}

TEST(SimTime, ToStringFormatsUtc) {
  const SimTime t = SimTime::from_utc(2020, 12, 1, 8, 0, 0);
  EXPECT_EQ(t.to_string(), "2020-12-01 08:00:00");
  EXPECT_EQ(t.year_month(), "2020-12");
}

TEST(SimTime, TransIPAttackTimestamps) {
  // The December attack started 2020-11-30 22:00 UTC (§5.1).
  const SimTime start = SimTime::from_utc(2020, 11, 30, 22, 0, 0);
  EXPECT_EQ(start.to_string(), "2020-11-30 22:00:00");
  EXPECT_EQ(start.day(), 29);
  const SimTime end = SimTime::from_utc(2020, 12, 1, 0, 0, 0);
  EXPECT_EQ(end - start, 2 * kSecondsPerHour);
}

TEST(SimTime, DayToYmdRoundTrip) {
  for (DayIndex d : {DayIndex{0}, DayIndex{30}, DayIndex{59}, DayIndex{365},
                     DayIndex{515}}) {
    int y = 0, m = 0, dom = 0;
    day_to_ymd(d, y, m, dom);
    EXPECT_EQ(SimTime::from_utc(y, m, dom).day(), d);
  }
}

TEST(SimTime, DayToYmdNegative) {
  int y = 0, m = 0, dom = 0;
  day_to_ymd(-1, y, m, dom);
  EXPECT_EQ(y, 2020);
  EXPECT_EQ(m, 10);
  EXPECT_EQ(dom, 31);
}

TEST(SimTime, MonthStartDay) {
  EXPECT_EQ(month_start_day(2020, 11), 0);
  EXPECT_EQ(month_start_day(2020, 12), 30);
  EXPECT_EQ(month_start_day(2021, 1), 61);
  EXPECT_EQ(month_start_day(2022, 3), 485);
}

TEST(SimTime, NextMonthWraps) {
  int y = 2021, m = 12;
  next_month(y, m);
  EXPECT_EQ(y, 2022);
  EXPECT_EQ(m, 1);
}

TEST(SimTime, WindowStartInverse) {
  const WindowIndex w = 12345;
  EXPECT_EQ(window_start(w).window(), w);
  EXPECT_EQ(day_start(100).day(), 100);
}

TEST(SimTime, ComparisonAndArithmetic) {
  const SimTime a(100), b(200);
  EXPECT_LT(a, b);
  EXPECT_EQ((a + 100), b);
  EXPECT_EQ(b - a, 100);
  EXPECT_EQ((b - 50).seconds(), 150);
}

}  // namespace
}  // namespace ddos::netsim
