#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ddos::util {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.write_row({"a,b", "he said \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"he said \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, VariadicRowConvertsNumbers) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row("x", 42, 2.5);
  EXPECT_EQ(out.str().substr(0, 5), "x,42,");
}

TEST(CsvWriter, CustomDelimiter) {
  std::ostringstream out;
  CsvWriter w(out, ';');
  w.write_row({"a", "b;c"});
  EXPECT_EQ(out.str(), "a;\"b;c\"\n");
}

TEST(CsvParse, SimpleLine) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvParse, QuotedFieldWithDelimiter) {
  const auto fields = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a,b");
  EXPECT_EQ(fields[1], "c");
}

TEST(CsvParse, EscapedQuotes) {
  const auto fields = parse_csv_line("\"he said \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "he said \"hi\"");
}

TEST(CsvParse, EmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(CsvParse, Document) {
  const auto rows = parse_csv("a,b\r\nc,d\n\ne,f\n");
  ASSERT_EQ(rows.size(), 3u);  // blank line skipped
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
  EXPECT_EQ(rows[2][1], "f");
}

TEST(CsvRoundTrip, WriteThenParse) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> original = {"plain", "with,comma",
                                             "with\"quote", "multi\nline"};
  w.write_row(original);
  // The multiline field means we must parse the whole doc as one logical
  // row; our parser is line-based, so restrict the round-trip check to the
  // single-line fields.
  const auto simple = parse_csv_line("plain,\"with,comma\",\"with\"\"quote\"");
  EXPECT_EQ(simple[0], original[0]);
  EXPECT_EQ(simple[1], original[1]);
  EXPECT_EQ(simple[2], original[2]);
}

}  // namespace
}  // namespace ddos::util
