#include <gtest/gtest.h>

#include <sstream>

#include "telescope/darknet.h"
#include "telescope/feed.h"
#include "telescope/rsdos.h"

namespace ddos::telescope {
namespace {

using netsim::IPv4Addr;
using netsim::Prefix;
using netsim::SimTime;

TEST(Darknet, UcsdLikeGeometry) {
  const Darknet net = Darknet::ucsd_like();
  EXPECT_EQ(net.prefixes().size(), 2u);
  // /9 + /10 = 2^23 + 2^22 addresses = 3/1024 of IPv4 = 1/341.33.
  EXPECT_EQ(net.address_count(), (1u << 23) + (1u << 22));
  EXPECT_NEAR(net.ipv4_fraction(), 3.0 / 1024.0, 1e-12);
  EXPECT_NEAR(net.extrapolation_factor(), 341.33, 0.01);
  EXPECT_EQ(net.slash16_count(), 128u + 64u);
}

TEST(Darknet, Containment) {
  const Darknet net = Darknet::ucsd_like();
  EXPECT_TRUE(net.contains(IPv4Addr(44, 1, 2, 3)));
  EXPECT_TRUE(net.contains(IPv4Addr(45, 150, 0, 1)));
  EXPECT_FALSE(net.contains(IPv4Addr(8, 8, 8, 8)));
}

TEST(Darknet, RejectsBadConfigurations) {
  EXPECT_THROW(Darknet({}), std::invalid_argument);
  EXPECT_THROW(Darknet({Prefix(IPv4Addr(10, 0, 0, 0), 8),
                        Prefix(IPv4Addr(10, 1, 0, 0), 16)}),
               std::invalid_argument);
}

TEST(Darknet, LongPrefixCountsOneSlash16) {
  const Darknet net({Prefix(IPv4Addr(10, 0, 0, 0), 24)});
  EXPECT_EQ(net.slash16_count(), 1u);
}

TEST(PaperExtrapolation, Footnote2) {
  // 21.8 Kppm x 341 / 60 s = ~124 Kpps (§5.1 footnote 2).
  const Darknet net = Darknet::ucsd_like();
  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  EXPECT_NEAR(feed.extrapolate_pps(21.8e3, net), 124e3, 1e3);
}

attack::BackscatterWindow make_window(std::uint64_t packets,
                                      std::uint32_t slash16, double ppm) {
  attack::BackscatterWindow bw;
  bw.window = 10;
  bw.victim = IPv4Addr(9, 9, 9, 9);
  bw.packets = packets;
  bw.distinct_slash16 = slash16;
  bw.peak_ppm = ppm;
  return bw;
}

TEST(Inference, Thresholds) {
  const InferenceParams params;  // 25 pkts, 25 /16s, 5 ppm
  EXPECT_TRUE(passes_thresholds(make_window(25, 25, 5.0), params));
  EXPECT_FALSE(passes_thresholds(make_window(24, 25, 5.0), params));
  EXPECT_FALSE(passes_thresholds(make_window(25, 24, 5.0), params));
  EXPECT_FALSE(passes_thresholds(make_window(25, 25, 4.9), params));
}

TEST(Inference, RecordCarriesFields) {
  auto bw = make_window(100, 50, 20.0);
  bw.protocol = attack::Protocol::UDP;
  bw.first_port = 53;
  bw.unique_ports = 3;
  const RSDoSRecord rec = to_record(bw);
  EXPECT_EQ(rec.window, 10);
  EXPECT_EQ(rec.victim, IPv4Addr(9, 9, 9, 9));
  EXPECT_EQ(rec.packets, 100u);
  EXPECT_EQ(rec.distinct_slash16, 50u);
  EXPECT_EQ(rec.protocol, attack::Protocol::UDP);
  EXPECT_EQ(rec.first_port, 53);
  EXPECT_EQ(rec.unique_ports, 3);
  EXPECT_DOUBLE_EQ(rec.max_ppm, 20.0);
}

RSDoSRecord rec_at(IPv4Addr victim, netsim::WindowIndex w, double ppm = 100.0) {
  RSDoSRecord rec;
  rec.victim = victim;
  rec.window = w;
  rec.max_ppm = ppm;
  rec.packets = 500;
  rec.distinct_slash16 = 40;
  return rec;
}

TEST(Segmentation, ConsecutiveWindowsFormOneEvent) {
  const InferenceParams params;
  const auto events = segment_events(
      {rec_at(IPv4Addr(1, 1, 1, 1), 10), rec_at(IPv4Addr(1, 1, 1, 1), 11),
       rec_at(IPv4Addr(1, 1, 1, 1), 12)},
      params);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_window, 10);
  EXPECT_EQ(events[0].end_window, 12);
  EXPECT_EQ(events[0].duration_s(), 900);
  EXPECT_EQ(events[0].total_packets, 1500u);
}

TEST(Segmentation, GapToleranceStitches) {
  InferenceParams params;
  params.max_gap_windows = 2;
  // Windows 10 and 13: gap of two empty windows (11, 12) — stitched.
  const auto events = segment_events(
      {rec_at(IPv4Addr(1, 1, 1, 1), 10), rec_at(IPv4Addr(1, 1, 1, 1), 13)},
      params);
  ASSERT_EQ(events.size(), 1u);
  // Windows 10 and 14: gap of three — split.
  const auto split = segment_events(
      {rec_at(IPv4Addr(1, 1, 1, 1), 10), rec_at(IPv4Addr(1, 1, 1, 1), 14)},
      params);
  EXPECT_EQ(split.size(), 2u);
}

TEST(Segmentation, SeparatesVictims) {
  const InferenceParams params;
  const auto events = segment_events(
      {rec_at(IPv4Addr(1, 1, 1, 1), 10), rec_at(IPv4Addr(2, 2, 2, 2), 10)},
      params);
  EXPECT_EQ(events.size(), 2u);
}

TEST(Segmentation, AggregatesMaxima) {
  const InferenceParams params;
  auto r1 = rec_at(IPv4Addr(1, 1, 1, 1), 10, 100.0);
  auto r2 = rec_at(IPv4Addr(1, 1, 1, 1), 11, 500.0);
  r2.distinct_slash16 = 90;
  r2.unique_ports = 7;
  const auto events = segment_events({r2, r1}, params);  // order-insensitive
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].max_ppm, 500.0);
  EXPECT_EQ(events[0].max_slash16, 90u);
  EXPECT_EQ(events[0].max_unique_ports, 7u);
}

// The incremental stitcher must reproduce batch segmentation exactly —
// including the head-record choice when two attacks hit one victim in the
// same window (record_less breaks the tie, not insertion order).
TEST(Segmentation, IncrementalStitcherMatchesBatch) {
  InferenceParams params;
  params.max_gap_windows = 2;

  std::vector<RSDoSRecord> records;
  // Victim A: two runs (gap of 4 splits), inserted out of order so the
  // stitcher bridges and splits in both directions.
  for (const netsim::WindowIndex w : {14, 10, 11, 20, 13, 21}) {
    records.push_back(rec_at(IPv4Addr(1, 1, 1, 1), w, 50.0 + w));
  }
  // Victim B: duplicate-window records with different ports/protocols —
  // the event head must be the record_less-minimal one either way.
  auto tie1 = rec_at(IPv4Addr(2, 2, 2, 2), 30);
  tie1.protocol = attack::Protocol::UDP;
  tie1.first_port = 53;
  auto tie2 = rec_at(IPv4Addr(2, 2, 2, 2), 30);
  tie2.protocol = attack::Protocol::TCP;
  tie2.first_port = 443;
  tie2.unique_ports = 9;
  records.push_back(tie2);
  records.push_back(tie1);
  records.push_back(rec_at(IPv4Addr(2, 2, 2, 2), 31));

  const auto batch = segment_events(records, params);

  EventStitcher forward(params);
  for (const auto& rec : records) forward.add(rec);
  EXPECT_EQ(forward.records_added(), records.size());
  EXPECT_EQ(forward.finish(), batch);

  EventStitcher reverse(params);
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    reverse.add(*it);
  }
  EXPECT_EQ(reverse.finish(), batch);
}

TEST(Segmentation, EventTimes) {
  const InferenceParams params;
  const auto events =
      segment_events({rec_at(IPv4Addr(1, 1, 1, 1), 10)}, params);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_time().seconds(), 3000);
  EXPECT_EQ(events[0].end_time().seconds(), 3300);
}

TEST(Feed, IngestVisibleAttack) {
  attack::AttackSchedule sched;
  attack::AttackSpec spec;
  spec.target = IPv4Addr(7, 7, 7, 7);
  spec.start = SimTime(0);
  spec.duration_s = 1800;  // 6 windows
  spec.peak_pps = 50e3;
  spec.steady = true;
  sched.add(spec);

  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  feed.ingest(sched, Darknet::ucsd_like(), 1);
  EXPECT_EQ(feed.records().size(), 6u);
  const auto events = feed.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].victim, IPv4Addr(7, 7, 7, 7));
  EXPECT_EQ(events[0].duration_s(), 1800);
  // Observed ppm extrapolates back to ~50K pps.
  EXPECT_NEAR(feed.extrapolate_pps(events[0].max_ppm, Darknet::ucsd_like()),
              50e3, 10e3);
}

TEST(Feed, WeakAttackBelowThresholdInvisible) {
  attack::AttackSchedule sched;
  attack::AttackSpec spec;
  spec.target = IPv4Addr(7, 7, 7, 7);
  spec.start = SimTime(0);
  spec.duration_s = 900;
  spec.peak_pps = 10.0;  // ~9 backscatter packets/window at the telescope
  sched.add(spec);
  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  feed.ingest(sched, Darknet::ucsd_like(), 1);
  EXPECT_TRUE(feed.records().empty());
}

TEST(Feed, IngestIsDeterministicAndOrderIndependent) {
  attack::AttackSpec a;
  a.id = 5;
  a.target = IPv4Addr(7, 7, 7, 7);
  a.start = SimTime(0);
  a.duration_s = 900;
  a.peak_pps = 50e3;
  attack::AttackSpec b = a;
  b.id = 6;
  b.target = IPv4Addr(8, 8, 8, 8);

  attack::AttackSchedule s1, s2;
  s1.add(a);
  s1.add(b);
  s2.add(b);
  s2.add(a);

  RSDoSFeed f1{InferenceParams{}, attack::BackscatterModelParams{}};
  RSDoSFeed f2{InferenceParams{}, attack::BackscatterModelParams{}};
  f1.ingest(s1, Darknet::ucsd_like(), 99);
  f2.ingest(s2, Darknet::ucsd_like(), 99);
  ASSERT_EQ(f1.records().size(), f2.records().size());
  // Compare as multisets via per-victim totals.
  std::uint64_t pkts1 = 0, pkts2 = 0;
  for (const auto& r : f1.records()) pkts1 += r.packets;
  for (const auto& r : f2.records()) pkts2 += r.packets;
  EXPECT_EQ(pkts1, pkts2);
}

TEST(Feed, SummarizeCountsUniques) {
  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  feed.add_record(rec_at(IPv4Addr(1, 1, 1, 1), 10));
  feed.add_record(rec_at(IPv4Addr(1, 1, 1, 2), 10));   // same /24
  feed.add_record(rec_at(IPv4Addr(1, 1, 1, 1), 100));  // second event, same IP
  feed.add_record(rec_at(IPv4Addr(2, 2, 2, 2), 10));
  const auto summary = feed.summarize([](IPv4Addr ip) {
    return ip.value() >> 24;  // octet as fake ASN
  });
  EXPECT_EQ(summary.attacks, 4u);
  EXPECT_EQ(summary.unique_ips, 3u);
  EXPECT_EQ(summary.unique_slash24, 2u);
  EXPECT_EQ(summary.unique_asn, 2u);
}

TEST(Feed, CsvSerialisation) {
  RSDoSFeed feed{InferenceParams{}, attack::BackscatterModelParams{}};
  feed.add_record(rec_at(IPv4Addr(1, 1, 1, 1), 10));
  std::ostringstream out;
  feed.write_csv(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("window,victim"), std::string::npos);
  EXPECT_NE(s.find("1.1.1.1"), std::string::npos);
}

}  // namespace
}  // namespace ddos::telescope
