#include "dns/registry.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ddos::dns {
namespace {

using netsim::IPv4Addr;

Nameserver ns_at(IPv4Addr ip) {
  return Nameserver(ip, {Site{"x", 50e3, 20.0, 1.0}});
}

TEST(DnsRegistry, NameserverLifecycle) {
  DnsRegistry reg;
  EXPECT_FALSE(reg.has_nameserver(IPv4Addr(1, 1, 1, 1)));
  reg.add_nameserver(ns_at(IPv4Addr(1, 1, 1, 1)));
  EXPECT_TRUE(reg.has_nameserver(IPv4Addr(1, 1, 1, 1)));
  EXPECT_EQ(reg.nameserver(IPv4Addr(1, 1, 1, 1)).ip(), IPv4Addr(1, 1, 1, 1));
  EXPECT_THROW(reg.nameserver(IPv4Addr(2, 2, 2, 2)), std::out_of_range);
  EXPECT_THROW(reg.mutable_nameserver(IPv4Addr(2, 2, 2, 2)),
               std::out_of_range);
  EXPECT_EQ(reg.nameserver_count(), 1u);
}

TEST(DnsRegistry, DomainsShareNssetWhenIpsMatch) {
  DnsRegistry reg;
  const IPv4Addr a(1, 0, 0, 1), b(1, 0, 0, 2);
  const DomainId d1 = reg.add_domain(DomainName::must("x.com"), {a, b});
  const DomainId d2 = reg.add_domain(DomainName::must("y.com"), {b, a});
  const DomainId d3 = reg.add_domain(DomainName::must("z.com"), {a});
  EXPECT_EQ(reg.nsset_of_domain(d1), reg.nsset_of_domain(d2));
  EXPECT_NE(reg.nsset_of_domain(d1), reg.nsset_of_domain(d3));
  EXPECT_EQ(reg.nsset_count(), 2u);
  EXPECT_EQ(reg.domain_count(), 3u);
}

TEST(DnsRegistry, NssetKeyIsSortedUnique) {
  DnsRegistry reg;
  const DomainId d = reg.add_domain(
      DomainName::must("x.com"),
      {IPv4Addr(2, 0, 0, 2), IPv4Addr(1, 0, 0, 1), IPv4Addr(2, 0, 0, 2)});
  const auto& key = reg.nsset_key(reg.nsset_of_domain(d));
  ASSERT_EQ(key.ips.size(), 2u);
  EXPECT_LT(key.ips[0], key.ips[1]);
}

TEST(DnsRegistry, EmptyNsSetRejected) {
  DnsRegistry reg;
  EXPECT_THROW(reg.add_domain(DomainName::must("x.com"), {}),
               std::invalid_argument);
}

TEST(DnsRegistry, DomainsOfNsset) {
  DnsRegistry reg;
  const IPv4Addr a(1, 0, 0, 1);
  const DomainId d1 = reg.add_domain(DomainName::must("x.com"), {a});
  const DomainId d2 = reg.add_domain(DomainName::must("y.com"), {a});
  const auto doms = reg.domains_of_nsset(reg.nsset_of_domain(d1));
  ASSERT_EQ(doms.size(), 2u);
  EXPECT_EQ(doms[0], d1);
  EXPECT_EQ(doms[1], d2);
}

TEST(DnsRegistry, NssetsContainingIp) {
  DnsRegistry reg;
  const IPv4Addr shared(1, 0, 0, 1);
  reg.add_domain(DomainName::must("x.com"), {shared, IPv4Addr(1, 0, 0, 2)});
  reg.add_domain(DomainName::must("y.com"), {shared, IPv4Addr(1, 0, 0, 3)});
  reg.add_domain(DomainName::must("z.com"), {IPv4Addr(9, 9, 9, 9)});
  EXPECT_EQ(reg.nssets_containing(shared).size(), 2u);
  EXPECT_EQ(reg.nssets_containing(IPv4Addr(9, 9, 9, 9)).size(), 1u);
  EXPECT_TRUE(reg.nssets_containing(IPv4Addr(8, 8, 8, 8)).empty());
}

TEST(DnsRegistry, DomainsOfNsIpUnionsNssets) {
  DnsRegistry reg;
  const IPv4Addr shared(1, 0, 0, 1);
  reg.add_domain(DomainName::must("x.com"), {shared, IPv4Addr(1, 0, 0, 2)});
  reg.add_domain(DomainName::must("y.com"), {shared});
  reg.add_domain(DomainName::must("z.com"), {shared});
  const auto doms = reg.domains_of_ns_ip(shared);
  EXPECT_EQ(doms.size(), 3u);
  EXPECT_EQ(reg.domain_count_of_ns_ip(shared), 3u);
  EXPECT_EQ(reg.domain_count_of_ns_ip(IPv4Addr(7, 7, 7, 7)), 0u);
}

TEST(DnsRegistry, AllNsIps) {
  DnsRegistry reg;
  reg.add_domain(DomainName::must("x.com"),
                 {IPv4Addr(1, 0, 0, 1), IPv4Addr(1, 0, 0, 2)});
  reg.add_domain(DomainName::must("y.com"), {IPv4Addr(1, 0, 0, 1)});
  auto ips = reg.all_ns_ips();
  std::sort(ips.begin(), ips.end());
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_TRUE(reg.is_ns_ip(IPv4Addr(1, 0, 0, 1)));
  EXPECT_FALSE(reg.is_ns_ip(IPv4Addr(5, 5, 5, 5)));
}

TEST(DnsRegistry, OpenResolverRegistry) {
  DnsRegistry reg;
  const IPv4Addr google(8, 8, 8, 8);
  EXPECT_FALSE(reg.is_open_resolver(google));
  reg.mark_open_resolver(google);
  EXPECT_TRUE(reg.is_open_resolver(google));
  EXPECT_EQ(reg.open_resolver_count(), 1u);
  reg.mark_open_resolver(google);  // idempotent
  EXPECT_EQ(reg.open_resolver_count(), 1u);
}

TEST(DnsRegistry, DomainNameLookup) {
  DnsRegistry reg;
  const DomainId d = reg.add_domain(DomainName::must("mil.ru"),
                                    {IPv4Addr(1, 0, 0, 1)});
  EXPECT_EQ(reg.domain_name(d).str(), "mil.ru");
  EXPECT_THROW(reg.domain_name(999), std::out_of_range);
}

TEST(DnsRegistry, IterationBounds) {
  DnsRegistry reg;
  EXPECT_EQ(reg.first_domain(), reg.end_domain());
  reg.add_domain(DomainName::must("a.com"), {IPv4Addr(1, 0, 0, 1)});
  reg.add_domain(DomainName::must("b.com"), {IPv4Addr(1, 0, 0, 1)});
  EXPECT_EQ(reg.end_domain() - reg.first_domain(), 2u);
}

}  // namespace
}  // namespace ddos::dns
