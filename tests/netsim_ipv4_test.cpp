#include "netsim/ipv4.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ddos::netsim {
namespace {

TEST(IPv4Addr, OctetConstructionAndFormat) {
  const IPv4Addr a(8, 8, 4, 4);
  EXPECT_EQ(a.to_string(), "8.8.4.4");
  EXPECT_EQ(a.value(), 0x08080404u);
}

TEST(IPv4Addr, ParseValid) {
  const auto a = IPv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), "192.168.1.200");
  EXPECT_EQ(IPv4Addr::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Addr::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Addr, ParseInvalid) {
  EXPECT_FALSE(IPv4Addr::parse(""));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Addr::parse("1.2.3.256"));
  EXPECT_FALSE(IPv4Addr::parse("a.b.c.d"));
  EXPECT_FALSE(IPv4Addr::parse("1..2.3"));
}

TEST(IPv4Addr, RoundTripParseFormat) {
  for (std::uint32_t v : {0u, 1u, 0x01020304u, 0xC0A80101u, 0xFFFFFFFFu}) {
    const IPv4Addr a(v);
    const auto parsed = IPv4Addr::parse(a.to_string());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->value(), v);
  }
}

TEST(IPv4Addr, Slash24Slash16) {
  const IPv4Addr a(10, 20, 30, 40);
  EXPECT_EQ(a.slash24().to_string(), "10.20.30.0");
  EXPECT_EQ(a.slash16().to_string(), "10.20.0.0");
}

TEST(IPv4Addr, Ordering) {
  EXPECT_LT(IPv4Addr(1, 0, 0, 0), IPv4Addr(2, 0, 0, 0));
  EXPECT_EQ(IPv4Addr(1, 2, 3, 4), IPv4Addr(0x01020304u));
}

TEST(IPv4Addr, HashSpreadsSequentialAddresses) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<IPv4Addr>{}(IPv4Addr(0x0A000000u + i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);  // no collisions on a small sequence
}

TEST(Prefix, NormalisesHostBits) {
  const Prefix p(IPv4Addr(1, 2, 3, 4), 24);
  EXPECT_EQ(p.network().to_string(), "1.2.3.0");
  EXPECT_EQ(p, Prefix(IPv4Addr(1, 2, 3, 200), 24));
}

TEST(Prefix, ContainsAddress) {
  const Prefix p(IPv4Addr(10, 0, 0, 0), 8);
  EXPECT_TRUE(p.contains(IPv4Addr(10, 255, 1, 2)));
  EXPECT_FALSE(p.contains(IPv4Addr(11, 0, 0, 0)));
}

TEST(Prefix, ContainsPrefix) {
  const Prefix big(IPv4Addr(10, 0, 0, 0), 8);
  const Prefix small(IPv4Addr(10, 1, 0, 0), 16);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Prefix, SizeAndRange) {
  const Prefix p(IPv4Addr(192, 168, 1, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.first().to_string(), "192.168.1.0");
  EXPECT_EQ(p.last().to_string(), "192.168.1.255");
  EXPECT_EQ(Prefix(IPv4Addr(0), 0).size(), std::uint64_t{1} << 32);
}

TEST(Prefix, UcsdTelescopeSizes) {
  // The /9 + /10 telescope covers 1/341.33 of IPv4 (~12.58M addresses).
  const Prefix p9(IPv4Addr(44, 0, 0, 0), 9);
  const Prefix p10(IPv4Addr(45, 128, 0, 0), 10);
  EXPECT_EQ(p9.size() + p10.size(), (1u << 23) + (1u << 22));
}

TEST(Prefix, ParseAndFormat) {
  const auto p = Prefix::parse("10.1.2.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "10.1.2.0/24");
  EXPECT_EQ(p->length(), 24);
  EXPECT_FALSE(Prefix::parse("10.1.2.0"));
  EXPECT_FALSE(Prefix::parse("10.1.2.0/33"));
  EXPECT_FALSE(Prefix::parse("bad/8"));
}

TEST(Prefix, LengthClamped) {
  EXPECT_EQ(Prefix(IPv4Addr(1, 2, 3, 4), 40).length(), 32);
  EXPECT_EQ(Prefix(IPv4Addr(1, 2, 3, 4), -1).length(), 0);
}

TEST(PrefixMask, Values) {
  EXPECT_EQ(prefix_mask(0), 0u);
  EXPECT_EQ(prefix_mask(8), 0xFF000000u);
  EXPECT_EQ(prefix_mask(24), 0xFFFFFF00u);
  EXPECT_EQ(prefix_mask(32), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace ddos::netsim
