// Figures 11-13 — efficacy of resilience techniques: anycast, AS
// diversity, and /24 prefix diversity.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

namespace {

void print_groups(const char* title,
                  const std::vector<core::GroupImpact>& groups) {
  std::cout << title << "\n";
  util::TextTable table({"Class", "Events", "Median", "p90", "Max",
                         ">=10x", ">=100x", "Complete failures"});
  for (const auto& g : groups) {
    table.add_row({g.group, util::with_commas(g.events),
                   util::format_fixed(g.median_impact, 2),
                   util::format_fixed(g.p90_impact, 1),
                   util::format_fixed(g.max_impact, 0),
                   std::to_string(g.impaired_10x),
                   std::to_string(g.severe_100x),
                   std::to_string(g.complete_failures)});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  bench::print_header(
      "Figures 11-13: resilience technique efficacy",
      "anycast impact ~1-1.5x with no 100x cases; 81% of complete failures "
      "single-ASN; 60% of failing NSSets single-/24; 99% of failing domains "
      "unicast");
  const auto& r = bench::longitudinal();

  print_groups("Fig. 11 — anycast class:", core::impact_by_anycast(r.joined));
  print_groups("Fig. 12 — AS diversity:",
               core::impact_by_as_diversity(r.joined));
  print_groups("Fig. 13 — /24 prefix diversity:",
               core::impact_by_prefix_diversity(r.joined));

  const auto attr = core::failure_attribution(r.joined);
  util::TextTable table({"Complete-failure attribution", "Paper", "Measured"});
  table.add_row({"complete failures", "-",
                 util::with_commas(attr.complete_failures)});
  table.add_row({"single-ASN share", "81%",
                 bench::pct(attr.single_asn_share(), 0)});
  table.add_row({"single-/24 share", "60%",
                 bench::pct(attr.single_prefix_share(), 0)});
  table.add_row({"unicast share", "99%", bench::pct(attr.unicast_share(), 0)});
  std::cout << table.to_string();
  std::cout << "\nshape check: every >=100x event and every complete "
               "failure sits on unicast infrastructure; full-anycast "
               "deployments stay within ~2x — the paper's §6.6 takeaway.\n";
  return 0;
}
