// Figure 7 and §6.3.1 — resolution failures: share of events with
// failures, timeout/SERVFAIL split, the failure-rate scatter, and the port
// mix of harmful attacks.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 7 / §6.3.1: complete failures in resolution",
      "99% of 12,691 events kept answering; failures split 92% timeout / 8% "
      "SERVFAIL; harmful attacks target 53 (49%), 80 (31%), 443 (11%); 99% "
      "of failing domains on unicast");
  const auto& r = bench::longitudinal();
  const auto s = core::failure_summary(r.joined);

  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"events analysed", "12,691",
                 util::with_commas(s.events)});
  table.add_row({"events with failures", "~1%",
                 bench::pct(s.failing_event_share(), 2)});
  table.add_row({"timeout share of failures", "92%",
                 bench::pct(s.timeout_share_of_failures())});
  table.add_row({"SERVFAIL share of failures", "8%",
                 bench::pct(1.0 - s.timeout_share_of_failures())});
  table.add_separator();
  table.add_row({"harmful attacks on port 53", "49%",
                 bench::pct(s.failed_event_ports.fraction("53"), 0)});
  table.add_row({"harmful attacks on port 80", "31%",
                 bench::pct(s.failed_event_ports.fraction("80"), 0)});
  table.add_row({"harmful attacks on port 443", "11%",
                 bench::pct(s.failed_event_ports.fraction("443"), 0)});
  std::cout << table.to_string();

  // The Fig. 7 scatter: failure rate vs measured domains, coloured by
  // hosted-domain magnitude.
  const auto pts = core::failure_points(r.joined);
  std::cout << "\nFig. 7 scatter (failing events): measured-domains, "
               "failure-rate, base-curve (1/measured), hosted-domains, "
               "deployment\n";
  for (const auto& p : pts) {
    // The figure's base curve is a single failure per attack window:
    // failure_rate == 1/measured. Points above it failed repeatedly.
    std::cout << "  " << p.domains_measured << "\t"
              << bench::pct(p.failure_rate, 0) << "\t"
              << bench::pct(1.0 / std::max(1u, p.domains_measured), 0) << "\t"
              << p.domains_hosted << "\t"
              << (p.unicast_only ? "unicast" : "anycast/partial") << "\n";
  }
  std::uint64_t unicast = 0, complete = 0, complete_large = 0;
  for (const auto& p : pts) {
    if (p.unicast_only) ++unicast;
    if (p.failure_rate >= 0.999) {
      ++complete;
      if (p.domains_hosted > 100) ++complete_large;
    }
  }
  std::cout << "\nshape check: " << unicast << "/" << pts.size()
            << " failing events on unicast (paper 99%); " << complete
            << " complete (100%) failures of which " << complete_large
            << " on larger infrastructures (paper: nic.ru's registrar-scale "
               "secondary service).\n";
  return 0;
}
