// Ablation bench — the design decisions DESIGN.md flags:
//
//   (1) queueing vs linear latency inflation: the 10x/100x impact tail of
//       Fig. 8 exists only under the queueing law;
//   (2) previous-day vs same-day nameserver join: joining against the
//       attack day's own observations loses the events where the attack
//       itself silenced the servers;
//   (3) capacity headroom scaling: without sublinear over-provisioning,
//       intensity would predict impact and Fig. 9's null result vanishes.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/impact.h"
#include "dns/load_model.h"

using namespace ddos;

namespace {

void ablate_inflation_law() {
  std::cout << "-- (1) latency inflation law --\n";
  const dns::LoadModelParams model;
  util::TextTable table({"utilisation", "queueing mult", "linear mult"});
  for (const double rho : {0.5, 0.9, 0.97, 0.99, 0.999}) {
    table.add_row({util::format_fixed(rho, 3),
                   util::format_fixed(
                       dns::rtt_multiplier(rho, model,
                                           dns::InflationLaw::Queueing), 1) +
                       "x",
                   util::format_fixed(
                       dns::rtt_multiplier(rho, model,
                                           dns::InflationLaw::Linear), 2) +
                       "x"});
  }
  std::cout << table.to_string();
  std::cout << "the linear law cannot exceed ~1.35x below saturation: the "
               "paper's 10-100x impact tail (Fig. 8) is unreachable — the "
               "queueing shape, not attack volume, creates it.\n\n";
}

void ablate_previous_day_join() {
  std::cout << "-- (2) previous-day vs same-day nameserver join --\n";
  // For sub-day attacks the two variants coincide (the server still
  // answers outside the attack hours, so it is "seen" either way).
  std::uint64_t kept_prev = 0, kept_same = 0;
  {
    const auto& r = bench::longitudinal();
    for (const auto& ev : r.events) {
      if (!r.world->registry.is_ns_ip(ev.victim) ||
          r.world->registry.is_open_resolver(ev.victim))
        continue;
      const netsim::DayIndex day = ev.start_time().day();
      if (r.store.ns_seen_on(ev.victim, day - 1)) ++kept_prev;
      if (r.store.ns_seen_on(ev.victim, day)) ++kept_same;
    }
  }
  std::cout << "longitudinal (mostly sub-day attacks): previous-day keeps "
            << kept_prev << ", same-day keeps " << kept_same << "\n";

  // The variants diverge on multi-day blackouts (mil.ru, §5.2: eight days
  // down, geofenced). Constructed demonstration: a server answering on
  // day 9, silenced from day 10 onward; the telescope stitches an event
  // starting day 10.
  dns::DnsRegistry registry;
  const netsim::IPv4Addr ns_ip(10, 0, 0, 1);
  registry.add_nameserver(
      dns::Nameserver(ns_ip, {dns::Site{"x", 50e3, 20.0, 1.0}}));
  for (int d = 0; d < 8; ++d) {
    registry.add_domain(
        dns::DomainName::must("m" + std::to_string(d) + ".ru"), {ns_ip});
  }
  openintel::MeasurementStore store;
  const auto add = [&](netsim::DayIndex day, int wod,
                       dns::ResponseStatus status) {
    openintel::Measurement m;
    m.time = netsim::SimTime(day * netsim::kSecondsPerDay +
                             wod * netsim::kSecondsPerWindow);
    m.domain = 0;
    m.nsset = registry.nsset_of_domain(0);
    m.status = status;
    m.rtt_ms = status == dns::ResponseStatus::Ok ? 20.0 : 0.0;
    m.chosen_ns = ns_ip;
    store.add(m);
  };
  for (int i = 0; i < 8; ++i) add(9, i, dns::ResponseStatus::Ok);
  for (netsim::DayIndex day = 10; day <= 12; ++day) {
    for (int i = 0; i < 8; ++i) add(day, i, dns::ResponseStatus::Timeout);
  }
  telescope::RSDoSEvent ev;
  ev.victim = ns_ip;
  ev.start_window = 10 * netsim::kWindowsPerDay;
  ev.end_window = 12 * netsim::kWindowsPerDay + 7;

  const bool prev_day_joins = store.ns_seen_on(ns_ip, 9);
  const bool same_day_joins = store.ns_seen_on(ns_ip, 10);
  util::TextTable table({"Join variant", "multi-day blackout joined?"});
  table.add_row({"previous-day (paper §4.2)", prev_day_joins ? "yes" : "NO"});
  table.add_row({"same-day (ablation)", same_day_joins ? "yes" : "NO"});
  std::cout << table.to_string();
  std::cout << "a server silenced for its victims' whole observation day "
               "never appears in same-day observations — the previous-day "
               "snapshot is what lets the worst events join at all.\n\n";
}

void ablate_headroom() {
  std::cout << "-- (3) capacity headroom scaling --\n";
  // Re-run a smaller pipeline with flat capacities (exponent 0) and
  // compare the intensity-impact correlation.
  scenario::LongitudinalConfig flat = scenario::default_longitudinal_config();
  flat.workload.scale = 90.0;
  flat.world.domain_count = 40000;
  flat.world.provider_count = 600;
  flat.world.capacity_exponent = 0.0;
  flat.world.capacity_base_pps = 80e3;  // one size fits nobody
  const auto flat_result = scenario::run_longitudinal(flat);
  const auto flat_series =
      core::intensity_impact_series(flat_result.joined, flat_result.darknet);

  scenario::LongitudinalConfig scaled = flat;
  scaled.world.capacity_exponent = 0.40;
  scaled.world.capacity_base_pps = 18e3;
  const auto scaled_result = scenario::run_longitudinal(scaled);
  const auto scaled_series = core::intensity_impact_series(
      scaled_result.joined, scaled_result.darknet);

  util::TextTable table({"Capacity model", "Pearson(intensity, impact)",
                         "events"});
  table.add_row({"flat capacity (ablation)",
                 util::format_fixed(flat_series.pearson, 3),
                 util::with_commas(flat_series.n())});
  table.add_row({"sublinear headroom (default)",
                 util::format_fixed(scaled_series.pearson, 3),
                 util::with_commas(scaled_series.n())});
  std::cout << table.to_string();
  std::cout << "with flat capacities intensity predicts impact much more "
               "strongly; size-scaled over-provisioning is what produces "
               "the paper's null correlation (Fig. 9).\n";
}

void ablate_measurement_floor() {
  std::cout << "-- (4) the >=5-measured-domains noise floor (§6.3) --\n";
  const auto& r = bench::longitudinal();
  const core::ResilienceClassifier classifier(
      r.world->registry, r.world->census, r.world->routes, r.world->orgs);
  util::TextTable table({"min measured", "joined events",
                         "events with <5 measurements",
                         "impaired (>=10x) share"});
  for (const std::uint32_t floor : {1u, 5u}) {
    core::JoinParams params;
    params.min_measured_domains = floor;
    core::JoinPipeline pipeline(r.world->registry, r.store, classifier,
                                params);
    const auto joined = pipeline.run(r.events);
    std::uint64_t thin = 0, impaired = 0;
    for (const auto& ev : joined) {
      if (ev.domains_measured < 5) ++thin;
      if (ev.peak_impact >= core::kImpairedThreshold) ++impaired;
    }
    table.add_row({std::to_string(floor), util::with_commas(joined.size()),
                   util::with_commas(thin),
                   bench::pct(joined.empty()
                                  ? 0.0
                                  : static_cast<double>(impaired) /
                                        joined.size())});
  }
  std::cout << table.to_string();
  std::cout << "dropping the floor admits a long tail of 1-4-measurement "
               "events whose single-sample window averages swing the "
               "impact statistics — the noise §6.3 excludes.\n";
}

}  // namespace

int main() {
  std::cout << util::banner("Ablations: model design choices") << "\n\n";
  ablate_inflation_law();
  ablate_previous_day_join();
  ablate_headroom();
  ablate_measurement_floor();
  return 0;
}
