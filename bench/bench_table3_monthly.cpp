// Table 3 — monthly attack activity: DNS-infrastructure attacks vs the
// rest, with unique victim-IP splits.
#include "bench_common.h"

#include "core/analysis.h"
#include "scenario/workload.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Table 3: monthly attack activity",
      "DNS attacks are 0.57-2.12% of all attacks per month; 1.21% overall");
  const auto& r = bench::longitudinal();
  const auto rows = core::monthly_summary(r.events, r.world->registry);

  // Index the paper's monthly rows for side-by-side shares.
  std::map<std::pair<int, int>, scenario::MonthSpec> paper;
  for (const auto& row : scenario::paper_monthly_totals()) {
    paper[{row.year, row.month}] = row;
  }

  util::TextTable table({"Month", "#DNS", "#Other", "Total", "DNS share",
                         "Paper share", "DNS IPs", "Other IPs"});
  for (const auto& row : rows) {
    const auto it = paper.find({row.year, row.month});
    const double paper_share =
        it == paper.end()
            ? 0.0
            : static_cast<double>(it->second.dns_attacks) /
                  it->second.total_attacks;
    char month[16];
    std::snprintf(month, sizeof(month), "%04d-%02d", row.year, row.month);
    table.add_row({month, util::with_commas(row.dns_attacks),
                   util::with_commas(row.other_attacks),
                   util::with_commas(row.total_attacks()),
                   bench::pct(row.dns_attack_share(), 2),
                   bench::pct(paper_share, 2),
                   util::with_commas(row.dns_ips),
                   util::with_commas(row.other_ips)});
  }
  table.add_separator();
  const auto totals = core::summary_totals(rows);
  table.add_row({"Total", util::with_commas(totals.dns_attacks),
                 util::with_commas(totals.other_attacks),
                 util::with_commas(totals.total_attacks()),
                 bench::pct(totals.dns_attack_share(), 2), "1.21%",
                 util::with_commas(totals.dns_ips),
                 util::with_commas(totals.other_ips)});
  std::cout << table.to_string();
  return 0;
}
