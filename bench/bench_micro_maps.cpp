// Micro-benchmarks of util::FlatMap / FlatSet against std::unordered_map /
// std::unordered_set on the pipeline's actual key distributions:
//
//   * store keys — (nsset << 32 | window) packed uint64s, thousands of
//     nssets, windows advancing through a day (the MeasurementStore fold);
//   * sparse probe keys — hash-scrambled lookups with a ~50% hit rate
//     (the join's window probes and retention key-set membership);
//   * churn — insert/erase waves (finalize_day window pruning), which for
//     FlatMap exercises the tombstone-free backward-shift erase.
//
// Each case writes an entry consumed by tools/check_perf_regression.py via
// the google-benchmark console output; run with --benchmark_min_time=0.25
// for stable-enough numbers on CI runners.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netsim/rng.h"
#include "util/flat_map.h"

using namespace ddos;

namespace {

// Packed (nsset, window) keys shaped like one sweep day: `n` measurements
// over `nssets` delegations, windows walking forward through the day.
std::vector<std::uint64_t> store_keys(std::size_t n, std::uint32_t nssets,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  netsim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t nsset = rng.uniform_u64(nssets);
    const std::uint64_t window = (i * 288) / n;
    keys.push_back(nsset << 32 | window);
  }
  return keys;
}

template <typename Map>
void fill(Map& map, const std::vector<std::uint64_t>& keys) {
  for (const auto k : keys) ++map[k];
}

void BM_FlatMapFold(benchmark::State& state) {
  const auto keys =
      store_keys(static_cast<std::size_t>(state.range(0)), 4096, 1);
  for (auto _ : state) {
    util::FlatMap<std::uint64_t, std::uint64_t> map;
    fill(map, keys);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_FlatMapFold)->Arg(1 << 14)->Arg(1 << 18);

void BM_UnorderedMapFold(benchmark::State& state) {
  const auto keys =
      store_keys(static_cast<std::size_t>(state.range(0)), 4096, 1);
  for (auto _ : state) {
    std::unordered_map<std::uint64_t, std::uint64_t> map;
    fill(map, keys);
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(keys.size()));
}
BENCHMARK(BM_UnorderedMapFold)->Arg(1 << 14)->Arg(1 << 18);

void BM_FlatMapProbe(benchmark::State& state) {
  const auto keys = store_keys(1 << 18, 4096, 1);
  util::FlatMap<std::uint64_t, std::uint64_t> map;
  fill(map, keys);
  // ~50% hits: even draws re-use a present key, odd draws miss.
  netsim::Rng rng(2);
  std::vector<std::uint64_t> probes;
  for (int i = 0; i < 4096; ++i) {
    probes.push_back(i % 2 == 0 ? keys[rng.uniform_u64(keys.size())]
                                : rng.next_u64());
  }
  std::size_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(probes[p]));
    p = (p + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapProbe);

void BM_UnorderedMapProbe(benchmark::State& state) {
  const auto keys = store_keys(1 << 18, 4096, 1);
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  fill(map, keys);
  netsim::Rng rng(2);
  std::vector<std::uint64_t> probes;
  for (int i = 0; i < 4096; ++i) {
    probes.push_back(i % 2 == 0 ? keys[rng.uniform_u64(keys.size())]
                                : rng.next_u64());
  }
  std::size_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(probes[p]));
    p = (p + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnorderedMapProbe);

void BM_FlatSetChurn(benchmark::State& state) {
  // finalize_day-shaped churn: insert a day of window keys, erase the
  // ~90% outside attack windows, repeat on the next day's key range.
  const std::size_t per_day = 1 << 14;
  std::uint64_t day = 0;
  util::FlatSet<std::uint64_t> set;
  for (auto _ : state) {
    const std::uint64_t base = (day++) * 288;
    for (std::size_t i = 0; i < per_day; ++i)
      set.insert((i % 4096) << 32 | (base + i * 288 / per_day));
    std::uint64_t erased = 0;
    for (std::size_t i = 0; i < per_day; ++i) {
      const std::uint64_t key = (i % 4096) << 32 | (base + i * 288 / per_day);
      if (key % 10 != 0) erased += set.erase(key) ? 1 : 0;
    }
    benchmark::DoNotOptimize(erased);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * per_day));
}
BENCHMARK(BM_FlatSetChurn);

void BM_UnorderedSetChurn(benchmark::State& state) {
  const std::size_t per_day = 1 << 14;
  std::uint64_t day = 0;
  std::unordered_set<std::uint64_t> set;
  for (auto _ : state) {
    const std::uint64_t base = (day++) * 288;
    for (std::size_t i = 0; i < per_day; ++i)
      set.insert((i % 4096) << 32 | (base + i * 288 / per_day));
    std::uint64_t erased = 0;
    for (std::size_t i = 0; i < per_day; ++i) {
      const std::uint64_t key = (i % 4096) << 32 | (base + i * 288 / per_day);
      if (key % 10 != 0) erased += set.erase(key);
    }
    benchmark::DoNotOptimize(erased);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * per_day));
}
BENCHMARK(BM_UnorderedSetChurn);

}  // namespace

BENCHMARK_MAIN();
