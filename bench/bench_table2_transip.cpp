// Table 2 — TransIP attack metrics for the December 2020 and March 2021
// attacks: per-nameserver observed packet rate, inferred traffic volume,
// and attacker IP count.
#include <iostream>

#include "scenario/transip.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("Table 2: TransIP attack metrics (paper §5.1)")
            << "\n";
  scenario::TransIPParams params;
  params.scale = 1.0;  // the full ~776K-domain population
  const scenario::TransIPResult r = scenario::run_transip(params);

  struct PaperRow {
    const char* ppm;
    const char* volume;
    const char* ips;
  };
  const PaperRow paper_dec[3] = {{"21.8K", "1.4 Gbps", "5.79M"},
                                 {"3.8K", "247 Mbps", "1.57M"},
                                 {"2.9K", "188 Mbps", "1.33M"}};
  const PaperRow paper_mar[3] = {{"125K", "8 Gbps", "7M"},
                                 {"123K", "7.8 Gbps", "6.19M"},
                                 {"13K", "845 Mbps", "823K"}};

  util::TextTable table({"Attack", "NS", "ppm (paper)", "ppm (ours)",
                         "volume (paper)", "volume (ours)", "IPs (paper)",
                         "IPs (ours)"});
  const char* names[3] = {"A", "B", "C"};
  for (int i = 0; i < 3; ++i) {
    table.add_row({"December 2020", names[i], paper_dec[i].ppm,
                   util::format_count(r.december[i].observed_ppm),
                   paper_dec[i].volume,
                   util::format_bps(r.december[i].inferred_gbps * 1e9),
                   paper_dec[i].ips,
                   util::format_count(r.december[i].attacker_ip_count)});
  }
  table.add_separator();
  for (int i = 0; i < 3; ++i) {
    table.add_row({"March 2021", names[i], paper_mar[i].ppm,
                   util::format_count(r.march[i].observed_ppm),
                   paper_mar[i].volume,
                   util::format_bps(r.march[i].inferred_gbps * 1e9),
                   paper_mar[i].ips,
                   util::format_count(r.march[i].attacker_ip_count)});
  }
  std::cout << table.to_string();
  std::cout
      << "\nnotes: domains hosted " << util::with_commas(r.domains_hosted)
      << " (" << util::format_fixed(100 * r.nl_share, 1)
      << "% .nl; paper ~776K, 66% .nl). Attacker-IP counts use the number "
         "of distinct telescope addresses reached — one plausible reading "
         "of CAIDA's metric — so magnitudes differ while the A >> B > C "
         "ordering and the December/March contrast hold.\n";
  return 0;
}
