// §5.2 case studies — mil.ru and RZD railways through the reactive
// measurement platform (§4.3.1).
#include <iostream>

#include "scenario/russia.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("Case study: attacks on Russian assets (§5.2)")
            << "\n";
  std::cout << "paper: mil.ru unresolvable Mar 12-16 via OpenINTEL, all 3 "
               "nameservers (same /24, one ASN) unresponsive to reactive "
               "probes; RZD attacked Mar 8 15:30-20:45, intermittently "
               "responsive from ~06:00 next day\n\n";
  const scenario::RussiaResult r = scenario::run_russia(scenario::RussiaParams{});

  util::TextTable milru({"mil.ru metric", "Paper", "Measured"});
  milru.add_row({"attack interval", "Mar 11 - Mar 18 (8 days)",
                 r.milru.attack_start.to_string() + " .. " +
                     r.milru.attack_end.to_string()});
  milru.add_row({"nameserver /24s", "1 (same subnet)",
                 std::to_string(r.milru_distinct_slash24)});
  milru.add_row({"OpenINTEL failure days", "Mar 12-16 inclusive",
                 r.milru.geofence_start.to_string().substr(0, 10) + " .. " +
                     (r.milru.geofence_end - 1).to_string().substr(0, 10)});
  milru.add_row({"reactive: attack windows probed", "-",
                 util::with_commas(r.milru.attack_windows_probed)});
  milru.add_row({"reactive: fully unresolvable", "most of the attack",
                 util::format_fixed(100 * r.milru.unresolvable_share(), 1) +
                     "%"});
  milru.add_row({"no NS responsive during geofence", "yes",
                 r.milru.no_ns_responsive_during_geofence ? "yes" : "no"});
  std::cout << milru.to_string() << "\n";

  std::cout << "OpenINTEL daily success for mil.ru:\n";
  for (const auto& day : r.milru.openintel_daily) {
    int y = 0, m = 0, d = 0;
    netsim::day_to_ymd(day.day, y, m, d);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
    std::cout << "  " << buf << "  "
              << util::format_fixed(100 * day.success_share, 0) << "%\t"
              << util::ascii_bar(day.success_share, 40) << "\n";
  }

  util::TextTable rdz({"RZD metric", "Paper", "Measured"});
  rdz.add_row({"attack interval", "Mar 8, 15:30-20:45",
               r.rdz.attack_start.to_string() + " .. " +
                   r.rdz.attack_end.to_string()});
  rdz.add_row({"nameserver /24s", "2", std::to_string(r.rdz_distinct_slash24)});
  rdz.add_row({"resolution during attack", "unresolvable",
               util::format_fixed(100 * r.rdz.during_attack_resolution_rate,
                                  1) +
                   "%"});
  rdz.add_row({"recovery observed", "~06:00 next day",
               r.rdz.recovered() ? r.rdz.recovery_time.to_string()
                                 : "not observed"});
  std::cout << "\n" << rdz.to_string();
  std::cout << "\nshape check: the same-/24 single-ASN unicast deployment "
               "(mil.ru) fails totally under geofence + saturation; prefix "
               "diversity alone (RZD, 2 /24s) did not withstand an all-"
               "nameserver attack — §5.2.3's conclusion.\n";
  return 0;
}
