// Shared runner for the reproduction benches. Each bench binary replays
// the seventeen-month longitudinal pipeline at the default bench scale and
// prints its table or figure with the paper's values alongside the
// measured ones. Absolute numbers differ (our substrate is a calibrated
// simulator and the population is scaled); the *shapes* — who wins, by
// what factor, where the thresholds sit — are the reproduction target.
#pragma once

#include <iostream>

#include "scenario/driver.h"
#include "util/strings.h"
#include "util/table.h"

namespace ddos::bench {

inline scenario::LongitudinalConfig bench_config() {
  scenario::LongitudinalConfig cfg = scenario::default_longitudinal_config();
  cfg.workload.scale = 30.0;  // ~135K attacks, ~1.6K on DNS infrastructure
  return cfg;
}

/// Run (or reuse) the longitudinal pipeline for this process.
inline const scenario::LongitudinalResult& longitudinal() {
  static const scenario::LongitudinalResult result =
      scenario::run_longitudinal(bench_config());
  return result;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << util::banner(title) << "\n";
  std::cout << "paper reference: " << paper << "\n";
  const auto& r = longitudinal();
  std::cout << "run: scale 1/" << bench_config().workload.scale << " of "
            << "the paper's attack counts, "
            << r.world->registry.domain_count() << " domains, "
            << r.workload.schedule.size() << " attacks, " << r.events.size()
            << " telescope events, " << r.joined.size()
            << " joined NSSet-attack events\n\n";
}

inline std::string pct(double fraction, int precision = 1) {
  return util::format_fixed(100.0 * fraction, precision) + "%";
}

}  // namespace ddos::bench
