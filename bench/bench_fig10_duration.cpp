// Figure 10 — attack duration vs impact: bimodal durations (15 min, 1 h),
// long attacks weak, with the 19-hour Contabo outlier.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 10: attack duration vs RTT impact",
      "durations bimodal at 15 min and 1 h; high-impact attacks live in "
      "those modes; long attacks trend weak except Contabo (19h, ~30x)");
  const auto& r = bench::longitudinal();
  const auto series = core::duration_impact_series(r.joined);

  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"Pearson(duration, impact)", "weak",
                 util::format_fixed(series.pearson, 3)});
  table.add_row({"events in series", "-", util::with_commas(series.n())});
  std::cout << table.to_string();

  // Raw duration distribution over all DNS telescope events: the bimodal
  // 15-minute / 1-hour shape of §6.5. (Joined events skew longer because
  // the >=5-measured-domains floor favours attacks spanning more windows.)
  util::CategoryCounter raw;
  for (const auto& ev : r.events) {
    if (!r.world->registry.is_ns_ip(ev.victim)) continue;
    const std::int64_t minutes = ev.duration_s() / 60;
    if (minutes <= 20) raw.add("<=20m");
    else if (minutes <= 45) raw.add("20-45m");
    else if (minutes <= 90) raw.add("45-90m");
    else if (minutes <= 180) raw.add("1.5-3h");
    else raw.add(">3h");
  }
  std::cout << "\nduration histogram over all DNS telescope events "
               "(paper: modes at 15 min and 1 h):\n";
  for (const char* bucket : {"<=20m", "20-45m", "45-90m", "1.5-3h", ">3h"}) {
    std::cout << "  " << bucket << "\t" << raw.count(bucket) << "\t"
              << util::ascii_bar(raw.fraction(bucket), 40) << "\n";
  }

  const auto hist = core::duration_mode_histogram(r.joined);
  std::cout << "\nduration histogram over joined events:\n";
  for (const char* bucket :
       {"<=15m", "15-30m", "30-60m", "1-3h", "3-12h", ">12h"}) {
    std::cout << "  " << bucket << "\t" << hist.count(bucket) << "\t"
              << util::ascii_bar(hist.fraction(bucket), 40) << "\n";
  }

  // Impact by duration bucket: the long tail should be weak.
  std::map<std::string, std::vector<double>> impact_by_bucket;
  for (const auto& ev : r.joined) {
    const std::int64_t minutes = ev.duration_s() / 60;
    std::string bucket;
    if (minutes <= 15) bucket = "<=15m";
    else if (minutes <= 30) bucket = "15-30m";
    else if (minutes <= 60) bucket = "30-60m";
    else if (minutes <= 180) bucket = "1-3h";
    else if (minutes <= 720) bucket = "3-12h";
    else bucket = ">12h";
    impact_by_bucket[bucket].push_back(ev.peak_impact);
  }
  std::cout << "\npeak impact by duration (median / p90 / max / n):\n";
  for (const char* bucket :
       {"<=15m", "15-30m", "30-60m", "1-3h", "3-12h", ">12h"}) {
    const auto it = impact_by_bucket.find(bucket);
    if (it == impact_by_bucket.end()) {
      std::cout << "  " << bucket << "\t-\n";
      continue;
    }
    std::cout << "  " << bucket << "\t"
              << util::format_fixed(util::median(it->second), 2) << " / "
              << util::format_fixed(util::percentile(it->second, 90), 1)
              << " / " << util::format_fixed(util::max_of(it->second), 0)
              << " / " << it->second.size() << "\n";
  }

  // The Contabo outlier: a >12h event with substantial impact.
  for (const auto& ev : r.joined) {
    if (ev.duration_s() > 12 * netsim::kSecondsPerHour &&
        ev.peak_impact > 10.0) {
      std::cout << "\noutlier: " << ev.resilience.org << " — "
                << util::format_fixed(
                       static_cast<double>(ev.duration_s()) /
                           netsim::kSecondsPerHour, 1)
                << "h at " << util::format_fixed(ev.peak_impact, 0)
                << "x (paper: Contabo, 19h at ~30x)\n";
    }
  }
  return 0;
}
