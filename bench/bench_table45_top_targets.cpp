// Tables 4 and 5 — the most-attacked organisations and IP addresses among
// DNS-related victims, including the public open resolvers the paper
// surfaces and then filters.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Tables 4-5: top attacked ASNs and IPs",
      "Table 4: Google 7,324 / Unified Layer 2,841 / Cloudflare 2,428 / OVH "
      "2,192 / Hetzner 2,172 / ... Table 5: 8.8.4.4, 8.8.8.8, 1.1.1.1 on top "
      "(misconfigured NS records)");
  const auto& r = bench::longitudinal();

  static const char* kPaperOrgs[] = {
      "Google (7,324)",     "Unified Layer (2,841)", "Cloudflare (2,428)",
      "OVH (2,192)",        "Hetzner (2,172)",       "Amazon (1,564)",
      "Microsoft (1,240)",  "Fastly (1,054)",        "Birbir (894)",
      "Pendc (562)"};

  util::TextTable t4({"Rank", "Paper org (#)", "Measured org", "#Attacks"});
  const auto orgs = core::top_attacked_orgs(r.events, r.world->registry,
                                            r.world->routes, r.world->orgs, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    t4.add_row({std::to_string(i + 1),
                i < std::size(kPaperOrgs) ? kPaperOrgs[i] : "",
                i < orgs.size() ? orgs[i].label : "",
                i < orgs.size() ? util::with_commas(orgs[i].attacks) : ""});
  }
  std::cout << "Table 4 (top attacked organisations among DNS victims):\n"
            << t4.to_string() << "\n";

  static const char* kPaperIps[] = {
      "8.8.4.4 Google DNS (2,803)",  "REDACTED Unified Layer (2,566)",
      "8.8.8.8 Google DNS (2,298)",  "1.1.1.1 Cloudflare DNS (1,118)",
      "204.79.197.200 Bing (668)",   "194.67.7.1 Beeline RU (481)",
      "13.107.21.200 Bing (438)",    "REDACTED Company NAS (400)",
      "REDACTED Private IP (346)",   "23.227.38.32 Cloudflare (273)"};

  util::TextTable t5({"Rank", "Paper IP (#)", "Measured IP", "#Attacks",
                      "Type"});
  const auto ips = core::top_attacked_ips(r.events, r.world->registry, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    t5.add_row({std::to_string(i + 1),
                i < std::size(kPaperIps) ? kPaperIps[i] : "",
                i < ips.size() ? ips[i].ip.to_string() : "",
                i < ips.size() ? util::with_commas(ips[i].attacks) : "",
                i < ips.size() ? ips[i].type : ""});
  }
  std::cout << "Table 5 (top attacked DNS-related IPs):\n" << t5.to_string();
  std::cout << "\nshape check: public resolver addresses (8.8.4.4, 8.8.8.8, "
               "1.1.1.1) dominate the IP ranking via misconfigured NS "
               "records, and are excluded from the impact join — as in the "
               "paper.\n";
  return 0;
}
