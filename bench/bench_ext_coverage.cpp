// Extension bench — observability coverage of the attack ecosystem.
//
// §4.3: the telescope sees only randomly-and-uniformly spoofed attacks;
// Jonker et al. (IMC 2017) found ~60% of attacks random-spoofed and ~40%
// reflected (AmpPot-visible). This bench generates a mixed ecosystem and
// measures what the telescope alone vs telescope + honeypot fleet observe.
#include <iostream>

#include <cmath>

#include "attack/schedule.h"
#include "netsim/rng.h"
#include "telescope/amppot.h"
#include "telescope/darknet.h"
#include "telescope/feed.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("Extension: telescope + AmpPot coverage")
            << "\n";
  std::cout << "reference: §4.3 / Jonker et al. 2017 — 60% of attacks "
               "randomly spoofed (telescope-visible), 40% reflected "
               "(honeypot-visible)\n\n";

  // A mixed attack ecosystem with the published 60/40 split (plus a
  // sliver of direct floods invisible to both sensors).
  netsim::Rng rng(2017);
  attack::AttackSchedule schedule;
  telescope::CoverageSummary cov;
  constexpr int kAttacks = 20000;
  for (int i = 0; i < kAttacks; ++i) {
    attack::AttackSpec spec;
    spec.target = netsim::IPv4Addr(
        static_cast<std::uint32_t>(0x70000000u + rng.uniform_u64(1u << 24)));
    spec.start = netsim::SimTime(
        rng.uniform_int(0, 30 * netsim::kSecondsPerDay));
    spec.duration_s = 900 + rng.uniform_int(0, 3 * 3600);
    spec.peak_pps = rng.lognormal(std::log(30e3), 1.0);
    const double u = rng.uniform();
    spec.spoof = u < 0.57   ? attack::SpoofType::RandomUniform
                 : u < 0.95 ? attack::SpoofType::Reflected
                            : attack::SpoofType::Direct;
    spec.protocol = spec.spoof == attack::SpoofType::Reflected
                        ? attack::Protocol::UDP
                        : attack::Protocol::TCP;
    spec.first_port = spec.spoof == attack::SpoofType::Reflected ? 53 : 80;
    schedule.add(spec);
    ++cov.total_attacks;
    switch (spec.spoof) {
      case attack::SpoofType::RandomUniform: ++cov.random_spoofed; break;
      case attack::SpoofType::Reflected: ++cov.reflected; break;
      case attack::SpoofType::Direct: ++cov.direct; break;
    }
  }

  // Telescope view.
  const telescope::Darknet darknet = telescope::Darknet::ucsd_like();
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  feed.ingest(schedule, darknet, 99);
  cov.telescope_seen = feed.events().size();

  // Honeypot-fleet view — sweep fleet sizes.
  util::TextTable table({"Sensor configuration", "Attacks seen",
                         "Coverage"});
  table.add_row({"telescope only", util::with_commas(cov.telescope_seen),
                 util::format_fixed(100.0 * cov.telescope_coverage(), 1) +
                     "%"});
  for (const std::uint32_t honeypots : {24u, 48u, 256u, 2048u}) {
    telescope::AmpPotParams ap;
    ap.honeypots = honeypots;
    const telescope::AmpPotFleet fleet(ap);
    const auto seen = fleet.observe_all(schedule.attacks());
    const double union_cov =
        static_cast<double>(cov.telescope_seen + seen.size()) /
        cov.total_attacks;
    table.add_row({"telescope + " + std::to_string(honeypots) + " honeypots",
                   util::with_commas(cov.telescope_seen + seen.size()),
                   util::format_fixed(100.0 * union_cov, 1) + "%"});
  }
  std::cout << "ecosystem: " << util::with_commas(cov.total_attacks)
            << " attacks — "
            << util::format_fixed(100.0 * cov.random_spoofed /
                                      cov.total_attacks, 1)
            << "% random-spoofed, "
            << util::format_fixed(100.0 * cov.reflected / cov.total_attacks, 1)
            << "% reflected, "
            << util::format_fixed(100.0 * cov.direct / cov.total_attacks, 1)
            << "% direct\n\n"
            << table.to_string();
  std::cout << "\nshape check: the telescope alone tops out near the "
               "random-spoofed share; pairing it with a honeypot fleet "
               "recovers part of the reflected 40%, growing with fleet "
               "size but with diminishing returns (each attack only "
               "touches a few thousand of millions of reflectors).\n";
  return 0;
}
