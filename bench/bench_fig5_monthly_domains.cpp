// Figure 5 — registered domains potentially affected by attacks, by month.
#include "bench_common.h"

#include <cmath>

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 5: domains potentially affected per month",
      "typical attacks touch 10-100 domains; 8 peaks reach >10M domains "
      "(~4-5% of the measured namespace)");
  const auto& r = bench::longitudinal();
  const auto rows = core::monthly_affected_domains(r.events, r.world->registry);

  const double namespace_size =
      static_cast<double>(r.world->registry.domain_count());
  util::TextTable table({"Month", "Affected domains", "Share of namespace",
                         "Largest single event", "Attacked NS IPs"});
  std::uint64_t peak_months = 0;
  for (const auto& row : rows) {
    char month[16];
    std::snprintf(month, sizeof(month), "%04d-%02d", row.year, row.month);
    const double share = row.affected_domains / namespace_size;
    if (row.largest_single_event / namespace_size > 0.05) ++peak_months;
    table.add_row({month, util::with_commas(row.affected_domains),
                   bench::pct(share, 1),
                   util::with_commas(row.largest_single_event),
                   util::with_commas(row.attacked_ns_ips)});
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: " << peak_months
            << " months contain a single-event blast radius above 5% of the "
               "namespace (paper: 8 peaks at ~4-5% of its namespace); those mega-events hit "
               "the largest anycast provider with negligible impact.\n";
  return 0;
}
