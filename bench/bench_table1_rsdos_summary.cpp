// Table 1 — RSDoS dataset totals: attacks, unique victim IPs, /24s, ASes.
#include "bench_common.h"

#include "telescope/noise.h"

using namespace ddos;

int main() {
  bench::print_header("Table 1: RSDoS dataset summary",
                      "4,039,485 attacks / 1,022,102 IPs / 404,076 /24s / "
                      "25,821 ASes over Nov 2020 - Mar 2022");
  const auto& r = bench::longitudinal();
  const auto summary = r.feed.summarize(
      [&](netsim::IPv4Addr ip) { return r.world->routes.origin_of(ip); });

  util::TextTable table({"Metric", "Paper", "Paper ratio", "Measured",
                         "Measured ratio"});
  const double pa = 4039485.0;
  const auto ratio = [](double v, double base) {
    return util::format_fixed(v / base, 3);
  };
  const double ma = static_cast<double>(summary.attacks);
  table.add_row({"#Attacks", "4,039,485", "1.000",
                 util::with_commas(summary.attacks), "1.000"});
  table.add_row({"#IPs", "1,022,102", ratio(1022102, pa),
                 util::with_commas(summary.unique_ips),
                 ratio(static_cast<double>(summary.unique_ips), ma)});
  table.add_row({"#/24 Prefixes", "404,076", ratio(404076, pa),
                 util::with_commas(summary.unique_slash24),
                 ratio(static_cast<double>(summary.unique_slash24), ma)});
  table.add_row({"#ASes", "25,821", ratio(25821, pa),
                 util::with_commas(summary.unique_asn),
                 ratio(static_cast<double>(summary.unique_asn), ma)});
  std::cout << table.to_string();
  std::cout << "\nshape check: unique-IP/attack ratio near the paper's 0.25 "
               "indicates comparable victim-reuse behaviour; /24 and AS "
               "ratios shrink with world scale.\n";

  // The curation side of the feed (§3.1): the Moore-et-al. thresholds must
  // reject the IBR noise the raw telescope capture is mostly made of.
  const auto noise = telescope::generate_ibr_noise(
      telescope::IbrNoiseParams{}, 0, 4999, r.darknet);
  const double rejected =
      telescope::rejection_rate(noise, r.feed.inference());
  std::cout << "\ninference noise floor: "
            << util::with_commas(noise.size())
            << " IBR noise aggregates generated, "
            << util::format_fixed(100.0 * rejected, 2)
            << "% rejected by the thresholds (the curated feed carries only "
               "the rare wide flicker as false positives).\n";
  return 0;
}
