// Extension bench — blackholing (RTBH) as a mitigation, and what it does
// to both the victims and the telescope's view.
//
// Jonker et al. (IMC 2018, cited in the paper's introduction) studied DoS
// attacks jointly with BGP blackholing. This bench runs one monster flood
// against a small provider with and without an RTBH policy and reports:
// the victim-side availability timeline, the telescope-inferred duration
// (truncated by the null-route — §6.5's backscatter-silencing effect),
// and the availability trade-off the mitigation makes.
#include <iostream>

#include "attack/mitigation.h"
#include "dns/registry.h"
#include "openintel/storage.h"
#include "openintel/sweeper.h"
#include "telescope/darknet.h"
#include "telescope/feed.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

namespace {

enum class Mitigation { None, Rtbh, Scrubbing };

struct RunResult {
  std::int64_t telescope_duration_s = 0;
  double resolution_rate_attack_hours = 0.0;  // over the attacker's 2 hours
  double resolution_rate_after = 0.0;         // the following 2 hours
};

RunResult run(Mitigation mitigation) {
  const netsim::IPv4Addr ns_ip(10, 9, 0, 1);
  dns::DnsRegistry registry;
  dns::Nameserver ns(ns_ip, {dns::Site{"x", 60e3, 20.0, 1.0}});
  ns.set_legit_pps(1e3);
  registry.add_nameserver(std::move(ns));
  for (int d = 0; d < 60; ++d) {
    registry.add_domain(
        dns::DomainName::must("v" + std::to_string(d) + ".com"), {ns_ip});
  }

  attack::AttackSchedule schedule;
  attack::AttackSpec flood;
  flood.target = ns_ip;
  flood.start = netsim::SimTime(12 * netsim::kSecondsPerHour);
  flood.duration_s = 2 * netsim::kSecondsPerHour;
  flood.peak_pps = 900e3;  // 15x capacity: hopeless without mitigation
  flood.steady = true;
  schedule.add(flood);

  if (mitigation == Mitigation::Rtbh) {
    for (const auto& event : attack::apply_rtbh(schedule,
                                                attack::RtbhPolicy{})) {
      registry.mutable_nameserver(event.victim)
          .add_blackhole_interval(event.from, event.until);
    }
  } else if (mitigation == Mitigation::Scrubbing) {
    attack::apply_scrubbing(schedule, attack::ScrubbingPolicy{});
  }

  RunResult result;
  telescope::RSDoSFeed feed{telescope::InferenceParams{},
                            attack::BackscatterModelParams{}};
  feed.ingest(schedule, telescope::Darknet::ucsd_like(), 4);
  for (const auto& ev : feed.events()) {
    result.telescope_duration_s =
        std::max(result.telescope_duration_s, ev.duration_s());
  }

  // Availability through the day from the sweeper's perspective.
  openintel::SweeperParams sp;
  sp.seed = 8;
  const openintel::Sweeper sweeper(registry, schedule, sp);
  std::uint32_t attack_ok = 0, attack_n = 0, after_ok = 0, after_n = 0;
  const netsim::SimTime attack_end = flood.end();
  for (int i = 0; i < 4000; ++i) {
    const netsim::SimTime during(
        flood.start.seconds() +
        (i * 7) % (2 * netsim::kSecondsPerHour));
    const auto m = sweeper.measure_with_salt(i % 60, during, i);
    ++attack_n;
    if (m.status == dns::ResponseStatus::Ok) ++attack_ok;

    const netsim::SimTime after(
        attack_end.seconds() + (i * 7) % (2 * netsim::kSecondsPerHour));
    const auto m2 = sweeper.measure_with_salt(i % 60, after, i);
    ++after_n;
    if (m2.status == dns::ResponseStatus::Ok) ++after_ok;
  }
  result.resolution_rate_attack_hours =
      static_cast<double>(attack_ok) / attack_n;
  result.resolution_rate_after = static_cast<double>(after_ok) / after_n;
  return result;
}

}  // namespace

int main() {
  std::cout << util::banner("Extension: BGP blackholing (RTBH)") << "\n";
  std::cout << "reference: Jonker et al. 2018 (joint DoS/blackholing view); "
               "§6.5's 'attack impedes its own backscatter signal'\n\n";

  const RunResult none = run(Mitigation::None);
  const RunResult rtbh = run(Mitigation::Rtbh);
  const RunResult scrub = run(Mitigation::Scrubbing);

  util::TextTable table({"Metric", "No mitigation",
                         "RTBH (10m trigger, 1h hold)",
                         "Scrubbing (15m, 95%)"});
  table.add_row({"attacker's true duration", "2h", "2h", "2h"});
  const auto mins = [](std::int64_t s) {
    return util::format_fixed(s / 60.0, 0) + " min";
  };
  const auto pct = [](double f) {
    return util::format_fixed(100 * f, 1) + "%";
  };
  table.add_row({"telescope-inferred duration",
                 mins(none.telescope_duration_s),
                 mins(rtbh.telescope_duration_s),
                 mins(scrub.telescope_duration_s)});
  table.add_row({"resolution rate, attack hours",
                 pct(none.resolution_rate_attack_hours),
                 pct(rtbh.resolution_rate_attack_hours),
                 pct(scrub.resolution_rate_attack_hours)});
  table.add_row({"resolution rate, 2h after",
                 pct(none.resolution_rate_after),
                 pct(rtbh.resolution_rate_after),
                 pct(scrub.resolution_rate_after)});
  std::cout << table.to_string();
  std::cout << "\nshape check: RTBH silences the backscatter (telescope "
               "sees ~10 min of a 2-hour attack — the §6.5 bias toward the "
               "short-duration mode) at the price of a total self-imposed "
               "outage through the hold. Scrubbing restores service within "
               "its activation delay while leaving the telescope's view of "
               "rate and duration intact — the March 2021 TransIP "
               "signature (§5.1).\n";
  return 0;
}
