// Table 6 — the organisations with the largest observed Impact_on_RTT.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Table 6: most affected companies by RTT impact",
      "NForce B.V. 348x, Co-Co NL 219x, NMU Group 181x, Hetzner 174x, My "
      "Lock De 146x, DigiHosting NL 140x, Apple Russia 100x, GoDaddy 76x, "
      "Linode 75x, ITandTEL 74x");
  const auto& r = bench::longitudinal();

  static const char* kPaper[] = {
      "NForce B.V. (348x)",   "Co-Co NL (219x)",       "NMU Group (181x)",
      "Hetzner (174x)",       "My Lock De (146x)",     "DigiHosting NL (140x)",
      "Apple Russia (100x)",  "GoDaddy (76x)",         "Linode (75x)",
      "ITandTEL (74x)"};

  util::TextTable table({"Rank", "Paper company (impact)", "Measured company",
                         "Impact"});
  const auto top = core::top_companies_by_impact(r.joined, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    table.add_row({std::to_string(i + 1),
                   i < std::size(kPaper) ? kPaper[i] : "",
                   i < top.size() ? top[i].org : "",
                   i < top.size()
                       ? util::format_fixed(top[i].max_impact, 0) + "x"
                       : ""});
  }
  std::cout << table.to_string();
  std::cout << "\nshape check: the leaderboard is dominated by small-to-"
               "medium unicast hosting providers in the ~70-350x range; "
               "exact per-organisation magnitudes ride the latency jitter "
               "of near-saturated servers (see EXPERIMENTS.md).\n";
  return 0;
}
