// Figure 9 — correlation between telescope-inferred attack intensity and
// observed DNS impact, plus the bimodal intensity distribution of §6.4.
#include "bench_common.h"

#include <cmath>

#include "core/analysis.h"
#include "util/histogram.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 9: attack intensity vs RTT impact",
      "low Pearson correlation; bimodal telescope rate with modes near 50 "
      "ppm (~17K ppm victim-side) and 6,000 ppm (~2M ppm victim-side)");
  const auto& r = bench::longitudinal();
  const auto series = core::intensity_impact_series(r.joined, r.darknet);

  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"Pearson(intensity, impact)", "low (no strong corr.)",
                 util::format_fixed(series.pearson, 3)});
  table.add_row({"Spearman(intensity, impact)", "-",
                 util::format_fixed(series.spearman, 3)});
  table.add_row({"events in series", "-", util::with_commas(series.n())});
  std::cout << table.to_string();

  // Bimodality of the telescope-observed rates (all DNS events).
  util::LogHistogram ppm_hist(1.0, 0.5, 14);  // half-decade bins
  for (const auto& ev : r.events) {
    if (!r.world->registry.is_ns_ip(ev.victim)) continue;
    ppm_hist.add(ev.max_ppm);
  }
  std::cout << "\ntelescope max-ppm distribution over DNS events "
               "(half-decade bins):\n";
  for (std::size_t i = 0; i < ppm_hist.bin_count(); ++i) {
    if (ppm_hist.bin(i) == 0) continue;
    std::cout << "  [" << util::format_count(ppm_hist.bin_lo(i)) << ", "
              << util::format_count(ppm_hist.bin_hi(i)) << ") ppm\t"
              << ppm_hist.bin(i) << "\t"
              << util::ascii_bar(ppm_hist.fraction(i) * 2.5, 40) << "\n";
  }
  std::cout << "\nshape check: |Pearson| well below 0.5 reproduces the "
               "paper's key takeaway — telescope intensity signals ongoing "
               "attacks but does not predict impact, because capacity "
               "headroom and resilience deployment dominate, and "
               "multi-vector attacks hide intensity from the telescope.\n";
  return 0;
}
