// Extension bench — structural robustness audit of the DNS ecosystem.
//
// The static counterpart of §6.6: before any attack, classify every
// delegation against the resilience best practices the paper's conclusion
// recommends (RFC 1034 redundancy, RFC 2182 topological diversity,
// anycast), plus the lame-delegation and open-resolver misconfigurations
// of the related work (Akiwate et al. 2020; Table 5). Then cross the audit
// with the attack outcomes: the flagged populations are the ones that got
// hurt.
#include "bench_common.h"

#include "core/analysis.h"
#include "core/audit.h"
#include "core/impact.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Extension: structural DNS robustness audit",
      "Allman 2018 / Sommese et al. 2021 / Akiwate et al. 2020; the static "
      "properties behind the paper's §6.6 resilience findings");
  const auto& r = bench::longitudinal();
  const core::DelegationAuditor auditor(r.world->registry, r.world->census,
                                        r.world->routes);
  const auto summary = auditor.audit_all(netsim::month_start_day(2021, 7));

  util::TextTable table({"Property", "Domains", "Share"});
  const auto row = [&](const char* label, std::uint64_t count) {
    table.add_row({label, util::with_commas(count),
                   bench::pct(summary.share(count), 2)});
  };
  row("total audited", summary.domains);
  table.add_separator();
  row("single nameserver (RFC 1034 violation)", summary.single_ns);
  row("all NS in one /24 (RFC 2182 violation)", summary.single_slash24);
  row("single-ASN deployment", summary.single_asn);
  row("lame NS entry", summary.with_lame_ns);
  row("open resolver as NS", summary.with_open_resolver_ns);
  table.add_separator();
  row("full anycast", summary.full_anycast);
  row("partial anycast", summary.partial_anycast);
  row("multi-ASN", summary.multi_asn);
  row("multi-/24", summary.multi_prefix);
  std::cout << table.to_string();

  // Cross the audit with attack outcomes: share of impaired (>=10x) and
  // failing events landing on flagged NSSets.
  std::uint64_t impaired = 0, impaired_single_asn = 0;
  std::uint64_t failures = 0, failures_flagged = 0;
  for (const auto& ev : r.joined) {
    const bool flagged = ev.resilience.distinct_asns <= 1;
    if (ev.peak_impact >= core::kImpairedThreshold) {
      ++impaired;
      if (flagged) ++impaired_single_asn;
    }
    if (ev.any_failure()) {
      ++failures;
      if (ev.resilience.anycast_class == anycast::AnycastClass::None)
        ++failures_flagged;
    }
  }
  std::cout << "\ncross-check with attack outcomes:\n";
  std::cout << "  >=10x impact events on single-ASN deployments: "
            << impaired_single_asn << "/" << impaired << "\n";
  std::cout << "  failure events on unicast deployments:          "
            << failures_flagged << "/" << failures << "\n";
  std::cout << "\nshape check: the harm concentrates almost entirely in the "
               "audit-flagged population — the static audit predicts the "
               "dynamic outcome, which is the operational value of the "
               "paper's recommendations (§9).\n";
  return 0;
}
