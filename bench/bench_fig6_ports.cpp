// Figure 6 — protocol and destination-port mix of attacks on DNS
// authoritative infrastructure.
#include "bench_common.h"

#include "core/analysis.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 6: protocol/port distribution of DNS-infrastructure attacks",
      "80.7% single-port; of those TCP 90.4% / UDP 8.4% / ICMP 1.2%; TCP "
      "ports 80 (37%), 53 (30%), 443 (~20%); one third of UDP attacks on 53");
  const auto& r = bench::longitudinal();
  const auto dist = core::port_distribution(r.events, r.world->registry);

  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"single-port share", "80.7%",
                 bench::pct(dist.single_port_share())});
  table.add_row({"TCP share (single-port)", "90.4%",
                 bench::pct(dist.by_protocol.fraction("TCP"))});
  table.add_row({"UDP share (single-port)", "8.4%",
                 bench::pct(dist.by_protocol.fraction("UDP"))});
  table.add_row({"ICMP share (single-port)", "1.2%",
                 bench::pct(dist.by_protocol.fraction("ICMP"))});
  table.add_separator();
  table.add_row({"TCP port 80", "37%", bench::pct(dist.tcp_ports.fraction("80"))});
  table.add_row({"TCP port 53", "30%", bench::pct(dist.tcp_ports.fraction("53"))});
  table.add_row({"TCP port 443", "~20%", bench::pct(dist.tcp_ports.fraction("443"))});
  table.add_row({"TCP other ports", "~13%",
                 bench::pct(dist.tcp_ports.fraction("other"))});
  table.add_separator();
  table.add_row({"UDP port 53", "~33%", bench::pct(dist.udp_ports.fraction("53"))});
  table.add_row({"UDP other ports", "~67%",
                 bench::pct(dist.udp_ports.fraction("other"))});
  std::cout << table.to_string();

  std::cout << "\nTCP port histogram:\n";
  for (const auto& [port, count] : dist.tcp_ports.top(4)) {
    std::cout << "  " << port << "\t" << count << "\t"
              << util::ascii_bar(dist.tcp_ports.fraction(port), 40) << "\n";
  }
  return 0;
}
