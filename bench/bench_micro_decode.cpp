// Micro-benchmarks of the DRS column decoders: the scalar reference
// codecs (store/format.h decode_u64_column / decode_string_column, one
// bounds-checked get_varint per row plus a per-row vector grow) against
// the columnar scan layer's unrolled block decoders (store/scan.h
// decode_varint_block / decode_delta_varint_block /
// decode_string_offsets, which decode into a pre-sized buffer with a
// fully unrolled LEB128 inner loop and SoA string offsets instead of
// per-row std::string copies).
//
// Inputs are pipeline-shaped, not uniform-random:
//
//   * varint — counts/ids like the feed and events datasets carry:
//     mostly 1-2 byte varints with a heavy tail (packet totals);
//   * delta-varint — sorted window keys like the sweep dataset's
//     time-major measurement keys (small positive deltas);
//   * strings — short org names (the events dataset's one string
//     column).
//
// Throughput is reported as bytes_per_second over the ENCODED payload
// (the number comparable to store_read_MBps) and items_per_second over
// rows. Run with --benchmark_format=json for a machine-readable file,
// the same harness contract as bench_micro_maps.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/rng.h"
#include "store/format.h"
#include "store/scan.h"

using namespace ddos;

namespace {

// Counts/ids with a heavy tail: ~70% fit one LEB128 byte, ~25% two to
// four bytes, ~5% are large packet-total-like values.
std::vector<std::uint64_t> tailed_values(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> values;
  values.reserve(n);
  netsim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t draw = rng.uniform_u64(100);
    if (draw < 70) {
      values.push_back(rng.uniform_u64(128));
    } else if (draw < 95) {
      values.push_back(rng.uniform_u64(1u << 21));
    } else {
      values.push_back(rng.uniform_u64(std::uint64_t{1} << 40));
    }
  }
  return values;
}

// Sorted time-major keys: windows advancing with small positive steps —
// the distribution the sweep dataset's DeltaVarint columns see.
std::vector<std::uint64_t> sorted_keys(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> values;
  values.reserve(n);
  netsim::Rng rng(seed);
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < n; ++i) {
    key += 1 + rng.uniform_u64(64);
    values.push_back(key);
  }
  return values;
}

// Short org-name-like strings (the events dataset's `org` column).
std::vector<std::string> org_names(std::size_t n, std::uint64_t seed) {
  static const char* const kStems[] = {"transip", "ovh",    "hetzner",
                                       "gandi",   "cldflr", "selfhost"};
  std::vector<std::string> values;
  values.reserve(n);
  netsim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const auto stem = kStems[rng.uniform_u64(std::size(kStems))];
    values.push_back(std::string(stem) + "-as" +
                     std::to_string(rng.uniform_u64(65536)));
  }
  return values;
}

void set_throughput(benchmark::State& state, std::size_t rows,
                    std::size_t payload_bytes) {
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(payload_bytes));
}

// ---- varint (tailed counts) -----------------------------------------

void BM_VarintDecodeScalar(benchmark::State& state) {
  const auto values =
      tailed_values(static_cast<std::size_t>(state.range(0)), 1);
  const std::string payload =
      store::encode_u64_column(values, store::Encoding::Varint);
  for (auto _ : state) {
    const auto out = store::decode_u64_column(payload, store::Encoding::Varint,
                                              values.size());
    benchmark::DoNotOptimize(out.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_VarintDecodeScalar)->Arg(1 << 16)->Arg(1 << 20);

void BM_VarintDecodeUnrolled(benchmark::State& state) {
  const auto values =
      tailed_values(static_cast<std::size_t>(state.range(0)), 1);
  const std::string payload =
      store::encode_u64_column(values, store::Encoding::Varint);
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    store::decode_varint_block(payload, values.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_VarintDecodeUnrolled)->Arg(1 << 16)->Arg(1 << 20);

// ---- delta-varint (sorted keys) -------------------------------------

void BM_DeltaVarintDecodeScalar(benchmark::State& state) {
  const auto values = sorted_keys(static_cast<std::size_t>(state.range(0)), 2);
  const std::string payload =
      store::encode_u64_column(values, store::Encoding::DeltaVarint);
  for (auto _ : state) {
    const auto out = store::decode_u64_column(
        payload, store::Encoding::DeltaVarint, values.size());
    benchmark::DoNotOptimize(out.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_DeltaVarintDecodeScalar)->Arg(1 << 16)->Arg(1 << 20);

void BM_DeltaVarintDecodeUnrolled(benchmark::State& state) {
  const auto values = sorted_keys(static_cast<std::size_t>(state.range(0)), 2);
  const std::string payload =
      store::encode_u64_column(values, store::Encoding::DeltaVarint);
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    store::decode_delta_varint_block(payload, values.size(), out);
    benchmark::DoNotOptimize(out.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_DeltaVarintDecodeUnrolled)->Arg(1 << 16)->Arg(1 << 20);

// ---- strings (org names) --------------------------------------------

void BM_StringDecodeScalar(benchmark::State& state) {
  const auto values = org_names(static_cast<std::size_t>(state.range(0)), 3);
  const std::string payload = store::encode_string_column(values);
  for (auto _ : state) {
    const auto out = store::decode_string_column(payload, values.size());
    benchmark::DoNotOptimize(out.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_StringDecodeScalar)->Arg(1 << 14)->Arg(1 << 18);

void BM_StringDecodeOffsets(benchmark::State& state) {
  const auto values = org_names(static_cast<std::size_t>(state.range(0)), 3);
  const std::string payload = store::encode_string_column(values);
  std::vector<std::uint64_t> starts;
  std::vector<std::uint64_t> lens;
  for (auto _ : state) {
    store::decode_string_offsets(payload, values.size(), starts, lens);
    benchmark::DoNotOptimize(starts.data());
    benchmark::DoNotOptimize(lens.data());
  }
  set_throughput(state, values.size(), payload.size());
}
BENCHMARK(BM_StringDecodeOffsets)->Arg(1 << 14)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
