// Extension bench — end-user impact through resolver caching.
//
// §6.3.1 closes with "the impact on end-users in cases of complete
// resolution failure depends on ... caching policy"; the paper cites Moura
// et al. (IMC 2018) who showed caching lets almost all users tolerate
// attacks with up to ~50% authoritative loss. This bench sweeps loss x TTL
// and reports the user-perceived failure rate, simulated and analytical.
#include <iostream>

#include "dns/client_sim.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner("Extension: caching and end-user tolerance")
            << "\n";
  std::cout << "reference: Moura et al. 2018 (cited in §6.3.1) — with "
               "caches, ~50% authoritative loss is nearly invisible to "
               "users; CDN-style low TTLs erase that protection\n\n";

  util::TextTable table({"TTL", "loss 25%", "loss 50%", "loss 75%",
                         "loss 90%", "loss 99%"});
  for (const std::uint32_t ttl : {60u, 300u, 3600u, 86400u}) {
    std::vector<std::string> row;
    row.push_back(ttl >= 3600 ? std::to_string(ttl / 3600) + "h"
                              : std::to_string(ttl) + "s");
    for (const double loss : {0.25, 0.5, 0.75, 0.90, 0.99}) {
      dns::ClientSimParams params;
      params.record_ttl_s = ttl;
      params.upstream_loss = loss;
      params.resolvers = 400;
      params.attack_duration_s = 4 * 3600;
      const auto result = dns::simulate_client_population(params);
      row.push_back(
          util::format_fixed(100.0 * result.user_failure_rate(), 2) + "%");
    }
    table.add_row(std::move(row));
  }
  std::cout << "user-perceived failure rate (simulated population of "
               "recursive resolvers):\n"
            << table.to_string() << "\n";

  util::TextTable model({"TTL", "simulated @90% loss", "analytical @90%"});
  for (const std::uint32_t ttl : {60u, 600u, 3600u}) {
    dns::ClientSimParams params;
    params.record_ttl_s = ttl;
    params.upstream_loss = 0.90;
    params.resolvers = 1500;
    params.attack_duration_s = 6 * 3600;
    const auto sim = dns::simulate_client_population(params);
    model.add_row({std::to_string(ttl) + "s",
                   util::format_fixed(100 * sim.user_failure_rate(), 2) + "%",
                   util::format_fixed(
                       100 * dns::expected_user_failure_rate(params), 2) +
                       "%"});
  }
  std::cout << "renewal-model cross-check:\n" << model.to_string();
  std::cout << "\nshape check: at 50% loss every TTL row stays near zero "
               "(the dike holds); the failure surface only opens up at "
               "extreme loss combined with short TTLs — why the paper's "
               "complete-failure events hurt CDN-backed domains most.\n";
  return 0;
}
