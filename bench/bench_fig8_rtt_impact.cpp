// Figure 8 — Impact_on_RTT vs hosted-domain count.
#include "bench_common.h"

#include <cmath>

#include "core/analysis.h"
#include "util/histogram.h"
#include "util/stats.h"

using namespace ddos;

int main() {
  bench::print_header(
      "Figure 8: RTT impact vs hosted domains",
      "~5% of events at >=10x; one third of those at >=100x; very large "
      "deployments cap at 2-3x");
  const auto& r = bench::longitudinal();
  const auto s = core::impact_summary(r.joined);

  util::TextTable table({"Metric", "Paper", "Measured"});
  table.add_row({"events with >=10x impact", "~5% (585/12,691)",
                 bench::pct(s.impaired_share())});
  table.add_row({"share of impaired at >=100x", "~34% (198/585)",
                 bench::pct(s.severe_share_of_impaired())});
  std::cout << table.to_string();

  // Impact by hosted-size magnitude (the figure's x-axis, log-binned).
  const auto pts = core::impact_points(r.joined);
  util::LogHistogram sizes(1.0, 1.0, 7);
  std::map<std::size_t, std::vector<double>> impacts_by_bin;
  for (const auto& p : pts) {
    std::size_t bin = 0;
    double lo = 1.0;
    while (bin + 1 < 7 && static_cast<double>(p.domains_hosted) >= lo * 10.0) {
      lo *= 10.0;
      ++bin;
    }
    impacts_by_bin[bin].push_back(p.peak_impact);
  }
  std::cout << "\nimpact by hosted-domain magnitude (median / p90 / max / n):\n";
  for (const auto& [bin, impacts] : impacts_by_bin) {
    const double lo = std::pow(10.0, static_cast<double>(bin));
    std::cout << "  [" << util::format_count(lo) << ", "
              << util::format_count(lo * 10) << ")\t"
              << util::format_fixed(util::median(impacts), 2) << " / "
              << util::format_fixed(util::percentile(impacts, 90), 1) << " / "
              << util::format_fixed(util::max_of(impacts), 0) << " / "
              << impacts.size() << "\n";
  }
  // CDF of peak impact across all events: the mass sits at ~1x with the
  // heavy tail carrying the paper's 10x/100x thresholds.
  std::vector<double> impacts;
  for (const auto& p : pts) impacts.push_back(p.peak_impact);
  const util::Ecdf ecdf(impacts);
  std::cout << "\npeak-impact CDF: ";
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    std::cout << "p" << static_cast<int>(q * 100) << "="
              << util::format_fixed(ecdf.quantile(q), 1) << "x  ";
  }
  std::cout << "\nP(impact >= 10x) = "
            << bench::pct(1.0 - ecdf.at(10.0 - 1e-9))
            << "   P(impact >= 100x) = "
            << bench::pct(1.0 - ecdf.at(100.0 - 1e-9)) << "\n";

  std::cout << "\nshape check: the >=100x tail concentrates on small-to-"
             "medium deployments; the largest bins stay within a few x "
             "(the paper's 10M-domain deployments at 2-3x).\n";
  return 0;
}
