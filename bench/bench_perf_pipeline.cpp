// Performance micro-benchmarks (google-benchmark): throughput of the
// pipeline's hot paths — prefix lookups, RSDoS backscatter inference,
// agnostic resolution, NSSet aggregation, and the full join.
//
// After the micro-benchmarks (which run with NO observer installed — they
// measure the disabled-instrumentation fast path), an instrumented
// end-to-end pipeline run is taken and its stage spans and metric snapshot
// are written to bench_perf_pipeline.json, giving future PRs a
// machine-readable per-stage ns + items/sec trajectory to diff against.
#include <benchmark/benchmark.h>

#include <malloc.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "attack/backscatter.h"
#include "exec/pool.h"
#include "netsim/rng.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "core/analysis.h"
#include "core/audit.h"
#include "core/join.h"
#include "dns/wire.h"
#include "dns/zonefile.h"
#include "dns/resolver.h"
#include "net/remote.h"
#include "net/server.h"
#include "openintel/sweeper.h"
#include "scenario/driver.h"
#include "serve/driver.h"
#include "store/merge.h"
#include "store/scan.h"
#include "serve/query_engine.h"
#include "telescope/feed.h"
#include "topology/prefix_table.h"

using namespace ddos;

namespace {

// ---- peak-RSS comparison: streaming vs materialized pipeline.
//
// VmHWM is the process-lifetime RSS high-water mark, so ordering is the
// whole measurement: the streaming run goes FIRST, in a fresh process
// before any benchmark state exists, and its VmHWM is an honest ceiling.
// Between the two runs the freed memory is returned to the kernel
// (malloc_trim) and the peak counter is reset by writing "5" to
// /proc/self/clear_refs. If the reset is unsupported the materialized
// reading degrades to max(streaming, materialized) — still a valid bound
// for the streaming <= ratio * materialized gate below.

std::uint64_t read_vm_hwm_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::istringstream fields(line.substr(6));
      std::uint64_t kb = 0;
      fields >> kb;
      return kb * 1024;
    }
  }
  return 0;
}

void reset_peak_rss() {
  std::ofstream out("/proc/self/clear_refs");
  out << "5";
}

struct PeakRss {
  std::uint64_t streaming_bytes = 0;
  std::uint64_t materialized_bytes = 0;
  double ratio() const {
    return materialized_bytes > 0 ? static_cast<double>(streaming_bytes) /
                                        static_cast<double>(materialized_bytes)
                                  : 0.0;
  }
};

scenario::LongitudinalConfig bench_config() {
  scenario::LongitudinalConfig cfg = scenario::small_longitudinal_config(3);
  cfg.world.domain_count = 20000;
  cfg.world.provider_count = 300;
  cfg.workload.scale = 120.0;
  return cfg;
}

PeakRss measure_peak_rss() {
  // Heavier than bench_config(): the bounded-memory claim is about the
  // regime where pipeline data — the feed record stream and the folded
  // sweep state — dominates the footprint (the production 17-month
  // telescope feed), so the probe lowers the workload scale divisor for
  // more attacks and more feed records. The materialized run holds the
  // record vector plus its segmentation sort copy on top of the ingest
  // region's shard outputs; the streaming run retires each shard into the
  // incremental stitcher, so only the region itself plus the fixed world
  // stays resident. At toy scale the fixed world term would drown that
  // difference.
  scenario::LongitudinalConfig cfg = bench_config();
  cfg.workload.scale = 20.0;
  PeakRss peaks;
  std::size_t streamed_joined = 0;
  {
    const auto r = scenario::run_longitudinal_streaming(cfg, {});
    streamed_joined = r.joined.size();
    benchmark::DoNotOptimize(streamed_joined);
    peaks.streaming_bytes = read_vm_hwm_bytes();
  }
  malloc_trim(0);
  reset_peak_rss();
  {
    const auto r = scenario::run_longitudinal(cfg);
    benchmark::DoNotOptimize(r.joined.size());
    peaks.materialized_bytes = read_vm_hwm_bytes();
    if (r.joined.size() != streamed_joined) {
      std::cerr << "STREAMING DETERMINISM VIOLATION: streaming and "
                   "materialized joined counts disagree\n";
    }
  }
  return peaks;
}

// Shared small world for the micro-benchmarks.
const scenario::LongitudinalResult& small_run() {
  static const scenario::LongitudinalResult result =
      scenario::run_longitudinal(bench_config());
  return result;
}

void BM_PrefixTableLookup(benchmark::State& state) {
  topology::PrefixTable table;
  netsim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    table.announce(netsim::Prefix(
                       netsim::IPv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
                       static_cast<int>(8 + rng.uniform_u64(17))),
                   static_cast<topology::Asn>(1 + rng.uniform_u64(65000)));
  }
  netsim::Rng query_rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.origin_of(
        netsim::IPv4Addr(static_cast<std::uint32_t>(query_rng.next_u64()))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefixTableLookup);

void BM_BackscatterObservation(benchmark::State& state) {
  attack::AttackSpec spec;
  spec.target = netsim::IPv4Addr(7, 7, 7, 7);
  spec.start = netsim::SimTime(0);
  spec.duration_s = 36000;
  spec.peak_pps = 100e3;
  netsim::Rng rng(3);
  const attack::BackscatterModelParams params;
  netsim::WindowIndex w = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::observe_backscatter(
        spec, w++ % 120, 1.0 / 341.0, 192, params, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackscatterObservation);

void BM_AgnosticResolution(benchmark::State& state) {
  std::vector<dns::Nameserver> servers;
  for (int i = 0; i < 3; ++i) {
    servers.emplace_back(
        netsim::IPv4Addr(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
        std::vector<dns::Site>{dns::Site{"x", 50e3, 20.0, 1.0}});
  }
  std::vector<const dns::Nameserver*> ptrs;
  for (const auto& s : servers) ptrs.push_back(&s);
  const std::vector<dns::OfferedLoad> loads = {
      {40e3, 0.0}, {0.0, 0.0}, {0.0, 0.0}};
  const dns::AgnosticResolver resolver;
  const dns::LoadModelParams model;
  netsim::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.resolve(rng, ptrs, loads, model));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AgnosticResolution);

void BM_SweeperMeasurement(benchmark::State& state) {
  const auto& r = small_run();
  openintel::SweeperParams sp;
  sp.seed = 9;
  const openintel::Sweeper sweeper(r.world->registry, r.workload.schedule, sp);
  dns::DomainId d = 0;
  const auto n = r.world->registry.end_domain();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sweeper.measure(d, sweeper.measurement_time(d, 100)));
    d = (d + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SweeperMeasurement);

void BM_StoreFold(benchmark::State& state) {
  openintel::MeasurementStore store;
  openintel::Measurement m;
  m.nsset = 5;
  m.status = dns::ResponseStatus::Ok;
  m.rtt_ms = 20.0;
  std::int64_t t = 0;
  for (auto _ : state) {
    m.time = netsim::SimTime(t);
    t += 17;
    store.add(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreFold);

void BM_FullJoin(benchmark::State& state) {
  const auto& r = small_run();
  const core::ResilienceClassifier classifier(
      r.world->registry, r.world->census, r.world->routes, r.world->orgs);
  for (auto _ : state) {
    core::JoinPipeline pipeline(r.world->registry, r.store, classifier);
    benchmark::DoNotOptimize(pipeline.run(r.events));
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(r.events.size()));
}
BENCHMARK(BM_FullJoin);

void BM_EventSegmentation(benchmark::State& state) {
  const auto& r = small_run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.feed.events());
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(r.feed.records().size()));
}
BENCHMARK(BM_EventSegmentation);

void BM_MonthlySummary(benchmark::State& state) {
  const auto& r = small_run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::monthly_summary(r.events, r.world->registry));
  }
  state.SetItemsProcessed(
      state.iterations() * static_cast<std::int64_t>(r.events.size()));
}
BENCHMARK(BM_MonthlySummary);

void BM_ZoneFileRoundTrip(benchmark::State& state) {
  const auto& r = small_run();
  const std::string zone =
      dns::export_zone_file(r.world->registry, "com");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::parse_zone_file(zone));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(zone.size()));
}
BENCHMARK(BM_ZoneFileRoundTrip);

void BM_WireNameDecode(benchmark::State& state) {
  std::vector<std::uint8_t> msg;
  dns::encode_name(dns::DomainName::must("mil.ru"), msg);
  const std::size_t second = msg.size();
  msg.push_back(3);
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back(0xC0);
  msg.push_back(0x00);
  for (auto _ : state) {
    std::size_t next = 0;
    benchmark::DoNotOptimize(dns::decode_name(msg, second, next));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireNameDecode);

void BM_DelegationAudit(benchmark::State& state) {
  const auto& r = small_run();
  const core::DelegationAuditor auditor(r.world->registry, r.world->census,
                                        r.world->routes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auditor.audit_all(100));
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(r.world->registry.domain_count()));
}
BENCHMARK(BM_DelegationAudit);

// Wall time of the first depth<=1 stage span named `name`, 0 if absent.
std::uint64_t stage_wall_ns(const obs::Observer& observer,
                            const std::string& name) {
  for (const auto& ev : observer.tracer().events()) {
    if (ev.depth <= 1 && ev.name == name) return ev.duration_ns;
  }
  return 0;
}

// Instrumented end-to-end run for the perf-trajectory JSON; same
// parameterisation as small_run() so numbers are comparable across PRs.
// The pipeline is run twice — single-threaded and at hardware width — so
// the JSON captures the scaling trajectory (per-stage walls at 1 and N
// threads plus the sweep-stage speedup), not just single-core ns.
void write_pipeline_json(const char* path, const PeakRss& peaks) {
  const scenario::LongitudinalConfig cfg = bench_config();

  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned threads = hw > 0 ? hw : 1;

  obs::Observer observer_t1;
  exec::set_global_threads(1);
  const scenario::LongitudinalResult result_t1 = [&] {
    const obs::ScopedInstall install(observer_t1);
    return scenario::run_longitudinal(cfg);
  }();

  // The N-thread run doubles as the sampler-overhead audit: a
  // TelemetrySampler at the default 250 ms cadence rides along and
  // self-times every sample body. The gated figure is the steady-state
  // overhead — mean sample cost divided by the sampling interval, i.e.
  // the fraction of each interval the sampler's thread spends working.
  // (Dividing by this short run's wall clock instead would overstate it:
  // the run takes two bookend samples in well under one interval.)
  obs::Observer observer;
  exec::set_global_threads(threads);
  obs::TelemetrySampler sampler(observer, obs::SamplerOptions{});
  const scenario::LongitudinalResult result = [&] {
    const obs::ScopedInstall install(observer);
    sampler.start();
    scenario::LongitudinalResult r = scenario::run_longitudinal(cfg);
    sampler.stop();
    return r;
  }();
  exec::set_global_threads(0);
  const double sampler_interval_ns =
      static_cast<double>(sampler.options().interval_ms) * 1e6;
  const double mean_sample_ns =
      sampler.samples_taken() > 0
          ? static_cast<double>(sampler.total_sample_ns()) /
                static_cast<double>(sampler.samples_taken())
          : 0.0;
  const double sampler_overhead_pct =
      100.0 * mean_sample_ns / sampler_interval_ns;

  if (result.joined.size() != result_t1.joined.size() ||
      result.swept_measurements != result_t1.swept_measurements) {
    std::cerr << "DETERMINISM VIOLATION: --threads 1 and --threads "
              << threads << " runs disagree\n";
  }

  const std::uint64_t sweep_t1 = stage_wall_ns(observer_t1, "sweep");
  const std::uint64_t sweep_tn = stage_wall_ns(observer, "sweep");
  const std::uint64_t total_t1 = stage_wall_ns(observer_t1, "run_longitudinal");
  const std::uint64_t total_tn = stage_wall_ns(observer, "run_longitudinal");

  // DRS store round trip at the same world size: write the N-thread
  // result, then read it back three ways —
  //   * store_read_ns / store_read_MBps: the zero-copy columnar scan
  //     (mmap Reader + ColumnArena + scan_all + read_event_frame), the
  //     path `analyze --store` actually takes. Guarded.
  //   * store_analyze_ns / analyze_vs_run_speedup: the full
  //     analyze_store pass (scan + every headline kernel) against the
  //     wall clock of re-simulating. Guarded floor.
  //   * store_load_ns / store_load_MBps: the row-materializing load_run
  //     (what serve/net use at startup). Informational.
  const char* store_path = "bench_perf_pipeline.drs";
  const auto wall_ns = [](auto start, auto end) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  };
  const auto write_start = std::chrono::steady_clock::now();
  const std::uint64_t store_bytes =
      scenario::save_run(store_path, cfg, threads, result);
  const auto write_end = std::chrono::steady_clock::now();
  const scenario::StoredRun loaded = scenario::load_run(store_path);
  const auto load_end = std::chrono::steady_clock::now();
  if (loaded.joined != result.joined) {
    std::cerr << "STORE ROUND-TRIP VIOLATION: loaded events differ from the "
                 "generating run\n";
  }
  const auto scan_start = std::chrono::steady_clock::now();
  {
    const store::Reader reader(store_path, store::ReadMode::Mapped);
    store::ColumnArena arena;
    const std::uint64_t payload = store::scan_all(reader, arena);
    const core::EventFrame frame = store::read_event_frame(reader, arena);
    benchmark::DoNotOptimize(payload);
    if (frame.rows != result.joined.size()) {
      std::cerr << "STORE SCAN VIOLATION: event frame rows differ from the "
                   "generating run\n";
    }
  }
  const auto scan_end = std::chrono::steady_clock::now();
  const scenario::StoreAnalysis analysis = scenario::analyze_store(store_path);
  const auto analyze_end = std::chrono::steady_clock::now();
  if (analysis.joined != result.joined.size()) {
    std::cerr << "STORE ANALYZE VIOLATION: analyzed event count differs from "
                 "the generating run\n";
  }
  std::filesystem::remove(store_path);

  const std::uint64_t store_write_ns = wall_ns(write_start, write_end);
  const std::uint64_t store_load_ns = wall_ns(write_end, load_end);
  const std::uint64_t store_read_ns = wall_ns(scan_start, scan_end);
  const std::uint64_t store_analyze_ns = wall_ns(scan_end, analyze_end);

  // Plan/execute/compact at the same world size: run the 3-way shard
  // partition (sequentially — the slowest shard's wall is what a
  // 3-process run would cost) and merge the shard stores.
  //   * merge_MBps: compaction throughput (merged bytes out / merge
  //     wall). Guarded floor in baseline_perf.json — the merge is pure
  //     decode + re-encode and must not collapse.
  //   * shard_speedup: whole-run wall over the slowest shard's wall —
  //     the wall-clock win of running the 3 shards as processes.
  //     Informational: each shard still pays the full world + telescope
  //     ingest, so this approaches 3x only as the sweep dominates.
  std::uint64_t slowest_shard_ns = 0;
  std::uint64_t merge_ns = 0;
  double merge_MBps = 0.0;
  double shard_speedup = 0.0;
  {
    const std::vector<std::string> shard_paths = {
        "bench_perf_shard0.drs", "bench_perf_shard1.drs",
        "bench_perf_shard2.drs"};
    for (std::uint32_t i = 0; i < 3; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      const scenario::ShardRunResult shard = scenario::run_shard(
          cfg, scenario::ShardSpec{i, 3}, threads, shard_paths[i]);
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(shard.joined_rows);
      slowest_shard_ns = std::max(slowest_shard_ns, wall_ns(t0, t1));
    }
    const char* merged_path = "bench_perf_merged.drs";
    const auto t0 = std::chrono::steady_clock::now();
    const store::MergeStats merge_stats =
        store::merge_stores(merged_path, shard_paths);
    const auto t1 = std::chrono::steady_clock::now();
    merge_ns = wall_ns(t0, t1);
    if (merge_stats.bytes_written != store_bytes) {
      std::cerr << "SHARD MERGE VIOLATION: merged store size differs from "
                   "save_run's\n";
    }
    if (merge_ns > 0) {
      merge_MBps = static_cast<double>(merge_stats.bytes_written) * 1e3 /
                   static_cast<double>(merge_ns);
    }
    if (slowest_shard_ns > 0) {
      shard_speedup = static_cast<double>(total_tn) /
                      static_cast<double>(slowest_shard_ns);
    }
    for (const std::string& p : shard_paths) std::filesystem::remove(p);
    std::filesystem::remove(merged_path);
  }

  // Sweep-ingest throughput at longitudinal scale. The stream is keyed
  // like sweeper output (per-day batches, a handful of domains per nsset,
  // windows advancing through the day) but sized so the window table far
  // outgrows L2 — the regime the paper's 17-month, ~10^8-fold sweep lives
  // in. The toy world above is small enough that every table stays
  // cache-resident, where any store layout times about the same; this
  // stream is where the flat tables and the batched group-by-key fold
  // actually earn their keep. Only MeasurementStore::add_batch is on the
  // clock.
  constexpr int kIngestDays = 120;
  constexpr std::size_t kIngestPerDay = 12000;
  constexpr std::uint32_t kIngestNssets = 4096;
  constexpr std::uint32_t kIngestDomainsPerNsset = 8;
  std::vector<openintel::Measurement> stream;
  stream.reserve(kIngestDays * kIngestPerDay);
  for (int day = 0; day < kIngestDays; ++day) {
    for (std::size_t i = 0; i < kIngestPerDay; ++i) {
      const std::uint64_t h = netsim::mix64(
          (static_cast<std::uint64_t>(day) << 32) | i);
      openintel::Measurement m;
      m.domain = static_cast<dns::DomainId>(
          h % (kIngestNssets * kIngestDomainsPerNsset));
      m.nsset = static_cast<dns::NssetId>(m.domain / kIngestDomainsPerNsset);
      const auto win_in_day = static_cast<std::int64_t>(
          (i * static_cast<std::size_t>(netsim::kWindowsPerDay)) /
          kIngestPerDay);
      m.time = netsim::SimTime(static_cast<std::int64_t>(day) * 24 * 3600 +
                               win_in_day * 300);
      m.chosen_ns = netsim::IPv4Addr(
          0x0A000000u + m.nsset * 2u +
          static_cast<std::uint32_t>((h >> 60) & 1));
      const std::uint64_t roll = (h >> 8) & 0xFF;
      if (roll < 250) {
        m.status = dns::ResponseStatus::Ok;
        m.rtt_ms = 5.0 + static_cast<double>(h & 0x3FF) / 16.0;
      } else if (roll < 253) {
        m.status = dns::ResponseStatus::ServFail;
        m.rtt_ms = 40.0 + static_cast<double>(h & 0xFF);
      } else {
        m.status = dns::ResponseStatus::Timeout;
      }
      stream.push_back(m);
    }
  }
  double ingest_per_sec = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    openintel::MeasurementStore ingest_store;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t off = 0; off < stream.size(); off += kIngestPerDay) {
      ingest_store.add_batch(std::span<const openintel::Measurement>(
          stream.data() + off, kIngestPerDay));
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0.0)
      ingest_per_sec = std::max(
          ingest_per_sec, static_cast<double>(stream.size()) / secs);
    benchmark::DoNotOptimize(ingest_store.total_measurements());
  }

  // Join-probe latency: the join's inner loop is window/daily lookups
  // against the populated store. Probe real keys in hash-scrambled order
  // (so the prefetcher cannot ride a sorted scan) and report mean ns.
  double join_probe_ns = 0.0;
  const auto window_keys = result.store.sorted_window();
  if (!window_keys.empty()) {
    constexpr std::uint64_t kProbes = 1'000'000;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kProbes; ++i) {
      const std::uint64_t key =
          window_keys[netsim::mix64(i) % window_keys.size()].first;
      const openintel::Aggregate* agg = result.store.window(
          openintel::MeasurementStore::key_nsset(key),
          openintel::MeasurementStore::window_key_window(key));
      sink += agg ? agg->measured : 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(sink);
    join_probe_ns = static_cast<double>(wall_ns(t0, t1)) /
                    static_cast<double>(kProbes);
  }
  // Serve-layer throughput: build the query engine over the N-thread run
  // and hammer it with a point-lookup-only fixed-ops drive at hardware
  // width. serve_lookups_per_sec is a guarded_min hard floor in
  // bench/baseline_perf.json (>= 1M lookups/sec); the latency quantile is
  // informational (too runner-sensitive to gate).
  const auto build_start = std::chrono::steady_clock::now();
  const serve::QueryEngine engine(result);
  const auto build_end = std::chrono::steady_clock::now();
  serve::DriveOptions serve_opts;
  serve_opts.workload.dist = serve::Distribution::Zipfian;
  serve_opts.workload.mix = {1, 0, 0};  // point lookups only
  serve_opts.ops_per_thread = 500000;
  const serve::DriveReport serve_report = serve::drive(engine, serve_opts);
  const double serve_lookups_per_sec = serve_report.by_type[0].ops_per_sec;
  const double serve_p99_us = serve_report.by_type[0].p99_us;

  // Networked serve throughput: the same engine behind the epoll TCP
  // front-end on loopback, driven closed-loop over 2 connections. This
  // prices the whole wire path (encode + two kernel crossings + decode
  // per op); net_qps is a guarded_min floor in baseline_perf.json —
  // deliberately conservative, it gates "the socket path collapsed", not
  // steady-state throughput. The RTT quantile is informational (loopback
  // scheduling jitter makes it too runner-sensitive to gate).
  double net_qps = 0.0;
  double net_rtt_p99_us = 0.0;
  {
    net::ServerOptions server_opts;
    server_opts.threads = 2;
    net::Server server(net::EngineHandle::view(engine, 1), server_opts);
    server.start();
    net::RemoteDriveOptions remote;
    remote.port = server.port();
    remote.connections = 2;
    remote.workload = serve_opts.workload;
    remote.ops_per_thread = 50000;
    const serve::DriveReport net_report = net::drive_remote(remote);
    server.stop();
    net_qps = net_report.ops_per_sec;
    net_rtt_p99_us = net_report.by_type[0].p99_us;
  }

  const auto mbps = [store_bytes](std::uint64_t ns) {
    return ns > 0 ? static_cast<double>(store_bytes) * 1e3 /
                        static_cast<double>(ns)
                  : 0.0;  // bytes/ns * 1e3 == MB/s
  };

  obs::RunReport report("bench_perf_pipeline");
  report.add_config("seed", static_cast<std::int64_t>(3));
  report.add_config("domains",
                    static_cast<std::int64_t>(cfg.world.domain_count));
  report.add_config("providers",
                    static_cast<std::int64_t>(cfg.world.provider_count));
  report.add_config("scale", cfg.workload.scale);
  report.add_config("threads", static_cast<std::int64_t>(threads));
  report.add_result("events", static_cast<std::int64_t>(result.events.size()));
  report.add_result("joined", static_cast<std::int64_t>(result.joined.size()));
  report.add_result("swept_measurements",
                    static_cast<std::int64_t>(result.swept_measurements));
  report.add_result("sweep_wall_ns_t1", static_cast<std::int64_t>(sweep_t1));
  report.add_result("sweep_wall_ns_tN", static_cast<std::int64_t>(sweep_tn));
  report.add_result("total_wall_ns_t1", static_cast<std::int64_t>(total_t1));
  report.add_result("total_wall_ns_tN", static_cast<std::int64_t>(total_tn));
  report.add_result("sweep_speedup",
                    sweep_tn > 0 ? static_cast<double>(sweep_t1) /
                                       static_cast<double>(sweep_tn)
                                 : 0.0);
  report.add_result("store_bytes", static_cast<std::int64_t>(store_bytes));
  report.add_result("store_write_ns",
                    static_cast<std::int64_t>(store_write_ns));
  report.add_result("store_read_ns", static_cast<std::int64_t>(store_read_ns));
  report.add_result("store_load_ns", static_cast<std::int64_t>(store_load_ns));
  report.add_result("store_analyze_ns",
                    static_cast<std::int64_t>(store_analyze_ns));
  report.add_result("store_write_MBps", mbps(store_write_ns));
  report.add_result("store_read_MBps", mbps(store_read_ns));
  report.add_result("store_load_MBps", mbps(store_load_ns));
  report.add_result("ingest_measurements",
                    static_cast<std::int64_t>(stream.size()));
  report.add_result("ingest_measurements_per_sec", ingest_per_sec);
  report.add_result("join_probe_ns", join_probe_ns);
  report.add_result("serve_build_ns",
                    static_cast<std::int64_t>(wall_ns(build_start,
                                                      build_end)));
  report.add_result("serve_ops", static_cast<std::int64_t>(
                                     serve_report.total_ops));
  report.add_result("serve_threads",
                    static_cast<std::int64_t>(serve_report.threads));
  report.add_result("serve_lookups_per_sec", serve_lookups_per_sec);
  report.add_result("serve_p99_us", serve_p99_us);
  report.add_result("net_qps", net_qps);
  report.add_result("net_rtt_p99_us", net_rtt_p99_us);
  report.add_result("peak_rss_bytes_streaming",
                    static_cast<std::int64_t>(peaks.streaming_bytes));
  report.add_result("peak_rss_bytes_materialized",
                    static_cast<std::int64_t>(peaks.materialized_bytes));
  report.add_result("peak_rss_ratio", peaks.ratio());
  report.add_result("sampler_overhead_pct", sampler_overhead_pct);
  report.add_result("sampler_samples",
                    static_cast<std::int64_t>(sampler.samples_taken()));
  report.add_result("sampler_series",
                    static_cast<std::int64_t>(sampler.series().series_count()));
  // analyze --store replaces a full re-simulation with one columnar
  // analyze pass (mmap scan + every headline kernel, analyze_store).
  report.add_result("analyze_vs_run_speedup",
                    store_analyze_ns > 0
                        ? static_cast<double>(total_tn) /
                              static_cast<double>(store_analyze_ns)
                        : 0.0);
  report.add_result("shard_slowest_ns",
                    static_cast<std::int64_t>(slowest_shard_ns));
  report.add_result("merge_ns", static_cast<std::int64_t>(merge_ns));
  report.add_result("merge_MBps", merge_MBps);
  report.add_result("shard_speedup", shard_speedup);

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  // Stage table and metric snapshot come from the N-thread run — the
  // configuration future scale-up PRs care about.
  report.write(out, observer);
  std::cout << "\nwrote instrumented pipeline stage timings to " << path
            << " (sweep speedup at " << threads << " threads: "
            << (sweep_tn > 0
                    ? static_cast<double>(sweep_t1) /
                          static_cast<double>(sweep_tn)
                    : 0.0)
            << "x; store write " << mbps(store_write_ns)
            << " MB/s, columnar scan " << mbps(store_read_ns)
            << " MB/s, row load " << mbps(store_load_ns)
            << " MB/s, shard merge " << merge_MBps << " MB/s (3-shard speedup "
            << shard_speedup << "x); ingest "
            << ingest_per_sec / 1e6 << " M meas/s; join probe "
            << join_probe_ns << " ns; serve "
            << serve_lookups_per_sec / 1e6 << " M lookups/s at "
            << serve_report.threads << " threads, p99 " << serve_p99_us
            << " us; peak RSS streaming "
            << peaks.streaming_bytes / (1024.0 * 1024.0)
            << " MiB vs materialized "
            << peaks.materialized_bytes / (1024.0 * 1024.0) << " MiB = "
            << peaks.ratio() << "x; sampler overhead "
            << sampler_overhead_pct << "% over " << sampler.samples_taken()
            << " samples, " << sampler.series().series_count()
            << " series)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Before anything else: the streaming-vs-materialized peak-RSS probe
  // needs a pristine address space (see measure_peak_rss).
  const PeakRss peaks = measure_peak_rss();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_pipeline_json("bench_perf_pipeline.json", peaks);
  return 0;
}
