// Figures 2 and 3 — TransIP RTT time series across both attacks, and the
// March 2021 timeout-share series.
#include <iostream>

#include "scenario/transip.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

namespace {

void print_series(const std::vector<scenario::SeriesPoint>& series,
                  bool timeouts) {
  for (const auto& pt : series) {
    std::cout << "  " << pt.time.to_string() << "  "
              << (pt.attack_marked ? '*' : ' ') << "  ";
    if (timeouts) {
      std::cout << util::format_fixed(100 * pt.timeout_share, 1) << "%\t"
                << util::ascii_bar(pt.timeout_share, 40);
    } else {
      std::cout << util::format_fixed(pt.impact_on_rtt, 1) << "x\t"
                << util::ascii_bar(pt.impact_on_rtt / 200.0, 40);
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  std::cout << util::banner("Figures 2-3: TransIP RTT and timeout series")
            << "\n";
  std::cout << "paper: Dec 2020 ~10x RTT, impairment persisting ~8h past "
               "the visible attack; Mar 2021 larger impairment matching the "
               "telescope window, ~20% timeouts\n\n";
  scenario::TransIPParams params;
  params.scale = 1.0;
  const scenario::TransIPResult r = scenario::run_transip(params);

  std::cout << "Fig. 2 (left): December 2020 hourly Impact_on_RTT "
               "(* = telescope-visible attack hours)\n";
  print_series(r.december_series, false);
  std::cout << "  -> peak " << util::format_fixed(r.december_peak_impact, 1)
            << "x (paper ~10x), residual impairment "
            << util::format_fixed(r.december_residual_hours, 1)
            << "h after the visible attack (paper ~8h), peak timeouts "
            << util::format_fixed(100 * r.december_peak_timeout_share, 1)
            << "% (paper: negligible)\n\n";

  std::cout << "Fig. 2 (right): March 2021 hourly Impact_on_RTT\n";
  print_series(r.march_series, false);
  std::cout << "  -> peak " << util::format_fixed(r.march_peak_impact, 1)
            << "x; impairment window matches the telescope interval "
               "(scrubbing deployed, §5.1)\n\n";

  std::cout << "Fig. 3: March 2021 timeout share per hour\n";
  print_series(r.march_series, true);
  std::cout << "  -> peak timeout share "
            << util::format_fixed(100 * r.march_peak_timeout_share, 1)
            << "% (paper ~20% of observed domains)\n";
  return 0;
}
