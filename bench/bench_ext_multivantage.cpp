// Extension bench — multi-vantage reactive measurement (§9 future work).
//
// "Measurement from multiple vantage points will also improve fidelity of
// inferences in the face of increasing anycast deployment" (§9); the
// single Dutch vantage "limits the precision of our visibility ...
// especially in case of anycast deployments where catchment can mask
// ongoing attacks in specific geographic regions" (§4.3). This bench
// builds an anycast deployment whose hot catchment site saturates while
// the rest stay healthy, and quantifies what 1, 2, 4, 8 vantage points
// detect.
#include <iostream>

#include "reactive/platform.h"
#include "util/strings.h"
#include "util/table.h"

using namespace ddos;

int main() {
  std::cout << util::banner(
                   "Extension: multi-vantage reactive measurement")
            << "\n";
  std::cout << "reference: §4.3 (catchment masking) and §9 (multi-vantage "
               "future work)\n\n";

  // Anycast deployment: one hot site carrying most of the catchment, five
  // cool ones. A flood sized against the aggregate saturates only the hot
  // site.
  dns::DnsRegistry registry;
  const netsim::IPv4Addr ns_ip(10, 50, 0, 1);
  std::vector<dns::Site> sites;
  sites.push_back(dns::Site{"hot", 60e3, 18.0, 10.0});
  for (int i = 0; i < 5; ++i) {
    sites.push_back(
        dns::Site{"cool" + std::to_string(i), 60e3, 22.0, 1.0});
  }
  dns::Nameserver ns(ns_ip, std::move(sites));
  ns.set_legit_pps(500.0);
  registry.add_nameserver(std::move(ns));
  for (int d = 0; d < 50; ++d) {
    registry.add_domain(
        dns::DomainName::must("any" + std::to_string(d) + ".com"), {ns_ip});
  }

  attack::AttackSchedule schedule;
  attack::AttackSpec spec;
  spec.target = ns_ip;
  spec.start = netsim::window_start(1000);
  spec.duration_s = 24 * netsim::kSecondsPerWindow;  // two hours
  spec.peak_pps = 120e3;  // hot site: 10/15 share = 80K vs 60K -> saturated
  spec.steady = true;
  schedule.add(spec);

  telescope::RSDoSEvent event;
  event.victim = ns_ip;
  event.start_window = 1000;
  event.end_window = 1023;

  // Vantage fleet spread over distinct catchment identities.
  std::vector<reactive::VantagePoint> all_vps;
  for (std::size_t i = 0; i < 32; ++i) {
    all_vps.push_back(
        reactive::VantagePoint{11 + i * 131, "NL", "vp" + std::to_string(i)});
  }

  const reactive::MultiVantagePlatform platform(
      registry, schedule, reactive::ReactiveParams{}, all_vps);
  const auto campaign = platform.run_campaign(event);
  const std::size_t attack_windows = campaign.windows.size();

  // Detection probability of a k-vantage deployment, averaged over every
  // (cyclic) choice of k vantages from the fleet: does at least one of
  // them observe the outage?
  util::TextTable table({"Vantage points", "P(outage detected)",
                         "Avg degraded windows seen"});
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    std::size_t detecting_subsets = 0;
    double degraded_sum = 0.0;
    for (std::size_t off = 0; off < all_vps.size(); ++off) {
      bool any = false;
      std::size_t union_degraded = 0;
      for (const auto& w : campaign.windows) {
        bool win_deg = false;
        for (std::size_t j = 0; j < k; ++j) {
          const std::size_t v = (off + j) % all_vps.size();
          if (w.rate_per_vantage[v] < 0.9) win_deg = true;
        }
        if (win_deg) {
          any = true;
          ++union_degraded;
        }
      }
      if (any) ++detecting_subsets;
      degraded_sum += static_cast<double>(union_degraded);
    }
    table.add_row(
        {std::to_string(k),
         util::format_fixed(100.0 * detecting_subsets / all_vps.size(), 0) +
             "%",
         util::format_fixed(degraded_sum / all_vps.size(), 1) + "/" +
             std::to_string(attack_windows)});
  }
  std::cout << table.to_string();

  std::cout << "\nper-vantage view of one mid-attack window:\n";
  if (!campaign.windows.empty()) {
    const auto& w = campaign.windows[campaign.windows.size() / 2];
    for (std::size_t v = 0; v < 8; ++v) {
      std::cout << "  " << campaign.vantages[v].label << "\t"
                << util::format_fixed(100.0 * w.rate_per_vantage[v], 0)
                << "%\t" << util::ascii_bar(w.rate_per_vantage[v], 30)
                << "\n";
    }
  }
  std::cout << "\nmasked windows (vantage disagreement >= 50pp): "
            << campaign.masked_windows(0.5) << "/" << attack_windows
            << "\nshape check: a single vantage in a healthy catchment can "
               "miss the outage entirely; detection rises with vantage "
               "count and saturates once every catchment is covered — the "
               "paper's case for multi-vantage deployment.\n";
  return 0;
}
