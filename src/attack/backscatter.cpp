#include "attack/backscatter.h"

#include <algorithm>
#include <cmath>

namespace ddos::attack {

double expected_distinct_subnets(std::uint64_t packets,
                                 std::uint32_t subnets) {
  if (subnets == 0) return 0.0;
  const double n = static_cast<double>(subnets);
  const double k = static_cast<double>(packets);
  return n * (1.0 - std::exp(-k / n));
}

BackscatterWindow observe_backscatter(const AttackSpec& attack,
                                      netsim::WindowIndex window,
                                      double darknet_fraction,
                                      std::uint32_t darknet_slash16_count,
                                      const BackscatterModelParams& params,
                                      netsim::Rng& rng) {
  BackscatterWindow out;
  out.window = window;
  out.victim = attack.target;
  out.protocol = attack.protocol;
  out.first_port = attack.first_port;
  out.unique_ports = attack.unique_ports;

  if (attack.spoof != SpoofType::RandomUniform) return out;  // invisible
  const double flood_pps = attack.pps_in_window(window);
  if (flood_pps <= 0.0) return out;

  // Victim answers up to its response capacity; response_ratio of the spec
  // scales the base ratio (e.g. 0 for a null-routed victim).
  const double response_pps =
      std::min(flood_pps * params.base_response_ratio * attack.response_ratio,
               params.victim_response_capacity_pps);
  const double expected_captured =
      response_pps * netsim::kSecondsPerWindow * darknet_fraction;
  // Poisson thinning of the uniform spray into the darknet.
  out.packets = rng.poisson(expected_captured);
  if (out.packets == 0) return out;

  const double expected16 =
      expected_distinct_subnets(out.packets, darknet_slash16_count);
  // Mild integer jitter around the occupancy expectation.
  const double sampled = rng.normal(expected16, std::sqrt(expected16) * 0.1);
  out.distinct_slash16 = static_cast<std::uint32_t>(std::clamp(
      sampled, 1.0, static_cast<double>(darknet_slash16_count)));

  // Peak packets-per-minute at the telescope: mean ppm with a bursty factor.
  const double mean_ppm = static_cast<double>(out.packets) /
                          (netsim::kSecondsPerWindow / 60.0);
  out.peak_ppm = mean_ppm * rng.uniform(1.02, 1.10);
  return out;
}

}  // namespace ddos::attack
