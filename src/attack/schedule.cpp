#include "attack/schedule.h"

#include <algorithm>

namespace ddos::attack {

std::uint64_t AttackSchedule::add(AttackSpec spec) {
  if (spec.id == 0) spec.id = next_id_++;
  next_id_ = std::max(next_id_, spec.id + 1);
  const std::size_t idx = attacks_.size();
  by_ip_[spec.target].push_back(idx);
  by_slash24_[spec.target.slash24()].push_back(idx);
  attacks_.push_back(spec);
  return spec.id;
}

const AttackSpec* AttackSchedule::find(std::uint64_t id) const {
  for (const auto& a : attacks_) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

double AttackSchedule::attack_pps_at(netsim::IPv4Addr ip,
                                     netsim::WindowIndex window) const {
  const std::vector<std::size_t>* idxs = by_ip_.find(ip);
  if (!idxs) return 0.0;
  double pps = 0.0;
  for (const std::size_t idx : *idxs)
    pps += attacks_[idx].victim_pps_in_window(window);
  return pps;
}

double AttackSchedule::slash24_pps_at(netsim::IPv4Addr ip,
                                      netsim::WindowIndex window) const {
  const std::vector<std::size_t>* idxs = by_slash24_.find(ip.slash24());
  if (!idxs) return 0.0;
  double pps = 0.0;
  for (const std::size_t idx : *idxs)
    pps += attacks_[idx].victim_pps_in_window(window);
  return pps;
}

void AttackSchedule::set_link_capacity(netsim::IPv4Addr any_ip_in_24,
                                       double pps) {
  link_capacity_.insert_or_assign(any_ip_in_24.slash24(), pps);
}

double AttackSchedule::link_utilisation_at(netsim::IPv4Addr ip,
                                           netsim::WindowIndex window) const {
  const double* cap = link_capacity_.find(ip.slash24());
  if (!cap || *cap <= 0.0) return 0.0;
  return slash24_pps_at(ip, window) / *cap;
}

bool AttackSchedule::truncate_attack(std::uint64_t id, netsim::SimTime at) {
  for (auto& spec : attacks_) {
    if (spec.id != id) continue;
    if (at <= spec.start || at >= spec.end()) return false;
    spec.duration_s = at - spec.start;
    return true;
  }
  return false;
}

std::vector<const AttackSpec*> AttackSchedule::attacks_on(
    netsim::IPv4Addr ip) const {
  std::vector<const AttackSpec*> out;
  const std::vector<std::size_t>* idxs = by_ip_.find(ip);
  if (!idxs) return out;
  out.reserve(idxs->size());
  for (const std::size_t idx : *idxs) out.push_back(&attacks_[idx]);
  return out;
}

std::vector<const AttackSpec*> AttackSchedule::active_in(
    netsim::WindowIndex window) const {
  std::vector<const AttackSpec*> out;
  for (const auto& a : attacks_) {
    if (a.first_window() <= window && window <= a.last_window())
      out.push_back(&a);
  }
  return out;
}

netsim::SimTime AttackSchedule::earliest_start() const {
  netsim::SimTime t;
  bool first = true;
  for (const auto& a : attacks_) {
    if (first || a.start < t) t = a.start;
    first = false;
  }
  return t;
}

netsim::SimTime AttackSchedule::latest_end() const {
  netsim::SimTime t;
  for (const auto& a : attacks_) {
    if (a.end() > t) t = a.end();
  }
  return t;
}

}  // namespace ddos::attack
