#include "attack/mitigation.h"

namespace ddos::attack {

std::vector<ScrubEvent> apply_scrubbing(AttackSchedule& schedule,
                                        const ScrubbingPolicy& policy) {
  std::vector<ScrubEvent> events;
  struct Plan {
    std::uint64_t id;
    netsim::IPv4Addr victim;
    netsim::SimTime from;
    AttackSpec scrubbed_tail;
  };
  std::vector<Plan> plans;
  for (const auto& spec : schedule.attacks()) {
    if (spec.spoof != SpoofType::RandomUniform) continue;
    if (spec.scrubbed_fraction > 0.0) continue;  // already diverted
    if (spec.peak_pps < policy.trigger_pps) continue;
    const netsim::SimTime from = spec.start + policy.activation_delay_s;
    if (from >= spec.end()) continue;

    Plan plan;
    plan.id = spec.id;
    plan.victim = spec.target;
    plan.from = from;
    plan.scrubbed_tail = spec;
    plan.scrubbed_tail.id = 0;
    plan.scrubbed_tail.start = from;
    plan.scrubbed_tail.duration_s = spec.end() - from;
    plan.scrubbed_tail.scrubbed_fraction = policy.efficacy;
    plans.push_back(plan);
  }
  for (const auto& plan : plans) {
    if (!schedule.truncate_attack(plan.id, plan.from)) continue;
    schedule.add(plan.scrubbed_tail);
    events.push_back(ScrubEvent{plan.victim, plan.id, plan.from});
  }
  return events;
}

std::vector<RtbhEvent> apply_rtbh(AttackSchedule& schedule,
                                  const RtbhPolicy& policy) {
  std::vector<RtbhEvent> events;
  // Collect first: adding continuation specs while iterating would
  // invalidate the attack list.
  struct Plan {
    std::uint64_t id;
    netsim::IPv4Addr victim;
    netsim::SimTime start;
    netsim::SimTime original_end;
    AttackSpec continuation;
  };
  std::vector<Plan> plans;
  for (const auto& spec : schedule.attacks()) {
    if (spec.spoof != SpoofType::RandomUniform) continue;
    if (spec.peak_pps < policy.trigger_pps) continue;
    const netsim::SimTime trigger = spec.start + policy.reaction_delay_s;
    if (trigger >= spec.end()) continue;  // over before anyone reacts

    Plan plan;
    plan.id = spec.id;
    plan.victim = spec.target;
    plan.start = trigger;
    plan.original_end = spec.end();
    plan.continuation = spec;
    plan.continuation.id = 0;
    plan.continuation.spoof = SpoofType::Direct;  // backscatter-silent
    plan.continuation.start = trigger;
    plan.continuation.duration_s = spec.end() - trigger;
    plans.push_back(plan);
  }

  for (const auto& plan : plans) {
    if (!schedule.truncate_attack(plan.id, plan.start)) continue;
    schedule.add(plan.continuation);
    events.push_back(RtbhEvent{plan.victim, plan.id, plan.start,
                               plan.original_end + policy.hold_s});
  }
  return events;
}

}  // namespace ddos::attack
