// Backscatter generation. A victim of a randomly-and-uniformly spoofed
// flood answers (SYN/ACKs, RSTs, ICMP errors) toward the spoofed sources,
// which are uniform over the IPv4 space — so a darknet covering fraction f
// of the space receives Binomial(responses, f) of them (§3.1). We generate
// per-window aggregate counts rather than packets: the RSDoS inference
// consumes exactly these aggregates.
#pragma once

#include <cstdint>

#include "attack/attack.h"
#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::attack {

/// Aggregate backscatter landing in a darknet during one 5-minute window,
/// attributable to one victim.
struct BackscatterWindow {
  netsim::WindowIndex window = 0;
  netsim::IPv4Addr victim;
  std::uint64_t packets = 0;        // backscatter packets captured
  std::uint32_t distinct_slash16 = 0;  // telescope /16s reached
  Protocol protocol = Protocol::TCP;
  std::uint16_t first_port = 0;     // source port of responses == attacked port
  std::uint16_t unique_ports = 1;
  double peak_ppm = 0.0;            // peak packets/min seen at the telescope
};

struct BackscatterModelParams {
  /// Fraction of flood packets the victim answers. Saturated or filtered
  /// victims answer fewer — the paper notes successful attacks can silence
  /// their own backscatter signal (§6.5).
  double base_response_ratio = 1.0;
  /// Victim response capacity (pps). Responses are capped at this rate,
  /// so backscatter saturates for intense attacks.
  double victim_response_capacity_pps = 1e6;
};

/// Simulate the backscatter of `attack` during `window` as seen by a
/// darknet covering `darknet_fraction` of IPv4 with `darknet_slash16_count`
/// /16-equivalent subnets. Returns packets == 0 for telescope-invisible
/// attacks (reflected/direct) and for windows outside the attack.
BackscatterWindow observe_backscatter(const AttackSpec& attack,
                                      netsim::WindowIndex window,
                                      double darknet_fraction,
                                      std::uint32_t darknet_slash16_count,
                                      const BackscatterModelParams& params,
                                      netsim::Rng& rng);

/// Expected number of distinct subnets hit when `packets` land uniformly
/// over `subnets` bins (occupancy formula).
double expected_distinct_subnets(std::uint64_t packets, std::uint32_t subnets);

}  // namespace ddos::attack
