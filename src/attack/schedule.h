// AttackSchedule — indexed collection of attacks, answering the two load
// questions the DNS model asks for every (address, window):
//   (1) how much flood is arriving at this exact IP, and
//   (2) how congested is the shared /24 upstream link
//       (attacks on *any* address in the /24 consume it — the mil.ru
//       shared-bottleneck effect, §5.2.3).
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attack.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"
#include "util/flat_map.h"

namespace ddos::attack {

class AttackSchedule {
 public:
  /// Adds an attack; returns its assigned id if the spec's id was 0.
  std::uint64_t add(AttackSpec spec);

  std::size_t size() const { return attacks_.size(); }
  const std::vector<AttackSpec>& attacks() const { return attacks_; }
  const AttackSpec* find(std::uint64_t id) const;

  /// Total flood pps arriving at `ip` during `window` (all vectors,
  /// including telescope-invisible ones — the victim feels them all).
  double attack_pps_at(netsim::IPv4Addr ip, netsim::WindowIndex window) const;

  /// Total flood pps entering the /24 containing `ip` during `window`.
  double slash24_pps_at(netsim::IPv4Addr ip, netsim::WindowIndex window) const;

  /// Shared-link utilisation of the /24 containing `ip`:
  /// slash24 flood / link capacity. Link capacity defaults to "effectively
  /// infinite" until configured for a prefix.
  void set_link_capacity(netsim::IPv4Addr any_ip_in_24, double pps);
  double link_utilisation_at(netsim::IPv4Addr ip,
                             netsim::WindowIndex window) const;

  /// Truncate attack `id` so it ends at `at` (used by mitigations that
  /// silence the flood's observable effects mid-attack). Returns false if
  /// the id is unknown or `at` is not strictly inside the attack.
  bool truncate_attack(std::uint64_t id, netsim::SimTime at);

  /// Attacks targeting exactly `ip`, any time.
  std::vector<const AttackSpec*> attacks_on(netsim::IPv4Addr ip) const;

  /// Attacks active during `window` (for feed-driven iteration).
  std::vector<const AttackSpec*> active_in(netsim::WindowIndex window) const;

  /// Earliest start / latest end over all attacks (0/0 when empty).
  netsim::SimTime earliest_start() const;
  netsim::SimTime latest_end() const;

 private:
  // Flat open-addressing indexes: the load model probes by_ip_/by_slash24_
  // once per (server, window) query, the hottest lookups after the store
  // fold — see util/flat_map.h.
  std::vector<AttackSpec> attacks_;
  std::uint64_t next_id_ = 1;
  util::FlatMap<netsim::IPv4Addr, std::vector<std::size_t>> by_ip_;
  util::FlatMap<netsim::IPv4Addr, std::vector<std::size_t>> by_slash24_;
  util::FlatMap<netsim::IPv4Addr, double> link_capacity_;  // key: /24 net
};

}  // namespace ddos::attack
