#include "attack/attack.h"

#include <algorithm>
#include <cmath>

namespace ddos::attack {

std::string to_string(Protocol p) {
  switch (p) {
    case Protocol::TCP: return "TCP";
    case Protocol::UDP: return "UDP";
    case Protocol::ICMP: return "ICMP";
  }
  return "PROTO";
}

std::string to_string(SpoofType s) {
  switch (s) {
    case SpoofType::RandomUniform: return "random-spoofed";
    case SpoofType::Reflected: return "reflected";
    case SpoofType::Direct: return "direct";
  }
  return "unknown";
}

double AttackSpec::pps_in_window(netsim::WindowIndex window) const {
  const std::int64_t win_start = window * netsim::kSecondsPerWindow;
  const std::int64_t win_end = win_start + netsim::kSecondsPerWindow;
  const std::int64_t a_start = start.seconds();
  const std::int64_t a_end = end().seconds();
  const std::int64_t overlap =
      std::min(win_end, a_end) - std::max(win_start, a_start);
  if (overlap <= 0) return 0.0;
  const double coverage =
      static_cast<double>(overlap) / netsim::kSecondsPerWindow;
  if (steady) return peak_pps * coverage;
  // Stable +/-10% wobble derived from (attack id, window).
  const std::uint64_t h =
      netsim::mix64(id * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(window));
  const double wobble =
      0.9 + 0.2 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return peak_pps * coverage * wobble;
}

double expected_unique_spoofed_sources(double pps, double seconds) {
  if (pps <= 0.0 || seconds <= 0.0) return 0.0;
  constexpr double kSpace = 4294967296.0;  // 2^32
  const double packets = pps * seconds;
  return kSpace * (1.0 - std::exp(-packets / kSpace));
}

}  // namespace ddos::attack
