// DDoS attack specifications (§2.1). An attack is a flood of `peak_pps`
// packets/s toward one victim IP over a time interval, with a protocol and
// destination-port profile. Spoofing type controls observability: only
// randomly-and-uniformly spoofed attacks generate backscatter that a
// network telescope can attribute (§3.1); reflected and direct attacks are
// invisible to it — modelling the paper's stated blind spot (§4.3, ~40% of
// attacks per Jonker et al.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::attack {

enum class Protocol : std::uint8_t { TCP = 6, UDP = 17, ICMP = 1 };
std::string to_string(Protocol p);

enum class SpoofType : std::uint8_t {
  RandomUniform,  // telescope-visible (RSDoS)
  Reflected,      // amplification via reflectors — telescope-invisible
  Direct,         // unspoofed botnet traffic — telescope-invisible
};
std::string to_string(SpoofType s);

struct AttackSpec {
  std::uint64_t id = 0;
  netsim::IPv4Addr target;
  Protocol protocol = Protocol::TCP;
  SpoofType spoof = SpoofType::RandomUniform;
  netsim::SimTime start;
  std::int64_t duration_s = 900;
  double peak_pps = 10e3;        // flood rate at the victim
  std::uint16_t first_port = 80; // first-observed destination port
  std::uint16_t unique_ports = 1;
  /// Backscatter packets emitted per received attack packet (SYN->SYN/ACK
  /// retransmits push this above 1 for responsive victims; dead or
  /// filtered victims emit less).
  double response_ratio = 1.0;
  /// Disable the per-window rate wobble — "skilled attacker" floods with a
  /// flat rate, used by the scripted/calibrated case events.
  bool steady = false;
  /// Fraction of the flood removed upstream by a scrubbing service before
  /// it reaches the victim (TransIP's March 2021 mitigation, §5.1). The
  /// spoofed traffic still flows — and still elicits backscatter — so the
  /// telescope keeps seeing the attack at full rate while the victim only
  /// feels (1 - scrubbed_fraction) of it.
  double scrubbed_fraction = 0.0;

  netsim::SimTime end() const { return start + duration_s; }
  bool active_at(netsim::SimTime t) const { return t >= start && t < end(); }
  /// Windows [first_window, last_window] overlapped by the attack.
  netsim::WindowIndex first_window() const { return start.window(); }
  netsim::WindowIndex last_window() const {
    return (start + (duration_s - 1)).window();
  }

  /// Flood rate during `window`, with a deterministic per-window wobble
  /// (attack tooling rarely holds a perfectly flat rate). Zero outside the
  /// attack interval. Partial windows are pro-rated by overlap.
  double pps_in_window(netsim::WindowIndex window) const;

  /// Flood rate actually *reaching the victim* (after scrubbing).
  double victim_pps_in_window(netsim::WindowIndex window) const {
    return pps_in_window(window) * (1.0 - scrubbed_fraction);
  }
};

/// Expected number of distinct spoofed source addresses for a
/// randomly-and-uniformly spoofed flood of `pps` lasting `seconds`
/// (coupon-collector overlap over the 2^32 IPv4 space). This is the
/// "Attacker IP Count" column of Table 2.
double expected_unique_spoofed_sources(double pps, double seconds);

}  // namespace ddos::attack
