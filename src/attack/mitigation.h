// Remote-Triggered Blackholing (RTBH) — the operator mitigation Jonker et
// al. studied jointly with the telescope (IMC 2018, cited in the paper's
// introduction). When a flood exceeds what an operator will absorb, they
// announce the victim /32 to their upstream with the blackhole community:
// all traffic to it — attack and legitimate alike — is dropped upstream.
//
// Two observable consequences this module reproduces:
//   * the victim goes completely dark (a self-inflicted outage, worse for
//     availability than most attacks);
//   * backscatter stops, so the telescope infers a much shorter attack
//     than the attacker actually ran — one of the paper's §6.5
//     explanations for the short-duration mode ("the attack succeeds and
//     impedes responses that serve as backscatter signal").
#pragma once

#include <cstdint>
#include <vector>

#include "attack/schedule.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"

namespace ddos::attack {

struct RtbhPolicy {
  /// Flood rate at which the operator pulls the trigger.
  double trigger_pps = 400e3;
  /// Detection + escalation latency before the null-route lands.
  std::int64_t reaction_delay_s = 600;
  /// Conservative hold after the attack traffic stops.
  std::int64_t hold_s = 3600;
};

struct RtbhEvent {
  netsim::IPv4Addr victim;
  std::uint64_t attack_id = 0;
  netsim::SimTime from;   // null-route installed
  netsim::SimTime until;  // withdrawn
};

struct ScrubbingPolicy {
  /// Flood rate at which the victim's traffic is diverted to a scrubber.
  double trigger_pps = 400e3;
  /// Contracting/diversion latency before cleaning starts.
  std::int64_t activation_delay_s = 900;
  /// Fraction of attack traffic the scrubber removes.
  double efficacy = 0.95;
};

struct ScrubEvent {
  netsim::IPv4Addr victim;
  std::uint64_t attack_id = 0;
  netsim::SimTime from;  // scrubbing active from here to the attack's end
};

/// Divert triggering floods through a scrubbing service: the flood's tail
/// is split off with `scrubbed_fraction = efficacy`, so the victim feels a
/// twentieth of it while the telescope — watching the spoofed traffic's
/// backscatter — still sees the attack at full rate and full duration
/// (exactly the March 2021 TransIP signature, §5.1).
std::vector<ScrubEvent> apply_scrubbing(AttackSchedule& schedule,
                                        const ScrubbingPolicy& policy);

/// Apply the policy to every randomly-spoofed flood in the schedule.
/// For each triggering attack this
///   (1) truncates the attack's *backscatter-visible* portion at the
///       null-route time (the spec's duration is cut; a Direct-type
///       continuation spec preserves the attacker's ongoing traffic for
///       bookkeeping), and
///   (2) returns the blackhole interval, which callers apply to the
///       affected nameservers via Nameserver::add_blackhole_interval.
/// Deterministic and idempotent on the returned events (the continuation
/// specs do not re-trigger: they are not randomly spoofed).
std::vector<RtbhEvent> apply_rtbh(AttackSchedule& schedule,
                                  const RtbhPolicy& policy);

}  // namespace ddos::attack
