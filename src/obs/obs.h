// Observer — the process-wide handle that pipeline stages report into.
//
// One Observer bundles a MetricsRegistry, a Tracer, the pre-registered
// pipeline metric set (direct atomic members, so hot paths never do a
// name lookup), and an optional progress callback for heartbeat lines.
//
// Instrumentation sites use the installed-observer pattern:
//
//   if (obs::Observer* o = obs::Observer::installed()) {
//     o->pipeline.resolver_queries.inc();
//   }
//   obs::ScopedSpan span(obs::installed_tracer(), "join.run");
//
// `installed()` is a single relaxed atomic load; with no observer
// installed everything collapses to a load+branch — the null sink that
// keeps bench_perf_pipeline within noise of an uninstrumented build.
// Install is not reference-counted: the caller owns the Observer and must
// uninstall (ScopedInstall does both) before destroying it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ddos::obs {

/// Registry of monotonic progress sources — the signal the stall watchdog
/// and the telemetry sampler poll. A source is a name plus a callable
/// returning a monotonically non-decreasing count (items pushed, days
/// folded, shards run); an optional detail callable renders a one-line
/// human hint ("depth 4/4") for diagnostic dumps. Registration is scoped:
/// the callable must stay valid until remove(), which ScopedProgressSource
/// guarantees by RAII. read() runs the callables under the registry lock,
/// so they must be cheap and lock-free-ish (atomic loads, channel depth).
class ProgressRegistry {
 public:
  using CountFn = std::function<std::uint64_t()>;
  using DetailFn = std::function<std::string()>;

  std::uint64_t add(std::string name, CountFn count, DetailFn detail = {});
  void remove(std::uint64_t id);

  struct Reading {
    std::string name;
    std::uint64_t count = 0;
    std::string detail;  // empty when the source has no detail fn
  };
  /// One reading per live source, in registration order.
  std::vector<Reading> read() const;
  std::size_t size() const;

 private:
  struct Source {
    std::uint64_t id = 0;
    std::string name;
    CountFn count;
    DetailFn detail;
  };
  mutable std::mutex mu_;
  std::vector<Source> sources_;
  std::uint64_t next_id_ = 1;
};

/// RAII registration into the installed observer's ProgressRegistry; a
/// no-op when no observer is installed (registry == nullptr).
class ScopedProgressSource {
 public:
  ScopedProgressSource(ProgressRegistry* registry, std::string name,
                       ProgressRegistry::CountFn count,
                       ProgressRegistry::DetailFn detail = {})
      : registry_(registry),
        id_(registry ? registry->add(std::move(name), std::move(count),
                                     std::move(detail))
                     : 0) {}
  ~ScopedProgressSource() {
    if (registry_) registry_->remove(id_);
  }
  ScopedProgressSource(const ScopedProgressSource&) = delete;
  ScopedProgressSource& operator=(const ScopedProgressSource&) = delete;

 private:
  ProgressRegistry* registry_;
  std::uint64_t id_;
};

/// Metric names are dotted stage.event paths; the full catalogue is
/// documented in README.md §Observability.
struct PipelineMetrics {
  // dns/resolver.cpp — agnostic resolutions.
  Counter& resolver_queries;
  Counter& resolver_attempts;
  Counter& resolver_ok;
  Counter& resolver_servfail;
  Counter& resolver_timeout;
  // dns/server.cpp — per-nameserver query outcomes.
  Counter& server_queries;
  Counter& server_answered;
  Counter& server_servfail;
  Counter& server_dropped;      // blackholed/geofenced/queue-lost, no answer
  // dns/cache.cpp — resolver cache effectiveness.
  Counter& cache_hits;
  Counter& cache_misses;
  // openintel/sweeper.cpp — sweep measurements by outcome.
  Counter& sweep_measurements;
  Counter& sweep_ok;
  Counter& sweep_servfail;
  Counter& sweep_timeout;
  HistogramMetric& sweep_rtt_ms;       // log bins, 1ms .. 10^8 ms
  // telescope/feed.cpp — backscatter inference.
  Counter& feed_windows_observed;
  Counter& feed_records;
  // core/join.cpp — previous-day join dispositions.
  Counter& join_events_in;
  Counter& join_events_out;
  Counter& join_open_resolver_filtered;
  Counter& join_non_dns;
  Counter& join_not_seen_day_before;
  Counter& join_below_floor;
  // scenario/driver.cpp — longitudinal run shape.
  Gauge& run_days_swept;
  Gauge& run_domains_planned;
  Gauge& run_store_measurements;
  // scenario/driver.cpp — DRS dataset store I/O (generate/analyze split).
  Gauge& store_bytes_written;
  Gauge& store_bytes_read;
  Gauge& store_read_MBps;           // throughput of the latest store scan
  // store/reader.cpp — mapped-mode block accounting.
  Counter& store_blocks_mapped;     // blocks indexed by mmap-backed readers
  Counter& store_crc_lazy_checks;   // blocks CRC-verified lazily (once each)
  // store/merge.cpp — shard-store compaction (ddosrepro merge).
  Gauge& merge_shards;              // shard stores in the latest merge
  Counter& merge_rows;              // column values k-way appended
  Gauge& merge_bytes_read;          // summed shard file sizes
  Gauge& merge_bytes_written;       // merged file size
  Gauge& merge_MBps;                // merged bytes / merge wall time
  // scenario/driver.cpp — streaming day-epoch pipeline health.
  Gauge& stream_plan_queue_depth;   // SweepTasks waiting for the sweep stage
  Gauge& stream_sweep_queue_depth;  // swept days waiting for the fold/join
  Gauge& stream_retired_days;       // day-epochs evicted from the store
  Gauge& stream_watermark_day;      // earliest day a pending join still needs

  explicit PipelineMetrics(MetricsRegistry& registry);
};

/// Heartbeat payload emitted by the longitudinal driver once per simulated
/// day (and once after the join).
struct ProgressEvent {
  std::string stage;                 // "sweep" | "join" | ...
  std::int64_t day = -1;             // simulated DayIndex, -1 when n/a
  std::uint64_t days_done = 0;
  std::uint64_t days_total = 0;
  std::uint64_t measurements = 0;    // cumulative swept measurements
  std::uint64_t events = 0;          // telescope events in flight
  std::uint64_t joined = 0;          // joined NSSet-events (post-join)
  double sweep_rate_per_s = 0.0;     // measurements / wall-second so far
};

class Observer {
  // Declared ahead of `pipeline`: PipelineMetrics binds references into
  // metrics_, so the registry must be initialized first.
  MetricsRegistry metrics_;
  Tracer tracer_;

 public:
  Observer();

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  PipelineMetrics pipeline;  // references into metrics_

  /// Progress heartbeats. The callback runs on the emitting thread;
  /// `min_interval_ms` rate-limits per-day ticks (final/forced events
  /// always pass). 0 disables throttling — tests use that. Completion
  /// events (days_done == days_total > 0) bypass the throttle implicitly,
  /// so the 100% line is emitted even when a short run finishes between
  /// throttle ticks and the caller forgot to force.
  void set_progress(std::function<void(const ProgressEvent&)> callback,
                    std::uint64_t min_interval_ms = 500);
  bool progress_enabled() const { return static_cast<bool>(on_progress_); }
  void emit_progress(const ProgressEvent& event, bool force = false);

  /// Monotonic progress sources the stall watchdog polls (streaming
  /// stages, channels, the worker pool).
  ProgressRegistry& progress_sources() { return progress_sources_; }
  const ProgressRegistry& progress_sources() const {
    return progress_sources_;
  }

  // ---- global installation ------------------------------------------
  static Observer* installed();
  /// Replaces the installed observer (nullptr uninstalls); returns the
  /// previous one. Not synchronised against in-flight readers: install
  /// before starting instrumented work.
  static Observer* install(Observer* observer);

 private:
  std::function<void(const ProgressEvent&)> on_progress_;
  ProgressRegistry progress_sources_;
  std::uint64_t progress_min_interval_ms_ = 500;
  // Atomic so concurrent emitters (parallel sweep shards) throttle safely;
  // the CAS in emit_progress picks one winner per interval.
  std::atomic<std::uint64_t> progress_last_ns_{0};
};

/// Tracer of the installed observer, or nullptr — the argument ScopedSpan
/// wants at call sites.
inline Tracer* installed_tracer() {
  Observer* o = Observer::installed();
  return o ? &o->tracer() : nullptr;
}

/// RAII install/uninstall, restoring whatever was installed before.
class ScopedInstall {
 public:
  explicit ScopedInstall(Observer& observer)
      : previous_(Observer::install(&observer)) {}
  ~ScopedInstall() { Observer::install(previous_); }
  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  Observer* previous_;
};

}  // namespace ddos::obs
