#include "obs/watchdog.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/trace.h"
#include "util/strings.h"

namespace ddos::obs {

StallWatchdog::StallWatchdog(Observer& observer, WatchdogOptions options)
    : observer_(observer), options_(std::move(options)) {}

StallWatchdog::~StallWatchdog() { stop(); }

void StallWatchdog::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  prev_span_tracking_ = active_span_tracking_enabled();
  set_active_span_tracking(true);
  thread_ = std::thread([this] { thread_main(); });
}

void StallWatchdog::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    const std::lock_guard<std::mutex> lock(wait_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  wait_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  set_active_span_tracking(prev_span_tracking_);
  running_.store(false, std::memory_order_relaxed);
}

void StallWatchdog::thread_main() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    wait_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                      [&] {
                        return stop_requested_.load(
                            std::memory_order_relaxed);
                      });
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    const std::uint64_t now = observer_.tracer().now_ns();
    bool stalled = false;
    {
      const std::lock_guard<std::mutex> state_lock(mu_);
      stalled = update_and_check(now);
    }
    if (stalled && !fired_.exchange(true)) {
      std::string report;
      {
        const std::lock_guard<std::mutex> state_lock(mu_);
        report = build_report(now, /*stalled=*/true);
      }
      handle_stall(report);
      return;  // one report per watchdog; the handler usually aborts
    }
    lock.lock();
  }
}

std::string StallWatchdog::check_now() {
  const std::uint64_t now = observer_.tracer().now_ns();
  const std::lock_guard<std::mutex> state_lock(mu_);
  if (!update_and_check(now)) return {};
  return build_report(now, /*stalled=*/true);
}

std::string StallWatchdog::diagnostic_report() const {
  const std::uint64_t now = observer_.tracer().now_ns();
  const std::lock_guard<std::mutex> state_lock(mu_);
  return build_report(now, /*stalled=*/false);
}

bool StallWatchdog::update_and_check(std::uint64_t now_ns) {
  const auto readings = observer_.progress_sources().read();
  // Rebuild the state map from the live sources so entries for
  // unregistered sources cannot keep the stall verdict alive.
  std::map<std::string, SourceState> next;
  bool any_fresh = false;
  const std::uint64_t timeout_ns =
      static_cast<std::uint64_t>(options_.timeout_s * 1e9);
  for (const auto& r : readings) {
    SourceState st;
    const auto prev = states_.find(r.name);
    if (prev == states_.end() || prev->second.count != r.count) {
      st.count = r.count;
      st.last_change_ns = now_ns;
    } else {
      st = prev->second;
    }
    if (now_ns - st.last_change_ns < timeout_ns) any_fresh = true;
    next.emplace(r.name, st);
  }
  states_ = std::move(next);
  return !states_.empty() && !any_fresh;
}

std::string StallWatchdog::build_report(std::uint64_t now_ns,
                                        bool stalled) const {
  std::ostringstream out;
  const auto idle_s = [&](const SourceState& st) {
    return static_cast<double>(now_ns - st.last_change_ns) / 1e9;
  };

  out << "==== ddosrepro stall watchdog ====\n";
  out << "t=" << util::format_fixed(static_cast<double>(now_ns) / 1e9, 3)
      << "s since run start\n";
  if (stalled) {
    out << "STALL: no progress source advanced within "
        << util::format_fixed(options_.timeout_s, 1) << " s\n";
    // Suspected stall = the source that has been idle the longest; in a
    // producer/consumer wedge the producer keeps ticking until the
    // channel fills, so the consumer accumulates strictly more idle time.
    const std::string* suspect = nullptr;
    double suspect_idle = -1.0;
    for (const auto& [name, st] : states_) {
      if (idle_s(st) > suspect_idle) {
        suspect_idle = idle_s(st);
        suspect = &name;
      }
    }
    if (suspect) {
      out << "suspected stall: " << *suspect << " (idle "
          << util::format_fixed(suspect_idle, 1) << " s)\n";
    }
  }

  out << "progress sources (" << states_.size() << "):\n";
  const auto readings = observer_.progress_sources().read();
  for (const auto& r : readings) {
    out << "  " << r.name << "  count=" << r.count;
    const auto st = states_.find(r.name);
    if (st != states_.end()) {
      out << "  idle=" << util::format_fixed(idle_s(st->second), 1) << "s";
    }
    if (!r.detail.empty()) out << "  " << r.detail;
    out << "\n";
  }

  const auto spans = active_spans();
  out << "active spans (" << spans.size() << " threads):\n";
  for (const auto& s : spans) {
    out << "  thread " << s.thread_id % 100000 << ": " << s.name << " ("
        << s.open_spans << " open)\n";
  }

  out << "metrics snapshot:\n" << observer_.metrics().snapshot().to_table();

  if (options_.sampler != nullptr) {
    constexpr std::size_t kTailPoints = 5;
    const auto tails = options_.sampler->series().snapshot_tails(kTailPoints);
    out << "telemetry tails (last " << kTailPoints << " points per series):\n";
    for (const auto& series : tails) {
      out << "  " << series.name << ":";
      for (const auto& p : series.points) {
        out << " " << util::format_fixed(p.value, 3);
      }
      out << "\n";
    }
  }
  out << "==== end stall report ====\n";
  return out.str();
}

void StallWatchdog::handle_stall(const std::string& report) {
  if (options_.on_stall) {
    options_.on_stall(report);
    return;
  }
  std::cerr << report << std::flush;
  if (!options_.crash_path.empty()) {
    std::ofstream crash(options_.crash_path, std::ios::trunc);
    crash << report;
  }
  std::abort();
}

}  // namespace ddos::obs
