// Phase-scoped tracing — the timing half of the observability layer.
//
// ScopedSpan is an RAII wall-clock timer: construction stamps the start,
// destruction records a completed TraceEvent into the owning Tracer. Spans
// nest naturally with scope; a thread-local depth counter records each
// span's nesting level so the run-report writer can pick out top-level
// stages, and Chrome's trace viewer reconstructs the hierarchy from the
// (ts, dur) containment of complete ("ph":"X") events.
//
// A null Tracer* makes every ScopedSpan operation a no-op (one branch), so
// uninstrumented runs pay nothing — the zero-cost-when-disabled contract
// bench_perf_pipeline holds the pipeline to.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ddos::obs {

/// One completed span. Times are nanoseconds on the steady clock, relative
/// to the Tracer's epoch (its construction) so traces start near t=0.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  std::uint32_t depth = 0;       // nesting level at open time (0 = root)
  std::uint64_t thread_id = 0;   // stable hash of std::thread::id
  std::uint64_t items = 0;       // optional work count (0 = unset)
  std::vector<std::pair<std::string, std::string>> args;  // extra key/values

  double items_per_sec() const {
    return duration_ns > 0 && items > 0
               ? static_cast<double>(items) * 1e9 /
                     static_cast<double>(duration_ns)
               : 0.0;
  }
};

/// Collects completed spans; thread-safe append, snapshot, and export as
/// Chrome trace_event JSON (load via chrome://tracing or Perfetto).
class Tracer {
 public:
  Tracer();

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;

  /// Nanoseconds on the steady clock since this tracer was constructed.
  std::uint64_t now_ns() const;

  /// {"traceEvents":[{"name":...,"ph":"X","ts":us,"dur":us,...},...]}
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// Set the calling thread's base span depth. Pool worker threads pin this
/// to 2 so their shard spans nest below the run- and stage-level spans of
/// the main thread (the run report only tabulates depth <= 1).
void set_thread_span_depth(std::uint32_t depth);

// ---- active-span tracking (stall diagnostics) -------------------------
//
// When enabled (the stall watchdog turns it on), every ScopedSpan also
// publishes its name into a per-thread slot that other threads can
// snapshot, answering "what is each worker doing right now?" during a
// hang. Disabled (the default) it costs one relaxed atomic load per span;
// enabled it adds a brief uncontended per-thread mutex on open/close.

/// Globally enable/disable active-span publication.
void set_active_span_tracking(bool enabled);
bool active_span_tracking_enabled();

struct ActiveSpanInfo {
  std::uint64_t thread_id = 0;  // stable hash, same domain as TraceEvent
  std::string name;             // innermost open span on that thread
  std::uint32_t open_spans = 0;  // depth of that thread's open-span stack
};

/// Innermost open span of every thread that has one. Threads whose spans
/// have all closed (or that never opened one while tracking was on) are
/// omitted.
std::vector<ActiveSpanInfo> active_spans();

/// RAII span. `tracer == nullptr` disables the span entirely.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Work items processed inside this span; exported as args.items and the
  /// basis of items/sec in the run report.
  void set_items(std::uint64_t n) { items_ = n; }
  void add_items(std::uint64_t n = 1) { items_ += n; }

  /// Attach an extra key/value to the emitted event (no-op when disabled).
  void arg(const std::string& key, const std::string& value);
  void arg(const std::string& key, std::int64_t value);

  bool enabled() const { return tracer_ != nullptr; }
  std::uint64_t elapsed_ns() const;

 private:
  Tracer* tracer_;
  std::string name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint64_t items_ = 0;
  bool published_ = false;  // pushed onto this thread's active-span stack
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace ddos::obs
