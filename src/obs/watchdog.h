// StallWatchdog — converts a hung pipeline into a diagnostic instead of a
// silent wedge.
//
// Stages, channels, and the worker pool register monotonic progress
// counters in the observer's ProgressRegistry. The watchdog polls them on
// a background thread; if NO source advances within --watchdog-timeout-s,
// it assembles a full diagnostic snapshot — every progress source with its
// idle time and detail line (queue depth / watermark), the per-thread
// active span, the metrics table, and the tails of the telemetry series
// when a sampler is attached — names the most-idle source as the
// suspected stall, and hands the report to on_stall. The default handler
// writes the report to stderr and a crash file, then aborts; tests
// override it to capture the report instead.
//
// While running, the watchdog enables active-span tracking (one relaxed
// atomic load + branch per span when off) so the report can say what each
// worker thread was doing at stall time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.h"
#include "obs/sampler.h"

namespace ddos::obs {

struct WatchdogOptions {
  /// A stall is declared when no progress source advances for this long.
  double timeout_s = 60.0;
  /// Poll cadence of the checker thread.
  std::uint64_t poll_ms = 1000;
  /// When non-empty, the default handler also writes the report here.
  std::string crash_path;
  /// Optional: include telemetry series tails in the report. Must outlive
  /// the watchdog when set.
  const TelemetrySampler* sampler = nullptr;
  /// Stall handler. Default: report to stderr (+ crash_path), std::abort().
  std::function<void(const std::string& report)> on_stall;
};

class StallWatchdog {
 public:
  /// The observer must outlive the watchdog.
  StallWatchdog(Observer& observer, WatchdogOptions options);
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Starts the checker thread and enables active-span tracking.
  void start();
  /// Stops the thread and restores span tracking. Idempotent.
  void stop();

  /// One synchronous poll on the calling thread: updates per-source idle
  /// state and returns the diagnostic report if the stall condition holds
  /// right now, empty string otherwise. Does NOT invoke on_stall.
  std::string check_now();

  /// The diagnostic snapshot as it would appear in a stall report,
  /// without the stall verdict line. Callable at any time.
  std::string diagnostic_report() const;

  /// True once on_stall has been invoked (at most once per watchdog).
  bool fired() const { return fired_.load(std::memory_order_relaxed); }

  const WatchdogOptions& options() const { return options_; }

 private:
  struct SourceState {
    std::uint64_t count = 0;
    std::uint64_t last_change_ns = 0;
  };

  void thread_main();
  /// Under mu_: refresh source states; returns true when every source has
  /// been idle >= timeout (and at least one source exists).
  bool update_and_check(std::uint64_t now_ns);
  std::string build_report(std::uint64_t now_ns, bool stalled) const;
  void handle_stall(const std::string& report);

  Observer& observer_;
  WatchdogOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, SourceState> states_;
  std::thread thread_;
  // stop() notifies so the checker never sleeps out a full poll interval
  // after the run has already finished.
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> fired_{false};
  bool prev_span_tracking_ = false;
};

}  // namespace ddos::obs
