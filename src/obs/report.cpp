#include "obs/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ddos::obs {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_section(std::ostream& out, const char* name,
                   const std::vector<std::pair<std::string, std::string>>& kv) {
  out << "\"" << name << "\":{";
  bool first = true;
  for (const auto& [key, value] : kv) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":" << value;
  }
  out << "}";
}

}  // namespace

void RunReport::add_config(const std::string& key, const std::string& value) {
  config_.emplace_back(key, "\"" + json_escape(value) + "\"");
}
void RunReport::add_config(const std::string& key, std::int64_t value) {
  config_.emplace_back(key, std::to_string(value));
}
void RunReport::add_config(const std::string& key, double value) {
  config_.emplace_back(key, json_number(value));
}
void RunReport::add_result(const std::string& key, const std::string& value) {
  results_.emplace_back(key, "\"" + json_escape(value) + "\"");
}
void RunReport::add_result(const std::string& key, std::int64_t value) {
  results_.emplace_back(key, std::to_string(value));
}
void RunReport::add_result(const std::string& key, double value) {
  results_.emplace_back(key, json_number(value));
}

void RunReport::write(std::ostream& out, const Observer& observer,
                      std::uint32_t max_stage_depth) const {
  out << "{\"tool\":\"ddosrepro\",\"command\":\"" << json_escape(command_)
      << "\",";
  write_section(out, "config", config_);
  out << ",";
  write_section(out, "results", results_);

  out << ",\"stages\":[";
  bool first = true;
  for (const auto& ev : observer.tracer().events()) {
    if (ev.depth > max_stage_depth) continue;
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(ev.name)
        << "\",\"depth\":" << ev.depth << ",\"wall_ns\":" << ev.duration_ns;
    if (ev.items > 0) {
      out << ",\"items\":" << ev.items
          << ",\"items_per_sec\":" << json_number(ev.items_per_sec());
    }
    out << "}";
  }
  out << "]";

  out << ",\"metrics\":" << observer.metrics().snapshot().to_json() << "}";
}

std::string RunReport::to_json(const Observer& observer,
                               std::uint32_t max_stage_depth) const {
  std::ostringstream out;
  write(out, observer, max_stage_depth);
  return out.str();
}

}  // namespace ddos::obs
