// Self-contained HTML run dashboard (--dashboard-out).
//
// One file, no external assets: inline CSS (light + dark via CSS custom
// properties and prefers-color-scheme) and inline SVG. Sections:
//
//   * run header — title plus caller-supplied meta rows (config, wall
//     time, sample/series counts, ring memory bound);
//   * stage timeline — horizontal bars for the top-level trace spans
//     (depth <= 1), on a shared run-relative time axis;
//   * telemetry sparklines — one card per sampled series with the last
//     value as the headline number and a 2px line chart of the ring.
//
// Native SVG <title> tooltips carry the point-level values, so the file
// stays inspectable without any scripting.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "obs/sampler.h"

namespace ddos::obs {

struct DashboardOptions {
  std::string title = "ddosrepro run";
  /// Extra key/value rows for the run header (config echo, totals).
  std::vector<std::pair<std::string, std::string>> meta;
  /// Per-series point cap; longer rings are stride-downsampled.
  std::size_t max_points_per_series = 600;
  /// Timeline keeps the longest N spans of depth <= 1.
  std::size_t max_timeline_rows = 48;
};

/// Renders the dashboard for an observer (timeline + metrics) and an
/// optional sampler (sparkline series; pass nullptr for timeline-only).
std::string render_dashboard_html(const Observer& observer,
                                  const TelemetrySampler* sampler,
                                  const DashboardOptions& options = {});

void write_dashboard_html(std::ostream& out, const Observer& observer,
                          const TelemetrySampler* sampler,
                          const DashboardOptions& options = {});

/// Convenience: render to a file; returns false when the file cannot be
/// opened for writing.
bool write_dashboard_html_file(const std::string& path,
                               const Observer& observer,
                               const TelemetrySampler* sampler,
                               const DashboardOptions& options = {});

}  // namespace ddos::obs
