#include "obs/export_html.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/timeseries.h"
#include "obs/trace.h"

namespace ddos::obs {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Compact human number for headline values: 12, 3.4k, 1.2M, 0.003.
std::string human_number(double v) {
  const double a = std::abs(v);
  char buf[64];
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (a >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%dm%02.0fs", static_cast<int>(s / 60.0),
                  std::fmod(s, 60.0));
  } else if (s >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", s);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fms", s * 1e3);
  }
  return buf;
}

std::string fmt_coord(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Palette + layout. Text always wears ink tokens; only marks wear the
// series color. Dark mode re-derives from the same tokens via
// prefers-color-scheme and an explicit data-theme override.
constexpr const char* kStyle = R"css(
:root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --series: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --series: #3987e5;
  }
}
[data-theme="dark"] {
  --surface: #1a1a19;
  --ink: #ffffff;
  --ink-2: #c3c2b7;
  --muted: #898781;
  --grid: #2c2c2a;
  --series: #3987e5;
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--surface);
  color: var(--ink);
  font: 14px/1.45 ui-sans-serif, system-ui, sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink); }
.sub { color: var(--ink-2); margin: 0 0 16px; }
table.meta { border-collapse: collapse; margin: 0 0 8px; }
table.meta td { padding: 2px 16px 2px 0; }
table.meta td:first-child { color: var(--ink-2); }
.grid {
  display: grid;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
  gap: 12px;
}
.card {
  border: 1px solid var(--grid);
  border-radius: 8px;
  padding: 10px 12px 6px;
}
.card .name {
  color: var(--ink-2);
  font-size: 12px;
  overflow-wrap: anywhere;
}
.card .value { font-size: 20px; font-weight: 600; margin: 2px 0 4px; }
.card .range { color: var(--muted); font-size: 11px; }
svg text { fill: var(--ink-2); font: 11px ui-sans-serif, system-ui, sans-serif; }
svg .bar { fill: var(--series); }
svg .line { stroke: var(--series); stroke-width: 2; fill: none; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
)css";

struct SparkCard {
  std::string name;
  std::string kind;
  std::vector<SeriesPoint> points;
};

void render_sparkline(std::ostream& out, const SparkCard& card,
                      std::uint64_t t_min, std::uint64_t t_max) {
  constexpr double kW = 280, kH = 56, kPad = 3;
  double v_min = 0, v_max = 0;
  for (std::size_t i = 0; i < card.points.size(); ++i) {
    v_min = i == 0 ? card.points[i].value : std::min(v_min, card.points[i].value);
    v_max = i == 0 ? card.points[i].value : std::max(v_max, card.points[i].value);
  }
  if (v_max == v_min) v_max = v_min + 1.0;  // flat series: centered line
  const double t_span =
      t_max > t_min ? static_cast<double>(t_max - t_min) : 1.0;

  const double last = card.points.empty() ? 0.0 : card.points.back().value;
  out << "<div class=\"card\"><div class=\"name\">" << html_escape(card.name)
      << " <span class=\"range\">(" << card.kind
      << ")</span></div><div class=\"value\">" << human_number(last)
      << "</div>\n";
  out << "<svg viewBox=\"0 0 " << kW << " " << kH
      << "\" width=\"100%\" height=\"56\" role=\"img\" aria-label=\""
      << html_escape(card.name) << "\">";
  // Hairline baseline at the series minimum.
  out << "<line class=\"gridline\" x1=\"0\" y1=\"" << fmt_coord(kH - kPad)
      << "\" x2=\"" << kW << "\" y2=\"" << fmt_coord(kH - kPad) << "\"/>";
  out << "<polyline class=\"line\" points=\"";
  for (const auto& p : card.points) {
    const double x =
        kPad + (kW - 2 * kPad) *
                   (static_cast<double>(p.t_ns - t_min) / t_span);
    const double y =
        kPad + (kH - 2 * kPad) * (1.0 - (p.value - v_min) / (v_max - v_min));
    out << fmt_coord(x) << "," << fmt_coord(y) << " ";
  }
  out << "\"><title>" << html_escape(card.name) << ": last "
      << human_number(last) << ", min " << human_number(v_min) << ", max "
      << human_number(v_max) << "</title></polyline></svg>\n";
  out << "<div class=\"range\">min " << human_number(v_min) << " · max "
      << human_number(v_max) << " · " << card.points.size()
      << " pts</div></div>\n";
}

void render_timeline(std::ostream& out, const std::vector<TraceEvent>& events,
                     std::size_t max_rows) {
  // Top-level stages only; keep the longest spans, draw in start order.
  std::vector<const TraceEvent*> spans;
  for (const auto& ev : events) {
    if (ev.depth <= 1 && ev.duration_ns > 0) spans.push_back(&ev);
  }
  if (spans.empty()) {
    out << "<p class=\"sub\">no trace spans recorded</p>\n";
    return;
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->duration_ns > b->duration_ns;
                   });
  if (spans.size() > max_rows) spans.resize(max_rows);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->start_ns < b->start_ns;
                   });

  std::uint64_t t0 = spans[0]->start_ns, t1 = 0;
  for (const auto* s : spans) {
    t0 = std::min(t0, s->start_ns);
    t1 = std::max(t1, s->start_ns + s->duration_ns);
  }
  const double span_ns = static_cast<double>(std::max<std::uint64_t>(
      1, t1 - t0));

  constexpr double kW = 920, kLabelW = 240, kRowH = 26, kBarH = 18;
  const double h = kRowH * static_cast<double>(spans.size()) + 20;
  out << "<svg viewBox=\"0 0 " << kW << " " << h
      << "\" width=\"100%\" role=\"img\" aria-label=\"stage timeline\">\n";
  // Quarter gridlines across the plot area.
  for (int g = 0; g <= 4; ++g) {
    const double x = kLabelW + (kW - kLabelW - 8) * g / 4.0;
    out << "<line class=\"gridline\" x1=\"" << fmt_coord(x) << "\" y1=\"0\" x2=\""
        << fmt_coord(x) << "\" y2=\"" << fmt_coord(h - 16) << "\"/>";
    out << "<text x=\"" << fmt_coord(x + 2) << "\" y=\"" << fmt_coord(h - 4)
        << "\">" << fmt_seconds(static_cast<double>(t0) / 1e9 +
                                span_ns / 1e9 * g / 4.0)
        << "</text>";
  }
  out << "\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceEvent& ev = *spans[i];
    const double y = kRowH * static_cast<double>(i);
    const double x =
        kLabelW +
        (kW - kLabelW - 8) * (static_cast<double>(ev.start_ns - t0) / span_ns);
    const double w = std::max(
        2.0, (kW - kLabelW - 8) *
                 (static_cast<double>(ev.duration_ns) / span_ns));
    out << "<text x=\"0\" y=\"" << fmt_coord(y + kBarH - 4) << "\">"
        << html_escape(ev.name) << "</text>";
    out << "<rect class=\"bar\" x=\"" << fmt_coord(x) << "\" y=\""
        << fmt_coord(y + (kRowH - kBarH) / 2 - 2) << "\" width=\""
        << fmt_coord(w) << "\" height=\"" << kBarH << "\" rx=\"4\"><title>"
        << html_escape(ev.name) << ": "
        << fmt_seconds(static_cast<double>(ev.duration_ns) / 1e9)
        << " (start " << fmt_seconds(static_cast<double>(ev.start_ns) / 1e9)
        << (ev.items > 0 ? ", items " + std::to_string(ev.items) : "")
        << ")</title></rect>\n";
  }
  out << "</svg>\n";
}

}  // namespace

void write_dashboard_html(std::ostream& out, const Observer& observer,
                          const TelemetrySampler* sampler,
                          const DashboardOptions& options) {
  out << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>" << html_escape(options.title) << "</title>\n"
      << "<style>" << kStyle << "</style>\n</head>\n<body>\n";

  out << "<h1>" << html_escape(options.title) << "</h1>\n";
  out << "<p class=\"sub\">time-resolved run dashboard · generated by "
         "ddosrepro</p>\n";

  // ---- run meta -------------------------------------------------------
  out << "<table class=\"meta\">\n";
  for (const auto& [k, v] : options.meta) {
    out << "<tr><td>" << html_escape(k) << "</td><td>" << html_escape(v)
        << "</td></tr>\n";
  }
  if (sampler != nullptr) {
    out << "<tr><td>samples</td><td>" << sampler->samples_taken()
        << "</td></tr>\n"
        << "<tr><td>series</td><td>" << sampler->series().series_count()
        << "</td></tr>\n"
        << "<tr><td>ring memory bound</td><td>"
        << human_number(
               static_cast<double>(sampler->series().memory_bound_bytes()))
        << "B</td></tr>\n";
  }
  out << "</table>\n";

  // ---- stage timeline -------------------------------------------------
  out << "<h2>Stage timeline</h2>\n";
  render_timeline(out, observer.tracer().events(), options.max_timeline_rows);

  // ---- telemetry sparklines ------------------------------------------
  if (sampler != nullptr) {
    const auto series = sampler->series().snapshot();
    std::uint64_t t_min = 0, t_max = 0;
    bool have_t = false;
    for (const auto& s : series) {
      for (const auto& p : s.points) {
        t_min = have_t ? std::min(t_min, p.t_ns) : p.t_ns;
        t_max = have_t ? std::max(t_max, p.t_ns) : p.t_ns;
        have_t = true;
      }
    }
    out << "<h2>Telemetry (" << series.size() << " series, "
        << (sampler->options().interval_ms) << " ms cadence)</h2>\n";
    out << "<div class=\"grid\">\n";
    for (const auto& s : series) {
      SparkCard card;
      card.name = s.name;
      card.kind = s.kind == SeriesKind::Rate ? "rate/s" : "level";
      card.points = s.points;
      // Stride-downsample long rings, always keeping the last point.
      if (card.points.size() > options.max_points_per_series &&
          options.max_points_per_series >= 2) {
        std::vector<SeriesPoint> kept;
        const std::size_t stride =
            (card.points.size() + options.max_points_per_series - 1) /
            options.max_points_per_series;
        for (std::size_t i = 0; i < card.points.size(); i += stride) {
          kept.push_back(card.points[i]);
        }
        if (kept.back().t_ns != card.points.back().t_ns) {
          kept.push_back(card.points.back());
        }
        card.points = std::move(kept);
      }
      if (card.points.empty()) continue;
      render_sparkline(out, card, t_min, t_max);
    }
    out << "</div>\n";
  } else {
    out << "<h2>Telemetry</h2>\n<p class=\"sub\">no sampler attached (run "
           "with --telemetry-out or --dashboard-out to enable)</p>\n";
  }

  out << "</body>\n</html>\n";
}

std::string render_dashboard_html(const Observer& observer,
                                  const TelemetrySampler* sampler,
                                  const DashboardOptions& options) {
  std::ostringstream out;
  write_dashboard_html(out, observer, sampler, options);
  return out.str();
}

bool write_dashboard_html_file(const std::string& path,
                               const Observer& observer,
                               const TelemetrySampler* sampler,
                               const DashboardOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_dashboard_html(out, observer, sampler, options);
  return out.good();
}

}  // namespace ddos::obs
