// Metrics registry — the counting half of the observability layer.
//
// Counters and gauges are single atomics (lock-free, relaxed ordering):
// pipeline hot paths such as the resolver touch them once per query, so a
// contended mutex would show up in bench_perf_pipeline immediately.
// Histogram metrics wrap util::LogHistogram behind a small set of
// thread-striped shards that are merged at snapshot time with
// util::LogHistogram::merge(), keeping the per-observation cost to one
// (almost always uncontended) mutex.
//
// Metrics are registered by (name, labels) in a MetricsRegistry; a snapshot
// can be taken at any point — mid-run included — and rendered as JSON (for
// the run report) or as a human table (util::TextTable).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace ddos::obs {

/// Monotonic event count. Lock-free; relaxed ordering (totals are exact,
/// cross-metric ordering is not promised).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value (days swept, store size, ...).
class Gauge {
 public:
  void set(double x) { v_.store(x, std::memory_order_relaxed); }
  void add(double x) { v_.fetch_add(x, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Thread-safe log-binned distribution (RTTs, impact factors). Writers are
/// striped over a fixed shard set by thread id; snapshot() merges shards.
class HistogramMetric {
 public:
  HistogramMetric(double base, double decades_per_bin, std::size_t bins,
                  std::size_t shard_count = 8);

  void observe(double x, std::uint64_t weight = 1);

  /// Merged view of all shards at this instant.
  util::LogHistogram snapshot() const;
  std::uint64_t total() const { return snapshot().total(); }

 private:
  struct Shard {
    mutable std::mutex mu;
    util::LogHistogram hist;
    explicit Shard(const util::LogHistogram& proto) : hist(proto) {}
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

using MetricLabels = std::map<std::string, std::string>;

enum class MetricKind { Counter, Gauge, Histogram };

/// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;           // counter/gauge value; histogram total
  struct Bin {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bin> bins;        // histogram only; empty bins elided
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, labels)

  /// JSON array of {"name","labels","kind","value"[,"bins"]} objects.
  std::string to_json() const;
  /// Human-readable table via util::TextTable.
  std::string to_table() const;
  /// OpenMetrics/Prometheus text exposition: dotted names flattened to
  /// underscores, counters suffixed `_total`, histograms rendered as
  /// cumulative `_bucket{le=...}` plus `_count`/`_sum` (the sum is
  /// approximated from bin geometric midpoints — the log histogram keeps
  /// no exact sum), terminated by `# EOF`.
  std::string to_openmetrics() const;
  /// First sample with this name (ignoring labels), nullptr if absent.
  const MetricSample* find(const std::string& name) const;
};

/// Owns metrics; hands out stable references. Registration takes a mutex,
/// subsequent updates through the returned reference are registry-free, so
/// the intended pattern is: resolve handles once at setup, update them on
/// the hot path. Re-registering the same (name, labels) returns the
/// existing instance; a kind clash throws std::invalid_argument.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, MetricLabels labels = {});
  Gauge& gauge(const std::string& name, MetricLabels labels = {});
  /// Histogram shape params are fixed on first registration.
  HistogramMetric& histogram(const std::string& name, double base,
                             double decades_per_bin, std::size_t bins,
                             MetricLabels labels = {});

  MetricsSnapshot snapshot() const;
  std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };
  using Key = std::pair<std::string, MetricLabels>;

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars) shared
/// by the snapshot/trace/report emitters.
std::string json_escape(const std::string& s);

}  // namespace ddos::obs
