#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/strings.h"
#include "util/table.h"

namespace ddos::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

std::string format_labels(const MetricLabels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  out += "}";
  return out;
}

// Shortest round-trippable-enough representation: integers print without a
// decimal point so counter JSON stays integral.
std::string format_number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------- histogram

HistogramMetric::HistogramMetric(double base, double decades_per_bin,
                                 std::size_t bins, std::size_t shard_count) {
  const util::LogHistogram proto(base, decades_per_bin, bins);
  shards_.reserve(std::max<std::size_t>(1, shard_count));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shard_count); ++i) {
    shards_.push_back(std::make_unique<Shard>(proto));
  }
}

void HistogramMetric::observe(double x, std::uint64_t weight) {
  const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      shards_.size();
  Shard& shard = *shards_[idx];
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.hist.add(x, weight);
}

util::LogHistogram HistogramMetric::snapshot() const {
  util::LogHistogram merged = [&] {
    const std::lock_guard<std::mutex> lock(shards_[0]->mu);
    return shards_[0]->hist;
  }();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i]->mu);
    merged.merge(shards_[i]->hist);
  }
  return merged;
}

// ----------------------------------------------------------------- registry

Counter& MetricsRegistry::counter(const std::string& name,
                                  MetricLabels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[Key{name, std::move(labels)}];
  if (!e.counter) {
    if (e.gauge || e.histogram) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    }
    e.kind = MetricKind::Counter;
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, MetricLabels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[Key{name, std::move(labels)}];
  if (!e.gauge) {
    if (e.counter || e.histogram) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    }
    e.kind = MetricKind::Gauge;
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            double base,
                                            double decades_per_bin,
                                            std::size_t bins,
                                            MetricLabels labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[Key{name, std::move(labels)}];
  if (!e.histogram) {
    if (e.counter || e.gauge) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    }
    e.kind = MetricKind::Histogram;
    e.histogram =
        std::make_unique<HistogramMetric>(base, decades_per_bin, bins);
  }
  return *e.histogram;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::Counter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricKind::Gauge:
        s.value = entry.gauge->value();
        break;
      case MetricKind::Histogram: {
        const util::LogHistogram h = entry.histogram->snapshot();
        s.value = static_cast<double>(h.total());
        for (std::size_t i = 0; i < h.bin_count(); ++i) {
          if (h.bin(i) == 0) continue;
          s.bins.push_back(
              MetricSample::Bin{h.bin_lo(i), h.bin_hi(i), h.bin(i)});
        }
        break;
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

// ----------------------------------------------------------------- snapshot

const MetricSample* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(s.name) << "\",\"kind\":\""
        << kind_name(s.kind) << "\"";
    if (!s.labels.empty()) {
      out << ",\"labels\":{";
      bool lfirst = true;
      for (const auto& [k, v] : s.labels) {
        if (!lfirst) out << ",";
        lfirst = false;
        out << "\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
      }
      out << "}";
    }
    out << ",\"value\":" << format_number(s.value);
    if (s.kind == MetricKind::Histogram) {
      out << ",\"bins\":[";
      bool bfirst = true;
      for (const auto& b : s.bins) {
        if (!bfirst) out << ",";
        bfirst = false;
        out << "{\"lo\":" << format_number(b.lo)
            << ",\"hi\":" << format_number(b.hi) << ",\"count\":" << b.count
            << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

namespace {

// OpenMetrics names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted metric paths
// flatten to underscores ("resolver.queries" -> "resolver_queries").
std::string openmetrics_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

std::string openmetrics_labels(const MetricLabels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += openmetrics_name(k) + "=\"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string MetricsSnapshot::to_openmetrics() const {
  std::ostringstream out;
  // One TYPE line per metric family; (name, labels) variants of the same
  // family arrive adjacent because samples are sorted by name first.
  std::string last_family;
  for (const auto& s : samples) {
    const std::string family = openmetrics_name(s.name);
    if (family != last_family) {
      last_family = family;
      out << "# TYPE " << family << " " << kind_name(s.kind) << "\n";
    }
    const std::string labels = openmetrics_labels(s.labels);
    switch (s.kind) {
      case MetricKind::Counter:
        out << family << "_total" << labels << " " << format_number(s.value)
            << "\n";
        break;
      case MetricKind::Gauge:
        out << family << labels << " " << format_number(s.value) << "\n";
        break;
      case MetricKind::Histogram: {
        // Cumulative le-buckets over the non-empty bins; the +Inf bucket
        // equals _count by construction. Bucket lines carry the series'
        // own labels plus le, so labelled variants of one family (e.g.
        // per-query-type latency) stay distinct cumulative sequences.
        const std::string bucket_open =
            labels.empty()
                ? std::string("{le=\"")
                : labels.substr(0, labels.size() - 1) + ",le=\"";
        std::uint64_t cumulative = 0;
        double approx_sum = 0.0;
        for (const auto& b : s.bins) {
          cumulative += b.count;
          approx_sum += std::sqrt(b.lo * b.hi) * static_cast<double>(b.count);
          out << family << "_bucket" << bucket_open << format_number(b.hi)
              << "\"} " << cumulative << "\n";
        }
        out << family << "_bucket" << bucket_open << "+Inf\"} " << cumulative
            << "\n";
        out << family << "_count" << labels << " " << cumulative << "\n";
        out << family << "_sum" << labels << " " << format_number(approx_sum)
            << "\n";
        break;
      }
    }
  }
  out << "# EOF\n";
  return out.str();
}

std::string MetricsSnapshot::to_table() const {
  util::TextTable table({"metric", "kind", "value"});
  for (const auto& s : samples) {
    std::string value;
    if (s.kind == MetricKind::Gauge) {
      value = util::format_fixed(s.value, 3);
    } else {
      value = util::with_commas(static_cast<std::uint64_t>(s.value));
    }
    table.add_row({s.name + format_labels(s.labels), kind_name(s.kind),
                   std::move(value)});
  }
  return table.to_string();
}

}  // namespace ddos::obs
