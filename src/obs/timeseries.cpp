#include "obs/timeseries.h"

#include <algorithm>
#include <limits>

namespace ddos::obs {

TimeSeries::TimeSeries(std::size_t capacity, SeriesKind kind)
    : kind_(kind), points_(std::max<std::size_t>(2, capacity)) {}

void TimeSeries::push(std::uint64_t t_ns, double value) {
  points_[head_] = SeriesPoint{t_ns, value};
  head_ = (head_ + 1) % points_.size();
  if (size_ < points_.size()) ++size_;
  ++pushed_;
}

SeriesPoint TimeSeries::at(std::size_t i) const {
  // Oldest retained point sits at head_ once the ring has wrapped, at 0
  // before that.
  const std::size_t start = size_ == points_.size() ? head_ : 0;
  return points_[(start + i) % points_.size()];
}

std::vector<SeriesPoint> TimeSeries::points() const { return tail(size_); }

std::vector<SeriesPoint> TimeSeries::tail(std::size_t n) const {
  const std::size_t count = std::min(n, size_);
  std::vector<SeriesPoint> out;
  out.reserve(count);
  for (std::size_t i = size_ - count; i < size_; ++i) out.push_back(at(i));
  return out;
}

double TimeSeries::min_value() const {
  double v = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size_; ++i) v = std::min(v, at(i).value);
  return size_ > 0 ? v : 0.0;
}

double TimeSeries::max_value() const {
  double v = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size_; ++i) v = std::max(v, at(i).value);
  return size_ > 0 ? v : 0.0;
}

TimeSeriesSet::TimeSeriesSet(std::size_t capacity_per_series)
    : capacity_(std::max<std::size_t>(2, capacity_per_series)) {}

void TimeSeriesSet::push(const std::string& name, SeriesKind kind,
                         std::uint64_t t_ns, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<TimeSeries>(capacity_, kind);
  slot->push(t_ns, value);
}

std::size_t TimeSeriesSet::series_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::size_t TimeSeriesSet::memory_bound_bytes() const {
  return series_count() * capacity_ * sizeof(SeriesPoint);
}

std::vector<TimeSeriesSet::NamedSeries> TimeSeriesSet::snapshot() const {
  return snapshot_tails(std::numeric_limits<std::size_t>::max());
}

std::vector<TimeSeriesSet::NamedSeries> TimeSeriesSet::snapshot_tails(
    std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamedSeries> out;
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    NamedSeries s;
    s.name = name;
    s.kind = series->kind();
    s.points = series->tail(n);
    s.total_pushed = series->total_pushed();
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

}  // namespace ddos::obs
