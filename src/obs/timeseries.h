// Fixed-capacity time series — the storage half of the time-resolved
// telemetry layer (the sampler in sampler.h is the producer).
//
// A TimeSeries is a ring buffer of (t_ns, value) points: pushes past
// capacity overwrite the oldest point, so a long run keeps a bounded,
// most-recent window of every metric instead of growing without limit.
// Memory is exactly series x capacity x 16 bytes (one std::uint64_t
// timestamp + one double per point) plus a small fixed header per series.
//
// A TimeSeriesSet owns many named series behind one mutex. The sampler
// thread pushes while exporters (JSONL tail, dashboard, watchdog dump)
// snapshot concurrently; at the 250 ms default cadence the lock is
// uncontended noise, so there is no lock-free cleverness here on purpose.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ddos::obs {

/// How a series' values should be read (and rendered): Level series are
/// instantaneous values (gauges, counter levels, RSS); Rate series are
/// per-second derivatives the sampler computes on the fly from counter
/// deltas.
enum class SeriesKind { Level, Rate };

struct SeriesPoint {
  std::uint64_t t_ns = 0;  // sampler-epoch-relative steady-clock time
  double value = 0.0;
};

/// Single-writer ring buffer of SeriesPoints. Not internally synchronised;
/// TimeSeriesSet serialises access for the sampler/exporter pair.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity, SeriesKind kind = SeriesKind::Level);

  void push(std::uint64_t t_ns, double value);

  SeriesKind kind() const { return kind_; }
  std::size_t capacity() const { return points_.size(); }
  /// Points currently held (== pushes until the ring wraps).
  std::size_t size() const { return size_; }
  /// Total pushes ever, including overwritten ones.
  std::uint64_t total_pushed() const { return pushed_; }

  /// i-th retained point, 0 = oldest retained .. size()-1 = newest.
  SeriesPoint at(std::size_t i) const;
  SeriesPoint back() const { return at(size_ - 1); }

  /// Oldest-to-newest copy of the retained window.
  std::vector<SeriesPoint> points() const;
  /// The newest min(n, size()) points, oldest first (watchdog dumps).
  std::vector<SeriesPoint> tail(std::size_t n) const;

  double min_value() const;
  double max_value() const;

 private:
  SeriesKind kind_;
  std::vector<SeriesPoint> points_;  // ring storage, fixed at capacity
  std::size_t head_ = 0;             // next write slot
  std::size_t size_ = 0;
  std::uint64_t pushed_ = 0;
};

/// Named collection of series; thread-safe. Series are created on first
/// touch with the set's fixed per-series capacity and live until the set
/// dies, so exporters never see a series disappear mid-run.
class TimeSeriesSet {
 public:
  explicit TimeSeriesSet(std::size_t capacity_per_series = 4096);

  /// Append a point, creating the series if needed.
  void push(const std::string& name, SeriesKind kind, std::uint64_t t_ns,
            double value);

  std::size_t series_count() const;
  std::size_t capacity_per_series() const { return capacity_; }
  /// Bound documented in DESIGN.md: series x capacity x 16 bytes.
  std::size_t memory_bound_bytes() const;

  struct NamedSeries {
    std::string name;
    SeriesKind kind = SeriesKind::Level;
    std::vector<SeriesPoint> points;  // oldest first
    std::uint64_t total_pushed = 0;
  };
  /// Deep copy of every series, sorted by name — the exporter input.
  std::vector<NamedSeries> snapshot() const;
  /// Deep copy of the newest n points of every series (watchdog dumps).
  std::vector<NamedSeries> snapshot_tails(std::size_t n) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // unique_ptr keeps series addresses stable across map rebalancing; the
  // map itself is only touched under mu_.
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace ddos::obs
