#include "obs/obs.h"

#include <atomic>

namespace ddos::obs {

namespace {
std::atomic<Observer*> g_installed{nullptr};
}  // namespace

PipelineMetrics::PipelineMetrics(MetricsRegistry& r)
    : resolver_queries(r.counter("resolver.queries")),
      resolver_attempts(r.counter("resolver.attempts")),
      resolver_ok(r.counter("resolver.ok")),
      resolver_servfail(r.counter("resolver.servfail")),
      resolver_timeout(r.counter("resolver.timeout")),
      server_queries(r.counter("server.queries")),
      server_answered(r.counter("server.answered")),
      server_servfail(r.counter("server.servfail")),
      server_dropped(r.counter("server.dropped")),
      cache_hits(r.counter("cache.hits")),
      cache_misses(r.counter("cache.misses")),
      sweep_measurements(r.counter("sweep.measurements")),
      sweep_ok(r.counter("sweep.ok")),
      sweep_servfail(r.counter("sweep.servfail")),
      sweep_timeout(r.counter("sweep.timeout")),
      // 1ms lower edge, order-of-magnitude steps: resolver RTTs span
      // ~10ms (healthy) to 4500ms (3 timed-out attempts).
      sweep_rtt_ms(r.histogram("sweep.rtt_ms", 1.0, 0.5, 16)),
      feed_windows_observed(r.counter("feed.windows_observed")),
      feed_records(r.counter("feed.records")),
      join_events_in(r.counter("join.events_in")),
      join_events_out(r.counter("join.events_out")),
      join_open_resolver_filtered(r.counter("join.open_resolver_filtered")),
      join_non_dns(r.counter("join.non_dns")),
      join_not_seen_day_before(r.counter("join.not_seen_day_before")),
      join_below_floor(r.counter("join.below_measurement_floor")),
      run_days_swept(r.gauge("run.days_swept")),
      run_domains_planned(r.gauge("run.domains_planned")),
      run_store_measurements(r.gauge("run.store_measurements")),
      store_bytes_written(r.gauge("store.bytes_written")),
      store_bytes_read(r.gauge("store.bytes_read")),
      store_read_MBps(r.gauge("store.read_MBps")),
      store_blocks_mapped(r.counter("store.blocks_mapped")),
      store_crc_lazy_checks(r.counter("store.crc_lazy_checks")),
      merge_shards(r.gauge("merge.shards")),
      merge_rows(r.counter("merge.rows")),
      merge_bytes_read(r.gauge("merge.bytes_read")),
      merge_bytes_written(r.gauge("merge.bytes_written")),
      merge_MBps(r.gauge("merge.MBps")),
      stream_plan_queue_depth(r.gauge("stream.plan_queue_depth")),
      stream_sweep_queue_depth(r.gauge("stream.sweep_queue_depth")),
      stream_retired_days(r.gauge("stream.retired_days")),
      stream_watermark_day(r.gauge("stream.watermark_day")) {}

Observer::Observer() : pipeline(metrics_) {}

void Observer::set_progress(std::function<void(const ProgressEvent&)> callback,
                            std::uint64_t min_interval_ms) {
  on_progress_ = std::move(callback);
  progress_min_interval_ms_ = min_interval_ms;
  progress_last_ns_.store(0, std::memory_order_relaxed);
}

std::uint64_t ProgressRegistry::add(std::string name, CountFn count,
                                    DetailFn detail) {
  const std::lock_guard<std::mutex> lock(mu_);
  Source s;
  s.id = next_id_++;
  s.name = std::move(name);
  s.count = std::move(count);
  s.detail = std::move(detail);
  sources_.push_back(std::move(s));
  return sources_.back().id;
}

void ProgressRegistry::remove(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->id == id) {
      sources_.erase(it);
      return;
    }
  }
}

std::vector<ProgressRegistry::Reading> ProgressRegistry::read() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Reading> out;
  out.reserve(sources_.size());
  for (const Source& s : sources_) {
    Reading r;
    r.name = s.name;
    r.count = s.count ? s.count() : 0;
    if (s.detail) r.detail = s.detail();
    out.push_back(std::move(r));
  }
  return out;
}

std::size_t ProgressRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sources_.size();
}

void Observer::emit_progress(const ProgressEvent& event, bool force) {
  if (!on_progress_) return;
  // A completion event is never throttled: a short run can finish inside
  // one throttle interval, and dropping the 100% line would leave the
  // last printed heartbeat at a stale percentage.
  if (event.days_total > 0 && event.days_done == event.days_total) {
    force = true;
  }
  const std::uint64_t now = tracer_.now_ns();
  if (!force && progress_min_interval_ms_ > 0) {
    // Single atomic throttle slot: concurrent callers race on the CAS and
    // exactly one emitter wins each interval, the rest drop their tick.
    std::uint64_t last = progress_last_ns_.load(std::memory_order_relaxed);
    const std::uint64_t interval_ns = progress_min_interval_ms_ * 1'000'000ull;
    if (last > 0 && now - last < interval_ns) return;
    if (!progress_last_ns_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      return;
    }
  } else {
    progress_last_ns_.store(now, std::memory_order_relaxed);
  }
  on_progress_(event);
}

Observer* Observer::installed() {
  return g_installed.load(std::memory_order_relaxed);
}

Observer* Observer::install(Observer* observer) {
  return g_installed.exchange(observer, std::memory_order_acq_rel);
}

}  // namespace ddos::obs
