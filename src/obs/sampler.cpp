#include "obs/sampler.h"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ddos::obs {

namespace {

// "name" or "name{k=v,...}" — the series key for a labelled metric, so
// per-worker exec gauges get one ring each.
std::string series_key(const MetricSample& s) {
  if (s.labels.empty()) return s.name;
  std::string out = s.name + "{";
  bool first = true;
  for (const auto& [k, v] : s.labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  out += "}";
  return out;
}

std::string jsonl_number(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

ProcStats read_proc_stats() {
  ProcStats out;
  // VmRSS/VmHWM from /proc/self/status (kB lines).
  {
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
      const auto parse_kb = [&](const char* prefix, std::uint64_t& dst) {
        if (line.rfind(prefix, 0) != 0) return;
        std::istringstream fields(line.substr(std::string(prefix).size()));
        std::uint64_t kb = 0;
        fields >> kb;
        dst = kb * 1024;
      };
      parse_kb("VmRSS:", out.vm_rss_bytes);
      parse_kb("VmHWM:", out.vm_hwm_bytes);
    }
  }
  // utime/stime are fields 14/15 of /proc/self/stat, in clock ticks. The
  // comm field (2) can contain spaces but is parenthesised; skip past the
  // closing paren before field-splitting.
  {
    std::ifstream in("/proc/self/stat");
    std::string stat;
    std::getline(in, stat);
    const auto paren = stat.rfind(')');
    if (paren != std::string::npos) {
      std::istringstream fields(stat.substr(paren + 1));
      std::string tok;
      std::uint64_t utime_ticks = 0, stime_ticks = 0;
      // After ") " the next field is state (3); utime is field 14.
      for (int field = 3; field <= 15 && (fields >> tok); ++field) {
        if (field == 14) utime_ticks = std::strtoull(tok.c_str(), nullptr, 10);
        if (field == 15) stime_ticks = std::strtoull(tok.c_str(), nullptr, 10);
      }
      const double tick_s = 1.0 / static_cast<double>(sysconf(_SC_CLK_TCK));
      out.utime_s = static_cast<double>(utime_ticks) * tick_s;
      out.stime_s = static_cast<double>(stime_ticks) * tick_s;
    }
  }
  // Open descriptor count = directory entries of /proc/self/fd.
  {
    std::error_code ec;
    std::filesystem::directory_iterator it("/proc/self/fd", ec);
    if (!ec) {
      std::uint64_t n = 0;
      for (const auto& entry : it) {
        (void)entry;
        ++n;
      }
      out.fd_count = n;
    }
  }
  return out;
}

TelemetrySampler::TelemetrySampler(Observer& observer, SamplerOptions options)
    : observer_(observer),
      options_(options),
      series_(options.capacity_per_series) {
  if (!options_.jsonl_path.empty()) {
    jsonl_.open(options_.jsonl_path, std::ios::trunc);
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { thread_main(); });
}

void TelemetrySampler::stop() {
  if (stopped_) return;
  {
    const std::lock_guard<std::mutex> lock(wait_mu_);
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  wait_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
  // Final sample so the run's end state is captured even when the run was
  // shorter than one interval.
  sample_now();
  if (jsonl_.is_open()) jsonl_.flush();
  stopped_ = true;
}

void TelemetrySampler::thread_main() {
  // First sample immediately: it is the baseline the rate columns diff
  // against, and a sub-interval run still gets (first, final) bookends.
  sample_now();
  std::unique_lock<std::mutex> lock(wait_mu_);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    wait_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [&] {
                        return stop_requested_.load(
                            std::memory_order_relaxed);
                      });
    if (stop_requested_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void TelemetrySampler::sample_now() {
  const std::lock_guard<std::mutex> sample_lock(mu_);
  const std::uint64_t t0 = observer_.tracer().now_ns();
  const double dt_s =
      prev_t_ns_ > 0 ? static_cast<double>(t0 - prev_t_ns_) / 1e9 : 0.0;

  // (key, kind, value) readings of this tick, for the ring pushes and the
  // JSONL line alike.
  std::vector<std::pair<std::string, double>> level_values;
  std::vector<std::pair<std::string, double>> rate_values;

  const auto push_level = [&](const std::string& key, double value) {
    level_values.emplace_back(key, value);
  };
  // Counter-style reading: level series plus a derived `<key>.rate`
  // per-second series from the delta against the previous tick.
  const auto push_counter = [&](const std::string& key, double value) {
    push_level(key, value);
    const auto prev = prev_levels_.find(key);
    if (prev != prev_levels_.end() && dt_s > 0.0) {
      rate_values.emplace_back(key + ".rate", (value - prev->second) / dt_s);
    }
    prev_levels_[key] = value;
  };

  const MetricsSnapshot snap = observer_.metrics().snapshot();
  for (const MetricSample& s : snap.samples) {
    const std::string key = series_key(s);
    switch (s.kind) {
      case MetricKind::Counter:
        push_counter(key, s.value);
        break;
      case MetricKind::Gauge:
        push_level(key, s.value);
        break;
      case MetricKind::Histogram:
        // s.value is the observation total; bins stay point-in-time.
        push_counter(key + ".count", s.value);
        break;
    }
  }

  for (const auto& reading : observer_.progress_sources().read()) {
    push_counter("progress." + reading.name,
                 static_cast<double>(reading.count));
  }

  if (options_.sample_process) {
    const ProcStats proc = read_proc_stats();
    push_level("proc.vm_rss_bytes", static_cast<double>(proc.vm_rss_bytes));
    push_level("proc.vm_hwm_bytes", static_cast<double>(proc.vm_hwm_bytes));
    push_level("proc.utime_s", proc.utime_s);
    push_level("proc.stime_s", proc.stime_s);
    push_level("proc.fd_count", static_cast<double>(proc.fd_count));
    if (prev_t_ns_ > 0 && dt_s > 0.0) {
      const double d_cpu = (proc.utime_s + proc.stime_s) -
                           (prev_proc_.utime_s + prev_proc_.stime_s);
      rate_values.emplace_back("proc.cpu_pct", 100.0 * d_cpu / dt_s);
    }
    prev_proc_ = proc;
  }

  for (const auto& [key, value] : level_values) {
    series_.push(key, SeriesKind::Level, t0, value);
  }
  for (const auto& [key, value] : rate_values) {
    series_.push(key, SeriesKind::Rate, t0, value);
  }

  if (jsonl_.is_open()) {
    jsonl_ << "{\"t_ms\":" << jsonl_number(static_cast<double>(t0) / 1e6)
           << ",\"values\":{";
    bool first = true;
    const auto emit = [&](const std::string& key, double value) {
      if (!first) jsonl_ << ",";
      first = false;
      jsonl_ << "\"" << json_escape(key) << "\":" << jsonl_number(value);
    };
    for (const auto& [key, value] : level_values) emit(key, value);
    for (const auto& [key, value] : rate_values) emit(key, value);
    jsonl_ << "}}\n";
  }

  prev_t_ns_ = t0;
  samples_.fetch_add(1, std::memory_order_relaxed);
  sample_ns_.fetch_add(observer_.tracer().now_ns() - t0,
                       std::memory_order_relaxed);
}

}  // namespace ddos::obs
