// Run-report writer — one machine-readable JSON document per pipeline run:
// the invoked command and config, the stage timings harvested from the
// Tracer (top-level spans only; deep per-day detail stays in the Chrome
// trace), a full metrics snapshot, and the headline result shapes. Future
// PRs diff these documents to see perf and shape drift across versions.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace ddos::obs {

/// Ordered key/value sections; values are stored as ready-to-emit JSON
/// literals via the typed add_* helpers.
class RunReport {
 public:
  explicit RunReport(std::string command) : command_(std::move(command)) {}

  void add_config(const std::string& key, const std::string& value);
  void add_config(const std::string& key, std::int64_t value);
  void add_config(const std::string& key, double value);
  void add_result(const std::string& key, const std::string& value);
  void add_result(const std::string& key, std::int64_t value);
  void add_result(const std::string& key, double value);

  const std::string& command() const { return command_; }

  /// Emit the document. Stage rows are the observer's spans with
  /// depth <= max_stage_depth (default: root + direct children).
  void write(std::ostream& out, const Observer& observer,
             std::uint32_t max_stage_depth = 1) const;
  std::string to_json(const Observer& observer,
                      std::uint32_t max_stage_depth = 1) const;

 private:
  using Section = std::vector<std::pair<std::string, std::string>>;
  std::string command_;
  Section config_;
  Section results_;
};

}  // namespace ddos::obs
