// TelemetrySampler — the background thread that turns the point-in-time
// metrics registry into time-resolved series.
//
// At a fixed cadence (default 250 ms) the sampler snapshots every
// registered Counter/Gauge/Histogram of an Observer, the observer's
// progress sources, and process stats read from /proc/self (VmRSS/VmHWM,
// utime/stime, open fd count), and appends the readings to a
// TimeSeriesSet of fixed-capacity rings:
//
//   * counters  -> `<name>` level series + `<name>.rate` per-second series
//                  (delta between consecutive samples / elapsed);
//   * gauges    -> `<name>` level series;
//   * histograms-> `<name>.count` level + `<name>.rate` per-second series
//                  (observation totals; bins stay in the final snapshot);
//   * progress  -> `progress.<source>` level series;
//   * process   -> proc.vm_rss_bytes, proc.vm_hwm_bytes, proc.cpu_pct,
//                  proc.utime_s, proc.stime_s, proc.fd_count.
//
// Each tick can also append one JSONL line ({"t_ms":..,"values":{...}})
// to a --telemetry-out stream, so a run's full time-resolved story
// survives the process (the in-memory rings keep only the newest
// `capacity` points per series).
//
// The sampler is overhead-audited: it records its own cumulative sampling
// wall time, and bench_perf_pipeline gates sampler_overhead_pct (< 1% of
// run wall at 250 ms cadence) in CI.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/obs.h"
#include "obs/timeseries.h"

namespace ddos::obs {

/// Process stats from /proc/self; zeros on platforms without procfs.
struct ProcStats {
  std::uint64_t vm_rss_bytes = 0;
  std::uint64_t vm_hwm_bytes = 0;
  double utime_s = 0.0;   // user CPU, process lifetime
  double stime_s = 0.0;   // system CPU, process lifetime
  std::uint64_t fd_count = 0;
};
ProcStats read_proc_stats();

struct SamplerOptions {
  std::uint64_t interval_ms = 250;
  /// Ring capacity per series; memory bound = series x capacity x 16 B.
  std::size_t capacity_per_series = 4096;
  /// When non-empty, stream one JSON object per sample to this file.
  std::string jsonl_path;
  /// Include proc.* series (off only in deterministic unit tests).
  bool sample_process = true;
};

class TelemetrySampler {
 public:
  /// The observer must outlive the sampler. Construction opens the JSONL
  /// stream (if any) but takes no samples; call start().
  TelemetrySampler(Observer& observer, SamplerOptions options);
  /// Stops the thread; does NOT take a final sample (stop() does).
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void start();
  /// Takes one final sample (so the end state is always captured, even
  /// for runs shorter than one interval), then joins the thread and
  /// flushes the JSONL stream. Idempotent.
  void stop();

  /// One synchronous sample on the calling thread — the unit-test and
  /// final-flush entry point; also safe while the thread runs (the series
  /// set serialises pushes).
  void sample_now();

  const TimeSeriesSet& series() const { return series_; }
  std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  /// Cumulative wall time spent inside sample bodies (overhead audit).
  std::uint64_t total_sample_ns() const {
    return sample_ns_.load(std::memory_order_relaxed);
  }
  const SamplerOptions& options() const { return options_; }

 private:
  void thread_main();

  Observer& observer_;
  SamplerOptions options_;
  TimeSeriesSet series_;
  std::ofstream jsonl_;
  // Previous counter levels for delta/rate columns, keyed like the
  // series; only touched from inside sample_now (serialised by mu_).
  std::map<std::string, double> prev_levels_;
  std::uint64_t prev_t_ns_ = 0;
  ProcStats prev_proc_;
  std::mutex mu_;  // serialises sample_now bodies + jsonl writes
  std::thread thread_;
  // stop() must interrupt the inter-sample sleep promptly, so the thread
  // waits on a condition variable that stop() notifies under wait_mu_.
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> sample_ns_{0};
  bool stopped_ = false;
};

}  // namespace ddos::obs
