#include "obs/trace.h"

#include <atomic>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace ddos::obs {

namespace {

// Per-thread nesting level for open spans. Spans on different threads are
// independent hierarchies, exactly as Chrome's viewer renders them.
thread_local std::uint32_t t_span_depth = 0;

std::uint64_t current_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// ---- active-span slots. One slot per thread, registered on first use and
// kept alive by shared_ptr from both the thread_local (writer) and the
// global list (readers), so a snapshot racing a thread's exit never sees a
// dangling slot — a dead thread's slot just sits with an empty stack.
std::atomic<bool> g_track_active{false};

struct ActiveSlot {
  std::mutex mu;
  std::uint64_t thread_id = 0;
  std::vector<std::string> stack;  // open span names, outermost first
};

std::mutex g_slots_mu;
std::vector<std::shared_ptr<ActiveSlot>>& slot_list() {
  static std::vector<std::shared_ptr<ActiveSlot>> list;
  return list;
}

ActiveSlot& thread_slot() {
  thread_local std::shared_ptr<ActiveSlot> slot = [] {
    auto s = std::make_shared<ActiveSlot>();
    s->thread_id = current_thread_id();
    const std::lock_guard<std::mutex> lock(g_slots_mu);
    slot_list().push_back(s);
    return s;
  }();
  return *slot;
}

}  // namespace

void set_thread_span_depth(std::uint32_t depth) { t_span_depth = depth; }

void set_active_span_tracking(bool enabled) {
  g_track_active.store(enabled, std::memory_order_relaxed);
}

bool active_span_tracking_enabled() {
  return g_track_active.load(std::memory_order_relaxed);
}

std::vector<ActiveSpanInfo> active_spans() {
  std::vector<std::shared_ptr<ActiveSlot>> slots;
  {
    const std::lock_guard<std::mutex> lock(g_slots_mu);
    slots = slot_list();
  }
  std::vector<ActiveSpanInfo> out;
  for (const auto& slot : slots) {
    const std::lock_guard<std::mutex> lock(slot->mu);
    if (slot->stack.empty()) continue;
    ActiveSpanInfo info;
    info.thread_id = slot->thread_id;
    info.name = slot->stack.back();
    info.open_spans = static_cast<std::uint32_t>(slot->stack.size());
    out.push_back(std::move(info));
  }
  return out;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Tracer::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::write_chrome_json(std::ostream& out) const {
  const std::vector<TraceEvent> events = this->events();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : events) {
    if (!first) out << ",";
    first = false;
    // Chrome wants microseconds; keep fractional ns for short spans.
    out << "{\"name\":\"" << json_escape(ev.name) << "\",\"ph\":\"X\""
        << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(ev.duration_ns) / 1e3
        << ",\"pid\":1,\"tid\":" << ev.thread_id % 100000 << ",\"args\":{";
    bool afirst = true;
    if (ev.items > 0) {
      out << "\"items\":" << ev.items;
      afirst = false;
    }
    out << (afirst ? "" : ",") << "\"depth\":" << ev.depth;
    for (const auto& [k, v] : ev.args) {
      out << ",\"" << json_escape(k) << "\":\"" << json_escape(v) << "\"";
    }
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

std::string Tracer::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
  if (!tracer_) return;
  name_ = std::move(name);
  start_ns_ = tracer_->now_ns();
  depth_ = t_span_depth++;
  if (g_track_active.load(std::memory_order_relaxed)) {
    ActiveSlot& slot = thread_slot();
    const std::lock_guard<std::mutex> lock(slot.mu);
    slot.stack.push_back(name_);
    published_ = true;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!tracer_) return;
  --t_span_depth;
  if (published_) {
    // Pop by our own push, not by current tracking state: tracking may
    // have been toggled while this span was open.
    ActiveSlot& slot = thread_slot();
    const std::lock_guard<std::mutex> lock(slot.mu);
    if (!slot.stack.empty()) slot.stack.pop_back();
  }
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.start_ns = start_ns_;
  ev.duration_ns = tracer_->now_ns() - start_ns_;
  ev.depth = depth_;
  ev.thread_id = current_thread_id();
  ev.items = items_;
  ev.args = std::move(args_);
  tracer_->record(std::move(ev));
}

void ScopedSpan::arg(const std::string& key, const std::string& value) {
  if (!tracer_) return;
  args_.emplace_back(key, value);
}

void ScopedSpan::arg(const std::string& key, std::int64_t value) {
  if (!tracer_) return;
  args_.emplace_back(key, std::to_string(value));
}

std::uint64_t ScopedSpan::elapsed_ns() const {
  return tracer_ ? tracer_->now_ns() - start_ns_ : 0;
}

}  // namespace ddos::obs
