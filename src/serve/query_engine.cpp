#include "serve/query_engine.h"

#include <algorithm>
#include <cassert>

#include "core/impact.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "openintel/storage.h"

namespace ddos::serve {

const char* to_string(TopKMetric metric) {
  switch (metric) {
    case TopKMetric::Attacks: return "attacks";
    case TopKMetric::PeakImpact: return "peak_impact";
    case TopKMetric::FailureRate: return "failure_rate";
  }
  return "?";
}

QueryEngine::QueryEngine(const scenario::RunArtifacts& run) : run_(&run) {
  obs::ScopedSpan span(obs::installed_tracer(), "serve.build_indexes");
  build_nsset_index();
  build_series_index();
  build_leaderboards();
  build_window_index();
  span.set_items(summaries_.size());
  if (obs::Observer* o = obs::Observer::installed()) {
    o->metrics().gauge("serve.index_nssets")
        .set(static_cast<double>(summaries_.size()));
    o->metrics().gauge("serve.index_series_points")
        .set(static_cast<double>(day_points_.size()));
    o->metrics().gauge("serve.index_leaderboard_entries")
        .set(static_cast<double>(leaderboard_entries()));
  }
}

void QueryEngine::build_nsset_index() {
  const auto& joined = run_->joined;

  // Group joined-event indices by NSSet with a counting pass, preserving
  // canonical event order within each group (the grouping walk is stable).
  // Slot order is first-appearance order in the joined vector — a pure
  // function of the run, never of hashing.
  slot_of_.reserve(joined.size());
  for (const auto& ev : joined) {
    const auto [slot, inserted] =
        slot_of_.try_emplace(ev.nsset, static_cast<std::uint32_t>(0));
    if (inserted) {
      *slot = static_cast<std::uint32_t>(summaries_.size());
      summaries_.emplace_back();
      summaries_.back().nsset = ev.nsset;
      event_ranges_.emplace_back();
    }
    ++event_ranges_[*slot].count;
  }
  std::uint32_t offset = 0;
  for (auto& range : event_ranges_) {
    range.offset = offset;
    offset += range.count;
    range.count = 0;  // reused as the fill cursor below
  }
  event_index_.resize(joined.size());
  for (std::uint32_t i = 0; i < joined.size(); ++i) {
    const std::uint32_t slot = *slot_of_.find(joined[i].nsset);
    auto& range = event_ranges_[slot];
    event_index_[range.offset + range.count++] = i;

    NssetSummary& s = summaries_[slot];
    const core::NssetAttackEvent& ev = joined[i];
    const netsim::DayIndex day = ev.rsdos.start_time().day();
    if (s.events == 0 || day < s.first_day) s.first_day = day;
    if (s.events == 0 || day > s.last_day) s.last_day = day;
    ++s.events;
    s.domains_hosted = ev.domains_hosted;
    s.peak_impact = std::max(s.peak_impact, ev.peak_impact);
    s.max_failure_rate = std::max(s.max_failure_rate, ev.failure_rate);
    s.ok += ev.ok;
    s.timeouts += ev.timeouts;
    s.servfails += ev.servfails;
  }
}

void QueryEngine::build_series_index() {
  // The store's daily map is keyed time-major ((day, nsset) ascending);
  // the serving index wants nsset-major so one NSSet's series is a
  // contiguous span. Re-key and sort — unique keys, so the order is total.
  const auto daily = run_->store.sorted_daily();
  struct Keyed {
    dns::NssetId nsset;
    DayPoint point;
  };
  std::vector<Keyed> rows;
  rows.reserve(daily.size());
  for (const auto& [key, agg] : daily) {
    Keyed row;
    row.nsset = openintel::MeasurementStore::key_nsset(key);
    row.point.day = openintel::MeasurementStore::day_key_day(key);
    row.point.measured = agg.measured;
    row.point.avg_rtt_ms = agg.avg_rtt();
    row.point.failure_rate = agg.failure_rate();
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const Keyed& a, const Keyed& b) {
    return a.nsset != b.nsset ? a.nsset < b.nsset
                              : a.point.day < b.point.day;
  });

  day_points_.reserve(rows.size());
  series_ranges_.resize(summaries_.size());
  for (const auto& row : rows) {
    const auto [slot, inserted] =
        slot_of_.try_emplace(row.nsset, static_cast<std::uint32_t>(0));
    if (inserted) {
      // Swept but never attacked: summary stays zeroed, series only.
      *slot = static_cast<std::uint32_t>(summaries_.size());
      summaries_.emplace_back();
      summaries_.back().nsset = row.nsset;
      event_ranges_.emplace_back();
      series_ranges_.emplace_back();
    }
    IndexRange& range = series_ranges_[*slot];
    if (range.count == 0) {
      range.offset = static_cast<std::uint32_t>(day_points_.size());
    }
    ++range.count;
    day_points_.push_back(row.point);
  }

  // The serving key universe: every indexed NSSet, ascending, so key
  // choosers map dense ranks onto a stable ordered population.
  keys_.reserve(slot_of_.size());
  slot_of_.for_each(
      [this](const dns::NssetId& nsset, const std::uint32_t&) {
        keys_.push_back(nsset);
      });
  std::sort(keys_.begin(), keys_.end());
}

void QueryEngine::build_leaderboards() {
  // Attacks per victim IP, over ALL telescope events (the raw "top
  // attacked targets" view; the joined leaderboards below are DNS-only by
  // construction).
  util::FlatMap<std::uint32_t, std::uint64_t> per_victim;
  for (const auto& ev : run_->events) {
    ++*per_victim.try_emplace(ev.victim.value(), std::uint64_t{0}).first;
  }
  top_attacks_.reserve(per_victim.size());
  for (const auto& [ip, count] : per_victim.sorted_items()) {
    top_attacks_.push_back({ip, static_cast<double>(count)});
  }
  // Descending value; the pre-sort by ascending key makes the stable sort's
  // tie order total.
  const auto by_value_desc = [](const TopEntry& a, const TopEntry& b) {
    return a.value > b.value;
  };
  std::stable_sort(top_attacks_.begin(), top_attacks_.end(), by_value_desc);

  top_impact_.reserve(summaries_.size());
  top_failure_.reserve(summaries_.size());
  for (const dns::NssetId nsset : keys_) {
    const NssetSummary& s = summaries_[*slot_of_.find(nsset)];
    if (s.events == 0) continue;  // series-only NSSets hold no attack rank
    top_impact_.push_back({nsset, s.peak_impact});
    top_failure_.push_back({nsset, s.max_failure_rate});
  }
  std::stable_sort(top_impact_.begin(), top_impact_.end(), by_value_desc);
  std::stable_sort(top_failure_.begin(), top_failure_.end(), by_value_desc);
}

void QueryEngine::build_window_index() {
  const auto& joined = run_->joined;
  if (joined.empty()) return;
  day_min_ = day_max_ = joined.front().rsdos.start_time().day();
  for (const auto& ev : joined) {
    const netsim::DayIndex day = ev.rsdos.start_time().day();
    day_min_ = std::min(day_min_, day);
    day_max_ = std::max(day_max_, day);
  }
  by_day_.assign(static_cast<std::size_t>(day_max_ - day_min_ + 1), {});
  for (const auto& ev : joined) {
    DayAgg& agg = by_day_[static_cast<std::size_t>(
        ev.rsdos.start_time().day() - day_min_)];
    ++agg.events;
    if (ev.any_failure()) ++agg.events_with_failures;
    agg.timeouts += ev.timeouts;
    agg.servfails += ev.servfails;
    if (ev.peak_impact >= core::kImpairedThreshold) ++agg.impaired_10x;
    if (ev.peak_impact >= core::kSevereThreshold) ++agg.severe_100x;
    agg.max_peak_impact = std::max(agg.max_peak_impact, ev.peak_impact);
  }
}

PointResult QueryEngine::point_lookup(dns::NssetId nsset) const {
  PointResult result;
  const std::uint32_t* slot = slot_of_.find(nsset);
  if (slot == nullptr) return result;
  result.found = true;
  result.summary = summaries_[*slot];
  const IndexRange events = event_ranges_[*slot];
  result.event_indices = std::span<const std::uint32_t>(
      event_index_.data() + events.offset, events.count);
  const IndexRange series = series_ranges_[*slot];
  result.series =
      std::span<const DayPoint>(day_points_.data() + series.offset,
                                series.count);
  return result;
}

std::size_t QueryEngine::top_k(TopKMetric metric, std::size_t k,
                               std::vector<TopEntry>& out) const {
  const std::vector<TopEntry>* board = nullptr;
  switch (metric) {
    case TopKMetric::Attacks: board = &top_attacks_; break;
    case TopKMetric::PeakImpact: board = &top_impact_; break;
    case TopKMetric::FailureRate: board = &top_failure_; break;
  }
  out.clear();
  const std::size_t n = std::min(k, board->size());
  out.insert(out.end(), board->begin(),
             board->begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

WindowScanResult QueryEngine::window_scan(netsim::DayIndex day_lo,
                                          netsim::DayIndex day_hi) const {
  WindowScanResult result;
  result.day_lo = std::max(day_lo, day_min_);
  result.day_hi = std::min(day_hi, day_max_);
  for (netsim::DayIndex d = result.day_lo; d <= result.day_hi; ++d) {
    const DayAgg& agg = by_day_[static_cast<std::size_t>(d - day_min_)];
    result.events += agg.events;
    result.events_with_failures += agg.events_with_failures;
    result.timeouts += agg.timeouts;
    result.servfails += agg.servfails;
    result.impaired_10x += agg.impaired_10x;
    result.severe_100x += agg.severe_100x;
    result.max_peak_impact =
        std::max(result.max_peak_impact, agg.max_peak_impact);
  }
  return result;
}

}  // namespace ddos::serve
