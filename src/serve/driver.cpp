#include "serve/driver.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "exec/pool.h"
#include "netsim/rng.h"
#include "obs/obs.h"

namespace ddos::serve {

namespace {

using Clock = std::chrono::steady_clock;

// Latency histogram shape: 10 ns .. 100 s in tenth-of-a-decade bins.
constexpr double kLatencyBaseUs = 0.01;
constexpr double kLatencyDecadesPerBin = 0.1;
constexpr std::size_t kLatencyBins = 100;

// One cache line per participant: the op counter the progress source (and
// through it the telemetry sampler / stall watchdog) polls while the
// closed loops run. Each thread stores only its own cell, so the hot path
// never shares a line.
struct alignas(64) LiveCount {
  std::atomic<std::uint64_t> ops{0};
};

}  // namespace

std::uint64_t fingerprint_fold(std::uint64_t fp, std::uint64_t value) {
  return netsim::mix64(fp ^ (value + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t fingerprint_fold(std::uint64_t fp, double value) {
  return fingerprint_fold(fp, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t fold_point_answer(std::uint64_t fp, bool found,
                                const NssetSummary& summary,
                                std::uint64_t series_len) {
  fp = fingerprint_fold(fp, (static_cast<std::uint64_t>(summary.nsset) << 1) |
                                (found ? 1u : 0u));
  fp = fingerprint_fold(
      fp, static_cast<std::uint64_t>(summary.events) |
              (static_cast<std::uint64_t>(summary.timeouts) << 16) |
              (static_cast<std::uint64_t>(summary.servfails) << 32) |
              (series_len << 48));
  return fingerprint_fold(fp, summary.peak_impact);
}

std::uint64_t fold_top_k_answer(std::uint64_t fp,
                                std::span<const TopEntry> rows) {
  fp = fingerprint_fold(fp, static_cast<std::uint64_t>(rows.size()));
  for (const TopEntry& entry : rows) {
    fp = fingerprint_fold(fp, entry.key);
    fp = fingerprint_fold(fp, entry.value);
  }
  return fp;
}

std::uint64_t fold_window_scan_answer(std::uint64_t fp,
                                      const WindowScanResult& r) {
  fp = fingerprint_fold(fp, r.events | (r.events_with_failures << 24) |
                                (r.impaired_10x << 48));
  fp = fingerprint_fold(
      fp, r.timeouts | (r.servfails << 24) | (r.severe_100x << 48));
  return fingerprint_fold(fp, r.max_peak_impact);
}

util::LogHistogram drive_latency_histogram() {
  return util::LogHistogram(kLatencyBaseUs, kLatencyDecadesPerBin,
                            kLatencyBins);
}

ParticipantOutcome::ParticipantOutcome()
    : hists(kQueryTypeCount, drive_latency_histogram()) {}

DriveReport finalize_drive(std::span<const ParticipantOutcome> outcomes,
                           double wall_s) {
  DriveReport report;
  report.threads = static_cast<unsigned>(outcomes.size());
  report.wall_s = wall_s;
  report.thread_fingerprints.reserve(outcomes.size());
  report.thread_ops.reserve(outcomes.size());

  std::vector<util::LogHistogram> merged(kQueryTypeCount,
                                         drive_latency_histogram());
  for (const ParticipantOutcome& t : outcomes) {
    report.total_ops += t.ops;
    report.thread_fingerprints.push_back(t.fingerprint);
    report.thread_ops.push_back(t.ops);
    report.fingerprint = fingerprint_fold(report.fingerprint, t.fingerprint);
    for (std::size_t q = 0; q < kQueryTypeCount; ++q) {
      report.by_type[q].ops += t.type_ops[q];
      merged[q].merge(t.hists[q]);
    }
  }
  report.ops_per_sec =
      wall_s > 0.0 ? static_cast<double>(report.total_ops) / wall_s : 0.0;
  for (std::size_t q = 0; q < kQueryTypeCount; ++q) {
    QueryTypeReport& tr = report.by_type[q];
    tr.type = static_cast<QueryType>(q);
    tr.ops_per_sec =
        wall_s > 0.0 ? static_cast<double>(tr.ops) / wall_s : 0.0;
    tr.p50_us = merged[q].quantile(0.50);
    tr.p99_us = merged[q].quantile(0.99);
    tr.p999_us = merged[q].quantile(0.999);
  }

  if (obs::Observer* o = obs::Observer::installed()) {
    auto& metrics = o->metrics();
    metrics.gauge("serve.threads").set(static_cast<double>(report.threads));
    metrics.gauge("serve.ops_per_sec").set(report.ops_per_sec);
    for (std::size_t q = 0; q < kQueryTypeCount; ++q) {
      const obs::MetricLabels labels{
          {"query", to_string(static_cast<QueryType>(q))}};
      metrics.counter("serve.ops", labels).inc(report.by_type[q].ops);
      auto& hist =
          metrics.histogram("serve.latency_us", kLatencyBaseUs,
                            kLatencyDecadesPerBin, kLatencyBins, labels);
      for (std::size_t i = 0; i < merged[q].bin_count(); ++i) {
        if (const std::uint64_t n = merged[q].bin(i)) {
          hist.observe(std::sqrt(merged[q].bin_lo(i) * merged[q].bin_hi(i)),
                       n);
        }
      }
    }
  }
  return report;
}

DriveReport drive(const QueryEngine& engine, const DriveOptions& options) {
  if (engine.keys().empty()) {
    throw std::invalid_argument("serve::drive: engine key universe is empty");
  }

  exec::WorkerPool& pool = exec::global_pool();
  const unsigned threads = pool.thread_count();

  WorkloadSpec spec = options.workload;
  spec.day_min = engine.day_min();
  spec.day_max = engine.day_max();
  const std::uint64_t key_count = engine.keys().size();
  // Surface spec errors (bad theta, zero mix) here, on the caller, rather
  // than inside the pool region where throwing is not allowed.
  { Workload probe(spec, key_count, 0); }

  const bool fixed_ops = options.ops_per_thread > 0;
  const std::uint64_t budget = options.ops_per_thread;

  std::vector<ParticipantOutcome> state(threads);
  std::vector<LiveCount> live(threads);
  obs::Observer* observer = obs::Observer::installed();
  const obs::ScopedProgressSource progress(
      observer ? &observer->progress_sources() : nullptr, "serve.ops",
      [&live] {
        std::uint64_t total = 0;
        for (const LiveCount& c : live) {
          total += c.ops.load(std::memory_order_relaxed);
        }
        return total;
      });
  const std::span<const dns::NssetId> keys = engine.keys();

  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(
                      std::max(options.duration_s, 0.0)));

  pool.run_on_all([&](unsigned participant) {
    ParticipantOutcome& me = state[participant];
    Workload wl(spec, key_count, participant);
    std::vector<TopEntry> scratch;
    scratch.reserve(spec.topk_k);
    std::uint64_t fp = 0;

    Clock::time_point t_prev = Clock::now();
    for (;;) {
      if (fixed_ops && me.ops == budget) break;
      const Op op = wl.next();
      const auto type_index = static_cast<std::size_t>(op.type);
      switch (op.type) {
        case QueryType::PointLookup: {
          const PointResult r = engine.point_lookup(keys[op.key_index]);
          fp = fold_point_answer(fp, r.found, r.summary, r.series.size());
          break;
        }
        case QueryType::TopK: {
          const std::size_t n = engine.top_k(
              static_cast<TopKMetric>(op.metric), op.k, scratch);
          fp = fold_top_k_answer(
              fp, std::span<const TopEntry>(scratch.data(), n));
          break;
        }
        case QueryType::WindowScan: {
          const WindowScanResult r = engine.window_scan(op.day_lo, op.day_hi);
          fp = fold_window_scan_answer(fp, r);
          break;
        }
      }
      const Clock::time_point t_now = Clock::now();
      me.hists[type_index].add(
          std::chrono::duration<double, std::micro>(t_now - t_prev).count());
      t_prev = t_now;
      ++me.ops;
      ++me.type_ops[type_index];
      live[participant].ops.store(me.ops, std::memory_order_relaxed);
      if (!fixed_ops && t_now >= deadline) break;
    }
    me.fingerprint = fp;
  });

  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  return finalize_drive(state, wall_s);
}

}  // namespace ddos::serve
