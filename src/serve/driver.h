// Closed-loop load driver for the serve QueryEngine, run on the
// exec::WorkerPool.
//
// drive() publishes one region to the pool: every participant (the caller
// plus thread_count()-1 workers) runs its own closed loop — generate op,
// execute against the shared const engine, time it, fold the answer into
// a per-thread fingerprint — until its op budget (fixed-ops mode) or the
// shared deadline (duration mode) is reached. The engine is never written
// after build, each participant owns all of its mutable state (Workload
// stream, latency histograms, TopK scratch, fingerprint), so the hot loop
// takes no locks and shares no cache lines: the YCSB shared-nothing
// discipline.
//
// Determinism: participant t's op stream is Workload(seed, t), so in
// fixed-ops mode the per-thread answer fingerprints are a pure function
// of (engine contents, seed, thread count) — re-runs must match exactly,
// which is what makes `ddosrepro serve` a regression gate and not just a
// throughput meter. In duration mode the op count is wall-clock-bound, so
// only the stream prefix property holds (tested per-thread, not end-state).
//
// Latency accounting: one steady_clock read per op (the closed loop reuses
// the previous op's end timestamp as the next op's start), folded into
// per-thread per-query-type util::LogHistograms that are merged after the
// region — p50/p99/p999 come from LogHistogram::quantile over the merged
// distribution, and the merged histograms are republished through the
// installed obs::Observer (serve.latency_us{query=...}) so --metrics-out
// and the dashboard see them.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "serve/query_engine.h"
#include "serve/workload.h"
#include "util/histogram.h"

namespace ddos::serve {

struct DriveOptions {
  WorkloadSpec workload;  // day_min/day_max are overwritten from the engine
  /// Per-thread fixed op budget; > 0 selects deterministic fixed-ops mode
  /// (takes precedence over duration_s).
  std::uint64_t ops_per_thread = 0;
  /// Wall-clock budget for duration mode (used when ops_per_thread == 0).
  double duration_s = 2.0;
};

/// Merged per-query-type outcome.
struct QueryTypeReport {
  QueryType type = QueryType::PointLookup;
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;  // ops / region wall (0 when ops == 0)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

struct DriveReport {
  unsigned threads = 0;
  double wall_s = 0.0;
  std::uint64_t total_ops = 0;
  double ops_per_sec = 0.0;
  std::array<QueryTypeReport, kQueryTypeCount> by_type;

  /// Per-participant answer fingerprints (index == thread id) and their
  /// order-fixed combination. Equal runs must produce equal fingerprints.
  std::vector<std::uint64_t> thread_fingerprints;
  std::vector<std::uint64_t> thread_ops;
  std::uint64_t fingerprint = 0;
};

/// Fold one value into a running answer fingerprint (mix64 chain; doubles
/// enter through their bit pattern so the fold is exact, not rounded).
std::uint64_t fingerprint_fold(std::uint64_t fp, std::uint64_t value);
std::uint64_t fingerprint_fold(std::uint64_t fp, double value);

/// Run the load driver against `engine` on the global worker pool.
/// Blocks until every participant finishes; safe to call repeatedly.
DriveReport drive(const QueryEngine& engine, const DriveOptions& options);

}  // namespace ddos::serve
