// Closed-loop load driver for the serve QueryEngine, run on the
// exec::WorkerPool.
//
// drive() publishes one region to the pool: every participant (the caller
// plus thread_count()-1 workers) runs its own closed loop — generate op,
// execute against the shared const engine, time it, fold the answer into
// a per-thread fingerprint — until its op budget (fixed-ops mode) or the
// shared deadline (duration mode) is reached. The engine is never written
// after build, each participant owns all of its mutable state (Workload
// stream, latency histograms, TopK scratch, fingerprint), so the hot loop
// takes no locks and shares no cache lines: the YCSB shared-nothing
// discipline.
//
// Determinism: participant t's op stream is Workload(seed, t), so in
// fixed-ops mode the per-thread answer fingerprints are a pure function
// of (engine contents, seed, thread count) — re-runs must match exactly,
// which is what makes `ddosrepro serve` a regression gate and not just a
// throughput meter. In duration mode the op count is wall-clock-bound, so
// only the stream prefix property holds (tested per-thread, not end-state).
//
// Latency accounting: one steady_clock read per op (the closed loop reuses
// the previous op's end timestamp as the next op's start), folded into
// per-thread per-query-type util::LogHistograms that are merged after the
// region — p50/p99/p999 come from LogHistogram::quantile over the merged
// distribution, and the merged histograms are republished through the
// installed obs::Observer (serve.latency_us{query=...}) so --metrics-out
// and the dashboard see them.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "serve/query_engine.h"
#include "serve/workload.h"
#include "util/histogram.h"

namespace ddos::serve {

struct DriveOptions {
  WorkloadSpec workload;  // day_min/day_max are overwritten from the engine
  /// Per-thread fixed op budget; > 0 selects deterministic fixed-ops mode
  /// (takes precedence over duration_s).
  std::uint64_t ops_per_thread = 0;
  /// Wall-clock budget for duration mode (used when ops_per_thread == 0).
  double duration_s = 2.0;
};

/// Merged per-query-type outcome.
struct QueryTypeReport {
  QueryType type = QueryType::PointLookup;
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;  // ops / region wall (0 when ops == 0)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

struct DriveReport {
  unsigned threads = 0;
  double wall_s = 0.0;
  std::uint64_t total_ops = 0;
  double ops_per_sec = 0.0;
  /// Open-loop drives (net::drive_remote with target_qps > 0) record the
  /// schedule they aimed for; 0 means closed loop.
  double target_qps = 0.0;
  std::array<QueryTypeReport, kQueryTypeCount> by_type;

  /// Per-participant answer fingerprints (index == thread id) and their
  /// order-fixed combination. Equal runs must produce equal fingerprints.
  std::vector<std::uint64_t> thread_fingerprints;
  std::vector<std::uint64_t> thread_ops;
  std::uint64_t fingerprint = 0;
};

/// Fold one value into a running answer fingerprint (mix64 chain; doubles
/// enter through their bit pattern so the fold is exact, not rounded).
std::uint64_t fingerprint_fold(std::uint64_t fp, std::uint64_t value);
std::uint64_t fingerprint_fold(std::uint64_t fp, double value);

// ---- shared per-answer folds -----------------------------------------
//
// The local driver folds engine structs, the remote driver folds decoded
// wire answers; both must produce bit-identical fingerprints for the
// same op stream, so the fold math lives here exactly once. A
// PointLookup folds (nsset, found, events, timeouts, servfails,
// series length, peak impact) — the remote PointOk body carries exactly
// these fields, so wire answers fold losslessly.

std::uint64_t fold_point_answer(std::uint64_t fp, bool found,
                                const NssetSummary& summary,
                                std::uint64_t series_len);
std::uint64_t fold_top_k_answer(std::uint64_t fp,
                                std::span<const TopEntry> rows);
std::uint64_t fold_window_scan_answer(std::uint64_t fp,
                                      const WindowScanResult& result);

// ---- shared drive epilogue -------------------------------------------

/// The canonical latency histogram shape every drive participant records
/// into (10 ns .. 100 s, tenth-of-a-decade log bins). Local and remote
/// participants must use this exact shape or the merge throws.
util::LogHistogram drive_latency_histogram();

/// Everything one drive participant accumulates: its op/type counters,
/// its answer fingerprint and one latency histogram per query type
/// (pre-shaped by the default constructor).
struct ParticipantOutcome {
  std::uint64_t fingerprint = 0;
  std::uint64_t ops = 0;
  std::array<std::uint64_t, kQueryTypeCount> type_ops{};
  std::vector<util::LogHistogram> hists;  // one per QueryType

  ParticipantOutcome();
};

/// The drive epilogue shared by the local (serve::drive) and remote
/// (net::drive_remote) paths: merges per-participant histograms, folds
/// the combined fingerprint in participant order, computes throughput
/// and latency quantiles, and republishes the merged distributions
/// through the installed obs::Observer as `serve.ops{query=...}` /
/// `serve.latency_us{query=...}` (plus serve.threads/serve.ops_per_sec
/// gauges). Keeping it in one place is what stops the two drivers'
/// reports from drifting.
DriveReport finalize_drive(std::span<const ParticipantOutcome> outcomes,
                           double wall_s);

/// Run the load driver against `engine` on the global worker pool.
/// Blocks until every participant finishes; safe to call repeatedly.
DriveReport drive(const QueryEngine& engine, const DriveOptions& options);

}  // namespace ddos::serve
