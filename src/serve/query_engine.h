// QueryEngine — the online query-serving layer over a finished DRS run.
//
// A run today is write-once/analyze-once: `analyze --store` recomputes the
// headline statistics in one batch pass and exits. The engine turns the
// same artifacts into an interactive read path: it loads a run (a
// scenario::StoredRun from scenario::load_run, or a live
// LongitudinalResult — both are RunArtifacts) and builds three immutable,
// read-optimized indexes:
//
//   * per-NSSet index — joined NSSet-attack events grouped by NSSet plus
//     the per-(NSSet, day) sweep time series, both behind one
//     util::FlatMap probe (PointLookup);
//   * top-K structures — fully-sorted leaderboards per metric (telescope
//     attacks per victim IP, peak Impact_on_RTT per NSSet, failure rate
//     per NSSet), so TopK(k) is a k-entry copy (TopK);
//   * day-epoch window index — dense per-day aggregates of the joined
//     events (failure/impact tallies using the same thresholds as
//     core::ImpactFold/FailureFold), so WindowScan(day_lo, day_hi) is a
//     short scan of a contiguous array (WindowScan).
//
// Concurrency model: shared-nothing reads. build happens once on the
// constructing thread; afterwards every query method is const, touches
// only immutable state, and takes no locks — callers bring their own
// scratch (TopK writes into a caller-supplied vector). Any number of
// threads may query one engine concurrently; the load driver
// (serve/driver.h) hammers exactly this contract and CI runs it under
// TSan.
//
// Determinism: answers are pure functions of the run artifacts. Index
// build order is fixed (canonical joined-event order, ascending keys,
// total-ordered leaderboard ties), so two engines built from bit-identical
// runs — e.g. a live run and its DRS round trip — answer every query
// bit-identically. The parity test asserts this against the batch
// analysis path (core::impact_summary / failure_summary and brute-force
// folds).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/join.h"
#include "netsim/simtime.h"
#include "scenario/driver.h"
#include "util/flat_map.h"

namespace ddos::serve {

/// Leaderboard choice for TopK queries.
enum class TopKMetric {
  Attacks,      // telescope attack events per victim IP (cf. Table 5)
  PeakImpact,   // max Impact_on_RTT per NSSet (cf. Table 6)
  FailureRate,  // max joined-event failure rate per NSSet
};

const char* to_string(TopKMetric metric);

/// Precomputed per-NSSet fold over its joined attack events.
struct NssetSummary {
  dns::NssetId nsset = dns::kInvalidNsset;
  std::uint32_t events = 0;          // joined NSSet-attack events
  std::uint64_t domains_hosted = 0;  // NSSet size
  double peak_impact = 0.0;          // max over events
  double max_failure_rate = 0.0;
  std::uint32_t ok = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t servfails = 0;
  netsim::DayIndex first_day = 0;    // of the earliest/latest attack start
  netsim::DayIndex last_day = 0;

  friend bool operator==(const NssetSummary&, const NssetSummary&) = default;
};

/// One point of an NSSet's daily sweep time series (from the stored
/// per-(NSSet, day) aggregates; the retention policy of the generating
/// run decides which days exist).
struct DayPoint {
  netsim::DayIndex day = 0;
  std::uint32_t measured = 0;
  double avg_rtt_ms = 0.0;
  double failure_rate = 0.0;

  friend bool operator==(const DayPoint&, const DayPoint&) = default;
};

/// PointLookup answer. `found` is true when the NSSet has any indexed
/// state (attack events or sweep series). The spans alias engine-owned
/// immutable arrays and stay valid for the engine's lifetime.
struct PointResult {
  bool found = false;
  NssetSummary summary;
  /// Indices into joined() of this NSSet's events, canonical order.
  std::span<const std::uint32_t> event_indices;
  /// Daily sweep series, ascending by day.
  std::span<const DayPoint> series;
};

/// One leaderboard row: `key` is a victim IP (Attacks) or NssetId
/// (PeakImpact / FailureRate); ties broken by ascending key.
struct TopEntry {
  std::uint64_t key = 0;
  double value = 0.0;

  friend bool operator==(const TopEntry&, const TopEntry&) = default;
};

/// WindowScan answer over joined events whose attack started in
/// [day_lo, day_hi] (inclusive, clamped to the indexed range). Tallies
/// use the batch thresholds: impaired/severe are peak_impact >=
/// core::kImpairedThreshold / kSevereThreshold, failure counts follow
/// core::FailureFold.
struct WindowScanResult {
  netsim::DayIndex day_lo = 0;
  netsim::DayIndex day_hi = -1;      // empty when day_hi < day_lo
  std::uint64_t events = 0;
  std::uint64_t events_with_failures = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t servfails = 0;
  std::uint64_t impaired_10x = 0;
  std::uint64_t severe_100x = 0;
  double max_peak_impact = 0.0;

  double failing_event_share() const {
    return events ? static_cast<double>(events_with_failures) / events : 0.0;
  }

  friend bool operator==(const WindowScanResult&,
                         const WindowScanResult&) = default;
};

class QueryEngine {
 public:
  /// Build the indexes from a finished run. `run` must outlive the engine
  /// (joined-event spans alias it). Single-threaded, called once.
  explicit QueryEngine(const scenario::RunArtifacts& run);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  // ---- query API: const, lock-free, concurrently callable. ----

  /// O(1): one FlatMap probe, then a struct copy plus two span views.
  PointResult point_lookup(dns::NssetId nsset) const;

  /// Copies the first min(k, universe) rows of the requested leaderboard
  /// into `out` (cleared first — caller-owned scratch, reused across
  /// calls). Returns the number of rows written.
  std::size_t top_k(TopKMetric metric, std::size_t k,
                    std::vector<TopEntry>& out) const;

  /// O(day_hi - day_lo): folds the dense per-day aggregates of the range.
  WindowScanResult window_scan(netsim::DayIndex day_lo,
                               netsim::DayIndex day_hi) const;

  // ---- introspection for drivers and tests. ----

  /// The serving key universe: every NSSet with indexed state, ascending.
  /// Load drivers map key-chooser indices through this span.
  std::span<const dns::NssetId> keys() const { return keys_; }

  /// Joined events the per-NSSet index refers into (the run's vector).
  const std::vector<core::NssetAttackEvent>& joined() const {
    return run_->joined;
  }

  /// Indexed day range of the window index ([0, -1] when no events).
  netsim::DayIndex day_min() const { return day_min_; }
  netsim::DayIndex day_max() const { return day_max_; }

  std::size_t nsset_count() const { return summaries_.size(); }
  std::size_t series_points() const { return day_points_.size(); }
  std::size_t leaderboard_entries() const {
    return top_attacks_.size() + top_impact_.size() + top_failure_.size();
  }

 private:
  struct IndexRange {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };
  struct DayAgg {
    std::uint32_t events = 0;
    std::uint32_t events_with_failures = 0;
    std::uint32_t timeouts = 0;
    std::uint32_t servfails = 0;
    std::uint32_t impaired_10x = 0;
    std::uint32_t severe_100x = 0;
    double max_peak_impact = 0.0;
  };

  void build_nsset_index();
  void build_series_index();
  void build_leaderboards();
  void build_window_index();

  const scenario::RunArtifacts* run_;

  // nsset -> slot into summaries_/event_ranges_/series_ranges_.
  util::FlatMap<dns::NssetId, std::uint32_t> slot_of_;
  std::vector<NssetSummary> summaries_;
  std::vector<IndexRange> event_ranges_;   // into event_index_
  std::vector<std::uint32_t> event_index_; // joined indices grouped by nsset
  std::vector<IndexRange> series_ranges_;  // into day_points_
  std::vector<DayPoint> day_points_;       // grouped by nsset, day ascending
  std::vector<dns::NssetId> keys_;         // ascending serving universe

  std::vector<TopEntry> top_attacks_;  // (victim ip, events) desc
  std::vector<TopEntry> top_impact_;   // (nsset, max peak_impact) desc
  std::vector<TopEntry> top_failure_;  // (nsset, max failure_rate) desc

  netsim::DayIndex day_min_ = 0;
  netsim::DayIndex day_max_ = -1;
  std::vector<DayAgg> by_day_;  // dense, index = day - day_min_
};

}  // namespace ddos::serve
