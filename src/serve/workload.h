// YCSB-style workload generation for the serve layer (after My-YCSB's
// Workload/UniformWorkload/ZipfianWorkload closed-loop generators).
//
// A Workload is a per-thread deterministic op stream: thread t of a run
// seeded S draws every random choice — query type, key rank, scan window —
// from netsim::Rng(S).split(t), so the op sequence is a pure function of
// (seed, thread) and re-runs reproduce it exactly regardless of wall-clock
// interleaving. The driver (serve/driver.h) folds every answer into a
// per-thread fingerprint; equal sequences must produce equal fingerprints
// or the engine's determinism contract is broken.
//
// Key choice. Ranks are drawn either uniformly over [0, n) or from the
// paper-standard Zipfian(theta) distribution (netsim::ZipfSampler,
// rejection-inversion — O(1) per sample, any theta > 0 including 1). Rank
// r is then scattered over the key space with a stateless mix so that
// popular ranks land on uncorrelated keys (My-YCSB uses an FNV hash for
// the same reason): scatter(r, n) = mix64(r) % n. Tests sample next_rank
// directly for distribution shape and next_index for spread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::serve {

enum class Distribution { Uniform, Zipfian };

const char* to_string(Distribution dist);
/// "uniform"/"zipfian" -> Distribution; nullopt otherwise.
std::optional<Distribution> parse_distribution(std::string_view name);

enum class QueryType : std::uint8_t {
  PointLookup = 0,
  TopK = 1,
  WindowScan = 2,
};
inline constexpr std::size_t kQueryTypeCount = 3;

const char* to_string(QueryType type);

/// Relative operation weights, the "95:4:1" CLI spec.
struct QueryMix {
  std::uint32_t point = 95;
  std::uint32_t topk = 4;
  std::uint32_t scan = 1;

  std::uint32_t total() const { return point + topk + scan; }
  std::string to_string() const;
};

/// Parse "P:T:S" (non-negative integers, at least one positive);
/// nullopt on malformed input. When `error` is non-null it receives a
/// FlagParser-style diagnostic naming the expected form and the offending
/// piece — negative weights, weights overflowing 32 bits, an overflowing
/// total and all-zero mixes are each rejected with their own message
/// instead of being silently normalized.
std::optional<QueryMix> parse_mix(std::string_view spec,
                                  std::string* error = nullptr);

/// Per-thread key-rank chooser over a key universe of size n (> 0).
class KeyChooser {
 public:
  KeyChooser(Distribution dist, std::uint64_t n, double theta);

  /// Rank in [0, n); under Zipfian, rank 0 is the most probable and
  /// frequency decays as (rank+1)^-theta.
  std::uint64_t next_rank(netsim::Rng& rng) const;

  /// scatter(next_rank()): the rank mapped onto an uncorrelated key-space
  /// index, so hot keys are spread across the universe.
  std::uint64_t next_index(netsim::Rng& rng) const {
    return scatter(next_rank(rng), n_);
  }

  /// Stateless rank -> index permutation-ish spread (mix64 mod n; ranks
  /// may collide on one index, exactly like YCSB's fnv scramble).
  static std::uint64_t scatter(std::uint64_t rank, std::uint64_t n);

  std::uint64_t n() const { return n_; }
  Distribution distribution() const { return dist_; }

 private:
  Distribution dist_;
  std::uint64_t n_;
  std::optional<netsim::ZipfSampler> zipf_;  // Zipfian only
};

/// Everything a Workload stream needs; the driver fills day_min/day_max
/// from the engine's window index.
struct WorkloadSpec {
  std::uint64_t seed = 42;
  Distribution dist = Distribution::Zipfian;
  double theta = 0.99;
  QueryMix mix;
  std::uint32_t topk_k = 10;
  /// WindowScan width in days; windows are placed uniformly inside
  /// [day_min, day_max].
  netsim::DayIndex scan_days = 30;
  netsim::DayIndex day_min = 0;
  netsim::DayIndex day_max = -1;
};

/// One generated operation.
struct Op {
  QueryType type = QueryType::PointLookup;
  std::uint64_t key_index = 0;     // PointLookup: index into engine keys()
  std::uint32_t k = 0;             // TopK
  std::uint8_t metric = 0;         // TopK: TopKMetric, round-robins 0..2
  netsim::DayIndex day_lo = 0;     // WindowScan
  netsim::DayIndex day_hi = -1;
};

/// The per-thread op stream: deterministic in (spec.seed, thread_id).
class Workload {
 public:
  Workload(const WorkloadSpec& spec, std::uint64_t key_count,
           unsigned thread_id);

  Op next();

  std::uint64_t ops_generated() const { return ops_; }

 private:
  WorkloadSpec spec_;
  netsim::Rng rng_;
  KeyChooser chooser_;
  std::uint64_t ops_ = 0;
};

}  // namespace ddos::serve
