#include "serve/workload.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace ddos::serve {

const char* to_string(Distribution dist) {
  switch (dist) {
    case Distribution::Uniform: return "uniform";
    case Distribution::Zipfian: return "zipfian";
  }
  return "?";
}

std::optional<Distribution> parse_distribution(std::string_view name) {
  if (name == "uniform") return Distribution::Uniform;
  if (name == "zipfian") return Distribution::Zipfian;
  return std::nullopt;
}

const char* to_string(QueryType type) {
  switch (type) {
    case QueryType::PointLookup: return "point";
    case QueryType::TopK: return "topk";
    case QueryType::WindowScan: return "scan";
  }
  return "?";
}

std::string QueryMix::to_string() const {
  return std::to_string(point) + ":" + std::to_string(topk) + ":" +
         std::to_string(scan);
}

namespace {

std::optional<QueryMix> mix_error(std::string* error, std::string_view spec,
                                  const std::string& detail) {
  if (error != nullptr) {
    *error = "mix expects point:topk:scan relative weights (three "
             "non-negative integers, at least one positive, e.g. 95:4:1), "
             "got '" + std::string(spec) + "': " + detail;
  }
  return std::nullopt;
}

}  // namespace

std::optional<QueryMix> parse_mix(std::string_view spec,
                                  std::string* error) {
  static constexpr const char* kFieldNames[3] = {"point", "topk", "scan"};
  std::uint32_t parts[3] = {0, 0, 0};
  std::size_t begin = 0;
  for (int i = 0; i < 3; ++i) {
    const std::size_t end =
        i < 2 ? spec.find(':', begin) : spec.size();
    if (end == std::string_view::npos) {
      return mix_error(error, spec, "expected three ':'-separated fields");
    }
    const std::string_view field = spec.substr(begin, end - begin);
    if (field.empty()) {
      return mix_error(error, spec,
                       std::string(kFieldNames[i]) + " weight is empty");
    }
    if (field.front() == '-') {
      return mix_error(error, spec,
                       std::string(kFieldNames[i]) + " weight '" +
                           std::string(field) + "' is negative");
    }
    const auto [ptr, ec] = std::from_chars(
        field.data(), field.data() + field.size(), parts[i]);
    if (ec == std::errc::result_out_of_range) {
      return mix_error(error, spec,
                       std::string(kFieldNames[i]) + " weight '" +
                           std::string(field) + "' overflows 32 bits");
    }
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
      return mix_error(error, spec,
                       std::string(kFieldNames[i]) + " weight '" +
                           std::string(field) +
                           "' is not a non-negative integer");
    }
    begin = end + 1;
  }
  // The three weights are rolled against their sum, so the sum itself must
  // fit the 32-bit draw (three u32s can wrap it).
  const std::uint64_t total = static_cast<std::uint64_t>(parts[0]) +
                              parts[1] + parts[2];
  if (total == 0) {
    return mix_error(error, spec,
                     "all three weights are zero; at least one must be "
                     "positive");
  }
  if (total > 0xFFFFFFFFull) {
    return mix_error(error, spec, "weights sum past 32 bits");
  }
  QueryMix mix;
  mix.point = parts[0];
  mix.topk = parts[1];
  mix.scan = parts[2];
  return mix;
}

KeyChooser::KeyChooser(Distribution dist, std::uint64_t n, double theta)
    : dist_(dist), n_(n) {
  if (n == 0) throw std::invalid_argument("KeyChooser: empty key universe");
  if (dist == Distribution::Zipfian) zipf_.emplace(n, theta);
}

std::uint64_t KeyChooser::next_rank(netsim::Rng& rng) const {
  if (dist_ == Distribution::Uniform) return rng.uniform_u64(n_);
  return zipf_->sample(rng) - 1;  // sampler ranks are 1-based
}

std::uint64_t KeyChooser::scatter(std::uint64_t rank, std::uint64_t n) {
  return netsim::mix64(rank) % n;
}

Workload::Workload(const WorkloadSpec& spec, std::uint64_t key_count,
                   unsigned thread_id)
    : spec_(spec),
      rng_(netsim::Rng(spec.seed).split(thread_id)),
      chooser_(spec.dist, key_count, spec.theta) {}

Op Workload::next() {
  Op op;
  const std::uint32_t roll =
      static_cast<std::uint32_t>(rng_.uniform_u64(spec_.mix.total()));
  if (roll < spec_.mix.point) {
    op.type = QueryType::PointLookup;
    op.key_index = chooser_.next_index(rng_);
  } else if (roll < spec_.mix.point + spec_.mix.topk) {
    op.type = QueryType::TopK;
    op.k = spec_.topk_k;
    // Round-robin over the three leaderboards, phase-shifted per op so the
    // metric choice stays deterministic without burning another draw.
    op.metric = static_cast<std::uint8_t>(ops_ % 3);
  } else {
    op.type = QueryType::WindowScan;
    if (spec_.day_max < spec_.day_min) {
      op.day_lo = 0;
      op.day_hi = -1;  // engine clamps to its (empty) range
    } else {
      const netsim::DayIndex span = spec_.day_max - spec_.day_min + 1;
      const netsim::DayIndex width =
          std::min<netsim::DayIndex>(std::max<netsim::DayIndex>(
                                         spec_.scan_days, 1),
                                     span);
      op.day_lo = spec_.day_min +
                  static_cast<netsim::DayIndex>(rng_.uniform_u64(
                      static_cast<std::uint64_t>(span - width + 1)));
      op.day_hi = op.day_lo + width - 1;
    }
  }
  ++ops_;
  return op;
}

}  // namespace ddos::serve
