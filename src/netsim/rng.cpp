#include "netsim/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ddos::netsim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t v) { return splitmix64(v); }

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_u64: n == 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (-n) % n;
  while (true) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t r = span == 0 ? next_u64() : uniform_u64(span);
  return lo + static_cast<std::int64_t>(r);
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * std::numbers::pi * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) { return mean + sd * normal(); }

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda <= 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument("pareto: xm/alpha <= 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm * std::pow(u, -1.0 / alpha);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0)
    throw std::invalid_argument("weighted_index: no positive weights");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;  // Floating-point edge: last positive bucket.
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::split(std::uint64_t stream_id) const {
  // Condense the four state words (rotations break the xoshiro linearity),
  // then mix in the stream id through two SplitMix64 rounds so adjacent ids
  // land in unrelated seeds.
  const std::uint64_t state =
      s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47);
  return Rng(mix64(state ^ mix64(stream_id + 0x9E3779B97F4A7C15ull)));
}

// --- ZipfSampler (rejection-inversion, Hörmann & Derflinger 1996) ---------

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (alpha <= 0.0) throw std::invalid_argument("ZipfSampler: alpha <= 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::pow(x, -alpha_); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  if (std::abs(1.0 - alpha_) < 1e-12) return log_x;
  return (std::exp((1.0 - alpha_) * log_x) - 1.0) / (1.0 - alpha_);
}

double ZipfSampler::h_integral_inverse(double x) const {
  if (std::abs(1.0 - alpha_) < 1e-12) return std::exp(x);
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // Guard against rounding below the pole.
  return std::exp(std::log1p(t) / (1.0 - alpha_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) return k;
  }
}

}  // namespace ddos::netsim
