// IPv4 addresses and CIDR prefixes — the common currency between the
// telescope (victim IPs, /16 landing subnets), the DNS registry (NS IPs),
// the topology (prefix2as) and the anycast census (/24 matching).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace ddos::netsim {

/// An IPv4 address stored host-order. Value type, totally ordered.
class IPv4Addr {
 public:
  constexpr IPv4Addr() = default;
  constexpr explicit IPv4Addr(std::uint32_t host_order) : v_(host_order) {}
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return v_; }
  constexpr auto operator<=>(const IPv4Addr&) const = default;

  /// Dotted-quad representation, e.g. "8.8.8.8".
  std::string to_string() const;

  /// Parse dotted-quad; nullopt on malformed input.
  static std::optional<IPv4Addr> parse(std::string_view s);

  /// Enclosing /24 network address (x.y.z.0).
  constexpr IPv4Addr slash24() const { return IPv4Addr(v_ & 0xFFFFFF00u); }
  /// Enclosing /16 network address (x.y.0.0).
  constexpr IPv4Addr slash16() const { return IPv4Addr(v_ & 0xFFFF0000u); }

 private:
  std::uint32_t v_ = 0;
};

/// A CIDR prefix. Network bits below the mask are zeroed on construction,
/// so Prefix(1.2.3.4, 24) == Prefix(1.2.3.0, 24).
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(IPv4Addr addr, int length);

  IPv4Addr network() const { return net_; }
  int length() const { return len_; }
  auto operator<=>(const Prefix&) const = default;

  bool contains(IPv4Addr a) const;
  bool contains(const Prefix& other) const;

  /// Number of addresses covered (2^(32-len)); 2^32 saturates to max u64.
  std::uint64_t size() const;

  /// First/last address covered.
  IPv4Addr first() const { return net_; }
  IPv4Addr last() const;

  /// "1.2.3.0/24".
  std::string to_string() const;
  static std::optional<Prefix> parse(std::string_view s);

 private:
  IPv4Addr net_{};
  int len_ = 0;
};

/// Mask with `len` leading one bits (host order). len in [0, 32].
constexpr std::uint32_t prefix_mask(int len) {
  return len <= 0 ? 0u : (len >= 32 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> len));
}

}  // namespace ddos::netsim

template <>
struct std::hash<ddos::netsim::IPv4Addr> {
  std::size_t operator()(const ddos::netsim::IPv4Addr& a) const noexcept {
    // Fibonacci hashing spreads sequential addresses across buckets.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ull >> 16;
  }
};

template <>
struct std::hash<ddos::netsim::Prefix> {
  std::size_t operator()(const ddos::netsim::Prefix& p) const noexcept {
    const auto h = std::hash<ddos::netsim::IPv4Addr>{}(p.network());
    return h ^ (static_cast<std::size_t>(p.length()) << 1);
  }
};
