// Deterministic random number generation for the simulator. Every stochastic
// component takes an explicit seed so scenarios replay bit-for-bit; the
// paper's figures are then reproducible runs, not one-off samples.
//
// Engine: xoshiro256** seeded via SplitMix64 (public-domain algorithms by
// Blackman & Vigna), re-implemented here to avoid external dependencies and
// keep cross-platform determinism (std:: distributions are not portable).
#pragma once

#include <cstdint>
#include <vector>

namespace ddos::netsim {

/// SplitMix64 — used for seeding and cheap stateless hashing of ids to
/// stable pseudo-random streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a value (one SplitMix64 round with the value as state).
std::uint64_t mix64(std::uint64_t v);

/// xoshiro256** engine with distribution helpers. All helpers use explicit
/// algorithms (not std::uniform_int_distribution) for determinism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, n); n must be > 0. Unbiased via rejection.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial.
  bool chance(double p);

  /// Standard normal via Box-Muller (cached spare deviate).
  double normal();
  double normal(double mean, double sd);

  /// Log-normal with given location/scale of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// Pareto (Lomax-style: xm * U^(-1/alpha)), heavy-tailed sizes.
  double pareto(double xm, double alpha);

  /// Poisson-distributed count (Knuth for small means, normal approx above).
  std::uint64_t poisson(double mean);

  /// Pick an index in [0, weights.size()) proportional to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-entity streams).
  /// Advances this generator; successive forks yield different children.
  Rng fork();

  /// Derive an independent child stream keyed by `stream_id` WITHOUT
  /// advancing this generator: split(k) is a pure function of (state, k),
  /// so parallel shards can each derive their own stream from a shared
  /// parent in any order — the basis of thread-count-invariant results in
  /// src/exec/ regions.
  Rng split(std::uint64_t stream_id) const;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf(α) sampler over ranks {1..n} using rejection-inversion
/// (Hörmann & Derflinger), O(1) per sample. Models heavy-tailed
/// provider-size and domain-popularity distributions.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  /// Rank in [1, n]; rank 1 is the most probable.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace ddos::netsim
