// Simulation time. The paper's whole pipeline is keyed on two granularities:
// 5-minute tumbling windows (RSDoS feed, NSSet aggregation) and UTC days
// (OpenINTEL sweeps, previous-day joins). We model time as seconds since a
// simulation epoch that corresponds to 2020-11-01 00:00:00 UTC, the start of
// the paper's 17-month observation window.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ddos::netsim {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerWindow = 300;   // 5-minute windows
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kWindowsPerDay = kSecondsPerDay / kSecondsPerWindow;

/// Index of a 5-minute tumbling window since the simulation epoch.
using WindowIndex = std::int64_t;
/// Index of a UTC day since the simulation epoch (day 0 = 2020-11-01).
using DayIndex = std::int64_t;

/// A point in simulated time, seconds since epoch 2020-11-01T00:00:00Z.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) : s_(seconds) {}

  constexpr std::int64_t seconds() const { return s_; }
  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr WindowIndex window() const { return floor_div(s_, kSecondsPerWindow); }
  constexpr DayIndex day() const { return floor_div(s_, kSecondsPerDay); }
  constexpr std::int64_t second_of_day() const {
    return s_ - day() * kSecondsPerDay;
  }

  constexpr SimTime operator+(std::int64_t secs) const { return SimTime(s_ + secs); }
  constexpr SimTime operator-(std::int64_t secs) const { return SimTime(s_ - secs); }
  constexpr std::int64_t operator-(SimTime other) const { return s_ - other.s_; }

  /// Construct from calendar fields of a window-start, via the proleptic
  /// Gregorian calendar (valid for the simulated 2020-2022 range and beyond).
  static SimTime from_utc(int year, int month, int day, int hour = 0,
                          int minute = 0, int second = 0);

  /// "2020-12-01 08:00:00" (UTC).
  std::string to_string() const;
  /// "2020-12" — used for the monthly breakdowns of Table 3 / Fig. 5.
  std::string year_month() const;

 private:
  static constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
    return (a >= 0) ? a / b : -((-a + b - 1) / b);
  }
  std::int64_t s_ = 0;
};

/// First second of a window / day.
constexpr SimTime window_start(WindowIndex w) {
  return SimTime(w * kSecondsPerWindow);
}
constexpr SimTime day_start(DayIndex d) { return SimTime(d * kSecondsPerDay); }

/// Number of days in (year, month); Gregorian rules.
int days_in_month(int year, int month);

/// Day index (since 2020-11-01) of the first day of (year, month).
/// (year, month) must be >= 2020-11.
DayIndex month_start_day(int year, int month);

/// Inclusive month sequence helper: advances (year, month) by one month.
void next_month(int& year, int& month);

/// Decompose a DayIndex into calendar (year, month, day-of-month).
void day_to_ymd(DayIndex day, int& year, int& month, int& dom);

}  // namespace ddos::netsim
