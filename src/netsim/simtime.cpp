#include "netsim/simtime.h"

#include <array>
#include <cstdio>

namespace ddos::netsim {

namespace {

constexpr bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

// Days from 2020-11-01 to the first of (year, month). Works by walking
// months; the simulated range is small so this is never hot.
std::int64_t days_from_epoch_to_month(int year, int month) {
  std::int64_t days = 0;
  int y = 2020, m = 11;
  while (y < year || (y == year && m < month)) {
    days += days_in_month(y, m);
    next_month(y, m);
  }
  // Also support (year, month) before the epoch by walking backwards.
  y = 2020;
  m = 11;
  while (y > year || (y == year && m > month)) {
    int py = y, pm = m;
    if (--pm == 0) {
      pm = 12;
      --py;
    }
    days -= days_in_month(py, pm);
    y = py;
    m = pm;
  }
  return days;
}

}  // namespace

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month - 1)];
}

void next_month(int& year, int& month) {
  if (++month == 13) {
    month = 1;
    ++year;
  }
}

DayIndex month_start_day(int year, int month) {
  return days_from_epoch_to_month(year, month);
}

SimTime SimTime::from_utc(int year, int month, int day, int hour, int minute,
                          int second) {
  const std::int64_t days = days_from_epoch_to_month(year, month) + (day - 1);
  return SimTime(days * kSecondsPerDay + hour * kSecondsPerHour +
                 minute * kSecondsPerMinute + second);
}

void day_to_ymd(DayIndex day, int& year, int& month, int& dom) {
  year = 2020;
  month = 11;
  std::int64_t remaining = day;
  while (remaining >= days_in_month(year, month)) {
    remaining -= days_in_month(year, month);
    next_month(year, month);
  }
  while (remaining < 0) {
    int py = year, pm = month;
    if (--pm == 0) {
      pm = 12;
      --py;
    }
    remaining += days_in_month(py, pm);
    year = py;
    month = pm;
  }
  dom = static_cast<int>(remaining) + 1;
}

std::string SimTime::to_string() const {
  int year = 0, month = 0, dom = 0;
  day_to_ymd(day(), year, month, dom);
  const std::int64_t sod = second_of_day();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", year, month,
                dom, static_cast<int>(sod / kSecondsPerHour),
                static_cast<int>((sod / 60) % 60), static_cast<int>(sod % 60));
  return buf;
}

std::string SimTime::year_month() const {
  int year = 0, month = 0, dom = 0;
  day_to_ymd(day(), year, month, dom);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d", year, month);
  return buf;
}

}  // namespace ddos::netsim
