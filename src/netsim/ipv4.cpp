#include "netsim/ipv4.h"

#include <charconv>
#include <limits>

#include "util/strings.h"

namespace ddos::netsim {

std::string IPv4Addr::to_string() const {
  return std::to_string((v_ >> 24) & 0xFF) + "." +
         std::to_string((v_ >> 16) & 0xFF) + "." +
         std::to_string((v_ >> 8) & 0xFF) + "." + std::to_string(v_ & 0xFF);
}

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view s) {
  const auto parts = util::split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t v = 0;
  for (const auto& part : parts) {
    std::uint64_t octet = 0;
    if (!util::parse_u64(part, octet) || octet > 255) return std::nullopt;
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return IPv4Addr(v);
}

Prefix::Prefix(IPv4Addr addr, int length) : len_(length) {
  if (length < 0) len_ = 0;
  if (length > 32) len_ = 32;
  net_ = IPv4Addr(addr.value() & prefix_mask(len_));
}

bool Prefix::contains(IPv4Addr a) const {
  return (a.value() & prefix_mask(len_)) == net_.value();
}

bool Prefix::contains(const Prefix& other) const {
  return other.len_ >= len_ && contains(other.net_);
}

std::uint64_t Prefix::size() const {
  return std::uint64_t{1} << (32 - len_);
}

IPv4Addr Prefix::last() const {
  return IPv4Addr(net_.value() | ~prefix_mask(len_));
}

std::string Prefix::to_string() const {
  return net_.to_string() + "/" + std::to_string(len_);
}

std::optional<Prefix> Prefix::parse(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Addr::parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint64_t len = 0;
  if (!util::parse_u64(s.substr(slash + 1), len) || len > 32)
    return std::nullopt;
  return Prefix(*addr, static_cast<int>(len));
}

}  // namespace ddos::netsim
