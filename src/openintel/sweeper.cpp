#include "openintel/sweeper.h"

#include "obs/obs.h"

namespace ddos::openintel {

namespace {

void record_measurement(const Measurement& m) {
  obs::Observer* o = obs::Observer::installed();
  if (!o) return;
  obs::PipelineMetrics& p = o->pipeline;
  p.sweep_measurements.inc();
  switch (m.status) {
    // NXDOMAIN is an authoritative answer — a healthy resolution.
    case dns::ResponseStatus::Ok:
    case dns::ResponseStatus::NxDomain: p.sweep_ok.inc(); break;
    case dns::ResponseStatus::ServFail: p.sweep_servfail.inc(); break;
    case dns::ResponseStatus::Timeout: p.sweep_timeout.inc(); break;
  }
  p.sweep_rtt_ms.observe(m.rtt_ms);
}

}  // namespace

Sweeper::Sweeper(const dns::DnsRegistry& registry,
                 const attack::AttackSchedule& schedule, SweeperParams params)
    : registry_(registry),
      schedule_(schedule),
      params_(params),
      resolver_(params.resolver) {}

netsim::SimTime Sweeper::measurement_time(dns::DomainId domain,
                                          netsim::DayIndex day) const {
  // Stable hash of (seed, domain, day) -> second of day.
  const std::uint64_t h = netsim::mix64(
      params_.seed ^ (static_cast<std::uint64_t>(domain) << 32) ^
      static_cast<std::uint64_t>(day) * 0x9E3779B97F4A7C15ull);
  const auto sod = static_cast<std::int64_t>(h % netsim::kSecondsPerDay);
  return netsim::day_start(day) + sod;
}

Measurement Sweeper::measure(dns::DomainId domain, netsim::SimTime t) const {
  return measure_with_salt(domain, t, 0);
}

std::vector<Sweeper::NsOutcome> Sweeper::measure_exhaustive(
    dns::DomainId domain, netsim::SimTime t) const {
  obs::ScopedSpan span(obs::installed_tracer(), "sweeper.measure_exhaustive");
  const dns::NssetId nsset = registry_.nsset_of_domain(domain);
  const auto& key = registry_.nsset_key(nsset);
  const netsim::WindowIndex window = t.window();
  span.set_items(key.ips.size());

  // The (domain, time) part of each server's RNG seed is loop-invariant;
  // only the per-ip mix varies, so two of the four mix64 calls hoist out.
  const std::uint64_t seed_base =
      params_.seed ^ netsim::mix64(static_cast<std::uint64_t>(domain)) ^
      netsim::mix64(static_cast<std::uint64_t>(t.seconds()));

  std::vector<NsOutcome> out;
  out.reserve(key.ips.size());
  for (const auto& ip : key.ips) {
    if (!registry_.has_nameserver(ip)) {  // lame: permanent timeout
      NsOutcome lame;
      lame.ns = ip;
      out.push_back(lame);
      continue;
    }
    netsim::Rng rng(
        netsim::mix64(seed_base ^ netsim::mix64(ip.value() * 0xA24BAED4ull)));
    const dns::Nameserver& ns = registry_.nameserver(ip);
    const dns::OfferedLoad load{
        schedule_.attack_pps_at(ip, window),
        schedule_.link_utilisation_at(ip, window),
    };
    const dns::QueryOutcome q =
        ns.query(rng, load, params_.model, t, params_.resolver.vantage_id,
                 params_.resolver.vantage_country, params_.resolver.law);
    NsOutcome outcome;
    outcome.ns = ip;
    if (q.responded && q.rtt_ms <= params_.resolver.attempt_timeout_ms) {
      outcome.status = q.servfail ? dns::ResponseStatus::ServFail
                                  : dns::ResponseStatus::Ok;
      outcome.rtt_ms = q.rtt_ms;
    }
    out.push_back(outcome);
  }
  return out;
}

Measurement Sweeper::measure_with_salt(dns::DomainId domain, netsim::SimTime t,
                                       std::uint64_t salt) const {
  const dns::NssetId nsset = registry_.nsset_of_domain(domain);
  const auto& key = registry_.nsset_key(nsset);
  const netsim::WindowIndex window = t.window();

  std::vector<const dns::Nameserver*> servers;
  std::vector<dns::OfferedLoad> loads;
  servers.reserve(key.ips.size());
  loads.reserve(key.ips.size());
  for (const auto& ip : key.ips) {
    servers.push_back(registry_.has_nameserver(ip) ? &registry_.nameserver(ip)
                                                   : nullptr);  // lame entry
    loads.push_back(dns::OfferedLoad{
        schedule_.attack_pps_at(ip, window),
        schedule_.link_utilisation_at(ip, window),
    });
  }

  // Per-measurement RNG stream: independent of sweep order.
  netsim::Rng rng(netsim::mix64(
      params_.seed ^ netsim::mix64(static_cast<std::uint64_t>(domain)) ^
      netsim::mix64(static_cast<std::uint64_t>(t.seconds())) ^
      netsim::mix64(salt + 0x5bd1e995u)));

  const dns::Resolution res =
      resolver_.resolve(rng, servers, loads, params_.model, t);

  Measurement m;
  m.time = t;
  m.domain = domain;
  m.nsset = nsset;
  m.status = res.status;
  m.rtt_ms = res.rtt_ms;
  m.chosen_ns = res.chosen_ns;
  record_measurement(m);
  return m;
}

}  // namespace ddos::openintel
