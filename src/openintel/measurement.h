// The unit record produced by the active measurement platform: one
// NS-query resolution of one registered domain, with the fields OpenINTEL
// stores (§3.2) — timestamp, RTT, response status — plus the compact ids
// our pipeline joins on.
#pragma once

#include "dns/records.h"
#include "dns/registry.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"

namespace ddos::openintel {

struct Measurement {
  netsim::SimTime time;
  dns::DomainId domain = 0;
  dns::NssetId nsset = dns::kInvalidNsset;
  dns::ResponseStatus status = dns::ResponseStatus::Timeout;
  double rtt_ms = 0.0;
  /// The agnostically chosen first nameserver (unbound's random pick);
  /// the platform cannot know which server finally answered (§3.2), but it
  /// does know which address it addressed first.
  netsim::IPv4Addr chosen_ns;

  bool answered() const {
    return status == dns::ResponseStatus::Ok ||
           status == dns::ResponseStatus::ServFail;
  }
};

}  // namespace ddos::openintel
