// MeasurementStore — streaming aggregation of sweeper output into the two
// granularities the paper's method needs (§4.1):
//
//   * per-(NSSet, day) aggregates — the previous-day RTT baseline in the
//     Impact_on_RTT denominator, and the per-day nameserver-seen sets used
//     by the previous-day join (§4.2);
//   * per-(NSSet, 5-minute-window) aggregates — domains measured, mean /
//     min / max RTT, and error counts (timeout, SERVFAIL), the numerator.
//
// Raw measurements are never retained: a 17-month sweep of a few hundred
// thousand domains produces ~10^8 records, so the store folds each into
// O(1) state on ingest. The fold tables are open-addressing FlatMaps — the
// fold is the single hottest call in the pipeline, and flat probing plus
// the batched ingest below keep it at memory bandwidth. Window-level state
// for quiet periods is pruned by `finalize_day` with a caller-supplied
// keep-predicate (the longitudinal driver keeps only windows overlapping
// inferred attacks).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "openintel/measurement.h"
#include "util/flat_map.h"
#include "util/radix.h"
#include "util/stats.h"

namespace ddos::openintel {

struct Aggregate {
  std::uint32_t measured = 0;   // resolutions attempted
  std::uint32_t ok = 0;
  std::uint32_t timeout = 0;
  std::uint32_t servfail = 0;
  util::RunningStats rtt;       // over answered queries (OK + SERVFAIL)

  std::uint32_t errors() const { return timeout + servfail; }
  double failure_rate() const {
    return measured ? static_cast<double>(errors()) / measured : 0.0;
  }
  double avg_rtt() const { return rtt.mean(); }

  void fold(const Measurement& m);
  void merge(const Aggregate& other);
};

/// Retention policy accepting everything — the default `add_batch` hook.
/// Policies are plain structs resolved at compile time, so the fold loop
/// carries no type-erased std::function calls (the longitudinal driver
/// passes a key-set-backed policy; see scenario/driver.cpp).
struct KeepAll {
  static constexpr bool daily(dns::NssetId, netsim::DayIndex) { return true; }
  static constexpr bool window(dns::NssetId, netsim::WindowIndex) {
    return true;
  }
  static constexpr bool ns_seen(netsim::IPv4Addr, netsim::DayIndex) {
    return true;
  }
};

class MeasurementStore {
 public:
  /// Retention predicates for long runs. When set, add() only folds state
  /// the predicate accepts; unset (default) keeps everything. The
  /// longitudinal driver derives these from the attack schedule: daily
  /// baselines for attack-adjacent days, window aggregates inside attack
  /// windows, seen-NS sets for days preceding an attack on that server.
  /// (The batched ingest path takes a devirtualized policy instead —
  /// prefer add_batch on hot paths.)
  using DailyKeep = std::function<bool(dns::NssetId, netsim::DayIndex)>;
  using WindowKeep = std::function<bool(dns::NssetId, netsim::WindowIndex)>;
  using NsSeenKeep = std::function<bool(netsim::IPv4Addr, netsim::DayIndex)>;

  void set_retention(DailyKeep daily_keep, WindowKeep window_keep,
                     NsSeenKeep ns_seen_keep) {
    daily_keep_ = std::move(daily_keep);
    window_keep_ = std::move(window_keep);
    ns_seen_keep_ = std::move(ns_seen_keep);
  }

  /// Ingest one measurement (updates daily, window and seen-NS state).
  void add(const Measurement& m);

  /// Batched ingest: fold a whole span with one table probe per distinct
  /// key, issued in table-slot order. Measurements are grouped with a
  /// stable radix sort on the hash prefix of their (nsset, day) /
  /// (nsset, window) key — see fold_runs for why that both deduplicates
  /// probes and makes them sequential — and within a key the fold order is
  /// the arrival order, so the resulting state is bit-for-bit identical to
  /// per-measurement add(). `keep` is a compile-time retention policy
  /// (KeepAll, or a key-set-backed struct); the std::function retention
  /// predicates are NOT consulted on this path.
  ///
  /// Retention placement follows key cardinality. Daily keys repeat
  /// heavily inside a batch (every domain of an nsset swept that day
  /// shares one key), so the daily policy is evaluated once per key-run —
  /// the policies are pure functions of the key — instead of once per
  /// measurement. Window and (ns, day) keys are near-distinct within a
  /// batch, so per-run evaluation would buy nothing; those filters run
  /// inline while building the scratch, and only the kept subset is
  /// sorted.
  template <typename Keep = KeepAll>
  void add_batch(std::span<const Measurement> batch, const Keep& keep = {}) {
    total_ += batch.size();

    // --- daily table: group all, retention-check per run, fold kept runs.
    keyed_scratch_.clear();
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      const Measurement& m = batch[i];
      keyed_scratch_.emplace_back(
          daily_.hash_of(day_key(m.nsset, m.time.day())) >> 32, i);
    }
    fold_runs(
        daily_, batch,
        [](const Measurement& m) { return day_key(m.nsset, m.time.day()); },
        [&keep](const Measurement& m) {
          return keep.daily(m.nsset, m.time.day());
        });

    // --- window table: filter inline, group the kept subset.
    keyed_scratch_.clear();
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      const Measurement& m = batch[i];
      const netsim::WindowIndex window = m.time.window();
      if (keep.window(m.nsset, window)) {
        keyed_scratch_.emplace_back(
            window_.hash_of(window_key(m.nsset, window)) >> 32, i);
      }
    }
    fold_runs(
        window_, batch,
        [](const Measurement& m) {
          return window_key(m.nsset, m.time.window());
        },
        [](const Measurement&) constexpr { return true; });

    // --- seen-NS sets (content-only, so only the first measurement of
    //     each kept (ns, day) run has to touch the set at all).
    keyed_scratch_.clear();
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      const Measurement& m = batch[i];
      const netsim::DayIndex day = m.time.day();
      if (m.answered() && keep.ns_seen(m.chosen_ns, day)) {
        keyed_scratch_.emplace_back(
            (static_cast<std::uint64_t>(m.chosen_ns.value()) << 32) |
                static_cast<std::uint32_t>(day),
            i);
      }
    }
    util::radix_sort_keyed(keyed_scratch_, radix_scratch_);
    std::uint64_t run_key = 0;
    bool have_run = false;
    for (const auto& [key, idx] : keyed_scratch_) {
      if (have_run && key == run_key) continue;
      have_run = true;
      run_key = key;
      const Measurement& m = batch[idx];
      ns_seen_[m.time.day()].insert(m.chosen_ns);
    }
  }

  /// Daily aggregate for (nsset, day); nullptr when nothing measured.
  const Aggregate* daily(dns::NssetId nsset, netsim::DayIndex day) const;
  /// Convenience: previous-day average RTT, 0.0 when absent.
  double daily_avg_rtt(dns::NssetId nsset, netsim::DayIndex day) const;

  /// Window aggregate for (nsset, window); nullptr when nothing measured
  /// or pruned by finalize_day.
  const Aggregate* window(dns::NssetId nsset,
                          netsim::WindowIndex window) const;

  /// Was `ns` successfully queried (answered at least once as the chosen
  /// server) on `day`? Drives the previous-day nameserver join.
  bool ns_seen_on(netsim::IPv4Addr ns, netsim::DayIndex day) const;
  std::size_t ns_seen_count(netsim::DayIndex day) const;

  /// Prune window aggregates of `day` that the predicate rejects. Call
  /// after each swept day in long runs to bound memory.
  void finalize_day(netsim::DayIndex day,
                    const std::function<bool(dns::NssetId,
                                             netsim::WindowIndex)>& keep);

  std::size_t window_entries() const { return window_.size(); }
  std::size_t daily_entries() const { return daily_.size(); }
  std::uint64_t total_measurements() const { return total_; }

  // ---- persistence hooks (the DRS dataset store). Snapshots are sorted
  //      by key so the serialised bytes are deterministic; restore_*
  //      bypasses the retention predicates (the generating run already
  //      applied them).

  /// (key, aggregate) pairs of the daily map, ascending by key.
  std::vector<std::pair<std::uint64_t, Aggregate>> sorted_daily() const;
  /// (key, aggregate) pairs of the window map, ascending by key.
  std::vector<std::pair<std::uint64_t, Aggregate>> sorted_window() const;
  /// (day, ns-ip) pairs of the seen-NS sets, ascending by (day, ip).
  std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>> sorted_ns_seen()
      const;

  /// Size the tables before a restore loop so loads probe into final-size
  /// tables instead of rehashing O(log n) times (counts come from the DRS
  /// column row counts).
  void reserve_daily(std::size_t additional) {
    daily_.reserve(daily_.size() + additional);
  }
  void reserve_window(std::size_t additional) {
    window_.reserve(window_.size() + additional);
  }
  void reserve_ns_seen(netsim::DayIndex day, std::size_t additional) {
    auto& ips = ns_seen_[day];
    ips.reserve(ips.size() + additional);
  }

  void restore_daily(std::uint64_t key, const Aggregate& agg) {
    daily_.insert_or_assign(key, agg);
  }
  void restore_window(std::uint64_t key, const Aggregate& agg) {
    window_.insert_or_assign(key, agg);
  }
  void restore_ns_seen(netsim::DayIndex day, netsim::IPv4Addr ns) {
    ns_seen_[day].insert(ns);
  }
  /// Restore the add() counter (a loaded store never saw the adds).
  void set_total_measurements(std::uint64_t total) { total_ = total; }

  /// Public key builders so persistence can decompose/rebuild map keys.
  static std::uint64_t make_day_key(dns::NssetId nsset,
                                    netsim::DayIndex day) {
    return day_key(nsset, day);
  }
  static std::uint64_t make_window_key(dns::NssetId nsset,
                                       netsim::WindowIndex window) {
    return window_key(nsset, window);
  }
  static dns::NssetId key_nsset(std::uint64_t key) {
    return static_cast<dns::NssetId>(static_cast<std::uint32_t>(key));
  }
  static netsim::DayIndex day_key_day(std::uint64_t key) {
    return static_cast<netsim::DayIndex>(
               static_cast<std::uint32_t>(key >> 32)) -
           kDayBias;
  }
  static netsim::WindowIndex window_key_window(std::uint64_t key) {
    return static_cast<netsim::WindowIndex>(
               static_cast<std::uint32_t>(key >> 32)) -
           kDayBias * netsim::kWindowsPerDay;
  }

  /// Sorted rows of every day strictly below `day`, extracted for the
  /// streaming pipeline's epoch retirement (scenario driver). Because the
  /// map keys are time-major, each retired chunk — and the concatenation
  /// of chunks across ascending retire calls — is in the same ascending
  /// key order that sorted_daily()/sorted_window()/sorted_ns_seen() would
  /// produce on a never-evicted store, which is what keeps the streamed
  /// DRS file byte-identical to the materialized one.
  struct RetiredState {
    std::vector<std::pair<std::uint64_t, Aggregate>> daily;
    std::vector<std::pair<std::uint64_t, Aggregate>> window;
    std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>> ns_seen;
  };
  RetiredState retire_days_below(netsim::DayIndex day);

 private:
  // Map keys are time-major — (biased time) << 32 | nsset — so that
  // ascending key order is ascending day/window order and day-window
  // eviction can peel a sorted prefix. The bias keeps negative indices
  // (the day −1 pre-study baseline) ordered under the unsigned cast;
  // valid days are (−kDayBias, 2^32 − kDayBias), far beyond any timeline.
  static constexpr netsim::DayIndex kDayBias = netsim::DayIndex{1} << 20;

  static std::uint64_t day_key(dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(day + kDayBias))
            << 32) |
           static_cast<std::uint64_t>(nsset);
  }
  static std::uint64_t window_key(dns::NssetId nsset,
                                  netsim::WindowIndex window) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                window + kDayBias * netsim::kWindowsPerDay))
            << 32) |
           static_cast<std::uint64_t>(nsset);
  }

  /// Fold the scratch's (hash-prefix, index) pairs into `table`, one
  /// try_emplace per key-run. The scratch is sorted by hash prefix — the
  /// top 32 bits of the key's own table hash — which has two payoffs:
  ///
  ///   * equal keys are adjacent (equal key ⇒ equal hash), so each
  ///     distinct key costs one probe and one retention check;
  ///   * the table places entries by hash high bits, so probing in
  ///     hash-prefix order walks the slot array monotonically — sequential
  ///     memory traffic instead of a random hop per key when the table
  ///     outgrows cache.
  ///
  /// The sort is stable, so within a key the indices stay in batch order
  /// and the fold sequence matches per-measurement add() bit for bit.
  /// Distinct keys sharing a 32-bit hash prefix may interleave; the
  /// key-change test below just re-probes at each boundary, preserving
  /// order (the policies are pure, so re-evaluating keep is harmless).
  /// `key_fn` recomputes a measurement's table key (the scratch holds the
  /// hash, not the key); `keep_run` is the retention policy, evaluated at
  /// run boundaries only. The slot pointer is safe across a run:
  /// try_emplace may rehash, but only at a run boundary, and the pointer
  /// is re-fetched there.
  template <typename KeyFn, typename KeepRun>
  void fold_runs(util::FlatMap<std::uint64_t, Aggregate>& table,
                 std::span<const Measurement> batch, const KeyFn& key_fn,
                 const KeepRun& keep_run) {
    if (keyed_scratch_.empty()) return;
    util::radix_sort_keyed(keyed_scratch_, radix_scratch_);
    Aggregate* slot = nullptr;
    std::uint64_t run_key = 0;
    bool have_run = false;
    for (const auto& [prefix, idx] : keyed_scratch_) {
      const std::uint64_t key = key_fn(batch[idx]);
      if (!have_run || key != run_key) {
        have_run = true;
        run_key = key;
        slot = keep_run(batch[idx]) ? table.try_emplace(key).first : nullptr;
      }
      if (slot) slot->fold(batch[idx]);
    }
  }

  DailyKeep daily_keep_;
  WindowKeep window_keep_;
  NsSeenKeep ns_seen_keep_;
  util::FlatMap<std::uint64_t, Aggregate> daily_;
  util::FlatMap<std::uint64_t, Aggregate> window_;
  util::FlatMap<netsim::DayIndex, util::FlatSet<netsim::IPv4Addr>> ns_seen_;
  std::uint64_t total_ = 0;
  // Batch-ingest scratch, reused across add_batch calls.
  std::vector<util::KeyedIndex> keyed_scratch_;
  std::vector<util::KeyedIndex> radix_scratch_;
};

}  // namespace ddos::openintel
