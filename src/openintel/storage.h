// MeasurementStore — streaming aggregation of sweeper output into the two
// granularities the paper's method needs (§4.1):
//
//   * per-(NSSet, day) aggregates — the previous-day RTT baseline in the
//     Impact_on_RTT denominator, and the per-day nameserver-seen sets used
//     by the previous-day join (§4.2);
//   * per-(NSSet, 5-minute-window) aggregates — domains measured, mean /
//     min / max RTT, and error counts (timeout, SERVFAIL), the numerator.
//
// Raw measurements are never retained: a 17-month sweep of a few hundred
// thousand domains produces ~10^8 records, so the store folds each into
// O(1) state on ingest. Window-level state for quiet periods is pruned by
// `finalize_day` with a caller-supplied keep-predicate (the longitudinal
// driver keeps only windows overlapping inferred attacks).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "openintel/measurement.h"
#include "util/stats.h"

namespace ddos::openintel {

struct Aggregate {
  std::uint32_t measured = 0;   // resolutions attempted
  std::uint32_t ok = 0;
  std::uint32_t timeout = 0;
  std::uint32_t servfail = 0;
  util::RunningStats rtt;       // over answered queries (OK + SERVFAIL)

  std::uint32_t errors() const { return timeout + servfail; }
  double failure_rate() const {
    return measured ? static_cast<double>(errors()) / measured : 0.0;
  }
  double avg_rtt() const { return rtt.mean(); }

  void fold(const Measurement& m);
  void merge(const Aggregate& other);
};

class MeasurementStore {
 public:
  /// Retention predicates for long runs. When set, add() only folds state
  /// the predicate accepts; unset (default) keeps everything. The
  /// longitudinal driver derives these from the attack schedule: daily
  /// baselines for attack-adjacent days, window aggregates inside attack
  /// windows, seen-NS sets for days preceding an attack on that server.
  using DailyKeep = std::function<bool(dns::NssetId, netsim::DayIndex)>;
  using WindowKeep = std::function<bool(dns::NssetId, netsim::WindowIndex)>;
  using NsSeenKeep = std::function<bool(netsim::IPv4Addr, netsim::DayIndex)>;

  void set_retention(DailyKeep daily_keep, WindowKeep window_keep,
                     NsSeenKeep ns_seen_keep) {
    daily_keep_ = std::move(daily_keep);
    window_keep_ = std::move(window_keep);
    ns_seen_keep_ = std::move(ns_seen_keep);
  }

  /// Ingest one measurement (updates daily, window and seen-NS state).
  void add(const Measurement& m);

  /// Daily aggregate for (nsset, day); nullptr when nothing measured.
  const Aggregate* daily(dns::NssetId nsset, netsim::DayIndex day) const;
  /// Convenience: previous-day average RTT, 0.0 when absent.
  double daily_avg_rtt(dns::NssetId nsset, netsim::DayIndex day) const;

  /// Window aggregate for (nsset, window); nullptr when nothing measured
  /// or pruned by finalize_day.
  const Aggregate* window(dns::NssetId nsset,
                          netsim::WindowIndex window) const;

  /// Was `ns` successfully queried (answered at least once as the chosen
  /// server) on `day`? Drives the previous-day nameserver join.
  bool ns_seen_on(netsim::IPv4Addr ns, netsim::DayIndex day) const;
  std::size_t ns_seen_count(netsim::DayIndex day) const;

  /// Prune window aggregates of `day` that the predicate rejects. Call
  /// after each swept day in long runs to bound memory.
  void finalize_day(netsim::DayIndex day,
                    const std::function<bool(dns::NssetId,
                                             netsim::WindowIndex)>& keep);

  std::size_t window_entries() const { return window_.size(); }
  std::size_t daily_entries() const { return daily_.size(); }
  std::uint64_t total_measurements() const { return total_; }

  // ---- persistence hooks (the DRS dataset store). Snapshots are sorted
  //      by key so the serialised bytes are deterministic; restore_*
  //      bypasses the retention predicates (the generating run already
  //      applied them).

  /// (key, aggregate) pairs of the daily map, ascending by key.
  std::vector<std::pair<std::uint64_t, Aggregate>> sorted_daily() const;
  /// (key, aggregate) pairs of the window map, ascending by key.
  std::vector<std::pair<std::uint64_t, Aggregate>> sorted_window() const;
  /// (day, ns-ip) pairs of the seen-NS sets, ascending by (day, ip).
  std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>> sorted_ns_seen()
      const;

  void restore_daily(std::uint64_t key, const Aggregate& agg) {
    daily_[key] = agg;
  }
  void restore_window(std::uint64_t key, const Aggregate& agg) {
    window_[key] = agg;
  }
  void restore_ns_seen(netsim::DayIndex day, netsim::IPv4Addr ns) {
    ns_seen_[day].insert(ns);
  }
  /// Restore the add() counter (a loaded store never saw the adds).
  void set_total_measurements(std::uint64_t total) { total_ = total; }

  /// Public key builders so persistence can decompose/rebuild map keys.
  static std::uint64_t make_day_key(dns::NssetId nsset,
                                    netsim::DayIndex day) {
    return day_key(nsset, day);
  }
  static std::uint64_t make_window_key(dns::NssetId nsset,
                                       netsim::WindowIndex window) {
    return window_key(nsset, window);
  }

 private:
  static std::uint64_t day_key(dns::NssetId nsset, netsim::DayIndex day) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(day);
  }
  static std::uint64_t window_key(dns::NssetId nsset,
                                  netsim::WindowIndex window) {
    return (static_cast<std::uint64_t>(nsset) << 32) |
           static_cast<std::uint32_t>(window);
  }

  DailyKeep daily_keep_;
  WindowKeep window_keep_;
  NsSeenKeep ns_seen_keep_;
  std::unordered_map<std::uint64_t, Aggregate> daily_;
  std::unordered_map<std::uint64_t, Aggregate> window_;
  std::unordered_map<netsim::DayIndex,
                     std::unordered_set<netsim::IPv4Addr>>
      ns_seen_;
  std::uint64_t total_ = 0;
};

}  // namespace ddos::openintel
