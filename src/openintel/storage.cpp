#include "openintel/storage.h"

#include <algorithm>

namespace ddos::openintel {

void Aggregate::fold(const Measurement& m) {
  ++measured;
  switch (m.status) {
    case dns::ResponseStatus::Ok:
      ++ok;
      rtt.add(m.rtt_ms);
      break;
    case dns::ResponseStatus::ServFail:
      ++servfail;
      rtt.add(m.rtt_ms);
      break;
    case dns::ResponseStatus::Timeout:
      ++timeout;
      break;
    case dns::ResponseStatus::NxDomain:
      // Not an infrastructure failure; counted as measured only.
      break;
  }
}

void Aggregate::merge(const Aggregate& other) {
  measured += other.measured;
  ok += other.ok;
  timeout += other.timeout;
  servfail += other.servfail;
  rtt.merge(other.rtt);
}

void MeasurementStore::add(const Measurement& m) {
  ++total_;
  const netsim::DayIndex day = m.time.day();
  const netsim::WindowIndex window = m.time.window();
  if (!daily_keep_ || daily_keep_(m.nsset, day)) {
    daily_[day_key(m.nsset, day)].fold(m);
  }
  if (!window_keep_ || window_keep_(m.nsset, window)) {
    window_[window_key(m.nsset, window)].fold(m);
  }
  if (m.answered() && (!ns_seen_keep_ || ns_seen_keep_(m.chosen_ns, day))) {
    ns_seen_[day].insert(m.chosen_ns);
  }
}

const Aggregate* MeasurementStore::daily(dns::NssetId nsset,
                                         netsim::DayIndex day) const {
  return daily_.find(day_key(nsset, day));
}

double MeasurementStore::daily_avg_rtt(dns::NssetId nsset,
                                       netsim::DayIndex day) const {
  const Aggregate* agg = daily(nsset, day);
  return agg ? agg->avg_rtt() : 0.0;
}

const Aggregate* MeasurementStore::window(dns::NssetId nsset,
                                          netsim::WindowIndex window) const {
  return window_.find(window_key(nsset, window));
}

bool MeasurementStore::ns_seen_on(netsim::IPv4Addr ns,
                                  netsim::DayIndex day) const {
  const util::FlatSet<netsim::IPv4Addr>* ips = ns_seen_.find(day);
  return ips && ips->contains(ns);
}

std::size_t MeasurementStore::ns_seen_count(netsim::DayIndex day) const {
  const util::FlatSet<netsim::IPv4Addr>* ips = ns_seen_.find(day);
  return ips ? ips->size() : 0;
}

void MeasurementStore::finalize_day(
    netsim::DayIndex day,
    const std::function<bool(dns::NssetId, netsim::WindowIndex)>& keep) {
  const netsim::WindowIndex first = day * netsim::kWindowsPerDay;
  const netsim::WindowIndex last = first + netsim::kWindowsPerDay - 1;
  window_.erase_if([&](std::uint64_t key, const Aggregate&) {
    const netsim::WindowIndex window = window_key_window(key);
    return window >= first && window <= last && !keep(key_nsset(key), window);
  });
}

MeasurementStore::RetiredState MeasurementStore::retire_days_below(
    netsim::DayIndex day) {
  RetiredState out;
  // Clamp to the biased key domain first: callers may pass sentinel day
  // cuts (the shard driver's outer shards retire below an int64 min/max
  // bound), which must mean "retire nothing" / "retire everything" — not
  // whatever the u32 bias cast happens to wrap them to. The window keys
  // have the narrower domain (day * windows-per-day must fit the 32-bit
  // biased field), so both limits clamp to it.
  constexpr netsim::DayIndex kMinDay = -kDayBias;
  constexpr netsim::DayIndex kMaxDay =
      (netsim::DayIndex{1} << 32) / netsim::kWindowsPerDay - kDayBias;
  const netsim::DayIndex bound = std::clamp(day, kMinDay, kMaxDay);
  // Time-major keys make "every key of a day below `bound`" a simple key
  // comparison: the nsset occupies the low 32 bits, so the smallest key of
  // day `bound` (nsset 0) bounds all earlier days from above.
  const std::uint64_t daily_limit =
      bound == kMaxDay ? ~std::uint64_t{0} : day_key(dns::NssetId{0}, bound);
  const std::uint64_t window_limit =
      bound == kMaxDay
          ? ~std::uint64_t{0}
          : window_key(dns::NssetId{0}, bound * netsim::kWindowsPerDay);

  daily_.for_each([&](std::uint64_t key, const Aggregate& agg) {
    if (key < daily_limit) out.daily.emplace_back(key, agg);
  });
  window_.for_each([&](std::uint64_t key, const Aggregate& agg) {
    if (key < window_limit) out.window.emplace_back(key, agg);
  });
  ns_seen_.for_each([&](netsim::DayIndex d,
                        const util::FlatSet<netsim::IPv4Addr>& ips) {
    if (d < day) {
      ips.for_each(
          [&out, d](netsim::IPv4Addr ip) { out.ns_seen.emplace_back(d, ip); });
    }
  });
  // for_each walks slot order (insertion-history dependent); sorting makes
  // each retired chunk deterministic regardless of ingest interleaving.
  const auto by_key = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(out.daily.begin(), out.daily.end(), by_key);
  std::sort(out.window.begin(), out.window.end(), by_key);
  std::sort(out.ns_seen.begin(), out.ns_seen.end());

  daily_.erase_if([&](std::uint64_t key, const Aggregate&) {
    return key < daily_limit;
  });
  window_.erase_if([&](std::uint64_t key, const Aggregate&) {
    return key < window_limit;
  });
  ns_seen_.erase_if(
      [&](netsim::DayIndex d, const util::FlatSet<netsim::IPv4Addr>&) {
        return d < day;
      });
  return out;
}

std::vector<std::pair<std::uint64_t, Aggregate>>
MeasurementStore::sorted_daily() const {
  return daily_.sorted_items();
}

std::vector<std::pair<std::uint64_t, Aggregate>>
MeasurementStore::sorted_window() const {
  return window_.sorted_items();
}

std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>>
MeasurementStore::sorted_ns_seen() const {
  std::vector<std::pair<netsim::DayIndex, netsim::IPv4Addr>> out;
  ns_seen_.for_each(
      [&out](netsim::DayIndex day, const util::FlatSet<netsim::IPv4Addr>& ips) {
        ips.for_each(
            [&out, day](netsim::IPv4Addr ip) { out.emplace_back(day, ip); });
      });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ddos::openintel
