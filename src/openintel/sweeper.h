// Daily sweeper — the OpenINTEL measurement loop (§3.2): every registered
// domain is queried once per day via the agnostic resolver; the query's
// 5-minute window within the day is a stable pseudo-random function of
// (domain, day), spreading platform load across the day exactly like the
// production system does.
//
// Everything is deterministic in the seed: the same (registry, schedule,
// seed) triple reproduces the same seventeen months of measurements.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/schedule.h"
#include "exec/parallel.h"
#include "dns/load_model.h"
#include "dns/registry.h"
#include "dns/resolver.h"
#include "openintel/measurement.h"

namespace ddos::openintel {

struct SweeperParams {
  dns::ResolverParams resolver;
  dns::LoadModelParams model;
  std::uint64_t seed = 1;
};

class Sweeper {
 public:
  Sweeper(const dns::DnsRegistry& registry,
          const attack::AttackSchedule& schedule, SweeperParams params);

  /// The window-of-day in which `domain` is measured on `day` (stable).
  netsim::SimTime measurement_time(dns::DomainId domain,
                                   netsim::DayIndex day) const;

  /// Perform one measurement of `domain` at time `t` under the schedule's
  /// loads. Deterministic in (seed, domain, t).
  Measurement measure(dns::DomainId domain, netsim::SimTime t) const;

  /// Sweep one calendar day; invokes `sink(const Measurement&)` once per
  /// domain in id order.
  template <typename Sink>
  void sweep_day(netsim::DayIndex day, Sink&& sink) const {
    for (dns::DomainId d = registry_.first_domain(); d < registry_.end_domain();
         ++d) {
      sink(measure(d, measurement_time(d, day)));
    }
  }

  /// Sweep only a subset of domains for one day — the sparse-sweep path of
  /// the longitudinal driver, which skips domains whose measurements no
  /// later analysis can consume. Statistically identical to sweep_day for
  /// the retained keys because measurements are independent and their
  /// times/randomness depend only on (seed, domain, day).
  template <typename Sink>
  void sweep_domains(netsim::DayIndex day,
                     std::span<const dns::DomainId> domains,
                     Sink&& sink) const {
    for (const dns::DomainId d : domains) {
      sink(measure(d, measurement_time(d, day)));
    }
  }

  /// Parallel variant: shards `domains` over `pool` workers (each
  /// measurement already has its own (seed, domain, day)-keyed RNG stream)
  /// and invokes `sink` on the calling thread in exact domain order, so
  /// the output is bit-identical to the sequential overload for any
  /// thread count.
  template <typename Sink>
  void sweep_domains(netsim::DayIndex day,
                     std::span<const dns::DomainId> domains,
                     exec::WorkerPool& pool, Sink&& sink) const {
    exec::RegionOptions opts;
    opts.label = "sweep.domains";
    opts.pool = &pool;
    exec::parallel_map_reduce(
        domains.size(), opts, std::size_t{0},
        [&](const exec::ShardRange& range) {
          std::vector<Measurement> out;
          out.reserve(range.size());
          for (std::size_t i = range.begin; i < range.end; ++i) {
            const dns::DomainId d = domains[i];
            out.push_back(measure(d, measurement_time(d, day)));
          }
          return out;
        },
        [&](std::size_t& total, std::vector<Measurement>&& shard) {
          for (const Measurement& m : shard) sink(m);
          total += shard.size();
        });
  }

  /// Batch-oriented parallel variant: like the pooled sweep_domains, but
  /// the sink receives each shard's measurements as one contiguous span
  /// (still on the calling thread, still in exact domain order) so the
  /// store can fold them with its batched, group-by-key ingest instead of
  /// one probe per measurement.
  template <typename BatchSink>
  void sweep_domains_batched(netsim::DayIndex day,
                             std::span<const dns::DomainId> domains,
                             exec::WorkerPool& pool, BatchSink&& sink) const {
    exec::RegionOptions opts;
    opts.label = "sweep.domains";
    opts.pool = &pool;
    exec::parallel_map_reduce(
        domains.size(), opts, std::size_t{0},
        [&](const exec::ShardRange& range) {
          std::vector<Measurement> out;
          out.reserve(range.size());
          for (std::size_t i = range.begin; i < range.end; ++i) {
            const dns::DomainId d = domains[i];
            out.push_back(measure(d, measurement_time(d, day)));
          }
          return out;
        },
        [&](std::size_t& total, std::vector<Measurement>&& shard) {
          sink(std::span<const Measurement>(shard));
          total += shard.size();
        });
  }

  /// Measure one domain repeatedly at a fixed time (probe bursts for the
  /// reactive platform); attempt index decorrelates the randomness.
  Measurement measure_with_salt(dns::DomainId domain, netsim::SimTime t,
                                std::uint64_t salt) const;

  /// NS-exhaustive measurement (§9 future work): query *every* nameserver
  /// of the domain individually instead of unbound's single agnostic pick.
  /// This is what "will provide a more effective indication of whether and
  /// how end users experience resolution failure" — per-server behaviour
  /// becomes observable instead of being averaged away.
  struct NsOutcome {
    netsim::IPv4Addr ns;
    dns::ResponseStatus status = dns::ResponseStatus::Timeout;
    double rtt_ms = 0.0;  // valid when answered
  };
  std::vector<NsOutcome> measure_exhaustive(dns::DomainId domain,
                                            netsim::SimTime t) const;

  const dns::DnsRegistry& registry() const { return registry_; }
  const SweeperParams& params() const { return params_; }

 private:
  const dns::DnsRegistry& registry_;
  const attack::AttackSchedule& schedule_;
  SweeperParams params_;
  dns::AgnosticResolver resolver_;
};

}  // namespace ddos::openintel
