#include "anycast/census.h"

#include <algorithm>

#include "netsim/rng.h"

namespace ddos::anycast {

const char* to_string(AnycastClass c) {
  switch (c) {
    case AnycastClass::None: return "unicast";
    case AnycastClass::Partial: return "partial-anycast";
    case AnycastClass::Full: return "anycast";
  }
  return "unknown";
}

void AnycastCensus::add_snapshot(CensusSnapshot snapshot) {
  snapshots_.push_back(std::move(snapshot));
  std::sort(snapshots_.begin(), snapshots_.end(),
            [](const CensusSnapshot& a, const CensusSnapshot& b) {
              return a.taken_day < b.taken_day;
            });
}

const CensusSnapshot* AnycastCensus::snapshot_for(
    netsim::DayIndex day) const {
  if (snapshots_.empty()) return nullptr;
  const CensusSnapshot* best = &snapshots_.front();
  for (const auto& s : snapshots_) {
    if (s.taken_day <= day) best = &s;
  }
  return best;
}

bool AnycastCensus::is_anycast(netsim::IPv4Addr ip,
                               netsim::DayIndex day) const {
  const CensusSnapshot* snap = snapshot_for(day);
  return snap && snap->anycast_slash24.contains(ip.slash24());
}

AnycastClass AnycastCensus::classify(
    const std::vector<netsim::IPv4Addr>& ips, netsim::DayIndex day) const {
  if (ips.empty()) return AnycastClass::None;
  std::size_t hits = 0;
  for (const auto& ip : ips) {
    if (is_anycast(ip, day)) ++hits;
  }
  if (hits == 0) return AnycastClass::None;
  if (hits == ips.size()) return AnycastClass::Full;
  return AnycastClass::Partial;
}

AnycastCensus AnycastCensus::from_registry(
    const dns::DnsRegistry& registry,
    const std::vector<netsim::DayIndex>& days, double recall,
    std::uint64_t seed) {
  AnycastCensus census;
  for (const netsim::DayIndex day : days) {
    CensusSnapshot snap;
    snap.taken_day = day;
    for (const auto& ip : registry.all_ns_ips()) {
      if (!registry.has_nameserver(ip)) continue;
      if (!registry.nameserver(ip).anycast()) continue;
      const netsim::IPv4Addr net = ip.slash24();
      // Stable detection draw per (/24, snapshot): a missed /24 stays
      // missed within the snapshot; across snapshots detection varies
      // (the census improves and regresses between quarters).
      const std::uint64_t h = netsim::mix64(
          seed ^ (static_cast<std::uint64_t>(net.value()) << 16) ^
          static_cast<std::uint64_t>(day));
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u < recall) snap.anycast_slash24.insert(net);
    }
    census.add_snapshot(std::move(snap));
  }
  return census;
}

AnycastCensus AnycastCensus::from_probing(
    const dns::DnsRegistry& registry,
    const std::vector<netsim::DayIndex>& days, std::uint32_t vantage_count,
    std::uint64_t seed) {
  AnycastCensus census;
  for (const netsim::DayIndex day : days) {
    CensusSnapshot snap;
    snap.taken_day = day;
    // The campaign's vantage identities for this quarter (stable per
    // snapshot; quarters re-draw, as real measurement fleets churn).
    std::vector<std::uint64_t> vantage_ids;
    std::uint64_t vseed =
        netsim::mix64(seed ^ static_cast<std::uint64_t>(day) * 0x9E37u);
    for (std::uint32_t v = 0; v < vantage_count; ++v) {
      vantage_ids.push_back(netsim::splitmix64(vseed));
    }
    for (const auto& ip : registry.all_ns_ips()) {
      if (!registry.has_nameserver(ip)) continue;  // lame: nothing answers
      const dns::Nameserver& ns = registry.nameserver(ip);
      std::size_t first_site = 0;
      bool multiple = false;
      for (std::size_t v = 0; v < vantage_ids.size(); ++v) {
        const std::size_t site = ns.vantage_site(vantage_ids[v]);
        if (v == 0) first_site = site;
        else if (site != first_site) multiple = true;
      }
      if (multiple) snap.anycast_slash24.insert(ip.slash24());
    }
    census.add_snapshot(std::move(snap));
  }
  return census;
}

std::vector<netsim::DayIndex> paper_census_days() {
  std::vector<netsim::DayIndex> days;
  days.push_back(netsim::month_start_day(2021, 1));
  days.push_back(netsim::month_start_day(2021, 4));
  days.push_back(netsim::month_start_day(2021, 7));
  days.push_back(netsim::month_start_day(2021, 10));
  days.push_back(netsim::month_start_day(2022, 1));
  return days;
}

}  // namespace ddos::anycast
