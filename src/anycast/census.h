// Anycast census (§3.3) — quarterly snapshots of /24 subnets detected as
// anycast (the MAnycast2 methodology of Sommese et al. 2020). The paper
// matches authoritative NS IPs to census /24s and stresses the census is a
// *lower bound*: detection misses some anycast deployments. We model that
// with an explicit recall knob when deriving the census from ground truth.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "dns/registry.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"

namespace ddos::anycast {

struct CensusSnapshot {
  netsim::DayIndex taken_day = 0;
  /// /24 network addresses (x.y.z.0) detected as anycast.
  std::unordered_set<netsim::IPv4Addr> anycast_slash24;
};

/// How an NSSet is provisioned according to the census — the three bands of
/// Fig. 11.
enum class AnycastClass : std::uint8_t { None, Partial, Full };
const char* to_string(AnycastClass c);

class AnycastCensus {
 public:
  /// Snapshots may be added in any order; lookups use the latest snapshot
  /// taken on or before the query day (or the earliest one for days that
  /// precede all snapshots, as the paper does for Nov-Dec 2020).
  void add_snapshot(CensusSnapshot snapshot);

  std::size_t snapshot_count() const { return snapshots_.size(); }

  /// /24-granularity match, per the paper's join.
  bool is_anycast(netsim::IPv4Addr ip, netsim::DayIndex day) const;

  /// Classify a set of NS IPs on a given day.
  AnycastClass classify(const std::vector<netsim::IPv4Addr>& ips,
                        netsim::DayIndex day) const;

  /// Build a census from registry ground truth (a nameserver with multiple
  /// sites is anycast). `recall` in (0,1] is the detection probability per
  /// anycast /24 — the lower-bound property; sampling is stable per /24 and
  /// snapshot so quarters are internally consistent.
  static AnycastCensus from_registry(const dns::DnsRegistry& registry,
                                     const std::vector<netsim::DayIndex>& days,
                                     double recall, std::uint64_t seed);

  /// MAnycast2-style census (Sommese et al., IMC 2020): probe every NS
  /// address from `vantage_count` vantage points and flag the /24 as
  /// anycast when probes land on more than one site. The lower-bound
  /// property *emerges*: a deployment whose catchment funnels all chosen
  /// vantages to one site goes undetected — no recall knob needed.
  static AnycastCensus from_probing(const dns::DnsRegistry& registry,
                                    const std::vector<netsim::DayIndex>& days,
                                    std::uint32_t vantage_count,
                                    std::uint64_t seed);

 private:
  const CensusSnapshot* snapshot_for(netsim::DayIndex day) const;
  std::vector<CensusSnapshot> snapshots_;  // sorted by taken_day
};

/// The paper's census cadence: quarterly, January 2021 .. January 2022.
std::vector<netsim::DayIndex> paper_census_days();

}  // namespace ddos::anycast
