// TTL-bounded resolver cache (§2.2). The paper's OpenINTEL measurements
// deliberately bypass the cache for the first NS query per domain; we model
// the cache anyway because (a) additional queries may be served from it,
// (b) the end-user impact discussion (§6.3.1) hinges on cached popular
// domains weathering attacks, and (c) the reactive platform reuses it.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "dns/records.h"
#include "netsim/simtime.h"

namespace ddos::dns {

class Cache {
 public:
  /// `capacity` bounds the number of cached keys; oldest-expiry entries are
  /// evicted first when full.
  explicit Cache(std::size_t capacity = 1u << 20);

  /// Insert records under (owner, type); expiry = now + min TTL of the set.
  void put(const DomainName& owner, RRType type,
           std::vector<ResourceRecord> records, netsim::SimTime now);

  /// Lookup; expired entries are treated as absent (and pruned lazily).
  std::optional<std::vector<ResourceRecord>> get(const DomainName& owner,
                                                 RRType type,
                                                 netsim::SimTime now);

  /// Remaining TTL in seconds for a cached key, 0 when absent/expired.
  std::int64_t remaining_ttl(const DomainName& owner, RRType type,
                             netsim::SimTime now) const;

  /// Drop all entries whose expiry is <= now. Returns number removed.
  std::size_t purge_expired(netsim::SimTime now);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Key {
    DomainName owner;
    RRType type;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::vector<ResourceRecord> records;
    netsim::SimTime expiry;
  };

  void evict_one();

  std::size_t capacity_;
  std::map<Key, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ddos::dns
