#include "dns/zonefile.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace ddos::dns {

namespace {

// Dots in the address become dashes so the host is one label deep.
std::string lame_host_for(netsim::IPv4Addr ip) {
  std::string out = "ns-";
  for (const char c : ip.to_string()) out.push_back(c == '.' ? '-' : c);
  return out + ".lame.invalid";
}

}  // namespace

std::string export_zone_file(const DnsRegistry& registry,
                             std::string_view tld) {
  std::ostringstream out;
  out << "; zone export for ." << tld << " (delegations + glue)\n";

  // Collect glue as host -> addresses while writing NS records.
  std::map<std::string, std::vector<netsim::IPv4Addr>> glue;
  for (DomainId d = registry.first_domain(); d < registry.end_domain(); ++d) {
    const DomainName& name = registry.domain_name(d);
    if (name.tld() != tld) continue;
    const auto& key = registry.nsset_key(registry.nsset_of_domain(d));
    for (const auto& ip : key.ips) {
      std::string host;
      if (registry.has_nameserver(ip) &&
          !registry.nameserver(ip).hostname().empty()) {
        host = registry.nameserver(ip).hostname();
      } else {
        host = lame_host_for(ip);
      }
      out << name.str() << ". 3600 IN NS " << host << ".\n";
      auto& addrs = glue[host];
      if (std::find(addrs.begin(), addrs.end(), ip) == addrs.end()) {
        addrs.push_back(ip);
      }
    }
  }
  for (const auto& [host, addrs] : glue) {
    for (const auto& ip : addrs) {
      out << host << ". 3600 IN A " << ip.to_string() << "\n";
    }
  }
  return out.str();
}

std::optional<ParsedZone> parse_zone_file(std::string_view text) {
  ParsedZone zone;
  std::map<std::string, std::size_t> delegation_index;

  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = util::trim(text.substr(start, end - start));
    start = end + 1;
    if (line.empty() || line.front() == ';') {
      if (end == text.size()) break;
      continue;
    }

    // <owner>. <ttl> IN <type> <rdata>
    std::vector<std::string_view> fields;
    std::size_t fstart = 0;
    while (fstart < line.size()) {
      while (fstart < line.size() && line[fstart] == ' ') ++fstart;
      std::size_t fend = line.find(' ', fstart);
      if (fend == std::string_view::npos) fend = line.size();
      if (fend > fstart) fields.push_back(line.substr(fstart, fend - fstart));
      fstart = fend + 1;
    }
    if (fields.size() != 5) return std::nullopt;
    std::uint64_t ttl = 0;
    if (!util::parse_u64(fields[1], ttl)) return std::nullopt;
    if (!util::iequals(fields[2], "IN")) return std::nullopt;

    const auto owner = DomainName::parse(fields[0]);
    if (!owner) return std::nullopt;

    if (util::iequals(fields[3], "NS")) {
      auto host_name = DomainName::parse(fields[4]);
      if (!host_name) return std::nullopt;
      const std::string host = host_name->str();
      const auto it = delegation_index.find(owner->str());
      if (it == delegation_index.end()) {
        delegation_index[owner->str()] = zone.delegations.size();
        zone.delegations.push_back(
            ParsedZone::ZoneDelegation{*owner, {host}});
      } else {
        zone.delegations[it->second].ns_hosts.push_back(host);
      }
    } else if (util::iequals(fields[3], "A")) {
      const auto addr = netsim::IPv4Addr::parse(fields[4]);
      if (!addr) return std::nullopt;
      zone.glue[owner->str()].push_back(*addr);
    } else {
      return std::nullopt;  // outside the supported subset
    }
    if (end == text.size()) break;
  }
  return zone;
}

std::vector<std::pair<DomainName, std::vector<netsim::IPv4Addr>>>
ParsedZone::resolved_delegations() const {
  std::vector<std::pair<DomainName, std::vector<netsim::IPv4Addr>>> out;
  out.reserve(delegations.size());
  for (const auto& delegation : delegations) {
    std::vector<netsim::IPv4Addr> ips;
    for (const auto& host : delegation.ns_hosts) {
      const auto it = glue.find(host);
      if (it == glue.end()) continue;
      ips.insert(ips.end(), it->second.begin(), it->second.end());
    }
    std::sort(ips.begin(), ips.end());
    ips.erase(std::unique(ips.begin(), ips.end()), ips.end());
    out.emplace_back(delegation.domain, std::move(ips));
  }
  return out;
}

}  // namespace ddos::dns
