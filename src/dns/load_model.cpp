#include "dns/load_model.h"

#include <algorithm>

namespace ddos::dns {

double rtt_multiplier(double rho, const LoadModelParams& params,
                      InflationLaw law) {
  if (rho <= 0.0) return 1.0;
  double mult = 1.0;
  switch (law) {
    case InflationLaw::Queueing: {
      if (rho >= 1.0) {
        mult = params.max_inflation;
      } else {
        mult = 1.0 + params.kappa * rho / (1.0 - rho);
      }
      break;
    }
    case InflationLaw::Linear: {
      // Ablation comparator: latency grows proportionally with load and
      // never explodes — fails to reproduce the paper's 100x tail.
      mult = 1.0 + params.kappa * rho;
      break;
    }
  }
  return std::clamp(mult, 1.0, params.max_inflation);
}

double response_probability(double rho, const LoadModelParams& params) {
  if (rho <= params.loss_onset) return 1.0;
  if (rho >= 1.0) {
    // Saturated: the server answers at capacity (with the onset loss level
    // carried over so the curve is continuous at rho = 1); excess queries
    // are dropped.
    return std::max(0.0, 0.95 / rho);
  }
  // Transition region [loss_onset, 1): linear ramp from no loss at the
  // onset to 5% loss at saturation, meeting the 0.95/rho branch at rho=1.
  const double span = 1.0 - params.loss_onset;
  const double frac = (rho - params.loss_onset) / span;
  return 1.0 - 0.05 * frac;
}

double utilisation(double attack_pps, double legit_pps, double capacity_pps) {
  const double offered = std::max(0.0, attack_pps) + std::max(0.0, legit_pps);
  if (capacity_pps <= 0.0) return offered > 0.0 ? 1e9 : 0.0;
  return offered / capacity_pps;
}

}  // namespace ddos::dns
