#include "dns/cache.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"

namespace ddos::dns {

namespace {

void record_lookup(bool hit) {
  if (obs::Observer* o = obs::Observer::installed()) {
    (hit ? o->pipeline.cache_hits : o->pipeline.cache_misses).inc();
  }
}

}  // namespace

Cache::Cache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

void Cache::put(const DomainName& owner, RRType type,
                std::vector<ResourceRecord> records, netsim::SimTime now) {
  std::uint32_t min_ttl = std::numeric_limits<std::uint32_t>::max();
  for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  if (records.empty()) min_ttl = 0;
  const Key key{owner, type};
  if (!entries_.contains(key) && entries_.size() >= capacity_) evict_one();
  entries_[key] = Entry{std::move(records), now + static_cast<std::int64_t>(min_ttl)};
}

std::optional<std::vector<ResourceRecord>> Cache::get(const DomainName& owner,
                                                      RRType type,
                                                      netsim::SimTime now) {
  const auto it = entries_.find(Key{owner, type});
  if (it == entries_.end()) {
    ++misses_;
    record_lookup(false);
    return std::nullopt;
  }
  if (it->second.expiry <= now) {
    entries_.erase(it);
    ++misses_;
    record_lookup(false);
    return std::nullopt;
  }
  ++hits_;
  record_lookup(true);
  return it->second.records;
}

std::int64_t Cache::remaining_ttl(const DomainName& owner, RRType type,
                                  netsim::SimTime now) const {
  const auto it = entries_.find(Key{owner, type});
  if (it == entries_.end() || it->second.expiry <= now) return 0;
  return it->second.expiry - now;
}

std::size_t Cache::purge_expired(netsim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expiry <= now) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void Cache::evict_one() {
  if (entries_.empty()) return;
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.expiry < victim->second.expiry) victim = it;
  }
  entries_.erase(victim);
}

}  // namespace ddos::dns
