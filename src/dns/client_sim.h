// Client-population model of end-user impact under attack.
//
// The paper's §6.3.1 notes that what end users feel during a complete
// resolution failure "depends on several factors, mainly related to caching
// policy": a popular domain with a long TTL rides out an attack inside
// resolver caches, a CDN-style low-TTL domain does not. Moura et al. (IMC
// 2018, "When the Dike Breaks") measured that caching lets almost all
// clients tolerate attacks causing up to ~50% packet loss on the
// authoritative infrastructure.
//
// This module reproduces that experiment analytically + by simulation: a
// population of recursive resolvers, each with its own cache, serving
// Poisson client queries for one domain while the authoritative answers
// with probability (1 - loss). A user query fails only if the record is
// not cached AND every upstream retry fails. The per-resolver hit pattern
// makes tolerance emerge from TTL, query rate, attack duration and loss.
#pragma once

#include <cstdint>

#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::dns {

struct ClientSimParams {
  std::uint32_t resolvers = 200;      // recursive resolvers with caches
  double queries_per_resolver_hz = 0.05;  // client demand behind each
  std::uint32_t record_ttl_s = 3600;
  /// Upstream resolution behaviour during the attack.
  double upstream_loss = 0.5;         // per-attempt loss at the authoritative
  int upstream_attempts = 3;          // resolver retry budget
  /// Warm-up period before the attack so caches are realistically primed.
  std::int64_t warmup_s = 2 * 3600;
  std::int64_t attack_duration_s = 2 * 3600;
  std::uint64_t seed = 1;
};

struct ClientSimResult {
  std::uint64_t queries_during_attack = 0;
  std::uint64_t served_from_cache = 0;
  std::uint64_t resolved_upstream = 0;
  std::uint64_t failed = 0;

  double user_failure_rate() const {
    return queries_during_attack
               ? static_cast<double>(failed) / queries_during_attack
               : 0.0;
  }
  double cache_hit_rate() const {
    return queries_during_attack
               ? static_cast<double>(served_from_cache) /
                     queries_during_attack
               : 0.0;
  }
};

/// Simulate one domain through an attack window.
ClientSimResult simulate_client_population(const ClientSimParams& params);

/// Closed-form approximation of the user-visible failure probability for
/// one resolver: a query fails if it arrives in the uncached fraction of
/// time AND all upstream attempts fail. Used as a cross-check for the
/// simulation and for fast TTL/loss sweeps.
double expected_user_failure_rate(const ClientSimParams& params);

}  // namespace ddos::dns
