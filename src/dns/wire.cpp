#include "dns/wire.h"

namespace ddos::dns {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

}  // namespace

void WireHeader::encode(std::vector<std::uint8_t>& out) const {
  put_u16(out, id);
  std::uint16_t flags = 0;
  if (qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((opcode & 0x0F) << 11);
  if (aa) flags |= 0x0400;
  if (tc) flags |= 0x0200;
  if (rd) flags |= 0x0100;
  if (ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(rcode) & 0x000F;
  put_u16(out, flags);
  put_u16(out, qdcount);
  put_u16(out, ancount);
  put_u16(out, nscount);
  put_u16(out, arcount);
}

std::optional<WireHeader> WireHeader::decode(
    std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  WireHeader h;
  h.id = get_u16(in, 0);
  const std::uint16_t flags = get_u16(in, 2);
  h.qr = flags & 0x8000;
  h.opcode = (flags >> 11) & 0x0F;
  h.aa = flags & 0x0400;
  h.tc = flags & 0x0200;
  h.rd = flags & 0x0100;
  h.ra = flags & 0x0080;
  h.rcode = static_cast<WireRcode>(flags & 0x000F);
  h.qdcount = get_u16(in, 4);
  h.ancount = get_u16(in, 6);
  h.nscount = get_u16(in, 8);
  h.arcount = get_u16(in, 10);
  return h;
}

bool encode_name(const DomainName& name, std::vector<std::uint8_t>& out) {
  if (name.empty()) return false;
  std::vector<std::uint8_t> buf;
  for (const auto label : name.labels()) {
    if (label.empty() || label.size() > 63) return false;
    buf.push_back(static_cast<std::uint8_t>(label.size()));
    buf.insert(buf.end(), label.begin(), label.end());
  }
  buf.push_back(0);  // root
  if (buf.size() > 255) return false;
  out.insert(out.end(), buf.begin(), buf.end());
  return true;
}

std::optional<DomainName> decode_name(std::span<const std::uint8_t> message,
                                      std::size_t offset, std::size_t& next) {
  std::string name;
  std::size_t pos = offset;
  bool jumped = false;
  int jumps = 0;
  next = offset;

  while (true) {
    if (pos >= message.size()) return std::nullopt;
    const std::uint8_t len = message[pos];
    if ((len & 0xC0) == 0xC0) {
      // Compression pointer: two bytes, must point strictly backwards.
      if (pos + 1 >= message.size()) return std::nullopt;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | message[pos + 1];
      if (target >= pos) return std::nullopt;  // forward/self pointer
      if (++jumps > 32) return std::nullopt;   // loop guard
      if (!jumped) next = pos + 2;
      jumped = true;
      pos = target;
      continue;
    }
    if (len & 0xC0) return std::nullopt;  // reserved label types
    if (len == 0) {
      if (!jumped) next = pos + 1;
      break;
    }
    if (pos + 1 + len > message.size()) return std::nullopt;
    if (!name.empty()) name.push_back('.');
    name.append(reinterpret_cast<const char*>(&message[pos + 1]), len);
    if (name.size() > 253) return std::nullopt;
    pos += 1 + len;
  }
  if (name.empty()) return std::nullopt;  // the bare root is not a domain
  return DomainName::parse(name);
}

std::vector<std::uint8_t> encode_query(std::uint16_t id,
                                       const WireQuestion& question,
                                       bool recursion_desired) {
  std::vector<std::uint8_t> out;
  WireHeader header;
  header.id = id;
  header.rd = recursion_desired;
  header.qdcount = 1;
  header.encode(out);
  encode_name(question.qname, out);
  put_u16(out, static_cast<std::uint16_t>(question.qtype));
  put_u16(out, question.qclass);
  return out;
}

std::optional<ParsedMessage> parse_message(
    std::span<const std::uint8_t> message) {
  const auto header = WireHeader::decode(message);
  if (!header) return std::nullopt;
  ParsedMessage parsed;
  parsed.header = *header;
  std::size_t pos = WireHeader::kSize;
  for (std::uint16_t q = 0; q < header->qdcount; ++q) {
    std::size_t next = 0;
    const auto qname = decode_name(message, pos, next);
    if (!qname) return std::nullopt;
    if (next + 4 > message.size()) return std::nullopt;
    WireQuestion question;
    question.qname = *qname;
    question.qtype = static_cast<RRType>(get_u16(message, next));
    question.qclass = get_u16(message, next + 2);
    parsed.questions.push_back(std::move(question));
    pos = next + 4;
  }
  return parsed;
}

ResponseStatus to_response_status(WireRcode rcode) {
  switch (rcode) {
    case WireRcode::NoError: return ResponseStatus::Ok;
    case WireRcode::ServFail: return ResponseStatus::ServFail;
    case WireRcode::NxDomain: return ResponseStatus::NxDomain;
    case WireRcode::FormErr:
    case WireRcode::Refused: return ResponseStatus::ServFail;
  }
  return ResponseStatus::ServFail;
}

}  // namespace ddos::dns
