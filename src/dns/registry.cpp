#include "dns/registry.h"

#include <algorithm>
#include <stdexcept>

namespace ddos::dns {

void DnsRegistry::add_nameserver(Nameserver ns) {
  const netsim::IPv4Addr ip = ns.ip();
  const auto [slot, inserted] = nameserver_index_.try_emplace(
      ip, static_cast<std::uint32_t>(nameserver_pool_.size()));
  if (inserted) {
    nameserver_pool_.push_back(std::move(ns));
  } else {
    nameserver_pool_[*slot] = std::move(ns);
  }
}

bool DnsRegistry::has_nameserver(netsim::IPv4Addr ip) const {
  return nameserver_index_.contains(ip);
}

const Nameserver& DnsRegistry::nameserver(netsim::IPv4Addr ip) const {
  const std::uint32_t* idx = nameserver_index_.find(ip);
  if (!idx)
    throw std::out_of_range("DnsRegistry: unknown nameserver " +
                            ip.to_string());
  return nameserver_pool_[*idx];
}

Nameserver& DnsRegistry::mutable_nameserver(netsim::IPv4Addr ip) {
  const std::uint32_t* idx = nameserver_index_.find(ip);
  if (!idx)
    throw std::out_of_range("DnsRegistry: unknown nameserver " +
                            ip.to_string());
  return nameserver_pool_[*idx];
}

DomainId DnsRegistry::add_domain(DomainName name,
                                 std::vector<netsim::IPv4Addr> ns_ips) {
  if (ns_ips.empty())
    throw std::invalid_argument("add_domain: empty nameserver set");
  NSSetKey key = NSSetKey::from_ips(std::move(ns_ips));

  NssetId nsset_id;
  const auto it = nsset_index_.find(key);
  if (it != nsset_index_.end()) {
    nsset_id = it->second;
  } else {
    nsset_id = static_cast<NssetId>(nssets_.size());
    for (const auto& ip : key.ips) ip_to_nssets_[ip].push_back(nsset_id);
    nsset_index_.emplace(key, nsset_id);
    nssets_.push_back(NssetEntry{std::move(key), {}});
  }

  const auto domain_id = static_cast<DomainId>(domains_.size());
  domains_.push_back(DomainEntry{std::move(name), nsset_id});
  nssets_[nsset_id].domains.push_back(domain_id);
  return domain_id;
}

const DomainName& DnsRegistry::domain_name(DomainId id) const {
  return domains_.at(id).name;
}

NssetId DnsRegistry::nsset_of_domain(DomainId id) const {
  return domains_.at(id).nsset;
}

const NSSetKey& DnsRegistry::nsset_key(NssetId id) const {
  return nssets_.at(id).key;
}

std::span<const DomainId> DnsRegistry::domains_of_nsset(NssetId id) const {
  return nssets_.at(id).domains;
}

std::span<const NssetId> DnsRegistry::nssets_containing(
    netsim::IPv4Addr ip) const {
  const std::vector<NssetId>* nssets = ip_to_nssets_.find(ip);
  return nssets ? std::span<const NssetId>(*nssets)
                : std::span<const NssetId>();
}

std::vector<DomainId> DnsRegistry::domains_of_ns_ip(
    netsim::IPv4Addr ip) const {
  std::vector<DomainId> out;
  for (const NssetId ns : nssets_containing(ip)) {
    const auto& doms = nssets_[ns].domains;
    out.insert(out.end(), doms.begin(), doms.end());
  }
  return out;
}

std::uint64_t DnsRegistry::domain_count_of_ns_ip(netsim::IPv4Addr ip) const {
  std::uint64_t n = 0;
  for (const NssetId ns : nssets_containing(ip)) {
    n += nssets_[ns].domains.size();
  }
  return n;
}

std::vector<netsim::IPv4Addr> DnsRegistry::all_ns_ips() const {
  std::vector<netsim::IPv4Addr> out;
  out.reserve(ip_to_nssets_.size());
  ip_to_nssets_.for_each(
      [&out](netsim::IPv4Addr ip, const std::vector<NssetId>&) {
        out.push_back(ip);
      });
  std::sort(out.begin(), out.end());
  return out;
}

bool DnsRegistry::is_ns_ip(netsim::IPv4Addr ip) const {
  return ip_to_nssets_.contains(ip);
}

void DnsRegistry::mark_open_resolver(netsim::IPv4Addr ip) {
  open_resolvers_.insert(ip);
}

bool DnsRegistry::is_open_resolver(netsim::IPv4Addr ip) const {
  return open_resolvers_.contains(ip);
}

}  // namespace ddos::dns
