// Authoritative nameserver model.
//
// A nameserver is one IPv4 service address backed by one site (unicast) or
// many sites sharing the address via IP anycast (§2.2). Attack traffic
// arriving at the address is spread across sites proportionally to their
// catchment weight (randomly spoofed attack sources are uniformly spread
// over the Internet, so each site absorbs its catchment share); a
// measurement vantage point is always routed to one stable site — exactly
// why, in the paper, anycast deployments shrug off attacks and a single
// vantage can under-observe them (§4.3).
//
// Shared-infrastructure coupling: nameservers on the same /24 typically sit
// behind the same upstream links (§5.2.3, mil.ru). Callers express that as a
// `link_utilisation` on the OfferedLoad; the link acts as a queue in series
// with the server.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dns/load_model.h"
#include "netsim/ipv4.h"
#include "netsim/rng.h"
#include "netsim/simtime.h"

namespace ddos::dns {

/// One physical deployment location of a nameserver address.
struct Site {
  std::string location;         // e.g. "AMS", "FRA" — informational
  double capacity_pps = 50e3;   // service capacity in packets/s
  double base_rtt_ms = 20.0;    // RTT from the measurement vantage
  double catchment_weight = 1.0;
};

/// Loads offered to a nameserver address during one 5-minute window.
struct OfferedLoad {
  double attack_pps = 0.0;       // spoofed flood arriving at this address
  double link_utilisation = 0.0; // shared upstream /24 utilisation (rho)
};

/// Outcome of a single query attempt against one nameserver.
struct QueryOutcome {
  bool responded = false;
  bool servfail = false;  // responded, but with SERVFAIL
  double rtt_ms = 0.0;    // valid when responded
};

class Nameserver {
 public:
  /// `sites` must be non-empty. A single site models unicast; multiple
  /// sites model an anycast deployment.
  Nameserver(netsim::IPv4Addr ip, std::vector<Site> sites,
             std::string hostname = {});

  netsim::IPv4Addr ip() const { return ip_; }
  const std::string& hostname() const { return hostname_; }
  const std::vector<Site>& sites() const { return sites_; }
  bool anycast() const { return sites_.size() > 1; }

  /// Baseline legitimate query load (pps) across the whole deployment.
  void set_legit_pps(double pps) { legit_pps_ = pps; }
  double legit_pps() const { return legit_pps_; }

  /// Geofencing (§5.2.1): during [from, until), queries from vantages
  /// outside `home_country` receive no answer regardless of load — the
  /// mil.ru defence of March 2022.
  void set_home_country(std::string cc) { home_country_ = std::move(cc); }
  const std::string& home_country() const { return home_country_; }
  void set_geofence_interval(netsim::SimTime from, netsim::SimTime until);
  bool geofenced_at(netsim::SimTime when) const {
    return geofence_from_ < geofence_until_ && when >= geofence_from_ &&
           when < geofence_until_;
  }

  /// Remote-triggered blackholing (Jonker et al., IMC 2018): during
  /// [from, until) the address is null-routed upstream — unreachable to
  /// *everyone*, attacker and clients alike (the self-inflicted outage
  /// that trades availability for survival). Intervals accumulate.
  void add_blackhole_interval(netsim::SimTime from, netsim::SimTime until);
  bool blackholed_at(netsim::SimTime when) const;

  /// Index of the site serving a given vantage. Catchment is stable:
  /// derived deterministically from (ip, vantage id), not sampled per query.
  std::size_t vantage_site(std::uint64_t vantage_id) const;

  /// Utilisation of site `site_idx` under `load` (attack spread by
  /// catchment weight, legit load likewise).
  double site_utilisation(std::size_t site_idx, const OfferedLoad& load,
                          const LoadModelParams& params) const;

  /// One query attempt from a vantage at simulated time `when`.
  /// Deterministic given the Rng state.
  QueryOutcome query(netsim::Rng& rng, const OfferedLoad& load,
                     const LoadModelParams& params,
                     netsim::SimTime when = netsim::SimTime(0),
                     std::uint64_t vantage_id = 0,
                     const std::string& vantage_country = "NL",
                     InflationLaw law = InflationLaw::Queueing) const;

 private:
  netsim::IPv4Addr ip_;
  std::vector<Site> sites_;
  std::string hostname_;
  double legit_pps_ = 1000.0;
  std::string home_country_ = "NL";
  netsim::SimTime geofence_from_{0};
  netsim::SimTime geofence_until_{0};
  std::vector<std::pair<netsim::SimTime, netsim::SimTime>> blackholes_;
  double total_catchment_ = 0.0;
};

}  // namespace ddos::dns
