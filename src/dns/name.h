// Domain names. Stored lower-case without the trailing root dot; label
// structure is validated on construction. Supports the operations the
// pipeline needs: TLD extraction (.nl share in the TransIP study),
// registered-domain grouping and subdomain tests (mil.ru and subdomains).
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ddos::dns {

class DomainName {
 public:
  DomainName() = default;

  /// Validates and normalises (lower-case, strips one trailing dot).
  /// Returns nullopt for empty names, empty labels, labels > 63 octets,
  /// or total length > 253 octets.
  static std::optional<DomainName> parse(std::string_view name);

  /// Convenience for trusted literals; throws std::invalid_argument.
  static DomainName must(std::string_view name);

  const std::string& str() const { return name_; }
  bool empty() const { return name_.empty(); }
  auto operator<=>(const DomainName&) const = default;

  /// Labels right-to-left would be DNS order; we return left-to-right,
  /// e.g. "www.mil.ru" -> {"www", "mil", "ru"}.
  std::vector<std::string_view> labels() const;
  std::size_t label_count() const;

  /// Rightmost label: "ru" for "www.mil.ru".
  std::string_view tld() const;

  /// Registered domain under a single-label public suffix:
  /// "www.mil.ru" -> "mil.ru"; a bare TLD returns itself.
  DomainName registered_domain() const;

  /// True if *this is `ancestor` or a subdomain of it.
  bool is_subdomain_of(const DomainName& ancestor) const;

  /// True for internationalised (punycode "xn--") names, e.g. the Cyrillic
  /// IDN of mil.ru studied in §5.2.1.
  bool is_idn() const;

 private:
  explicit DomainName(std::string normalised) : name_(std::move(normalised)) {}
  std::string name_;
};

}  // namespace ddos::dns

template <>
struct std::hash<ddos::dns::DomainName> {
  std::size_t operator()(const ddos::dns::DomainName& d) const noexcept {
    return std::hash<std::string>{}(d.str());
  }
};
