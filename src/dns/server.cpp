#include "dns/server.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace ddos::dns {

namespace {

void record_query(const QueryOutcome& out) {
  obs::Observer* o = obs::Observer::installed();
  if (!o) return;
  obs::PipelineMetrics& p = o->pipeline;
  p.server_queries.inc();
  if (!out.responded) {
    p.server_dropped.inc();
  } else if (out.servfail) {
    p.server_servfail.inc();
  } else {
    p.server_answered.inc();
  }
}

}  // namespace

Nameserver::Nameserver(netsim::IPv4Addr ip, std::vector<Site> sites,
                       std::string hostname)
    : ip_(ip), sites_(std::move(sites)), hostname_(std::move(hostname)) {
  if (sites_.empty())
    throw std::invalid_argument("Nameserver: at least one site required");
  for (const auto& s : sites_) {
    if (s.catchment_weight < 0.0)
      throw std::invalid_argument("Nameserver: negative catchment weight");
    total_catchment_ += s.catchment_weight;
  }
  if (total_catchment_ <= 0.0)
    throw std::invalid_argument("Nameserver: zero total catchment");
}

std::size_t Nameserver::vantage_site(std::uint64_t vantage_id) const {
  if (sites_.size() == 1) return 0;
  // Stable hash of (ip, vantage) into the catchment-weighted site choice.
  const std::uint64_t h =
      netsim::mix64(static_cast<std::uint64_t>(ip_.value()) << 32 | vantage_id);
  double r = static_cast<double>(h >> 11) * 0x1.0p-53 * total_catchment_;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (r < sites_[i].catchment_weight) return i;
    r -= sites_[i].catchment_weight;
  }
  return sites_.size() - 1;
}

double Nameserver::site_utilisation(std::size_t site_idx,
                                    const OfferedLoad& load,
                                    const LoadModelParams& /*params*/) const {
  const Site& site = sites_.at(site_idx);
  const double share = site.catchment_weight / total_catchment_;
  return utilisation(load.attack_pps * share, legit_pps_ * share,
                     site.capacity_pps);
}

void Nameserver::set_geofence_interval(netsim::SimTime from,
                                       netsim::SimTime until) {
  geofence_from_ = from;
  geofence_until_ = until;
}

void Nameserver::add_blackhole_interval(netsim::SimTime from,
                                        netsim::SimTime until) {
  if (from < until) blackholes_.emplace_back(from, until);
}

bool Nameserver::blackholed_at(netsim::SimTime when) const {
  for (const auto& [from, until] : blackholes_) {
    if (when >= from && when < until) return true;
  }
  return false;
}

QueryOutcome Nameserver::query(netsim::Rng& rng, const OfferedLoad& load,
                               const LoadModelParams& params,
                               netsim::SimTime when, std::uint64_t vantage_id,
                               const std::string& vantage_country,
                               InflationLaw law) const {
  QueryOutcome out;
  if (blackholed_at(when)) {
    record_query(out);
    return out;  // Null-routed upstream: nothing reaches the server.
  }
  if (geofenced_at(when) && vantage_country != home_country_) {
    record_query(out);
    return out;  // Silently dropped at the border: pure timeout.
  }
  const std::size_t sidx = vantage_site(vantage_id);
  const Site& site = sites_[sidx];
  const double rho = site_utilisation(sidx, load, params);

  // Server queue and shared upstream link act in series.
  const double p_server = response_probability(rho, params);
  const double p_link = response_probability(load.link_utilisation, params);
  const double mult_server = rtt_multiplier(rho, params, law);
  const double mult_link = rtt_multiplier(load.link_utilisation, params, law);
  const double mult = std::min(params.max_inflation, mult_server * mult_link);
  // Log-normal latency jitter. Dispersion grows with load: an idle server
  // answers within a few percent of its base RTT, a near-saturated one has
  // enormous queue-position variance. (This is also what lets *some*
  // queries to a distressed server beat the resolver's timeout while
  // others do not — the paper's partial-failure regimes.)
  const double stress = std::min(1.0, std::max(rho, load.link_utilisation));
  const double sigma = 0.08 + 0.45 * stress;
  const double jitter = rng.lognormal(0.0, sigma);
  const double rtt = site.base_rtt_ms * mult * jitter;

  if (!rng.chance(p_server * p_link)) {
    // Distressed path: most lost queries manifest as resolver timeouts, a
    // small share get an explicit SERVFAIL back (backend overload), which
    // is how the paper's 92%/8% timeout/SERVFAIL failure split arises.
    // SERVFAILs are generated fast — an error path, not a queued answer.
    if (rng.chance(params.servfail_share)) {
      out.responded = true;
      out.servfail = true;
      out.rtt_ms = site.base_rtt_ms * rng.uniform(0.8, 3.0);
    }
    record_query(out);
    return out;
  }

  out.responded = true;
  out.rtt_ms = rtt;
  record_query(out);
  return out;
}

}  // namespace ddos::dns
