#include "dns/resolver.h"

#include <numeric>
#include <stdexcept>

#include "obs/obs.h"

namespace ddos::dns {

namespace {

// Single relaxed-atomic increments; a load+branch when no observer is
// installed, which is what keeps BM_AgnosticResolution flat.
void record_resolution(const Resolution& res) {
  obs::Observer* o = obs::Observer::installed();
  if (!o) return;
  obs::PipelineMetrics& p = o->pipeline;
  p.resolver_queries.inc();
  p.resolver_attempts.inc(static_cast<std::uint64_t>(res.attempts));
  switch (res.status) {
    // NXDOMAIN is an authoritative answer — a healthy resolution.
    case ResponseStatus::Ok:
    case ResponseStatus::NxDomain: p.resolver_ok.inc(); break;
    case ResponseStatus::ServFail: p.resolver_servfail.inc(); break;
    case ResponseStatus::Timeout: p.resolver_timeout.inc(); break;
  }
}

}  // namespace

AgnosticResolver::AgnosticResolver(ResolverParams params)
    : params_(params) {
  if (params_.max_attempts < 1)
    throw std::invalid_argument("AgnosticResolver: max_attempts < 1");
}

Resolution AgnosticResolver::resolve(
    netsim::Rng& rng, const std::vector<const Nameserver*>& servers,
    const std::vector<OfferedLoad>& loads, const LoadModelParams& model,
    netsim::SimTime when) const {
  if (servers.empty())
    throw std::invalid_argument("resolve: empty nameserver set");
  if (servers.size() != loads.size())
    throw std::invalid_argument("resolve: servers/loads size mismatch");

  // Agnostic selection: random permutation; first element is the
  // "chosen" nameserver, the rest are the retry order.
  std::vector<std::size_t> order(servers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  Resolution res;
  if (servers[order[0]]) res.chosen_ns = servers[order[0]]->ip();

  double elapsed_ms = 0.0;
  for (int a = 0; a < params_.max_attempts; ++a) {
    // Retries cycle through the permuted set (re-trying earlier servers
    // when the set is smaller than the attempt budget, as unbound does).
    const std::size_t idx = order[static_cast<std::size_t>(a) % order.size()];
    res.attempts = a + 1;
    if (!servers[idx]) {  // lame entry: nothing answers there
      elapsed_ms += params_.attempt_timeout_ms;
      continue;
    }
    const QueryOutcome q =
        servers[idx]->query(rng, loads[idx], model, when, params_.vantage_id,
                            params_.vantage_country, params_.law);
    // A response slower than the attempt budget never reaches the
    // resolver in time — it is a timeout, however the server fared.
    if (q.responded && q.rtt_ms <= params_.attempt_timeout_ms) {
      elapsed_ms += q.rtt_ms;
      res.rtt_ms = elapsed_ms;
      res.status = q.servfail ? ResponseStatus::ServFail : ResponseStatus::Ok;
      record_resolution(res);
      return res;
    }
    elapsed_ms += params_.attempt_timeout_ms;
  }
  res.rtt_ms = elapsed_ms;
  res.status = ResponseStatus::Timeout;
  record_resolution(res);
  return res;
}

}  // namespace ddos::dns
