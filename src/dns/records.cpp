#include "dns/records.h"

#include <algorithm>

namespace ddos::dns {

std::string to_string(RRType t) {
  switch (t) {
    case RRType::A: return "A";
    case RRType::NS: return "NS";
    case RRType::CNAME: return "CNAME";
    case RRType::SOA: return "SOA";
    case RRType::AAAA: return "AAAA";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::Ok: return "OK";
    case ResponseStatus::ServFail: return "SERVFAIL";
    case ResponseStatus::NxDomain: return "NXDOMAIN";
    case ResponseStatus::Timeout: return "TIMEOUT";
  }
  return "UNKNOWN";
}

Zone::Zone(DomainName apex) : apex_(std::move(apex)) {}

void Zone::add(ResourceRecord rr) { records_.push_back(std::move(rr)); }

std::vector<ResourceRecord> Zone::find(const DomainName& owner,
                                       RRType type) const {
  std::vector<ResourceRecord> out;
  for (const auto& rr : records_) {
    if (rr.type == type && rr.owner == owner) out.push_back(rr);
  }
  return out;
}

std::string NSSetKey::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < ips.size(); ++i) {
    if (i) out.push_back('|');
    out += ips[i].to_string();
  }
  return out;
}

NSSetKey NSSetKey::from_ips(std::vector<netsim::IPv4Addr> in) {
  std::sort(in.begin(), in.end());
  in.erase(std::unique(in.begin(), in.end()), in.end());
  return NSSetKey{std::move(in)};
}

}  // namespace ddos::dns
