// DnsRegistry — the measured DNS universe: registered domains, their
// delegations, the deduplicated NSSets (§4.1), and the nameserver objects
// behind each NS IPv4 address. This is the stand-in for the namespace
// OpenINTEL sweeps daily; the join pipeline (core) and the sweeper
// (openintel) both operate against it.
//
// Compact integer ids (DomainId, NssetId) keep the longitudinal run —
// hundreds of thousands of domains over seventeen months — cache-friendly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/records.h"
#include "dns/server.h"
#include "netsim/ipv4.h"
#include "util/flat_map.h"

namespace ddos::dns {

using DomainId = std::uint32_t;
using NssetId = std::uint32_t;

inline constexpr NssetId kInvalidNsset = 0xFFFFFFFFu;

class DnsRegistry {
 public:
  /// Register a nameserver deployment. A nameserver must be registered for
  /// every NS IP referenced by a delegation before sweeping; duplicate ips
  /// replace the earlier registration.
  void add_nameserver(Nameserver ns);
  bool has_nameserver(netsim::IPv4Addr ip) const;
  const Nameserver& nameserver(netsim::IPv4Addr ip) const;
  Nameserver& mutable_nameserver(netsim::IPv4Addr ip);
  std::size_t nameserver_count() const { return nameserver_index_.size(); }

  /// Register a domain with its NS IPs; the NSSet is deduplicated and
  /// interned. Returns the new domain's id.
  DomainId add_domain(DomainName name, std::vector<netsim::IPv4Addr> ns_ips);

  std::size_t domain_count() const { return domains_.size(); }
  std::size_t nsset_count() const { return nssets_.size(); }

  const DomainName& domain_name(DomainId id) const;
  NssetId nsset_of_domain(DomainId id) const;
  const NSSetKey& nsset_key(NssetId id) const;
  std::span<const DomainId> domains_of_nsset(NssetId id) const;

  /// NSSets whose key contains `ip` — the "nameservers under attack ->
  /// NSSets under attack" hop of the join.
  std::span<const NssetId> nssets_containing(netsim::IPv4Addr ip) const;

  /// Union of domains across all NSSets containing `ip` (deduplicated by
  /// construction: a domain belongs to exactly one NSSet).
  std::vector<DomainId> domains_of_ns_ip(netsim::IPv4Addr ip) const;

  /// Number of domains whose NSSet contains `ip`.
  std::uint64_t domain_count_of_ns_ip(netsim::IPv4Addr ip) const;

  /// All distinct NS IPv4 addresses referenced by any delegation,
  /// ascending (the flat index has no stable iteration order, so the
  /// snapshot is sorted to stay deterministic).
  std::vector<netsim::IPv4Addr> all_ns_ips() const;
  bool is_ns_ip(netsim::IPv4Addr ip) const;

  /// Open-resolver registry (§3.3, Yazdani et al. scans): incidental open
  /// resolvers appearing as NS targets are flagged so the longitudinal
  /// analysis can filter them (Table 5 discussion).
  void mark_open_resolver(netsim::IPv4Addr ip);
  bool is_open_resolver(netsim::IPv4Addr ip) const;
  std::size_t open_resolver_count() const { return open_resolvers_.size(); }

  /// Iteration support for the sweeper.
  DomainId first_domain() const { return 0; }
  DomainId end_domain() const { return static_cast<DomainId>(domains_.size()); }

 private:
  struct DomainEntry {
    DomainName name;
    NssetId nsset = kInvalidNsset;
  };
  struct NssetEntry {
    NSSetKey key;
    std::vector<DomainId> domains;
  };

  // The per-IP lookups (is_ns_ip, nssets_containing, nameserver) run once
  // per simulated query/join probe, so they sit on flat open-addressing
  // indexes; nameserver objects live in a dense pool because they are not
  // default-constructible (FlatMap slots must be). The NSSet interning
  // index keys on a composite vector key and only runs at registration
  // time, so it stays node-based.
  std::vector<DomainEntry> domains_;
  std::vector<NssetEntry> nssets_;
  std::unordered_map<NSSetKey, NssetId> nsset_index_;
  std::vector<Nameserver> nameserver_pool_;
  util::FlatMap<netsim::IPv4Addr, std::uint32_t> nameserver_index_;
  util::FlatMap<netsim::IPv4Addr, std::vector<NssetId>> ip_to_nssets_;
  util::FlatSet<netsim::IPv4Addr> open_resolvers_;
};

}  // namespace ddos::dns
