#include "dns/name.h"

#include <stdexcept>

#include "util/strings.h"

namespace ddos::dns {

std::optional<DomainName> DomainName::parse(std::string_view name) {
  if (!name.empty() && name.back() == '.') name.remove_suffix(1);
  if (name.empty() || name.size() > 253) return std::nullopt;
  std::string norm = util::to_lower(name);
  std::size_t label_start = 0;
  for (std::size_t i = 0; i <= norm.size(); ++i) {
    if (i == norm.size() || norm[i] == '.') {
      const std::size_t len = i - label_start;
      if (len == 0 || len > 63) return std::nullopt;
      label_start = i + 1;
    } else {
      const char c = norm[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '-' || c == '_';
      if (!ok) return std::nullopt;
    }
  }
  return DomainName(std::move(norm));
}

DomainName DomainName::must(std::string_view name) {
  auto parsed = parse(name);
  if (!parsed)
    throw std::invalid_argument("invalid domain name: " + std::string(name));
  return *parsed;
}

std::vector<std::string_view> DomainName::labels() const {
  std::vector<std::string_view> out;
  std::string_view s = name_;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find('.', start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::size_t DomainName::label_count() const {
  if (name_.empty()) return 0;
  std::size_t dots = 0;
  for (char c : name_)
    if (c == '.') ++dots;
  return dots + 1;
}

std::string_view DomainName::tld() const {
  const auto pos = name_.rfind('.');
  if (pos == std::string::npos) return name_;
  return std::string_view(name_).substr(pos + 1);
}

DomainName DomainName::registered_domain() const {
  const auto lbls = labels();
  if (lbls.size() <= 2) return *this;
  std::string reg = std::string(lbls[lbls.size() - 2]) + "." +
                    std::string(lbls[lbls.size() - 1]);
  return DomainName(std::move(reg));
}

bool DomainName::is_subdomain_of(const DomainName& ancestor) const {
  if (name_ == ancestor.name_) return true;
  if (name_.size() <= ancestor.name_.size() + 1) return false;
  return util::ends_with(name_, "." + ancestor.name_);
}

bool DomainName::is_idn() const {
  for (const auto label : labels()) {
    if (util::starts_with(label, "xn--")) return true;
  }
  return false;
}

}  // namespace ddos::dns
