// DNS wire format (RFC 1035 §4) — message header, question section, and
// name encoding with compression-pointer decoding.
//
// The analysis pipeline works on measurement *records*, but the probing
// components (OpenINTEL's sweeper, the reactive platform) ultimately put
// real queries on the wire; this codec is what a deployment of this
// library would serialise them with. It is deliberately scoped to what
// the paper's measurements use: QUERY opcode, one question, NS/A lookups,
// and response-code extraction — plus robust (bounds- and loop-checked)
// name decompression, where most real-world DNS parser bugs live.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/name.h"
#include "dns/records.h"

namespace ddos::dns {

/// Wire rcodes (subset the pipeline observes).
enum class WireRcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  Refused = 5,
};

struct WireHeader {
  std::uint16_t id = 0;
  bool qr = false;      // response flag
  std::uint8_t opcode = 0;
  bool aa = false;      // authoritative answer
  bool tc = false;      // truncated (the DNS-over-TCP trigger, §6.2)
  bool rd = false;
  bool ra = false;
  WireRcode rcode = WireRcode::NoError;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;

  static constexpr std::size_t kSize = 12;
  void encode(std::vector<std::uint8_t>& out) const;
  static std::optional<WireHeader> decode(std::span<const std::uint8_t> in);
};

struct WireQuestion {
  DomainName qname;
  RRType qtype = RRType::NS;
  std::uint16_t qclass = 1;  // IN
};

/// Encode a name as a sequence of length-prefixed labels + root.
/// Returns false (and leaves `out` untouched) for invalid names.
bool encode_name(const DomainName& name, std::vector<std::uint8_t>& out);

/// Decode a (possibly compressed) name starting at `offset` within the
/// whole message. On success returns the name and sets `next` to the
/// offset just past the name's in-place bytes. Rejects pointer loops,
/// forward pointers, out-of-bounds reads and over-long names.
std::optional<DomainName> decode_name(std::span<const std::uint8_t> message,
                                      std::size_t offset, std::size_t& next);

/// Build a complete query message (header + one question).
std::vector<std::uint8_t> encode_query(std::uint16_t id,
                                       const WireQuestion& question,
                                       bool recursion_desired = false);

/// Parsed view of a message (header + questions; records left as raw
/// offsets for the layers above, which only need counts and rcode).
struct ParsedMessage {
  WireHeader header;
  std::vector<WireQuestion> questions;
};

std::optional<ParsedMessage> parse_message(
    std::span<const std::uint8_t> message);

/// Map a wire rcode to the measurement status the pipeline stores.
ResponseStatus to_response_status(WireRcode rcode);

}  // namespace ddos::dns
