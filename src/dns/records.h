// Resource records, zones, and delegations. The paper's unit of analysis is
// the delegation: a registered domain and the set of authoritative NS
// hostnames/IPs serving it. The *NSSet* (§4.1) is the deduplicated set of
// NS IPv4 addresses shared by one or more domains.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "netsim/ipv4.h"

namespace ddos::dns {

enum class RRType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  AAAA = 28,
};

std::string to_string(RRType t);

/// Response codes as recorded by the OpenINTEL-style sweeper. TIMEOUT is
/// not a wire rcode but a measurement outcome; the paper treats it as a
/// first-class status (§3.2).
enum class ResponseStatus : std::uint8_t {
  Ok = 0,
  ServFail = 1,
  NxDomain = 2,
  Timeout = 3,
};

std::string to_string(ResponseStatus s);

struct ResourceRecord {
  DomainName owner;
  RRType type = RRType::A;
  std::uint32_t ttl = 3600;
  std::string rdata;  // Presentation form: address or target name.
};

/// A zone: authoritative data for one apex. Only what the pipeline needs —
/// NS records at the apex and A records for in-bailiwick nameservers.
class Zone {
 public:
  explicit Zone(DomainName apex);

  const DomainName& apex() const { return apex_; }

  void add(ResourceRecord rr);
  std::vector<ResourceRecord> find(const DomainName& owner, RRType type) const;
  const std::vector<ResourceRecord>& all() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  DomainName apex_;
  std::vector<ResourceRecord> records_;
};

/// A registered domain's delegation: NS hostnames and their resolved
/// IPv4 addresses (glue or out-of-bailiwick resolution collapsed —
/// OpenINTEL stores resolved NS addresses the same way).
struct Delegation {
  DomainName domain;
  std::vector<std::string> ns_names;
  std::vector<netsim::IPv4Addr> ns_ips;  // deduplicated, sorted
};

/// Identifier of an NSSet: canonical sorted list of NS IPv4 addresses.
/// Two domains with the same set of NS IPs share an NSSetKey.
struct NSSetKey {
  std::vector<netsim::IPv4Addr> ips;  // sorted, unique

  bool operator==(const NSSetKey&) const = default;
  /// "1.2.3.4|5.6.7.8" — stable string form for map keys and CSV export.
  std::string to_string() const;

  static NSSetKey from_ips(std::vector<netsim::IPv4Addr> ips);
};

}  // namespace ddos::dns

template <>
struct std::hash<ddos::dns::NSSetKey> {
  std::size_t operator()(const ddos::dns::NSSetKey& k) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (const auto& ip : k.ips) {
      h ^= std::hash<ddos::netsim::IPv4Addr>{}(ip);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};
