#include "dns/client_sim.h"

#include <algorithm>
#include <cmath>

namespace ddos::dns {

namespace {

/// One recursive resolver's view of the record: just the expiry time.
struct ResolverState {
  std::int64_t cached_until = -1;  // < t means not cached
};

}  // namespace

ClientSimResult simulate_client_population(const ClientSimParams& params) {
  netsim::Rng rng(params.seed);
  ClientSimResult result;
  std::vector<ResolverState> resolvers(params.resolvers);

  const double p_fail_attempt = std::clamp(params.upstream_loss, 0.0, 1.0);
  const std::int64_t t_attack_start = params.warmup_s;
  const std::int64_t t_end = params.warmup_s + params.attack_duration_s;

  // Event-driven per resolver: client queries arrive as a Poisson process.
  for (auto& resolver : resolvers) {
    double t = 0.0;
    while (true) {
      t += rng.exponential(params.queries_per_resolver_hz);
      const auto now = static_cast<std::int64_t>(t);
      if (now >= t_end) break;
      const bool during_attack = now >= t_attack_start;
      if (during_attack) ++result.queries_during_attack;

      if (resolver.cached_until >= now) {
        if (during_attack) ++result.served_from_cache;
        continue;
      }
      // Cache miss: resolve upstream. Before the attack the authoritative
      // always answers; during it each attempt fails with upstream_loss.
      bool resolved = false;
      for (int a = 0; a < params.upstream_attempts; ++a) {
        if (!during_attack || !rng.chance(p_fail_attempt)) {
          resolved = true;
          break;
        }
      }
      if (resolved) {
        resolver.cached_until = now + params.record_ttl_s;
        if (during_attack) ++result.resolved_upstream;
      } else if (during_attack) {
        ++result.failed;
      }
    }
  }
  return result;
}

double expected_user_failure_rate(const ClientSimParams& params) {
  const double lambda = params.queries_per_resolver_hz;
  const double ttl = static_cast<double>(params.record_ttl_s);
  const double p_all_attempts_fail =
      std::pow(std::clamp(params.upstream_loss, 0.0, 1.0),
               params.upstream_attempts);
  if (lambda <= 0.0) return 0.0;

  // Renewal argument per resolver: after a successful resolution the
  // record is cached for TTL seconds; queries inside that window hit.
  // The first query after expiry misses; it fails with p_all, in which
  // case the next query retries (no caching of failures). Expected
  // queries per renewal cycle: hits = lambda*TTL, misses until success =
  // 1/(1-p_all). Failed queries per cycle = p_all/(1-p_all).
  const double hits = lambda * ttl;
  const double misses_until_success =
      p_all_attempts_fail >= 1.0 ? 1e18 : 1.0 / (1.0 - p_all_attempts_fail);
  const double failures = misses_until_success - 1.0;
  return failures / (hits + misses_until_success);
}

}  // namespace ddos::dns
