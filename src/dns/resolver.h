// Agnostic stub resolver, modelling OpenINTEL's unbound configuration
// (§3.2): for each registered domain's first query, a uniformly random
// authoritative nameserver is selected; on timeout the resolver retries
// against other servers of the set. The recorded RTT is the total elapsed
// time of the resolution, so a retried query surfaces as a large RTT even
// when it eventually succeeds — which is precisely how attacks appear in
// the Impact_on_RTT metric.
#pragma once

#include <vector>

#include "dns/records.h"
#include "dns/server.h"
#include "netsim/ipv4.h"
#include "netsim/rng.h"

namespace ddos::dns {

struct ResolverParams {
  int max_attempts = 3;        // initial try + retries across the NS set
  double attempt_timeout_ms = 1500.0;  // per-attempt wait before retrying
  std::uint64_t vantage_id = 0;        // stable anycast catchment identity
  std::string vantage_country = "NL";  // OpenINTEL probes from NL (§4.3.1)
  InflationLaw law = InflationLaw::Queueing;
};

/// Result of one measured resolution, as OpenINTEL would record it.
struct Resolution {
  ResponseStatus status = ResponseStatus::Timeout;
  double rtt_ms = 0.0;          // total elapsed (includes timed-out attempts)
  netsim::IPv4Addr chosen_ns;   // the agnostically selected first server
  int attempts = 0;
};

/// Stateless resolver engine; all state is in the Rng and arguments so the
/// sweeper can run millions of resolutions deterministically and in bulk.
class AgnosticResolver {
 public:
  explicit AgnosticResolver(ResolverParams params = {});

  const ResolverParams& params() const { return params_; }

  /// Resolve against a delegation's nameservers at simulated time `when`.
  /// `servers` and `loads` are parallel arrays (one OfferedLoad per
  /// nameserver address for the current 5-minute window). Must be
  /// non-empty. A nullptr server models a *lame* delegation entry — an NS
  /// record pointing at an address with nothing behind it (Akiwate et al.
  /// 2020): attempts against it always time out.
  Resolution resolve(netsim::Rng& rng,
                     const std::vector<const Nameserver*>& servers,
                     const std::vector<OfferedLoad>& loads,
                     const LoadModelParams& model,
                     netsim::SimTime when = netsim::SimTime(0)) const;

 private:
  ResolverParams params_;
};

}  // namespace ddos::dns
