// Parent-zone file export/import — the CZDS input stage (§3.2).
//
// OpenINTEL learns *which* domains exist from TLD zone files (ICANN's
// Centralized Zone Data Service plus legacy gTLD and ccTLD feeds): for
// each registered domain the parent zone carries its NS delegations and
// in-bailiwick glue A records. This module round-trips that format so the
// measured universe can be exported, inspected, diffed, and re-imported —
// what the production system does nightly.
//
// Format (master-file subset): one record per line,
//   <owner>. <ttl> IN NS <nsdname>.
//   <owner>. <ttl> IN A  <address>
// with ';' comments and blank lines ignored.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dns/name.h"
#include "dns/registry.h"
#include "netsim/ipv4.h"

namespace ddos::dns {

/// Export every registry domain whose TLD matches `tld` as a parent-zone
/// file: NS records per delegation plus glue A records for every
/// referenced nameserver host. Lame entries (no registered server) get a
/// synthesised host under lame.invalid, as stale zones do.
std::string export_zone_file(const DnsRegistry& registry,
                             std::string_view tld);

struct ParsedZone {
  struct ZoneDelegation {
    DomainName domain;
    std::vector<std::string> ns_hosts;
  };
  std::vector<ZoneDelegation> delegations;
  /// Glue: nameserver host -> A records.
  std::unordered_map<std::string, std::vector<netsim::IPv4Addr>> glue;

  /// Join delegations with glue: (domain, sorted unique NS IPv4s).
  /// Hosts without glue contribute nothing (out-of-bailiwick servers are
  /// resolved separately in production; absent here).
  std::vector<std::pair<DomainName, std::vector<netsim::IPv4Addr>>>
  resolved_delegations() const;
};

/// Parse a zone file produced by export_zone_file (or hand-written in the
/// same subset). Returns nullopt if any non-comment line is malformed.
std::optional<ParsedZone> parse_zone_file(std::string_view text);

}  // namespace ddos::dns
