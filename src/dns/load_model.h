// Queueing model for nameserver behaviour under volumetric load.
//
// Each nameserver *site* has a service capacity C (packets/s). Under offered
// load L (attack share + legitimate traffic + shared-link spillover), the
// utilisation is rho = L / C and:
//
//   * response latency inflates following an M/M/1-shaped law,
//       multiplier = 1 + kappa * rho / (1 - rho)     (capped),
//     i.e. negligible below ~50% utilisation, 10-100x near saturation —
//     matching the paper's empirical split (most attacks harmless, ~5%
//     causing >=10x, 1/3 of those >=100x; Fig. 8);
//   * responses start being dropped once rho exceeds a loss onset, with
//     drop probability rising to (1 - C/L) at/above saturation — producing
//     the TIMEOUT fractions of Fig. 3 and §6.3.1;
//   * a small share of overload failures surface as SERVFAIL instead of
//     timeout (backend distress rather than packet loss), matching the
//     92%/8% timeout/SERVFAIL split the paper reports.
//
// A linear alternative model is provided for the ablation bench
// (`bench_ablation_models`), which shows the queueing shape — not the
// attack volume — is what reproduces the paper's heavy-tailed impact
// distribution.
#pragma once

namespace ddos::dns {

struct LoadModelParams {
  double kappa = 0.35;          // queueing inflation gain
  double max_inflation = 400.0; // cap on the RTT multiplier
  double loss_onset = 0.90;     // utilisation where drops begin
  /// Per-attempt share of lost queries surfacing as SERVFAIL instead of
  /// silence. 0.028 per attempt compounds to ~8% of three-attempt
  /// resolutions failing with SERVFAIL — the paper's 92%/8% split.
  double servfail_share = 0.028;
};

/// Which latency-inflation law to apply (queueing is the paper-shaped
/// default; linear exists for the ablation study).
enum class InflationLaw { Queueing, Linear };

/// RTT multiplier (>= 1) as a function of utilisation rho = load/capacity.
double rtt_multiplier(double rho, const LoadModelParams& params,
                      InflationLaw law = InflationLaw::Queueing);

/// Probability that a single query receives any response at utilisation rho.
double response_probability(double rho, const LoadModelParams& params);

/// Utilisation of a server given offered loads (pps) and capacity (pps).
/// Guards against zero/negative capacity by returning a saturated value.
double utilisation(double attack_pps, double legit_pps, double capacity_pps);

}  // namespace ddos::dns
