#include "topology/prefix_table.h"

#include <algorithm>

namespace ddos::topology {

struct PrefixTable::Node {
  std::unique_ptr<Node> child[2];
  bool has_entry = false;
  Asn origin = 0;
};

PrefixTable::PrefixTable() : root_(std::make_unique<Node>()) {}
PrefixTable::~PrefixTable() = default;
PrefixTable::PrefixTable(PrefixTable&&) noexcept = default;
PrefixTable& PrefixTable::operator=(PrefixTable&&) noexcept = default;

namespace {
// Bit i (0 = most significant) of a host-order address.
inline int bit_at(std::uint32_t v, int i) { return (v >> (31 - i)) & 1; }
}  // namespace

void PrefixTable::announce(const netsim::Prefix& prefix, Asn origin) {
  Node* node = root_.get();
  const std::uint32_t net = prefix.network().value();
  for (int i = 0; i < prefix.length(); ++i) {
    const int b = bit_at(net, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  if (!node->has_entry) ++size_;
  node->has_entry = true;
  node->origin = origin;
}

bool PrefixTable::withdraw(const netsim::Prefix& prefix) {
  Node* node = root_.get();
  const std::uint32_t net = prefix.network().value();
  for (int i = 0; i < prefix.length(); ++i) {
    const int b = bit_at(net, i);
    if (!node->child[b]) return false;
    node = node->child[b].get();
  }
  if (!node->has_entry) return false;
  node->has_entry = false;
  node->origin = 0;
  --size_;
  return true;
}

std::optional<RouteEntry> PrefixTable::lookup(netsim::IPv4Addr addr) const {
  const std::uint32_t v = addr.value();
  const Node* node = root_.get();
  std::optional<RouteEntry> best;
  int depth = 0;
  if (node->has_entry)
    best = RouteEntry{netsim::Prefix(netsim::IPv4Addr(0), 0), node->origin};
  while (depth < 32) {
    const int b = bit_at(v, depth);
    if (!node->child[b]) break;
    node = node->child[b].get();
    ++depth;
    if (node->has_entry) {
      best = RouteEntry{netsim::Prefix(addr, depth), node->origin};
    }
  }
  return best;
}

Asn PrefixTable::origin_of(netsim::IPv4Addr addr) const {
  const auto entry = lookup(addr);
  return entry ? entry->origin : 0;
}

std::optional<Asn> PrefixTable::exact(const netsim::Prefix& prefix) const {
  const Node* node = root_.get();
  const std::uint32_t net = prefix.network().value();
  for (int i = 0; i < prefix.length(); ++i) {
    const int b = bit_at(net, i);
    if (!node->child[b]) return std::nullopt;
    node = node->child[b].get();
  }
  if (!node->has_entry) return std::nullopt;
  return node->origin;
}

std::vector<RouteEntry> PrefixTable::entries() const {
  std::vector<RouteEntry> out;
  // Depth-first walk reconstructing prefixes from the path.
  struct Frame {
    const Node* node;
    std::uint32_t net;
    int depth;
  };
  std::vector<Frame> stack{{root_.get(), 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.node->has_entry) {
      out.push_back(RouteEntry{
          netsim::Prefix(netsim::IPv4Addr(f.net), f.depth), f.node->origin});
    }
    for (int b = 0; b < 2; ++b) {
      if (f.node->child[b]) {
        std::uint32_t net = f.net;
        if (b && f.depth < 32) net |= (1u << (31 - f.depth));
        stack.push_back(Frame{f.node->child[b].get(), net, f.depth + 1});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const RouteEntry& a, const RouteEntry& b) {
    if (a.prefix.network() != b.prefix.network())
      return a.prefix.network() < b.prefix.network();
    return a.prefix.length() < b.prefix.length();
  });
  return out;
}

}  // namespace ddos::topology
