// Longest-prefix-match table mapping IPv4 prefixes to origin ASNs — the
// simulated counterpart of CAIDA's Routeviews prefix2as dataset (§3.3).
//
// Implemented as a binary trie over address bits. Announcements may overlap;
// lookup returns the most specific covering prefix, as BGP-derived datasets
// do.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "netsim/ipv4.h"
#include "topology/as_registry.h"

namespace ddos::topology {

struct RouteEntry {
  netsim::Prefix prefix;
  Asn origin = 0;
};

class PrefixTable {
 public:
  PrefixTable();
  ~PrefixTable();
  PrefixTable(PrefixTable&&) noexcept;
  PrefixTable& operator=(PrefixTable&&) noexcept;
  PrefixTable(const PrefixTable&) = delete;
  PrefixTable& operator=(const PrefixTable&) = delete;

  /// Announce a prefix with its origin AS. Re-announcing replaces the origin.
  void announce(const netsim::Prefix& prefix, Asn origin);

  /// Withdraw a prefix; returns false if it was not announced.
  bool withdraw(const netsim::Prefix& prefix);

  /// Longest-prefix match; nullopt for unrouted space.
  std::optional<RouteEntry> lookup(netsim::IPv4Addr addr) const;

  /// Origin AS of the longest match, or 0 when unrouted.
  Asn origin_of(netsim::IPv4Addr addr) const;

  /// Exact-match query.
  std::optional<Asn> exact(const netsim::Prefix& prefix) const;

  std::size_t size() const { return size_; }

  /// All entries (insertion-order independent; sorted by prefix).
  std::vector<RouteEntry> entries() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace ddos::topology
