// AS and organisation registry — the simulated counterpart of CAIDA's
// as2org dataset (§3.3). Maps AS numbers to organisation names and country
// codes; used to attribute attacks to companies (Tables 4 and 6).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ddos::topology {

using Asn = std::uint32_t;

struct AsInfo {
  Asn asn = 0;
  std::string org;           // Organisation name, e.g. "Google".
  std::string country_code;  // ISO-3166 alpha-2, e.g. "US".
};

/// Registry of known ASes. Unknown lookups return nullopt rather than
/// fabricating entries — callers decide how to handle unattributed space.
class AsRegistry {
 public:
  /// Registers or updates an AS. Returns false if the ASN already existed
  /// with a different organisation (update still applied).
  bool add(const AsInfo& info);

  std::optional<AsInfo> lookup(Asn asn) const;
  std::string org_of(Asn asn) const;           // "" when unknown
  std::string country_of(Asn asn) const;       // "" when unknown
  bool contains(Asn asn) const;

  std::size_t size() const { return by_asn_.size(); }

  /// All ASNs registered to an organisation (exact name match).
  std::vector<Asn> asns_of_org(const std::string& org) const;

 private:
  std::unordered_map<Asn, AsInfo> by_asn_;
};

}  // namespace ddos::topology
