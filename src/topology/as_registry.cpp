#include "topology/as_registry.h"

namespace ddos::topology {

bool AsRegistry::add(const AsInfo& info) {
  const auto it = by_asn_.find(info.asn);
  const bool conflict = it != by_asn_.end() && it->second.org != info.org;
  by_asn_[info.asn] = info;
  return !conflict;
}

std::optional<AsInfo> AsRegistry::lookup(Asn asn) const {
  const auto it = by_asn_.find(asn);
  if (it == by_asn_.end()) return std::nullopt;
  return it->second;
}

std::string AsRegistry::org_of(Asn asn) const {
  const auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? std::string{} : it->second.org;
}

std::string AsRegistry::country_of(Asn asn) const {
  const auto it = by_asn_.find(asn);
  return it == by_asn_.end() ? std::string{} : it->second.country_code;
}

bool AsRegistry::contains(Asn asn) const { return by_asn_.contains(asn); }

std::vector<Asn> AsRegistry::asns_of_org(const std::string& org) const {
  std::vector<Asn> out;
  for (const auto& [asn, info] : by_asn_) {
    if (info.org == org) out.push_back(asn);
  }
  return out;
}

}  // namespace ddos::topology
