#include "reactive/platform.h"

#include <algorithm>

namespace ddos::reactive {

std::size_t Campaign::fully_unresolvable_attack_windows() const {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (w.during_attack && w.domains_probed > 0 && w.domains_resolved == 0)
      ++n;
  }
  return n;
}

std::size_t Campaign::attack_windows_probed() const {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (w.during_attack) ++n;
  }
  return n;
}

netsim::WindowIndex Campaign::recovery_window(double threshold) const {
  for (const auto& w : windows) {
    if (w.window > attack_end && w.resolution_rate() >= threshold)
      return w.window;
  }
  return -1;
}

ReactivePlatform::ReactivePlatform(const dns::DnsRegistry& registry,
                                   const attack::AttackSchedule& schedule,
                                   ReactiveParams params)
    : registry_(registry), schedule_(schedule), params_(params) {}

std::vector<dns::DomainId> ReactivePlatform::probe_set(
    netsim::IPv4Addr victim) const {
  std::vector<dns::DomainId> domains = registry_.domains_of_ns_ip(victim);
  if (domains.size() > params_.domains_per_window) {
    // Stable subsample: shuffle with a victim-keyed stream, then truncate.
    netsim::Rng rng(netsim::mix64(
        params_.seed ^ static_cast<std::uint64_t>(victim.value())));
    rng.shuffle(domains);
    domains.resize(params_.domains_per_window);
  }
  std::sort(domains.begin(), domains.end());
  return domains;
}

CampaignWindow ReactivePlatform::probe_window(
    const std::vector<dns::DomainId>& domains, netsim::WindowIndex window,
    bool during_attack, std::uint64_t vantage_id,
    const std::string& vantage_country) const {
  CampaignWindow cw;
  cw.window = window;
  cw.during_attack = during_attack;
  cw.domains_probed = static_cast<std::uint32_t>(domains.size());

  // Probes are spread evenly over the window (ethics: ~1 query / 6 s).
  const std::int64_t window_start_s =
      window * netsim::kSecondsPerWindow;
  const double spacing =
      domains.empty()
          ? 0.0
          : static_cast<double>(netsim::kSecondsPerWindow) / domains.size();

  for (std::size_t i = 0; i < domains.size(); ++i) {
    const dns::DomainId d = domains[i];
    const netsim::SimTime probe_time(
        window_start_s + static_cast<std::int64_t>(spacing * i));
    netsim::Rng rng(netsim::mix64(params_.seed ^
                                  netsim::mix64(probe_time.seconds()) ^
                                  netsim::mix64(d) ^
                                  netsim::mix64(vantage_id * 0x9E37u)));
    bool resolved = false;
    // Iterative mode: target each nameserver of the domain directly.
    const auto& key = registry_.nsset_key(registry_.nsset_of_domain(d));
    for (const auto& ip : key.ips) {
      if (!registry_.has_nameserver(ip)) {  // lame: probe, no answer
        ++cw.per_ns[ip].probes;
        continue;
      }
      const dns::Nameserver& ns = registry_.nameserver(ip);
      const dns::OfferedLoad load{
          schedule_.attack_pps_at(ip, window),
          schedule_.link_utilisation_at(ip, window),
      };
      const dns::QueryOutcome q = ns.query(rng, load, params_.model,
                                           probe_time, vantage_id,
                                           vantage_country);
      NsWindowProbe& tally = cw.per_ns[ip];
      ++tally.probes;
      if (q.responded && q.rtt_ms <= params_.probe_timeout_ms) {
        ++tally.responses;
        if (!q.servfail) resolved = true;
      }
    }
    if (resolved) ++cw.domains_resolved;
  }
  return cw;
}

Campaign ReactivePlatform::run_campaign(
    const telescope::RSDoSEvent& event) const {
  Campaign campaign;
  campaign.victim = event.victim;
  campaign.attack_start = event.start_window;
  campaign.attack_end = event.end_window;

  // Trigger latency: the feed emits a window's records when the window
  // closes; the platform reacts in the next window — within 10 minutes of
  // the attack start, as the paper's pipeline guarantees.
  campaign.trigger_window = event.start_window + 1;

  const std::vector<dns::DomainId> domains = probe_set(event.victim);
  if (domains.empty()) return campaign;

  const netsim::WindowIndex tail_windows =
      params_.post_attack_tail_s / netsim::kSecondsPerWindow;
  const netsim::WindowIndex last = event.end_window + tail_windows;
  for (netsim::WindowIndex w = campaign.trigger_window; w <= last; ++w) {
    campaign.windows.push_back(probe_window(domains, w, w <= event.end_window,
                                            params_.vantage_id,
                                            params_.vantage_country));
  }
  return campaign;
}

// ---- Multi-vantage mode ---------------------------------------------------

std::vector<VantagePoint> default_vantage_points() {
  return {
      {7, "NL", "NL-AMS"},   {101, "US", "US-IAD"}, {202, "US", "US-SJC"},
      {303, "DE", "DE-FRA"}, {404, "JP", "JP-NRT"}, {505, "BR", "BR-GRU"},
      {606, "AU", "AU-SYD"}, {707, "ZA", "ZA-JNB"},
  };
}

double MultiVantageWindow::min_rate() const {
  double lo = 1.0;
  for (const double r : rate_per_vantage) lo = std::min(lo, r);
  return rate_per_vantage.empty() ? 0.0 : lo;
}

double MultiVantageWindow::max_rate() const {
  double hi = 0.0;
  for (const double r : rate_per_vantage) hi = std::max(hi, r);
  return hi;
}

std::size_t MultiVantageCampaign::degraded_windows_any_vantage(
    double threshold) const {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (w.during_attack && w.min_rate() < threshold) ++n;
  }
  return n;
}

std::size_t MultiVantageCampaign::degraded_windows_from(
    std::size_t v, double threshold) const {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (w.during_attack && v < w.rate_per_vantage.size() &&
        w.rate_per_vantage[v] < threshold) {
      ++n;
    }
  }
  return n;
}

std::size_t MultiVantageCampaign::masked_windows(double spread) const {
  std::size_t n = 0;
  for (const auto& w : windows) {
    if (w.during_attack && w.masked(spread)) ++n;
  }
  return n;
}

MultiVantagePlatform::MultiVantagePlatform(
    const dns::DnsRegistry& registry, const attack::AttackSchedule& schedule,
    ReactiveParams params, std::vector<VantagePoint> vps)
    : single_(registry, schedule, params),
      registry_(registry),
      schedule_(schedule),
      params_(params),
      vantages_(std::move(vps)) {}

MultiVantageCampaign MultiVantagePlatform::run_campaign(
    const telescope::RSDoSEvent& event) const {
  MultiVantageCampaign campaign;
  campaign.victim = event.victim;
  campaign.attack_start = event.start_window;
  campaign.attack_end = event.end_window;
  campaign.vantages = vantages_;

  const std::vector<dns::DomainId> domains = single_.probe_set(event.victim);
  if (domains.empty()) return campaign;

  // One single-vantage platform per vantage point, tail disabled: the
  // multi-vantage analysis targets attack-time visibility only. Each
  // vantage probes the same stable domain sample through its own catchment
  // and geofence perspective, with independent randomness streams.
  std::vector<ReactivePlatform> platforms;
  platforms.reserve(vantages_.size());
  for (const auto& vp : vantages_) {
    ReactiveParams vp_params = params_;
    vp_params.vantage_id = vp.id;
    vp_params.vantage_country = vp.country;
    vp_params.post_attack_tail_s = 0;
    platforms.emplace_back(registry_, schedule_, vp_params);
  }

  std::vector<Campaign> per_vantage;
  per_vantage.reserve(platforms.size());
  for (const auto& platform : platforms) {
    per_vantage.push_back(platform.run_campaign(event));
  }

  for (netsim::WindowIndex w = event.start_window + 1; w <= event.end_window;
       ++w) {
    MultiVantageWindow mvw;
    mvw.window = w;
    mvw.during_attack = true;
    for (const auto& c : per_vantage) {
      double rate = 0.0;
      for (const auto& cw : c.windows) {
        if (cw.window == w) rate = cw.resolution_rate();
      }
      mvw.rate_per_vantage.push_back(rate);
    }
    campaign.windows.push_back(std::move(mvw));
  }
  return campaign;
}

std::vector<Campaign> ReactivePlatform::run_all(
    const std::vector<telescope::RSDoSEvent>& events) const {
  std::vector<Campaign> out;
  for (const auto& ev : events) {
    if (!registry_.is_ns_ip(ev.victim)) continue;
    out.push_back(run_campaign(ev));
  }
  return out;
}

}  // namespace ddos::reactive
