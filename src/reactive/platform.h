// Reactive measurement platform (§4.3.1). The paper built this on
// Kafka/Spark/Flume; the plumbing here is an in-process event loop with the
// same measurement semantics:
//
//   * a new RSDoS attack on a nameserver IP triggers a probing campaign
//     within at most 10 minutes of the attack's start;
//   * each campaign probes up to 50 domains delegating to the attacked
//     server, every 5-minute window, for the attack duration plus 24 hours
//     (the post-attack baseline), spreading the 50 probes evenly across
//     the window (~one query every 6 seconds — the ethical rate cap, §8);
//   * unlike OpenINTEL's agnostic resolution, probes target the *full*
//     nameserver list of each domain individually, so per-server
//     responsiveness is observable (mil.ru: "none of the three nameservers
//     responsive").
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "attack/schedule.h"
#include "dns/load_model.h"
#include "dns/registry.h"
#include "netsim/ipv4.h"
#include "netsim/simtime.h"
#include "telescope/rsdos.h"

namespace ddos::reactive {

struct ReactiveParams {
  std::uint32_t domains_per_window = 50;
  double probe_timeout_ms = 1500.0;  // slower answers count as unresponsive
  std::int64_t max_trigger_delay_s = 600;   // <= 10 minutes (§4.3.1)
  std::int64_t post_attack_tail_s = 24 * netsim::kSecondsPerHour;
  dns::LoadModelParams model;
  std::uint64_t vantage_id = 7;        // single NL vantage, stable catchment
  std::string vantage_country = "NL";
  std::uint64_t seed = 99;
};

/// Per-nameserver tallies inside one probing window.
struct NsWindowProbe {
  std::uint32_t probes = 0;
  std::uint32_t responses = 0;
  bool responsive() const { return responses > 0; }
};

/// One 5-minute window of a campaign.
struct CampaignWindow {
  netsim::WindowIndex window = 0;
  bool during_attack = false;
  std::uint32_t domains_probed = 0;
  /// A domain "resolved" if at least one of its nameservers answered.
  std::uint32_t domains_resolved = 0;
  std::map<netsim::IPv4Addr, NsWindowProbe> per_ns;

  double resolution_rate() const {
    return domains_probed
               ? static_cast<double>(domains_resolved) / domains_probed
               : 0.0;
  }
};

/// A full probing campaign for one attack.
struct Campaign {
  netsim::IPv4Addr victim;
  netsim::WindowIndex attack_start = 0;
  netsim::WindowIndex attack_end = 0;   // inclusive
  netsim::WindowIndex trigger_window = 0;
  std::vector<CampaignWindow> windows;

  /// Trigger latency in seconds from attack start.
  std::int64_t trigger_delay_s() const {
    return (trigger_window - attack_start) * netsim::kSecondsPerWindow;
  }
  /// Windows (during the attack) where no probed domain resolved.
  std::size_t fully_unresolvable_attack_windows() const;
  std::size_t attack_windows_probed() const;
  /// First post-attack window with resolution rate >= threshold;
  /// -1 when the campaign never observes recovery.
  netsim::WindowIndex recovery_window(double threshold = 0.9) const;
};

class ReactivePlatform {
 public:
  ReactivePlatform(const dns::DnsRegistry& registry,
                   const attack::AttackSchedule& schedule,
                   ReactiveParams params);

  /// React to one stitched RSDoS event: run the full campaign and return
  /// it. Victims that are not nameserver IPs yield an empty campaign
  /// (no domains to probe) — mirroring the production join.
  Campaign run_campaign(const telescope::RSDoSEvent& event) const;

  /// Feed a whole feed's events; returns one campaign per NS-IP victim.
  std::vector<Campaign> run_all(
      const std::vector<telescope::RSDoSEvent>& events) const;

  const ReactiveParams& params() const { return params_; }

  /// The (stable) domain sample probed for a victim: up to
  /// `domains_per_window` domains delegating to the victim address.
  std::vector<dns::DomainId> probe_set(netsim::IPv4Addr victim) const;

 private:
  CampaignWindow probe_window(const std::vector<dns::DomainId>& domains,
                              netsim::WindowIndex window, bool during_attack,
                              std::uint64_t vantage_id,
                              const std::string& vantage_country) const;

  const dns::DnsRegistry& registry_;
  const attack::AttackSchedule& schedule_;
  ReactiveParams params_;
};

// ---- Multi-vantage mode (§9 future work) ---------------------------------
//
// A single vantage point sits in one anycast catchment: if the attack
// saturates other sites, that vantage sees nothing ("catchment can mask
// ongoing attacks in specific geographic regions", §4.3). Probing the same
// campaign from several vantage points bounds the masked share.

struct VantagePoint {
  std::uint64_t id = 0;     // stable catchment identity
  std::string country;      // geofence interaction
  std::string label;        // e.g. "NL-AMS"
};

/// A built-in spread of vantage points across regions.
std::vector<VantagePoint> default_vantage_points();

struct MultiVantageWindow {
  netsim::WindowIndex window = 0;
  bool during_attack = false;
  /// Resolution rate observed from each vantage (parallel to the
  /// campaign's vantage list).
  std::vector<double> rate_per_vantage;

  double min_rate() const;
  double max_rate() const;
  /// Catchment masking: some vantages see an outage others do not.
  bool masked(double spread = 0.5) const {
    return max_rate() - min_rate() >= spread;
  }
};

struct MultiVantageCampaign {
  netsim::IPv4Addr victim;
  netsim::WindowIndex attack_start = 0;
  netsim::WindowIndex attack_end = 0;
  std::vector<VantagePoint> vantages;
  std::vector<MultiVantageWindow> windows;

  /// Attack windows where at least one vantage saw degradation (< thresh).
  std::size_t degraded_windows_any_vantage(double threshold = 0.9) const;
  /// Attack windows where vantage `v` alone saw degradation.
  std::size_t degraded_windows_from(std::size_t v,
                                    double threshold = 0.9) const;
  /// Attack windows with a masked (vantage-dependent) outage.
  std::size_t masked_windows(double spread = 0.5) const;
};

class MultiVantagePlatform {
 public:
  MultiVantagePlatform(const dns::DnsRegistry& registry,
                       const attack::AttackSchedule& schedule,
                       ReactiveParams params, std::vector<VantagePoint> vps);

  const std::vector<VantagePoint>& vantages() const { return vantages_; }

  /// Probe the attack windows of `event` from every vantage point.
  /// (No 24h tail: the multi-vantage analysis targets attack visibility.)
  MultiVantageCampaign run_campaign(const telescope::RSDoSEvent& event) const;

 private:
  ReactivePlatform single_;
  const dns::DnsRegistry& registry_;
  const attack::AttackSchedule& schedule_;
  ReactiveParams params_;
  std::vector<VantagePoint> vantages_;
};

}  // namespace ddos::reactive
