#include "core/analysis.h"

#include <algorithm>

#include "core/impact.h"
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"
#include "util/stats.h"

namespace ddos::core {

namespace {

struct YearMonth {
  int year = 0;
  int month = 0;
  auto operator<=>(const YearMonth&) const = default;
};

YearMonth ym_of(const telescope::RSDoSEvent& ev) {
  int year = 0, month = 0, dom = 0;
  netsim::day_to_ymd(ev.start_time().day(), year, month, dom);
  return YearMonth{year, month};
}

}  // namespace

void MonthlySummaryFold::add(const telescope::RSDoSEvent& ev) {
  const YearMonth ym = ym_of(ev);
  Acc& acc = by_month_[{ym.year, ym.month}];
  // Table 3 counts every attack on an IP appearing in NS records as a DNS
  // attack; open resolvers are filtered later, in the impact join (the
  // paper surfaces them in Table 5 first).
  if (registry_->is_ns_ip(ev.victim)) {
    ++acc.dns_attacks;
    acc.dns_ips.insert(ev.victim);
  } else {
    ++acc.other_attacks;
    acc.other_ips.insert(ev.victim);
  }
}

std::vector<MonthlyRow> MonthlySummaryFold::finish() const {
  std::vector<MonthlyRow> rows;
  rows.reserve(by_month_.size());
  for (const auto& [ym, acc] : by_month_) {
    MonthlyRow row;
    row.year = ym.first;
    row.month = ym.second;
    row.dns_attacks = acc.dns_attacks;
    row.other_attacks = acc.other_attacks;
    row.dns_ips = acc.dns_ips.size();
    row.other_ips = acc.other_ips.size();
    rows.push_back(row);
  }
  return rows;
}

std::vector<MonthlyRow> monthly_summary(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry) {
  obs::ScopedSpan span(obs::installed_tracer(), "analysis.monthly_summary");
  span.set_items(events.size());
  // One pass of the incremental fold: buckets and victim-IP sets are
  // order-independent, so one serial fold over ~thousands of events costs
  // less than sharding ever saved, and the streaming driver's incremental
  // path exercises the identical accounting.
  MonthlySummaryFold fold(registry);
  for (const auto& ev : events) fold.add(ev);
  return fold.finish();
}

MonthlyRow summary_totals(const std::vector<MonthlyRow>& rows) {
  MonthlyRow total;
  for (const auto& r : rows) {
    total.dns_attacks += r.dns_attacks;
    total.other_attacks += r.other_attacks;
    total.dns_ips += r.dns_ips;
    total.other_ips += r.other_ips;
  }
  return total;
}

std::vector<MonthlyAffectedDomains> monthly_affected_domains(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry) {
  struct Acc {
    std::unordered_set<dns::NssetId> nssets;
    std::unordered_set<netsim::IPv4Addr> ns_ips;
    // Per-day affected NSSets: a coordinated multi-nameserver campaign
    // (the Fig. 5 mega-events) lands on one day, so the largest same-day
    // blast radius is the figure's peak statistic.
    std::map<netsim::DayIndex, std::unordered_set<dns::NssetId>> by_day;
  };
  std::map<YearMonth, Acc> by_month;
  for (const auto& ev : events) {
    if (!registry.is_ns_ip(ev.victim) || registry.is_open_resolver(ev.victim))
      continue;
    Acc& acc = by_month[ym_of(ev)];
    acc.ns_ips.insert(ev.victim);
    auto& day_set = acc.by_day[ev.start_time().day()];
    for (const dns::NssetId nsset : registry.nssets_containing(ev.victim)) {
      acc.nssets.insert(nsset);
      day_set.insert(nsset);
    }
  }
  std::vector<MonthlyAffectedDomains> rows;
  rows.reserve(by_month.size());
  for (const auto& [ym, acc] : by_month) {
    MonthlyAffectedDomains row;
    row.year = ym.year;
    row.month = ym.month;
    // Distinct domains: NSSets partition domains, so summing NSSet sizes
    // over the distinct affected NSSets is an exact distinct-domain count.
    for (const dns::NssetId nsset : acc.nssets)
      row.affected_domains += registry.domains_of_nsset(nsset).size();
    for (const auto& [day, nssets] : acc.by_day) {
      std::uint64_t blast = 0;
      for (const dns::NssetId nsset : nssets)
        blast += registry.domains_of_nsset(nsset).size();
      row.largest_single_event = std::max(row.largest_single_event, blast);
    }
    row.attacked_ns_ips = acc.ns_ips.size();
    rows.push_back(row);
  }
  return rows;
}

std::vector<TargetCount> top_attacked_orgs(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry, const topology::PrefixTable& routes,
    const topology::AsRegistry& orgs, std::size_t k) {
  util::CategoryCounter counter;
  for (const auto& ev : events) {
    if (!registry.is_ns_ip(ev.victim)) continue;  // resolvers stay in: Table 4
    const topology::Asn asn = routes.origin_of(ev.victim);
    if (asn == 0) continue;
    std::string org = orgs.org_of(asn);
    if (org.empty()) org = "AS" + std::to_string(asn);
    counter.add(org);
  }
  std::vector<TargetCount> out;
  for (const auto& [org, n] : counter.top(k))
    out.push_back(TargetCount{org, n});
  return out;
}

std::vector<IpTargetCount> top_attacked_ips(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry, std::size_t k) {
  std::unordered_map<netsim::IPv4Addr, std::uint64_t> counter;
  for (const auto& ev : events) {
    if (!registry.is_ns_ip(ev.victim)) continue;
    ++counter[ev.victim];
  }
  std::vector<IpTargetCount> all;
  all.reserve(counter.size());
  for (const auto& [ip, n] : counter) {
    IpTargetCount row;
    row.ip = ip;
    row.attacks = n;
    row.type =
        registry.is_open_resolver(ip) ? "open-resolver" : "authoritative-ns";
    all.push_back(row);
  }
  std::sort(all.begin(), all.end(),
            [](const IpTargetCount& a, const IpTargetCount& b) {
              if (a.attacks != b.attacks) return a.attacks > b.attacks;
              return a.ip < b.ip;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

std::string port_bucket(std::uint16_t port) {
  switch (port) {
    case 80: return "80";
    case 53: return "53";
    case 443: return "443";
    default: return "other";
  }
}

PortDistribution port_distribution(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry) {
  PortDistribution dist;
  for (const auto& ev : events) {
    if (!registry.is_ns_ip(ev.victim) || registry.is_open_resolver(ev.victim))
      continue;
    ++dist.total;
    if (ev.max_unique_ports > 1) continue;
    ++dist.single_port;
    dist.by_protocol.add(attack::to_string(ev.protocol));
    if (ev.protocol == attack::Protocol::TCP) {
      dist.tcp_ports.add(port_bucket(ev.first_port));
    } else if (ev.protocol == attack::Protocol::UDP) {
      dist.udp_ports.add(port_bucket(ev.first_port));
    }
  }
  return dist;
}

void FailureFold::add(const NssetAttackEvent& ev) {
  ++acc_.events;
  acc_.timeouts += ev.timeouts;
  acc_.servfails += ev.servfails;
  if (ev.any_failure()) {
    ++acc_.events_with_failures;
    acc_.failed_event_ports.add(port_bucket(ev.rsdos.first_port));
  }
}

FailureSummary failure_summary(const std::vector<NssetAttackEvent>& events) {
  obs::ScopedSpan span(obs::installed_tracer(), "analysis.failure_summary");
  span.set_items(events.size());
  FailureFold fold;
  for (const auto& ev : events) fold.add(ev);
  return fold.finish();
}

std::vector<FailurePoint> failure_points(
    const std::vector<NssetAttackEvent>& events) {
  std::vector<FailurePoint> pts;
  pts.reserve(events.size());
  for (const auto& ev : events) {
    if (!ev.any_failure()) continue;
    FailurePoint p;
    p.domains_measured = ev.domains_measured;
    p.failure_rate = ev.failure_rate;
    p.domains_hosted = ev.domains_hosted;
    p.unicast_only = ev.resilience.anycast_class == anycast::AnycastClass::None;
    pts.push_back(p);
  }
  return pts;
}

void ImpactFold::add(const NssetAttackEvent& ev) {
  ++acc_.events;
  if (ev.peak_impact >= kImpairedThreshold) ++acc_.impaired_10x;
  if (ev.peak_impact >= kSevereThreshold) ++acc_.severe_100x;
}

ImpactSummary impact_summary(const std::vector<NssetAttackEvent>& events) {
  obs::ScopedSpan span(obs::installed_tracer(), "analysis.impact_summary");
  span.set_items(events.size());
  ImpactFold fold;
  for (const auto& ev : events) fold.add(ev);
  return fold.finish();
}

std::vector<ImpactPoint> impact_points(
    const std::vector<NssetAttackEvent>& events) {
  std::vector<ImpactPoint> pts;
  pts.reserve(events.size());
  for (const auto& ev : events) {
    ImpactPoint p;
    p.domains_hosted = ev.domains_hosted;
    p.peak_impact = ev.peak_impact;
    p.anycast = ev.resilience.anycast_class == anycast::AnycastClass::Full;
    pts.push_back(p);
  }
  return pts;
}

CorrelationSeries intensity_impact_series(
    const std::vector<NssetAttackEvent>& events,
    const telescope::Darknet& darknet) {
  CorrelationSeries s;
  for (const auto& ev : events) {
    if (ev.peak_impact <= 0.0) continue;
    s.x.push_back(ev.rsdos.max_ppm * darknet.extrapolation_factor() / 60.0);
    s.y.push_back(ev.peak_impact);
  }
  s.pearson = util::pearson(s.x, s.y);
  s.spearman = util::spearman(s.x, s.y);
  return s;
}

CorrelationSeries duration_impact_series(
    const std::vector<NssetAttackEvent>& events) {
  CorrelationSeries s;
  for (const auto& ev : events) {
    if (ev.peak_impact <= 0.0) continue;
    s.x.push_back(static_cast<double>(ev.duration_s()));
    s.y.push_back(ev.peak_impact);
  }
  s.pearson = util::pearson(s.x, s.y);
  s.spearman = util::spearman(s.x, s.y);
  return s;
}

util::CategoryCounter duration_mode_histogram(
    const std::vector<NssetAttackEvent>& events) {
  util::CategoryCounter counter;
  for (const auto& ev : events) {
    const std::int64_t minutes = ev.duration_s() / 60;
    std::string bucket;
    if (minutes <= 15) bucket = "<=15m";
    else if (minutes <= 30) bucket = "15-30m";
    else if (minutes <= 60) bucket = "30-60m";
    else if (minutes <= 180) bucket = "1-3h";
    else if (minutes <= 720) bucket = "3-12h";
    else bucket = ">12h";
    counter.add(bucket);
  }
  return counter;
}

namespace {

GroupImpact summarize_group(const std::string& name,
                            const std::vector<const NssetAttackEvent*>& evs) {
  GroupImpact g;
  g.group = name;
  g.events = evs.size();
  std::vector<double> impacts;
  impacts.reserve(evs.size());
  for (const auto* ev : evs) {
    impacts.push_back(ev->peak_impact);
    if (ev->peak_impact >= kImpairedThreshold) ++g.impaired_10x;
    if (ev->peak_impact >= kSevereThreshold) ++g.severe_100x;
    if (ev->any_failure()) ++g.events_with_failures;
    if (ev->complete_failure()) ++g.complete_failures;
  }
  g.median_impact = util::median(impacts);
  g.p90_impact = util::percentile(impacts, 90.0);
  g.max_impact = util::max_of(impacts);
  return g;
}

template <typename KeyFn>
std::vector<GroupImpact> group_by(
    const std::vector<NssetAttackEvent>& events,
    const std::vector<std::string>& order, KeyFn&& key_of) {
  std::map<std::string, std::vector<const NssetAttackEvent*>> groups;
  for (const auto& ev : events) groups[key_of(ev)].push_back(&ev);
  std::vector<GroupImpact> out;
  for (const auto& name : order) {
    const auto it = groups.find(name);
    out.push_back(summarize_group(
        name, it == groups.end()
                  ? std::vector<const NssetAttackEvent*>{}
                  : it->second));
  }
  return out;
}

}  // namespace

std::vector<GroupImpact> impact_by_anycast(
    const std::vector<NssetAttackEvent>& events) {
  return group_by(events, {"unicast", "partial-anycast", "anycast"},
                  [](const NssetAttackEvent& ev) {
                    return std::string(
                        anycast::to_string(ev.resilience.anycast_class));
                  });
}

std::vector<GroupImpact> impact_by_as_diversity(
    const std::vector<NssetAttackEvent>& events) {
  return group_by(events, {"1 ASN", "2 ASNs", "3+ ASNs"},
                  [](const NssetAttackEvent& ev) -> std::string {
                    const auto n = ev.resilience.distinct_asns;
                    if (n <= 1) return "1 ASN";
                    if (n == 2) return "2 ASNs";
                    return "3+ ASNs";
                  });
}

std::vector<GroupImpact> impact_by_prefix_diversity(
    const std::vector<NssetAttackEvent>& events) {
  return group_by(events, {"1 /24", "2 /24s", "3+ /24s"},
                  [](const NssetAttackEvent& ev) -> std::string {
                    const auto n = ev.resilience.distinct_slash24;
                    if (n <= 1) return "1 /24";
                    if (n == 2) return "2 /24s";
                    return "3+ /24s";
                  });
}

FailureAttribution failure_attribution(
    const std::vector<NssetAttackEvent>& events) {
  FailureAttribution attr;
  for (const auto& ev : events) {
    if (!ev.complete_failure()) continue;
    ++attr.complete_failures;
    if (ev.resilience.distinct_asns <= 1) ++attr.single_asn;
    if (ev.resilience.distinct_slash24 <= 1) ++attr.single_prefix;
    if (ev.resilience.anycast_class == anycast::AnycastClass::None)
      ++attr.unicast;
  }
  return attr;
}

std::vector<TldBreakdownRow> tld_breakdown(
    const std::vector<NssetAttackEvent>& events,
    const dns::DnsRegistry& registry, std::size_t top_k) {
  std::unordered_set<dns::NssetId> seen;
  util::CategoryCounter counter;
  for (const auto& ev : events) {
    if (!seen.insert(ev.nsset).second) continue;  // count each NSSet once
    for (const dns::DomainId d : registry.domains_of_nsset(ev.nsset)) {
      counter.add(std::string(registry.domain_name(d).tld()));
    }
  }
  std::vector<TldBreakdownRow> rows;
  for (const auto& [tld, count] : counter.top(top_k)) {
    rows.push_back(TldBreakdownRow{tld, count});
  }
  return rows;
}

std::vector<CompanyImpact> top_companies_by_impact(
    const std::vector<NssetAttackEvent>& events, std::size_t k) {
  std::unordered_map<std::string, double> best;
  for (const auto& ev : events) {
    if (ev.resilience.org.empty()) continue;
    double& cur = best[ev.resilience.org];
    cur = std::max(cur, ev.peak_impact);
  }
  std::vector<CompanyImpact> all;
  all.reserve(best.size());
  for (const auto& [org, impact] : best)
    all.push_back(CompanyImpact{org, impact});
  std::sort(all.begin(), all.end(),
            [](const CompanyImpact& a, const CompanyImpact& b) {
              if (a.max_impact != b.max_impact)
                return a.max_impact > b.max_impact;
              return a.org < b.org;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace ddos::core
