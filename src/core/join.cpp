#include "core/join.h"

#include <algorithm>
#include <iterator>

#include "core/impact.h"
#include "exec/parallel.h"
#include "obs/obs.h"

namespace ddos::core {

JoinPipeline::JoinPipeline(const dns::DnsRegistry& registry,
                           const openintel::MeasurementStore& store,
                           const ResilienceClassifier& classifier,
                           JoinParams params)
    : registry_(registry),
      store_(store),
      classifier_(classifier),
      params_(params) {}

bool JoinPipeline::build_event(const telescope::RSDoSEvent& ev,
                               dns::NssetId nsset, NssetAttackEvent& out,
                               BaselineCache* baselines) const {
  const netsim::DayIndex day_before = ev.start_time().day() - 1;
  double baseline;
  if (baselines) {
    const auto [slot, inserted] = baselines->try_emplace(
        openintel::MeasurementStore::make_day_key(nsset, day_before));
    if (inserted) *slot = store_.daily_avg_rtt(nsset, day_before);
    baseline = *slot;
  } else {
    baseline = store_.daily_avg_rtt(nsset, day_before);
  }

  openintel::Aggregate total;
  double peak_impact = 0.0;
  double impact_weighted_sum = 0.0;
  std::uint64_t impact_weight = 0;
  for (netsim::WindowIndex w = ev.start_window; w <= ev.end_window; ++w) {
    const openintel::Aggregate* agg = store_.window(nsset, w);
    if (!agg) continue;
    total.merge(*agg);
    if (baseline > 0.0) {
      const double impact = impact_on_rtt(*agg, baseline);
      if (impact > 0.0) {
        peak_impact = std::max(peak_impact, impact);
        impact_weighted_sum += impact * agg->measured;
        impact_weight += agg->measured;
      }
    }
  }

  if (total.measured < params_.min_measured_domains) return false;
  if (baseline <= 0.0) return false;

  out.rsdos = ev;
  out.nsset = nsset;
  out.domains_hosted = registry_.domains_of_nsset(nsset).size();
  out.domains_measured = total.measured;
  out.baseline_rtt_ms = baseline;
  out.peak_impact = peak_impact;
  out.mean_impact =
      impact_weight ? impact_weighted_sum / static_cast<double>(impact_weight)
                    : 0.0;
  out.ok = total.ok;
  out.timeouts = total.timeout;
  out.servfails = total.servfail;
  out.failure_rate = total.failure_rate();
  out.resilience = classifier_.classify(nsset, ev.start_time().day());
  return true;
}

std::vector<NssetAttackEvent> merge_concurrent_events(
    std::vector<NssetAttackEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const NssetAttackEvent& a, const NssetAttackEvent& b) {
              if (a.nsset != b.nsset) return a.nsset < b.nsset;
              return a.rsdos.start_window < b.rsdos.start_window;
            });
  std::vector<NssetAttackEvent> out;
  for (auto& ev : events) {
    if (!out.empty() && out.back().nsset == ev.nsset &&
        ev.rsdos.start_window <= out.back().rsdos.end_window) {
      NssetAttackEvent& merged = out.back();
      merged.rsdos.end_window =
          std::max(merged.rsdos.end_window, ev.rsdos.end_window);
      merged.rsdos.max_ppm = std::max(merged.rsdos.max_ppm, ev.rsdos.max_ppm);
      merged.rsdos.total_packets += ev.rsdos.total_packets;
      merged.peak_impact = std::max(merged.peak_impact, ev.peak_impact);
      merged.mean_impact = std::max(merged.mean_impact, ev.mean_impact);
      // Keep the widest constituent's measurement tallies: the windows of
      // concurrent events overlap, so summing would double count.
      if (ev.domains_measured > merged.domains_measured) {
        merged.domains_measured = ev.domains_measured;
        merged.ok = ev.ok;
        merged.timeouts = ev.timeouts;
        merged.servfails = ev.servfails;
        merged.failure_rate = ev.failure_rate;
      }
      continue;
    }
    out.push_back(std::move(ev));
  }
  return out;
}

void JoinPipeline::join_event(const telescope::RSDoSEvent& ev,
                              std::vector<NssetAttackEvent>& out,
                              JoinStats& stats,
                              BaselineCache* baselines) const {
  if (registry_.is_open_resolver(ev.victim)) {
    ++stats.open_resolver_filtered;
    return;
  }
  if (!registry_.is_ns_ip(ev.victim)) {
    ++stats.non_dns;
    return;
  }
  ++stats.dns_events;

  const netsim::DayIndex day_before = ev.start_time().day() - 1;
  if (!store_.ns_seen_on(ev.victim, day_before)) {
    // The previous-day join (§4.2): a server never successfully queried
    // the day before cannot be mapped to hosted domains.
    ++stats.not_seen_day_before;
    return;
  }

  for (const dns::NssetId nsset : registry_.nssets_containing(ev.victim)) {
    NssetAttackEvent nae;
    if (build_event(ev, nsset, nae, baselines)) {
      out.push_back(std::move(nae));
      ++stats.joined;
    } else {
      ++stats.below_measurement_floor;
    }
  }
}

std::vector<NssetAttackEvent> JoinPipeline::finalize(
    std::vector<NssetAttackEvent> out, JoinStats stats) {
  if (params_.merge_concurrent) {
    out = merge_concurrent_events(std::move(out));
    stats.joined = out.size();
  }
  stats_ = stats;
  if (obs::Observer* o = obs::Observer::installed()) {
    obs::PipelineMetrics& p = o->pipeline;
    p.join_events_in.inc(stats_.total_events);
    p.join_events_out.inc(stats_.joined);
    p.join_open_resolver_filtered.inc(stats_.open_resolver_filtered);
    p.join_non_dns.inc(stats_.non_dns);
    p.join_not_seen_day_before.inc(stats_.not_seen_day_before);
    p.join_below_floor.inc(stats_.below_measurement_floor);
  }
  return out;
}

std::vector<NssetAttackEvent> JoinPipeline::run(
    const std::vector<telescope::RSDoSEvent>& events) {
  obs::ScopedSpan span(obs::installed_tracer(), "join.run");
  span.set_items(events.size());
  std::vector<NssetAttackEvent> out;
  JoinStats stats;
  stats.total_events = events.size();

  // Per-event dispositions are independent const reads of the registry,
  // store, and classifier, so events shard across the pool; the ordered
  // reduction below re-assembles output and stats in event order.
  struct ShardOut {
    std::vector<NssetAttackEvent> joined;
    JoinStats stats;
  };
  exec::RegionOptions opts;
  opts.label = "join.events";
  exec::parallel_map_reduce(
      events.size(), opts, 0,
      [&](const exec::ShardRange& range) {
        ShardOut shard;
        // Most events fail the victim classification, so the range size is
        // a comfortable upper bound that spares push_back regrowth.
        shard.joined.reserve(range.size());
        BaselineCache baselines;
        for (std::size_t i = range.begin; i < range.end; ++i) {
          join_event(events[i], shard.joined, shard.stats, &baselines);
        }
        return shard;
      },
      [&](int&, ShardOut&& shard) {
        out.insert(out.end(),
                   std::make_move_iterator(shard.joined.begin()),
                   std::make_move_iterator(shard.joined.end()));
        stats.open_resolver_filtered += shard.stats.open_resolver_filtered;
        stats.non_dns += shard.stats.non_dns;
        stats.dns_events += shard.stats.dns_events;
        stats.not_seen_day_before += shard.stats.not_seen_day_before;
        stats.below_measurement_floor += shard.stats.below_measurement_floor;
        stats.joined += shard.stats.joined;
      });
  return finalize(std::move(out), stats);
}

}  // namespace ddos::core
