#include "core/impact.h"

namespace ddos::core {

double impact_on_rtt(const openintel::Aggregate& window_agg,
                     double baseline_avg_rtt_ms) {
  if (baseline_avg_rtt_ms <= 0.0) return 0.0;
  if (window_agg.rtt.empty()) return 0.0;
  return window_agg.avg_rtt() / baseline_avg_rtt_ms;
}

double failure_rate(const openintel::Aggregate& window_agg) {
  return window_agg.failure_rate();
}

}  // namespace ddos::core
