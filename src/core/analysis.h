// Longitudinal analyses (§6) — pure functions over the telescope events
// and joined NSSet-attack events that produce the data behind every table
// and figure of the evaluation. Benches and examples format these; the
// logic lives here so tests can pin it down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/join.h"
#include "dns/registry.h"
#include "telescope/darknet.h"
#include "telescope/rsdos.h"
#include "topology/as_registry.h"
#include "topology/prefix_table.h"
#include "util/histogram.h"

namespace ddos::core {

// ---------------------------------------------------------------- Table 3

struct MonthlyRow {
  int year = 0;
  int month = 0;
  std::uint64_t dns_attacks = 0;
  std::uint64_t other_attacks = 0;
  std::uint64_t dns_ips = 0;    // unique victim IPs that are nameservers
  std::uint64_t other_ips = 0;  // unique victim IPs that are not
  std::uint64_t total_attacks() const { return dns_attacks + other_attacks; }
  std::uint64_t total_ips() const { return dns_ips + other_ips; }
  double dns_attack_share() const {
    return total_attacks()
               ? static_cast<double>(dns_attacks) / total_attacks()
               : 0.0;
  }
};

/// Per-month split of telescope events into DNS-infrastructure attacks
/// (victim is a nameserver IP; open resolvers filtered) and the rest.
std::vector<MonthlyRow> monthly_summary(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry);

/// Incremental form of monthly_summary: add() one telescope event at a
/// time — in any order; month buckets and victim-IP sets are
/// order-independent — and finish() materialises the rows. The streaming
/// driver folds events as day batches retire instead of holding the full
/// vector; monthly_summary() itself is one fold pass, so both paths share
/// the accounting.
class MonthlySummaryFold {
 public:
  explicit MonthlySummaryFold(const dns::DnsRegistry& registry)
      : registry_(&registry) {}

  void add(const telescope::RSDoSEvent& ev);
  std::vector<MonthlyRow> finish() const;

 private:
  struct Acc {
    std::uint64_t dns_attacks = 0;
    std::uint64_t other_attacks = 0;
    std::unordered_set<netsim::IPv4Addr> dns_ips;
    std::unordered_set<netsim::IPv4Addr> other_ips;
  };
  const dns::DnsRegistry* registry_;
  std::map<std::pair<int, int>, Acc> by_month_;  // (year, month)
};

/// Column totals of Table 3.
MonthlyRow summary_totals(const std::vector<MonthlyRow>& rows);

// ----------------------------------------------------------------- Fig 5

struct MonthlyAffectedDomains {
  int year = 0;
  int month = 0;
  std::uint64_t affected_domains = 0;   // distinct domains, union over month
  std::uint64_t largest_single_event = 0;  // biggest same-day blast radius
  std::uint64_t attacked_ns_ips = 0;
};

std::vector<MonthlyAffectedDomains> monthly_affected_domains(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry);

// ------------------------------------------------------------ Tables 4/5

struct TargetCount {
  std::string label;  // organisation (Table 4) or ip + type (Table 5)
  std::uint64_t attacks = 0;
};

/// Top-k organisations by attack-event count over DNS-related victims
/// (nameserver IPs and open resolvers appearing as NS targets, as in the
/// paper's Table 4 which includes Google/Cloudflare resolver IPs).
std::vector<TargetCount> top_attacked_orgs(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry, const topology::PrefixTable& routes,
    const topology::AsRegistry& orgs, std::size_t k);

struct IpTargetCount {
  netsim::IPv4Addr ip;
  std::uint64_t attacks = 0;
  std::string type;  // "open-resolver", "authoritative-ns"
};

std::vector<IpTargetCount> top_attacked_ips(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry, std::size_t k);

// ----------------------------------------------------------------- Fig 6

struct PortDistribution {
  std::uint64_t total = 0;
  std::uint64_t single_port = 0;      // 80.7% in the paper
  util::CategoryCounter by_protocol;  // among single-port attacks
  util::CategoryCounter tcp_ports;    // "80", "53", "443", "other"
  util::CategoryCounter udp_ports;
  double single_port_share() const {
    return total ? static_cast<double>(single_port) / total : 0.0;
  }
};

/// Protocol/port mix over DNS-infrastructure attack events (§6.2).
PortDistribution port_distribution(
    const std::vector<telescope::RSDoSEvent>& events,
    const dns::DnsRegistry& registry);

/// Collapse a port number to the paper's buckets: "80", "53", "443",
/// "other".
std::string port_bucket(std::uint16_t port);

// ---------------------------------------------------- Fig 7 and §6.3.1

struct FailureSummary {
  std::uint64_t events = 0;               // joined NSSet-attack events
  std::uint64_t events_with_failures = 0; // ~1% in the paper
  std::uint64_t timeouts = 0;
  std::uint64_t servfails = 0;
  util::CategoryCounter failed_event_ports;  // port mix of harmful attacks
  double failing_event_share() const {
    return events ? static_cast<double>(events_with_failures) / events : 0.0;
  }
  double timeout_share_of_failures() const {
    const std::uint64_t f = timeouts + servfails;
    return f ? static_cast<double>(timeouts) / f : 0.0;
  }
};

FailureSummary failure_summary(const std::vector<NssetAttackEvent>& events);

/// Incremental form of failure_summary: integer tallies and a port
/// counter, both order-independent, folded one joined event at a time.
class FailureFold {
 public:
  void add(const NssetAttackEvent& ev);
  FailureSummary finish() const { return acc_; }

 private:
  FailureSummary acc_;
};

/// Scatter points of Fig. 7: x = domains measured during the attack,
/// y = failure rate, colour = hosted-domain magnitude.
struct FailurePoint {
  std::uint32_t domains_measured = 0;
  double failure_rate = 0.0;
  std::uint64_t domains_hosted = 0;
  bool unicast_only = false;
};

std::vector<FailurePoint> failure_points(
    const std::vector<NssetAttackEvent>& events);

// ----------------------------------------------------------------- Fig 8

struct ImpactSummary {
  std::uint64_t events = 0;
  std::uint64_t impaired_10x = 0;  // >= 10-fold RTT increase (~5% in paper)
  std::uint64_t severe_100x = 0;   // >= 100-fold (~1/3 of the impaired)
  double impaired_share() const {
    return events ? static_cast<double>(impaired_10x) / events : 0.0;
  }
  double severe_share_of_impaired() const {
    return impaired_10x ? static_cast<double>(severe_100x) / impaired_10x
                        : 0.0;
  }
};

ImpactSummary impact_summary(const std::vector<NssetAttackEvent>& events);

/// Incremental form of impact_summary: pure threshold counters.
class ImpactFold {
 public:
  void add(const NssetAttackEvent& ev);
  ImpactSummary finish() const { return acc_; }

 private:
  ImpactSummary acc_;
};

struct ImpactPoint {
  std::uint64_t domains_hosted = 0;
  double peak_impact = 0.0;
  bool anycast = false;  // Full anycast per the census
};

std::vector<ImpactPoint> impact_points(
    const std::vector<NssetAttackEvent>& events);

// ------------------------------------------------------------- Figs 9/10

struct CorrelationSeries {
  std::vector<double> x;
  std::vector<double> y;
  double pearson = 0.0;
  double spearman = 0.0;
  std::size_t n() const { return x.size(); }
};

/// Fig. 9: x = inferred attack intensity (telescope max ppm extrapolated
/// to victim pps through the darknet fraction), y = peak Impact_on_RTT.
CorrelationSeries intensity_impact_series(
    const std::vector<NssetAttackEvent>& events,
    const telescope::Darknet& darknet);

/// Fig. 10: x = attack duration (seconds), y = peak Impact_on_RTT.
CorrelationSeries duration_impact_series(
    const std::vector<NssetAttackEvent>& events);

/// Histogram of event durations in minutes (paper: bimodal, 15 and 60).
util::CategoryCounter duration_mode_histogram(
    const std::vector<NssetAttackEvent>& events);

// ------------------------------------------------------------ Figs 11-13

struct GroupImpact {
  std::string group;
  std::uint64_t events = 0;
  double median_impact = 0.0;
  double p90_impact = 0.0;
  double max_impact = 0.0;
  std::uint64_t impaired_10x = 0;
  std::uint64_t severe_100x = 0;
  std::uint64_t events_with_failures = 0;
  std::uint64_t complete_failures = 0;
};

/// Fig. 11 — by anycast class (unicast / partial / full).
std::vector<GroupImpact> impact_by_anycast(
    const std::vector<NssetAttackEvent>& events);

/// Fig. 12 — by AS diversity (1 / 2 / 3+ distinct origin ASNs).
std::vector<GroupImpact> impact_by_as_diversity(
    const std::vector<NssetAttackEvent>& events);

/// Fig. 13 — by /24 prefix diversity (1 / 2 / 3+ distinct /24s).
std::vector<GroupImpact> impact_by_prefix_diversity(
    const std::vector<NssetAttackEvent>& events);

/// §6.6.2/§6.6.3 attribution: among complete-failure events, the share on
/// single-ASN and single-/24 NSSets (81% and 60% in the paper).
struct FailureAttribution {
  std::uint64_t complete_failures = 0;
  std::uint64_t single_asn = 0;
  std::uint64_t single_prefix = 0;
  std::uint64_t unicast = 0;
  double single_asn_share() const {
    return complete_failures
               ? static_cast<double>(single_asn) / complete_failures
               : 0.0;
  }
  double single_prefix_share() const {
    return complete_failures
               ? static_cast<double>(single_prefix) / complete_failures
               : 0.0;
  }
  double unicast_share() const {
    return complete_failures
               ? static_cast<double>(unicast) / complete_failures
               : 0.0;
  }
};

FailureAttribution failure_attribution(
    const std::vector<NssetAttackEvent>& events);

// ------------------------------------------------------------ TLD slicing

/// Affected-domain counts by TLD — the §5.1 "two-thirds of the affected
/// domains were .nl" style breakdown, over the domains of the NSSets the
/// joined events touched.
struct TldBreakdownRow {
  std::string tld;
  std::uint64_t affected_domains = 0;
};

std::vector<TldBreakdownRow> tld_breakdown(
    const std::vector<NssetAttackEvent>& events,
    const dns::DnsRegistry& registry, std::size_t top_k = 10);

// ---------------------------------------------------------------- Table 6

struct CompanyImpact {
  std::string org;
  double max_impact = 0.0;
};

/// Top-k organisations by maximum observed Impact_on_RTT (Table 6).
std::vector<CompanyImpact> top_companies_by_impact(
    const std::vector<NssetAttackEvent>& events, std::size_t k);

}  // namespace ddos::core
