// Structural DNS robustness audit — the ecosystem-health view behind the
// paper's resilience recommendations (§9) and its related work: Allman's
// "Comments on DNS Robustness" (IMC 2018), RFC 1034's two-nameserver
// minimum, RFC 2182's topological-diversity guidance, the anycast-adoption
// characterisation of Sommese et al. (TMA 2021), and the lame-delegation
// study of Akiwate et al. (IMC 2020).
//
// The auditor walks the registry and classifies every delegation before
// any attack happens: the paper's central finding is precisely that these
// static properties predict who survives (§6.6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anycast/census.h"
#include "dns/registry.h"
#include "topology/prefix_table.h"

namespace ddos::core {

enum class DelegationIssue : std::uint8_t {
  SingleNameserver,    // violates RFC 1034's >=2 requirement
  SingleSlash24,       // all NS in one /24 (the mil.ru anti-pattern)
  SingleAsn,           // one organisation's infrastructure end to end
  LameNameserver,      // NS address with no server behind it
  OpenResolverAsNs,    // NS record pointing at a public resolver
};
const char* to_string(DelegationIssue issue);

struct DelegationFinding {
  dns::DomainId domain = 0;
  DelegationIssue issue = DelegationIssue::SingleNameserver;
};

/// Ecosystem-level audit aggregates (per-domain counts).
struct AuditSummary {
  std::uint64_t domains = 0;

  std::uint64_t single_ns = 0;
  std::uint64_t single_slash24 = 0;
  std::uint64_t single_asn = 0;
  std::uint64_t with_lame_ns = 0;
  std::uint64_t with_open_resolver_ns = 0;

  // Adoption view (Sommese et al. 2021 / Fig. 11 priors).
  std::uint64_t full_anycast = 0;
  std::uint64_t partial_anycast = 0;
  std::uint64_t multi_asn = 0;
  std::uint64_t multi_prefix = 0;

  double share(std::uint64_t count) const {
    return domains ? static_cast<double>(count) / domains : 0.0;
  }
};

class DelegationAuditor {
 public:
  DelegationAuditor(const dns::DnsRegistry& registry,
                    const anycast::AnycastCensus& census,
                    const topology::PrefixTable& routes);

  /// Classify one domain's delegation (census snapshot as of `day`).
  std::vector<DelegationIssue> audit_domain(dns::DomainId domain,
                                            netsim::DayIndex day) const;

  /// Audit the whole registry; `findings` (optional) receives per-domain
  /// issue rows for reporting.
  AuditSummary audit_all(netsim::DayIndex day,
                         std::vector<DelegationFinding>* findings =
                             nullptr) const;

 private:
  const dns::DnsRegistry& registry_;
  const anycast::AnycastCensus& census_;
  const topology::PrefixTable& routes_;
};

}  // namespace ddos::core
