// The data-join pipeline (Fig. 1, §4.2) — the paper's methodological
// contribution. Steps, per RSDoS event:
//
//   1. classify the victim: open resolver (filtered, Table 5 discussion),
//      nameserver IP, or non-DNS;
//   2. previous-day join: the victim must have been a nameserver
//      successfully queried on the day before the attack (using the day
//      before minimises missing servers already unreachable under attack);
//   3. expand to NSSets containing the victim, then to hosted domains;
//   4. pull the per-NSSet 5-minute aggregates across the attack windows,
//      compute Impact_on_RTT against the previous-day baseline and the
//      failure rates, keeping only NSSet-events with at least
//      `min_measured_domains` measurements (§6.3's >=5 filter);
//   5. attach resilience metadata (anycast class, AS/prefix diversity).
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attack.h"
#include "core/resilience.h"
#include "dns/registry.h"
#include "openintel/storage.h"
#include "telescope/rsdos.h"
#include "util/flat_map.h"

namespace ddos::core {

/// One NSSet affected by one RSDoS event — the paper's unit of impact
/// analysis (12,691 of these in the original study, §6.3).
struct NssetAttackEvent {
  telescope::RSDoSEvent rsdos;
  dns::NssetId nsset = dns::kInvalidNsset;

  std::uint64_t domains_hosted = 0;   // NSSet size (hosting magnitude axes)
  std::uint32_t domains_measured = 0; // measurements inside attack windows

  double baseline_rtt_ms = 0.0;  // previous-day NSSet average
  double peak_impact = 0.0;      // max over windows of Impact_on_RTT
  double mean_impact = 0.0;      // measurement-weighted mean impact

  std::uint32_t ok = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t servfails = 0;
  double failure_rate = 0.0;     // (timeouts+servfails)/measured

  ResilienceProfile resilience;

  bool any_failure() const { return timeouts + servfails > 0; }
  bool complete_failure() const {
    return domains_measured > 0 && ok == 0;
  }
  std::int64_t duration_s() const { return rsdos.duration_s(); }

  /// Field-exact equality — the `generate --store` / `analyze --store`
  /// round trip and the re-join assertion compare events bit-for-bit.
  friend bool operator==(const NssetAttackEvent&,
                         const NssetAttackEvent&) = default;
};

/// Join-level accounting: how each telescope event was disposed of.
struct JoinStats {
  std::uint64_t total_events = 0;
  std::uint64_t open_resolver_filtered = 0;
  std::uint64_t non_dns = 0;            // victim not a nameserver IP
  std::uint64_t not_seen_day_before = 0;
  std::uint64_t below_measurement_floor = 0;  // <5 measured domains
  std::uint64_t no_baseline = 0;
  std::uint64_t joined = 0;             // NSSet-events produced
  std::uint64_t dns_events = 0;         // events whose victim is an NS IP

  friend bool operator==(const JoinStats&, const JoinStats&) = default;
};

struct JoinParams {
  std::uint32_t min_measured_domains = 5;  // §6.3 noise floor
  /// Also treat attacks on the /24 containing a nameserver as DNS-infra
  /// attacks (§6: "either directly targeting nameserver IPs or targeting
  /// /24s that host nameservers"). Direct-IP matches only when false.
  bool match_slash24 = false;
  /// Merge NSSet-events whose telescope events overlap in time on the same
  /// NSSet (an attack hitting all three nameservers of a delegation is one
  /// "event of attack to a distinct NSSet", as §6.3 counts them).
  bool merge_concurrent = true;
};

/// Collapse events on the same NSSet with overlapping window ranges into
/// one (keeping the union of windows, the max ppm and the max impact; the
/// measured/failure tallies of the widest constituent).
std::vector<NssetAttackEvent> merge_concurrent_events(
    std::vector<NssetAttackEvent> events);

class JoinPipeline {
 public:
  JoinPipeline(const dns::DnsRegistry& registry,
               const openintel::MeasurementStore& store,
               const ResilienceClassifier& classifier, JoinParams params = {});

  /// Run the join over stitched telescope events.
  std::vector<NssetAttackEvent> run(
      const std::vector<telescope::RSDoSEvent>& events);

  const JoinStats& stats() const { return stats_; }
  const JoinParams& params() const { return params_; }

  /// Memo of previous-day baseline RTTs, keyed by the store's (nsset, day)
  /// key. run() keeps one per shard: overlapping telescope events on the
  /// same NSSet would otherwise re-probe daily_avg_rtt once per event.
  using BaselineCache = util::FlatMap<std::uint64_t, double>;

  /// The NSSet-level impact computation for one (event, nsset) pair;
  /// exposed for the reactive platform and tests. Returns false when the
  /// pair fails the measurement floor or baseline requirements. `baselines`
  /// (optional) memoises the previous-day RTT probe across calls.
  bool build_event(const telescope::RSDoSEvent& ev, dns::NssetId nsset,
                   NssetAttackEvent& out,
                   BaselineCache* baselines = nullptr) const;

  /// Dispose of ONE telescope event: classify the victim, previous-day
  /// join, expand to NSSets, build the NSSet-events. Appends produced
  /// events to `out` and bumps `stats` (total_events excepted — callers
  /// own that tally). This is the shard-loop body of run(), shared with
  /// the streaming driver so both paths run literally the same code.
  void join_event(const telescope::RSDoSEvent& ev,
                  std::vector<NssetAttackEvent>& out, JoinStats& stats,
                  BaselineCache* baselines = nullptr) const;

  /// Shared tail of run(): optional concurrent-event merge, final joined
  /// count, stats publication and observer metrics. The streaming driver
  /// assembles its event-ordered joined vector and summed stats, then
  /// calls this — so merge semantics and accounting cannot drift between
  /// the two paths.
  std::vector<NssetAttackEvent> finalize(std::vector<NssetAttackEvent> out,
                                         JoinStats stats);

 private:
  const dns::DnsRegistry& registry_;
  const openintel::MeasurementStore& store_;
  const ResilienceClassifier& classifier_;
  JoinParams params_;
  JoinStats stats_;
};

}  // namespace ddos::core
