#include "core/audit.h"

#include <unordered_set>

namespace ddos::core {

const char* to_string(DelegationIssue issue) {
  switch (issue) {
    case DelegationIssue::SingleNameserver: return "single-nameserver";
    case DelegationIssue::SingleSlash24: return "single-/24";
    case DelegationIssue::SingleAsn: return "single-asn";
    case DelegationIssue::LameNameserver: return "lame-nameserver";
    case DelegationIssue::OpenResolverAsNs: return "open-resolver-as-ns";
  }
  return "unknown";
}

DelegationAuditor::DelegationAuditor(const dns::DnsRegistry& registry,
                                     const anycast::AnycastCensus& census,
                                     const topology::PrefixTable& routes)
    : registry_(registry), census_(census), routes_(routes) {}

std::vector<DelegationIssue> DelegationAuditor::audit_domain(
    dns::DomainId domain, netsim::DayIndex /*day*/) const {
  std::vector<DelegationIssue> issues;
  const auto& key = registry_.nsset_key(registry_.nsset_of_domain(domain));

  if (key.ips.size() < 2) issues.push_back(DelegationIssue::SingleNameserver);

  std::unordered_set<netsim::IPv4Addr> nets;
  std::unordered_set<topology::Asn> asns;
  bool lame = false, resolver_ns = false;
  for (const auto& ip : key.ips) {
    nets.insert(ip.slash24());
    const topology::Asn asn = routes_.origin_of(ip);
    if (asn != 0) asns.insert(asn);
    if (!registry_.has_nameserver(ip)) lame = true;
    if (registry_.is_open_resolver(ip)) resolver_ns = true;
  }
  if (key.ips.size() >= 2 && nets.size() == 1)
    issues.push_back(DelegationIssue::SingleSlash24);
  if (key.ips.size() >= 2 && asns.size() <= 1)
    issues.push_back(DelegationIssue::SingleAsn);
  if (lame) issues.push_back(DelegationIssue::LameNameserver);
  if (resolver_ns) issues.push_back(DelegationIssue::OpenResolverAsNs);
  return issues;
}

AuditSummary DelegationAuditor::audit_all(
    netsim::DayIndex day, std::vector<DelegationFinding>* findings) const {
  AuditSummary summary;
  for (dns::DomainId d = registry_.first_domain(); d < registry_.end_domain();
       ++d) {
    ++summary.domains;
    for (const DelegationIssue issue : audit_domain(d, day)) {
      switch (issue) {
        case DelegationIssue::SingleNameserver: ++summary.single_ns; break;
        case DelegationIssue::SingleSlash24: ++summary.single_slash24; break;
        case DelegationIssue::SingleAsn: ++summary.single_asn; break;
        case DelegationIssue::LameNameserver: ++summary.with_lame_ns; break;
        case DelegationIssue::OpenResolverAsNs:
          ++summary.with_open_resolver_ns;
          break;
      }
      if (findings) findings->push_back(DelegationFinding{d, issue});
    }

    // Adoption view (no issue, just classification).
    const auto& key = registry_.nsset_key(registry_.nsset_of_domain(d));
    switch (census_.classify(key.ips, day)) {
      case anycast::AnycastClass::Full: ++summary.full_anycast; break;
      case anycast::AnycastClass::Partial: ++summary.partial_anycast; break;
      case anycast::AnycastClass::None: break;
    }
    std::unordered_set<topology::Asn> asns;
    std::unordered_set<netsim::IPv4Addr> nets;
    for (const auto& ip : key.ips) {
      const topology::Asn asn = routes_.origin_of(ip);
      if (asn != 0) asns.insert(asn);
      nets.insert(ip.slash24());
    }
    if (asns.size() > 1) ++summary.multi_asn;
    if (nets.size() > 1) ++summary.multi_prefix;
  }
  return summary;
}

}  // namespace ddos::core
