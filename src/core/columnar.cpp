#include "core/columnar.h"

#include <array>
#include <map>
#include <utility>

#include "core/impact.h"
#include "exec/parallel.h"
#include "netsim/simtime.h"
#include "obs/obs.h"
#include "util/stats.h"

namespace ddos::core {

std::int64_t EventFrame::duration_s(std::size_t i) const {
  // Mirrors RSDoSEvent::duration_s over the stored u64 window columns.
  const auto start = static_cast<std::int64_t>(start_window[i]);
  const auto end = static_cast<std::int64_t>(end_window[i]);
  return (end - start + 1) * netsim::kSecondsPerWindow;
}

ImpactSummary impact_summary_columnar(const EventFrame& f) {
  obs::ScopedSpan span(obs::installed_tracer(), "columnar.impact_summary");
  span.set_items(f.rows);
  exec::RegionOptions opts;
  opts.label = "columnar.impact";
  return exec::parallel_map_reduce(
      f.rows, opts, ImpactSummary{},
      [&](const exec::ShardRange& r) {
        ImpactSummary s;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          ++s.events;
          if (f.peak_impact[i] >= kImpairedThreshold) ++s.impaired_10x;
          if (f.peak_impact[i] >= kSevereThreshold) ++s.severe_100x;
        }
        return s;
      },
      [](ImpactSummary& acc, ImpactSummary&& s) {
        acc.events += s.events;
        acc.impaired_10x += s.impaired_10x;
        acc.severe_100x += s.severe_100x;
      });
}

FailureSummary failure_summary_columnar(const EventFrame& f) {
  obs::ScopedSpan span(obs::installed_tracer(), "columnar.failure_summary");
  span.set_items(f.rows);
  exec::RegionOptions opts;
  opts.label = "columnar.failure";
  return exec::parallel_map_reduce(
      f.rows, opts, FailureSummary{},
      [&](const exec::ShardRange& r) {
        FailureSummary s;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          ++s.events;
          s.timeouts += f.timeouts[i];
          s.servfails += f.servfails[i];
          if (f.any_failure(i)) {
            ++s.events_with_failures;
            s.failed_event_ports.add(
                port_bucket(static_cast<std::uint16_t>(f.first_port[i])));
          }
        }
        return s;
      },
      [](FailureSummary& acc, FailureSummary&& s) {
        acc.events += s.events;
        acc.events_with_failures += s.events_with_failures;
        acc.timeouts += s.timeouts;
        acc.servfails += s.servfails;
        acc.failed_event_ports.merge(s.failed_event_ports);
      });
}

CorrelationSeries duration_impact_series_columnar(const EventFrame& f) {
  exec::RegionOptions opts;
  opts.label = "columnar.duration_series";
  // Per-shard (x, y) pairs concatenate in shard order == event order, so
  // the correlation inputs match the serial row loop exactly.
  CorrelationSeries s = exec::parallel_map_reduce(
      f.rows, opts, CorrelationSeries{},
      [&](const exec::ShardRange& r) {
        CorrelationSeries part;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          if (f.peak_impact[i] <= 0.0) continue;
          part.x.push_back(static_cast<double>(f.duration_s(i)));
          part.y.push_back(f.peak_impact[i]);
        }
        return part;
      },
      [](CorrelationSeries& acc, CorrelationSeries&& part) {
        acc.x.insert(acc.x.end(), part.x.begin(), part.x.end());
        acc.y.insert(acc.y.end(), part.y.begin(), part.y.end());
      });
  s.pearson = util::pearson(s.x, s.y);
  s.spearman = util::spearman(s.x, s.y);
  return s;
}

namespace {

// Shard partial for one anycast group: impacts in event order plus the
// integer tallies summarize_group accumulates alongside.
struct GroupPartial {
  std::vector<double> impacts;
  std::uint64_t impaired_10x = 0;
  std::uint64_t severe_100x = 0;
  std::uint64_t events_with_failures = 0;
  std::uint64_t complete_failures = 0;
};

}  // namespace

std::vector<GroupImpact> impact_by_anycast_columnar(const EventFrame& f) {
  obs::ScopedSpan span(obs::installed_tracer(), "columnar.impact_by_anycast");
  span.set_items(f.rows);
  // Group order is the AnycastClass enum order, matching the row path's
  // {"unicast", "partial-anycast", "anycast"} display order.
  constexpr std::size_t kGroups = 3;
  exec::RegionOptions opts;
  opts.label = "columnar.anycast_groups";
  using Partials = std::array<GroupPartial, kGroups>;
  Partials merged = exec::parallel_map_reduce(
      f.rows, opts, Partials{},
      [&](const exec::ShardRange& r) {
        Partials part;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          const std::size_t g = f.anycast_class[i];
          if (g >= kGroups) continue;  // row path drops unknown classes too
          GroupPartial& p = part[g];
          p.impacts.push_back(f.peak_impact[i]);
          if (f.peak_impact[i] >= kImpairedThreshold) ++p.impaired_10x;
          if (f.peak_impact[i] >= kSevereThreshold) ++p.severe_100x;
          if (f.any_failure(i)) ++p.events_with_failures;
          if (f.complete_failure(i)) ++p.complete_failures;
        }
        return part;
      },
      [](Partials& acc, Partials&& part) {
        for (std::size_t g = 0; g < kGroups; ++g) {
          acc[g].impacts.insert(acc[g].impacts.end(), part[g].impacts.begin(),
                                part[g].impacts.end());
          acc[g].impaired_10x += part[g].impaired_10x;
          acc[g].severe_100x += part[g].severe_100x;
          acc[g].events_with_failures += part[g].events_with_failures;
          acc[g].complete_failures += part[g].complete_failures;
        }
      });

  static constexpr const char* kNames[kGroups] = {"unicast", "partial-anycast",
                                                  "anycast"};
  std::vector<GroupImpact> out;
  out.reserve(kGroups);
  for (std::size_t g = 0; g < kGroups; ++g) {
    GroupImpact gi;
    gi.group = kNames[g];
    gi.events = merged[g].impacts.size();
    gi.impaired_10x = merged[g].impaired_10x;
    gi.severe_100x = merged[g].severe_100x;
    gi.events_with_failures = merged[g].events_with_failures;
    gi.complete_failures = merged[g].complete_failures;
    gi.median_impact = util::median(merged[g].impacts);
    gi.p90_impact = util::percentile(merged[g].impacts, 90.0);
    gi.max_impact = util::max_of(merged[g].impacts);
    out.push_back(std::move(gi));
  }
  return out;
}

namespace {

using MonthKey = std::pair<int, int>;  // (year, month)

struct MonthAcc {
  std::uint64_t events = 0;
  std::uint64_t impaired_10x = 0;
  std::uint64_t severe_100x = 0;
  std::uint64_t events_with_failures = 0;
};

MonthKey month_of_window(std::uint64_t start_window) {
  const netsim::SimTime t =
      netsim::window_start(static_cast<std::int64_t>(start_window));
  int year = 0, month = 0, dom = 0;
  netsim::day_to_ymd(t.day(), year, month, dom);
  return {year, month};
}

std::vector<MonthlyJoinedRow> rows_of(
    const std::map<MonthKey, MonthAcc>& by_month) {
  std::vector<MonthlyJoinedRow> out;
  out.reserve(by_month.size());
  for (const auto& [key, acc] : by_month) {
    MonthlyJoinedRow row;
    row.year = key.first;
    row.month = key.second;
    row.events = acc.events;
    row.impaired_10x = acc.impaired_10x;
    row.severe_100x = acc.severe_100x;
    row.events_with_failures = acc.events_with_failures;
    out.push_back(row);
  }
  return out;
}

}  // namespace

std::vector<MonthlyJoinedRow> monthly_joined_summary_columnar(
    const EventFrame& f) {
  exec::RegionOptions opts;
  opts.label = "columnar.monthly";
  using Acc = std::map<MonthKey, MonthAcc>;
  Acc by_month = exec::parallel_map_reduce(
      f.rows, opts, Acc{},
      [&](const exec::ShardRange& r) {
        Acc part;
        for (std::size_t i = r.begin; i < r.end; ++i) {
          MonthAcc& acc = part[month_of_window(f.start_window[i])];
          ++acc.events;
          if (f.peak_impact[i] >= kImpairedThreshold) ++acc.impaired_10x;
          if (f.peak_impact[i] >= kSevereThreshold) ++acc.severe_100x;
          if (f.any_failure(i)) ++acc.events_with_failures;
        }
        return part;
      },
      [](Acc& acc, Acc&& part) {
        for (const auto& [key, m] : part) {
          MonthAcc& a = acc[key];
          a.events += m.events;
          a.impaired_10x += m.impaired_10x;
          a.severe_100x += m.severe_100x;
          a.events_with_failures += m.events_with_failures;
        }
      });
  return rows_of(by_month);
}

std::vector<MonthlyJoinedRow> monthly_joined_summary(
    const std::vector<NssetAttackEvent>& events) {
  std::map<MonthKey, MonthAcc> by_month;
  for (const auto& ev : events) {
    MonthAcc& acc =
        by_month[month_of_window(static_cast<std::uint64_t>(
            ev.rsdos.start_window))];
    ++acc.events;
    if (ev.peak_impact >= kImpairedThreshold) ++acc.impaired_10x;
    if (ev.peak_impact >= kSevereThreshold) ++acc.severe_100x;
    if (ev.any_failure()) ++acc.events_with_failures;
  }
  return rows_of(by_month);
}

bool frame_equals_events(const EventFrame& f,
                         const std::vector<NssetAttackEvent>& events) {
  if (f.rows != events.size()) return false;
  for (std::size_t i = 0; i < f.rows; ++i) {
    const NssetAttackEvent& e = events[i];
    const bool same =
        f.victim[i] == e.rsdos.victim.value() &&
        f.start_window[i] ==
            static_cast<std::uint64_t>(e.rsdos.start_window) &&
        f.end_window[i] == static_cast<std::uint64_t>(e.rsdos.end_window) &&
        f.max_ppm[i] == e.rsdos.max_ppm &&
        f.total_packets[i] == e.rsdos.total_packets &&
        f.max_slash16[i] == e.rsdos.max_slash16 &&
        f.protocol[i] == static_cast<std::uint8_t>(e.rsdos.protocol) &&
        f.first_port[i] == e.rsdos.first_port &&
        f.max_unique_ports[i] == e.rsdos.max_unique_ports &&
        f.nsset[i] == e.nsset && f.domains_hosted[i] == e.domains_hosted &&
        f.domains_measured[i] == e.domains_measured &&
        f.baseline_rtt_ms[i] == e.baseline_rtt_ms &&
        f.peak_impact[i] == e.peak_impact &&
        f.mean_impact[i] == e.mean_impact && f.ok[i] == e.ok &&
        f.timeouts[i] == e.timeouts && f.servfails[i] == e.servfails &&
        f.failure_rate[i] == e.failure_rate &&
        f.anycast_class[i] ==
            static_cast<std::uint8_t>(e.resilience.anycast_class) &&
        f.distinct_asns[i] == e.resilience.distinct_asns &&
        f.distinct_slash24[i] == e.resilience.distinct_slash24 &&
        f.nameserver_count[i] == e.resilience.nameserver_count &&
        f.asn[i] == e.resilience.asn && f.org[i] == e.resilience.org;
    if (!same) return false;
  }
  return true;
}

}  // namespace ddos::core
