// Columnar analysis kernels — the §6 headline statistics recomputed
// directly over the DRS "events" dataset's column spans, with no
// NssetAttackEvent row materialization. Each kernel mirrors one row fold
// from core/analysis.h and is bit-identical to it at any thread count:
// shards are a pure function of the row count (exec::plan_shards) and
// per-shard partials fold in shard index order (ordered reduction), so
// integer tallies, concatenated series and per-group impact vectors come
// out in event order exactly as the serial row loops produce them.
//
// The spans in an EventFrame borrow from a store::Reader (zero-copy
// fixed-width columns over the mapping) and a store::ColumnArena (decoded
// varint/string columns); callers keep both alive while the frame is in
// use. core does not depend on store — store/scan.h provides the loader.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/analysis.h"

namespace ddos::core {

/// SoA view of one string column: per-row [start, start+len) slices of a
/// shared byte buffer (the block payload itself on the zero-copy path).
struct StringColumnView {
  std::string_view bytes;
  std::span<const std::uint64_t> starts;
  std::span<const std::uint64_t> lens;

  std::size_t size() const { return starts.size(); }
  std::string_view operator[](std::size_t i) const {
    return bytes.substr(starts[i], lens[i]);
  }
};

/// Column spans of the joined NSSet-attack "events" dataset, in the
/// store schema (store/dataset.cpp write_joined_events). All spans have
/// `rows` elements.
struct EventFrame {
  std::size_t rows = 0;
  // telescope event
  std::span<const std::uint64_t> victim;
  std::span<const std::uint64_t> start_window;
  std::span<const std::uint64_t> end_window;
  std::span<const double> max_ppm;
  std::span<const std::uint64_t> total_packets;
  std::span<const std::uint64_t> max_slash16;
  std::span<const std::uint8_t> protocol;
  std::span<const std::uint64_t> first_port;
  std::span<const std::uint64_t> max_unique_ports;
  // join outcome
  std::span<const std::uint64_t> nsset;
  std::span<const std::uint64_t> domains_hosted;
  std::span<const std::uint64_t> domains_measured;
  std::span<const double> baseline_rtt_ms;
  std::span<const double> peak_impact;
  std::span<const double> mean_impact;
  std::span<const std::uint64_t> ok;
  std::span<const std::uint64_t> timeouts;
  std::span<const std::uint64_t> servfails;
  std::span<const double> failure_rate;
  // resilience profile
  std::span<const std::uint8_t> anycast_class;
  std::span<const std::uint64_t> distinct_asns;
  std::span<const std::uint64_t> distinct_slash24;
  std::span<const std::uint64_t> nameserver_count;
  std::span<const std::uint64_t> asn;
  StringColumnView org;

  bool any_failure(std::size_t i) const {
    return timeouts[i] + servfails[i] > 0;
  }
  bool complete_failure(std::size_t i) const {
    return domains_measured[i] > 0 && ok[i] == 0;
  }
  std::int64_t duration_s(std::size_t i) const;
};

// ---- kernels (bit-identical to the row functions of analysis.h) ------

ImpactSummary impact_summary_columnar(const EventFrame& f);
FailureSummary failure_summary_columnar(const EventFrame& f);
CorrelationSeries duration_impact_series_columnar(const EventFrame& f);
std::vector<GroupImpact> impact_by_anycast_columnar(const EventFrame& f);

/// Per-month rollup of joined events (month of the attack's first
/// window) — the stored-run counterpart of the Table 3 monthly view.
struct MonthlyJoinedRow {
  int year = 0;
  int month = 0;
  std::uint64_t events = 0;
  std::uint64_t impaired_10x = 0;
  std::uint64_t severe_100x = 0;
  std::uint64_t events_with_failures = 0;
};

std::vector<MonthlyJoinedRow> monthly_joined_summary_columnar(
    const EventFrame& f);
/// Row reference of the same rollup, for parity tests.
std::vector<MonthlyJoinedRow> monthly_joined_summary(
    const std::vector<NssetAttackEvent>& events);

/// Field-exact comparison of a frame against materialized rows — the
/// columnar form of the --rejoin bit-for-bit assertion (no stored-row
/// materialization needed on the left side).
bool frame_equals_events(const EventFrame& f,
                         const std::vector<NssetAttackEvent>& events);

}  // namespace ddos::core
