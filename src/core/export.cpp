#include "core/export.h"

#include <string>

#include "util/csv.h"
#include "util/strings.h"

namespace ddos::core {

std::string events_csv_header() {
  return "victim,nsset,start_window,end_window,max_ppm,domains_hosted,"
         "domains_measured,baseline_rtt_ms,peak_impact,mean_impact,ok,"
         "timeouts,servfails,anycast_class,distinct_asns,distinct_slash24,"
         "org";
}

void write_events_csv(std::ostream& out,
                      const std::vector<NssetAttackEvent>& events) {
  out << events_csv_header() << '\n';
  util::CsvWriter writer(out);
  for (const auto& ev : events) {
    writer.row(ev.rsdos.victim.to_string(), ev.nsset, ev.rsdos.start_window,
               ev.rsdos.end_window, util::format_fixed(ev.rsdos.max_ppm, 3),
               ev.domains_hosted, ev.domains_measured,
               util::format_fixed(ev.baseline_rtt_ms, 4),
               util::format_fixed(ev.peak_impact, 4),
               util::format_fixed(ev.mean_impact, 4), ev.ok, ev.timeouts,
               ev.servfails,
               std::string(anycast::to_string(ev.resilience.anycast_class)),
               ev.resilience.distinct_asns, ev.resilience.distinct_slash24,
               ev.resilience.org);
  }
}

std::vector<NssetAttackEvent> read_events_csv(std::istream& in,
                                              EventsCsvReport* report) {
  std::vector<NssetAttackEvent> events;
  std::uint64_t data_rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == events_csv_header()) continue;
    ++data_rows;
    const auto fields = util::parse_csv_line(line);
    if (fields.size() != 17) continue;
    NssetAttackEvent ev;
    const auto victim = netsim::IPv4Addr::parse(fields[0]);
    std::uint64_t u = 0;
    double d = 0.0;
    if (!victim) continue;
    ev.rsdos.victim = *victim;
    if (!util::parse_u64(fields[1], u)) continue;
    ev.nsset = static_cast<dns::NssetId>(u);
    if (!util::parse_u64(fields[2], u)) continue;
    ev.rsdos.start_window = static_cast<netsim::WindowIndex>(u);
    if (!util::parse_u64(fields[3], u)) continue;
    ev.rsdos.end_window = static_cast<netsim::WindowIndex>(u);
    if (!util::parse_double(fields[4], d)) continue;
    ev.rsdos.max_ppm = d;
    if (!util::parse_u64(fields[5], ev.domains_hosted)) continue;
    if (!util::parse_u64(fields[6], u)) continue;
    ev.domains_measured = static_cast<std::uint32_t>(u);
    if (!util::parse_double(fields[7], ev.baseline_rtt_ms)) continue;
    if (!util::parse_double(fields[8], ev.peak_impact)) continue;
    if (!util::parse_double(fields[9], ev.mean_impact)) continue;
    if (!util::parse_u64(fields[10], u)) continue;
    ev.ok = static_cast<std::uint32_t>(u);
    if (!util::parse_u64(fields[11], u)) continue;
    ev.timeouts = static_cast<std::uint32_t>(u);
    if (!util::parse_u64(fields[12], u)) continue;
    ev.servfails = static_cast<std::uint32_t>(u);
    if (fields[13] == "anycast")
      ev.resilience.anycast_class = anycast::AnycastClass::Full;
    else if (fields[13] == "partial-anycast")
      ev.resilience.anycast_class = anycast::AnycastClass::Partial;
    else
      ev.resilience.anycast_class = anycast::AnycastClass::None;
    if (!util::parse_u64(fields[14], u)) continue;
    ev.resilience.distinct_asns = static_cast<std::uint32_t>(u);
    if (!util::parse_u64(fields[15], u)) continue;
    ev.resilience.distinct_slash24 = static_cast<std::uint32_t>(u);
    ev.resilience.org = fields[16];
    ev.failure_rate =
        ev.domains_measured
            ? static_cast<double>(ev.timeouts + ev.servfails) /
                  ev.domains_measured
            : 0.0;
    events.push_back(std::move(ev));
  }
  if (report) {
    report->rows_read = events.size();
    report->rows_skipped = data_rows - events.size();
  }
  return events;
}

}  // namespace ddos::core
