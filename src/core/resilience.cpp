#include "core/resilience.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace ddos::core {

ResilienceClassifier::ResilienceClassifier(const dns::DnsRegistry& registry,
                                           const anycast::AnycastCensus& census,
                                           const topology::PrefixTable& routes,
                                           const topology::AsRegistry& orgs)
    : registry_(registry), census_(census), routes_(routes), orgs_(orgs) {}

ResilienceProfile ResilienceClassifier::classify(dns::NssetId nsset,
                                                 netsim::DayIndex day) const {
  return classify_ips(registry_.nsset_key(nsset).ips, day);
}

ResilienceProfile ResilienceClassifier::classify_ips(
    const std::vector<netsim::IPv4Addr>& ips, netsim::DayIndex day) const {
  ResilienceProfile profile;
  profile.nameserver_count = static_cast<std::uint32_t>(ips.size());
  profile.anycast_class = census_.classify(ips, day);

  std::unordered_set<std::uint32_t> asns;
  std::unordered_set<netsim::IPv4Addr> nets;
  std::map<topology::Asn, std::uint32_t> asn_votes;
  for (const auto& ip : ips) {
    nets.insert(ip.slash24());
    const topology::Asn asn = routes_.origin_of(ip);
    if (asn != 0) {
      asns.insert(asn);
      ++asn_votes[asn];
    }
  }
  profile.distinct_asns = static_cast<std::uint32_t>(asns.size());
  profile.distinct_slash24 = static_cast<std::uint32_t>(nets.size());

  // Majority ASN; ties resolve to the smallest ASN (deterministic).
  std::uint32_t best_votes = 0;
  for (const auto& [asn, votes] : asn_votes) {
    if (votes > best_votes) {
      best_votes = votes;
      profile.asn = asn;
    }
  }
  profile.org = orgs_.org_of(profile.asn);
  return profile;
}

}  // namespace ddos::core
