// The paper's impact metric (Equation 1, §4.1):
//
//     Impact_on_RTT = avgRTT(5-minute window) / avgRTT(day before)
//
// computed per NSSet. Values near 1 mean the attack was absorbed; the
// paper's headline findings are the ~5% of attacks at >=10x and the ~1/3
// of those at >=100x (Fig. 8).
#pragma once

#include "openintel/storage.h"

namespace ddos::core {

/// Impact of one 5-minute window against a baseline average RTT.
/// Returns 0.0 when the window has no answered queries or the baseline is
/// non-positive (callers treat 0 as "no signal", not "no impact").
double impact_on_rtt(const openintel::Aggregate& window_agg,
                     double baseline_avg_rtt_ms);

/// Conventional thresholds used throughout the paper's discussion.
inline constexpr double kImpairedThreshold = 10.0;   // "10-fold increase"
inline constexpr double kSevereThreshold = 100.0;    // "100-fold increase"

/// Window failure rate (timeout + SERVFAIL over measured).
double failure_rate(const openintel::Aggregate& window_agg);

}  // namespace ddos::core
