// CSV export of the pipeline's analysis products, so the bench harness's
// series can be re-plotted outside this repository (the paper's figures
// are scatter/CDF plots of exactly these rows).
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string_view>
#include <vector>

#include "core/join.h"

namespace ddos::core {

/// One joined NSSet-attack event as a flat CSV row. Fields:
/// victim,nsset,start_window,end_window,max_ppm,domains_hosted,
/// domains_measured,baseline_rtt_ms,peak_impact,mean_impact,ok,timeouts,
/// servfails,anycast_class,distinct_asns,distinct_slash24,org
void write_events_csv(std::ostream& out,
                      const std::vector<NssetAttackEvent>& events);

/// Tally of a read_events_csv pass. Header and blank lines count toward
/// neither field; `rows_skipped` is malformed data rows (wrong field
/// count, unparsable numbers), which callers should surface — a nonzero
/// skip count usually means a truncated or hand-edited file.
struct EventsCsvReport {
  std::uint64_t rows_read = 0;     // rows parsed into events
  std::uint64_t rows_skipped = 0;  // malformed rows dropped
};

/// Parse rows written by write_events_csv (header optional). Rows that do
/// not parse are skipped; returns the events read and, when `report` is
/// non-null, fills in the read/skip tally. The resilience org may contain
/// commas — it is CSV-quoted on write and unquoted on read.
std::vector<NssetAttackEvent> read_events_csv(std::istream& in,
                                              EventsCsvReport* report = nullptr);

/// Header line of the export format.
std::string events_csv_header();

}  // namespace ddos::core
