// Resilience-technique classification of NSSets (§6.6): anycast adoption
// (via the census /24 match), AS diversity (distinct origin ASNs via
// prefix2as), and /24 prefix diversity. Also attributes an NSSet to an
// organisation for the company leaderboards (Tables 4 and 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "anycast/census.h"
#include "dns/registry.h"
#include "netsim/simtime.h"
#include "topology/as_registry.h"
#include "topology/prefix_table.h"

namespace ddos::core {

struct ResilienceProfile {
  anycast::AnycastClass anycast_class = anycast::AnycastClass::None;
  std::uint32_t distinct_asns = 0;
  std::uint32_t distinct_slash24 = 0;
  std::uint32_t nameserver_count = 0;
  /// Majority organisation across the NSSet's NS IPs ("" when unrouted).
  std::string org;
  /// Majority origin ASN (0 when unrouted).
  topology::Asn asn = 0;

  /// Field-exact equality (store round-trip assertions).
  friend bool operator==(const ResilienceProfile&,
                         const ResilienceProfile&) = default;
};

class ResilienceClassifier {
 public:
  ResilienceClassifier(const dns::DnsRegistry& registry,
                       const anycast::AnycastCensus& census,
                       const topology::PrefixTable& routes,
                       const topology::AsRegistry& orgs);

  /// Classify an NSSet as of `day` (census snapshots are day-dependent).
  ResilienceProfile classify(dns::NssetId nsset, netsim::DayIndex day) const;

  /// Classify an arbitrary IP set (reactive platform, case studies).
  ResilienceProfile classify_ips(const std::vector<netsim::IPv4Addr>& ips,
                                 netsim::DayIndex day) const;

  const topology::PrefixTable& routes() const { return routes_; }
  const topology::AsRegistry& orgs() const { return orgs_; }

 private:
  const dns::DnsRegistry& registry_;
  const anycast::AnycastCensus& census_;
  const topology::PrefixTable& routes_;
  const topology::AsRegistry& orgs_;
};

}  // namespace ddos::core
