// net::codec — the binary wire protocol of the serve front-end.
//
// Framing: every message is [u32 payload_len (LE)] [payload], where
// payload_len counts the payload bytes only and is capped at
// kMaxFrameBytes — a peer announcing more is malformed and the connection
// is dropped, never buffered. The payload starts with a fixed 8-byte
// header:
//
//   offset  size  field
//   0       1     magic      (0xD5)
//   1       1     version    (kProtocolVersion == 1)
//   2       1     opcode     (Opcode below)
//   3       1     reserved   (must be 0)
//   4       4     request_id (LE; echoed verbatim in the response)
//
// followed by an opcode-specific body (all integers little-endian, all
// doubles IEEE-754 bit patterns, no padding — fields are packed at the
// byte level, never memcpy'd from structs, so the format is independent
// of host ABI). request_id lets clients pipeline: a server answers
// requests of one connection in receive order and echoes each id, so a
// client can match k outstanding requests without a map.
//
// Request bodies:
//   Hello        —  (empty)
//   PointLookup  —  u64 key_index        (rank into the engine's keys())
//   TopK         —  u8 metric, u8[3] pad(0), u32 k
//   WindowScan   —  i64 day_lo, i64 day_hi
//
// Response bodies:
//   HelloOk      —  u64 key_count, i64 day_min, i64 day_max,
//                   u64 nsset_count, u64 engine_epoch
//   PointOk      —  u8 found, u8[3] pad(0), u32 nsset, u32 events,
//                   u64 domains_hosted, f64 peak_impact,
//                   f64 max_failure_rate, u32 ok, u32 timeouts,
//                   u32 servfails, i64 first_day, i64 last_day,
//                   u32 event_count, u32 series_len
//   TopKOk       —  u32 n, n x (u64 key, f64 value)
//   ScanOk       —  i64 day_lo, i64 day_hi, u64 events,
//                   u64 events_with_failures, u64 timeouts, u64 servfails,
//                   u64 impaired_10x, u64 severe_100x, f64 max_peak_impact
//   Error        —  u16 code (ErrorCode), u16 msg_len, msg bytes
//
// Decoding is strict: short bodies, trailing bytes, bad magic/version,
// unknown opcodes, non-zero reserved bytes and oversized frames all fail
// with a typed DecodeStatus instead of best-effort acceptance — a fuzzed
// byte stream must never crash the decoder or silently round to a valid
// message (tests/net_codec_test.cpp hammers exactly this).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netsim/simtime.h"
#include "serve/query_engine.h"

namespace ddos::net {

inline constexpr std::uint8_t kMagic = 0xD5;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// Hard ceiling on one frame's payload. TopK responses dominate frame
/// size (16 bytes/row), so this admits ~65k-row boards with room while
/// keeping a malicious length prefix from ballooning a read buffer.
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

enum class Opcode : std::uint8_t {
  // requests
  Hello = 0x01,
  PointLookup = 0x02,
  TopK = 0x03,
  WindowScan = 0x04,
  // responses
  HelloOk = 0x81,
  PointOk = 0x82,
  TopKOk = 0x83,
  ScanOk = 0x84,
  Error = 0x7F,
};

const char* to_string(Opcode op);

enum class ErrorCode : std::uint16_t {
  Malformed = 1,     // frame parsed but the body is invalid
  BadRequest = 2,    // semantically invalid (key_index out of range, ...)
  Internal = 3,
};

/// Why a decode was rejected. `Ok` and `NeedMore` are the two non-error
/// outcomes: NeedMore means the buffer holds a frame prefix (keep
/// reading), everything else means the peer is broken and the connection
/// must be closed.
enum class DecodeStatus {
  Ok,
  NeedMore,
  BadMagic,
  BadVersion,
  BadOpcode,
  BadReserved,
  Oversized,
  Truncated,    // body shorter than the opcode demands
  TrailingBytes,  // body longer than the opcode demands
};

const char* to_string(DecodeStatus status);

/// One parsed frame header + body view (aliases the input buffer).
struct Frame {
  Opcode opcode = Opcode::Error;
  std::uint32_t request_id = 0;
  std::span<const std::uint8_t> body;
};

// ---- request/response value types ------------------------------------

struct HelloResult {
  std::uint64_t key_count = 0;
  netsim::DayIndex day_min = 0;
  netsim::DayIndex day_max = -1;
  std::uint64_t nsset_count = 0;
  /// Re-fill generation of the answering engine; bumps on every swap.
  std::uint64_t engine_epoch = 0;

  friend bool operator==(const HelloResult&, const HelloResult&) = default;
};

/// PointLookup answer as it travels the wire: the summary plus the two
/// span lengths (the arrays themselves stay server-side; the driver's
/// fingerprint folds only the lengths, so the wire answer is exactly the
/// fold's input).
struct WirePointResult {
  bool found = false;
  serve::NssetSummary summary;
  std::uint32_t event_count = 0;
  std::uint32_t series_len = 0;

  friend bool operator==(const WirePointResult&,
                         const WirePointResult&) = default;
};

struct WireError {
  ErrorCode code = ErrorCode::Internal;
  std::string message;

  friend bool operator==(const WireError&, const WireError&) = default;
};

// ---- encoding (append one whole frame to `out`) ----------------------

void encode_hello(std::uint32_t request_id, std::vector<std::uint8_t>& out);
void encode_point_lookup(std::uint32_t request_id, std::uint64_t key_index,
                         std::vector<std::uint8_t>& out);
void encode_top_k(std::uint32_t request_id, serve::TopKMetric metric,
                  std::uint32_t k, std::vector<std::uint8_t>& out);
void encode_window_scan(std::uint32_t request_id, netsim::DayIndex day_lo,
                        netsim::DayIndex day_hi,
                        std::vector<std::uint8_t>& out);

void encode_hello_ok(std::uint32_t request_id, const HelloResult& result,
                     std::vector<std::uint8_t>& out);
void encode_point_ok(std::uint32_t request_id, const WirePointResult& result,
                     std::vector<std::uint8_t>& out);
void encode_top_k_ok(std::uint32_t request_id,
                     std::span<const serve::TopEntry> rows,
                     std::vector<std::uint8_t>& out);
void encode_scan_ok(std::uint32_t request_id,
                    const serve::WindowScanResult& result,
                    std::vector<std::uint8_t>& out);
void encode_error(std::uint32_t request_id, ErrorCode code,
                  std::string_view message, std::vector<std::uint8_t>& out);

// ---- decoding --------------------------------------------------------

/// Parse one frame from the front of `buf`. On Ok, `frame` views into
/// `buf` and `consumed` is the total frame size (4 + payload) to pop.
/// On NeedMore nothing is consumed; any other status is fatal for the
/// connection.
DecodeStatus decode_frame(std::span<const std::uint8_t> buf, Frame& frame,
                          std::size_t& consumed);

// Body decoders: strict — exact length, valid enum values. Each returns
// nullopt when the body does not match the opcode's layout.
std::optional<std::uint64_t> decode_point_lookup(const Frame& frame);
struct TopKRequest {
  serve::TopKMetric metric = serve::TopKMetric::Attacks;
  std::uint32_t k = 0;
};
std::optional<TopKRequest> decode_top_k(const Frame& frame);
struct WindowScanRequest {
  netsim::DayIndex day_lo = 0;
  netsim::DayIndex day_hi = -1;
};
std::optional<WindowScanRequest> decode_window_scan(const Frame& frame);

std::optional<HelloResult> decode_hello_ok(const Frame& frame);
std::optional<WirePointResult> decode_point_ok(const Frame& frame);
/// Appends the decoded rows to `rows` (cleared first); nullopt on
/// malformed body (row count not matching the byte count included).
bool decode_top_k_ok(const Frame& frame, std::vector<serve::TopEntry>& rows);
std::optional<serve::WindowScanResult> decode_scan_ok(const Frame& frame);
std::optional<WireError> decode_error(const Frame& frame);

}  // namespace ddos::net
