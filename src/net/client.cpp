#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ddos::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      tx_buf_(std::move(other.tx_buf_)),
      rx_buf_(std::move(other.rx_buf_)),
      rx_off_(std::exchange(other.rx_off_, 0)),
      rows_(std::move(other.rows_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    tx_buf_ = std::move(other.tx_buf_);
    rx_buf_ = std::move(other.rx_buf_);
    rx_off_ = std::exchange(other.rx_off_, 0);
    rows_ = std::move(other.rows_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("net::Client socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("net::Client: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("net::Client connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  tx_buf_.clear();
  rx_buf_.clear();
  rx_off_ = 0;
}

HelloResult Client::hello(std::uint32_t request_id) {
  encode_hello(request_id, tx_buf_);
  flush();
  const Answer& answer = recv();
  if (answer.opcode == Opcode::Error) {
    throw std::runtime_error("net::Client hello: server error: " +
                             answer.error.message);
  }
  if (answer.opcode != Opcode::HelloOk || answer.request_id != request_id) {
    throw std::runtime_error("net::Client hello: unexpected response");
  }
  return answer.hello;
}

void Client::queue_op(const serve::Op& op, std::uint32_t request_id) {
  switch (op.type) {
    case serve::QueryType::PointLookup:
      encode_point_lookup(request_id, op.key_index, tx_buf_);
      break;
    case serve::QueryType::TopK:
      encode_top_k(request_id, static_cast<serve::TopKMetric>(op.metric),
                   op.k, tx_buf_);
      break;
    case serve::QueryType::WindowScan:
      encode_window_scan(request_id, op.day_lo, op.day_hi, tx_buf_);
      break;
  }
}

void Client::flush() {
  std::size_t off = 0;
  while (off < tx_buf_.size()) {
    const ssize_t n = ::send(fd_, tx_buf_.data() + off, tx_buf_.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("net::Client send");
  }
  tx_buf_.clear();
}

bool Client::fill(bool blocking) {
  constexpr std::size_t kChunk = 64 * 1024;
  const std::size_t old_size = rx_buf_.size();
  rx_buf_.resize(old_size + kChunk);
  const ssize_t n = ::recv(fd_, rx_buf_.data() + old_size, kChunk,
                           blocking ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    rx_buf_.resize(old_size + static_cast<std::size_t>(n));
    return true;
  }
  rx_buf_.resize(old_size);
  if (n == 0) {
    throw std::runtime_error("net::Client: connection closed by server");
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return false;
  }
  throw_errno("net::Client recv");
}

bool Client::parse_buffered() {
  const std::span<const std::uint8_t> pending(rx_buf_.data() + rx_off_,
                                              rx_buf_.size() - rx_off_);
  Frame frame;
  std::size_t consumed = 0;
  const DecodeStatus status = decode_frame(pending, frame, consumed);
  if (status == DecodeStatus::NeedMore) {
    // Compact consumed frames away so the buffer stays one-frame-sized.
    if (rx_off_ > 0) {
      rx_buf_.erase(rx_buf_.begin(),
                    rx_buf_.begin() + static_cast<std::ptrdiff_t>(rx_off_));
      rx_off_ = 0;
    }
    return false;
  }
  if (status != DecodeStatus::Ok) {
    throw std::runtime_error(std::string("net::Client: malformed frame "
                                         "from server: ") +
                             to_string(status));
  }
  decode_into_answer(frame);
  rx_off_ += consumed;
  return true;
}

void Client::decode_into_answer(const Frame& frame) {
  answer_ = Answer{};
  answer_.opcode = frame.opcode;
  answer_.request_id = frame.request_id;
  bool ok = false;
  switch (frame.opcode) {
    case Opcode::HelloOk:
      if (auto hello = decode_hello_ok(frame)) {
        answer_.hello = *hello;
        ok = true;
      }
      break;
    case Opcode::PointOk:
      if (auto point = decode_point_ok(frame)) {
        answer_.point = *point;
        ok = true;
      }
      break;
    case Opcode::TopKOk:
      if (decode_top_k_ok(frame, rows_)) {
        answer_.rows = &rows_;
        ok = true;
      }
      break;
    case Opcode::ScanOk:
      if (auto scan = decode_scan_ok(frame)) {
        answer_.scan = *scan;
        ok = true;
      }
      break;
    case Opcode::Error:
      if (auto error = decode_error(frame)) {
        answer_.error = *error;
        ok = true;
      }
      break;
    default:
      break;  // request opcode from a server: nonsense
  }
  if (!ok) {
    throw std::runtime_error("net::Client: bad response body for opcode " +
                             std::string(to_string(frame.opcode)));
  }
}

const Answer& Client::recv() {
  while (!parse_buffered()) fill(/*blocking=*/true);
  return answer_;
}

const Answer* Client::try_recv() {
  if (parse_buffered()) return &answer_;
  if (!fill(/*blocking=*/false)) return nullptr;
  return parse_buffered() ? &answer_ : nullptr;
}

}  // namespace ddos::net
